// Figure 5: per-epoch time and speedup of the three distributed algorithms
// (cd-0, cd-5, 0c) with increasing socket count, relative to the optimized
// single-socket run. The reproduction target is the ordering
// 0c >= cd-5 >= cd-0 and speedup growth with sockets, modulated by each
// dataset's replication factor.
#include "util/parallel.hpp"

#include <cstdio>

#include "bench_common.hpp"
#include "core/distributed_trainer.hpp"
#include "core/single_socket_trainer.hpp"
#include "partition/libra.hpp"
#include "partition/partition_setup.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace distgnn;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const double scale = bench::default_scale(opts, 0.25);
  const int epochs = static_cast<int>(opts.get_int("epochs", 12));
  const int max_ranks = static_cast<int>(opts.get_int("max-ranks", 8));
  // Each simulated socket gets a fixed slice of the machine so that adding
  // "sockets" adds hardware, as in the paper's cluster. The single-socket
  // reference runs on the same slice.
  const int threads_per_socket = static_cast<int>(opts.get_int("threads-per-socket", 2));

  bench::print_header("Distributed scaling: per-epoch time and speedup of cd-0 / cd-5 / 0c",
                      "Figure 5 (socket-count sweep per dataset)");

  TrainConfig base_cfg;
  base_cfg.num_layers = 2;
  base_cfg.hidden_dim = 32;
  base_cfg.epochs = epochs;
  base_cfg.delay = 5;
  base_cfg.threads_per_rank = threads_per_socket;

  for (const char* name : {"ogbn-products-sim", "proteins-sim"}) {
    const Dataset ds = bench::load(name, scale);

    // Optimized single-socket reference, pinned to one socket's thread slice.
    par::set_num_threads(threads_per_socket);
    SingleSocketTrainer single(ds, base_cfg);
    single.train_epoch();  // warm-up
    double single_epoch = 0;
    for (int e = 0; e < 3; ++e) single_epoch += single.train_epoch().total_seconds;
    single_epoch /= 3;
    par::set_num_threads(par::num_procs());

    TextTable table({"sockets", "cd-0 (s)", "cd-5 (s)", "0c (s)", "cd-0 speedup", "cd-5 speedup",
                     "0c speedup"});
    for (int ranks = 2; ranks <= max_ranks; ranks *= 2) {
      const PartitionedGraph pg =
          build_partitions(ds.graph.coo(), partition_libra(ds.graph.coo(), ranks), 1);
      std::vector<std::string> row{TextTable::fmt_int(ranks)};
      std::vector<double> times;
      for (const Algorithm alg : {Algorithm::kCd0, Algorithm::kCdR, Algorithm::k0c}) {
        TrainConfig cfg = base_cfg;
        cfg.algorithm = alg;
        const DistTrainResult result = train_distributed(ds, pg, cfg);
        // Average skips warm-up epochs (the paper uses epochs 10-20 for cd-r).
        times.push_back(result.mean_epoch_seconds(std::min(epochs - 2, 2 * cfg.delay)));
      }
      for (const double t : times) row.push_back(TextTable::fmt(t, 4));
      for (const double t : times) row.push_back(TextTable::fmt(single_epoch / t, 2) + "x");
      table.add_row(row);
    }
    std::printf("%s", table.render(std::string(name) + "  (single-socket epoch: " +
                                   TextTable::fmt(single_epoch, 4) + " s)").c_str());
  }
  std::printf("\nPaper reference: 0c > cd-5 > cd-0 in speed everywhere; e.g. Proteins at 64\n"
              "sockets reaches 37.9x / 59.8x / 75.4x; Reddit scales sub-linearly because of\n"
              "its replication factor. Simulated ranks share one machine, so speedups here\n"
              "are bounded by physical cores -- the ordering and trends are the target.\n");
  return 0;
}
