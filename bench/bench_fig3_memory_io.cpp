// Figure 3: time consumed and bytes read/written/total for the AP as a
// function of the number of blocks. The best-performing nB sits where the
// total memory IO is smallest; denser graphs have their sweet spot further
// right.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "kernels/aggregate.hpp"
#include "kernels/traffic_replay.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace distgnn;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const double scale = bench::default_scale(opts, 0.25);
  const auto cache_bytes = static_cast<std::uint64_t>(opts.get_int("cache-kb", 1024)) * 1024;
  const int reps = static_cast<int>(opts.get_int("reps", 3));

  bench::print_header("AP time and modelled memory IO vs number of blocks",
                      "Figure 3 (data read, written, total IO; copylhs/sum)");

  for (const char* name : {"reddit-sim", "ogbn-products-sim"}) {
    const Dataset ds = bench::load(name, scale);
    const CsrMatrix& csr = ds.graph.in_csr();
    const auto n = static_cast<std::size_t>(ds.num_vertices());
    const auto d = static_cast<std::size_t>(ds.feature_dim());

    TextTable table({"nB", "time (ms)", "read (MB)", "written (MB)", "total IO (MB)"});
    double best_time = 1e30;
    int best_nb = 1;
    for (const int nb : {1, 2, 4, 8, 16, 32, 64}) {
      const BlockedCsr blocks(csr, nb);
      DenseMatrix out(n, d, 0);
      ApConfig cfg;
      // Warm-up + timed repetitions.
      aggregate_prepartitioned(blocks, ds.features.cview(), {}, out.view(), cfg);
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < reps; ++r) {
        out.zero();
        aggregate_prepartitioned(blocks, ds.features.cview(), {}, out.view(), cfg);
      }
      const double ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count() /
          reps;
      const TrafficReport traffic = replay_aggregation_traffic(csr, d, nb, cache_bytes);
      table.add_row({TextTable::fmt_int(nb), TextTable::fmt(ms, 2),
                     TextTable::fmt(static_cast<double>(traffic.bytes_read) / 1e6, 1),
                     TextTable::fmt(static_cast<double>(traffic.bytes_written) / 1e6, 1),
                     TextTable::fmt(static_cast<double>(traffic.total_bytes()) / 1e6, 1)});
      if (ms < best_time) {
        best_time = ms;
        best_nb = nb;
      }
    }
    std::printf("%s", table.render(std::string(name) + " (best measured nB = " +
                                   std::to_string(best_nb) + ")").c_str());
  }
  std::printf("\nPaper reference: the time curve tracks total IO; the sweet spot is\n"
              "mid-range for the dense graph and nB=1 for the sparse one.\n");
  return 0;
}
