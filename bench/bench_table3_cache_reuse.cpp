// Table 3: cache reuse achieved by the blocked AP kernel vs the number of
// blocks nB, for a dense graph (Reddit character) and a sparse one
// (OGBN-Products character). The paper's shape: the dense graph's reuse
// peaks at a mid-range nB (16 in the paper), the sparse graph stays flat
// around 2 and slowly decays.
#include <cstdio>

#include "bench_common.hpp"
#include "kernels/traffic_replay.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace distgnn;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const double scale = bench::default_scale(opts, 0.25);
  // Modelled LLC sized relative to the sim datasets the way the Xeon 8280's
  // 38.5 MB LLC relates to Reddit's 560 MB feature matrix (~1.5%).
  const auto cache_bytes = static_cast<std::uint64_t>(opts.get_int("cache-kb", 1024)) * 1024;

  bench::print_header("Cache reuse of the blocked AP kernel vs number of blocks (nB)",
                      "Table 3 (copylhs/sum AP, vertex features only)");

  const int block_counts[] = {1, 2, 4, 8, 16, 32, 64};
  TextTable table({"dataset", "density", "nB=1", "nB=2", "nB=4", "nB=8", "nB=16", "nB=32", "nB=64",
                   "ideal (avg deg)"});

  for (const char* name : {"reddit-sim", "ogbn-products-sim"}) {
    const Dataset ds = bench::load(name, scale);
    const CsrMatrix& csr = ds.graph.in_csr();
    std::vector<std::string> row{name};
    char dens[32];
    std::snprintf(dens, sizeof(dens), "%.2e", ds.graph.density());
    row.push_back(dens);
    for (const int nb : block_counts) {
      const TrafficReport r = replay_aggregation_traffic(
          csr, static_cast<std::size_t>(ds.feature_dim()), nb, cache_bytes);
      row.push_back(TextTable::fmt(r.combined_reuse, 1));
    }
    row.push_back(TextTable::fmt(ds.graph.avg_degree(), 1));
    table.add_row(row);
  }
  std::printf("%s", table.render("Cache reuse (feature-vector accesses per DRAM fill, fV+fO)").c_str());
  std::printf("\nPaper reference (Xeon 8280, 38.5MB LLC): Reddit peaks at nB=16 (27.0 of\n"
              "ideal 492); OGBN-Products stays ~2 and decays (ideal 50.5).\n");
  return 0;
}
