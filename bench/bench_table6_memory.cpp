// Table 6: per-epoch peak memory of the distributed algorithms and the
// split-vertex share per partition for OGBN-Papers. Two parts:
//   (a) the analytic model evaluated at the paper's exact configuration
//       (111M vertices over 32/64/128 partitions, f=128, h=256, l=172);
//   (b) the same model fed with *measured* partition statistics of the
//       scaled ogbn-papers-sim, demonstrating the pipeline end to end.
#include <cstdio>

#include "bench_common.hpp"
#include "core/memory_model.hpp"
#include "partition/libra.hpp"
#include "partition/partition_stats.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace distgnn;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const double scale = bench::default_scale(opts, 0.125);

  bench::print_header("Per-epoch peak memory of cd-0 / cd-5 / 0c and split-vertex share",
                      "Table 6 (OGBN-Papers; GraphSAGE 3 layers, f=128, h=256, l=172)");

  // (a) Paper-scale analytic model. Vertices per partition ~ |V|*rep/P with
  // the paper's measured split shares.
  struct PaperRow {
    int partitions;
    double replication;  // Table 4 row for OGBN-Papers
    double split_share;  // Table 6 bottom row
  };
  const PaperRow rows[] = {{32, 4.63, 0.90}, {64, 5.63, 0.92}, {128, 6.62, 0.93}};
  TextTable paper({"partitions", "cd-0 (GB)", "cd-5 (GB)", "0c (GB)", "split-vertices (%)"});
  for (const PaperRow& r : rows) {
    MemoryModelInput in;
    in.partition_vertices =
        static_cast<std::int64_t>(111'059'956.0 * r.replication / r.partitions);
    in.feature_dim = 128;
    in.hidden1 = 256;
    in.hidden2 = 256;
    in.num_classes = 172;
    in.split_vertices = static_cast<std::int64_t>(r.split_share * static_cast<double>(in.partition_vertices));
    in.delay = 5;
    paper.add_row({TextTable::fmt_int(r.partitions),
                   TextTable::fmt(estimate_memory_cd0(in).total_gb, 0),
                   TextTable::fmt(estimate_memory_cdr(in).total_gb, 0),
                   TextTable::fmt(estimate_memory_0c(in).total_gb, 0),
                   TextTable::fmt(100 * r.split_share, 0)});
  }
  std::printf("%s", paper.render("(a) Analytic model at paper scale").c_str());
  std::printf("Paper-reported: cd-0 199/124/78 GB, cd-5 311/196/120 GB, 0c 180/112/70 GB.\n");

  // (b) Measured partition statistics of the sim dataset feeding the model.
  const Dataset ds = bench::load("ogbn-papers-sim", scale);
  TextTable sim({"partitions", "avg vertices/part", "split share (%)", "cd-0 (GB)", "cd-5 (GB)",
                 "0c (GB)"});
  for (const part_t parts : {4, 8, 16}) {
    const EdgePartition ep = partition_libra(ds.graph.coo(), parts);
    const PartitionQuality q = evaluate_partition(ds.graph.coo(), ep);
    MemoryModelInput in;
    in.partition_vertices = static_cast<std::int64_t>(
        static_cast<double>(q.touched_vertices) * q.replication_factor / parts);
    in.feature_dim = ds.feature_dim();
    in.hidden1 = in.hidden2 = 256;
    in.num_classes = ds.num_classes;
    in.split_vertices =
        static_cast<std::int64_t>(q.split_vertex_share * static_cast<double>(in.partition_vertices));
    in.delay = 5;
    sim.add_row({TextTable::fmt_int(parts), TextTable::fmt_int(in.partition_vertices),
                 TextTable::fmt(100 * q.split_vertex_share, 1),
                 TextTable::fmt(estimate_memory_cd0(in).total_gb, 3),
                 TextTable::fmt(estimate_memory_cdr(in).total_gb, 3),
                 TextTable::fmt(estimate_memory_0c(in).total_gb, 3)});
  }
  std::printf("%s", sim.render("(b) Model fed with measured sim-partition statistics").c_str());
  std::printf("\nShape check: 0c < cd-0 < cd-5 at every partition count; memory shrinks as\n"
              "partitions grow; split share climbs with partition count.\n");
  return 0;
}
