// Multi-tenant registry benchmarks — the isolation story measured head on:
//
//   * BM_Multitenant_SoloA: tenant A (SAGE) alone in the registry under its
//     nominal Poisson load — the baseline tail.
//   * BM_Multitenant_Isolation: the same A stream (byte-identical arrival
//     schedule) while tenant B (GAT) runs an MMPP overload capped by its
//     token-bucket budget and tenant C (RGCN) trickles — three model
//     families served from one process. CI asserts A's p99 stays within
//     1.5x its solo baseline and A's shed rate is exactly 0: B's burst
//     sheds from B's own lane, never A's.
//   * BM_Multitenant_WeightedFair: two tenants with 2:1 SLO weights
//     saturating one replica through the weighted-fair Router; served QPS
//     converges to the weight share (fair_ratio ~ 2).
//
// Custom flags (strict — typos fail loudly):
//   --seed=N       arrival/vertex stream seed (default 5)
//   --requests=N   requests per tenant per measured run (default 400)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "bench_serving_common.hpp"
#include "graph/datasets.hpp"
#include "graph/hetero.hpp"
#include "serve/inference_server.hpp"
#include "serve/model_registry.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/replica_group.hpp"
#include "serve/router.hpp"

namespace distgnn {
namespace {

using namespace distgnn::serve;

std::uint64_t g_seed = 5;
std::size_t g_requests = 400;

struct MultitenantFixture {
  Dataset homo;     // SAGE + GAT tenants
  Dataset hetero;   // RGCN tenant (merged graph + per-edge relations)
  std::shared_ptr<const ModelSnapshot> sage;
  std::shared_ptr<const ModelSnapshot> gat;
  std::shared_ptr<const ModelSnapshot> rgcn;
  /// Per-request service time of the SAGE reference — the calibration
  /// constant that makes offered load host-independent.
  double svc = 100e-6;

  static MultitenantFixture& get() {
    static MultitenantFixture f = make();
    return f;
  }

  static MultitenantFixture make() {
    MultitenantFixture f;
    LearnableSbmParams params;
    params.num_vertices = 4096;
    params.num_classes = 8;
    params.avg_degree = 16;
    params.feature_dim = 64;
    params.seed = 9;
    f.homo = make_learnable_sbm(params);
    (void)f.homo.graph.in_csr();

    HeteroDatasetParams hp;
    hp.num_vertices = 2048;
    hp.num_edge_types = 4;
    hp.avg_degree = 8;
    hp.feature_dim = 32;
    hp.seed = 19;
    f.hetero = hetero_to_dataset(make_hetero_dataset(hp));
    (void)f.hetero.graph.in_csr();

    ModelSpec sage;
    sage.kind = ModelKind::kSage;
    sage.feature_dim = f.homo.feature_dim();
    sage.hidden_dim = 64;
    sage.num_classes = f.homo.num_classes;
    sage.num_layers = 2;
    f.sage = ModelSnapshot::random(sage, /*seed=*/1, /*version=*/1);

    ModelSpec gat = sage;
    gat.kind = ModelKind::kGat;
    f.gat = ModelSnapshot::random(gat, /*seed=*/2, /*version=*/1);

    ModelSpec rgcn;
    rgcn.kind = ModelKind::kRgcn;
    rgcn.feature_dim = f.hetero.feature_dim();
    rgcn.hidden_dim = 32;
    rgcn.num_classes = f.hetero.num_classes;
    rgcn.num_layers = 2;
    rgcn.num_relations = f.hetero.num_edge_types;
    f.rgcn = ModelSnapshot::random(rgcn, /*seed=*/3, /*version=*/1);

    // Calibrate the SAGE service rate with a short closed-loop pass.
    InferenceServer single(f.homo, f.serve_config());
    single.publish(f.sage);
    single.start();
    for (vid_t v = 0; v < 64; ++v)
      (void)single.infer_sync((v * 131) % f.homo.num_vertices());
    if (single.mean_service_seconds() > 0) f.svc = single.mean_service_seconds();
    single.stop();
    return f;
  }

  ServeConfig serve_config() const {
    ServeConfig cfg;
    cfg.num_workers = 1;
    cfg.max_batch = 16;
    cfg.fanouts = {10, 10};
    return cfg;
  }
};

/// Tenant A's nominal stream: Poisson at 40% of one worker's capacity, the
/// same schedule in the solo and contended runs (same seed, same rate).
TenantStream stream_a(const MultitenantFixture& f, tenant_t tenant) {
  TenantStream s;
  s.tenant = tenant;
  s.arrivals.process = ArrivalProcess::kPoisson;
  s.arrivals.rate = 0.4 / f.svc;
  s.arrivals.seed = g_seed;
  s.num_requests = g_requests;
  s.seed = g_seed;
  return s;
}

void BM_Multitenant_SoloA(benchmark::State& state) {
  MultitenantFixture& f = MultitenantFixture::get();
  LoadReport last;
  TenantCounters lane;
  for (auto _ : state) {
    ModelRegistry registry;
    TenantSlo slo;
    slo.name = "alpha";
    const tenant_t a = registry.add_server(slo, f.homo, f.serve_config());
    registry.publish(a, f.sage);
    registry.start();
    const TenantStream streams[] = {stream_a(f, a)};
    last = run_registry_open_loop(registry, streams)[0];
    lane = registry.stats().tenants[static_cast<std::size_t>(a)];
    registry.stop();
  }
  state.SetLabel("solo");
  bench::attach_load_counters(state, last);
  bench::attach_tenant_counters(state, 0, last, lane);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(g_requests));
}
BENCHMARK(BM_Multitenant_SoloA)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_Multitenant_Isolation(benchmark::State& state) {
  MultitenantFixture& f = MultitenantFixture::get();
  const double capacity = 1.0 / f.svc;
  std::vector<LoadReport> last;
  BackendStats stats;
  obs::MetricsSnapshot scrape;
  for (auto _ : state) {
    ModelRegistry registry;
    TenantSlo slo_a;
    slo_a.name = "alpha";
    const tenant_t a = registry.add_server(slo_a, f.homo, f.serve_config());

    // B's admission budget is a fraction of A's nominal rate: the MMPP
    // overload below offers ~6x that, so most of B's burst sheds at B's
    // bucket and its backend never builds the backlog that would steal CPU.
    TenantSlo slo_b;
    slo_b.name = "bravo";
    slo_b.rate_limit = 0.2 * capacity;
    slo_b.burst = 32;
    const tenant_t b = registry.add_server(slo_b, f.homo, f.serve_config());

    TenantSlo slo_c;
    slo_c.name = "charlie";
    ServeConfig rgcn_cfg = f.serve_config();
    const tenant_t c = registry.add_server(slo_c, f.hetero, rgcn_cfg);

    registry.publish(a, f.sage);
    registry.publish(b, f.gat);
    registry.publish(c, f.rgcn);
    registry.start();

    TenantStream sb;  // the bursty neighbour
    sb.tenant = b;
    sb.arrivals.process = ArrivalProcess::kMmpp;
    sb.arrivals.mmpp_rate0 = 0.3 * capacity;
    sb.arrivals.mmpp_rate1 = 4.0 * capacity;
    sb.arrivals.mmpp_hold0 = 0.005;
    sb.arrivals.mmpp_hold1 = 0.004;
    sb.arrivals.seed = g_seed + 1;
    sb.num_requests = g_requests;
    sb.seed = g_seed + 1;

    TenantStream sc;  // the light relational tenant
    sc.tenant = c;
    sc.arrivals.process = ArrivalProcess::kPoisson;
    sc.arrivals.rate = 0.05 * capacity;
    sc.arrivals.seed = g_seed + 2;
    sc.num_requests = std::max<std::size_t>(16, g_requests / 8);
    sc.seed = g_seed + 2;

    const TenantStream streams[] = {stream_a(f, a), sb, sc};
    last = run_registry_open_loop(registry, streams);
    stats = registry.stats();
    scrape = obs::MetricsSnapshot{};
    registry.scrape(scrape);
    registry.stop();
  }
  state.SetLabel("A+B(burst)+C");
  bench::attach_load_counters(state, last[0]);  // headline = tenant A
  for (std::size_t t = 0; t < last.size(); ++t)
    bench::attach_tenant_counters(state, static_cast<tenant_t>(t), last[t],
                                  stats.tenants[t]);
  bench::attach_stage_counters(state, scrape, "server");
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(g_requests));
}
BENCHMARK(BM_Multitenant_Isolation)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_Multitenant_WeightedFair(benchmark::State& state) {
  MultitenantFixture& f = MultitenantFixture::get();
  const double capacity = 1.0 / f.svc;
  LoadReport heavy, light;
  RouterStats rstats;
  for (auto _ : state) {
    ReplicaGroup group(f.homo, f.serve_config(), /*num_replicas=*/1);
    group.publish(f.sage);
    group.start();

    AdmissionConfig admission;
    admission.shed_deadlines = false;  // fairness only — nothing sheds
    admission.low_priority_depth = 0;
    TenantSlo w2;
    w2.name = "heavy";
    w2.weight = 2.0;
    TenantSlo w1;
    w1.name = "light";
    w1.weight = 1.0;
    admission.tenants = {w2, w1};
    admission.dispatch_window = 4;  // small window => staging (and WRR) rule
    Router router(group, RoutePolicy::kRoundRobin, admission);

    // Both tenants offer ~3x capacity, so while both lanes are backlogged
    // the dispatch shares follow the 2:1 weights. fair_ratio is the
    // lane-completed ratio sampled when the heavy stream finishes — the
    // light lane is still saturated at that instant, so the ratio reads the
    // weighted shares directly (whole-run QPS would be diluted by the
    // light tenant's post-contention drain at full capacity).
    const auto make_load = [&](tenant_t tenant, std::uint64_t seed) {
      RouterLoadConfig load;
      load.arrivals.process = ArrivalProcess::kPoisson;
      load.arrivals.rate = 3.0 * capacity;
      load.arrivals.seed = seed;
      load.num_requests = g_requests;
      load.seed = seed;
      load.tenant = tenant;
      return load;
    };
    RouterStats at_heavy_done;
    std::thread heavy_thread([&] {
      heavy = run_router_open_loop(router, make_load(0, g_seed));
      at_heavy_done = router.stats();
    });
    light = run_router_open_loop(router, make_load(1, g_seed + 1));
    heavy_thread.join();
    rstats = router.stats();
    group.stop();
    const double served_heavy = static_cast<double>(at_heavy_done.tenants[0].completed);
    const double served_light = static_cast<double>(at_heavy_done.tenants[1].completed);
    state.counters["fair_ratio"] = served_light > 0 ? served_heavy / served_light : 0.0;
  }
  state.SetLabel("w2:w1");
  bench::attach_load_counters(state, heavy);
  bench::attach_admission_counters(state, rstats);
  state.counters["tenant_0_qps"] = heavy.qps;
  state.counters["tenant_1_qps"] = light.qps;
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(2 * g_requests));
}
BENCHMARK(BM_Multitenant_WeightedFair)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace distgnn

int main(int argc, char** argv) {
  return distgnn::bench::run_strict_benchmark_main(
      argc, argv, "bench_multitenant", {"seed", "requests"},
      [](const distgnn::Options& opts) {
        distgnn::g_seed = static_cast<std::uint64_t>(
            opts.get_int("seed", static_cast<long long>(distgnn::g_seed)));
        distgnn::g_requests = static_cast<std::size_t>(
            opts.get_int("requests", static_cast<long long>(distgnn::g_requests)));
      });
}
