// Health-monitor overhead benchmarks: what watching the tower costs the
// tower.
//
//   * BM_Health_MixedLoopOverhead: the bench_stream mixed read+write loop
//     (open-loop Poisson reads racing a delta stream through the version
//     barrier) run back to back with the HealthMonitor off and on — the
//     monitor scraping server + publisher, evaluating every rule at its
//     production cadence. Emits both p99s and `overhead_ratio` =
//     p99_on / p99_off; CI gates overhead_ratio < 1.10, pinning the claim
//     that observing the tower does not move its tail.
//   * BM_Health_TickCost: the monitor's scrape+ingest+evaluate cycle in
//     isolation over a live scraped tower — per-tick latency, plus
//     `series_allocs_steady`: series allocations across the measured ticks,
//     which must be 0 (the sample path reuses the warmed rings).
//
// Custom flags (strict — typos fail loudly):
//   --seed=N        traffic/stream seed for reproducible artifacts (5)
//   --requests=N    read requests per measured run (default 1500)
//   --deltas=N      deltas per mixed run (default 16)
//   --read-rate=R   open-loop read arrivals/second (default 600 — sized to
//                   leave CPU headroom so the ratio measures the monitor,
//                   not saturation noise)
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_serving_common.hpp"
#include "graph/datasets.hpp"
#include "obs/health.hpp"
#include "serve/inference_server.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/traffic_gen.hpp"
#include "stream/delta_publisher.hpp"
#include "stream/graph_delta.hpp"
#include "stream/mixed_loop.hpp"

namespace distgnn {
namespace {

using namespace distgnn::serve;
using namespace distgnn::stream;

std::uint64_t g_seed = 5;
std::size_t g_requests = 1500;
std::size_t g_deltas = 16;
double g_read_rate = 600.0;

struct HealthBenchFixture {
  Dataset dataset;
  std::shared_ptr<const ModelSnapshot> snapshot;

  static HealthBenchFixture& get() {
    static HealthBenchFixture f = make();
    return f;
  }

  static HealthBenchFixture make() {
    LearnableSbmParams params;
    params.num_vertices = 2048;
    params.num_classes = 8;
    params.avg_degree = 12;
    params.feature_dim = 32;
    params.seed = 9;
    HealthBenchFixture f{make_learnable_sbm(params), nullptr};
    ModelSpec spec;
    spec.kind = ModelKind::kSage;
    spec.feature_dim = f.dataset.feature_dim();
    spec.hidden_dim = 32;
    spec.num_classes = f.dataset.num_classes;
    spec.num_layers = 2;
    f.snapshot = ModelSnapshot::random(spec, /*seed=*/1, /*version=*/1);
    (void)f.dataset.graph.in_csr();
    return f;
  }
};

ServeConfig health_serve_config() {
  ServeConfig cfg;
  cfg.num_workers = 2;
  cfg.max_batch = 16;
  cfg.fanouts = {10, 10};
  return cfg;
}

/// One mixed read+write run; when `monitored` the HealthMonitor scrapes the
/// server and publisher at its production cadence for the whole run.
MixedLoopReport run_once(bool monitored) {
  HealthBenchFixture& f = HealthBenchFixture::get();
  DeltaStreamConfig stream_cfg;
  stream_cfg.num_deltas = static_cast<int>(g_deltas);
  stream_cfg.seed = g_seed + 11;
  const std::vector<GraphDelta> deltas = make_delta_stream(f.dataset, stream_cfg);

  MixedLoopConfig mixed;
  mixed.reads.process = ArrivalProcess::kPoisson;
  mixed.reads.rate = g_read_rate;
  mixed.reads.seed = g_seed;
  mixed.num_requests = g_requests;
  mixed.read_seed = g_seed;
  mixed.writes.process = ArrivalProcess::kPoisson;
  mixed.writes.rate = 100.0;
  mixed.writes.seed = g_seed + 3;

  Dataset live_data = f.dataset;
  InferenceServer server(live_data, health_serve_config());
  server.publish(f.snapshot);
  server.start();
  DeltaPublisher publisher(live_data, server);

  stream::DeltaLog log;  // outlives the monitor's epoch probe
  obs::HealthMonitor monitor;  // production clock + cadence
  if (monitored) {
    monitor.add_source("server", server);
    monitor.set_slo(/*tenant=*/0, /*deadline_seconds=*/5e-3, /*target=*/0.999);
    publisher.configure_health(monitor, log);
    monitor.start();
  }
  const MixedLoopReport report = run_mixed_open_loop(server, publisher, deltas, mixed);
  if (monitored) monitor.stop();
  server.stop();
  return report;
}

void BM_Health_MixedLoopOverhead(benchmark::State& state) {
  MixedLoopReport off, on;
  for (auto _ : state) {
    off = run_once(/*monitored=*/false);
    on = run_once(/*monitored=*/true);
  }
  state.SetLabel("monitor-on-vs-off");
  bench::attach_load_counters(state, on.reads);
  state.counters["p99_off_ms"] = off.reads.p99_ms;
  state.counters["p99_on_ms"] = on.reads.p99_ms;
  state.counters["overhead_ratio"] =
      off.reads.p99_ms > 0 ? on.reads.p99_ms / off.reads.p99_ms : 0.0;
  state.counters["qps_off"] = off.reads.qps;
  state.counters["qps_on"] = on.reads.qps;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(on.reads.completed));
}
BENCHMARK(BM_Health_MixedLoopOverhead)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_Health_TickCost(benchmark::State& state) {
  HealthBenchFixture& f = HealthBenchFixture::get();
  Dataset live_data = f.dataset;
  InferenceServer server(live_data, health_serve_config());
  server.publish(f.snapshot);
  server.start();

  // Put real traffic through so the scrape carries populated per-tenant
  // histograms — the expensive case for ingest.
  std::vector<vid_t> vertices;
  const auto n = static_cast<vid_t>(live_data.num_vertices());
  for (vid_t i = 0; i < 128; ++i) vertices.push_back((i * 37) % n);
  (void)server.infer_batch(vertices);
  server.drain();

  obs::HealthMonitor monitor;
  monitor.add_source("server", server);
  monitor.set_slo(0, 5e-3, 0.999);
  for (int i = 0; i < 8; ++i) monitor.tick();  // warm the rings
  const std::uint64_t warmed = monitor.series_allocations();

  for (auto _ : state) monitor.tick();

  state.SetLabel("tick");
  state.counters["series"] = static_cast<double>(monitor.num_series());
  state.counters["series_allocs_steady"] =
      static_cast<double>(monitor.series_allocations() - warmed);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  server.stop();
}
BENCHMARK(BM_Health_TickCost)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace distgnn

int main(int argc, char** argv) {
  return distgnn::bench::run_strict_benchmark_main(
      argc, argv, "bench_health", {"seed", "requests", "deltas", "read-rate"},
      [](const distgnn::Options& opts) {
        distgnn::g_seed = static_cast<std::uint64_t>(
            opts.get_int("seed", static_cast<long long>(distgnn::g_seed)));
        distgnn::g_requests = static_cast<std::size_t>(
            opts.get_int("requests", static_cast<long long>(distgnn::g_requests)));
        distgnn::g_deltas = static_cast<std::size_t>(
            opts.get_int("deltas", static_cast<long long>(distgnn::g_deltas)));
        distgnn::g_read_rate = opts.get_double("read-rate", distgnn::g_read_rate);
      });
}
