// Streaming-update benchmarks: what graph mutability costs the read path,
// and what targeted invalidation saves over the blunt alternative.
//
//   * BM_Stream_FrozenBaseline: open-loop Poisson reads, no writes — the
//     p99 yardstick the mixed runs are compared against.
//   * BM_Stream_MixedPoisson / BM_Stream_MixedMmpp: the same read workload
//     while a delta stream publishes through the version barrier (Poisson
//     at --write-rate, or bursty 2-state MMPP — bursts are the hard case,
//     each delta costs a drain). Emits read QPS/tails, apply-latency
//     quantiles, the final epoch, and `match`: after the run the live
//     server is probed against a cold server built over the final graph —
//     1.0 iff every logit is bitwise-equal. CI asserts match == 1 and
//     mixed p99 < 1.5x frozen p99.
//   * BM_Stream_InvalidationTargetedVsFlush: embed-forward A/B — warm the
//     layer-output cache, publish one small delta, measure the next pass's
//     hit rate under targeted (k-hop dirty set) vs full-flush invalidation.
//     CI asserts hit_targeted >= 5x hit_flush.
//
// Custom flags (strict — typos fail loudly):
//   --seed=N        traffic/stream seed for reproducible artifacts (5)
//   --requests=N    read requests per measured run (default 2000)
//   --deltas=N      deltas per mixed run (default 24)
//   --write-rate=R  mean delta publishes/second (default 100)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "bench_serving_common.hpp"
#include "graph/datasets.hpp"
#include "serve/inference_server.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/traffic_gen.hpp"
#include "stream/delta_publisher.hpp"
#include "stream/graph_delta.hpp"
#include "stream/mixed_loop.hpp"

namespace distgnn {
namespace {

using namespace distgnn::serve;
using namespace distgnn::stream;

std::uint64_t g_seed = 5;
std::size_t g_requests = 2000;
std::size_t g_deltas = 24;
double g_write_rate = 100.0;

struct StreamFixture {
  Dataset dataset;
  std::shared_ptr<const ModelSnapshot> snapshot;

  static StreamFixture& get() {
    static StreamFixture f = make();
    return f;
  }

  static StreamFixture make() {
    LearnableSbmParams params;
    params.num_vertices = 4096;
    params.num_classes = 8;
    params.avg_degree = 16;
    params.feature_dim = 32;
    params.seed = 9;
    StreamFixture f{make_learnable_sbm(params), nullptr};
    ModelSpec spec;
    spec.kind = ModelKind::kSage;
    spec.feature_dim = f.dataset.feature_dim();
    spec.hidden_dim = 32;
    spec.num_classes = f.dataset.num_classes;
    spec.num_layers = 2;
    f.snapshot = ModelSnapshot::random(spec, /*seed=*/1, /*version=*/1);
    (void)f.dataset.graph.in_csr();
    return f;
  }
};

ServeConfig stream_serve_config() {
  ServeConfig cfg;
  cfg.num_workers = 2;
  cfg.max_batch = 16;
  cfg.fanouts = {10, 10};
  return cfg;
}

ArrivalConfig read_arrivals() {
  ArrivalConfig reads;
  reads.process = ArrivalProcess::kPoisson;
  reads.rate = 2000.0;
  reads.seed = g_seed;
  return reads;
}

Dataset rebuild_final(const Dataset& base, const std::vector<GraphDelta>& deltas) {
  Dataset cold = base;
  for (const GraphDelta& delta : deltas) apply_delta(cold, delta);
  return cold;
}

/// Bitwise freshness probe: 1.0 iff the streamed server answers every probe
/// identically to a cold server over the final graph.
double probe_matches_cold(ServingBackend& live, const Dataset& final_data,
                          const std::shared_ptr<const ModelSnapshot>& snapshot) {
  InferenceServer cold(final_data, stream_serve_config());
  cold.publish(snapshot);
  cold.start();
  bool all_equal = true;
  const auto n = static_cast<vid_t>(final_data.num_vertices());
  for (vid_t i = 0; i < 64; ++i) {
    const vid_t v = (i * 61) % n;
    if (live.infer_sync(v).logits != cold.infer_sync(v).logits) all_equal = false;
  }
  cold.stop();
  return all_equal ? 1.0 : 0.0;
}

/// Shared body for the mixed read+write runs; `writes` selects the delta
/// arrival process.
void run_mixed(benchmark::State& state, const ArrivalConfig& writes, const char* label) {
  StreamFixture& f = StreamFixture::get();
  DeltaStreamConfig stream_cfg;
  stream_cfg.num_deltas = g_deltas;
  stream_cfg.seed = g_seed + 11;
  const std::vector<GraphDelta> deltas = make_delta_stream(f.dataset, stream_cfg);

  MixedLoopConfig mixed;
  mixed.reads = read_arrivals();
  mixed.num_requests = g_requests;
  mixed.read_seed = g_seed;
  mixed.writes = writes;

  MixedLoopReport report;
  StreamStats stats;
  obs::MetricsSnapshot scrape;
  double match = 0.0;
  for (auto _ : state) {
    Dataset live_data = f.dataset;
    InferenceServer server(live_data, stream_serve_config());
    server.publish(f.snapshot);
    server.start();
    DeltaPublisher publisher(live_data, server);
    report = run_mixed_open_loop(server, publisher, deltas, mixed);
    stats = publisher.stats();
    scrape = obs::MetricsSnapshot{};
    publisher.scrape(scrape);
    state.PauseTiming();
    match = probe_matches_cold(server, rebuild_final(f.dataset, deltas), f.snapshot);
    state.ResumeTiming();
    server.stop();
  }

  state.SetLabel(label);
  bench::attach_load_counters(state, report.reads);
  bench::attach_stage_counters(state, scrape, "stream");
  state.counters["match"] = match;
  state.counters["deltas"] = static_cast<double>(report.deltas_published);
  state.counters["final_epoch"] = static_cast<double>(report.final_epoch);
  state.counters["apply_mean_ms"] = report.apply_mean_ms;
  state.counters["apply_p50_ms"] = report.apply_p50_ms;
  state.counters["apply_p99_ms"] = report.apply_p99_ms;
  state.counters["dirty_entries"] = static_cast<double>(stats.dirty_entries);
  state.counters["full_flush_equivalent"] = static_cast<double>(stats.full_flush_equivalent);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(report.reads.completed));
}

void BM_Stream_FrozenBaseline(benchmark::State& state) {
  StreamFixture& f = StreamFixture::get();
  LoadReport report;
  for (auto _ : state) {
    Dataset live_data = f.dataset;
    InferenceServer server(live_data, stream_serve_config());
    server.publish(f.snapshot);
    server.start();
    TrafficGenerator reads(server, g_seed, /*zipf_s=*/0.0);
    report = reads.run_open_loop(read_arrivals(), g_requests);
    server.stop();
  }
  state.SetLabel("frozen");
  bench::attach_load_counters(state, report);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(report.completed));
}
BENCHMARK(BM_Stream_FrozenBaseline)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_Stream_MixedPoisson(benchmark::State& state) {
  ArrivalConfig writes;
  writes.process = ArrivalProcess::kPoisson;
  writes.rate = g_write_rate;
  writes.seed = g_seed + 3;
  run_mixed(state, writes, "poisson-writes");
}
BENCHMARK(BM_Stream_MixedPoisson)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_Stream_MixedMmpp(benchmark::State& state) {
  // Bursty writes with the same long-run mean as --write-rate: a quarter of
  // the mean in the calm state, 4x in the burst state.
  ArrivalConfig writes;
  writes.process = ArrivalProcess::kMmpp;
  writes.rate = g_write_rate;
  writes.mmpp_rate0 = g_write_rate * 0.25;
  writes.mmpp_rate1 = g_write_rate * 4.0;
  writes.mmpp_hold0 = 0.040;
  writes.mmpp_hold1 = 0.010;
  writes.seed = g_seed + 3;
  run_mixed(state, writes, "mmpp-writes");
}
BENCHMARK(BM_Stream_MixedMmpp)->Unit(benchmark::kMillisecond)->UseRealTime();

/// Embed-forward hit rate of the pass right after one small delta, under
/// the given invalidation policy. The warm pass uses canonical sampling, so
/// a retained entry is a guaranteed hit on the next pass.
double hit_rate_after_delta(bool full_flush) {
  StreamFixture& f = StreamFixture::get();
  Dataset live_data = f.dataset;
  ServeConfig cfg = stream_serve_config();
  cfg.embed_forward = true;
  cfg.embed_cache_bytes = 32ull << 20;
  InferenceServer server(live_data, cfg);
  server.publish(f.snapshot);
  server.start();
  StreamConfig stream_cfg;
  stream_cfg.full_flush = full_flush;
  DeltaPublisher publisher(live_data, server, stream_cfg);

  const auto n = static_cast<vid_t>(live_data.num_vertices());
  std::vector<vid_t> probes;
  for (vid_t i = 0; i < 64; ++i) probes.push_back((i * 61) % n);
  for (const vid_t v : probes) (void)server.infer_sync(v);  // warm

  GraphDelta delta;  // small: 4 edge inserts, the targeted case's sweet spot
  for (vid_t i = 0; i < 4; ++i)
    delta.edge_inserts.push_back({static_cast<vid_t>(i * 101 % n),
                                  static_cast<vid_t>((i * 211 + 7) % n), 0});
  publisher.publish(delta);

  const CacheStats before = server.embed_cache()->combined_stats();
  for (const vid_t v : probes) (void)server.infer_sync(v);
  const CacheStats after = server.embed_cache()->combined_stats();
  server.stop();
  const double accesses = static_cast<double>(after.accesses - before.accesses);
  const double misses = static_cast<double>(after.misses - before.misses);
  return accesses > 0 ? 1.0 - misses / accesses : 0.0;
}

void BM_Stream_InvalidationTargetedVsFlush(benchmark::State& state) {
  double hit_targeted = 0.0, hit_flush = 0.0;
  for (auto _ : state) {
    hit_targeted = hit_rate_after_delta(/*full_flush=*/false);
    hit_flush = hit_rate_after_delta(/*full_flush=*/true);
  }
  state.SetLabel("targeted-vs-flush");
  state.counters["hit_targeted"] = hit_targeted;
  state.counters["hit_flush"] = hit_flush;
  state.counters["hit_ratio"] =
      hit_flush > 0 ? hit_targeted / hit_flush : (hit_targeted > 0 ? 1e9 : 0.0);
}
BENCHMARK(BM_Stream_InvalidationTargetedVsFlush)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace distgnn

int main(int argc, char** argv) {
  return distgnn::bench::run_strict_benchmark_main(
      argc, argv, "bench_stream", {"seed", "requests", "deltas", "write-rate"},
      [](const distgnn::Options& opts) {
        distgnn::g_seed = static_cast<std::uint64_t>(
            opts.get_int("seed", static_cast<long long>(distgnn::g_seed)));
        distgnn::g_requests = static_cast<std::size_t>(
            opts.get_int("requests", static_cast<long long>(distgnn::g_requests)));
        distgnn::g_deltas = static_cast<std::size_t>(
            opts.get_int("deltas", static_cast<long long>(distgnn::g_deltas)));
        distgnn::g_write_rate = opts.get_double("write-rate", distgnn::g_write_rate);
      });
}
