// Ablation of halo-payload precision (§7 future work): FP32 vs BF16 vs FP16
// partial aggregates. Measures halo bytes per epoch and final accuracy.
#include <cstdio>

#include "bench_common.hpp"
#include "core/distributed_trainer.hpp"
#include "partition/libra.hpp"
#include "partition/partition_setup.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace distgnn;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int epochs = static_cast<int>(opts.get_int("epochs", 50));
  const int ranks = static_cast<int>(opts.get_int("ranks", 4));

  bench::print_header("Halo precision ablation: FP32 vs BF16 vs FP16 partial aggregates",
                      "§7 future work (low-precision communication)");

  LearnableSbmParams p;
  p.num_vertices = opts.get_int("vertices", 4096);
  p.num_classes = 8;
  p.avg_degree = 16;
  p.feature_dim = 32;
  p.feature_noise = 1.2f;
  p.seed = 29;
  const Dataset ds = make_learnable_sbm(p);
  const PartitionedGraph pg =
      build_partitions(ds.graph.coo(), partition_libra(ds.graph.coo(), ranks), 1);

  TrainConfig cfg;
  cfg.num_layers = 2;
  cfg.hidden_dim = 32;
  cfg.lr = 0.1;
  cfg.epochs = epochs;
  cfg.delay = 5;

  for (const Algorithm alg : {Algorithm::kCd0, Algorithm::kCdR}) {
    cfg.algorithm = alg;
    TextTable table({"precision", "test acc (%)", "halo MB/epoch", "vs fp32 bytes"});
    double fp32_bytes = 0;
    for (const HaloPrecision precision :
         {HaloPrecision::kFp32, HaloPrecision::kBf16, HaloPrecision::kFp16}) {
      cfg.halo_precision = precision;
      const DistTrainResult result = train_distributed(ds, pg, cfg);
      const double mb = static_cast<double>(result.total_bytes_sent) / 1e6 / epochs;
      if (precision == HaloPrecision::kFp32) fp32_bytes = mb;
      table.add_row({to_string(precision), TextTable::fmt(100 * result.test_accuracy, 2),
                     TextTable::fmt(mb, 3), TextTable::fmt(mb / fp32_bytes, 2) + "x"});
    }
    std::printf("%s", table.render("Algorithm " + to_string(alg) + " at " +
                                   std::to_string(ranks) + " sockets").c_str());
  }
  std::printf("\nExpected: 16-bit payloads ~0.5x the bytes with accuracy within noise of\n"
              "fp32 -- the paper's motivation for pursuing low-precision formats.\n");
  return 0;
}
