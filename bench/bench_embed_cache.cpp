// Embedding-cache and halo-prefetch benchmarks — the two serving-tier
// "avoid redundant work" levers measured head to head against their
// baselines:
//
//   * BM_EmbedCache_{On,Off}: closed-loop QPS and tail latency of the
//     embed-forward server under Zipf(s) repeat-query popularity, with the
//     layer-output cache enabled vs disabled (same canonical sampling, so
//     answers are bitwise-identical; only the work moves). CI asserts
//     hit_rate > 0 and cached p99 <= uncached p99.
//   * BM_ShardedHalo_{Sync,Prefetch}: 2-rank sharded serving with the halo
//     feature fetch synchronous vs double-buffered; halo_wait_us_per_batch
//     is the fetch/compute-overlap headline (prefetch strictly below sync).
//
// Custom flags (strict — typos fail loudly):
//   --seed=N      traffic/arrival seed for reproducible JSON artifacts (5)
//   --zipf-s=S    query popularity skew; 0 = uniform (default 1.0)
//   --requests=N  requests per measured run (default 2000)
//   --cache-mb=N  embedding-cache capacity in MiB (default 32)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "bench_serving_common.hpp"
#include "graph/datasets.hpp"
#include "partition/libra.hpp"
#include "serve/inference_server.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/sharded_server.hpp"
#include "serve/traffic_gen.hpp"

namespace distgnn {
namespace {

using namespace distgnn::serve;

std::uint64_t g_seed = 5;
double g_zipf_s = 1.0;
std::size_t g_requests = 2000;
std::uint64_t g_cache_mb = 32;

struct EmbedFixture {
  Dataset dataset;
  std::shared_ptr<const ModelSnapshot> snapshot;

  static EmbedFixture& get() {
    static EmbedFixture f = make();
    return f;
  }

  static EmbedFixture make() {
    LearnableSbmParams params;
    params.num_vertices = 4096;
    params.num_classes = 8;
    params.avg_degree = 16;
    params.feature_dim = 64;
    params.seed = 9;
    EmbedFixture f{make_learnable_sbm(params), nullptr};
    ModelSpec spec;
    spec.feature_dim = f.dataset.feature_dim();
    spec.hidden_dim = 64;
    spec.num_classes = f.dataset.num_classes;
    spec.num_layers = 2;
    f.snapshot = ModelSnapshot::random(spec, /*seed=*/1, /*version=*/1);
    (void)f.dataset.graph.in_csr();
    return f;
  }
};

/// Closed-loop Zipf workload against the embed-forward server; `cache_on`
/// toggles the layer-output cache, everything else held equal. The shared
/// run_embed_cache_workload harness warms with one pass and measures a
/// second pass from a fresh draw stream over the same hot set — steady-state
/// serving is the regime the cache exists for, and sharing the harness with
/// serve_demo keeps the demo's summary line and these CI-asserted counters
/// protocol-identical.
void run_embed_cache(benchmark::State& state, bool cache_on) {
  EmbedFixture& f = EmbedFixture::get();
  ServeConfig cfg;
  cfg.num_workers = 2;
  cfg.max_batch = 16;
  cfg.fanouts = {10, 10};
  const int clients = 4;
  const int per_client = std::max(1, static_cast<int>(g_requests) / clients);

  EmbedWorkloadReport last;
  for (auto _ : state)
    last = run_embed_cache_workload(f.dataset, f.snapshot, cfg,
                                    cache_on ? g_cache_mb << 20 : 0, g_zipf_s, g_seed,
                                    clients, per_client);

  state.SetLabel(cache_on ? "embed-cache" : "no-cache");
  bench::attach_load_counters(state, last.load);
  state.counters["hit_rate"] = last.hit_rate;
  state.counters["zipf_s"] = g_zipf_s;
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(last.load.completed));
}

void BM_EmbedCache_On(benchmark::State& state) { run_embed_cache(state, true); }
BENCHMARK(BM_EmbedCache_On)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_EmbedCache_Off(benchmark::State& state) { run_embed_cache(state, false); }
BENCHMARK(BM_EmbedCache_Off)->Unit(benchmark::kMillisecond)->UseRealTime();

/// 2-rank sharded serving over a libra vertex-cut; `prefetch_depth` sets the
/// halo-fetch ring (1 = synchronous, 2 = the classic double buffer).
/// halo_wait_us_per_batch is the stall the overlap removes; answers are
/// bitwise-identical at every depth.
void run_sharded_halo(benchmark::State& state, int prefetch_depth) {
  EmbedFixture& f = EmbedFixture::get();
  const EdgePartition partition = partition_libra(f.dataset.graph.coo(), /*num_parts=*/2);

  std::vector<vid_t> requests;
  Rng rng(g_seed);
  const std::size_t count = std::max<std::size_t>(64, g_requests / 4);
  for (std::size_t i = 0; i < count; ++i)
    requests.push_back(static_cast<vid_t>(
        rng.next_below(static_cast<std::uint64_t>(f.dataset.num_vertices()))));

  ShardedServeConfig cfg;
  cfg.max_batch = 8;
  cfg.fanouts = {10, 10};
  cfg.prefetch_depth = prefetch_depth;

  // Direct long-lived ShardedServer (the serve_sharded wrapper is gone);
  // rebuilt per iteration so every measurement covers a cold tier like before.
  BackendStats last;
  obs::MetricsSnapshot scrape;
  for (auto _ : state) {
    ShardedServer server(f.dataset, partition, cfg);
    server.publish(f.snapshot);
    server.start();
    for (const vid_t v : requests) {
      while (!server.submit(v, [](InferResult&&) {}))
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    server.drain();
    last = server.stats();
    scrape = obs::MetricsSnapshot{};
    server.scrape(scrape);
    server.stop();
  }

  state.SetLabel("depth" + std::to_string(prefetch_depth));
  bench::attach_stage_counters(state, scrape, "sharded");
  state.counters["halo_wait_us_per_batch"] = last.mean_halo_wait_per_batch() * 1e6;
  state.counters["halo_rows"] = static_cast<double>(last.halo_rows_fetched);
  state.counters["served"] = static_cast<double>(requests.size());
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(requests.size()));
}

void BM_ShardedHalo_Sync(benchmark::State& state) { run_sharded_halo(state, /*depth=*/1); }
BENCHMARK(BM_ShardedHalo_Sync)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ShardedHalo_Prefetch(benchmark::State& state) { run_sharded_halo(state, /*depth=*/2); }
BENCHMARK(BM_ShardedHalo_Prefetch)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace distgnn

int main(int argc, char** argv) {
  return distgnn::bench::run_strict_benchmark_main(
      argc, argv, "bench_embed_cache", {"seed", "zipf-s", "requests", "cache-mb"},
      [](const distgnn::Options& opts) {
        distgnn::g_seed = static_cast<std::uint64_t>(
            opts.get_int("seed", static_cast<long long>(distgnn::g_seed)));
        distgnn::g_zipf_s = opts.get_double("zipf-s", distgnn::g_zipf_s);
        distgnn::g_requests = static_cast<std::size_t>(
            opts.get_int("requests", static_cast<long long>(distgnn::g_requests)));
        distgnn::g_cache_mb = static_cast<std::uint64_t>(
            opts.get_int("cache-mb", static_cast<long long>(distgnn::g_cache_mb)));
      });
}
