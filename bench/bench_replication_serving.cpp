// Replicated serving tier benchmarks: QPS, tail latency (p99/p99.9), and
// shed rate under bursty 2-state MMPP load, swept over replica count and
// routing policy, plus a deadline-shedding on/off comparison at equal
// offered load. Counters land in the CI JSON artifact next to
// bench_serving's, so the serving trajectory covers the replicated tier too.
//
// Custom flags (strict — typos fail loudly):
//   --rate=N         offered MMPP long-run mean rate, requests/s (default 3000)
//   --requests=N     requests per measured run (default 300)
//   --deadline-ms=N  per-request deadline for admission control (default 20)
//   --seed=N         arrival/vertex/priority stream seed (default 5)
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_serving_common.hpp"
#include "graph/datasets.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/replica_group.hpp"
#include "serve/router.hpp"

namespace distgnn {
namespace {

using namespace distgnn::serve;

double g_rate = 3000.0;
std::size_t g_requests = 300;
double g_deadline_ms = 20.0;
// --seed drives the arrival process and the router's vertex/priority
// streams, so the JSON artifact is reproducible run-to-run.
std::uint64_t g_seed = 5;

struct ReplicationFixture {
  Dataset dataset;
  std::shared_ptr<const ModelSnapshot> snapshot;

  static ReplicationFixture& get() {
    static ReplicationFixture f = make();
    return f;
  }

  static ReplicationFixture make() {
    LearnableSbmParams params;
    params.num_vertices = 4096;
    params.num_classes = 8;
    params.avg_degree = 16;
    params.feature_dim = 64;
    params.seed = 9;
    ReplicationFixture f{make_learnable_sbm(params), nullptr};
    ModelSpec spec;
    spec.feature_dim = f.dataset.feature_dim();
    spec.hidden_dim = 64;
    spec.num_classes = f.dataset.num_classes;
    spec.num_layers = 2;
    f.snapshot = ModelSnapshot::random(spec, /*seed=*/1, /*version=*/1);
    (void)f.dataset.graph.in_csr();
    return f;
  }

  ServeConfig config() const {
    ServeConfig cfg;
    cfg.num_workers = 1;  // per replica: scaling comes from replication
    cfg.max_batch = 16;
    cfg.max_batch_delay = std::chrono::microseconds(500);
    cfg.fanouts = {10, 10};
    cfg.queue_capacity = 512;
    return cfg;
  }
};

ArrivalConfig mmpp_arrivals() {
  ArrivalConfig arrivals;
  arrivals.process = ArrivalProcess::kMmpp;
  arrivals.rate = g_rate;
  arrivals.mmpp_rate0 = g_rate / 4;
  arrivals.mmpp_rate1 = g_rate * 4;
  arrivals.seed = g_seed;
  return arrivals;
}

/// One measured run: group of `replicas`, `policy` routing, MMPP arrivals
/// with per-request deadlines; `shed` toggles deadline shedding (the shed=0
/// rows are the equal-offered-load baseline the shedding rows beat on p99).
void run_replicated(benchmark::State& state, int replicas, RoutePolicy policy, bool shed) {
  ReplicationFixture& f = ReplicationFixture::get();
  LoadReport last;
  RouterStats last_stats;
  obs::MetricsSnapshot scrape;
  for (auto _ : state) {
    ReplicaGroup group(f.dataset, f.config(), replicas);
    group.publish(f.snapshot);
    group.start();
    AdmissionConfig admission;
    admission.shed_deadlines = shed;
    admission.low_priority_depth = 64;
    Router router(group, policy, admission);

    // Closed-loop warmup primes the per-replica service-rate estimate the
    // deadline controller divides queue depth by.
    std::vector<vid_t> warmup;
    for (vid_t v = 0; v < 32; ++v) warmup.push_back((v * 131) % f.dataset.num_vertices());
    (void)router.infer_batch(warmup);
    const RouterStats warmed = router.stats();  // measured run reports deltas

    RouterLoadConfig load;
    load.arrivals = mmpp_arrivals();
    load.num_requests = g_requests;
    load.deadline_seconds = g_deadline_ms * 1e-3;
    load.low_priority_fraction = 0.3;
    load.seed = g_seed;
    last = run_router_open_loop(router, load);
    last_stats = router.stats().since(warmed);
    scrape = obs::MetricsSnapshot{};
    router.scrape(scrape);
    group.stop();
  }
  state.SetLabel(route_policy_name(policy) + (shed ? "/shed" : "/no-shed"));
  bench::attach_load_counters(state, last);
  bench::attach_admission_counters(state, last_stats);
  bench::attach_stage_counters(state, scrape, "server");
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(g_requests));
}

void BM_ReplicatedMmpp_RoundRobin(benchmark::State& state) {
  run_replicated(state, static_cast<int>(state.range(0)), RoutePolicy::kRoundRobin, true);
}
BENCHMARK(BM_ReplicatedMmpp_RoundRobin)
    ->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ReplicatedMmpp_LeastOutstanding(benchmark::State& state) {
  run_replicated(state, static_cast<int>(state.range(0)), RoutePolicy::kLeastOutstanding, true);
}
BENCHMARK(BM_ReplicatedMmpp_LeastOutstanding)
    ->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ReplicatedMmpp_PowerOfTwo(benchmark::State& state) {
  run_replicated(state, static_cast<int>(state.range(0)), RoutePolicy::kPowerOfTwo, true);
}
BENCHMARK(BM_ReplicatedMmpp_PowerOfTwo)
    ->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Equal offered load, shedding disabled: the admitted-p99 baseline that the
/// shedding configuration above must beat (the paper-style A/B the
/// acceptance criteria pin).
void BM_ReplicatedMmpp_NoShed(benchmark::State& state) {
  run_replicated(state, static_cast<int>(state.range(0)), RoutePolicy::kPowerOfTwo, false);
}
BENCHMARK(BM_ReplicatedMmpp_NoShed)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace distgnn

int main(int argc, char** argv) {
  return distgnn::bench::run_strict_benchmark_main(
      argc, argv, "bench_replication_serving", {"rate", "requests", "deadline-ms", "seed"},
      [](const distgnn::Options& opts) {
        distgnn::g_rate = opts.get_double("rate", distgnn::g_rate);
        distgnn::g_requests = static_cast<std::size_t>(
            opts.get_int("requests", static_cast<long long>(distgnn::g_requests)));
        distgnn::g_deadline_ms = opts.get_double("deadline-ms", distgnn::g_deadline_ms);
        distgnn::g_seed = static_cast<std::uint64_t>(
            opts.get_int("seed", static_cast<long long>(distgnn::g_seed)));
      });
}
