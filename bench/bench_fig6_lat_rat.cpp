// Figure 6: forward-pass scaling of local aggregation time (LAT) and remote
// aggregation time (RAT, including gather/scatter pre/post-processing) for
// cd-0 / cd-5 / 0c. LAT shrinks with more sockets; RAT scales poorly (it
// follows the replication factor); 0c has no RAT at all.
#include <cstdio>

#include "bench_common.hpp"
#include "core/distributed_trainer.hpp"
#include "partition/libra.hpp"
#include "partition/partition_setup.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace distgnn;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const double scale = bench::default_scale(opts, 0.25);
  const int epochs = static_cast<int>(opts.get_int("epochs", 12));
  const int max_ranks = static_cast<int>(opts.get_int("max-ranks", 8));

  bench::print_header("Local (LAT) vs remote (RAT) aggregation time scaling",
                      "Figure 6 (forward pass, per algorithm, per socket count)");

  TrainConfig base_cfg;
  base_cfg.num_layers = 2;
  base_cfg.hidden_dim = 32;
  base_cfg.epochs = epochs;
  base_cfg.delay = 5;
  base_cfg.threads_per_rank = static_cast<int>(opts.get_int("threads-per-socket", 2));

  for (const char* name : {"ogbn-products-sim", "proteins-sim"}) {
    const Dataset ds = bench::load(name, scale);
    TextTable table({"sockets", "cd-0 LAT (ms)", "cd-0 RAT (ms)", "cd-5 LAT (ms)", "cd-5 RAT (ms)",
                     "0c LAT (ms)", "0c RAT (ms)"});
    for (int ranks = 2; ranks <= max_ranks; ranks *= 2) {
      const PartitionedGraph pg =
          build_partitions(ds.graph.coo(), partition_libra(ds.graph.coo(), ranks), 1);
      std::vector<std::string> row{TextTable::fmt_int(ranks)};
      for (const Algorithm alg : {Algorithm::kCd0, Algorithm::kCdR, Algorithm::k0c}) {
        TrainConfig cfg = base_cfg;
        cfg.algorithm = alg;
        const DistTrainResult result = train_distributed(ds, pg, cfg);
        const int skip = std::min(epochs - 2, 2 * cfg.delay);
        row.push_back(TextTable::fmt(result.mean_local_agg_seconds(skip) * 1e3, 2));
        row.push_back(TextTable::fmt(result.mean_remote_agg_seconds(skip) * 1e3, 2));
      }
      table.add_row(row);
    }
    std::printf("%s", table.render(name).c_str());
  }
  std::printf("\nPaper reference: LAT scales ~linearly with sockets (except Reddit); RAT is\n"
              "an artifact of the replication factor and scales poorly; 0c's RAT is zero;\n"
              "cd-5's RAT is almost entirely pre/post-processing since the communication\n"
              "itself is overlapped across epochs.\n");
  return 0;
}
