// Figure 2: per-epoch Total and Aggregation-Primitive time, baseline DGL
// (Alg. 1) vs the optimized implementation (Alg. 2+3), on the four datasets
// that fit a single socket. The paper reports up to 3.66x Total and 4.41x AP
// speedup; at sim scale the shape (optimized >> baseline, AP dominating the
// epoch) is the reproduction target.
#include <cstdio>

#include "bench_common.hpp"
#include "core/rgcn_trainer.hpp"
#include "core/single_socket_trainer.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace distgnn;

namespace {

struct Workload {
  const char* dataset;
  int layers;
  int hidden;
  double scale_mult;  // am-sim is tiny; keep it near full size at bench scale
};

EpochStats run(const Dataset& ds, ApMode mode, int layers, int hidden, int epochs) {
  TrainConfig cfg;
  cfg.num_layers = layers;
  cfg.hidden_dim = hidden;
  cfg.ap_mode = mode;
  SingleSocketTrainer trainer(ds, cfg);
  trainer.train_epoch();  // warm-up epoch
  EpochStats avg;
  for (int e = 0; e < epochs; ++e) {
    const EpochStats s = trainer.train_epoch();
    avg.total_seconds += s.total_seconds;
    avg.ap_seconds += s.ap_seconds;
    avg.mlp_seconds += s.mlp_seconds;
  }
  avg.total_seconds /= epochs;
  avg.ap_seconds /= epochs;
  avg.mlp_seconds /= epochs;
  return avg;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const double scale = bench::default_scale(opts, 0.125);
  const int epochs = static_cast<int>(opts.get_int("epochs", 3));

  bench::print_header("Single-socket training: baseline DGL AP vs optimized AP",
                      "Figure 2 (GraphSAGE on Reddit/OGBN-Products/Proteins, RGCN on AM)");

  // Paper model shapes: 2 layers/16 hidden for Reddit, 3/256 otherwise
  // (hidden scaled down with the datasets to keep the MLP proportionate).
  const Workload workloads[] = {
      {"reddit-sim", 2, 16, 1.0},
      {"ogbn-products-sim", 3, 64, 1.0},
      {"proteins-sim", 3, 64, 1.0},
  };

  TextTable table({"dataset", "baseline Total (s)", "baseline AP (s)", "optimized Total (s)",
                   "optimized AP (s)", "Total speedup", "AP speedup"});
  for (const Workload& w : workloads) {
    const Dataset ds = bench::load(w.dataset, scale * w.scale_mult);
    const EpochStats base = run(ds, ApMode::kBaseline, w.layers, w.hidden, epochs);
    const EpochStats opt = run(ds, ApMode::kOptimized, w.layers, w.hidden, epochs);
    table.add_row({w.dataset, TextTable::fmt(base.total_seconds, 4), TextTable::fmt(base.ap_seconds, 4),
                   TextTable::fmt(opt.total_seconds, 4), TextTable::fmt(opt.ap_seconds, 4),
                   TextTable::fmt(base.total_seconds / opt.total_seconds, 2) + "x",
                   TextTable::fmt(base.ap_seconds / opt.ap_seconds, 2) + "x"});
  }
  // Figure 2(d): RGCN-hetero on the AM-like knowledge graph (typed edges,
  // one relation weight per edge type).
  {
    HeteroDatasetParams hp;
    hp.num_vertices = static_cast<vid_t>(8192 * scale * 8);
    hp.num_classes = 11;
    hp.num_edge_types = 4;
    hp.avg_degree = 6.4;
    std::printf("[dataset] am-sim-hetero |V|=%lld relations=%d\n",
                static_cast<long long>(hp.num_vertices), hp.num_edge_types);
    const HeteroDataset hds = make_hetero_dataset(hp);
    auto run_rgcn = [&](ApMode mode) {
      TrainConfig cfg;
      cfg.num_layers = 2;
      cfg.hidden_dim = 16;
      cfg.ap_mode = mode;
      RgcnTrainer trainer(hds, cfg);
      trainer.train_epoch();
      RgcnEpochStats avg;
      for (int e = 0; e < epochs; ++e) {
        const RgcnEpochStats s = trainer.train_epoch();
        avg.total_seconds += s.total_seconds;
        avg.ap_seconds += s.ap_seconds;
      }
      avg.total_seconds /= epochs;
      avg.ap_seconds /= epochs;
      return avg;
    };
    const RgcnEpochStats base = run_rgcn(ApMode::kBaseline);
    const RgcnEpochStats opt = run_rgcn(ApMode::kOptimized);
    table.add_row({"am-sim (RGCN-hetero)", TextTable::fmt(base.total_seconds, 4),
                   TextTable::fmt(base.ap_seconds, 4), TextTable::fmt(opt.total_seconds, 4),
                   TextTable::fmt(opt.ap_seconds, 4),
                   TextTable::fmt(base.total_seconds / opt.total_seconds, 2) + "x",
                   TextTable::fmt(base.ap_seconds / opt.ap_seconds, 2) + "x"});
  }

  std::printf("%s", table.render("Per-epoch time (mean of " + std::to_string(epochs) + " epochs)").c_str());
  std::printf("\nPaper reference: Total speedups 1.95x-3.66x, AP speedups up to 4.41x;\n"
              "AP dominates the epoch in both columns.\n");
  return 0;
}
