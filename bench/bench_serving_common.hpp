// Shared helpers for the serving benchmarks (bench_serving,
// bench_replication_serving, bench_embed_cache, bench_composed_serving):
// load-report and admission counters with one canonical key format, the
// latency-histogram emission, and the strict-flag main() body — so the
// binaries' JSON artifact schemas cannot silently diverge.
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <functional>
#include <initializer_list>
#include <map>
#include <string>

#include "obs/metrics.hpp"
#include "serve/router.hpp"
#include "serve/traffic_gen.hpp"
#include "util/options.hpp"

namespace distgnn::bench {

/// Log2 histogram buckets as hist_le_<upper-µs>us counters: the JSON
/// artifact keeps the whole latency distribution, not just quantiles.
inline void attach_histogram_counters(benchmark::State& state, const serve::LoadReport& report) {
  for (const serve::LatencyRecorder::Bucket& b : report.histogram)
    state.counters["hist_le_" + std::to_string(std::llround(b.upper_seconds * 1e6)) + "us"] =
        static_cast<double>(b.count);
}

/// Canonical LoadReport counter set (QPS, quantiles through p99.9, batch
/// occupancy, rejections, full histogram) — every serving bench emits this
/// one schema, so CI consumers parse one key format across artifacts.
inline void attach_load_counters(benchmark::State& state, const serve::LoadReport& report) {
  state.counters["QPS"] = report.qps;
  state.counters["p50_ms"] = report.p50_ms;
  state.counters["p95_ms"] = report.p95_ms;
  state.counters["p99_ms"] = report.p99_ms;
  state.counters["p99_9_ms"] = report.p999_ms;
  state.counters["mean_batch"] = report.mean_batch;
  state.counters["rejected"] = static_cast<double>(report.rejected);
  attach_histogram_counters(state, report);
}

/// Canonical scrape-derived stage counter set: for one layer's
/// `distgnn_<layer>_stage_seconds` histograms (layer = "server" for
/// InferenceServer leaves, "sharded" for ShardedServer ranks), folds the
/// tenant lanes per stage and emits stage_<name>_p50_ms / _p99_ms / _count.
/// Every serving bench scrapes its backend once after the measured run and
/// attaches this set, so the JSON artifact carries the per-stage breakdown
/// alongside the end-to-end quantiles.
inline void attach_stage_counters(benchmark::State& state, const obs::MetricsSnapshot& scrape,
                                  const std::string& layer) {
  const std::string name = "distgnn_" + layer + "_stage_seconds";
  std::map<std::string, obs::HistogramData> by_stage;
  for (const obs::MetricPoint& point : scrape.points) {
    if (point.name != name || !point.is_histogram) continue;
    for (const auto& [key, value] : point.labels)
      if (key == "stage") by_stage[value] += point.histogram;
  }
  for (const auto& [stage, hist] : by_stage) {
    if (hist.empty()) continue;
    state.counters["stage_" + stage + "_p50_ms"] = hist.quantile(0.5) * 1e3;
    state.counters["stage_" + stage + "_p99_ms"] = hist.quantile(0.99) * 1e3;
    state.counters["stage_" + stage + "_count"] = static_cast<double>(hist.count);
  }
}

/// Canonical admission-control counter set for router-fronted tiers.
inline void attach_admission_counters(benchmark::State& state, const serve::RouterStats& stats) {
  state.counters["shed_rate"] = stats.shed_rate();
  state.counters["shed_deadline"] = static_cast<double>(stats.shed_deadline);
  state.counters["shed_priority"] = static_cast<double>(stats.shed_priority);
  state.counters["shed_queue_full"] = static_cast<double>(stats.shed_queue_full);
  state.counters["shed_budget"] = static_cast<double>(stats.shed_budget);
  state.counters["admitted"] = static_cast<double>(stats.admitted);
}

/// Canonical per-tenant counter set: tenant_<id>_qps / _p99_ms from the
/// tenant's LoadReport plus tenant_<id>_shed_rate from its stats lane. Every
/// multi-tenant bench emits this one key format, so the CI asserts parse a
/// single schema.
inline void attach_tenant_counters(benchmark::State& state, serve::tenant_t tenant,
                                   const serve::LoadReport& report,
                                   const serve::TenantCounters& lane) {
  const std::string prefix = "tenant_" + std::to_string(tenant) + "_";
  state.counters[prefix + "qps"] = report.qps;
  state.counters[prefix + "p99_ms"] = report.p99_ms;
  state.counters[prefix + "shed_rate"] = lane.shed_rate();
}

/// BENCHMARK_MAIN body with strict flag validation: benchmark::Initialize
/// consumes every --benchmark_* flag, so whatever survives must be in
/// `known` (read back through `apply`) or the binary exits 2 instead of
/// silently benchmarking defaults.
inline int run_strict_benchmark_main(int argc, char** argv, const char* binary_name,
                                     std::initializer_list<const char*> known,
                                     const std::function<void(const Options&)>& apply = {}) {
  benchmark::Initialize(&argc, argv);
  try {
    const Options opts(argc, argv);
    opts.require_known(known);
    if (apply) apply(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", binary_name, e.what());
    return 2;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace distgnn::bench
