// Shared helpers for the serving benchmarks (bench_serving,
// bench_replication_serving): latency-histogram counters with one canonical
// key format, and the strict-flag main() body — so the two binaries' JSON
// artifact schemas cannot silently diverge.
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <functional>
#include <initializer_list>
#include <string>

#include "serve/traffic_gen.hpp"
#include "util/options.hpp"

namespace distgnn::bench {

/// Log2 histogram buckets as hist_le_<upper-µs>us counters: the JSON
/// artifact keeps the whole latency distribution, not just quantiles.
inline void attach_histogram_counters(benchmark::State& state, const serve::LoadReport& report) {
  for (const serve::LatencyRecorder::Bucket& b : report.histogram)
    state.counters["hist_le_" + std::to_string(std::llround(b.upper_seconds * 1e6)) + "us"] =
        static_cast<double>(b.count);
}

/// BENCHMARK_MAIN body with strict flag validation: benchmark::Initialize
/// consumes every --benchmark_* flag, so whatever survives must be in
/// `known` (read back through `apply`) or the binary exits 2 instead of
/// silently benchmarking defaults.
inline int run_strict_benchmark_main(int argc, char** argv, const char* binary_name,
                                     std::initializer_list<const char*> known,
                                     const std::function<void(const Options&)>& apply = {}) {
  benchmark::Initialize(&argc, argv);
  try {
    const Options opts(argc, argv);
    opts.require_known(known);
    if (apply) apply(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", binary_name, e.what());
    return 2;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace distgnn::bench
