// Table 4: average replication factor of Libra vertex-cut partitioning vs
// the number of partitions, per dataset, plus two controls the paper's
// narrative relies on: a random edge partitioner (Libra should beat it) and
// a clustered-vs-uniform pair at equal degree (clustering should lower the
// replication factor, the Proteins effect).
#include <cstdio>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "partition/libra.hpp"
#include "partition/partition_stats.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace distgnn;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const double scale = bench::default_scale(opts, 0.125);

  bench::print_header("Libra vertex-cut replication factor vs #partitions",
                      "Table 4 (average replication factor; balanced edges)");

  const part_t part_counts[] = {2, 4, 8, 16, 32};
  TextTable table({"dataset", "P=2", "P=4", "P=8", "P=16", "P=32", "edge balance @16"});
  for (const char* name :
       {"reddit-sim", "ogbn-products-sim", "proteins-sim", "ogbn-papers-sim"}) {
    const Dataset ds = bench::load(name, scale);
    std::vector<std::string> row{name};
    double balance16 = 0;
    for (const part_t p : part_counts) {
      const PartitionQuality q =
          evaluate_partition(ds.graph.coo(), partition_libra(ds.graph.coo(), p));
      row.push_back(TextTable::fmt(q.replication_factor, 2));
      if (p == 16) balance16 = q.edge_balance;
    }
    row.push_back(TextTable::fmt(balance16, 3));
    table.add_row(row);
  }
  std::printf("%s", table.render("Average replication factor (Libra)").c_str());

  // Control 1: Libra vs random edge assignment at 8 partitions.
  TextTable control({"dataset", "Libra rep @8", "Random rep @8"});
  for (const char* name : {"reddit-sim", "ogbn-papers-sim"}) {
    const Dataset ds = bench::load(name, scale);
    control.add_row(
        {name,
         TextTable::fmt(
             evaluate_partition(ds.graph.coo(), partition_libra(ds.graph.coo(), 8)).replication_factor,
             2),
         TextTable::fmt(
             evaluate_partition(ds.graph.coo(), partition_random(ds.graph.coo(), 8)).replication_factor,
             2)});
  }
  std::printf("%s", control.render("Control: Libra vs random edge-cut").c_str());

  // Control 2: clustering effect at equal size/degree (the Proteins story).
  SbmParams sp;
  sp.num_vertices = 8192;
  sp.num_blocks = 64;
  sp.avg_degree = 16;
  sp.in_out_ratio = 300;
  const EdgeList clustered = generate_sbm(sp).edges;
  const EdgeList uniform = generate_erdos_renyi(8192, 8192 * 8, 3);
  TextTable clus({"graph (n=8192, deg=16)", "Libra rep @8"});
  clus.add_row({"clustered (SBM, 83% intra)",
                TextTable::fmt(evaluate_partition(clustered, partition_libra(clustered, 8)).replication_factor, 2)});
  clus.add_row({"uniform (Erdos-Renyi)",
                TextTable::fmt(evaluate_partition(uniform, partition_libra(uniform, 8)).replication_factor, 2)});
  std::printf("%s", clus.render("Control: community structure lowers replication").c_str());

  std::printf("\nPaper reference (Table 4): Reddit 1.75/2.94/4.66/6.93 at 2/4/8/16;\n"
              "Proteins lowest (1.33..2.37) thanks to protein-family clusters; replication\n"
              "grows with partition count everywhere. See DESIGN.md for the known\n"
              "deviation on the synthetic proteins-sim magnitude.\n");
  return 0;
}
