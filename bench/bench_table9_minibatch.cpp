// Table 9: measured training time per epoch, Dist-DGL-style mini-batch
// sampling vs DistGNN full-batch cd-5, on the products-like dataset at 1 and
// 4 sockets. The paper's point: despite doing 4-13x more aggregation work,
// full-batch DistGNN posts comparable or better epoch times at low socket
// counts and remains competitive at 16.
#include <cstdio>

#include "bench_common.hpp"
#include "core/distributed_trainer.hpp"
#include "core/single_socket_trainer.hpp"
#include "partition/libra.hpp"
#include "partition/partition_setup.hpp"
#include "sampling/distributed_sampled_trainer.hpp"
#include "sampling/sampled_trainer.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace distgnn;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const double scale = bench::default_scale(opts, 0.0625);
  const int epochs = static_cast<int>(opts.get_int("epochs", 6));
  const int ranks = static_cast<int>(opts.get_int("ranks", 4));

  bench::print_header("Epoch time: Dist-DGL mini-batch vs DistGNN full-batch (cd-5)",
                      "Table 9 (OGBN-Products; same model shape on both sides)");

  const Dataset ds = bench::load("ogbn-products-sim", scale);

  // Mini-batch trainer (fan-outs 15/10/5, batch 2000 scaled down with data).
  SampledTrainConfig scfg;
  scfg.fanouts = {5, 10, 15};
  scfg.batch_size = std::max<vid_t>(128, ds.num_vertices() / 64);
  scfg.hidden_dim = 64;
  SampledSageTrainer mini(ds, scfg);
  mini.train_epoch();  // warm-up
  double mini_seconds = 0;
  for (int e = 0; e < epochs; ++e) mini_seconds += mini.train_epoch().seconds;
  mini_seconds /= epochs;

  // Full-batch single socket.
  TrainConfig cfg;
  cfg.num_layers = 3;
  cfg.hidden_dim = 64;
  cfg.delay = 5;
  cfg.epochs = epochs + 2;
  SingleSocketTrainer full(ds, cfg);
  full.train_epoch();
  double full_seconds = 0;
  for (int e = 0; e < epochs; ++e) full_seconds += full.train_epoch().total_seconds;
  full_seconds /= epochs;

  // Distributed cd-5 at `ranks` sockets.
  cfg.algorithm = Algorithm::kCdR;
  cfg.threads_per_rank = 0;  // divide the machine across ranks
  const PartitionedGraph pg =
      build_partitions(ds.graph.coo(), partition_libra(ds.graph.coo(), ranks), 1);
  const DistTrainResult dist = train_distributed(ds, pg, cfg);
  const double dist_seconds = dist.mean_epoch_seconds(2);

  // Distributed mini-batch (Dist-DGL style) at `ranks` sockets.
  const DistSampledResult dist_mini =
      train_distributed_sampled(ds, scfg, ranks, epochs);

  TextTable table({"sockets", "Dist-DGL mini-batch (s)", "DistGNN cd-5 (s)"});
  table.add_row({"1", TextTable::fmt(mini_seconds, 4), TextTable::fmt(full_seconds, 4)});
  table.add_row({TextTable::fmt_int(ranks), TextTable::fmt(dist_mini.mean_epoch_seconds, 4),
                 TextTable::fmt(dist_seconds, 4)});
  std::printf("%s", table.render("Training time per epoch").c_str());
  std::printf("\nPaper reference: Dist-DGL 20 s vs DistGNN 11 s on 1 socket; 1.5 s vs 1.9 s\n"
              "on 16 sockets -- full batch comparable despite ~4-13x more aggregation work.\n"
              "(The simulated multi-rank row shares one machine's cores, so compare the\n"
              "single-socket row for the head-to-head.)\n");
  return 0;
}
