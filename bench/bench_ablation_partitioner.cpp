// Ablation of the partitioning strategy (§5.1's motivation): trains the same
// model over Libra vertex-cut vs random / hash / range edge partitions and
// reports halo volume, epoch time and accuracy — quantifying how much of
// DistGNN's scalability is bought by the partitioner.
#include <cstdio>

#include "bench_common.hpp"
#include "core/distributed_trainer.hpp"
#include "partition/libra.hpp"
#include "partition/partition_setup.hpp"
#include "partition/partition_stats.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace distgnn;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int epochs = static_cast<int>(opts.get_int("epochs", 30));
  const int ranks = static_cast<int>(opts.get_int("ranks", 4));

  bench::print_header("Partitioner ablation: Libra vertex-cut vs 1D baselines",
                      "§5.1 (vertex-cut minimizes communication on power-law graphs)");

  LearnableSbmParams p;
  p.num_vertices = opts.get_int("vertices", 8192);
  p.num_classes = 8;
  p.avg_degree = 16;
  p.feature_dim = 32;
  p.seed = 31;
  const Dataset ds = make_learnable_sbm(p);

  TrainConfig cfg;
  cfg.num_layers = 2;
  cfg.hidden_dim = 32;
  cfg.lr = 0.1;
  cfg.epochs = epochs;
  cfg.algorithm = Algorithm::kCd0;  // fully synchronized: comm volume matters most

  const struct {
    const char* label;
    PartitionStrategy strategy;
  } strategies[] = {
      {"libra (vertex-cut)", PartitionStrategy::kLibra},
      {"random edges", PartitionStrategy::kRandom},
      {"source hash", PartitionStrategy::kSourceHash},
      {"source range", PartitionStrategy::kRange},
  };

  TextTable table({"partitioner", "replication", "edge balance", "halo MB/epoch",
                   "epoch (ms)", "test acc (%)"});
  for (const auto& s : strategies) {
    const EdgePartition ep = partition_edges(ds.graph.coo(), ranks, s.strategy, 1);
    const PartitionQuality q = evaluate_partition(ds.graph.coo(), ep);
    const PartitionedGraph pg = build_partitions(ds.graph.coo(), ep, 1);
    const DistTrainResult result = train_distributed(ds, pg, cfg);
    table.add_row({s.label, TextTable::fmt(q.replication_factor, 2),
                   TextTable::fmt(q.edge_balance, 2),
                   TextTable::fmt(static_cast<double>(result.total_bytes_sent) / 1e6 / epochs, 3),
                   TextTable::fmt(result.mean_epoch_seconds(2) * 1e3, 2),
                   TextTable::fmt(100 * result.test_accuracy, 2)});
  }
  std::printf("%s", table.render("cd-0 training across partitioners (" +
                                 std::to_string(ranks) + " sockets)").c_str());
  std::printf("\nExpected: Libra's lower replication factor translates directly into less\n"
              "halo traffic per epoch at equal accuracy; range partitioning can win on\n"
              "replication but loses edge balance (straggler ranks).\n");
  return 0;
}
