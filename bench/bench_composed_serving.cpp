// Composed-tier benchmarks: R ShardedServer replicas x P shards behind the
// Router, swept over (R, P) in {1,2} x {1,2} under open-loop 2-state MMPP
// load. QPS / p99 / p99.9 / shed-rate land in the CI JSON artifact next to
// the single-server and flat-replicated trajectories, so the serving story
// covers the full grid; the headline is QPS increasing with R at fixed P.
// Every run also checks a fixed request batch bitwise against a single
// InferenceServer over the same snapshot and exports the verdict as the
// `match` counter (CI asserts it), pinning the composed tier's equality
// contract where the numbers are produced.
//
// Custom flags (strict — typos fail loudly):
//   --rate=N         offered MMPP long-run mean rate, requests/s. 0 (the
//                    default) self-calibrates the burst state to several
//                    times one replica's measured capacity, so the R=1 grids
//                    shed under bursts and the R scaling is visible in
//                    completed QPS on any host.
//   --requests=N     requests per measured run (default 400)
//   --deadline-ms=N  per-request deadline for admission control. 0 (the
//                    default) self-calibrates to 40x the measured service
//                    time (host-independent shedding pressure).
//   --seed=N         arrival/vertex stream seed (default 5)
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_serving_common.hpp"
#include "graph/datasets.hpp"
#include "partition/libra.hpp"
#include "serve/composed_tier.hpp"
#include "serve/inference_server.hpp"
#include "serve/model_snapshot.hpp"

namespace distgnn {
namespace {

using namespace distgnn::serve;

double g_rate = 0.0;        // 0 = self-calibrate (see header comment)
std::size_t g_requests = 400;
double g_deadline_ms = 0.0; // 0 = self-calibrate (see header comment)
std::uint64_t g_seed = 5;

struct ComposedFixture {
  Dataset dataset;
  std::shared_ptr<const ModelSnapshot> snapshot;
  std::vector<vid_t> probe;  // fixed batch for the bitwise-match check
  std::vector<std::vector<real_t>> expected;
  /// Per-request service time of the single-server reference — the one
  /// calibration constant every (R, P) run shares, so offered load at fixed
  /// P is identical across R (the comparison the bench exists for).
  double svc = 100e-6;

  static ComposedFixture& get() {
    static ComposedFixture f = make();
    return f;
  }

  static ComposedFixture make() {
    LearnableSbmParams params;
    params.num_vertices = 4096;
    params.num_classes = 8;
    params.avg_degree = 16;
    params.feature_dim = 64;
    params.seed = 9;
    ComposedFixture f{make_learnable_sbm(params), nullptr, {}, {}, 100e-6};
    ModelSpec spec;
    spec.feature_dim = f.dataset.feature_dim();
    spec.hidden_dim = 64;
    spec.num_classes = f.dataset.num_classes;
    spec.num_layers = 2;
    f.snapshot = ModelSnapshot::random(spec, /*seed=*/1, /*version=*/1);
    (void)f.dataset.graph.in_csr();

    for (vid_t v = 0; v < 24; ++v)
      f.probe.push_back((v * 131) % f.dataset.num_vertices());
    InferenceServer single(f.dataset, f.serve_config());
    single.publish(f.snapshot);
    single.start();
    for (const vid_t v : f.probe) f.expected.push_back(single.infer_sync(v).logits);
    if (single.mean_service_seconds() > 0) f.svc = single.mean_service_seconds();
    single.stop();
    return f;
  }

  /// The single-server reference shares sample_seed/fanouts with the
  /// composed tier below — the whole point of the bitwise check.
  ServeConfig serve_config() const {
    ServeConfig cfg;
    cfg.num_workers = 1;
    cfg.max_batch = 16;
    cfg.fanouts = {10, 10};
    return cfg;
  }
};

/// One measured run of an R x P grid: bitwise probe first, then MMPP
/// open-loop through the tier's Router with per-request deadlines.
void run_composed(benchmark::State& state, int replicas, int shards) {
  ComposedFixture& f = ComposedFixture::get();
  const EdgePartition partition =
      partition_libra(f.dataset.graph.coo(), static_cast<part_t>(shards));

  LoadReport last;
  RouterStats last_stats;
  obs::MetricsSnapshot scrape;
  bool match = true;
  for (auto _ : state) {
    ComposedConfig cfg;
    cfg.replicas = replicas;
    cfg.shard.max_batch = 16;
    cfg.shard.fanouts = {10, 10};
    cfg.shard.queue_capacity = 512;
    cfg.shard.prefetch_depth = 2;
    cfg.policy = RoutePolicy::kPowerOfTwo;
    ComposedTier tier(f.dataset, partition, cfg);
    tier.publish(f.snapshot);
    tier.start();

    // Bitwise probe doubles as the warmup that primes the service-rate
    // estimate the deadline controller divides queue depth by.
    const auto probed = tier.infer_batch(f.probe);
    for (std::size_t i = 0; i < f.probe.size(); ++i)
      match = match && probed[i].has_value() && probed[i]->logits == f.expected[i];
    const RouterStats warmed = tier.router().stats();

    // Self-calibrated MMPP overload (the Admission.SheddingLowersAdmittedTail
    // recipe): one replica's capacity is P serving ranks over the reference
    // server's per-request service time — a fixture constant, so at fixed P
    // the arrival schedule is byte-identical across R and the R=1 grid
    // sheds under bursts while completed QPS exposes the replication win.
    const double svc = f.svc;
    const double capacity = static_cast<double>(shards) / svc;

    RouterLoadConfig load;
    load.arrivals.process = ArrivalProcess::kMmpp;
    if (g_rate > 0) {
      load.arrivals.rate = g_rate;
      load.arrivals.mmpp_rate0 = g_rate / 4;
      load.arrivals.mmpp_rate1 = g_rate * 4;
    } else {
      // Burst at 3x one replica: R=1 sheds through every burst while R=2
      // has the headroom to absorb it — the regime where replication pays.
      load.arrivals.mmpp_rate0 = 0.5 * capacity;
      load.arrivals.mmpp_rate1 = 3.0 * capacity;
      load.arrivals.mmpp_hold0 = 0.005;
      load.arrivals.mmpp_hold1 = 0.004;
    }
    load.arrivals.seed = g_seed;
    load.num_requests = g_requests;
    load.deadline_seconds = g_deadline_ms > 0 ? g_deadline_ms * 1e-3 : 40 * svc;
    load.seed = g_seed;
    last = run_router_open_loop(tier.router(), load);
    last_stats = tier.router().stats().since(warmed);
    scrape = obs::MetricsSnapshot{};
    tier.scrape(scrape);
    tier.stop();
  }

  state.SetLabel("R" + std::to_string(replicas) + "xP" + std::to_string(shards));
  bench::attach_load_counters(state, last);
  bench::attach_admission_counters(state, last_stats);
  bench::attach_stage_counters(state, scrape, "sharded");
  state.counters["replicas"] = replicas;
  state.counters["shards"] = shards;
  state.counters["match"] = match ? 1.0 : 0.0;
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(g_requests));
}

void BM_Composed_R1P1(benchmark::State& state) { run_composed(state, 1, 1); }
BENCHMARK(BM_Composed_R1P1)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_Composed_R2P1(benchmark::State& state) { run_composed(state, 2, 1); }
BENCHMARK(BM_Composed_R2P1)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_Composed_R1P2(benchmark::State& state) { run_composed(state, 1, 2); }
BENCHMARK(BM_Composed_R1P2)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_Composed_R2P2(benchmark::State& state) { run_composed(state, 2, 2); }
BENCHMARK(BM_Composed_R2P2)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace distgnn

int main(int argc, char** argv) {
  return distgnn::bench::run_strict_benchmark_main(
      argc, argv, "bench_composed_serving", {"rate", "requests", "deadline-ms", "seed"},
      [](const distgnn::Options& opts) {
        distgnn::g_rate = opts.get_double("rate", distgnn::g_rate);
        distgnn::g_requests = static_cast<std::size_t>(
            opts.get_int("requests", static_cast<long long>(distgnn::g_requests)));
        distgnn::g_deadline_ms = opts.get_double("deadline-ms", distgnn::g_deadline_ms);
        distgnn::g_seed = static_cast<std::uint64_t>(
            opts.get_int("seed", static_cast<long long>(distgnn::g_seed)));
      });
}
