// Figure 4: breakdown of the single-socket AP speedup by optimization:
// baseline -> +Dynamic Scheduling (DS) -> +Cache Blocking (Block) ->
// +Loop Reordering / vectorized micro-kernels (LR LXSMM analogue).
// The paper's finding: DS matters for the skewed sparse graph
// (OGBN-Products), blocking matters for the dense graph (Reddit), loop
// reordering helps both.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "kernels/aggregate.hpp"
#include "kernels/traffic_replay.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace distgnn;

namespace {

double time_ap(const CsrMatrix& csr, const Dataset& ds, const ApConfig& cfg, bool baseline,
               int reps) {
  const auto n = static_cast<std::size_t>(ds.num_vertices());
  const auto d = static_cast<std::size_t>(ds.feature_dim());
  DenseMatrix out(n, d, 0);
  auto once = [&] {
    out.zero();
    if (baseline) {
      aggregate_baseline(csr, ds.features.cview(), {}, out.view(), BinaryOp::kCopyLhs,
                         ReduceOp::kSum);
    } else {
      aggregate(csr, ds.features.cview(), {}, out.view(), cfg);
    }
  };
  once();  // warm-up
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) once();
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count() /
         reps;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const double scale = bench::default_scale(opts, 0.25);
  const int reps = static_cast<int>(opts.get_int("reps", 3));
  const auto cache_bytes = static_cast<std::uint64_t>(opts.get_int("cache-kb", 1024)) * 1024;

  bench::print_header("AP speedup breakdown: +DS, +Block, +LR micro-kernels",
                      "Figure 4 (memory IO and execution time per optimization step)");

  const int forced_nb = static_cast<int>(opts.get_int("blocks", 8));
  for (const char* name : {"reddit-sim", "ogbn-products-sim"}) {
    const Dataset ds = bench::load(name, scale);
    const CsrMatrix& csr = ds.graph.in_csr();
    // At sim scale the feature matrices are small relative to a server LLC,
    // so auto_num_blocks() would pick 1 and the Block bar would be a no-op;
    // use the Figure 3 sweet-spot block count instead (override: --blocks=N).
    const int auto_nb = forced_nb;

    struct Step {
      const char* label;
      bool baseline;
      ApConfig cfg;
    };
    ApConfig ds_only;       // dynamic scheduling, no blocking, scalar inner loop
    ds_only.num_blocks = 1;
    ds_only.use_microkernel = false;
    ApConfig ds_block = ds_only;
    ds_block.num_blocks = auto_nb;
    ApConfig full = ds_block;
    full.use_microkernel = true;

    const Step steps[] = {
        {"baseline (Alg.1)", true, {}},
        {"+DS", false, ds_only},
        {"+DS +Block", false, ds_block},
        {"+DS +Block +LR", false, full},
    };

    TextTable table({"configuration", "time (ms)", "speedup vs baseline", "modelled IO (MB)"});
    double base_ms = 0;
    for (const Step& step : steps) {
      const double ms = time_ap(csr, ds, step.cfg, step.baseline, reps);
      if (step.baseline) base_ms = ms;
      const int nb = step.baseline ? 1 : step.cfg.num_blocks;
      const TrafficReport traffic = replay_aggregation_traffic(
          csr, static_cast<std::size_t>(ds.feature_dim()), nb, cache_bytes);
      table.add_row({step.label, TextTable::fmt(ms, 2), TextTable::fmt(base_ms / ms, 2) + "x",
                     TextTable::fmt(static_cast<double>(traffic.total_bytes()) / 1e6, 1)});
    }
    std::printf("%s", table.render(std::string(name) + " (auto nB = " + std::to_string(auto_nb) + ")").c_str());
  }
  std::printf("\nPaper reference: DS helps OGBN-Products (power-law imbalance), blocking\n"
              "helps Reddit (dense reuse), LR/JIT helps both; IO correlates with time.\n");
  return 0;
}
