// Tables 7 and 8: aggregation work (billions of operations) per hop for
// Dist-DGL-style mini-batch sampling vs DistGNN full-batch aggregation on
// OGBN-Products. Part (a) evaluates the analytic model at the paper's exact
// parameters (the numbers must match Table 7/8 to rounding); part (b)
// measures the sampled-edge counts of our own mini-batch sampler on the sim
// dataset to show the model's vertex counts are the right order.
#include <cstdio>

#include "bench_common.hpp"
#include "core/work_model.hpp"
#include "sampling/minibatch.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace distgnn;

int main(int argc, char** argv) {
  const Options opts(argc, argv);

  bench::print_header("Aggregation work: mini-batch sampling (Dist-DGL) vs full batch (DistGNN)",
                      "Tables 7 + 8 (OGBN-Products; B ops per hop / per socket)");

  // ---- Table 7: mini-batch sampling work ----
  const std::vector<HopWork> hops{
      {"Hop-2", 233'692, 5, 100},
      {"Hop-1", 30'214, 10, 256},
      {"Hop-0", 2'000, 15, 256},
  };
  TextTable t7({"hop", "#vertices", "avg deg", "#feats", "work (B ops)"});
  for (const HopWork& h : hops)
    t7.add_row({h.label, TextTable::fmt_int(h.vertices), TextTable::fmt(h.avg_degree, 0),
                TextTable::fmt_int(h.feats), TextTable::fmt(h.giga_ops(), 3)});
  const MiniBatchWork mb1 = minibatch_work(hops, 196'615, 2'000, 1);
  const MiniBatchWork mb16 = minibatch_work(hops, 196'615, 2'000, 16);
  t7.add_row({"1 mini-batch", "", "", "", TextTable::fmt(mb1.batch_ops / 1e9, 3)});
  t7.add_row({"1 socket (" + std::to_string(mb1.batches_per_socket) + " batches)", "", "", "",
              TextTable::fmt(mb1.socket_ops / 1e9, 2)});
  t7.add_row({"16 sockets (" + std::to_string(mb16.batches_per_socket) + " batches)", "", "", "",
              TextTable::fmt(mb16.socket_ops / 1e9, 2)});
  std::printf("%s", t7.render("Table 7: Dist-DGL mini-batch (batch 2000, fan-outs 15/10/5)").c_str());
  std::printf("Paper: 0.116 / 0.077 / 0.007 per hop; 0.202 per batch; 19.98 B (1 socket);\n"
              "1.41 B (16 sockets).\n");

  // ---- Table 8: full-batch work ----
  TextTable t8({"sockets", "hop", "#vertices/part", "avg deg", "#feats", "work (B ops)"});
  for (const auto& [sockets, verts] :
       std::vector<std::pair<int, std::int64_t>>{{1, 2'449'029}, {16, 596'499}}) {
    const FullBatchWork fb = fullbatch_work(verts, 51.5, {100, 256, 256});
    for (const HopWork& h : fb.hops)
      t8.add_row({TextTable::fmt_int(sockets), h.label, TextTable::fmt_int(h.vertices),
                  TextTable::fmt(h.avg_degree, 1), TextTable::fmt_int(h.feats),
                  TextTable::fmt(h.giga_ops(), 2)});
    t8.add_row({TextTable::fmt_int(sockets), "Full Batch", "", "", "",
                TextTable::fmt(fb.socket_ops / 1e9, 2)});
  }
  std::printf("%s", t8.render("Table 8: DistGNN full batch (complete neighbourhoods)").c_str());
  std::printf("Paper: 12.61 + 32.29 + 32.29 = 77.19 B (1 socket); 18.80 B (16 sockets).\n"
              "Full batch does ~4x (1 socket) to ~13x (16 sockets) more aggregation work.\n");

  // ---- (b) sanity: our sampler's actual sampled-edge counts on the sim ----
  const double scale = bench::default_scale(opts, 0.125);
  const Dataset ds = bench::load("ogbn-products-sim", scale);
  Rng rng(3);
  std::vector<vid_t> train;
  for (vid_t v = 0; v < ds.num_vertices(); ++v)
    if (ds.train_mask[static_cast<std::size_t>(v)]) train.push_back(v);
  const auto batches = make_batches(train, 512, rng);
  const std::vector<int> fanouts{5, 10, 15};
  const MiniBatch sample = sample_minibatch(ds.graph.in_csr(), batches.front(), fanouts, rng);
  TextTable meas({"layer", "#dst vertices", "sampled edges"});
  for (std::size_t l = 0; l < sample.blocks.size(); ++l)
    meas.add_row({"block " + std::to_string(l),
                  TextTable::fmt_int(sample.blocks[l].num_dst),
                  TextTable::fmt_int(sample.blocks[l].num_sampled_edges())});
  std::printf("%s", meas.render("Measured sampler expansion on ogbn-products-sim (one batch of 512)").c_str());
  std::printf("Expansion grows toward the input layer exactly as Table 7's vertex column does.\n");
  return 0;
}
