// Ablation of the DRPA design choices (§5.3 / §6.3 "Accuracy"):
//   (a) delay r sweep — the paper reports no accuracy benefit below r=5 and
//       degradation at r=10 from increasingly stale aggregates;
//   (b) staleness policy — Alg. 4's literal "overwrite one bin per epoch"
//       vs the cached "reapply the last received remote contribution every
//       epoch" interpretation (see DESIGN.md §4).
#include <cstdio>

#include "bench_common.hpp"
#include "core/distributed_trainer.hpp"
#include "partition/libra.hpp"
#include "partition/partition_setup.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace distgnn;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int epochs = static_cast<int>(opts.get_int("epochs", 60));
  const int ranks = static_cast<int>(opts.get_int("ranks", 4));

  bench::print_header("DRPA ablation: delay r and staleness policy",
                      "§6.3 accuracy discussion (r < 5 no gain, r = 10 degrades)");

  LearnableSbmParams p;
  p.num_vertices = opts.get_int("vertices", 4096);
  p.num_classes = 8;
  p.avg_degree = 16;
  p.feature_dim = 32;
  p.feature_noise = 1.2f;
  p.seed = 23;
  const Dataset ds = make_learnable_sbm(p);
  const PartitionedGraph pg =
      build_partitions(ds.graph.coo(), partition_libra(ds.graph.coo(), ranks), 1);

  TrainConfig cfg;
  cfg.num_layers = 2;
  cfg.hidden_dim = 32;
  cfg.lr = 0.1;
  cfg.epochs = epochs;

  // (a) delay sweep. r = 0 means cd-0 (fresh, blocking).
  TextTable delay_table({"delay r", "algorithm", "test acc (%)", "final loss",
                         "halo MB/epoch"});
  for (const int r : {0, 1, 2, 5, 10}) {
    cfg.algorithm = r == 0 ? Algorithm::kCd0 : Algorithm::kCdR;
    cfg.delay = std::max(1, r);
    cfg.staleness = StalenessPolicy::kCache;
    const DistTrainResult result = train_distributed(ds, pg, cfg);
    delay_table.add_row({TextTable::fmt_int(r), r == 0 ? "cd-0" : "cd-" + std::to_string(r),
                         TextTable::fmt(100 * result.test_accuracy, 2),
                         TextTable::fmt(result.epochs.back().loss, 4),
                         TextTable::fmt(static_cast<double>(result.total_bytes_sent) / 1e6 / epochs, 3)});
  }
  std::printf("%s", delay_table.render("(a) Delay sweep (cached staleness)").c_str());

  // (b) staleness policy at r = 5.
  TextTable policy_table({"policy", "test acc (%)", "final loss"});
  cfg.algorithm = Algorithm::kCdR;
  cfg.delay = 5;
  for (const StalenessPolicy policy : {StalenessPolicy::kCache, StalenessPolicy::kLiteral}) {
    cfg.staleness = policy;
    const DistTrainResult result = train_distributed(ds, pg, cfg);
    policy_table.add_row({policy == StalenessPolicy::kCache ? "cache (reapply stale remote)"
                                                            : "literal (Alg. 4 overwrite)",
                          TextTable::fmt(100 * result.test_accuracy, 2),
                          TextTable::fmt(result.epochs.back().loss, 4)});
  }
  std::printf("%s", policy_table.render("(b) Staleness policy at r=5").c_str());

  std::printf("\nPaper reference: accuracy flat for r in [0,5], degraded at r=10; halo\n"
              "volume per epoch shrinks ~1/r. The cached policy dominates the literal\n"
              "one because split vertices always see *some* remote contribution.\n");
  return 0;
}
