// Serving-path benchmarks: micro-batched forward throughput, closed-loop
// QPS, and open-loop tail latency under Poisson and bursty 2-state MMPP
// arrivals. QPS, p50/p95/p99/p99.9, and the log2 latency histogram are
// exported as counters so CI's --benchmark_format=json artifact carries the
// full serving trajectory including the tail shape.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_serving_common.hpp"
#include "graph/datasets.hpp"
#include "serve/inference_server.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/traffic_gen.hpp"

namespace distgnn {
namespace {

using namespace distgnn::serve;

// --seed drives the traffic vertex stream and the arrival process, so the
// JSON artifact is reproducible run-to-run (and comparable across hosts).
std::uint64_t g_seed = 5;

struct ServingFixture {
  Dataset dataset;
  std::shared_ptr<const ModelSnapshot> snapshot;

  static ServingFixture& get() {
    static ServingFixture f = make();
    return f;
  }

  static ServingFixture make() {
    LearnableSbmParams params;
    params.num_vertices = 4096;
    params.num_classes = 8;
    params.avg_degree = 16;
    params.feature_dim = 64;
    params.seed = 9;
    ServingFixture f{make_learnable_sbm(params), nullptr};
    ModelSpec spec;
    spec.feature_dim = f.dataset.feature_dim();
    spec.hidden_dim = 64;
    spec.num_classes = f.dataset.num_classes;
    spec.num_layers = 2;
    f.snapshot = ModelSnapshot::random(spec, /*seed=*/1, /*version=*/1);
    (void)f.dataset.graph.in_csr();
    return f;
  }

  ServeConfig config(int workers, int max_batch) const {
    ServeConfig cfg;
    cfg.num_workers = workers;
    cfg.max_batch = max_batch;
    cfg.max_batch_delay = std::chrono::microseconds(500);
    cfg.fanouts = {10, 10};
    return cfg;
  }
};

/// Raw model-side throughput of the stacked micro-batch forward, swept over
/// batch size: the GEMM-amortization curve that motivates batching at all.
void BM_MicroBatchForward(benchmark::State& state) {
  ServingFixture& f = ServingFixture::get();
  const int batch_size = static_cast<int>(state.range(0));
  const std::vector<int> fanouts = {10, 10};
  const std::size_t dim = static_cast<std::size_t>(f.dataset.feature_dim());

  std::vector<MiniBatch> batch;
  std::size_t rows = 0;
  for (int i = 0; i < batch_size; ++i) {
    const vid_t v = (static_cast<vid_t>(i) * 131) % f.dataset.num_vertices();
    Rng rng = request_rng(1, v);
    const vid_t seed[1] = {v};
    batch.push_back(sample_minibatch(f.dataset.graph.in_csr(), seed, fanouts, rng));
    rows += batch.back().input_vertices.size();
  }
  DenseMatrix inputs(rows, dim);
  std::size_t row = 0;
  for (const MiniBatch& mb : batch)
    for (const vid_t v : mb.input_vertices) {
      const real_t* src = f.dataset.features.row(static_cast<std::size_t>(v));
      std::copy(src, src + dim, inputs.row(row++));
    }

  ForwardScratch scratch;
  DenseMatrix logits;
  for (auto _ : state) {
    f.snapshot->forward_batch(batch, inputs.cview(), scratch, logits);
    benchmark::DoNotOptimize(logits.data());
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
}
BENCHMARK(BM_MicroBatchForward)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_ClosedLoop(benchmark::State& state) {
  ServingFixture& f = ServingFixture::get();
  const int clients = static_cast<int>(state.range(0));
  LoadReport last;
  obs::MetricsSnapshot scrape;
  for (auto _ : state) {
    InferenceServer server(f.dataset, f.config(/*workers=*/2, /*max_batch=*/16));
    server.publish(f.snapshot);
    server.start();
    TrafficGenerator traffic(server, g_seed);
    last = traffic.run_closed_loop(clients, /*requests_each=*/200 / clients);
    scrape = obs::MetricsSnapshot{};
    server.scrape(scrape);
    server.stop();
  }
  bench::attach_load_counters(state, last);
  bench::attach_stage_counters(state, scrape, "server");
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_ClosedLoop)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();

void run_open_loop(benchmark::State& state, ArrivalProcess process) {
  ServingFixture& f = ServingFixture::get();
  ArrivalConfig arrivals;
  arrivals.process = process;
  arrivals.rate = static_cast<double>(state.range(0));
  arrivals.seed = g_seed;
  // Scale the MMPP states to the same long-run mean as the Poisson rate.
  arrivals.mmpp_rate0 = arrivals.rate / 4;
  arrivals.mmpp_rate1 = arrivals.rate * 4;
  LoadReport last;
  obs::MetricsSnapshot scrape;
  for (auto _ : state) {
    InferenceServer server(f.dataset, f.config(/*workers=*/2, /*max_batch=*/16));
    server.publish(f.snapshot);
    server.start();
    TrafficGenerator traffic(server, g_seed);
    last = traffic.run_open_loop(arrivals, /*num_requests=*/400);
    scrape = obs::MetricsSnapshot{};
    server.scrape(scrape);
    server.stop();
  }
  bench::attach_load_counters(state, last);
  bench::attach_stage_counters(state, scrape, "server");
  state.SetItemsProcessed(state.iterations() * 400);
}

void BM_OpenLoop_Poisson(benchmark::State& state) {
  run_open_loop(state, ArrivalProcess::kPoisson);
}
BENCHMARK(BM_OpenLoop_Poisson)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_OpenLoop_Mmpp(benchmark::State& state) { run_open_loop(state, ArrivalProcess::kMmpp); }
BENCHMARK(BM_OpenLoop_Mmpp)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond)->UseRealTime();

/// Tracing-overhead guard: the same open-loop Poisson run with stage tracing
/// off vs on at the production sampling rate (1%). Emits both p99s and their
/// ratio; CI gates overhead_ratio so the wait-free metrics path and the
/// pre-push trace stamping stay effectively free on the hot path.
void BM_TracingOverhead(benchmark::State& state) {
  ServingFixture& f = ServingFixture::get();
  ArrivalConfig arrivals;
  arrivals.process = ArrivalProcess::kPoisson;
  arrivals.rate = 2000;
  arrivals.seed = g_seed;
  double p99_off = 0, p99_on = 0;
  for (auto _ : state) {
    for (const double rate : {0.0, 0.01}) {
      ServeConfig cfg = f.config(/*workers=*/2, /*max_batch=*/16);
      cfg.trace_sample_rate = rate;
      InferenceServer server(f.dataset, cfg);
      server.publish(f.snapshot);
      server.start();
      TrafficGenerator traffic(server, g_seed);
      const LoadReport report = traffic.run_open_loop(arrivals, /*num_requests=*/400);
      server.stop();
      (rate == 0.0 ? p99_off : p99_on) = report.p99_ms;
    }
  }
  state.counters["p99_off_ms"] = p99_off;
  state.counters["p99_on_ms"] = p99_on;
  state.counters["overhead_ratio"] = p99_off > 0 ? p99_on / p99_off : 0.0;
  state.SetItemsProcessed(state.iterations() * 800);
}
BENCHMARK(BM_TracingOverhead)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace distgnn

int main(int argc, char** argv) {
  return distgnn::bench::run_strict_benchmark_main(
      argc, argv, "bench_serving", {"seed"}, [](const distgnn::Options& opts) {
        distgnn::g_seed = static_cast<std::uint64_t>(
            opts.get_int("seed", static_cast<long long>(distgnn::g_seed)));
      });
}
