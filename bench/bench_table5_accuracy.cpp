// Table 5: test accuracy of the distributed algorithms (cd-0, cd-5, 0c)
// across socket counts, with the paper's learning-rate/epoch grid adapted to
// the learnable synthetic dataset. The reproduction target: every algorithm
// and every socket count stays within ~1-2% of the single-socket accuracy
// (the paper reports within 1%).
#include <cstdio>

#include "bench_common.hpp"
#include "core/distributed_trainer.hpp"
#include "core/single_socket_trainer.hpp"
#include "partition/libra.hpp"
#include "partition/partition_setup.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace distgnn;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int epochs = static_cast<int>(opts.get_int("epochs", 60));
  const vid_t n = opts.get_int("vertices", 4096);

  bench::print_header("Distributed test accuracy across socket counts and algorithms",
                      "Table 5 (accuracy within ~1% of single socket; wd=5e-4)");

  LearnableSbmParams p;
  p.num_vertices = n;
  p.num_classes = 8;
  p.avg_degree = 16;
  p.feature_dim = 32;
  p.feature_noise = 1.2f;  // hard enough that the graph structure matters
  p.seed = 17;
  std::printf("[dataset] learnable SBM: |V|=%lld classes=%d deg=%.0f noise=%.1f\n",
              static_cast<long long>(p.num_vertices), p.num_classes, p.avg_degree,
              static_cast<double>(p.feature_noise));
  const Dataset ds = make_learnable_sbm(p);

  TrainConfig cfg;
  cfg.num_layers = 2;
  cfg.hidden_dim = 32;
  cfg.lr = 0.1;
  cfg.weight_decay = 5e-4;
  cfg.epochs = epochs;
  cfg.delay = 5;

  // Single-socket reference row.
  SingleSocketTrainer single(ds, cfg);
  for (int e = 0; e < epochs; ++e) single.train_epoch();
  const double single_acc = single.evaluate(ds.test_mask);

  TextTable table({"sockets", "cd-0 acc (%)", "cd-5 acc (%)", "0c acc (%)", "lr", "#epochs"});
  table.add_row({"1", TextTable::fmt(100 * single_acc, 2), TextTable::fmt(100 * single_acc, 2),
                 TextTable::fmt(100 * single_acc, 2), TextTable::fmt(cfg.lr, 3),
                 TextTable::fmt_int(epochs)});

  for (const int ranks : {2, 4, 8}) {
    const PartitionedGraph pg =
        build_partitions(ds.graph.coo(), partition_libra(ds.graph.coo(), ranks), 1);
    std::vector<std::string> row{TextTable::fmt_int(ranks)};
    for (const Algorithm alg : {Algorithm::kCd0, Algorithm::kCdR, Algorithm::k0c}) {
      TrainConfig c = cfg;
      c.algorithm = alg;
      const DistTrainResult result = train_distributed(ds, pg, c);
      row.push_back(TextTable::fmt(100 * result.test_accuracy, 2));
    }
    row.push_back(TextTable::fmt(cfg.lr, 3));
    row.push_back(TextTable::fmt_int(epochs));
    table.add_row(row);
  }
  std::printf("%s", table.render("Test accuracy (%)").c_str());
  std::printf("\nPaper reference (Reddit / OGBN-Products): all algorithms within 1%% of the\n"
              "93.40%% / 77.63%% single-socket accuracy; cd-5 and 0c occasionally *beat*\n"
              "single socket (clustering effect of partitioning).\n");
  return 0;
}
