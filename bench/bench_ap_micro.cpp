// google-benchmark microbenchmarks of the Aggregation Primitive variants:
// the kernel-level view behind Figures 2-4. Run with --benchmark_filter=...
// to drill into one variant.
#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "kernels/aggregate.hpp"
#include "util/rng.hpp"

namespace distgnn {
namespace {

struct Fixture {
  CsrMatrix csr;
  DenseMatrix features;
  DenseMatrix out;

  static Fixture& dense() {
    static Fixture f = make(1 << 14, 64, 256, 1);
    return f;
  }
  static Fixture& sparse() {
    static Fixture f = make(1 << 16, 12, 100, 2);
    return f;
  }

  static Fixture make(vid_t n, double deg, std::size_t d, std::uint64_t seed) {
    Fixture f;
    RmatParams p;
    p.num_vertices = n;
    p.num_edges = static_cast<eid_t>(deg * static_cast<double>(n) / 2);
    p.seed = seed;
    f.csr = CsrMatrix::from_coo(generate_rmat(p));
    Rng rng(seed);
    f.features = DenseMatrix(static_cast<std::size_t>(n), d);
    for (std::size_t i = 0; i < f.features.size(); ++i)
      f.features.data()[i] = rng.uniform(-1.0f, 1.0f);
    f.out = DenseMatrix(static_cast<std::size_t>(n), d, 0);
    return f;
  }
};

void BM_Baseline_Dense(benchmark::State& state) {
  Fixture& f = Fixture::dense();
  for (auto _ : state) {
    f.out.zero();
    aggregate_baseline(f.csr, f.features.cview(), {}, f.out.view(), BinaryOp::kCopyLhs,
                       ReduceOp::kSum);
    benchmark::DoNotOptimize(f.out.data());
  }
  state.SetItemsProcessed(state.iterations() * f.csr.num_entries());
}
BENCHMARK(BM_Baseline_Dense)->Unit(benchmark::kMillisecond);

void BM_Optimized_Dense(benchmark::State& state) {
  Fixture& f = Fixture::dense();
  ApConfig cfg;
  cfg.num_blocks = static_cast<int>(state.range(0));
  const BlockedCsr blocks(f.csr, cfg.num_blocks);
  for (auto _ : state) {
    f.out.zero();
    aggregate_prepartitioned(blocks, f.features.cview(), {}, f.out.view(), cfg);
    benchmark::DoNotOptimize(f.out.data());
  }
  state.SetItemsProcessed(state.iterations() * f.csr.num_entries());
}
BENCHMARK(BM_Optimized_Dense)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_Baseline_Sparse(benchmark::State& state) {
  Fixture& f = Fixture::sparse();
  for (auto _ : state) {
    f.out.zero();
    aggregate_baseline(f.csr, f.features.cview(), {}, f.out.view(), BinaryOp::kCopyLhs,
                       ReduceOp::kSum);
    benchmark::DoNotOptimize(f.out.data());
  }
  state.SetItemsProcessed(state.iterations() * f.csr.num_entries());
}
BENCHMARK(BM_Baseline_Sparse)->Unit(benchmark::kMillisecond);

void BM_Optimized_Sparse(benchmark::State& state) {
  Fixture& f = Fixture::sparse();
  ApConfig cfg;
  cfg.num_blocks = static_cast<int>(state.range(0));
  const BlockedCsr blocks(f.csr, cfg.num_blocks);
  for (auto _ : state) {
    f.out.zero();
    aggregate_prepartitioned(blocks, f.features.cview(), {}, f.out.view(), cfg);
    benchmark::DoNotOptimize(f.out.data());
  }
  state.SetItemsProcessed(state.iterations() * f.csr.num_entries());
}
BENCHMARK(BM_Optimized_Sparse)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_MicrokernelToggle(benchmark::State& state) {
  Fixture& f = Fixture::dense();
  ApConfig cfg;
  cfg.num_blocks = 16;
  cfg.use_microkernel = state.range(0) != 0;
  const BlockedCsr blocks(f.csr, cfg.num_blocks);
  for (auto _ : state) {
    f.out.zero();
    aggregate_prepartitioned(blocks, f.features.cview(), {}, f.out.view(), cfg);
    benchmark::DoNotOptimize(f.out.data());
  }
}
BENCHMARK(BM_MicrokernelToggle)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace distgnn

BENCHMARK_MAIN();
