// Shared helpers for the benchmark harness: scaled dataset construction and
// headline printing. Every bench accepts --scale=<f> (dataset size
// multiplier) and --epochs=<n> where applicable, so the same binaries can be
// run larger on beefier machines.
#pragma once

#include <cstdio>
#include <string>

#include "graph/datasets.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace distgnn::bench {

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

/// Default bench scale keeps every binary under ~a minute on a laptop-class
/// machine; the paper-scale numbers are reproduced in shape, not magnitude.
inline double default_scale(const Options& opts, double fallback = 0.125) {
  return opts.get_double("scale", fallback);
}

inline Dataset load(const std::string& name, double scale) {
  std::printf("[dataset] %s at scale %.4f ... ", name.c_str(), scale);
  std::fflush(stdout);
  Dataset ds = make_dataset(name, scale);
  std::printf("|V|=%lld |E|=%lld d=%d classes=%d\n", static_cast<long long>(ds.num_vertices()),
              static_cast<long long>(ds.num_edges()), ds.feature_dim(), ds.num_classes);
  return ds;
}

}  // namespace distgnn::bench
