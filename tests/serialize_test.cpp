#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/sage_model.hpp"
#include "nn/serialize.hpp"

namespace distgnn {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "distgnn_serialize_" + name + ".ckpt";
}

TEST(Serialize, SaveLoadRoundTrip) {
  const std::string path = temp_path("roundtrip");
  SageModel model(8, 16, 4, 2, /*seed=*/3);
  const auto params = model.params();
  std::vector<std::vector<real_t>> original;
  for (const ParamRef& p : params) original.emplace_back(p.value, p.value + p.size);

  save_checkpoint(params, path);

  // Clobber every parameter, then restore from disk.
  SageModel other(8, 16, 4, 2, /*seed=*/99);
  auto other_params = other.params();
  load_checkpoint(other_params, path);
  for (std::size_t i = 0; i < params.size(); ++i)
    for (std::size_t j = 0; j < params[i].size; ++j)
      EXPECT_EQ(other_params[i].value[j], original[i][j]) << "param " << i << " elem " << j;
  std::remove(path.c_str());
}

TEST(Serialize, CheckpointShapeMatchesParams) {
  const std::string path = temp_path("shape");
  SageModel model(8, 16, 4, 2, /*seed=*/3);
  const auto params = model.params();
  save_checkpoint(params, path);

  const std::vector<std::size_t> shape = checkpoint_shape(path);
  ASSERT_EQ(shape.size(), params.size());
  for (std::size_t i = 0; i < params.size(); ++i) EXPECT_EQ(shape[i], params[i].size);
  std::remove(path.c_str());
}

TEST(Serialize, LoadRejectsParameterCountMismatch) {
  const std::string path = temp_path("count");
  SageModel model(8, 16, 4, 2, /*seed=*/3);
  auto params = model.params();
  save_checkpoint(params, path);

  SageModel deeper(8, 16, 4, 3, /*seed=*/3);  // more layers -> more params
  auto deeper_params = deeper.params();
  EXPECT_THROW(load_checkpoint(deeper_params, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, LoadRejectsParameterSizeMismatch) {
  const std::string path = temp_path("size");
  SageModel model(8, 16, 4, 2, /*seed=*/3);
  auto params = model.params();
  save_checkpoint(params, path);

  SageModel wider(8, 32, 4, 2, /*seed=*/3);  // same count, different sizes
  auto wider_params = wider.params();
  ASSERT_EQ(wider_params.size(), params.size());
  EXPECT_THROW(load_checkpoint(wider_params, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, LoadRejectsTruncatedFile) {
  const std::string path = temp_path("truncated");
  SageModel model(8, 16, 4, 2, /*seed=*/3);
  auto params = model.params();
  save_checkpoint(params, path);

  // Chop off the tail of the last parameter.
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 64u);
  bytes.resize(bytes.size() - 32);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  EXPECT_THROW(load_checkpoint(params, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsBadMagic) {
  const std::string path = temp_path("magic");
  {
    std::ofstream out(path, std::ios::binary);
    const std::uint32_t junk[4] = {0xdeadbeef, 1, 0, 0};
    out.write(reinterpret_cast<const char*>(junk), sizeof(junk));
  }
  SageModel model(8, 16, 4, 2, /*seed=*/3);
  auto params = model.params();
  EXPECT_THROW(load_checkpoint(params, path), std::runtime_error);
  EXPECT_THROW(checkpoint_shape(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  SageModel model(8, 16, 4, 2, /*seed=*/3);
  auto params = model.params();
  EXPECT_THROW(load_checkpoint(params, "/nonexistent/dir/x.ckpt"), std::runtime_error);
  EXPECT_THROW(checkpoint_shape("/nonexistent/dir/x.ckpt"), std::runtime_error);
  EXPECT_THROW(save_checkpoint(params, "/nonexistent/dir/x.ckpt"), std::runtime_error);
}

TEST(Serialize, ShapeRejectsTruncatedHeader) {
  const std::string path = temp_path("header");
  SageModel model(8, 16, 4, 2, /*seed=*/3);
  auto params = model.params();
  save_checkpoint(params, path);

  // Keep the magic/version/count but cut into the first size field's data.
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  bytes.resize(20);  // magic(4) + version(4) + count(8) + half a size field
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  EXPECT_THROW(checkpoint_shape(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace distgnn
