#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "graph/datasets.hpp"
#include "obs/expose.hpp"
#include "obs/metrics.hpp"
#include "obs/scrape.hpp"
#include "obs/trace.hpp"
#include "partition/libra.hpp"
#include "serve/composed_tier.hpp"
#include "serve/inference_server.hpp"
#include "serve/model_registry.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/replica_group.hpp"
#include "serve/traffic_gen.hpp"

namespace distgnn {
namespace {

using namespace distgnn::serve;

// ---------------------------------------------------------------------------
// Histogram bucket geometry

TEST(ObsMetrics, BucketEdges) {
  // Bucket 0 holds everything below 1µs (and junk inputs).
  EXPECT_EQ(obs::latency_bucket(0.0), 0);
  EXPECT_EQ(obs::latency_bucket(-1.0), 0);
  EXPECT_EQ(obs::latency_bucket(5e-7), 0);
  // Bucket k covers [1µs·2^(k-1), 1µs·2^k): edges land in the upper bucket.
  EXPECT_EQ(obs::latency_bucket(1e-6), 1);
  EXPECT_EQ(obs::latency_bucket(1.5e-6), 1);
  EXPECT_EQ(obs::latency_bucket(2e-6), 2);
  EXPECT_EQ(obs::latency_bucket(1e-3), 10);      // 1000µs in [512µs, 1024µs)
  EXPECT_EQ(obs::latency_bucket(1.024e-3), 11);  // the edge opens bucket 11
  EXPECT_EQ(obs::latency_bucket(1.1e-3), 11);
  // Every bucket's upper bound maps back to the next bucket, and anything
  // just below stays put — the bidirectional rounding guard.
  for (int k = 1; k < obs::kNumBuckets - 1; ++k) {
    const double upper = obs::bucket_upper_seconds(k);
    EXPECT_EQ(obs::latency_bucket(upper), k + 1) << "k=" << k;
    EXPECT_EQ(obs::latency_bucket(upper * 0.999), k) << "k=" << k;
  }
  // Clamped at the top.
  EXPECT_EQ(obs::latency_bucket(1e9), obs::kNumBuckets - 1);
}

TEST(ObsMetrics, HistogramQuantileWithinBucketFactor) {
  obs::MetricsRegistry registry(2);
  obs::Histogram& h = registry.histogram("h");
  for (int i = 0; i < 1000; ++i) h.observe(1e-3);  // all in one bucket
  const obs::HistogramData data = h.snapshot();
  EXPECT_EQ(data.count, 1000u);
  // Log2 buckets: the estimate is within sqrt(2) of the true value.
  EXPECT_GE(data.quantile(0.5), 1e-3 / std::sqrt(2.0) * 0.99);
  EXPECT_LE(data.quantile(0.5), 1e-3 * std::sqrt(2.0) * 1.01);
  EXPECT_NEAR(data.mean_seconds(), 1e-3, 1e-5);
}

// ---------------------------------------------------------------------------
// Sharded registry: wait-free writers, fold on scrape

TEST(ObsMetrics, ConcurrentShardFoldMatchesSerialCount) {
  obs::MetricsRegistry registry(8);
  obs::Counter& counter = registry.counter("distgnn_test_total");
  obs::Histogram& hist = registry.histogram("distgnn_test_seconds");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add();
        hist.observe(1e-4);
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  const obs::HistogramData data = hist.snapshot();
  EXPECT_EQ(data.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_sum = 0;
  for (const std::uint64_t b : data.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, data.count);
}

TEST(ObsMetrics, SnapshotFoldsDuplicateSeries) {
  obs::MetricsSnapshot snap;
  snap.add_counter("c", {{"tenant", "0"}}, 3);
  snap.add_counter("c", {{"tenant", "0"}}, 4);  // same series: folds
  snap.add_counter("c", {{"tenant", "1"}}, 5);  // different labels: new point
  EXPECT_EQ(snap.points.size(), 2u);
  EXPECT_DOUBLE_EQ(snap.find("c", {{"tenant", "0"}})->value, 7);
  EXPECT_DOUBLE_EQ(snap.counter_total("c"), 12);
}

// ---------------------------------------------------------------------------
// Trace sampling + span structure

TEST(ObsTrace, SamplingRateHonored) {
  EXPECT_FALSE(obs::trace_sampled(123, 0, 0.0));
  EXPECT_TRUE(obs::trace_sampled(123, 0, 1.0));
  // Deterministic: the same (id, tenant) always answers the same.
  for (std::uint64_t id = 0; id < 64; ++id)
    EXPECT_EQ(obs::trace_sampled(id, 3, 0.5), obs::trace_sampled(id, 3, 0.5));
  // Statistically honest: a rate-r fraction of ids is sampled (splitmix64
  // mixes well, so 20k ids land within a few percent).
  for (const double rate : {0.1, 0.5, 0.9}) {
    int hits = 0;
    constexpr int kIds = 20000;
    for (std::uint64_t id = 0; id < kIds; ++id)
      if (obs::trace_sampled(id, 1, rate)) ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / kIds, rate, 0.02) << "rate=" << rate;
  }
}

TEST(ObsTrace, SinkRingBoundedAndTopK) {
  obs::TraceSink sink(/*ring_capacity=*/8, /*top_k=*/2);
  for (int i = 0; i < 32; ++i) {
    obs::Trace t;
    t.request_id = static_cast<std::uint64_t>(i);
    t.begin_seconds = 0;
    t.end_seconds = 1e-3 * (i % 7 + 1);  // ids 5,6,12,13,... are slowest
    sink.publish(t);
  }
  EXPECT_EQ(sink.published(), 32u);
  EXPECT_LE(sink.ring_snapshot().size(), 8u);
  const std::vector<obs::Trace> slow = sink.slowest();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_DOUBLE_EQ(slow[0].total_seconds(), 7e-3);
  EXPECT_GE(slow[0].total_seconds(), slow[1].total_seconds());
  // collect = ring + non-resident exemplars, deduplicated.
  std::vector<obs::Trace> all;
  sink.collect(all);
  EXPECT_GE(all.size(), 8u);
  for (std::size_t i = 0; i < all.size(); ++i)
    for (std::size_t j = i + 1; j < all.size(); ++j)
      EXPECT_FALSE(all[i].request_id == all[j].request_id);
}

// Drives a real server at 100% sampling and checks every collected trace:
// stages are ordered, nested inside [begin, end], and the spans cover >= 90%
// of the measured end-to-end latency (the "stamped where the work happens"
// acceptance bar — a reconstructed-at-the-edge trace could not pass it).
TEST(ObsTrace, ServerTracesOrderedAndCoverLatency) {
  LearnableSbmParams params;
  params.num_vertices = 256;
  params.num_classes = 4;
  params.avg_degree = 8;
  params.feature_dim = 16;
  params.seed = 5;
  const Dataset dataset = make_learnable_sbm(params);
  ModelSpec spec;
  spec.feature_dim = dataset.feature_dim();
  spec.hidden_dim = 16;
  spec.num_classes = dataset.num_classes;
  spec.num_layers = 2;

  ServeConfig cfg;
  cfg.num_workers = 2;
  cfg.max_batch = 8;
  cfg.fanouts = {4, 4};
  cfg.trace_sample_rate = 1.0;
  InferenceServer server(dataset, cfg);
  server.publish(ModelSnapshot::random(spec, /*seed=*/1, /*version=*/1));
  server.start();
  TrafficGenerator traffic(server, /*seed=*/3);
  (void)traffic.run_closed_loop(/*num_clients=*/4, /*requests_each=*/25);
  server.drain();

  std::vector<obs::Trace> traces;
  server.collect_traces(traces);
  ASSERT_FALSE(traces.empty());
  constexpr double kEps = 1e-9;
  for (const obs::Trace& t : traces) {
    const obs::Span& admit = t.span(obs::Stage::kAdmit);
    const obs::Span& queue = t.span(obs::Stage::kQueue);
    const obs::Span& sample = t.span(obs::Stage::kSample);
    const obs::Span& forward = t.span(obs::Stage::kForward);
    const obs::Span& reply = t.span(obs::Stage::kReply);
    ASSERT_TRUE(admit.valid() && queue.valid() && sample.valid() && forward.valid() &&
                reply.valid());
    // Ordered and contiguous by construction: admit ends where queue begins,
    // queue ends at the worker pop where the batch sample window begins.
    EXPECT_GE(admit.begin_seconds, t.begin_seconds - kEps);
    EXPECT_GE(queue.begin_seconds, admit.end_seconds - kEps);
    EXPECT_GE(sample.begin_seconds, queue.end_seconds - kEps);
    EXPECT_GE(forward.begin_seconds, sample.end_seconds - kEps);
    EXPECT_GE(reply.end_seconds, reply.begin_seconds - kEps);
    EXPECT_LE(reply.end_seconds, t.end_seconds + kEps);
    // The single-server classic path never waits on halos or embed lookups.
    EXPECT_FALSE(t.span(obs::Stage::kHaloWait).valid());
    EXPECT_FALSE(t.span(obs::Stage::kEmbedLookup).valid());
    EXPECT_GE(t.coverage(), 0.9) << "request " << t.request_id;
  }

  // Sub-sampling: a 30% rate traces roughly (deterministically, not exactly)
  // 30% of requests, and never more than all of them.
  cfg.trace_sample_rate = 0.3;
  InferenceServer sampled(dataset, cfg);
  sampled.publish(ModelSnapshot::random(spec, /*seed=*/1, /*version=*/1));
  sampled.start();
  TrafficGenerator traffic2(sampled, /*seed=*/4);
  (void)traffic2.run_closed_loop(/*num_clients=*/4, /*requests_each=*/50);
  sampled.drain();
  const double frac =
      static_cast<double>(sampled.trace_sink().published()) / 200.0;
  EXPECT_GT(frac, 0.1);
  EXPECT_LT(frac, 0.6);
  sampled.stop();
  server.stop();
}

// ---------------------------------------------------------------------------
// Exposition round-trip

TEST(ObsExpose, PrometheusRoundTrip) {
  obs::MetricsRegistry registry(4);
  registry.counter("distgnn_test_requests_total", {{"tenant", "0"}}).add(41);
  registry.counter("distgnn_test_requests_total", {{"tenant", "1"}}).add(7);
  obs::Histogram& h =
      registry.histogram("distgnn_test_latency_seconds", {{"stage", "forward"}});
  h.observe(1e-4);
  h.observe(2.5e-4);
  h.observe(3e-3);

  obs::MetricsSnapshot snap;
  registry.scrape(snap);
  const std::string text = obs::render_prometheus(snap);
  EXPECT_NE(text.find("# TYPE distgnn_test_requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("distgnn_test_requests_total{tenant=\"0\"} 41"), std::string::npos);
  EXPECT_NE(text.find("_bucket{stage=\"forward\",le=\"+Inf\"} 3"), std::string::npos);

  const obs::MetricsSnapshot parsed = obs::parse_prometheus(text);
  const obs::MetricPoint* c0 = parsed.find("distgnn_test_requests_total", {{"tenant", "0"}});
  ASSERT_NE(c0, nullptr);
  EXPECT_DOUBLE_EQ(c0->value, 41);
  EXPECT_DOUBLE_EQ(parsed.counter_total("distgnn_test_requests_total"), 48);
  const obs::MetricPoint* ph =
      parsed.find("distgnn_test_latency_seconds", {{"stage", "forward"}});
  ASSERT_NE(ph, nullptr);
  ASSERT_TRUE(ph->is_histogram);
  const obs::HistogramData& original =
      snap.find("distgnn_test_latency_seconds", {{"stage", "forward"}})->histogram;
  EXPECT_EQ(ph->histogram.count, original.count);
  EXPECT_EQ(ph->histogram.buckets, original.buckets);
  EXPECT_NEAR(ph->histogram.sum_seconds, original.sum_seconds, 1e-12);

  // JSON rendering sanity: every series name appears.
  const std::string json = obs::render_json(snap);
  EXPECT_NE(json.find("distgnn_test_requests_total"), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
}

TEST(ObsExpose, ChromeTraceContainsStageEvents) {
  obs::Trace t;
  t.request_id = 9;
  t.tenant = 2;
  t.begin_seconds = 10.0;
  t.end_seconds = 10.01;
  t.spans[static_cast<std::size_t>(obs::Stage::kQueue)] = obs::Span{10.0, 10.004};
  t.spans[static_cast<std::size_t>(obs::Stage::kForward)] = obs::Span{10.004, 10.009};
  const obs::Trace traces[] = {t};
  const std::string json = obs::render_chrome_trace(traces);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"queue\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"forward\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  EXPECT_EQ(json.find("\"name\":\"admit\""), std::string::npos);  // span never ran
}

TEST(ObsExpose, ChromeTraceStreamTrack) {
  // A delta-publication trace rides the kStreamTrack pseudo-tenant: its own
  // process track named "stream", cat "stream", and args keyed by epoch.
  obs::Trace t;
  t.request_id = 7;  // the epoch
  t.tenant = obs::kStreamTrack;
  t.begin_seconds = 5.0;
  t.end_seconds = 5.02;
  t.spans[static_cast<std::size_t>(obs::Stage::kRepartition)] = obs::Span{5.0, 5.012};
  t.spans[static_cast<std::size_t>(obs::Stage::kApply)] = obs::Span{5.012, 5.015};
  t.spans[static_cast<std::size_t>(obs::Stage::kInvalidate)] = obs::Span{5.015, 5.02};
  const obs::Trace traces[] = {t};
  const std::string json = obs::render_chrome_trace(traces);
  EXPECT_NE(json.find("\"args\":{\"name\":\"stream\"}"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"repartition\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"apply\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"invalidate\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"stream\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch\":7"), std::string::npos);
  EXPECT_EQ(json.find("\"vertex\""), std::string::npos);
  EXPECT_EQ(json.find("tenant -1"), std::string::npos);
}

TEST(ObsExpose, ChromeTraceMixedServeAndStreamTracks) {
  obs::Trace request;
  request.request_id = 3;
  request.tenant = 0;
  request.vertex = 42;
  request.begin_seconds = 1.0;
  request.end_seconds = 1.01;
  request.spans[static_cast<std::size_t>(obs::Stage::kForward)] = obs::Span{1.0, 1.01};
  obs::Trace delta;
  delta.request_id = 2;
  delta.tenant = obs::kStreamTrack;
  delta.begin_seconds = 1.002;
  delta.end_seconds = 1.008;
  delta.spans[static_cast<std::size_t>(obs::Stage::kApply)] = obs::Span{1.002, 1.008};
  const obs::Trace traces[] = {request, delta};
  const std::string json = obs::render_chrome_trace(traces);
  EXPECT_NE(json.find("\"args\":{\"name\":\"tenant 0\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"stream\"}"), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"serve\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"stream\""), std::string::npos);
  EXPECT_NE(json.find("\"vertex\":42"), std::string::npos);
  EXPECT_NE(json.find("\"epoch\":2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Quantile edge cases (empty / all-zero histograms stay defined)

TEST(ObsMetrics, QuantileDefinedOnDegenerateHistograms) {
  // Empty histogram: no samples at all.
  obs::HistogramData empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.99), 0.0);
  // All-zero durations land in bucket 0 and must not walk off the table.
  obs::MetricsRegistry registry(2);
  obs::Histogram& h = registry.histogram("distgnn_test_zero_seconds", {});
  h.observe(0.0);
  h.observe(0.0);
  h.observe(-1.0);  // junk input also folds into bucket 0
  obs::MetricsSnapshot snap;
  registry.scrape(snap);
  const obs::MetricPoint* p = snap.find("distgnn_test_zero_seconds", {});
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->histogram.count, 3u);
  const double q99 = p->histogram.quantile(0.99);
  EXPECT_GE(q99, 0.0);
  EXPECT_LE(q99, obs::bucket_upper_seconds(0));
  // Count inflated beyond the bucket sum (possible when merging partially
  // scraped shards) must clamp to the last populated bucket, not run off
  // the end of the table.
  obs::HistogramData skewed;
  skewed.buckets[3] = 1;
  skewed.count = 100;
  EXPECT_LE(skewed.quantile(0.999), obs::bucket_upper_seconds(3));
  EXPECT_GT(skewed.quantile(0.999), 0.0);
}

TEST(ObsMetrics, SnapshotQuantileLookup) {
  obs::MetricsRegistry registry(2);
  obs::Histogram& h = registry.histogram("distgnn_test_lat_seconds", {{"stage", "forward"}});
  for (int i = 0; i < 100; ++i) h.observe(1e-3);
  obs::MetricsSnapshot snap;
  registry.scrape(snap);
  const double q = snap.quantile("distgnn_test_lat_seconds", 0.5, {{"stage", "forward"}});
  EXPECT_GT(q, 0.5e-3 / std::sqrt(2.0));
  EXPECT_LE(q, 1.024e-3);
  // Empty labels folds every series of that name.
  const double qall = snap.quantile("distgnn_test_lat_seconds", 0.5);
  EXPECT_DOUBLE_EQ(qall, q);
  // Unknown series: defined zero, not a throw.
  EXPECT_DOUBLE_EQ(snap.quantile("distgnn_test_absent_seconds", 0.99), 0.0);
  EXPECT_DOUBLE_EQ(snap.quantile("distgnn_test_lat_seconds", 0.5, {{"stage", "nope"}}), 0.0);
}

// ---------------------------------------------------------------------------
// parse_prometheus rejection paths

TEST(ObsExpose, ParseRejectsBadLabelEscaping) {
  // Dangling backslash at end of a label value.
  EXPECT_THROW(obs::parse_prometheus("m{l=\"a\\"), std::runtime_error);
  // Unsupported escape sequence.
  EXPECT_THROW(obs::parse_prometheus("m{l=\"a\\t\"} 1\n"), std::runtime_error);
  // Empty label name.
  EXPECT_THROW(obs::parse_prometheus("m{=\"v\"} 1\n"), std::runtime_error);
  // Unterminated label block.
  EXPECT_THROW(obs::parse_prometheus("m{l=\"v\" 1\n"), std::runtime_error);
}

TEST(ObsExpose, ParseRejectsNonNumericValue) {
  EXPECT_THROW(obs::parse_prometheus("distgnn_x_total 12abc\n"), std::runtime_error);
  EXPECT_THROW(obs::parse_prometheus("distgnn_x_total notanumber\n"), std::runtime_error);
  EXPECT_THROW(obs::parse_prometheus("distgnn_x_total\n"), std::runtime_error);
  // Valid exotic numerics must still pass.
  const obs::MetricsSnapshot inf_ok = obs::parse_prometheus("distgnn_x_total +Inf\n");
  const obs::MetricPoint* p = inf_ok.find("distgnn_x_total", {});
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(std::isinf(p->value));
}

TEST(ObsExpose, ParseRejectsTruncatedComments) {
  EXPECT_THROW(obs::parse_prometheus("# TYPE\n"), std::runtime_error);
  EXPECT_THROW(obs::parse_prometheus("# TYPE distgnn_x_total\n"), std::runtime_error);
  EXPECT_THROW(obs::parse_prometheus("# TYPE distgnn_x_total bogus\n"), std::runtime_error);
  EXPECT_THROW(obs::parse_prometheus("# HELP\n"), std::runtime_error);
  // Non-directive comments stay ignorable.
  const obs::MetricsSnapshot ok = obs::parse_prometheus("# scraped by distgnn\nm_total 1\n");
  EXPECT_NE(ok.find("m_total", {}), nullptr);
}

// ---------------------------------------------------------------------------
// LatencyRecorder folding

TEST(ObsLatencyRecorder, FoldMergesSamples) {
  LatencyRecorder a, b;
  a.record(1e-3);
  a.record(2e-3);
  b.record(3e-3);
  b.record(4e-3);
  a += b;
  EXPECT_EQ(a.count(), 4u);
  EXPECT_NEAR(a.mean_seconds(), 2.5e-3, 1e-9);
  EXPECT_EQ(b.count(), 2u);  // source unchanged
  a += a;                    // self-fold is a no-op, not a double
  EXPECT_EQ(a.count(), 4u);
  // Histogram buckets share the obs geometry.
  const auto buckets = a.histogram();
  ASSERT_FALSE(buckets.empty());
  std::size_t total = 0;
  for (const auto& bucket : buckets) {
    EXPECT_DOUBLE_EQ(bucket.upper_seconds,
                     obs::bucket_upper_seconds(obs::latency_bucket(bucket.upper_seconds * 0.99)));
    total += bucket.count;
  }
  EXPECT_EQ(total, 4u);
}

// ---------------------------------------------------------------------------
// Tenant-lane fold consistency

TEST(ObsTenantFold, SyntheticStrictAndEdgeModes) {
  BackendStats parent;
  BackendStats child1, child2;
  child1.tenant_lane(0).submitted = 10;
  child1.tenant_lane(0).completed = 9;
  child1.tenant_lane(0).shed = 1;
  child2.tenant_lane(0).submitted = 5;
  child2.tenant_lane(0).completed = 5;
  parent.children = {child1, child2};
  parent.tenant_lane(0).submitted = 15;
  parent.tenant_lane(0).completed = 14;
  parent.tenant_lane(0).shed = 1;
  EXPECT_TRUE(check_tenant_fold(parent, /*edge_authoritative=*/false).consistent);

  // Edge mode tolerates parent-side sheds the children never saw...
  parent.tenant_lane(0).submitted = 20;
  parent.tenant_lane(0).shed = 6;
  EXPECT_FALSE(check_tenant_fold(parent, /*edge_authoritative=*/false).consistent);
  EXPECT_TRUE(check_tenant_fold(parent, /*edge_authoritative=*/true).consistent);

  // ...but completed must match the fold exactly in both modes.
  parent.tenant_lane(0).completed = 13;
  const TenantFoldReport bad = check_tenant_fold(parent, /*edge_authoritative=*/true);
  EXPECT_FALSE(bad.consistent);
  EXPECT_FALSE(bad.detail.empty());
}

TEST(ObsTenantFold, LiveReplicaGroupIsStrictlyConsistent) {
  LearnableSbmParams params;
  params.num_vertices = 256;
  params.num_classes = 4;
  params.avg_degree = 8;
  params.feature_dim = 16;
  params.seed = 5;
  const Dataset dataset = make_learnable_sbm(params);
  ModelSpec spec;
  spec.feature_dim = dataset.feature_dim();
  spec.hidden_dim = 16;
  spec.num_classes = dataset.num_classes;
  spec.num_layers = 2;

  ServeConfig cfg;
  cfg.num_workers = 1;
  cfg.max_batch = 4;
  cfg.fanouts = {4, 4};
  ReplicaGroup group(dataset, cfg, /*replicas=*/2);
  group.publish(ModelSnapshot::random(spec, /*seed=*/1, /*version=*/1));
  group.start();
  std::vector<vid_t> vertices;
  for (vid_t v = 0; v < 40; ++v) vertices.push_back(v % 256);
  RequestMeta meta;
  meta.tenant = 1;
  (void)group.infer_batch(vertices, meta);
  group.drain();
  BackendStats stats = group.stats();
  group.stop();
  const TenantFoldReport report = check_tenant_fold(stats, /*edge_authoritative=*/false);
  EXPECT_TRUE(report.consistent) << report.detail;
  EXPECT_EQ(stats.tenant_lane(1).completed, 40u);
}

// ---------------------------------------------------------------------------
// The acceptance walk: one scrape of a ModelRegistry whose tenants sit on an
// R x P ComposedTier yields per-tenant stage histograms — admit, queue,
// sample, halo_wait, forward — in valid Prometheus text.

TEST(ObsScrape, RegistryOverComposedTierExposesAllStages) {
  LearnableSbmParams params;
  params.num_vertices = 256;
  params.num_classes = 4;
  params.avg_degree = 8;
  params.feature_dim = 16;
  params.seed = 5;
  const Dataset dataset = make_learnable_sbm(params);
  ModelSpec spec;
  spec.feature_dim = dataset.feature_dim();
  spec.hidden_dim = 16;
  spec.num_classes = dataset.num_classes;
  spec.num_layers = 2;
  const auto snapshot = ModelSnapshot::random(spec, /*seed=*/1, /*version=*/1);
  const EdgePartition partition = partition_libra(dataset.graph.coo(), /*num_parts=*/2);

  ModelRegistry registry;
  std::vector<tenant_t> tenants;
  for (const char* name : {"alpha", "bravo"}) {
    ComposedConfig cfg;
    cfg.replicas = 2;
    cfg.shard.max_batch = 4;
    cfg.shard.fanouts = {4, 4};
    cfg.shard.trace_sample_rate = 1.0;
    TenantSlo slo;
    slo.name = name;
    tenants.push_back(
        registry.add(slo, std::make_unique<ComposedTier>(dataset, partition, cfg)));
  }
  for (const tenant_t t : tenants) registry.publish(t, snapshot);
  registry.start();

  std::vector<vid_t> vertices;
  for (vid_t v = 0; v < 32; ++v) vertices.push_back((v * 7) % 256);
  for (const tenant_t t : tenants) {
    const auto results = registry.infer_batch(t, vertices);
    for (const auto& r : results) EXPECT_TRUE(r.has_value());
  }
  for (const tenant_t t : tenants) registry.backend(t).drain();

  // One scrape walks every tenant's tower down to the sharded ranks.
  obs::MetricsSnapshot snap;
  registry.scrape(snap);
  registry.stop();

  for (const tenant_t t : tenants) {
    const std::string id = std::to_string(t);
    EXPECT_GE(snap.find("distgnn_registry_completed_total", {{"tenant", id}})->value, 32.0);
    for (const char* stage : {"admit", "queue", "sample", "halo_wait", "forward"}) {
      const obs::MetricPoint* point =
          snap.find("distgnn_sharded_stage_seconds", {{"stage", stage}, {"tenant", id}});
      ASSERT_NE(point, nullptr) << "stage=" << stage << " tenant=" << id;
      EXPECT_FALSE(point->histogram.empty()) << "stage=" << stage << " tenant=" << id;
    }
  }
  EXPECT_GE(snap.counter_total("distgnn_router_completed_total"), 64.0);

  // Valid Prometheus text: the round-trip parser accepts every line and
  // preserves the per-tenant stage histograms.
  const obs::MetricsSnapshot parsed = obs::parse_prometheus(obs::render_prometheus(snap));
  for (const tenant_t t : tenants) {
    const obs::MetricPoint* halo = parsed.find(
        "distgnn_sharded_stage_seconds", {{"stage", "halo_wait"}, {"tenant", std::to_string(t)}});
    ASSERT_NE(halo, nullptr);
    EXPECT_FALSE(halo->histogram.empty());
  }

  // The sampled traces from the grid are collectable through the registry.
  std::vector<obs::Trace> traces;
  registry.collect_traces(traces);
  EXPECT_FALSE(traces.empty());
}

}  // namespace
}  // namespace distgnn
