#include <gtest/gtest.h>

#include <set>

#include "core/rgcn_trainer.hpp"
#include "graph/hetero.hpp"
#include "nn/rgcn_layer.hpp"
#include "util/rng.hpp"

namespace distgnn {
namespace {

DenseMatrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  DenseMatrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.uniform(-1.0f, 1.0f);
  return m;
}

TEST(HeteroGraph, PerRelationCsrPartitionsEdges) {
  EdgeList el;
  el.num_vertices = 4;
  el.add(0, 1);
  el.add(1, 2);
  el.add(2, 3);
  el.add(3, 0);
  HeteroGraph g(el, {0, 1, 0, 1}, 2);
  EXPECT_EQ(g.in_csr(0).num_entries() + g.in_csr(1).num_entries(), 4);
  EXPECT_EQ(g.in_degree(1, 0), 1);  // edge 0->1 is relation 0
  EXPECT_EQ(g.in_degree(1, 1), 0);
  EXPECT_EQ(g.in_degree(2, 1), 1);  // edge 1->2 is relation 1
}

TEST(HeteroGraph, ValidatesInputs) {
  EdgeList el;
  el.num_vertices = 2;
  el.add(0, 1);
  EXPECT_THROW(HeteroGraph(el, {0, 1}, 2), std::invalid_argument);  // size mismatch
  EXPECT_THROW(HeteroGraph(el, {5}, 2), std::out_of_range);         // bad type
}

TEST(HeteroGraph, OutCsrIsTranspose) {
  EdgeList el;
  el.num_vertices = 3;
  el.add(0, 1);
  el.add(0, 2);
  HeteroGraph g(el, {0, 0}, 1);
  EXPECT_EQ(g.out_csr(0).degree(0), 2);
  EXPECT_EQ(g.in_csr(0).degree(0), 0);
}

TEST(HeteroDataset, RelationsCorrelateWithCommunities) {
  HeteroDatasetParams p;
  p.num_vertices = 1024;
  p.num_classes = 4;
  p.num_edge_types = 4;
  p.avg_degree = 12;
  const HeteroDataset ds = make_hetero_dataset(p);
  EXPECT_EQ(ds.graph.num_edge_types(), 4);
  // Intra-community edges were biased to relations {0,1}.
  eid_t intra_low = 0, intra = 0;
  const auto& edges = ds.graph.edges().edges;
  const auto& types = ds.graph.edge_types();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (ds.labels[static_cast<std::size_t>(edges[i].src)] ==
        ds.labels[static_cast<std::size_t>(edges[i].dst)]) {
      ++intra;
      if (types[i] < 2) ++intra_low;
    }
  }
  EXPECT_GT(static_cast<double>(intra_low) / static_cast<double>(intra), 0.95);
}

TEST(RgcnLayer, GradientCheckThroughAllPaths) {
  Rng rng(3);
  const std::size_t n = 5, in = 3, out = 2;
  const int relations = 2;
  RgcnLayer layer(in, out, relations, /*apply_relu=*/true, rng);
  DenseMatrix H = random_matrix(n, in, rng);
  std::vector<DenseMatrix> aggs, inv_norms;
  for (int r = 0; r < relations; ++r) {
    aggs.push_back(random_matrix(n, in, rng));
    DenseMatrix inv(n, 1);
    for (std::size_t v = 0; v < n; ++v) inv.at(v, 0) = 1.0f / static_cast<real_t>(v + 1 + r);
    inv_norms.push_back(std::move(inv));
  }
  const DenseMatrix G = random_matrix(n, out, rng);

  auto objective = [&]() {
    DenseMatrix Y(n, out);
    layer.forward_from_aggregates(H.cview(), aggs, inv_norms, Y.view());
    double J = 0;
    for (std::size_t i = 0; i < Y.size(); ++i) J += static_cast<double>(Y.data()[i]) * G.data()[i];
    return J;
  };

  DenseMatrix Y(n, out), dH_self(n, in);
  std::vector<DenseMatrix> dscaled(static_cast<std::size_t>(relations));
  layer.forward_from_aggregates(H.cview(), aggs, inv_norms, Y.view());
  layer.zero_grad();
  layer.backward(G.cview(), dscaled, dH_self.view());

  const real_t eps = 1e-2f;
  // Gradient w.r.t. each relation's aggregate equals dscaled[r].
  for (int r = 0; r < relations; ++r) {
    real_t& a = aggs[static_cast<std::size_t>(r)].at(2, 1);
    const real_t save = a;
    a = save + eps;
    const double jp = objective();
    a = save - eps;
    const double jm = objective();
    a = save;
    EXPECT_NEAR(dscaled[static_cast<std::size_t>(r)].at(2, 1), (jp - jm) / (2 * eps), 2e-2)
        << "relation " << r;
  }
  // Gradient w.r.t. the self features (through W_self only; the aggregates
  // here are independent inputs, so no neighbour path applies).
  objective();
  layer.zero_grad();
  layer.backward(G.cview(), dscaled, dH_self.view());
  real_t& h = H.at(1, 0);
  const real_t save = h;
  h = save + eps;
  const double jp = objective();
  h = save - eps;
  const double jm = objective();
  h = save;
  EXPECT_NEAR(dH_self.at(1, 0), (jp - jm) / (2 * eps), 2e-2);
}

TEST(RgcnLayer, CollectsAllParams) {
  Rng rng(5);
  RgcnLayer layer(4, 3, 3, true, rng);
  std::vector<ParamRef> params;
  layer.collect_params(params);
  // W_self + bias + 3 relation weights.
  EXPECT_EQ(params.size(), 5u);
}

TEST(RgcnTrainer, LearnsTypedCommunities) {
  HeteroDatasetParams p;
  p.num_vertices = 1024;
  p.num_classes = 4;
  p.num_edge_types = 4;
  p.avg_degree = 12;
  p.feature_noise = 0.8f;
  const HeteroDataset ds = make_hetero_dataset(p);

  TrainConfig cfg;
  cfg.num_layers = 2;
  cfg.hidden_dim = 32;
  cfg.lr = 0.1;
  RgcnTrainer trainer(ds, cfg);
  const double first = trainer.train_epoch().loss;
  for (int e = 0; e < 40; ++e) trainer.train_epoch();
  const double last = trainer.train_epoch().loss;
  EXPECT_LT(last, 0.5 * first);
  EXPECT_GT(trainer.evaluate(ds.test_mask), 0.7);
}

TEST(RgcnTrainer, BaselineAndOptimizedApAgree) {
  HeteroDatasetParams p;
  p.num_vertices = 512;
  p.num_classes = 4;
  p.num_edge_types = 3;
  p.seed = 77;
  const HeteroDataset ds = make_hetero_dataset(p);

  TrainConfig cfg;
  cfg.num_layers = 2;
  cfg.hidden_dim = 16;
  cfg.ap_mode = ApMode::kOptimized;
  RgcnTrainer opt(ds, cfg);
  cfg.ap_mode = ApMode::kBaseline;
  RgcnTrainer base(ds, cfg);
  for (int e = 0; e < 4; ++e) {
    const double lo = opt.train_epoch().loss;
    const double lb = base.train_epoch().loss;
    EXPECT_NEAR(lo, lb, 1e-3 * std::max(1.0, std::abs(lb))) << "epoch " << e;
  }
}

}  // namespace
}  // namespace distgnn
