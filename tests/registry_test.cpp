// Multi-tenant ModelRegistry: three model families (SAGE, GAT, RGCN) served
// from one process, independent hot-swap with bitwise-stable neighbours,
// weighted-fair convergence under saturation, per-tenant budget shedding,
// and the RGCN checkpoint/serve path pinned bitwise against the trainer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "core/rgcn_trainer.hpp"
#include "graph/datasets.hpp"
#include "graph/hetero.hpp"
#include "nn/serialize.hpp"
#include "serve/inference_server.hpp"
#include "serve/model_registry.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/replica_group.hpp"
#include "serve/router.hpp"

namespace distgnn {
namespace {

using namespace distgnn::serve;

Dataset make_homo_dataset() {
  LearnableSbmParams params;
  params.num_vertices = 512;
  params.num_classes = 4;
  params.avg_degree = 8;
  params.feature_dim = 16;
  params.seed = 5;
  return make_learnable_sbm(params);
}

HeteroDataset make_hetero() {
  HeteroDatasetParams params;
  params.num_vertices = 256;
  params.num_classes = 4;
  params.num_edge_types = 3;
  params.avg_degree = 6;
  params.feature_dim = 8;
  params.seed = 19;
  return make_hetero_dataset(params);
}

ModelSpec sage_spec(const Dataset& dataset) {
  ModelSpec spec;
  spec.kind = ModelKind::kSage;
  spec.feature_dim = dataset.feature_dim();
  spec.hidden_dim = 16;
  spec.num_classes = dataset.num_classes;
  spec.num_layers = 2;
  return spec;
}

ServeConfig small_config() {
  ServeConfig cfg;
  cfg.num_workers = 1;
  cfg.max_batch = 4;
  cfg.fanouts = {5, 5};
  return cfg;
}

/// Fanout covering every in-neighbour of every vertex: sampling keeps the
/// full CSR adjacency in block order, the regime where served RGCN answers
/// equal the full-graph trainer forward bitwise.
int full_fanout(const Dataset& dataset) {
  const CsrMatrix& csr = dataset.graph.in_csr();
  eid_t max_deg = 1;
  for (vid_t v = 0; v < csr.num_rows(); ++v) max_deg = std::max(max_deg, csr.degree(v));
  return static_cast<int>(max_deg);
}

TEST(ModelRegistry, ServesThreeModelFamiliesFromOneProcess) {
  const Dataset homo = make_homo_dataset();
  const HeteroDataset hetero = make_hetero();
  const Dataset hetero_ds = hetero_to_dataset(hetero);

  ModelRegistry registry;
  TenantSlo a;
  a.name = "sage";
  TenantSlo b;
  b.name = "gat";
  TenantSlo c;
  c.name = "rgcn";
  const tenant_t ta = registry.add_server(a, homo, small_config());
  const tenant_t tb = registry.add_server(b, homo, small_config());
  const tenant_t tc = registry.add_server(c, hetero_ds, small_config());
  EXPECT_EQ(registry.num_models(), 3);
  EXPECT_EQ(registry.find("gat"), tb);
  EXPECT_EQ(registry.find("nope"), std::nullopt);
  EXPECT_THROW(registry.add_server(a, homo, small_config()), std::invalid_argument);  // dup name
  EXPECT_THROW(registry.backend(99), std::out_of_range);

  ModelSpec gat = sage_spec(homo);
  gat.kind = ModelKind::kGat;
  ModelSpec rgcn;
  rgcn.kind = ModelKind::kRgcn;
  rgcn.feature_dim = hetero_ds.feature_dim();
  rgcn.hidden_dim = 8;
  rgcn.num_classes = hetero_ds.num_classes;
  rgcn.num_layers = 2;
  rgcn.num_relations = hetero_ds.num_edge_types;
  registry.publish(ta, ModelSnapshot::random(sage_spec(homo), 1, 1));
  registry.publish(tb, ModelSnapshot::random(gat, 2, 1));
  registry.publish(tc, ModelSnapshot::random(rgcn, 3, 1));
  registry.start();

  // Every family answers, and the tenant id rides into the result.
  for (const tenant_t t : {ta, tb, tc}) {
    const InferResult result = registry.infer_sync(t, /*vertex=*/7);
    EXPECT_FALSE(result.logits.empty()) << "tenant " << t;
    EXPECT_EQ(result.tenant, t);
  }

  const BackendStats stats = registry.stats();
  registry.stop();
  ASSERT_EQ(stats.children.size(), 3u);
  EXPECT_EQ(stats.children[0].label, "sage");
  EXPECT_EQ(stats.children[1].label, "gat");
  EXPECT_EQ(stats.children[2].label, "rgcn");
  ASSERT_EQ(stats.tenants.size(), 3u);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(stats.tenants[t].submitted, 1u);
    EXPECT_EQ(stats.tenants[t].completed, 1u);
    EXPECT_EQ(stats.tenants[t].shed, 0u);
  }
}

TEST(ModelRegistry, HotSwapOfOneTenantLeavesNeighbourBitwiseStable) {
  const Dataset dataset = make_homo_dataset();
  const ModelSpec spec = sage_spec(dataset);
  const auto a1 = ModelSnapshot::random(spec, /*seed=*/100, /*version=*/1);
  const auto a2 = ModelSnapshot::random(spec, /*seed=*/200, /*version=*/2);
  const auto b1 = ModelSnapshot::random(spec, /*seed=*/300, /*version=*/1);

  std::vector<vid_t> probe;
  for (vid_t v = 0; v < 32; ++v) probe.push_back((v * 37) % dataset.num_vertices());

  // B's reference answers from a standalone server over the same snapshot.
  std::vector<std::vector<real_t>> expected_b;
  {
    InferenceServer single(dataset, small_config());
    single.publish(b1);
    single.start();
    for (const vid_t v : probe) expected_b.push_back(single.infer_sync(v).logits);
    single.stop();
  }

  ModelRegistry registry;
  TenantSlo sa;
  sa.name = "a";
  TenantSlo sb;
  sb.name = "b";
  const tenant_t ta = registry.add_server(sa, dataset, small_config());
  const tenant_t tb = registry.add_server(sb, dataset, small_config());
  registry.publish(ta, a1);
  registry.publish(tb, b1);
  registry.start();

  // Keep B's lane busy while A hot-swaps: submit the whole probe batch
  // asynchronously, swap A mid-flight, then collect.
  std::vector<std::vector<real_t>> got_b(probe.size());
  std::vector<std::uint64_t> versions_b(probe.size());
  std::atomic<std::size_t> done{0};
  for (std::size_t i = 0; i < probe.size(); ++i)
    ASSERT_TRUE(registry.submit(tb, probe[i], [&, i](InferResult&& r) {
      got_b[i] = std::move(r.logits);
      versions_b[i] = r.snapshot_version;
      done.fetch_add(1);
    }));
  registry.publish(ta, a2);  // independent hot-swap: only A's entry barriers
  registry.backend(tb).drain();
  ASSERT_EQ(done.load(), probe.size());

  // B's in-flight answers: bitwise the b1 model, version untouched by A's
  // publish.
  for (std::size_t i = 0; i < probe.size(); ++i) {
    EXPECT_EQ(got_b[i], expected_b[i]) << "request " << i;
    EXPECT_EQ(versions_b[i], 1u) << "request " << i;
  }
  // A really swapped (and serves v2), B still serves v1.
  EXPECT_EQ(registry.backend(ta).snapshot()->version(), 2u);
  EXPECT_EQ(registry.backend(tb).snapshot()->version(), 1u);
  EXPECT_EQ(registry.infer_sync(ta, probe[0]).snapshot_version, 2u);
  registry.stop();
}

TEST(Router, WeightedFairSharesConvergeToSloWeightsUnderSaturation) {
  const Dataset dataset = make_homo_dataset();
  ReplicaGroup group(dataset, small_config(), /*num_replicas=*/1);
  group.publish(ModelSnapshot::random(sage_spec(dataset), 1, 1));
  group.start();

  AdmissionConfig admission;
  admission.shed_deadlines = false;
  admission.low_priority_depth = 0;  // fairness only — nothing sheds
  TenantSlo heavy;
  heavy.name = "heavy";
  heavy.weight = 2.0;
  TenantSlo light;
  light.name = "light";
  light.weight = 1.0;
  admission.tenants = {heavy, light};
  admission.dispatch_window = 2;  // force staging so WRR decides the order
  Router router(group, RoutePolicy::kRoundRobin, admission);
  ASSERT_TRUE(router.tenant_mode());

  // Both tenants offer far above capacity; while both lanes are backlogged
  // the dispatch shares follow the 2:1 weights. Sample the lanes the moment
  // the heavy stream finishes (the light lane is still saturated then).
  const std::size_t n = 240;
  const auto make_load = [&](tenant_t tenant, std::uint64_t seed) {
    RouterLoadConfig load;
    load.arrivals.process = ArrivalProcess::kPoisson;
    load.arrivals.rate = 50000.0;  // >> capacity: arrival pacing is a non-factor
    load.arrivals.seed = seed;
    load.num_requests = n;
    load.seed = seed;
    load.tenant = tenant;
    return load;
  };
  RouterStats at_heavy_done;
  std::thread heavy_thread([&] {
    (void)run_router_open_loop(router, make_load(0, 11));
    at_heavy_done = router.stats();
  });
  (void)run_router_open_loop(router, make_load(1, 13));
  heavy_thread.join();
  group.stop();

  ASSERT_EQ(at_heavy_done.tenants.size(), 2u);
  const double served_heavy = static_cast<double>(at_heavy_done.tenants[0].completed);
  const double served_light = static_cast<double>(at_heavy_done.tenants[1].completed);
  ASSERT_GT(served_light, 0.0);
  const double ratio = served_heavy / served_light;
  EXPECT_GE(ratio, 1.4) << "heavy " << served_heavy << " light " << served_light;
  EXPECT_LE(ratio, 3.0) << "heavy " << served_heavy << " light " << served_light;
  // Nothing shed: fairness reorders, it never drops.
  EXPECT_EQ(router.stats().shed(), 0u);
}

TEST(ModelRegistry, BudgetShedsTheBurstingTenantOnly) {
  const Dataset dataset = make_homo_dataset();
  const auto snapshot = ModelSnapshot::random(sage_spec(dataset), 1, 1);

  ModelRegistry registry;
  TenantSlo sa;
  sa.name = "steady";  // unlimited budget
  TenantSlo sb;
  sb.name = "bursty";
  sb.rate_limit = 200.0;  // requests/s — far below the offered burst
  sb.burst = 8;
  const tenant_t ta = registry.add_server(sa, dataset, small_config());
  const tenant_t tb = registry.add_server(sb, dataset, small_config());
  registry.publish(ta, snapshot);
  registry.publish(tb, snapshot);
  registry.start();

  // B floods (no pacing at all); A trickles politely.
  std::atomic<std::size_t> done{0};
  std::size_t accepted_b = 0;
  for (int i = 0; i < 400; ++i)
    if (registry.submit(tb, static_cast<vid_t>(i % dataset.num_vertices()),
                        [&](InferResult&&) { done.fetch_add(1); }))
      ++accepted_b;
  for (int i = 0; i < 50; ++i)
    ASSERT_TRUE(registry.submit(ta, static_cast<vid_t>(i),
                                [&](InferResult&&) { done.fetch_add(1); }));
  registry.backend(ta).drain();
  registry.backend(tb).drain();

  const BackendStats stats = registry.stats();
  registry.stop();
  ASSERT_EQ(stats.tenants.size(), 2u);
  EXPECT_EQ(stats.tenants[static_cast<std::size_t>(ta)].shed, 0u);
  EXPECT_GT(stats.tenants[static_cast<std::size_t>(tb)].shed, 0u);
  EXPECT_EQ(stats.tenants[static_cast<std::size_t>(tb)].submitted, 400u);
  // The bucket admits at most burst + a sliver of refill out of the flood.
  EXPECT_LT(accepted_b, 40u);
  EXPECT_EQ(done.load(), accepted_b + 50);
}

TEST(RgcnServing, CheckpointRoundTripsBitwise) {
  const HeteroDataset hetero = make_hetero();
  TrainConfig config;
  config.num_layers = 2;
  config.hidden_dim = 8;
  config.seed = 3;
  config.ap_mode = ApMode::kBaseline;
  RgcnTrainer trainer(hetero, config);

  const std::string path = ::testing::TempDir() + "distgnn_rgcn_roundtrip.ckpt";
  auto params = trainer.params();
  save_checkpoint(params, path);

  ModelSpec spec;
  spec.kind = ModelKind::kRgcn;
  spec.feature_dim = hetero.feature_dim();
  spec.hidden_dim = config.hidden_dim;
  spec.num_classes = hetero.num_classes;
  spec.num_layers = config.num_layers;
  spec.num_relations = hetero.graph.num_edge_types();
  const auto snapshot = ModelSnapshot::from_checkpoint(spec, path, /*version=*/4);
  EXPECT_EQ(snapshot->version(), 4u);

  // save -> reload and flatten -> from_flat both reproduce the exact bytes.
  const std::string path2 = ::testing::TempDir() + "distgnn_rgcn_roundtrip2.ckpt";
  snapshot->save(path2);
  const auto reloaded = ModelSnapshot::from_checkpoint(spec, path2, /*version=*/5);
  EXPECT_EQ(reloaded->flatten(), snapshot->flatten());
  const auto from_flat = ModelSnapshot::from_flat(spec, snapshot->flatten(), /*version=*/6);
  EXPECT_EQ(from_flat->flatten(), snapshot->flatten());
  EXPECT_EQ(snapshot->num_parameters(), snapshot->flatten().size());
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(RgcnServing, FullFanoutServedLogitsMatchTrainerBitwise) {
  const HeteroDataset hetero = make_hetero();
  const Dataset dataset = hetero_to_dataset(hetero);

  TrainConfig config;
  config.num_layers = 2;
  config.hidden_dim = 8;
  config.seed = 3;
  config.ap_mode = ApMode::kBaseline;
  RgcnTrainer trainer(hetero, config);
  (void)trainer.evaluate(hetero.val_mask);  // runs the full-graph forward
  const ConstMatrixView train_logits = trainer.logits();

  const std::string path = ::testing::TempDir() + "distgnn_rgcn_serve.ckpt";
  auto params = trainer.params();
  save_checkpoint(params, path);
  ModelSpec spec;
  spec.kind = ModelKind::kRgcn;
  spec.feature_dim = dataset.feature_dim();
  spec.hidden_dim = config.hidden_dim;
  spec.num_classes = dataset.num_classes;
  spec.num_layers = config.num_layers;
  spec.num_relations = dataset.num_edge_types;
  const auto snapshot = ModelSnapshot::from_checkpoint(spec, path, /*version=*/1);
  std::remove(path.c_str());

  // Full fanout: sampling degenerates to the whole adjacency in CSR order,
  // so the served forward runs the trainer's exact per-row float program.
  ServeConfig cfg;
  cfg.num_workers = 1;
  cfg.max_batch = 4;
  const int fanout = full_fanout(dataset);
  cfg.fanouts = {fanout, fanout};
  InferenceServer server(dataset, cfg);
  server.publish(snapshot);
  server.start();
  for (vid_t v = 0; v < dataset.num_vertices(); v += 17) {
    const InferResult result = server.infer_sync(v);
    ASSERT_EQ(result.logits.size(), static_cast<std::size_t>(dataset.num_classes));
    for (std::size_t j = 0; j < result.logits.size(); ++j)
      EXPECT_EQ(result.logits[j], train_logits.at(static_cast<std::size_t>(v), j))
          << "vertex " << v << " class " << j;
  }
  server.stop();
}

TEST(RgcnServing, PublishValidatesRelationCountAndEmbedForward) {
  const HeteroDataset hetero = make_hetero();
  const Dataset dataset = hetero_to_dataset(hetero);
  ModelSpec spec;
  spec.kind = ModelKind::kRgcn;
  spec.feature_dim = dataset.feature_dim();
  spec.hidden_dim = 8;
  spec.num_classes = dataset.num_classes;
  spec.num_layers = 2;
  spec.num_relations = dataset.num_edge_types + 1;  // mismatch

  InferenceServer server(dataset, small_config());
  EXPECT_THROW(server.publish(ModelSnapshot::random(spec, 1, 1)), std::invalid_argument);

  spec.num_relations = dataset.num_edge_types;
  ServeConfig embed = small_config();
  embed.embed_forward = true;
  InferenceServer embed_server(dataset, embed);
  EXPECT_THROW(embed_server.publish(ModelSnapshot::random(spec, 1, 1)), std::invalid_argument);
}

}  // namespace
}  // namespace distgnn
