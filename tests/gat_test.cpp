#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "kernels/aggregate.hpp"
#include "nn/gat_inference.hpp"
#include "util/rng.hpp"

namespace distgnn {
namespace {

DenseMatrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  DenseMatrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.uniform(-1.0f, 1.0f);
  return m;
}

TEST(Gat, AttentionIsAProbabilityDistributionPerVertex) {
  const EdgeList el = generate_rmat({.num_vertices = 128, .num_edges = 1024, .seed = 3});
  const Graph g(el);
  Rng rng(5);
  GatInference gat(8, 6, rng);
  const DenseMatrix H = random_matrix(128, 8, rng);
  DenseMatrix Y(128, 6);
  gat.forward(g, H.cview(), Y.view());

  const CsrMatrix& in_csr = g.in_csr();
  const auto& attention = gat.last_attention();
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const auto eids = in_csr.edge_ids(v);
    if (eids.empty()) continue;
    real_t sum = 0;
    for (const eid_t e : eids) {
      const real_t a = attention[static_cast<std::size_t>(e)];
      EXPECT_GE(a, 0.0f);
      EXPECT_LE(a, 1.0f);
      sum += a;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4f) << "vertex " << v;
  }
}

TEST(Gat, IsolatedVerticesOutputZero) {
  EdgeList el;
  el.num_vertices = 3;
  el.add(0, 1);  // vertex 2 isolated
  const Graph g(el);
  Rng rng(7);
  GatInference gat(4, 4, rng);
  const DenseMatrix H = random_matrix(3, 4, rng);
  DenseMatrix Y(3, 4, 99.0f);
  gat.forward(g, H.cview(), Y.view());
  for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(Y.at(2, j), 0.0f);
}

TEST(Gat, SingleNeighborGetsFullAttention) {
  EdgeList el;
  el.num_vertices = 2;
  el.add(0, 1);
  const Graph g(el);
  Rng rng(9);
  GatInference gat(4, 4, rng);
  const DenseMatrix H = random_matrix(2, 4, rng);
  DenseMatrix Y(2, 4);
  gat.forward(g, H.cview(), Y.view());
  EXPECT_NEAR(gat.last_attention()[0], 1.0f, 1e-6f);
}

TEST(Gat, MatchesApMulAggregationOnBroadcastAttention) {
  // Cross-check: materialize α as |E| x d edge features and push it through
  // the AP's (fV, fE, mul, sum) path — the outputs must agree. This is the
  // DGL message-passing formulation of GAT's weighted aggregation.
  const EdgeList el = generate_rmat({.num_vertices = 200, .num_edges = 1600, .seed = 11});
  const Graph g(el);
  Rng rng(13);
  const std::size_t d = 5;
  GatInference gat(7, d, rng);
  const DenseMatrix H = random_matrix(200, 7, rng);
  DenseMatrix Y(200, d);
  gat.forward(g, H.cview(), Y.view());

  // Rebuild z = H W and broadcast the attention over the feature width.
  DenseMatrix z(200, d);
  {
    DenseMatrix w = gat.weight();
    for (std::size_t v = 0; v < 200; ++v)
      for (std::size_t j = 0; j < d; ++j) {
        real_t acc = 0;
        for (std::size_t k = 0; k < 7; ++k) acc += H.at(v, k) * w.at(k, j);
        z.at(v, j) = acc;
      }
  }
  DenseMatrix fE(el.edges.size(), d);
  for (std::size_t e = 0; e < el.edges.size(); ++e)
    for (std::size_t j = 0; j < d; ++j) fE.at(e, j) = gat.last_attention()[e];

  DenseMatrix expected(200, d, 0);
  ApConfig cfg;
  cfg.binary = BinaryOp::kMul;
  cfg.reduce = ReduceOp::kSum;
  cfg.num_blocks = 4;
  aggregate(g.in_csr(), z.cview(), fE.cview(), expected.view(), cfg);

  for (std::size_t i = 0; i < Y.size(); ++i)
    ASSERT_NEAR(Y.data()[i], expected.data()[i], 2e-4f) << "flat " << i;
}

TEST(Gat, RejectsBadShapes) {
  EdgeList el;
  el.num_vertices = 4;
  el.add(0, 1);
  const Graph g(el);
  Rng rng(1);
  GatInference gat(3, 2, rng);
  DenseMatrix H(4, 3), Y_bad(3, 2);
  EXPECT_THROW(gat.forward(g, H.cview(), Y_bad.view()), std::invalid_argument);
}

}  // namespace
}  // namespace distgnn
