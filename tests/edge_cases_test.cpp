// Edge cases and failure injection across the stack: degenerate graphs,
// pathological partition shapes, bad configurations, and cross-thread-count
// determinism of the kernels.
#include <gtest/gtest.h>

#include "util/parallel.hpp"

#include "core/distributed_trainer.hpp"
#include "core/single_socket_trainer.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "kernels/aggregate.hpp"
#include "partition/halo_plan.hpp"
#include "partition/libra.hpp"
#include "partition/partition_setup.hpp"
#include "util/rng.hpp"

namespace distgnn {
namespace {

TEST(EdgeCase, EmptyGraphAggregates) {
  EdgeList el;
  el.num_vertices = 8;  // no edges at all
  const CsrMatrix csr = CsrMatrix::from_coo(el);
  DenseMatrix fV(8, 4, 1.0f), fO(8, 4, 0.0f);
  ApConfig cfg;
  cfg.num_blocks = 4;
  aggregate(csr, fV.cview(), {}, fO.view(), cfg);
  for (std::size_t i = 0; i < fO.size(); ++i) EXPECT_EQ(fO.data()[i], 0.0f);
}

TEST(EdgeCase, SingleVertexGraph) {
  EdgeList el;
  el.num_vertices = 1;
  const Graph g(el);
  EXPECT_EQ(g.in_csr().num_rows(), 1);
  EXPECT_EQ(g.in_csr().degree(0), 0);
  EXPECT_EQ(g.avg_degree(), 0.0);
}

TEST(EdgeCase, SelfLoopsAggregateToThemselves) {
  EdgeList el;
  el.num_vertices = 3;
  el.add(1, 1);  // self loop
  el.add(0, 1);
  const CsrMatrix csr = CsrMatrix::from_coo(el);
  DenseMatrix fV(3, 2);
  fV.at(0, 0) = 1;
  fV.at(1, 0) = 10;
  DenseMatrix fO(3, 2, 0);
  ApConfig cfg;
  aggregate(csr, fV.cview(), {}, fO.view(), cfg);
  EXPECT_FLOAT_EQ(fO.at(1, 0), 11.0f);  // self + neighbour
}

TEST(EdgeCase, StarGraphHubAggregation) {
  // One hub with 999 in-edges: stresses the power-law path of dynamic
  // scheduling (one row dominating the work).
  EdgeList el;
  el.num_vertices = 1000;
  for (vid_t u = 1; u < 1000; ++u) el.add(u, 0);
  const CsrMatrix csr = CsrMatrix::from_coo(el);
  DenseMatrix fV(1000, 3, 1.0f), fO(1000, 3, 0.0f);
  ApConfig cfg;
  cfg.num_blocks = 8;
  aggregate(csr, fV.cview(), {}, fO.view(), cfg);
  EXPECT_FLOAT_EQ(fO.at(0, 0), 999.0f);
  EXPECT_FLOAT_EQ(fO.at(1, 0), 0.0f);
}

TEST(EdgeCase, AggregationDeterministicAcrossThreadCounts) {
  // Sum order within a row is fixed by the CSR, so results are bitwise
  // identical regardless of the OpenMP thread count.
  const EdgeList el = generate_rmat({.num_vertices = 512, .num_edges = 4096, .seed = 3});
  const CsrMatrix csr = CsrMatrix::from_coo(el);
  Rng rng(4);
  DenseMatrix fV(512, 9);
  for (std::size_t i = 0; i < fV.size(); ++i) fV.data()[i] = rng.uniform(-1, 1);

  const int saved = par::max_threads();
  DenseMatrix ref(512, 9, 0);
  ApConfig cfg;
  cfg.num_blocks = 4;
  par::set_num_threads(1);
  aggregate(csr, fV.cview(), {}, ref.view(), cfg);
  for (const int threads : {2, 4, 8}) {
    par::set_num_threads(threads);
    DenseMatrix out(512, 9, 0);
    aggregate(csr, fV.cview(), {}, out.view(), cfg);
    for (std::size_t i = 0; i < out.size(); ++i)
      ASSERT_EQ(out.data()[i], ref.data()[i]) << threads << " threads, flat " << i;
  }
  par::set_num_threads(saved);
}

TEST(EdgeCase, PartitionWithMorePartsThanEdges) {
  EdgeList el;
  el.num_vertices = 4;
  el.add(0, 1);
  el.add(2, 3);
  const EdgePartition ep = partition_libra(el, 8);
  const PartitionedGraph pg = build_partitions(el, ep, 1);
  EXPECT_EQ(pg.num_parts, 8);
  eid_t total = 0;
  for (const auto& lp : pg.parts) total += lp.edges.num_edges();
  EXPECT_EQ(total, 2);
  // Empty partitions get empty halo plans, not crashes.
  const auto plans = build_halo_plans(pg, 3);
  EXPECT_EQ(plans.size(), 8u);
}

TEST(EdgeCase, DistributedTrainingWithEmptyPartition) {
  // 8 partitions of a 64-vertex graph: some ranks may own almost nothing;
  // the collectives must still line up.
  LearnableSbmParams p;
  p.num_vertices = 64;
  p.num_classes = 2;
  p.avg_degree = 4;
  p.feature_dim = 4;
  const Dataset ds = make_learnable_sbm(p);
  const PartitionedGraph pg =
      build_partitions(ds.graph.coo(), partition_libra(ds.graph.coo(), 8), 1);
  TrainConfig cfg;
  cfg.num_layers = 2;
  cfg.hidden_dim = 4;
  cfg.epochs = 3;
  cfg.algorithm = Algorithm::kCd0;
  cfg.threads_per_rank = 1;
  const DistTrainResult result = train_distributed(ds, pg, cfg);
  EXPECT_EQ(result.epochs.size(), 3u);
  for (const auto& rec : result.epochs) EXPECT_TRUE(std::isfinite(rec.loss));
}

TEST(EdgeCase, DelayLargerThanEpochCount) {
  // r = 50 with only 5 epochs: no message ever matures; training must still
  // run (pure-local behaviour) and leave the mailboxes consistent.
  LearnableSbmParams p;
  p.num_vertices = 256;
  p.num_classes = 2;
  p.feature_dim = 8;
  const Dataset ds = make_learnable_sbm(p);
  const PartitionedGraph pg =
      build_partitions(ds.graph.coo(), partition_libra(ds.graph.coo(), 2), 1);
  TrainConfig cfg;
  cfg.num_layers = 2;
  cfg.hidden_dim = 8;
  cfg.epochs = 5;
  cfg.algorithm = Algorithm::kCdR;
  cfg.delay = 50;
  cfg.threads_per_rank = 1;
  const DistTrainResult result = train_distributed(ds, pg, cfg);
  EXPECT_TRUE(std::isfinite(result.epochs.back().loss));
}

TEST(EdgeCase, OneLayerModel) {
  LearnableSbmParams p;
  p.num_vertices = 256;
  p.num_classes = 4;
  p.feature_dim = 8;
  const Dataset ds = make_learnable_sbm(p);
  TrainConfig cfg;
  cfg.num_layers = 1;  // logits straight from the aggregation
  cfg.hidden_dim = 8;
  SingleSocketTrainer trainer(ds, cfg);
  const double first = trainer.train_epoch().loss;
  for (int e = 0; e < 20; ++e) trainer.train_epoch();
  EXPECT_LT(trainer.train_epoch().loss, first);
}

TEST(EdgeCase, ZeroLayerModelRejected) {
  EXPECT_THROW(SageModel(4, 4, 2, 0, 1), std::invalid_argument);
}

TEST(EdgeCase, DatasetScaleFloorsAtMinimumSize) {
  const Dataset ds = make_dataset("am-sim", 1e-9);
  EXPECT_GE(ds.num_vertices(), 64);
}

TEST(EdgeCase, BadScaleRejected) {
  EXPECT_THROW(make_dataset("am-sim", 0.0), std::invalid_argument);
  EXPECT_THROW(make_dataset("am-sim", -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace distgnn
