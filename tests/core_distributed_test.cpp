#include <gtest/gtest.h>

#include <cmath>

#include "core/distributed_trainer.hpp"
#include "core/single_socket_trainer.hpp"
#include "graph/datasets.hpp"
#include "partition/libra.hpp"
#include "partition/partition_setup.hpp"

namespace distgnn {
namespace {

Dataset learnable(vid_t n = 1024, std::uint64_t seed = 31, float noise = 0.8f) {
  LearnableSbmParams p;
  p.num_vertices = n;
  p.num_classes = 4;
  p.avg_degree = 12;
  p.feature_dim = 16;
  p.feature_noise = noise;
  p.seed = seed;
  return make_learnable_sbm(p);
}

TrainConfig dist_config(Algorithm alg, int epochs = 10) {
  TrainConfig cfg;
  cfg.num_layers = 2;
  cfg.hidden_dim = 32;
  cfg.lr = 0.2;
  cfg.epochs = epochs;
  cfg.algorithm = alg;
  cfg.delay = 3;
  cfg.threads_per_rank = 2;
  return cfg;
}

PartitionedGraph partitioned(const Dataset& ds, part_t parts) {
  return build_partitions(ds.graph.coo(), partition_libra(ds.graph.coo(), parts), 5);
}

TEST(Distributed, Cd0FirstEpochForwardMatchesSingleSocketExactly) {
  // cd-0 synchronizes complete neighbourhoods, so the *forward* semantics —
  // and hence the epoch-0 loss from identical initial weights — must match
  // the single socket to floating-point reassociation tolerance. Later
  // epochs drift slightly: the paper's scheme allreduces weight gradients
  // but never communicates feature gradients across partitions.
  const Dataset ds = learnable(1024, 33);
  TrainConfig cfg = dist_config(Algorithm::kCd0, 6);

  SingleSocketTrainer single(ds, cfg);
  std::vector<double> single_losses;
  for (int e = 0; e < cfg.epochs; ++e) single_losses.push_back(single.train_epoch().loss);

  const PartitionedGraph pg = partitioned(ds, 4);
  const DistTrainResult dist = train_distributed(ds, pg, cfg);
  ASSERT_EQ(dist.epochs.size(), single_losses.size());
  EXPECT_NEAR(dist.epochs[0].loss, single_losses[0], 5e-4 * std::max(1.0, single_losses[0]));
  // The trajectory still tracks the single socket direction: strictly
  // decreasing and ending in the same ballpark.
  EXPECT_LT(dist.epochs.back().loss, dist.epochs.front().loss);
  EXPECT_NEAR(dist.epochs.back().loss, single_losses.back(),
              0.5 * std::max(1.0, single_losses.back()));
}

class AlgorithmTest : public ::testing::TestWithParam<std::tuple<Algorithm, part_t>> {};

TEST_P(AlgorithmTest, TrainsAndConverges) {
  const auto [alg, parts] = GetParam();
  const Dataset ds = learnable(1024, 35, 0.6f);
  const TrainConfig cfg = dist_config(alg, 30);
  const PartitionedGraph pg = partitioned(ds, parts);
  const DistTrainResult result = train_distributed(ds, pg, cfg);

  EXPECT_LT(result.epochs.back().loss, 0.6 * result.epochs.front().loss);
  EXPECT_GT(result.test_accuracy, 0.6);  // chance 0.25
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AlgorithmTest,
    ::testing::Combine(::testing::Values(Algorithm::k0c, Algorithm::kCd0, Algorithm::kCdR),
                       ::testing::Values(part_t{2}, part_t{4})),
    [](const auto& info) {
      std::string name = to_string(std::get<0>(info.param));
      for (auto& c : name)
        if (c == '-') c = '_';
      return name + "_parts" + std::to_string(std::get<1>(info.param));
    });

TEST(Distributed, ZeroCommunicationFor0c) {
  const Dataset ds = learnable(512, 37);
  const PartitionedGraph pg = partitioned(ds, 4);
  TrainConfig cfg = dist_config(Algorithm::k0c, 3);
  const DistTrainResult result = train_distributed(ds, pg, cfg);
  // Gradient allreduce still happens, but no halo bytes move during training
  // (only the final exact evaluation communicates).
  EXPECT_GT(result.allreduce_bytes, 0u);
}

TEST(Distributed, CdrSendsFewerHaloBytesPerEpochThanCd0) {
  const Dataset ds = learnable(1024, 39);
  const PartitionedGraph pg = partitioned(ds, 4);
  TrainConfig cfg = dist_config(Algorithm::kCd0, 12);
  const auto cd0 = train_distributed(ds, pg, cfg);
  cfg.algorithm = Algorithm::kCdR;
  cfg.delay = 4;
  const auto cdr = train_distributed(ds, pg, cfg);
  // cd-r touches 1/r of the split trees per epoch.
  EXPECT_LT(cdr.total_bytes_sent, cd0.total_bytes_sent);
}

TEST(Distributed, AccuracyWithinFewPercentAcrossAlgorithms) {
  // The Table 5 property: cd-0 / cd-r / 0c all land within ~1% of each other
  // (we allow a little more at this scale).
  const Dataset ds = learnable(2048, 41, 0.5f);
  const PartitionedGraph pg = partitioned(ds, 4);
  TrainConfig cfg = dist_config(Algorithm::kCd0, 40);

  const double acc_cd0 = train_distributed(ds, pg, cfg).test_accuracy;
  cfg.algorithm = Algorithm::k0c;
  const double acc_0c = train_distributed(ds, pg, cfg).test_accuracy;
  cfg.algorithm = Algorithm::kCdR;
  cfg.delay = 5;
  const double acc_cdr = train_distributed(ds, pg, cfg).test_accuracy;

  EXPECT_GT(acc_cd0, 0.75);
  EXPECT_NEAR(acc_0c, acc_cd0, 0.08);
  EXPECT_NEAR(acc_cdr, acc_cd0, 0.08);
}

TEST(Distributed, LiteralStalenessPolicyAlsoConverges) {
  const Dataset ds = learnable(1024, 43, 0.6f);
  const PartitionedGraph pg = partitioned(ds, 4);
  TrainConfig cfg = dist_config(Algorithm::kCdR, 30);
  cfg.staleness = StalenessPolicy::kLiteral;
  const DistTrainResult result = train_distributed(ds, pg, cfg);
  EXPECT_LT(result.epochs.back().loss, 0.7 * result.epochs.front().loss);
  EXPECT_GT(result.test_accuracy, 0.5);
}

TEST(Distributed, SinglePartitionMatchesSingleSocket) {
  const Dataset ds = learnable(512, 45);
  TrainConfig cfg = dist_config(Algorithm::kCd0, 4);
  SingleSocketTrainer single(ds, cfg);
  std::vector<double> expect;
  for (int e = 0; e < cfg.epochs; ++e) expect.push_back(single.train_epoch().loss);

  const PartitionedGraph pg = partitioned(ds, 1);
  const DistTrainResult result = train_distributed(ds, pg, cfg);
  for (std::size_t e = 0; e < expect.size(); ++e)
    EXPECT_NEAR(result.epochs[e].loss, expect[e], 1e-3 * std::max(1.0, std::abs(expect[e])));
}

TEST(Distributed, EpochRecordsArePopulated) {
  const Dataset ds = learnable(512, 47);
  const PartitionedGraph pg = partitioned(ds, 2);
  const DistTrainResult result = train_distributed(ds, pg, dist_config(Algorithm::kCd0, 5));
  ASSERT_EQ(result.epochs.size(), 5u);
  for (const auto& rec : result.epochs) {
    EXPECT_GT(rec.total_seconds, 0.0);
    EXPECT_GT(rec.local_agg_seconds, 0.0);
    EXPECT_GE(rec.remote_agg_seconds, 0.0);
    EXPECT_TRUE(std::isfinite(rec.loss));
  }
  EXPECT_GT(result.mean_epoch_seconds(1), 0.0);
  EXPECT_GT(result.mean_local_agg_seconds(1), 0.0);
}

class HaloPrecisionTest : public ::testing::TestWithParam<HaloPrecision> {};

TEST_P(HaloPrecisionTest, LowPrecisionHalosStillConverge) {
  // §7 future work: FP16/BF16 halo payloads halve communication volume; the
  // training must still converge to nearly the same accuracy.
  const Dataset ds = learnable(1024, 51, 0.6f);
  const PartitionedGraph pg = partitioned(ds, 4);
  TrainConfig cfg = dist_config(Algorithm::kCd0, 30);
  cfg.halo_precision = GetParam();
  const DistTrainResult result = train_distributed(ds, pg, cfg);
  EXPECT_LT(result.epochs.back().loss, 0.6 * result.epochs.front().loss);
  EXPECT_GT(result.test_accuracy, 0.6);
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, HaloPrecisionTest,
                         ::testing::Values(HaloPrecision::kFp32, HaloPrecision::kBf16,
                                           HaloPrecision::kFp16),
                         [](const auto& info) { return to_string(info.param); });

TEST(Distributed, Bf16HalvesHaloBytes) {
  const Dataset ds = learnable(1024, 53);
  const PartitionedGraph pg = partitioned(ds, 4);
  TrainConfig cfg = dist_config(Algorithm::kCd0, 4);
  const auto fp32 = train_distributed(ds, pg, cfg);
  cfg.halo_precision = HaloPrecision::kBf16;
  const auto bf16 = train_distributed(ds, pg, cfg);
  // Halo traffic halves; the (fp32) gradient allreduce is unchanged.
  EXPECT_NEAR(static_cast<double>(bf16.total_bytes_sent),
              0.5 * static_cast<double>(fp32.total_bytes_sent),
              0.1 * static_cast<double>(fp32.total_bytes_sent));
  EXPECT_EQ(bf16.allreduce_bytes, fp32.allreduce_bytes);
}

TEST(DistTrainResult, MeanSkipsWarmupEpochs) {
  DistTrainResult r;
  r.epochs = {{0, 10.0, 0, 0}, {0, 2.0, 0, 0}, {0, 2.0, 0, 0}};
  EXPECT_NEAR(r.mean_epoch_seconds(1), 2.0, 1e-12);
  EXPECT_NEAR(r.mean_epoch_seconds(0), 14.0 / 3.0, 1e-12);
  EXPECT_EQ(r.mean_epoch_seconds(5), 0.0);
}

}  // namespace
}  // namespace distgnn
