#!/usr/bin/env python3
"""Tests for tools/lint_concurrency.py against the fixture trees.

Each fixture under tests/lint_fixtures/ is a miniature repo root (src/,
tests/ subtrees). pass_* fixtures must lint clean; fail_* fixtures must
produce exactly the finding their name advertises. The suite also lints the
real repository, so a rule regression and a tree regression both fail here
before CI's standalone lint step does.

Run directly (python3 tests/lint_test.py) or via ctest (lint_test).
"""

from __future__ import annotations

import subprocess
import sys
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
LINT = REPO_ROOT / "tools" / "lint_concurrency.py"
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"


def run_lint(root: Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINT), "--root", str(root)],
        capture_output=True,
        text=True,
        check=False,
    )


class LintFixtureTest(unittest.TestCase):
    def assert_clean(self, fixture: str) -> None:
        result = run_lint(FIXTURES / fixture)
        self.assertEqual(
            result.returncode, 0,
            f"{fixture} should lint clean; output:\n{result.stdout}{result.stderr}",
        )

    def assert_finding(self, fixture: str, rule: str, needle: str) -> None:
        result = run_lint(FIXTURES / fixture)
        self.assertEqual(
            result.returncode, 1,
            f"{fixture} should fail; output:\n{result.stdout}{result.stderr}",
        )
        self.assertIn(f"[{rule}]", result.stdout, f"expected a [{rule}] finding")
        self.assertIn(needle, result.stdout, f"finding should point at {needle}")

    # ---------------------------------------------------------------- pass cases

    def test_clean_tree_passes(self):
        self.assert_clean("pass_clean")

    def test_sync_hpp_is_allowlisted_for_raw_primitives(self):
        # pass_clean contains a std::mutex inside src/util/sync.hpp; a clean
        # run proves the allowlist keys on the path, not just on luck.
        result = run_lint(FIXTURES / "pass_clean")
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_callback_invoked_outside_guard_passes(self):
        self.assert_clean("pass_callback_outside_lock")

    def test_allowlisted_test_may_sleep(self):
        self.assert_clean("pass_sleep_allowlisted")

    # ---------------------------------------------------------------- fail cases

    def test_raw_mutex_fails(self):
        self.assert_finding("fail_raw_mutex", "raw-primitive", "src/widget.cpp")

    def test_relaxed_order_fails(self):
        self.assert_finding("fail_relaxed_order", "relaxed-order", "src/counter.cpp")

    def test_callback_under_lock_fails(self):
        self.assert_finding(
            "fail_callback_under_lock", "callback-under-lock", "src/obs/health.cpp"
        )

    def test_sleep_in_unlisted_test_fails(self):
        self.assert_finding("fail_sleep_in_test", "sleep-in-test", "tests/widget_test.cpp")

    # ------------------------------------------------------------------ real tree

    def test_repository_lints_clean(self):
        result = run_lint(REPO_ROOT)
        self.assertEqual(
            result.returncode, 0,
            f"repository has lint findings:\n{result.stdout}{result.stderr}",
        )


if __name__ == "__main__":
    unittest.main(verbosity=2)
