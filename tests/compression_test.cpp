#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "comm/compression.hpp"
#include "util/rng.hpp"

namespace distgnn {
namespace {

TEST(Bf16, RoundTripsExactlyRepresentableValues) {
  for (const float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -0.25f, 1024.0f}) {
    EXPECT_EQ(bf16_to_float(float_to_bf16(v)), v) << v;
  }
}

TEST(Bf16, RelativeErrorBounded) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const float v = rng.uniform(-100.0f, 100.0f);
    const float back = bf16_to_float(float_to_bf16(v));
    // bf16 has 8 mantissa bits: relative error < 2^-8.
    EXPECT_LE(std::abs(back - v), std::abs(v) * (1.0f / 256.0f) + 1e-30f) << v;
  }
}

TEST(Bf16, PreservesSignAndInfinity) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(bf16_to_float(float_to_bf16(inf)), inf);
  EXPECT_EQ(bf16_to_float(float_to_bf16(-inf)), -inf);
  EXPECT_EQ(std::signbit(bf16_to_float(float_to_bf16(-0.0f))), true);
}

TEST(Fp16, RoundTripsExactlyRepresentableValues) {
  for (const float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -0.25f, 1024.0f, 65504.0f}) {
    EXPECT_EQ(fp16_to_float(float_to_fp16(v)), v) << v;
  }
}

TEST(Fp16, RelativeErrorBounded) {
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const float v = rng.uniform(-1000.0f, 1000.0f);
    const float back = fp16_to_float(float_to_fp16(v));
    // fp16 has 10 mantissa bits: relative error < 2^-10 for normal values.
    EXPECT_LE(std::abs(back - v), std::abs(v) * (1.0f / 1024.0f) + 1e-6f) << v;
  }
}

TEST(Fp16, OverflowSaturatesToInfinity) {
  EXPECT_EQ(fp16_to_float(float_to_fp16(1e6f)), std::numeric_limits<float>::infinity());
  EXPECT_EQ(fp16_to_float(float_to_fp16(-1e6f)), -std::numeric_limits<float>::infinity());
}

TEST(Fp16, SubnormalsRoundTripApproximately) {
  // Smallest normal fp16 is 2^-14 ~ 6.1e-5; below that we are subnormal.
  for (const float v : {3e-5f, 1e-5f, 6e-8f}) {
    const float back = fp16_to_float(float_to_fp16(v));
    EXPECT_NEAR(back, v, 6e-8f) << v;
  }
}

class HaloCodecTest : public ::testing::TestWithParam<std::tuple<HaloPrecision, int>> {};

TEST_P(HaloCodecTest, EncodeDecodeRoundTrip) {
  const auto [precision, count] = GetParam();
  Rng rng(7);
  std::vector<real_t> values(static_cast<std::size_t>(count));
  for (auto& v : values) v = rng.uniform(-10.0f, 10.0f);

  const auto packed = encode_halo(values, precision);
  const auto back = decode_halo(packed, values.size(), precision);
  ASSERT_EQ(back.size(), values.size());
  const float tol = precision == HaloPrecision::kFp32 ? 0.0f
                    : precision == HaloPrecision::kFp16 ? 0.02f
                                                        : 0.08f;
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_NEAR(back[i], values[i], std::abs(values[i]) * tol + 1e-6f) << i;

  // Wire size halves for 16-bit formats (odd counts round up).
  if (precision == HaloPrecision::kFp32) {
    EXPECT_EQ(packed.size(), values.size());
  } else {
    EXPECT_EQ(packed.size(), (values.size() + 1) / 2);
  }
  EXPECT_EQ(wire_bytes(values.size(), precision), packed.size() * sizeof(real_t));
}

INSTANTIATE_TEST_SUITE_P(
    PrecisionsAndSizes, HaloCodecTest,
    ::testing::Combine(::testing::Values(HaloPrecision::kFp32, HaloPrecision::kBf16,
                                         HaloPrecision::kFp16),
                       ::testing::Values(0, 1, 2, 7, 128, 1001)),
    [](const auto& info) {
      return to_string(std::get<0>(info.param)) + "_n" + std::to_string(std::get<1>(info.param));
    });

TEST(HaloCodec, DecodeValidatesSizes) {
  std::vector<real_t> packed(3);
  EXPECT_THROW(decode_halo(packed, 10, HaloPrecision::kBf16), std::invalid_argument);
  EXPECT_THROW(decode_halo(packed, 4, HaloPrecision::kFp32), std::invalid_argument);
}

}  // namespace
}  // namespace distgnn
