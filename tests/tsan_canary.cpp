// Deliberately racy program that validates the ThreadSanitizer toolchain.
//
// CI's tsan job runs this binary and *fails the build if TSan stays quiet*:
// a race-clean run of the real test suite only means something if the same
// toolchain provably reports a textbook data race. Two threads increment a
// plain int with no synchronization — the canonical TSan demo — and a pair
// of unsynchronized writes to a shared vector slot for good measure.
//
// This file is compiled but intentionally NOT registered with ctest (the
// test glob only matches *_test.cpp); running it outside a TSan build is
// merely a pointless, possibly-lossy counter increment.

#include <cstdio>
#include <thread>
#include <vector>

namespace {

int g_unguarded_counter = 0;  // racy on purpose: no atomic, no mutex

void hammer(int rounds, std::vector<int>& shared) {
  for (int i = 0; i < rounds; ++i) {
    ++g_unguarded_counter;  // racy read-modify-write
    shared[0] = i;          // racy write-write
  }
}

}  // namespace

int main() {
  std::vector<int> shared(1, 0);
  std::thread a(hammer, 100000, std::ref(shared));
  std::thread b(hammer, 100000, std::ref(shared));
  a.join();
  b.join();
  std::printf("canary done: counter=%d slot=%d\n", g_unguarded_counter, shared[0]);
  return 0;
}
