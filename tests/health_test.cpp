// Health & SLO engine determinism tests. Every rule is driven through a
// synthetic ScrapeSource with scripted counter/histogram sequences and a
// ManualClock — tick() by hand, no background thread, no sleeps — so the
// exact fire/resolve transition instants are pinned, not raced. The final
// group exercises the real tower: a ModelRegistry over a ComposedTier
// (R=2 x P=2) plus a DeltaPublisher, checking burn-rate, wedged-barrier and
// epoch-lag alerts end to end.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/datasets.hpp"
#include "obs/expose.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/scrape.hpp"
#include "obs/timeseries.hpp"
#include "partition/libra.hpp"
#include "serve/composed_tier.hpp"
#include "serve/inference_server.hpp"
#include "serve/model_registry.hpp"
#include "serve/model_snapshot.hpp"
#include "stream/delta_publisher.hpp"
#include "stream/graph_delta.hpp"

namespace distgnn {
namespace {

using namespace distgnn::serve;

// ---------------------------------------------------------------------------
// Scripted scrape source: the test mutates the cumulative counters and the
// tenant-0 request histogram between ticks.

void observe_n(obs::HistogramData& h, double seconds, std::uint64_t n) {
  h.buckets[static_cast<std::size_t>(obs::latency_bucket(seconds))] += n;
  h.count += n;
  h.sum_seconds += seconds * static_cast<double>(n);
}

struct ScriptedSource : obs::ScrapeSource {
  obs::HistogramData tenant_hist;  // cumulative, like a real scrape
  double submitted = 0;
  double completed = 0;
  double shed = 0;

  void scrape(obs::MetricsSnapshot& out) const override {
    out.add_histogram("distgnn_scripted_request_seconds", {{"tenant", "0"}}, tenant_hist);
    out.add_counter("distgnn_scripted_submitted_total", {}, submitted);
    out.add_counter("distgnn_scripted_completed_total", {}, completed);
    out.add_counter("distgnn_scripted_shed_total", {}, shed);
  }
};

std::vector<obs::HealthEvent> events_of(const std::vector<obs::HealthEvent>& events,
                                        obs::HealthRule rule) {
  std::vector<obs::HealthEvent> out;
  for (const obs::HealthEvent& e : events)
    if (e.rule == rule) out.push_back(e);
  return out;
}

// ---------------------------------------------------------------------------
// Burn rate: SRE dual-window — fires only when both windows overspend, with
// the exact transition instants pinned by the manual clock.

TEST(HealthBurnRate, FiresAndResolvesAtExactTicks) {
  auto clock = std::make_shared<obs::ManualClock>(0.0);
  obs::HealthMonitor monitor(obs::HealthConfig{}, clock);
  ScriptedSource source;
  monitor.add_source("scripted", source);
  // Deadline on the log2 grid (bucket 10 upper edge = 1.024ms) so the
  // bucket-resolution deadline count is exact.
  monitor.set_slo(/*tenant=*/0, /*deadline_seconds=*/obs::bucket_upper_seconds(10),
                  /*target=*/0.999);

  std::vector<obs::HealthEvent> seen;
  monitor.on_event([&](const obs::HealthEvent& e) { seen.push_back(e); });

  monitor.tick();  // t=0: baseline sample, zero traffic, nothing can fire
  EXPECT_TRUE(monitor.active().empty());

  // 100 good requests (well under deadline): burn stays zero.
  observe_n(source.tenant_hist, 1e-4, 100);
  source.submitted = source.completed = 100;
  clock->set(0.25);
  monitor.tick();
  EXPECT_TRUE(events_of(monitor.history(), obs::HealthRule::kBurnRate).empty());

  // 32 requests blow the deadline: fast-window bad fraction 32/132 against a
  // 0.1% budget -> burn ~242x, way past the 2x threshold in both windows.
  observe_n(source.tenant_hist, 5e-3, 32);
  source.submitted = source.completed = 132;
  clock->set(0.5);
  monitor.tick();
  {
    const auto burn = events_of(monitor.history(), obs::HealthRule::kBurnRate);
    ASSERT_EQ(burn.size(), 1u);
    EXPECT_TRUE(burn[0].firing);
    EXPECT_EQ(burn[0].subject, "scripted");
    EXPECT_EQ(burn[0].tenant, 0);
    EXPECT_EQ(burn[0].severity, obs::Severity::kCritical);
    EXPECT_DOUBLE_EQ(burn[0].t, 0.5);
    EXPECT_GT(burn[0].value, 2.0);
    EXPECT_DOUBLE_EQ(burn[0].threshold, 2.0);
  }
  ASSERT_EQ(monitor.active().size(), 1u);

  // Still inside the fast window: the alert stays up, no duplicate event.
  clock->set(1.2);
  monitor.tick();
  EXPECT_EQ(events_of(monitor.history(), obs::HealthRule::kBurnRate).size(), 1u);
  EXPECT_EQ(monitor.active().size(), 1u);

  // Fast window slides past the burst (baseline sample t=1.2, no new bad
  // requests): resolve at exactly t=2.5.
  clock->set(2.5);
  monitor.tick();
  {
    const auto burn = events_of(monitor.history(), obs::HealthRule::kBurnRate);
    ASSERT_EQ(burn.size(), 2u);
    EXPECT_FALSE(burn[1].firing);
    EXPECT_DOUBLE_EQ(burn[1].t, 2.5);
    EXPECT_NE(burn[1].detail.find("resolved"), std::string::npos);
  }
  EXPECT_TRUE(monitor.active().empty());

  // The callback saw the same two transitions, in order.
  const auto cb_burn = events_of(seen, obs::HealthRule::kBurnRate);
  ASSERT_EQ(cb_burn.size(), 2u);
  EXPECT_TRUE(cb_burn[0].firing);
  EXPECT_FALSE(cb_burn[1].firing);
}

TEST(HealthBurnRate, BlipBelowMinRequestsCannotFire) {
  auto clock = std::make_shared<obs::ManualClock>(0.0);
  obs::HealthMonitor monitor(obs::HealthConfig{}, clock);
  ScriptedSource source;
  monitor.add_source("scripted", source);
  monitor.set_slo(0, obs::bucket_upper_seconds(10), 0.999);

  monitor.tick();
  // 8 terrible requests: burn is enormous but the fast window is under
  // burn_min_requests (16) — a blip must not page.
  observe_n(source.tenant_hist, 5e-2, 8);
  clock->set(0.5);
  monitor.tick();
  clock->set(1.0);
  monitor.tick();
  EXPECT_TRUE(monitor.history().empty());
}

// ---------------------------------------------------------------------------
// Stall watchdog: completed counters freeze while work is in flight.

TEST(HealthStall, FiresAfterTimeoutAndResolvesOnAdvance) {
  auto clock = std::make_shared<obs::ManualClock>(0.0);
  obs::HealthMonitor monitor(obs::HealthConfig{}, clock);
  ScriptedSource source;
  monitor.add_source("scripted", source);

  source.submitted = source.completed = 10;
  monitor.tick();  // t=0: drained, primes the watchdog

  source.submitted = 20;  // 10 in flight, completed frozen
  clock->set(0.5);
  monitor.tick();
  EXPECT_TRUE(monitor.active().empty());  // 0.5s < 1.0s timeout

  clock->set(1.2);
  monitor.tick();  // frozen for 1.2s with work in flight -> fire
  {
    const auto stall = events_of(monitor.history(), obs::HealthRule::kStall);
    ASSERT_EQ(stall.size(), 1u);
    EXPECT_TRUE(stall[0].firing);
    EXPECT_EQ(stall[0].severity, obs::Severity::kCritical);
    EXPECT_DOUBLE_EQ(stall[0].t, 1.2);
    EXPECT_GE(stall[0].value, 1.2);
  }

  source.completed = 20;  // the tower drains
  clock->set(1.5);
  monitor.tick();
  const auto stall = events_of(monitor.history(), obs::HealthRule::kStall);
  ASSERT_EQ(stall.size(), 2u);
  EXPECT_FALSE(stall[1].firing);
  EXPECT_TRUE(monitor.active().empty());
}

TEST(HealthStall, DrainedTowerNeverFires) {
  auto clock = std::make_shared<obs::ManualClock>(0.0);
  obs::HealthMonitor monitor(obs::HealthConfig{}, clock);
  ScriptedSource source;
  monitor.add_source("scripted", source);
  source.submitted = 50;
  source.completed = 40;
  source.shed = 10;  // submitted - completed - shed == 0: nothing in flight
  for (double t = 0; t < 5.0; t += 0.5) {
    clock->set(t);
    monitor.tick();
  }
  EXPECT_TRUE(events_of(monitor.history(), obs::HealthRule::kStall).empty());
}

// ---------------------------------------------------------------------------
// Epoch lag: sealed head runs ahead of the served epoch past the grace
// period.

TEST(HealthEpochLag, GracePeriodThenFireThenResolve) {
  auto clock = std::make_shared<obs::ManualClock>(0.0);
  obs::HealthMonitor monitor(obs::HealthConfig{}, clock);
  std::uint64_t served = 5, sealed = 5;
  monitor.add_epoch_probe(
      "stream", [&] { return served; }, [&] { return sealed; });

  monitor.tick();  // lag 0
  sealed = 9;      // lag 4 > max_epoch_lag (2): grace starts now
  clock->set(0.1);
  monitor.tick();
  EXPECT_TRUE(monitor.active().empty());  // inside the 0.5s grace

  clock->set(0.7);
  monitor.tick();  // lagged for 0.6s >= grace -> fire
  {
    const auto lag = events_of(monitor.history(), obs::HealthRule::kEpochLag);
    ASSERT_EQ(lag.size(), 1u);
    EXPECT_TRUE(lag[0].firing);
    EXPECT_EQ(lag[0].subject, "stream");
    EXPECT_DOUBLE_EQ(lag[0].value, 4.0);
    EXPECT_DOUBLE_EQ(lag[0].threshold, 2.0);
    EXPECT_DOUBLE_EQ(lag[0].t, 0.7);
  }

  served = 9;  // the publisher catches up
  clock->set(0.8);
  monitor.tick();
  const auto lag = events_of(monitor.history(), obs::HealthRule::kEpochLag);
  ASSERT_EQ(lag.size(), 2u);
  EXPECT_FALSE(lag[1].firing);

  // A lag that recovers within the grace period never fires.
  sealed = 13;
  clock->set(1.0);
  monitor.tick();
  served = 13;
  clock->set(1.2);
  monitor.tick();
  clock->set(2.0);
  monitor.tick();
  EXPECT_EQ(events_of(monitor.history(), obs::HealthRule::kEpochLag).size(), 2u);
}

// ---------------------------------------------------------------------------
// Barrier watchdog + queue saturation probes.

TEST(HealthBarrier, StuckPastTimeoutFiresCritical) {
  auto clock = std::make_shared<obs::ManualClock>(0.0);
  obs::HealthMonitor monitor(obs::HealthConfig{}, clock);
  bool closed = false;
  monitor.add_barrier_probe("tier", [&] { return closed; });

  monitor.tick();
  closed = true;
  clock->set(0.1);
  monitor.tick();  // closed_for starts counting here
  EXPECT_TRUE(monitor.active().empty());

  clock->set(0.7);
  monitor.tick();  // closed for 0.6s >= 0.5s -> fire
  {
    const auto stuck = events_of(monitor.history(), obs::HealthRule::kBarrierStuck);
    ASSERT_EQ(stuck.size(), 1u);
    EXPECT_TRUE(stuck[0].firing);
    EXPECT_EQ(stuck[0].severity, obs::Severity::kCritical);
  }

  closed = false;
  clock->set(0.8);
  monitor.tick();
  EXPECT_TRUE(monitor.active().empty());
  ASSERT_EQ(events_of(monitor.history(), obs::HealthRule::kBarrierStuck).size(), 2u);

  // A normal (short) publish barrier never trips the watchdog.
  closed = true;
  clock->set(1.0);
  monitor.tick();
  closed = false;
  clock->set(1.2);
  monitor.tick();
  EXPECT_EQ(events_of(monitor.history(), obs::HealthRule::kBarrierStuck).size(), 2u);
}

TEST(HealthQueue, SaturationThresholdExact) {
  auto clock = std::make_shared<obs::ManualClock>(0.0);
  obs::HealthMonitor monitor(obs::HealthConfig{}, clock);
  std::size_t depth = 0;
  monitor.add_queue_probe("tier", [&] { return depth; }, /*capacity=*/100);

  depth = 89;  // 0.89 < 0.9: below
  monitor.tick();
  EXPECT_TRUE(monitor.active().empty());

  depth = 90;  // exactly the 0.9 fraction: >= fires
  clock->set(0.1);
  monitor.tick();
  {
    const auto sat = events_of(monitor.history(), obs::HealthRule::kQueueSaturation);
    ASSERT_EQ(sat.size(), 1u);
    EXPECT_TRUE(sat[0].firing);
    EXPECT_DOUBLE_EQ(sat[0].value, 0.9);
  }

  depth = 10;
  clock->set(0.2);
  monitor.tick();
  EXPECT_TRUE(monitor.active().empty());
  // The depth gauge is exposed through the monitor's own scrape.
  obs::MetricsSnapshot snap;
  monitor.scrape(snap);
  const obs::MetricPoint* gauge =
      snap.find("distgnn_health_queue_depth", {{"queue", "tier"}});
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->value, 10.0);
}

// ---------------------------------------------------------------------------
// p99 drift + shed anomaly vs trailing baselines.

TEST(HealthDrift, RecentP99AgainstTrailingBaseline) {
  auto clock = std::make_shared<obs::ManualClock>(0.0);
  obs::HealthMonitor monitor(obs::HealthConfig{}, clock);
  ScriptedSource source;
  monitor.add_source("scripted", source);

  monitor.tick();  // t=0 baseline
  // A long healthy history: 10000 requests at ~100µs.
  observe_n(source.tenant_hist, 1e-4, 10000);
  clock->set(1.0);
  monitor.tick();
  EXPECT_TRUE(events_of(monitor.history(), obs::HealthRule::kP99Drift).empty());

  // The recent window turns 100x slower; the trailing baseline still sees
  // mostly-healthy traffic (64/10064 < 1%), so its p99 stays at ~100µs.
  observe_n(source.tenant_hist, 1e-2, 64);
  clock->set(2.0);
  monitor.tick();
  {
    const auto drift = events_of(monitor.history(), obs::HealthRule::kP99Drift);
    ASSERT_EQ(drift.size(), 1u);
    EXPECT_TRUE(drift[0].firing);
    EXPECT_EQ(drift[0].severity, obs::Severity::kWarn);
    EXPECT_GT(drift[0].value, 3.0);  // the observed ratio
  }

  // Healthy traffic returns; once the recent window no longer covers the
  // regression, the alert resolves.
  observe_n(source.tenant_hist, 1e-4, 500);
  clock->set(2.5);
  monitor.tick();
  clock->set(3.6);
  monitor.tick();
  EXPECT_TRUE(monitor.active().empty());
  EXPECT_EQ(events_of(monitor.history(), obs::HealthRule::kP99Drift).size(), 2u);
}

TEST(HealthShed, AnomalyAgainstBaselineFraction) {
  auto clock = std::make_shared<obs::ManualClock>(0.0);
  obs::HealthMonitor monitor(obs::HealthConfig{}, clock);
  ScriptedSource source;
  monitor.add_source("scripted", source);

  monitor.tick();
  source.submitted = 1000;  // healthy: no sheds at all
  source.completed = 1000;
  clock->set(1.0);
  monitor.tick();
  EXPECT_TRUE(events_of(monitor.history(), obs::HealthRule::kShedAnomaly).empty());

  // 40% of the recent window shed vs a ~3.6% baseline fraction.
  source.submitted = 1100;
  source.completed = 1160 - 100;  // keep inflight 0: completed + shed == submitted
  source.shed = 40;
  source.completed = 1060;
  clock->set(2.0);
  monitor.tick();
  {
    const auto shed = events_of(monitor.history(), obs::HealthRule::kShedAnomaly);
    ASSERT_EQ(shed.size(), 1u);
    EXPECT_TRUE(shed[0].firing);
    EXPECT_NEAR(shed[0].value, 0.4, 1e-9);
  }

  source.submitted = 1200;
  source.completed = 1160;
  clock->set(3.0);
  monitor.tick();  // recent window is shed-free again
  EXPECT_TRUE(monitor.active().empty());
}

// ---------------------------------------------------------------------------
// The sampling path does not allocate in steady state, and the monitor's own
// exposition carries the rule states.

TEST(HealthMonitorCore, SteadyStateTicksDoNotAllocateSeries) {
  auto clock = std::make_shared<obs::ManualClock>(0.0);
  obs::HealthMonitor monitor(obs::HealthConfig{}, clock);
  ScriptedSource source;
  monitor.add_source("scripted", source);
  monitor.set_slo(0, 1e-3, 0.999);
  std::size_t depth = 3;
  monitor.add_queue_probe("q", [&] { return depth; }, 100);
  std::uint64_t served = 0, sealed = 0;
  monitor.add_epoch_probe(
      "e", [&] { return served; }, [&] { return sealed; });

  // Warm-up: the first ticks create every series.
  for (int i = 0; i < 3; ++i) {
    clock->advance(0.05);
    monitor.tick();
  }
  const std::uint64_t warmed = monitor.series_allocations();
  const std::size_t series = monitor.num_series();
  EXPECT_GT(warmed, 0u);

  // Steady state: values keep changing, series set does not — the ingest
  // path reuses the rings with zero series allocations.
  for (int i = 0; i < 50; ++i) {
    observe_n(source.tenant_hist, 2e-4, 5);
    source.submitted += 5;
    source.completed += 5;
    depth = static_cast<std::size_t>(10 + i % 7);
    sealed = served = static_cast<std::uint64_t>(i);
    clock->advance(0.05);
    monitor.tick();
  }
  EXPECT_EQ(monitor.series_allocations(), warmed);
  EXPECT_EQ(monitor.num_series(), series);
  EXPECT_EQ(monitor.ticks(), 53u);
}

TEST(HealthMonitorCore, ScrapeAndJsonExposeRuleStates) {
  auto clock = std::make_shared<obs::ManualClock>(0.0);
  obs::HealthMonitor monitor(obs::HealthConfig{}, clock);
  ScriptedSource source;
  monitor.add_source("scripted", source);

  source.submitted = 10;  // wedge: 10 in flight, frozen
  monitor.tick();
  clock->set(1.5);
  monitor.tick();  // stall fires

  obs::MetricsSnapshot snap;
  monitor.scrape(snap);
  EXPECT_DOUBLE_EQ(snap.find("distgnn_health_ticks_total", {})->value, 2.0);
  EXPECT_DOUBLE_EQ(snap.find("distgnn_health_active", {{"rule", "stall"}})->value, 1.0);
  EXPECT_DOUBLE_EQ(snap.find("distgnn_health_events_total", {{"rule", "stall"}})->value, 1.0);
  EXPECT_DOUBLE_EQ(snap.find("distgnn_health_active", {{"rule", "burn_rate"}})->value, 0.0);
  // The monitor is itself a ScrapeSource: its exposition renders and parses.
  const obs::MetricsSnapshot parsed =
      obs::parse_prometheus(obs::render_prometheus(snap));
  EXPECT_NE(parsed.find("distgnn_health_ticks_total", {}), nullptr);

  const std::string json = obs::render_health_json(monitor);
  EXPECT_NE(json.find("\"rule\":\"stall\""), std::string::npos);
  EXPECT_NE(json.find("\"firing\":true"), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"critical\""), std::string::npos);
  EXPECT_NE(json.find("\"subject\":\"scripted\""), std::string::npos);

  const std::string line = monitor.summary_line();
  EXPECT_NE(line.find("firing=1"), std::string::npos);
  EXPECT_NE(line.find("stall:scripted"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End to end over the real tower: ModelRegistry over ComposedTier R=2 x P=2,
// plus a DeltaPublisher for the freshness probe.

struct TowerFixture {
  Dataset dataset;
  EdgePartition partition;
  ModelRegistry registry;
  ComposedTier* tier = nullptr;  // owned by the registry
  tenant_t tenant = 0;

  explicit TowerFixture(double deadline_seconds) {
    LearnableSbmParams params;
    params.num_vertices = 128;
    params.num_classes = 4;
    params.avg_degree = 6;
    params.feature_dim = 8;
    params.seed = 21;
    dataset = make_learnable_sbm(params);
    partition = partition_libra(dataset.graph.coo(), /*num_parts=*/2);

    ModelSpec spec;
    spec.feature_dim = dataset.feature_dim();
    spec.hidden_dim = 8;
    spec.num_classes = dataset.num_classes;
    spec.num_layers = 2;

    ComposedConfig cfg;
    cfg.replicas = 2;
    cfg.shard.max_batch = 4;
    cfg.shard.fanouts = {4, 4};
    // The burn-rate test wants completions that *violate* the deadline, not
    // sheds — so the tower must keep serving late requests.
    cfg.admission.shed_deadlines = false;
    TenantSlo slo;
    slo.name = "alpha";
    slo.deadline_seconds = deadline_seconds;
    slo.slo_target = 0.999;
    auto backend = std::make_unique<ComposedTier>(dataset, partition, cfg);
    tier = backend.get();
    tenant = registry.add(slo, std::move(backend));
    registry.publish(tenant, ModelSnapshot::random(spec, /*seed=*/3, /*version=*/1));
    registry.start();
  }
  ~TowerFixture() { registry.stop(); }
};

TEST(HealthTower, BurnRateFiresOnRealTrafficAndResolves) {
  // 1µs deadline: every completed request violates it.
  TowerFixture fx(/*deadline_seconds=*/1e-6);
  auto clock = std::make_shared<obs::ManualClock>(0.0);
  obs::HealthMonitor monitor(obs::HealthConfig{}, clock);
  fx.registry.configure_health(monitor);

  monitor.tick();  // baseline

  // Two traffic rounds with a tick in between: the per-tenant latency series
  // is created on the first round's scrape, and the window delta measures
  // increments from that first sample — so the second round is what the
  // fast window sees.
  std::vector<vid_t> vertices;
  for (vid_t v = 0; v < 32; ++v) vertices.push_back((v * 5) % 128);
  for (double t : {0.25, 0.5}) {
    const auto results = fx.registry.infer_batch(fx.tenant, vertices);
    for (const auto& r : results) ASSERT_TRUE(r.has_value());
    fx.registry.backend(fx.tenant).drain();
    clock->set(t);
    monitor.tick();
  }
  const auto burn = events_of(monitor.history(), obs::HealthRule::kBurnRate);
  ASSERT_GE(burn.size(), 1u);
  EXPECT_TRUE(burn[0].firing);
  EXPECT_EQ(burn[0].tenant, 0);
  EXPECT_EQ(burn[0].subject, "registry");

  // No further traffic: once the fast window slides past the burst the
  // alert resolves.
  clock->set(2.0);
  monitor.tick();
  clock->set(3.5);
  monitor.tick();
  EXPECT_TRUE(events_of(monitor.active(), obs::HealthRule::kBurnRate).empty());
}

TEST(HealthTower, WedgedBarrierTripsWatchdog) {
  TowerFixture fx(/*deadline_seconds=*/0.5);
  auto clock = std::make_shared<obs::ManualClock>(0.0);
  obs::HealthMonitor monitor(obs::HealthConfig{}, clock);
  fx.tier->configure_health(monitor, "tier");

  monitor.tick();
  EXPECT_TRUE(monitor.active().empty());

  // Wedge the publish barrier: hold an admission slot open, then publish
  // from another thread — the barrier closes and parks waiting for us.
  fx.tier->group().begin_requests(1);
  ModelSpec spec;
  spec.feature_dim = fx.dataset.feature_dim();
  spec.hidden_dim = 8;
  spec.num_classes = fx.dataset.num_classes;
  spec.num_layers = 2;
  auto snapshot = ModelSnapshot::random(spec, /*seed=*/4, /*version=*/2);
  std::thread publisher([&] { fx.tier->publish(std::move(snapshot)); });
  while (!fx.tier->group().publishing()) std::this_thread::yield();

  clock->set(0.1);
  monitor.tick();  // barrier observed closed; watchdog timer starts
  clock->set(0.8);
  monitor.tick();  // closed for 0.7s >= 0.5s -> critical
  {
    const auto stuck = events_of(monitor.history(), obs::HealthRule::kBarrierStuck);
    ASSERT_EQ(stuck.size(), 1u);
    EXPECT_TRUE(stuck[0].firing);
    EXPECT_EQ(stuck[0].subject, "tier");
    EXPECT_EQ(stuck[0].severity, obs::Severity::kCritical);
  }

  fx.tier->group().end_request();  // release the wedge
  publisher.join();
  clock->set(1.0);
  monitor.tick();
  EXPECT_TRUE(events_of(monitor.active(), obs::HealthRule::kBarrierStuck).empty());
}

TEST(HealthTower, EpochLagOverLiveDeltaLog) {
  LearnableSbmParams params;
  params.num_vertices = 128;
  params.num_classes = 4;
  params.avg_degree = 6;
  params.feature_dim = 8;
  params.seed = 22;
  Dataset dataset = make_learnable_sbm(params);
  ModelSpec spec;
  spec.feature_dim = dataset.feature_dim();
  spec.hidden_dim = 8;
  spec.num_classes = dataset.num_classes;
  spec.num_layers = 2;
  ServeConfig serve_cfg;
  InferenceServer server(dataset, serve_cfg);
  server.publish(ModelSnapshot::random(spec, /*seed=*/5, /*version=*/1));
  server.start();

  stream::DeltaLog log;
  stream::DeltaPublisher publisher(dataset, server);

  auto clock = std::make_shared<obs::ManualClock>(0.0);
  obs::HealthMonitor monitor(obs::HealthConfig{}, clock);
  publisher.configure_health(monitor, log, "stream");

  monitor.tick();
  // Seal 4 epochs without publishing any: the sealed head runs 4 ahead.
  std::vector<stream::GraphDelta> pending;
  for (int i = 0; i < 4; ++i) {
    log.insert_edge(static_cast<vid_t>(i), static_cast<vid_t>((i + 1) % 128));
    pending.push_back(log.seal());
  }
  ASSERT_EQ(log.sealed_epochs(), 4u);
  clock->set(0.1);
  monitor.tick();  // lag 4 > 2: grace starts
  clock->set(0.8);
  monitor.tick();  // 0.7s >= 0.5s grace -> fire
  {
    const auto lag = events_of(monitor.history(), obs::HealthRule::kEpochLag);
    ASSERT_EQ(lag.size(), 1u);
    EXPECT_TRUE(lag[0].firing);
    EXPECT_DOUBLE_EQ(lag[0].value, 4.0);
  }

  // Publishing the backlog closes the gap and resolves the alert.
  for (const stream::GraphDelta& delta : pending) publisher.publish(delta);
  EXPECT_EQ(publisher.epoch(), 4u);
  clock->set(1.0);
  monitor.tick();
  EXPECT_TRUE(events_of(monitor.active(), obs::HealthRule::kEpochLag).empty());

  // The publisher left stream-track traces behind (kRepartition/kApply/
  // kInvalidate spans on the kStreamTrack pseudo-tenant).
  std::vector<obs::Trace> traces;
  publisher.collect_traces(traces);
  ASSERT_FALSE(traces.empty());
  EXPECT_EQ(traces.back().tenant, obs::kStreamTrack);
  const std::string json = obs::render_chrome_trace(traces);
  EXPECT_NE(json.find("\"cat\":\"stream\""), std::string::npos);

  server.stop();
}

}  // namespace
}  // namespace distgnn
