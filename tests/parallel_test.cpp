// util/parallel.hpp shim: the wrappers must be callable in every build
// (OpenMP or serial fallback), report consistent values, and — the property
// the shim exists to guarantee — the aggregation kernels must produce
// identical results whether they run serial or parallel.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "kernels/aggregate.hpp"
#include "kernels/ops.hpp"
#include "util/matrix.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace distgnn {
namespace {

TEST(Parallel, WrappersReportConsistentState) {
  EXPECT_GE(par::max_threads(), 1);
  EXPECT_GE(par::num_procs(), 1);
  // Outside a parallel region exactly one thread is executing.
  EXPECT_EQ(par::thread_id(), 0);
  EXPECT_EQ(par::num_threads(), 1);
  if constexpr (!par::kHaveOpenMP) {
    EXPECT_EQ(par::max_threads(), 1);
    EXPECT_EQ(par::num_procs(), 1);
  }
}

TEST(Parallel, SetNumThreadsRoundTrips) {
  const int saved = par::max_threads();
  par::set_num_threads(1);
  EXPECT_EQ(par::max_threads(), 1);
  par::set_num_threads(saved);
  EXPECT_EQ(par::max_threads(), par::kHaveOpenMP ? saved : 1);
}

TEST(Parallel, SerialAndParallelAggregationAgree) {
  const EdgeList el = generate_erdos_renyi(/*num_vertices=*/512, /*num_edges=*/4096,
                                           /*seed=*/17);
  const CsrMatrix A = CsrMatrix::from_coo(el);
  const std::size_t n = static_cast<std::size_t>(el.num_vertices), d = 32;

  Rng rng(99);
  DenseMatrix fV(n, d);
  for (std::size_t i = 0; i < fV.size(); ++i) fV.data()[i] = rng.uniform(-1.0f, 1.0f);

  ApConfig cfg;
  cfg.num_blocks = 4;
  cfg.dynamic_schedule = true;

  const int saved = par::max_threads();
  par::set_num_threads(1);
  DenseMatrix serial(n, d, 0.0f);
  aggregate(A, fV.cview(), {}, serial.view(), cfg);

  par::set_num_threads(saved);
  DenseMatrix parallel(n, d, 0.0f);
  aggregate(A, fV.cview(), {}, parallel.view(), cfg);

  // Sum aggregation adds the same values in the same per-row order no matter
  // how rows are scheduled across threads, so equality is exact.
  for (std::size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(serial.data()[i], parallel.data()[i]) << "flat index " << i;
}

TEST(Parallel, SerialAndParallelPrepartitionedAggregationAgree) {
  const EdgeList el = generate_erdos_renyi(1024, 8192, /*seed=*/23);
  const CsrMatrix A = CsrMatrix::from_coo(el);
  const BlockedCsr blocks(A, /*num_blocks=*/8);
  const std::size_t n = static_cast<std::size_t>(el.num_vertices), d = 16;

  Rng rng(7);
  DenseMatrix fV(n, d);
  for (std::size_t i = 0; i < fV.size(); ++i) fV.data()[i] = rng.uniform(-2.0f, 2.0f);

  ApConfig cfg;

  const int saved = par::max_threads();
  par::set_num_threads(1);
  DenseMatrix serial(n, d, 0.0f);
  aggregate_prepartitioned(blocks, fV.cview(), {}, serial.view(), cfg);

  par::set_num_threads(saved);
  DenseMatrix parallel(n, d, 0.0f);
  aggregate_prepartitioned(blocks, fV.cview(), {}, parallel.view(), cfg);

  for (std::size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(serial.data()[i], parallel.data()[i]) << "flat index " << i;
}

}  // namespace
}  // namespace distgnn
