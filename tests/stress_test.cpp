// Randomized stress and determinism properties across the stack: message
// storms on the comm runtime, aggregation over every generator family, and
// bit-for-bit reproducibility of the trainers.
#include <gtest/gtest.h>

#include <map>

#include "comm/world.hpp"
#include "core/distributed_trainer.hpp"
#include "core/single_socket_trainer.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "kernels/aggregate.hpp"
#include "partition/libra.hpp"
#include "partition/partition_setup.hpp"
#include "util/rng.hpp"

namespace distgnn {
namespace {

TEST(CommStress, RandomMessageStormPreservesChannelOrder) {
  // Every rank sends a random number of messages on random (dest, tag)
  // channels, then all receive exactly what the senders report — in order.
  constexpr int kRanks = 4, kMessages = 200, kTags = 5;
  World::launch(kRanks, [&](Communicator& comm) {
    Rng rng(1000 + static_cast<std::uint64_t>(comm.rank()));
    // Plan deterministically from the rank's seed so receivers can
    // reconstruct every sender's plan without extra communication.
    auto plan_for = [&](int rank) {
      Rng r(2000 + static_cast<std::uint64_t>(rank));
      std::map<std::pair<int, int>, std::vector<real_t>> plan;  // (dest, tag) -> values
      for (int m = 0; m < kMessages; ++m) {
        const int dest = static_cast<int>(r.next_below(kRanks));
        const int tag = static_cast<int>(r.next_below(kTags));
        plan[{dest, tag}].push_back(static_cast<real_t>(rank * 100000 + m));
      }
      return plan;
    };

    // Send my plan.
    {
      Rng r(2000 + static_cast<std::uint64_t>(comm.rank()));
      for (int m = 0; m < kMessages; ++m) {
        const int dest = static_cast<int>(r.next_below(kRanks));
        const int tag = static_cast<int>(r.next_below(kTags));
        comm.send(dest, tag, {static_cast<real_t>(comm.rank() * 100000 + m)});
      }
    }

    // Receive everything addressed to me, per channel, in order.
    for (int src = 0; src < kRanks; ++src) {
      const auto plan = plan_for(src);
      for (const auto& [key, values] : plan) {
        if (key.first != comm.rank()) continue;
        for (const real_t expected : values) {
          const auto payload = comm.recv(src, key.second);
          ASSERT_EQ(payload.size(), 1u);
          ASSERT_FLOAT_EQ(payload[0], expected)
              << "src " << src << " tag " << key.second;
        }
      }
    }
  });
}

TEST(CommStress, ManyConcurrentCollectives) {
  World::launch(6, [](Communicator& comm) {
    for (int iter = 0; iter < 100; ++iter) {
      std::vector<real_t> v{static_cast<real_t>(comm.rank()), 1.0f};
      comm.allreduce_sum(std::span<real_t>(v));
      ASSERT_FLOAT_EQ(v[0], 15.0f) << "iter " << iter;  // 0+1+..+5
      ASSERT_FLOAT_EQ(v[1], 6.0f);
    }
  });
}

enum class Family { kRmat, kErdos, kSbm, kPowerLaw };

class GeneratorFamilyTest : public ::testing::TestWithParam<Family> {
 protected:
  EdgeList make() {
    switch (GetParam()) {
      case Family::kRmat:
        return generate_rmat({.num_vertices = 400, .num_edges = 3000, .seed = 8});
      case Family::kErdos: return generate_erdos_renyi(400, 3000, 8);
      case Family::kSbm: {
        SbmParams p;
        p.num_vertices = 400;
        p.avg_degree = 15;
        p.seed = 8;
        return generate_sbm(p).edges;
      }
      case Family::kPowerLaw: return generate_power_law(400, 15, 2.1, 8);
    }
    return {};
  }
};

TEST_P(GeneratorFamilyTest, BlockedAggregationMatchesBaselineOnEveryFamily) {
  const EdgeList el = make();
  const CsrMatrix csr = CsrMatrix::from_coo(el);
  Rng rng(9);
  DenseMatrix fV(static_cast<std::size_t>(el.num_vertices), 11);
  for (std::size_t i = 0; i < fV.size(); ++i) fV.data()[i] = rng.uniform(-2, 2);

  DenseMatrix expected(fV.rows(), fV.cols(), 0);
  aggregate_baseline(csr, fV.cview(), {}, expected.view(), BinaryOp::kCopyLhs, ReduceOp::kSum);
  for (const int nb : {2, 5, 13}) {
    DenseMatrix out(fV.rows(), fV.cols(), 0);
    ApConfig cfg;
    cfg.num_blocks = nb;
    aggregate(csr, fV.cview(), {}, out.view(), cfg);
    for (std::size_t i = 0; i < out.size(); ++i)
      ASSERT_NEAR(out.data()[i], expected.data()[i], 2e-3f) << "nb " << nb;
  }
}

TEST_P(GeneratorFamilyTest, PartitionInvariantsOnEveryFamily) {
  const EdgeList el = make();
  const EdgePartition ep = partition_libra(el, 6);
  const PartitionedGraph pg = build_partitions(el, ep, 2);
  // Local vertex counts equal the vertex_map ranges; total edges conserved.
  eid_t edges = 0;
  for (const LocalPartition& lp : pg.parts) {
    edges += lp.edges.num_edges();
    for (vid_t v = 0; v + 1 < lp.num_vertices; ++v)
      ASSERT_LT(lp.global_ids[static_cast<std::size_t>(v)],
                lp.global_ids[static_cast<std::size_t>(v) + 1]);  // sorted ascending
  }
  EXPECT_EQ(edges, el.num_edges());
  EXPECT_EQ(pg.total_local_vertices(),
            pg.vertex_map[static_cast<std::size_t>(pg.num_parts)]);
}

INSTANTIATE_TEST_SUITE_P(Families, GeneratorFamilyTest,
                         ::testing::Values(Family::kRmat, Family::kErdos, Family::kSbm,
                                           Family::kPowerLaw),
                         [](const auto& info) {
                           switch (info.param) {
                             case Family::kRmat: return "rmat";
                             case Family::kErdos: return "erdos";
                             case Family::kSbm: return "sbm";
                             case Family::kPowerLaw: return "powerlaw";
                           }
                           return "?";
                         });

TEST(Determinism, DistributedTrainingReproducible) {
  LearnableSbmParams p;
  p.num_vertices = 512;
  p.num_classes = 4;
  p.feature_dim = 16;
  const Dataset ds = make_learnable_sbm(p);
  const PartitionedGraph pg =
      build_partitions(ds.graph.coo(), partition_libra(ds.graph.coo(), 3), 1);
  TrainConfig cfg;
  cfg.num_layers = 2;
  cfg.hidden_dim = 16;
  cfg.epochs = 5;
  cfg.algorithm = Algorithm::kCdR;
  cfg.delay = 2;
  cfg.threads_per_rank = 1;

  const DistTrainResult a = train_distributed(ds, pg, cfg);
  const DistTrainResult b = train_distributed(ds, pg, cfg);
  for (std::size_t e = 0; e < a.epochs.size(); ++e)
    EXPECT_DOUBLE_EQ(a.epochs[e].loss, b.epochs[e].loss) << "epoch " << e;
  EXPECT_DOUBLE_EQ(a.test_accuracy, b.test_accuracy);
}

TEST(Determinism, PartitioningIndependentOfPriorRuns) {
  // The partitioner must not share hidden state between invocations.
  const EdgeList el = generate_rmat({.num_vertices = 300, .num_edges = 2000, .seed = 4});
  const EdgePartition first = partition_libra(el, 4, 7);
  partition_libra(el, 8, 99);  // interleave a different run
  const EdgePartition second = partition_libra(el, 4, 7);
  EXPECT_EQ(first.edge_owner, second.edge_owner);
}

}  // namespace
}  // namespace distgnn
