// End-to-end pipelines: dataset generation -> partitioning -> distributed
// full-batch training, and the full-batch vs mini-batch comparison that
// backs Table 9.
#include <gtest/gtest.h>

#include "core/distributed_trainer.hpp"
#include "core/single_socket_trainer.hpp"
#include "graph/datasets.hpp"
#include "partition/libra.hpp"
#include "partition/partition_setup.hpp"
#include "partition/partition_stats.hpp"
#include "sampling/sampled_trainer.hpp"

namespace distgnn {
namespace {

TEST(Integration, RegistryDatasetTrainsSingleSocket) {
  const Dataset ds = make_dataset("am-sim", 0.25);
  TrainConfig cfg;
  cfg.num_layers = 2;
  cfg.hidden_dim = 16;
  cfg.lr = 0.05;
  SingleSocketTrainer trainer(ds, cfg);
  const double first = trainer.train_epoch().loss;
  for (int e = 0; e < 5; ++e) trainer.train_epoch();
  const double last = trainer.train_epoch().loss;
  // Random labels: it cannot learn much, but it must run and not blow up.
  EXPECT_TRUE(std::isfinite(first));
  EXPECT_TRUE(std::isfinite(last));
  EXPECT_LT(last, first * 1.5);
}

TEST(Integration, FullPipelineOnRegistryDataset) {
  const Dataset ds = make_dataset("proteins-sim", 0.05);
  const EdgePartition ep = partition_libra(ds.graph.coo(), 4);
  const PartitionQuality q = evaluate_partition(ds.graph.coo(), ep);
  EXPECT_GE(q.replication_factor, 1.0);
  EXPECT_LT(q.edge_balance, 1.2);

  const PartitionedGraph pg = build_partitions(ds.graph.coo(), ep, 1);
  TrainConfig cfg;
  cfg.num_layers = 2;
  cfg.hidden_dim = 16;
  cfg.epochs = 3;
  cfg.algorithm = Algorithm::kCdR;
  cfg.delay = 2;
  cfg.threads_per_rank = 2;
  const DistTrainResult result = train_distributed(ds, pg, cfg);
  EXPECT_EQ(result.epochs.size(), 3u);
  for (const auto& rec : result.epochs) EXPECT_TRUE(std::isfinite(rec.loss));
}

TEST(Integration, FullBatchAndMiniBatchBothLearnSameData) {
  LearnableSbmParams p;
  p.num_vertices = 2048;
  p.num_classes = 4;
  p.avg_degree = 12;
  p.feature_dim = 16;
  p.feature_noise = 0.5f;
  const Dataset ds = make_learnable_sbm(p);

  // Full batch (DistGNN single socket).
  TrainConfig cfg;
  cfg.num_layers = 2;
  cfg.hidden_dim = 32;
  cfg.lr = 0.2;
  SingleSocketTrainer full(ds, cfg);
  for (int e = 0; e < 30; ++e) full.train_epoch();
  const double acc_full = full.evaluate(ds.test_mask);

  // Mini batch (Dist-DGL style).
  SampledTrainConfig scfg;
  scfg.fanouts = {5, 10};
  scfg.batch_size = 256;
  scfg.hidden_dim = 32;
  scfg.lr = 0.2;
  SampledSageTrainer mini(ds, scfg);
  for (int e = 0; e < 10; ++e) mini.train_epoch();
  const double acc_mini = mini.evaluate(ds.test_mask);

  EXPECT_GT(acc_full, 0.7);
  EXPECT_GT(acc_mini, 0.6);
}

TEST(Integration, ReplicationFactorOrderingAcrossSimDatasets) {
  // Table 4's cross-dataset story at sim scale: the dense reddit-sim splits
  // the most; the clustered proteins-sim and the sparse papers-sim split
  // less.
  const Dataset reddit = make_dataset("reddit-sim", 0.125);
  const Dataset products = make_dataset("ogbn-products-sim", 0.0625);
  const Dataset papers = make_dataset("ogbn-papers-sim", 0.0625);
  auto rep = [](const Dataset& ds) {
    return evaluate_partition(ds.graph.coo(), partition_libra(ds.graph.coo(), 8))
        .replication_factor;
  };
  const double rep_reddit = rep(reddit);
  EXPECT_GT(rep_reddit, rep(products));
  EXPECT_GT(rep_reddit, rep(papers));
  EXPECT_GT(rep(products), rep(papers));
}

TEST(Integration, ScalingReducesLocalAggregationTime) {
  // Fig. 6's LAT property: more partitions -> less local work per rank.
  LearnableSbmParams p;
  p.num_vertices = 16384;
  p.num_classes = 4;
  p.avg_degree = 32;
  p.feature_dim = 64;
  const Dataset ds = make_learnable_sbm(p);
  TrainConfig cfg;
  cfg.num_layers = 2;
  cfg.hidden_dim = 64;
  cfg.epochs = 8;
  cfg.algorithm = Algorithm::k0c;
  cfg.threads_per_rank = 1;

  const PartitionedGraph pg1 =
      build_partitions(ds.graph.coo(), partition_libra(ds.graph.coo(), 1), 1);
  const PartitionedGraph pg8 =
      build_partitions(ds.graph.coo(), partition_libra(ds.graph.coo(), 8), 1);
  const double lat1 = train_distributed(ds, pg1, cfg).mean_local_agg_seconds(2);
  const double lat8 = train_distributed(ds, pg8, cfg).mean_local_agg_seconds(2);
  EXPECT_LT(lat8, lat1);
}

}  // namespace
}  // namespace distgnn
