#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "graph/generators.hpp"
#include "kernels/aggregate.hpp"
#include "kernels/microkernel.hpp"
#include "kernels/ops.hpp"
#include "kernels/sddmm.hpp"
#include "kernels/traffic_replay.hpp"
#include "util/rng.hpp"

namespace distgnn {
namespace {

DenseMatrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng, real_t lo = 0.5f,
                          real_t hi = 2.0f) {
  // Strictly positive values so kDiv is well behaved.
  DenseMatrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.uniform(lo, hi);
  return m;
}

/// Dense O(V^2 d) reference aggregation straight from the AP definition.
DenseMatrix dense_reference(const EdgeList& el, const DenseMatrix& fV, const DenseMatrix& fE,
                            BinaryOp binary, ReduceOp reduce) {
  const auto n = static_cast<std::size_t>(el.num_vertices);
  const std::size_t d = uses_lhs(binary) ? fV.cols() : fE.cols();
  DenseMatrix out(n, d, reduce_identity(reduce));
  for (std::size_t e = 0; e < el.edges.size(); ++e) {
    const auto u = static_cast<std::size_t>(el.edges[e].src);
    const auto v = static_cast<std::size_t>(el.edges[e].dst);
    for (std::size_t j = 0; j < d; ++j) {
      real_t x = 0;
      switch (binary) {
        case BinaryOp::kAdd: x = fV.at(u, j) + fE.at(e, j); break;
        case BinaryOp::kSub: x = fV.at(u, j) - fE.at(e, j); break;
        case BinaryOp::kMul: x = fV.at(u, j) * fE.at(e, j); break;
        case BinaryOp::kDiv: x = fV.at(u, j) / fE.at(e, j); break;
        case BinaryOp::kCopyLhs: x = fV.at(u, j); break;
        case BinaryOp::kCopyRhs: x = fE.at(e, j); break;
      }
      real_t& z = out.at(v, j);
      switch (reduce) {
        case ReduceOp::kSum: z += x; break;
        case ReduceOp::kMax: z = std::max(z, x); break;
        case ReduceOp::kMin: z = std::min(z, x); break;
      }
    }
  }
  return out;
}

void expect_near(const DenseMatrix& a, const DenseMatrix& b, real_t tol) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Exact match covers the +/-inf identities of max/min over empty rows.
    if (a.data()[i] == b.data()[i]) continue;
    ASSERT_NEAR(a.data()[i], b.data()[i], tol) << "flat index " << i;
  }
}

struct OpCase {
  BinaryOp binary;
  ReduceOp reduce;
};

class ApOperatorTest : public ::testing::TestWithParam<std::tuple<BinaryOp, ReduceOp>> {};

TEST_P(ApOperatorTest, BaselineMatchesDenseReference) {
  const auto [binary, reduce] = GetParam();
  Rng rng(13);
  const EdgeList el = generate_rmat({.num_vertices = 200, .num_edges = 1500, .seed = 17});
  const CsrMatrix csr = CsrMatrix::from_coo(el);
  const std::size_t d = 7;
  const DenseMatrix fV = random_matrix(200, d, rng);
  const DenseMatrix fE = random_matrix(el.edges.size(), d, rng);

  DenseMatrix out(200, d, reduce_identity(reduce));
  aggregate_baseline(csr, fV.cview(), fE.cview(), out.view(), binary, reduce);
  expect_near(out, dense_reference(el, fV, fE, binary, reduce), 1e-3f);
}

TEST_P(ApOperatorTest, OptimizedMatchesDenseReference) {
  const auto [binary, reduce] = GetParam();
  Rng rng(14);
  const EdgeList el = generate_rmat({.num_vertices = 200, .num_edges = 1500, .seed = 23});
  const CsrMatrix csr = CsrMatrix::from_coo(el);
  const std::size_t d = 9;
  const DenseMatrix fV = random_matrix(200, d, rng);
  const DenseMatrix fE = random_matrix(el.edges.size(), d, rng);

  ApConfig cfg;
  cfg.binary = binary;
  cfg.reduce = reduce;
  cfg.num_blocks = 4;
  DenseMatrix out(200, d, reduce_identity(reduce));
  aggregate(csr, fV.cview(), fE.cview(), out.view(), cfg);
  expect_near(out, dense_reference(el, fV, fE, binary, reduce), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    AllOperatorPairs, ApOperatorTest,
    ::testing::Combine(::testing::Values(BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul,
                                         BinaryOp::kDiv, BinaryOp::kCopyLhs, BinaryOp::kCopyRhs),
                       ::testing::Values(ReduceOp::kSum, ReduceOp::kMax, ReduceOp::kMin)),
    [](const auto& info) {
      return to_string(std::get<0>(info.param)) + "_" + to_string(std::get<1>(info.param));
    });

class ApBlockingTest
    : public ::testing::TestWithParam<std::tuple<int /*nB*/, int /*d*/, bool /*dynamic*/,
                                                 bool /*microkernel*/>> {};

TEST_P(ApBlockingTest, AllConfigurationsAgreeWithBaseline) {
  const auto [num_blocks, d, dynamic, micro] = GetParam();
  Rng rng(num_blocks * 31 + d);
  const EdgeList el = generate_rmat({.num_vertices = 500, .num_edges = 6000, .seed = 29});
  const CsrMatrix csr = CsrMatrix::from_coo(el);
  const DenseMatrix fV = random_matrix(500, static_cast<std::size_t>(d), rng);

  DenseMatrix expected(500, static_cast<std::size_t>(d), 0);
  aggregate_baseline(csr, fV.cview(), {}, expected.view(), BinaryOp::kCopyLhs, ReduceOp::kSum);

  ApConfig cfg;
  cfg.num_blocks = num_blocks;
  cfg.dynamic_schedule = dynamic;
  cfg.use_microkernel = micro;
  DenseMatrix out(500, static_cast<std::size_t>(d), 0);
  aggregate(csr, fV.cview(), {}, out.view(), cfg);
  expect_near(out, expected, 1e-2f);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ApBlockingTest,
                         ::testing::Combine(::testing::Values(1, 2, 7, 16),
                                            ::testing::Values(1, 8, 33),
                                            ::testing::Bool(), ::testing::Bool()));

TEST(Aggregate, PrepartitionedReusableAcrossCalls) {
  Rng rng(5);
  const EdgeList el = generate_rmat({.num_vertices = 128, .num_edges = 1000, .seed = 3});
  const CsrMatrix csr = CsrMatrix::from_coo(el);
  const BlockedCsr blocks(csr, 4);
  const DenseMatrix fV = random_matrix(128, 16, rng);

  ApConfig cfg;
  DenseMatrix out1(128, 16, 0), out2(128, 16, 0);
  aggregate_prepartitioned(blocks, fV.cview(), {}, out1.view(), cfg);
  aggregate_prepartitioned(blocks, fV.cview(), {}, out2.view(), cfg);
  expect_near(out1, out2, 0.0f);
}

TEST(Aggregate, MaxOverEmptyRowKeepsIdentity) {
  EdgeList el;
  el.num_vertices = 3;
  el.add(0, 1);  // vertex 2 has no in-edges
  const CsrMatrix csr = CsrMatrix::from_coo(el);
  DenseMatrix fV(3, 2, 1.0f);
  DenseMatrix out(3, 2, reduce_identity(ReduceOp::kMax));
  ApConfig cfg;
  cfg.reduce = ReduceOp::kMax;
  aggregate(csr, fV.cview(), {}, out.view(), cfg);
  EXPECT_EQ(out.at(1, 0), 1.0f);
  EXPECT_EQ(out.at(2, 0), reduce_identity(ReduceOp::kMax));
}

TEST(Aggregate, ShapeValidation) {
  EdgeList el;
  el.num_vertices = 4;
  el.add(0, 1);
  el.add(1, 2);
  el.add(2, 3);
  const CsrMatrix csr = CsrMatrix::from_coo(el);
  DenseMatrix fV(4, 3), fO_bad(3, 3), fO(4, 3);
  ApConfig cfg;
  EXPECT_THROW(aggregate(csr, fV.cview(), {}, fO_bad.view(), cfg), std::invalid_argument);
  cfg.binary = BinaryOp::kAdd;  // needs fE
  EXPECT_THROW(aggregate(csr, fV.cview(), {}, fO.view(), cfg), std::invalid_argument);
}

TEST(Microkernel, MatchesScalarReferenceOnAllPairs) {
  Rng rng(77);
  const std::size_t d = 21, degree = 5;
  DenseMatrix fV = random_matrix(16, d, rng);
  DenseMatrix fE = random_matrix(8, d, rng);
  const vid_t nbrs[degree] = {3, 1, 15, 7, 3};
  const eid_t eids[degree] = {0, 2, 7, 4, 1};

  for (const BinaryOp b : kAllBinaryOps) {
    for (const ReduceOp r : kAllReduceOps) {
      std::vector<real_t> acc_fast(d, reduce_identity(r)), acc_ref(d, reduce_identity(r));
      lookup_row_kernel(b, r)(nbrs, eids, degree, fV.data(), fE.data(), d, acc_fast.data());
      row_kernel_reference(b, r, nbrs, eids, degree, fV.data(), fE.data(), d, acc_ref.data());
      for (std::size_t j = 0; j < d; ++j)
        ASSERT_NEAR(acc_fast[j], acc_ref[j], 1e-4f)
            << to_string(b) << "/" << to_string(r) << " j=" << j;
    }
  }
}

TEST(Microkernel, ZeroDegreeLeavesAccumulatorUntouched) {
  std::vector<real_t> acc(4, 3.5f);
  lookup_row_kernel(BinaryOp::kCopyLhs, ReduceOp::kSum)(nullptr, nullptr, 0, nullptr, nullptr, 4,
                                                        acc.data());
  for (const real_t v : acc) EXPECT_EQ(v, 3.5f);
}

TEST(Sddmm, ElementwiseMatchesDirectComputation) {
  Rng rng(31);
  EdgeList el;
  el.num_vertices = 6;
  el.add(0, 1);
  el.add(2, 3);
  el.add(5, 0);
  const DenseMatrix fV = random_matrix(6, 4, rng);
  DenseMatrix out(3, 4);
  sddmm_elementwise(el, fV.cview(), BinaryOp::kMul, out.view());
  for (std::size_t e = 0; e < 3; ++e)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_FLOAT_EQ(out.at(e, j),
                      fV.at(static_cast<std::size_t>(el.edges[e].src), j) *
                          fV.at(static_cast<std::size_t>(el.edges[e].dst), j));
}

TEST(Sddmm, DotMatchesInnerProduct) {
  Rng rng(32);
  EdgeList el;
  el.num_vertices = 5;
  el.add(1, 2);
  el.add(4, 0);
  const DenseMatrix fV = random_matrix(5, 8, rng);
  DenseMatrix out(2, 1);
  sddmm_dot(el, fV.cview(), out.view());
  for (std::size_t e = 0; e < 2; ++e) {
    real_t expect = 0;
    for (std::size_t j = 0; j < 8; ++j)
      expect += fV.at(static_cast<std::size_t>(el.edges[e].src), j) *
                fV.at(static_cast<std::size_t>(el.edges[e].dst), j);
    EXPECT_NEAR(out.at(e, 0), expect, 1e-4f);
  }
}

TEST(TrafficReplay, InfiniteCacheReachesIdealReuse) {
  const EdgeList el = generate_rmat({.num_vertices = 512, .num_edges = 8192, .seed = 41});
  const CsrMatrix csr = CsrMatrix::from_coo(el);
  const auto report = replay_aggregation_traffic(csr, 16, 1, /*cache_bytes=*/1u << 30);
  // Every touched fV vector misses once; reuse == accesses/misses == average
  // in-degree over touched sources.
  EXPECT_GT(report.fv_reuse, 10.0);
  EXPECT_EQ(report.fo.misses, report.fo.accesses);  // each row touched once with nB=1
}

TEST(TrafficReplay, TinyCacheDegradesReuse) {
  const EdgeList el = generate_rmat({.num_vertices = 2048, .num_edges = 32768, .seed = 43});
  const CsrMatrix csr = CsrMatrix::from_coo(el);
  const auto big = replay_aggregation_traffic(csr, 64, 1, 1u << 30);
  const auto tiny = replay_aggregation_traffic(csr, 64, 1, 1u << 12);
  EXPECT_GT(big.fv_reuse, tiny.fv_reuse);
  EXPECT_GT(tiny.bytes_read, big.bytes_read);
}

TEST(TrafficReplay, MoreBlocksMorePassesOverFo) {
  const EdgeList el = generate_rmat({.num_vertices = 1024, .num_edges = 16384, .seed = 47});
  const CsrMatrix csr = CsrMatrix::from_coo(el);
  const auto one = replay_aggregation_traffic(csr, 64, 1, 1u << 14);
  const auto many = replay_aggregation_traffic(csr, 64, 16, 1u << 14);
  EXPECT_GT(many.fo.accesses, one.fo.accesses);
}

TEST(AutoNumBlocks, GrowsWithProblemSize) {
  EXPECT_EQ(auto_num_blocks(1000, 16), 1);
  EXPECT_GT(auto_num_blocks(100'000'000, 256), 8);
  EXPECT_LE(auto_num_blocks(1'000'000'000, 1024), 64);
}

}  // namespace
}  // namespace distgnn
