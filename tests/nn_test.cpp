#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/activations.hpp"
#include "nn/gemm.hpp"
#include "nn/graphsage_layer.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "nn/optim.hpp"
#include "util/rng.hpp"

namespace distgnn {
namespace {

DenseMatrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  DenseMatrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.uniform(-1.0f, 1.0f);
  return m;
}

DenseMatrix naive_gemm(const DenseMatrix& A, const DenseMatrix& B) {
  DenseMatrix C(A.rows(), B.cols(), 0);
  for (std::size_t i = 0; i < A.rows(); ++i)
    for (std::size_t k = 0; k < A.cols(); ++k)
      for (std::size_t j = 0; j < B.cols(); ++j) C.at(i, j) += A.at(i, k) * B.at(k, j);
  return C;
}

void expect_near(const DenseMatrix& a, const DenseMatrix& b, real_t tol) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_NEAR(a.data()[i], b.data()[i], tol);
}

TEST(Gemm, MatchesNaive) {
  Rng rng(1);
  const DenseMatrix A = random_matrix(13, 7, rng);
  const DenseMatrix B = random_matrix(7, 5, rng);
  DenseMatrix C(13, 5);
  gemm(A.cview(), B.cview(), C.view());
  expect_near(C, naive_gemm(A, B), 1e-4f);
}

TEST(Gemm, AccumulateAddsToExisting) {
  Rng rng(2);
  const DenseMatrix A = random_matrix(4, 3, rng);
  const DenseMatrix B = random_matrix(3, 4, rng);
  DenseMatrix C(4, 4, 1.0f);
  gemm(A.cview(), B.cview(), C.view(), /*accumulate=*/true);
  const DenseMatrix expect = naive_gemm(A, B);
  for (std::size_t i = 0; i < C.size(); ++i)
    ASSERT_NEAR(C.data()[i], expect.data()[i] + 1.0f, 1e-4f);
}

TEST(Gemm, TransposedVariants) {
  Rng rng(3);
  const DenseMatrix A = random_matrix(9, 6, rng);   // used as A^T: (6x9 logical)
  const DenseMatrix B = random_matrix(9, 4, rng);
  DenseMatrix C(6, 4);
  gemm_at_b(A.cview(), B.cview(), C.view());
  // Reference: C[i][j] = sum_k A[k][i] B[k][j].
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 4; ++j) {
      real_t acc = 0;
      for (std::size_t k = 0; k < 9; ++k) acc += A.at(k, i) * B.at(k, j);
      ASSERT_NEAR(C.at(i, j), acc, 1e-4f);
    }

  const DenseMatrix D = random_matrix(5, 6, rng);  // B^T where B is (5x6)
  DenseMatrix E(6, 5);
  DenseMatrix At(6, 9);  // not used; ensure a_bt separately
  DenseMatrix X = random_matrix(6, 6, rng);
  DenseMatrix F(6, 5);
  gemm_a_bt(X.cview(), D.cview(), F.view());
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 5; ++j) {
      real_t acc = 0;
      for (std::size_t k = 0; k < 6; ++k) acc += X.at(i, k) * D.at(j, k);
      ASSERT_NEAR(F.at(i, j), acc, 1e-4f);
    }
}

TEST(Gemm, ShapeChecks) {
  DenseMatrix A(2, 3), B(4, 5), C(2, 5);
  EXPECT_THROW(gemm(A.cview(), B.cview(), C.view()), std::invalid_argument);
}

TEST(Gemm, BiasAndColumnSums) {
  DenseMatrix M(3, 2, 1.0f);
  DenseMatrix bias(1, 2);
  bias.at(0, 0) = 0.5f;
  bias.at(0, 1) = -0.5f;
  add_row_bias(M.view(), bias.cview());
  EXPECT_FLOAT_EQ(M.at(2, 0), 1.5f);
  EXPECT_FLOAT_EQ(M.at(2, 1), 0.5f);

  DenseMatrix sums(1, 2);
  column_sums(M.cview(), sums.view());
  EXPECT_FLOAT_EQ(sums.at(0, 0), 4.5f);
  EXPECT_FLOAT_EQ(sums.at(0, 1), 1.5f);
}

TEST(Init, XavierWithinBound) {
  Rng rng(4);
  DenseMatrix W(64, 32);
  xavier_uniform(W.view(), 64, 32, rng);
  const real_t bound = std::sqrt(6.0f / (64 + 32));
  for (std::size_t i = 0; i < W.size(); ++i) {
    EXPECT_GE(W.data()[i], -bound);
    EXPECT_LE(W.data()[i], bound);
  }
}

// Central-difference gradient check of Linear through a scalar objective
// J = sum(Y * G) for a fixed G, so dJ/dY = G.
TEST(Linear, GradientsMatchFiniteDifference) {
  Rng rng(5);
  const std::size_t n = 6, in = 4, out = 3;
  Linear lin(in, out, rng);
  const DenseMatrix X = random_matrix(n, in, rng);
  const DenseMatrix G = random_matrix(n, out, rng);

  auto objective = [&]() {
    DenseMatrix Y(n, out);
    lin.forward(X.cview(), Y.view());
    double J = 0;
    for (std::size_t i = 0; i < Y.size(); ++i) J += static_cast<double>(Y.data()[i]) * G.data()[i];
    return J;
  };

  lin.zero_grad();
  DenseMatrix Y(n, out), dX(n, in);
  lin.forward(X.cview(), Y.view());
  lin.backward(G.cview(), dX.view());

  const real_t eps = 1e-2f;
  // Weight gradient spot checks.
  for (const auto& [r, c] : std::vector<std::pair<std::size_t, std::size_t>>{{0, 0}, {2, 1}, {3, 2}}) {
    real_t& w = lin.weight().at(r, c);
    const real_t save = w;
    w = save + eps;
    const double jp = objective();
    w = save - eps;
    const double jm = objective();
    w = save;
    EXPECT_NEAR(lin.weight_grad().at(r, c), (jp - jm) / (2 * eps), 2e-2)
        << "dW[" << r << "][" << c << "]";
  }
  // Bias gradient.
  for (std::size_t c = 0; c < out; ++c) {
    real_t& b = lin.bias().at(0, c);
    const real_t save = b;
    b = save + eps;
    const double jp = objective();
    b = save - eps;
    const double jm = objective();
    b = save;
    EXPECT_NEAR(lin.bias_grad().at(0, c), (jp - jm) / (2 * eps), 2e-2);
  }
}

TEST(Linear, InputGradient) {
  Rng rng(6);
  const std::size_t n = 5, in = 3, out = 4;
  Linear lin(in, out, rng);
  DenseMatrix X = random_matrix(n, in, rng);
  const DenseMatrix G = random_matrix(n, out, rng);
  DenseMatrix Y(n, out), dX(n, in);
  lin.forward(X.cview(), Y.view());
  lin.zero_grad();
  lin.backward(G.cview(), dX.view());

  const real_t eps = 1e-2f;
  real_t& x = X.at(1, 2);
  const real_t save = x;
  auto objective = [&]() {
    DenseMatrix Y2(n, out);
    lin.forward(X.cview(), Y2.view());
    double J = 0;
    for (std::size_t i = 0; i < Y2.size(); ++i)
      J += static_cast<double>(Y2.data()[i]) * G.data()[i];
    return J;
  };
  x = save + eps;
  const double jp = objective();
  x = save - eps;
  const double jm = objective();
  x = save;
  EXPECT_NEAR(dX.at(1, 2), (jp - jm) / (2 * eps), 2e-2);
}

TEST(Relu, ForwardBackward) {
  DenseMatrix X(1, 4);
  X.at(0, 0) = -1;
  X.at(0, 1) = 2;
  X.at(0, 2) = 0;
  X.at(0, 3) = 5;
  Relu relu;
  DenseMatrix Y(1, 4);
  relu.forward(X.cview(), Y.view());
  EXPECT_FLOAT_EQ(Y.at(0, 0), 0);
  EXPECT_FLOAT_EQ(Y.at(0, 1), 2);
  EXPECT_FLOAT_EQ(Y.at(0, 3), 5);

  DenseMatrix dY(1, 4, 1.0f), dX(1, 4);
  relu.backward(dY.cview(), dX.view());
  EXPECT_FLOAT_EQ(dX.at(0, 0), 0);
  EXPECT_FLOAT_EQ(dX.at(0, 1), 1);
  EXPECT_FLOAT_EQ(dX.at(0, 2), 0);  // x == 0 gives zero gradient
}

TEST(Dropout, EvalIsIdentityTrainScales) {
  Rng rng(7);
  DenseMatrix X(1, 1000, 2.0f);
  Dropout drop(0.5f);
  DenseMatrix Y(1, 1000);
  drop.forward(X.cview(), Y.view(), /*training=*/false, rng);
  for (std::size_t i = 0; i < Y.size(); ++i) EXPECT_FLOAT_EQ(Y.data()[i], 2.0f);

  drop.forward(X.cview(), Y.view(), /*training=*/true, rng);
  int zeros = 0;
  double sum = 0;
  for (std::size_t i = 0; i < Y.size(); ++i) {
    if (Y.data()[i] == 0)
      ++zeros;
    else
      EXPECT_FLOAT_EQ(Y.data()[i], 4.0f);  // 2 / (1 - 0.5)
    sum += Y.data()[i];
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 1000.0, 0.5, 0.08);
  EXPECT_NEAR(sum / 1000.0, 2.0, 0.3);  // expectation preserved
}

TEST(Loss, UniformLogitsGiveLogC) {
  DenseMatrix logits(4, 8, 0.0f);
  std::vector<int> labels{0, 1, 2, 3};
  std::vector<std::uint8_t> mask{1, 1, 1, 1};
  SoftmaxCrossEntropy loss;
  EXPECT_NEAR(loss.forward(logits.cview(), labels, mask), std::log(8.0), 1e-5);
}

TEST(Loss, MaskExcludesRows) {
  DenseMatrix logits(2, 3, 0.0f);
  logits.at(0, 0) = 100.0f;  // confident & correct
  std::vector<int> labels{0, 2};
  std::vector<std::uint8_t> mask{1, 0};
  SoftmaxCrossEntropy loss;
  EXPECT_NEAR(loss.forward(logits.cview(), labels, mask), 0.0, 1e-5);
  DenseMatrix d(2, 3);
  loss.backward(d.view());
  for (std::size_t j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(d.at(1, j), 0.0f);
}

TEST(Loss, GradientMatchesFiniteDifference) {
  Rng rng(8);
  DenseMatrix logits = random_matrix(3, 5, rng);
  std::vector<int> labels{1, 4, 0};
  std::vector<std::uint8_t> mask{1, 1, 0};
  SoftmaxCrossEntropy loss;
  loss.forward(logits.cview(), labels, mask);
  DenseMatrix d(3, 5);
  loss.backward(d.view());

  const real_t eps = 1e-2f;
  for (const auto& [r, c] : std::vector<std::pair<std::size_t, std::size_t>>{{0, 1}, {1, 2}, {0, 4}}) {
    const real_t save = logits.at(r, c);
    logits.at(r, c) = save + eps;
    const double jp = loss.forward(logits.cview(), labels, mask);
    logits.at(r, c) = save - eps;
    const double jm = loss.forward(logits.cview(), labels, mask);
    logits.at(r, c) = save;
    loss.forward(logits.cview(), labels, mask);  // restore cache
    EXPECT_NEAR(d.at(r, c), (jp - jm) / (2 * eps), 1e-3);
  }
}

TEST(Loss, GlobalNormalizationDividesByGivenCount) {
  DenseMatrix logits(2, 4, 0.0f);
  std::vector<int> labels{0, 1};
  std::vector<std::uint8_t> mask{1, 1};
  SoftmaxCrossEntropy loss;
  const double local = loss.forward(logits.cview(), labels, mask);
  const double global = loss.forward(logits.cview(), labels, mask, /*normalization=*/8);
  EXPECT_NEAR(global, local * 2.0 / 8.0, 1e-9);
}

TEST(Sgd, StepMovesAgainstGradient) {
  std::vector<real_t> w{1.0f}, g{2.0f};
  ParamRef p{w.data(), g.data(), 1};
  Sgd sgd(0.1);
  sgd.step(std::span<ParamRef>(&p, 1));
  EXPECT_FLOAT_EQ(w[0], 1.0f - 0.1f * 2.0f);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  std::vector<real_t> w{1.0f}, g{0.0f};
  ParamRef p{w.data(), g.data(), 1};
  Sgd sgd(0.1, 0.0, 0.5);
  sgd.step(std::span<ParamRef>(&p, 1));
  EXPECT_FLOAT_EQ(w[0], 1.0f - 0.1f * 0.5f);
}

TEST(Sgd, MomentumAccumulates) {
  std::vector<real_t> w{0.0f}, g{1.0f};
  ParamRef p{w.data(), g.data(), 1};
  Sgd sgd(1.0, 0.9);
  sgd.step(std::span<ParamRef>(&p, 1));  // v=1, w=-1
  sgd.step(std::span<ParamRef>(&p, 1));  // v=1.9, w=-2.9
  EXPECT_NEAR(w[0], -2.9f, 1e-5);
}

TEST(Adam, ConvergesOnQuadratic) {
  // minimize (w - 3)^2; gradient = 2(w - 3).
  std::vector<real_t> w{0.0f}, g{0.0f};
  ParamRef p{w.data(), g.data(), 1};
  Adam adam(0.1);
  for (int i = 0; i < 500; ++i) {
    g[0] = 2.0f * (w[0] - 3.0f);
    adam.step(std::span<ParamRef>(&p, 1));
  }
  EXPECT_NEAR(w[0], 3.0f, 0.05f);
}

TEST(Metrics, CountsCorrectPredictions) {
  DenseMatrix logits(3, 2, 0.0f);
  logits.at(0, 1) = 1.0f;  // pred 1
  logits.at(1, 0) = 1.0f;  // pred 0
  logits.at(2, 1) = 1.0f;  // pred 1, masked out
  std::vector<int> labels{1, 1, 0};
  std::vector<std::uint8_t> mask{1, 1, 0};
  const AccuracyCount c = masked_accuracy(logits.cview(), labels, mask);
  EXPECT_EQ(c.total, 2);
  EXPECT_EQ(c.correct, 1);
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.5);
}

// Full GraphSAGE layer gradient check: J = sum(Y * G) through
// forward_from_aggregate with a hand-built aggregate.
TEST(GraphSageLayer, EndToEndGradientCheck) {
  Rng rng(9);
  const std::size_t n = 4, in = 3, out = 2;
  GraphSageLayer layer(in, out, /*apply_relu=*/true, rng);
  DenseMatrix H = random_matrix(n, in, rng);
  DenseMatrix agg = random_matrix(n, in, rng);
  DenseMatrix inv_norm(n, 1);
  for (std::size_t v = 0; v < n; ++v) inv_norm.at(v, 0) = 1.0f / static_cast<real_t>(v + 2);
  const DenseMatrix G = random_matrix(n, out, rng);

  auto objective = [&]() {
    DenseMatrix Y(n, out);
    layer.forward_from_aggregate(H.cview(), agg.cview(), inv_norm.cview(), Y.view());
    double J = 0;
    for (std::size_t i = 0; i < Y.size(); ++i) J += static_cast<double>(Y.data()[i]) * G.data()[i];
    return J;
  };

  DenseMatrix Y(n, out), dscaled(n, in);
  layer.forward_from_aggregate(H.cview(), agg.cview(), inv_norm.cview(), Y.view());
  layer.zero_grad();
  layer.backward_to_scaled(G.cview(), dscaled.view());

  // dJ/d agg[v][j] == dscaled[v][j] (the aggregate path is scaled identity).
  const real_t eps = 1e-2f;
  for (const auto& [r, c] : std::vector<std::pair<std::size_t, std::size_t>>{{0, 0}, {3, 2}, {1, 1}}) {
    const real_t save = agg.at(r, c);
    agg.at(r, c) = save + eps;
    const double jp = objective();
    agg.at(r, c) = save - eps;
    const double jm = objective();
    agg.at(r, c) = save;
    EXPECT_NEAR(dscaled.at(r, c), (jp - jm) / (2 * eps), 2e-2);
  }

  // Weight gradient through the combined path.
  objective();  // refresh caches at the unperturbed point
  layer.zero_grad();
  layer.backward_to_scaled(G.cview(), dscaled.view());
  real_t& w = layer.linear().weight().at(1, 1);
  const real_t save = w;
  w = save + eps;
  const double jp = objective();
  w = save - eps;
  const double jm = objective();
  w = save;
  EXPECT_NEAR(layer.linear().weight_grad().at(1, 1), (jp - jm) / (2 * eps), 2e-2);
}

}  // namespace
}  // namespace distgnn
