#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "graph/csr.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/graph_io.hpp"
#include "graph/stats.hpp"

namespace distgnn {
namespace {

EdgeList small_graph() {
  // 0->1, 0->2, 1->2, 3->2, 2->0
  EdgeList el;
  el.num_vertices = 4;
  el.add(0, 1);
  el.add(0, 2);
  el.add(1, 2);
  el.add(3, 2);
  el.add(2, 0);
  return el;
}

TEST(Csr, InAdjacencyRowsAreDestinations) {
  const CsrMatrix csr = CsrMatrix::from_coo(small_graph());
  EXPECT_EQ(csr.num_rows(), 4);
  EXPECT_EQ(csr.num_entries(), 5);
  // In-neighbours of vertex 2 are {0, 1, 3}.
  const auto nbrs = csr.neighbors(2);
  std::multiset<vid_t> got(nbrs.begin(), nbrs.end());
  EXPECT_EQ(got, (std::multiset<vid_t>{0, 1, 3}));
  EXPECT_EQ(csr.degree(2), 3);
  EXPECT_EQ(csr.degree(3), 0);
}

TEST(Csr, EdgeIdsPointBackToCoo) {
  const EdgeList el = small_graph();
  const CsrMatrix csr = CsrMatrix::from_coo(el);
  for (vid_t v = 0; v < csr.num_rows(); ++v) {
    const auto nbrs = csr.neighbors(v);
    const auto eids = csr.edge_ids(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const Edge& e = el.edges[static_cast<std::size_t>(eids[i])];
      EXPECT_EQ(e.dst, v);
      EXPECT_EQ(e.src, nbrs[i]);
    }
  }
}

TEST(Csr, TransposeMatchesOutAdjacency) {
  const EdgeList el = small_graph();
  const CsrMatrix in = CsrMatrix::from_coo(el);
  const CsrMatrix out_direct = CsrMatrix::transpose_from_coo(el);
  const CsrMatrix out_via_t = in.transposed();
  for (vid_t v = 0; v < in.num_rows(); ++v) {
    const auto a = out_direct.neighbors(v);
    const auto b = out_via_t.neighbors(v);
    EXPECT_EQ(std::multiset<vid_t>(a.begin(), a.end()), std::multiset<vid_t>(b.begin(), b.end()))
        << "row " << v;
  }
}

TEST(Csr, RejectsOutOfRangeEndpoints) {
  EdgeList el;
  el.num_vertices = 2;
  el.add(0, 5);
  EXPECT_THROW(CsrMatrix::from_coo(el), std::out_of_range);
}

class CsrBlockTest : public ::testing::TestWithParam<int> {};

TEST_P(CsrBlockTest, ColumnBlocksPartitionEntries) {
  const int num_blocks = GetParam();
  const EdgeList el = generate_rmat({.num_vertices = 256, .num_edges = 2048, .seed = 5});
  const CsrMatrix csr = CsrMatrix::from_coo(el);
  const auto blocks = csr.column_blocks(num_blocks);
  ASSERT_EQ(static_cast<int>(blocks.size()), num_blocks);

  const vid_t block_size = (csr.num_rows() + num_blocks - 1) / num_blocks;
  eid_t total = 0;
  std::map<vid_t, std::multiset<vid_t>> merged;
  for (int b = 0; b < num_blocks; ++b) {
    total += blocks[b].num_entries();
    for (vid_t v = 0; v < blocks[b].num_rows(); ++v) {
      for (const vid_t u : blocks[b].neighbors(v)) {
        EXPECT_EQ(u / block_size, b) << "entry in wrong block";
        merged[v].insert(u);
      }
    }
  }
  EXPECT_EQ(total, csr.num_entries());
  for (vid_t v = 0; v < csr.num_rows(); ++v) {
    const auto nbrs = csr.neighbors(v);
    EXPECT_EQ(merged[v], std::multiset<vid_t>(nbrs.begin(), nbrs.end())) << "row " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(BlockCounts, CsrBlockTest, ::testing::Values(1, 2, 3, 4, 8, 16, 64));

TEST(EdgeList, SymmetrizeDoublesEdges) {
  EdgeList el = small_graph();
  const std::size_t before = el.edges.size();
  el.symmetrize();
  EXPECT_EQ(el.edges.size(), 2 * before);
  EXPECT_EQ(el.edges[before].src, el.edges[0].dst);
  EXPECT_EQ(el.edges[before].dst, el.edges[0].src);
}

TEST(Generators, RmatRespectsBounds) {
  const RmatParams p{.num_vertices = 300, .num_edges = 5000, .seed = 3};
  const EdgeList el = generate_rmat(p);
  EXPECT_EQ(el.edges.size(), 10000u);  // symmetrized
  for (const Edge& e : el.edges) {
    EXPECT_GE(e.src, 0);
    EXPECT_LT(e.src, 300);
    EXPECT_GE(e.dst, 0);
    EXPECT_LT(e.dst, 300);
    EXPECT_NE(e.src, e.dst);
  }
}

TEST(Generators, RmatDeterministicPerSeed) {
  const RmatParams p{.num_vertices = 128, .num_edges = 500, .seed = 9};
  const EdgeList a = generate_rmat(p);
  const EdgeList b = generate_rmat(p);
  EXPECT_EQ(a.edges, b.edges);
}

TEST(Generators, RmatIsMoreSkewedThanErdos) {
  const Graph rmat(generate_rmat({.num_vertices = 4096, .num_edges = 32768, .a = 0.6, .seed = 1}));
  const Graph er(generate_erdos_renyi(4096, 32768, 1));
  EXPECT_GT(in_degree_stats(rmat).gini, in_degree_stats(er).gini + 0.1);
}

TEST(Generators, PowerLawHeavyTail) {
  const Graph g(generate_power_law(4096, 16.0, 2.1, 7));
  const DegreeStats s = in_degree_stats(g);
  EXPECT_GT(s.max, 20 * static_cast<eid_t>(s.mean));  // hubs exist
  EXPECT_NEAR(s.mean, 16.0, 2.0);
}

TEST(Generators, SbmIsAssortative) {
  SbmParams p;
  p.num_vertices = 2048;
  p.num_blocks = 8;
  p.avg_degree = 20;
  p.in_out_ratio = 8.0;
  const SbmGraph g = generate_sbm(p);
  eid_t intra = 0;
  for (const Edge& e : g.edges.edges)
    if (g.block_of[static_cast<std::size_t>(e.src)] == g.block_of[static_cast<std::size_t>(e.dst)])
      ++intra;
  const double frac = static_cast<double>(intra) / static_cast<double>(g.edges.edges.size());
  // With ratio 8 over 8 blocks, p_intra = 8/(8+7) ~ 0.53 plus random intra hits.
  EXPECT_GT(frac, 0.45);
}

TEST(Datasets, RegistryHasTableTwoEntries) {
  const auto& reg = dataset_registry();
  ASSERT_EQ(reg.size(), 5u);
  EXPECT_NO_THROW(dataset_spec("reddit-sim"));
  EXPECT_NO_THROW(dataset_spec("ogbn-products-sim"));
  EXPECT_NO_THROW(dataset_spec("proteins-sim"));
  EXPECT_NO_THROW(dataset_spec("ogbn-papers-sim"));
  EXPECT_NO_THROW(dataset_spec("am-sim"));
  EXPECT_THROW(dataset_spec("nope"), std::out_of_range);
  // Paper-side statistics preserved for reporting.
  EXPECT_EQ(dataset_spec("ogbn-papers-sim").paper_vertices, 111'059'956);
}

TEST(Datasets, MakeDatasetShapesConsistent) {
  const Dataset ds = make_dataset("am-sim", 0.25);
  EXPECT_GT(ds.num_vertices(), 0);
  EXPECT_EQ(ds.features.rows(), static_cast<std::size_t>(ds.num_vertices()));
  EXPECT_EQ(ds.labels.size(), static_cast<std::size_t>(ds.num_vertices()));
  EXPECT_EQ(ds.train_mask.size(), ds.labels.size());
  for (const int label : ds.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, ds.num_classes);
  }
  // Masks partition the vertex set.
  for (std::size_t v = 0; v < ds.labels.size(); ++v)
    EXPECT_EQ(ds.train_mask[v] + ds.val_mask[v] + ds.test_mask[v], 1);
}

TEST(Datasets, ScaleChangesSize) {
  const Dataset small = make_dataset("am-sim", 0.1);
  const Dataset large = make_dataset("am-sim", 0.5);
  EXPECT_LT(small.num_vertices(), large.num_vertices());
  EXPECT_NEAR(small.graph.avg_degree(), large.graph.avg_degree(), 2.0);
}

TEST(Datasets, LearnableSbmFeaturesCorrelateWithLabels) {
  LearnableSbmParams p;
  p.num_vertices = 512;
  p.num_classes = 4;
  p.feature_dim = 16;
  p.feature_noise = 0.5f;
  const Dataset ds = make_learnable_sbm(p);
  // Per-class feature means should be farther apart than the noise.
  DenseMatrix mean(4, 16, 0);
  std::vector<int> count(4, 0);
  for (std::size_t v = 0; v < 512; ++v) {
    const int c = ds.labels[v];
    ++count[static_cast<std::size_t>(c)];
    for (int j = 0; j < 16; ++j)
      mean.at(static_cast<std::size_t>(c), static_cast<std::size_t>(j)) += ds.features.at(v, static_cast<std::size_t>(j));
  }
  for (int c = 0; c < 4; ++c)
    for (int j = 0; j < 16; ++j)
      mean.at(static_cast<std::size_t>(c), static_cast<std::size_t>(j)) /= static_cast<real_t>(count[static_cast<std::size_t>(c)]);
  double min_dist = 1e30;
  for (int a = 0; a < 4; ++a)
    for (int b = a + 1; b < 4; ++b) {
      double d2 = 0;
      for (int j = 0; j < 16; ++j) {
        const double d = mean.at(static_cast<std::size_t>(a), static_cast<std::size_t>(j)) -
                         mean.at(static_cast<std::size_t>(b), static_cast<std::size_t>(j));
        d2 += d * d;
      }
      min_dist = std::min(min_dist, d2);
    }
  EXPECT_GT(min_dist, 1.0);
}

TEST(GraphIo, BinaryRoundTrip) {
  const EdgeList el = small_graph();
  const std::string path = ::testing::TempDir() + "/graph.bin";
  save_edge_list_binary(el, path);
  const EdgeList back = load_edge_list_binary(path);
  EXPECT_EQ(back.num_vertices, el.num_vertices);
  EXPECT_EQ(back.edges, el.edges);
  std::remove(path.c_str());
}

TEST(GraphIo, TextRoundTrip) {
  const EdgeList el = small_graph();
  const std::string path = ::testing::TempDir() + "/graph.txt";
  save_edge_list_text(el, path);
  const EdgeList back = load_edge_list_text(path);
  EXPECT_EQ(back.num_vertices, el.num_vertices);
  EXPECT_EQ(back.edges, el.edges);
  std::remove(path.c_str());
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(load_edge_list_binary("/nonexistent/x.bin"), std::runtime_error);
  EXPECT_THROW(load_edge_list_text("/nonexistent/x.txt"), std::runtime_error);
}

TEST(Stats, DegreeHistogramCountsAllVertices) {
  const Graph g(small_graph());
  const auto hist = degree_histogram_log2(g);
  eid_t total = 0;
  for (const eid_t c : hist) total += c;
  EXPECT_EQ(total, g.num_vertices());
}

TEST(Stats, MeanDegreeMatchesGraph) {
  const Graph g(generate_erdos_renyi(1000, 8000, 2));
  EXPECT_NEAR(in_degree_stats(g).mean, g.avg_degree(), 1e-9);
}

}  // namespace
}  // namespace distgnn
