#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "nn/serialize.hpp"
#include "util/rng.hpp"

namespace distgnn {
namespace {

TEST(ConnectedComponents, FindsIslands) {
  EdgeList el;
  el.num_vertices = 7;
  el.add(0, 1);
  el.add(1, 2);
  el.add(3, 4);
  // 5 and 6 are isolated singletons.
  const Graph g(el);
  const Components c = connected_components(g);
  EXPECT_EQ(c.num_components, 4);
  EXPECT_EQ(c.component_of[0], c.component_of[2]);
  EXPECT_EQ(c.component_of[3], c.component_of[4]);
  EXPECT_NE(c.component_of[0], c.component_of[3]);
  EXPECT_NE(c.component_of[5], c.component_of[6]);
  vid_t total = 0;
  for (const vid_t s : c.sizes) total += s;
  EXPECT_EQ(total, 7);
}

TEST(ConnectedComponents, DirectionIgnored) {
  EdgeList el;
  el.num_vertices = 3;
  el.add(2, 0);  // only one direction
  el.add(1, 0);
  const Components c = connected_components(Graph(el));
  EXPECT_EQ(c.num_components, 1);
}

TEST(BfsDistances, HopCountsAndUnreachable) {
  EdgeList el;
  el.num_vertices = 5;
  el.add(0, 1);
  el.add(1, 2);
  el.add(2, 3);
  // 4 unreachable from 0.
  const Graph g(el);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], 2);
  EXPECT_EQ(dist[3], 3);
  EXPECT_EQ(dist[4], -1);
}

TEST(BfsDistances, TakesShortestPath) {
  EdgeList el;
  el.num_vertices = 4;
  el.add(0, 1);
  el.add(1, 3);
  el.add(0, 3);  // shortcut
  const auto dist = bfs_distances(Graph(el), 0);
  EXPECT_EQ(dist[3], 1);
}

TEST(InducedSubgraph, KeepsOnlyInternalEdges) {
  EdgeList el;
  el.num_vertices = 5;
  el.add(0, 1);
  el.add(1, 2);
  el.add(2, 3);
  el.add(3, 4);
  const Graph g(el);
  const InducedSubgraph sub = induced_subgraph(g, {1, 2, 4});
  EXPECT_EQ(sub.edges.num_vertices, 3);
  ASSERT_EQ(sub.edges.edges.size(), 1u);  // only 1->2 survives
  EXPECT_EQ(sub.global_ids[static_cast<std::size_t>(sub.edges.edges[0].src)], 1);
  EXPECT_EQ(sub.global_ids[static_cast<std::size_t>(sub.edges.edges[0].dst)], 2);
}

TEST(CoreNumbers, CliquePlusTail) {
  // 4-clique (core 3 with both directions counting: here we add single
  // directions, so undirected degree within the clique is 3) plus a pendant.
  EdgeList el;
  el.num_vertices = 5;
  for (vid_t a = 0; a < 4; ++a)
    for (vid_t b = a + 1; b < 4; ++b) el.add(a, b);
  el.add(0, 4);  // pendant vertex
  const auto core = core_numbers(Graph(el));
  EXPECT_EQ(core[4], 1);
  for (vid_t v = 0; v < 4; ++v) EXPECT_EQ(core[v], 3) << "clique vertex " << v;
}

TEST(CoreNumbers, PathGraphIsOneCore) {
  EdgeList el;
  el.num_vertices = 6;
  for (vid_t v = 0; v + 1 < 6; ++v) el.add(v, v + 1);
  const auto core = core_numbers(Graph(el));
  for (const vid_t c : core) EXPECT_EQ(c, 1);
}

TEST(CoreNumbers, MonotoneUnderDensification) {
  const Graph sparse(generate_erdos_renyi(256, 512, 1));
  const Graph dense(generate_erdos_renyi(256, 4096, 1));
  const auto cs = core_numbers(sparse);
  const auto cd = core_numbers(dense);
  const double mean_sparse =
      static_cast<double>(std::accumulate(cs.begin(), cs.end(), vid_t{0})) / 256.0;
  const double mean_dense =
      static_cast<double>(std::accumulate(cd.begin(), cd.end(), vid_t{0})) / 256.0;
  EXPECT_GT(mean_dense, mean_sparse);
}

// ---- checkpointing ----

TEST(Checkpoint, RoundTripsParameters) {
  Rng rng(1);
  std::vector<real_t> a(37), b(5), ga(37), gb(5);
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  const std::vector<real_t> a0 = a, b0 = b;
  std::vector<ParamRef> params{{a.data(), ga.data(), a.size()}, {b.data(), gb.data(), b.size()}};

  const std::string path = ::testing::TempDir() + "/model.ckpt";
  save_checkpoint(params, path);
  for (auto& v : a) v = 0;
  for (auto& v : b) v = 0;
  load_checkpoint(params, path);
  EXPECT_EQ(a, a0);
  EXPECT_EQ(b, b0);

  const auto shape = checkpoint_shape(path);
  EXPECT_EQ(shape, (std::vector<std::size_t>{37, 5}));
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsShapeMismatch) {
  std::vector<real_t> a(4), ga(4);
  std::vector<ParamRef> params{{a.data(), ga.data(), a.size()}};
  const std::string path = ::testing::TempDir() + "/model2.ckpt";
  save_checkpoint(params, path);

  std::vector<real_t> wrong(5), gw(5);
  std::vector<ParamRef> wrong_params{{wrong.data(), gw.data(), wrong.size()}};
  EXPECT_THROW(load_checkpoint(wrong_params, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileThrows) {
  std::vector<ParamRef> params;
  EXPECT_THROW(load_checkpoint(params, "/nonexistent/m.ckpt"), std::runtime_error);
  EXPECT_THROW(checkpoint_shape("/nonexistent/m.ckpt"), std::runtime_error);
}

}  // namespace
}  // namespace distgnn
