#include <gtest/gtest.h>

#include <cmath>

#include "core/memory_model.hpp"
#include "core/single_socket_trainer.hpp"
#include "core/work_model.hpp"
#include "graph/datasets.hpp"

namespace distgnn {
namespace {

Dataset learnable(vid_t n = 1024, int classes = 4, float noise = 0.8f, std::uint64_t seed = 11) {
  LearnableSbmParams p;
  p.num_vertices = n;
  p.num_classes = classes;
  p.avg_degree = 12;
  p.feature_dim = 16;
  p.feature_noise = noise;
  p.seed = seed;
  return make_learnable_sbm(p);
}

TrainConfig small_config() {
  TrainConfig cfg;
  cfg.num_layers = 2;
  cfg.hidden_dim = 32;
  cfg.lr = 0.2;
  cfg.epochs = 30;
  return cfg;
}

TEST(SingleSocket, LossDecreases) {
  const Dataset ds = learnable();
  SingleSocketTrainer trainer(ds, small_config());
  const double first = trainer.train_epoch().loss;
  double last = first;
  for (int e = 0; e < 25; ++e) last = trainer.train_epoch().loss;
  EXPECT_LT(last, 0.5 * first);
}

TEST(SingleSocket, LearnsSbmAboveChance) {
  const Dataset ds = learnable(1024, 4, 0.5f);
  SingleSocketTrainer trainer(ds, small_config());
  for (int e = 0; e < 40; ++e) trainer.train_epoch();
  EXPECT_GT(trainer.evaluate(ds.test_mask), 0.7);  // chance 0.25
}

TEST(SingleSocket, BaselineAndOptimizedApAgree) {
  // Same seed, same data: the loss trajectory must match closely; the AP
  // implementations only differ in summation order.
  const Dataset ds = learnable(512, 4, 0.8f, 21);
  TrainConfig cfg = small_config();
  cfg.epochs = 5;

  cfg.ap_mode = ApMode::kOptimized;
  SingleSocketTrainer opt(ds, cfg);
  cfg.ap_mode = ApMode::kBaseline;
  SingleSocketTrainer base(ds, cfg);
  for (int e = 0; e < 5; ++e) {
    const double lo = opt.train_epoch().loss;
    const double lb = base.train_epoch().loss;
    EXPECT_NEAR(lo, lb, 1e-3 * std::max(1.0, std::abs(lb))) << "epoch " << e;
  }
}

TEST(SingleSocket, DeterministicForSeed) {
  const Dataset ds = learnable(512, 4, 0.8f, 22);
  const TrainConfig cfg = small_config();
  SingleSocketTrainer a(ds, cfg), b(ds, cfg);
  for (int e = 0; e < 3; ++e) EXPECT_DOUBLE_EQ(a.train_epoch().loss, b.train_epoch().loss);
}

TEST(SingleSocket, PhaseTimesSumBelowTotal) {
  const Dataset ds = learnable(512);
  SingleSocketTrainer trainer(ds, small_config());
  const EpochStats stats = trainer.train_epoch();
  EXPECT_GT(stats.ap_seconds, 0.0);
  EXPECT_GT(stats.mlp_seconds, 0.0);
  EXPECT_LE(stats.ap_seconds + stats.mlp_seconds, stats.total_seconds * 1.05);
}

TEST(SingleSocket, ExplicitBlockCountHonored) {
  const Dataset ds = learnable(512);
  TrainConfig cfg = small_config();
  cfg.num_blocks = 7;
  SingleSocketTrainer trainer(ds, cfg);
  EXPECT_EQ(trainer.effective_num_blocks(), 7);
}

// ---- Table 7 / 8 work model, validated against the paper's own numbers ----

TEST(WorkModel, Table7PaperNumbers) {
  // Table 7 rows: hop-2 (233,692 vertices, deg 5, 100 feats), hop-1 (30,214,
  // deg 10, 256), hop-0 (2,000, deg 15, 256).
  const std::vector<HopWork> hops{
      {"Hop-2", 233'692, 5, 100},
      {"Hop-1", 30'214, 10, 256},
      {"Hop-0", 2'000, 15, 256},
  };
  EXPECT_NEAR(hops[0].giga_ops(), 0.116, 0.002);
  EXPECT_NEAR(hops[1].giga_ops(), 0.077, 0.002);
  EXPECT_NEAR(hops[2].giga_ops(), 0.007, 0.001);

  // 196,615 training vertices, batch 2000 -> 99 batches on one socket.
  const MiniBatchWork single = minibatch_work(hops, 196'615, 2'000, 1);
  EXPECT_EQ(single.batches_per_socket, 99);
  EXPECT_NEAR(single.socket_ops / 1e9, 19.98, 0.3);

  const MiniBatchWork sixteen = minibatch_work(hops, 196'615, 2'000, 16);
  EXPECT_EQ(sixteen.batches_per_socket, 7);
  EXPECT_NEAR(sixteen.socket_ops / 1e9, 1.41, 0.05);
}

TEST(WorkModel, Table8PaperNumbers) {
  // Full batch on OGBN-Products: 2,449,029 vertices, avg degree 51.5,
  // feats {100, 256, 256}.
  const FullBatchWork one = fullbatch_work(2'449'029, 51.5, {100, 256, 256});
  EXPECT_NEAR(one.socket_ops / 1e9, 77.19, 0.5);
  ASSERT_EQ(one.hops.size(), 3u);
  EXPECT_NEAR(one.hops[0].giga_ops(), 12.61, 0.1);
  EXPECT_NEAR(one.hops[1].giga_ops(), 32.29, 0.1);

  const FullBatchWork sixteen = fullbatch_work(596'499, 51.5, {100, 256, 256});
  EXPECT_NEAR(sixteen.socket_ops / 1e9, 18.80, 0.2);
}

TEST(WorkModel, FullBatchDoesMoreWorkThanMiniBatch) {
  // The paper's ~4x-13x observation.
  const std::vector<HopWork> hops{
      {"Hop-2", 233'692, 5, 100}, {"Hop-1", 30'214, 10, 256}, {"Hop-0", 2'000, 15, 256}};
  const double mini = minibatch_work(hops, 196'615, 2'000, 1).socket_ops;
  const double full = fullbatch_work(2'449'029, 51.5, {100, 256, 256}).socket_ops;
  EXPECT_GT(full / mini, 3.0);
  EXPECT_LT(full / mini, 5.0);
}

// ---- Table 6 memory model ----

TEST(MemoryModel, AlgorithmOrderingMatchesPaper) {
  MemoryModelInput in;
  in.partition_vertices = 3'470'623;  // papers at 32 partitions
  in.split_vertices = static_cast<std::int64_t>(0.90 * 3'470'623);
  in.delay = 5;
  const double zc = estimate_memory_0c(in).total_gb;
  const double cd0 = estimate_memory_cd0(in).total_gb;
  const double cdr = estimate_memory_cdr(in).total_gb;
  // Paper Table 6: 0c < cd-0 < cd-5 at every partition count.
  EXPECT_LT(zc, cd0);
  EXPECT_LT(cd0, cdr);
  // cd-5 is roughly 1.5-1.6x cd-0 in the paper.
  EXPECT_GT(cdr / cd0, 1.2);
  EXPECT_LT(cdr / cd0, 2.2);
}

TEST(MemoryModel, MemoryShrinksWithMorePartitions) {
  MemoryModelInput big, small;
  big.partition_vertices = 3'470'623;   // 32 partitions
  big.split_vertices = static_cast<std::int64_t>(0.90 * big.partition_vertices);
  small.partition_vertices = 867'656;   // 128 partitions
  small.split_vertices = static_cast<std::int64_t>(0.93 * small.partition_vertices);
  EXPECT_GT(estimate_memory_cd0(big).total_gb, estimate_memory_cd0(small).total_gb);
  EXPECT_GT(estimate_memory_cdr(big).total_gb, estimate_memory_cdr(small).total_gb);
}

}  // namespace
}  // namespace distgnn
