#include <atomic>
namespace distgnn {
std::atomic<int> g_count{0};
void bump() { g_count.fetch_add(1, std::memory_order_relaxed); }  // finding
}  // namespace distgnn
