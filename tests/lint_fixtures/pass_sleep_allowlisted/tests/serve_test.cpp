// Fixture: serve_test.cpp is on the audited sleep allowlist (bounded polls).
#include <chrono>
#include <thread>
TEST(Serve, Polls) {
  std::this_thread::sleep_for(std::chrono::microseconds(50));  // allowlisted
}
