#include <chrono>
#include <thread>
TEST(Widget, Waits) {
  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // finding
}
