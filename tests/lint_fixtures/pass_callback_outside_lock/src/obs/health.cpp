// Fixture: the sanctioned shape — copy the callback under the lock, invoke
// it after the guard's scope closes.
#include "util/sync.hpp"
namespace distgnn::obs {
struct Monitor {
  util::Mutex mutex_;
  void (*callback)(int) = nullptr;
  void tick() {
    void (*cb)(int) = nullptr;
    {
      util::MutexLock lock(mutex_);
      cb = callback;
    }
    if (cb) cb(42);  // ok: guard scope already closed
  }
};
}  // namespace distgnn::obs
