// Fixture: the one file allowed to name the raw std primitives.
#pragma once
#include <mutex>
namespace distgnn::util {
class Mutex {
  std::mutex m_;  // allowlisted: this is src/util/sync.hpp
};
}  // namespace distgnn::util
