// Fixture: idiomatic guarded state. Mentions of std::mutex in comments or
// "std::mutex in strings" must not trip the lexer-based rules.
#include "util/sync.hpp"
namespace distgnn {
struct Widget {
  util::Mutex mutex_;
  int value_ = 0;  // GUARDED_BY(mutex_)
};
const char* kDoc = "never write std::mutex outside util/sync.hpp";
}  // namespace distgnn
