#include <mutex>
namespace distgnn {
struct Widget {
  std::mutex mutex_;  // finding: raw primitive outside util/sync.hpp
  int value_ = 0;
};
}  // namespace distgnn
