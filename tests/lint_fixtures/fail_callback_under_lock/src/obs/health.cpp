// Fixture: the re-entrancy hazard the rule exists for — a user callback
// fired while the monitor's guard is still live.
#include "util/sync.hpp"
namespace distgnn::obs {
struct Monitor {
  util::Mutex mutex_;
  void (*callback)(int) = nullptr;
  void tick() {
    util::MutexLock lock(mutex_);
    if (callback) callback(42);  // finding: invoked inside the guard scope
  }
};
}  // namespace distgnn::obs
