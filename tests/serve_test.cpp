#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "graph/datasets.hpp"
#include "partition/libra.hpp"
#include "serve/feature_cache.hpp"
#include "serve/inference_server.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/request_queue.hpp"
#include "serve/sharded_server.hpp"
#include "serve/traffic_gen.hpp"

namespace distgnn {
namespace {

using namespace distgnn::serve;

Dataset make_serving_dataset() {
  LearnableSbmParams params;
  params.num_vertices = 512;
  params.num_classes = 4;
  params.avg_degree = 8;
  params.feature_dim = 16;
  params.seed = 5;
  return make_learnable_sbm(params);
}

ModelSpec sage_spec(const Dataset& dataset) {
  ModelSpec spec;
  spec.kind = ModelKind::kSage;
  spec.feature_dim = dataset.feature_dim();
  spec.hidden_dim = 16;
  spec.num_classes = dataset.num_classes;
  spec.num_layers = 2;
  return spec;
}

/// Reference: run one request through the snapshot exactly as a server does.
std::vector<real_t> reference_logits(const Dataset& dataset, const ModelSnapshot& snapshot,
                                     vid_t vertex, std::span<const int> fanouts,
                                     std::uint64_t sample_seed) {
  Rng rng = request_rng(sample_seed, vertex);
  const vid_t seed[1] = {vertex};
  const MiniBatch mb = sample_minibatch(dataset.graph.in_csr(), seed, fanouts, rng);
  const std::size_t f = static_cast<std::size_t>(dataset.feature_dim());
  DenseMatrix inputs(mb.input_vertices.size(), f);
  for (std::size_t i = 0; i < mb.input_vertices.size(); ++i) {
    const real_t* src = dataset.features.row(static_cast<std::size_t>(mb.input_vertices[i]));
    std::copy(src, src + f, inputs.row(i));
  }
  ForwardScratch scratch;
  DenseMatrix logits;
  const MiniBatch batch[1] = {mb};
  snapshot.forward_batch(batch, inputs.cview(), scratch, logits);
  return {logits.row(0), logits.row(0) + logits.cols()};
}

// ---------------------------------------------------------------- snapshots

TEST(ModelSnapshot, CheckpointRoundTripServesIdentically) {
  const Dataset dataset = make_serving_dataset();
  const ModelSpec spec = sage_spec(dataset);
  const auto original = ModelSnapshot::random(spec, /*seed=*/11, /*version=*/1);

  const std::string path = ::testing::TempDir() + "distgnn_serve_snapshot.ckpt";
  original->save(path);
  const auto restored = ModelSnapshot::from_checkpoint(spec, path, /*version=*/2);
  std::remove(path.c_str());

  const std::vector<int> fanouts = {4, 4};
  for (const vid_t v : {vid_t{0}, vid_t{17}, vid_t{333}})
    EXPECT_EQ(reference_logits(dataset, *original, v, fanouts, 1),
              reference_logits(dataset, *restored, v, fanouts, 1));
}

TEST(ModelSnapshot, BatchedForwardIsBitwiseEqualToSingle) {
  const Dataset dataset = make_serving_dataset();
  for (const ModelKind kind : {ModelKind::kSage, ModelKind::kGat}) {
    ModelSpec spec = sage_spec(dataset);
    spec.kind = kind;
    const auto snapshot = ModelSnapshot::random(spec, /*seed=*/21, /*version=*/1);
    const std::vector<int> fanouts = {5, 5};
    const std::size_t f = static_cast<std::size_t>(dataset.feature_dim());

    // One stacked batch of 6 requests (with a duplicate vertex).
    const std::vector<vid_t> vertices = {3, 77, 180, 77, 409, 500};
    std::vector<MiniBatch> batch;
    std::size_t rows = 0;
    for (const vid_t v : vertices) {
      Rng rng = request_rng(/*sample_seed=*/1, v);
      const vid_t seed[1] = {v};
      batch.push_back(sample_minibatch(dataset.graph.in_csr(), seed, fanouts, rng));
      rows += batch.back().input_vertices.size();
    }
    DenseMatrix inputs(rows, f);
    std::size_t row = 0;
    for (const MiniBatch& mb : batch)
      for (const vid_t v : mb.input_vertices) {
        const real_t* src = dataset.features.row(static_cast<std::size_t>(v));
        std::copy(src, src + f, inputs.row(row++));
      }
    ForwardScratch scratch;
    DenseMatrix logits;
    snapshot->forward_batch(batch, inputs.cview(), scratch, logits);
    ASSERT_EQ(logits.rows(), vertices.size());

    for (std::size_t r = 0; r < vertices.size(); ++r) {
      const std::vector<real_t> single =
          reference_logits(dataset, *snapshot, vertices[r], fanouts, 1);
      ASSERT_EQ(single.size(), logits.cols());
      for (std::size_t j = 0; j < single.size(); ++j)
        EXPECT_EQ(logits.at(r, j), single[j])
            << (kind == ModelKind::kSage ? "sage" : "gat") << " request " << r << " class " << j;
    }
  }
}

// ------------------------------------------------------------ request queue

InferRequest make_request(std::uint64_t id) {
  InferRequest request;
  request.id = id;
  request.vertex = static_cast<vid_t>(id);
  request.enqueue = ServeClock::now();
  return request;
}

TEST(BoundedRequestQueue, BatchesAndBounds) {
  BoundedRequestQueue queue(4);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(queue.try_push(make_request(i)));
  EXPECT_FALSE(queue.try_push(make_request(9)));  // full -> reject

  auto batch = queue.pop_batch(3, std::chrono::microseconds(0));
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].id, 0u);
  EXPECT_EQ(batch[2].id, 2u);
  EXPECT_EQ(batch[0].priority, Priority::kHigh);  // default lane
  EXPECT_EQ(batch[0].deadline, ServeClock::time_point::max());

  queue.close();
  batch = queue.pop_batch(3, std::chrono::microseconds(0));
  ASSERT_EQ(batch.size(), 1u);  // drains the remainder after close
  EXPECT_EQ(batch[0].id, 3u);
  EXPECT_TRUE(queue.pop_batch(3, std::chrono::microseconds(0)).empty());
  EXPECT_FALSE(queue.try_push(make_request(10)));
}

TEST(BoundedRequestQueue, CloseWakesProducerBlockedInPush) {
  BoundedRequestQueue queue(1);
  ASSERT_TRUE(queue.push(make_request(0)));

  std::atomic<int> blocked_result{-1};
  std::thread producer([&] {
    // Queue is full, so this push must block until close() releases it.
    blocked_result.store(queue.push(make_request(1)) ? 1 : 0);
  });
  // Give the producer time to actually block on not_full_.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(blocked_result.load(), -1);

  queue.close();
  producer.join();
  EXPECT_EQ(blocked_result.load(), 0);  // push reports the closed queue

  // The request admitted before close still drains.
  auto batch = queue.pop_batch(4, std::chrono::microseconds(0));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].id, 0u);
  EXPECT_TRUE(queue.pop_batch(4, std::chrono::microseconds(0)).empty());
}

TEST(BoundedRequestQueue, ZeroCapacityAdmitsNothing) {
  BoundedRequestQueue queue(0);
  EXPECT_FALSE(queue.try_push(make_request(0)));

  std::thread producer([&] { EXPECT_FALSE(queue.push(make_request(1))); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();  // the only way a zero-capacity push ever returns
  producer.join();
  EXPECT_TRUE(queue.pop_batch(1, std::chrono::microseconds(0)).empty());
}

TEST(BoundedRequestQueue, OneCapacityAlternatesPushPop) {
  BoundedRequestQueue queue(1);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(queue.try_push(make_request(i)));
    EXPECT_FALSE(queue.try_push(make_request(99)));  // full at depth 1
    auto batch = queue.pop_batch(8, std::chrono::microseconds(0));
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].id, i);
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedRequestQueue, PopBatchDrainsRemainderAfterClose) {
  BoundedRequestQueue queue(8);
  for (std::uint64_t i = 0; i < 5; ++i) ASSERT_TRUE(queue.try_push(make_request(i)));
  queue.close();
  // Batches keep their size cap while draining a closed queue.
  EXPECT_EQ(queue.pop_batch(2, std::chrono::microseconds(0)).size(), 2u);
  EXPECT_EQ(queue.pop_batch(2, std::chrono::microseconds(0)).size(), 2u);
  auto last = queue.pop_batch(2, std::chrono::microseconds(0));
  ASSERT_EQ(last.size(), 1u);
  EXPECT_EQ(last[0].id, 4u);
  EXPECT_TRUE(queue.pop_batch(2, std::chrono::microseconds(0)).empty());
}

// ------------------------------------------------------------ feature cache

TEST(ShardedFeatureCache, HitMissAccountingMatchesCachesim) {
  ShardedFeatureCache cache(/*capacity_bytes=*/64 * 4 * sizeof(real_t), /*dim=*/4,
                            /*num_shards=*/2);
  std::vector<real_t> out(4);
  int fills = 0;
  const auto fill = [&](real_t* dst) {
    ++fills;
    for (int j = 0; j < 4; ++j) dst[j] = static_cast<real_t>(10 * fills + j);
  };

  EXPECT_FALSE(cache.get_or_fill(0, 42, out.data(), fill));
  EXPECT_EQ(out[0], 10.0f);
  EXPECT_TRUE(cache.get_or_fill(0, 42, out.data(), fill));
  EXPECT_EQ(out[0], 10.0f);  // served from cache, not refilled
  EXPECT_EQ(fills, 1);

  const CacheStats stats = cache.stats(0);
  EXPECT_EQ(stats.accesses, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits(), 1u);
  EXPECT_EQ(stats.bytes_read, 4 * sizeof(real_t));
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(ShardedFeatureCache, LookupInsertSplitPathMatchesGetOrFill) {
  ShardedFeatureCache cache(64 * 4 * sizeof(real_t), 4, 1);
  std::vector<real_t> out(4);
  EXPECT_FALSE(cache.lookup(1, 7, out.data()));  // access + miss
  const real_t row[4] = {1, 2, 3, 4};
  cache.insert(1, 7, row);  // fill traffic
  EXPECT_TRUE(cache.lookup(1, 7, out.data()));
  EXPECT_EQ(out[2], 3.0f);

  const CacheStats stats = cache.stats(1);
  EXPECT_EQ(stats.accesses, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.bytes_read, 4 * sizeof(real_t));
  // Space 1 only; space 0 untouched.
  EXPECT_EQ(cache.stats(0).accesses, 0u);
  EXPECT_EQ(cache.combined_stats().accesses, 2u);
}

TEST(ShardedFeatureCache, InvalidateDropsEntriesButKeepsStatistics) {
  ShardedFeatureCache cache(64 * 4 * sizeof(real_t), 4, 2);
  std::vector<real_t> out(4);
  const auto fill_const = [](real_t v) {
    return [v](real_t* dst) {
      for (int j = 0; j < 4; ++j) dst[j] = v;
    };
  };
  for (std::uint64_t k = 0; k < 8; ++k) cache.get_or_fill(0, k, out.data(), fill_const(1));
  for (std::uint64_t k = 0; k < 8; ++k) EXPECT_TRUE(cache.get_or_fill(0, k, out.data(), fill_const(9)));
  const CacheStats before = cache.stats(0);
  EXPECT_EQ(before.accesses, 16u);
  EXPECT_EQ(before.misses, 8u);

  cache.invalidate();

  // Statistics survive the flush; every previously-hot key misses again.
  EXPECT_EQ(cache.stats(0).accesses, before.accesses);
  EXPECT_EQ(cache.stats(0).misses, before.misses);
  for (std::uint64_t k = 0; k < 8; ++k) {
    EXPECT_FALSE(cache.lookup(0, k, out.data())) << "key " << k;
  }
  // And the cache keeps working after the flush (slots were recycled).
  EXPECT_FALSE(cache.get_or_fill(0, 3, out.data(), fill_const(7)));
  EXPECT_TRUE(cache.get_or_fill(0, 3, out.data(), fill_const(9)));
  EXPECT_EQ(out[0], 7.0f);
}

TEST(ShardedFeatureCache, InvalidateClearsEverySpace) {
  ShardedFeatureCache cache(64 * 4 * sizeof(real_t), 4, 1);
  const real_t row[4] = {1, 2, 3, 4};
  cache.insert(0, 5, row);
  cache.insert(1, 5, row);
  std::vector<real_t> out(4);
  ASSERT_TRUE(cache.lookup(0, 5, out.data()));
  ASSERT_TRUE(cache.lookup(1, 5, out.data()));
  cache.invalidate();
  EXPECT_FALSE(cache.lookup(0, 5, out.data()));
  EXPECT_FALSE(cache.lookup(1, 5, out.data()));
}

TEST(ShardedFeatureCache, EvictsLruWithinShard) {
  ShardedFeatureCache cache(/*capacity_bytes=*/2 * 4 * sizeof(real_t), /*dim=*/4,
                            /*num_shards=*/1);
  ASSERT_EQ(cache.capacity_entries(), 2u);
  std::vector<real_t> out(4);
  const auto fill_const = [](real_t v) {
    return [v](real_t* dst) {
      for (int j = 0; j < 4; ++j) dst[j] = v;
    };
  };
  cache.get_or_fill(0, 1, out.data(), fill_const(1));
  cache.get_or_fill(0, 2, out.data(), fill_const(2));
  cache.get_or_fill(0, 1, out.data(), fill_const(99));  // hit; 1 becomes MRU
  EXPECT_EQ(out[0], 1.0f);
  cache.get_or_fill(0, 3, out.data(), fill_const(3));   // evicts 2
  EXPECT_TRUE(cache.get_or_fill(0, 1, out.data(), fill_const(99)));
  EXPECT_FALSE(cache.get_or_fill(0, 2, out.data(), fill_const(2)));  // was evicted
}

// ----------------------------------------------------------------- serving

TEST(InferenceServer, MicroBatchedResultsEqualPerRequestResults) {
  const Dataset dataset = make_serving_dataset();
  const auto snapshot = ModelSnapshot::random(sage_spec(dataset), /*seed=*/31, /*version=*/1);

  ServeConfig single_cfg;
  single_cfg.num_workers = 1;
  single_cfg.max_batch = 1;
  single_cfg.fanouts = {5, 5};
  InferenceServer single(dataset, single_cfg);
  single.publish(snapshot);
  single.start();

  std::vector<vid_t> vertices;
  for (vid_t v = 0; v < 24; ++v) vertices.push_back((v * 37) % dataset.num_vertices());
  std::vector<std::vector<real_t>> expected;
  for (const vid_t v : vertices) expected.push_back(single.infer_sync(v).logits);
  single.stop();

  ServeConfig batched_cfg = single_cfg;
  batched_cfg.num_workers = 2;
  batched_cfg.max_batch = 8;
  batched_cfg.max_batch_delay = std::chrono::microseconds(2000);
  InferenceServer batched(dataset, batched_cfg);
  batched.publish(snapshot);

  // Queue everything before the workers exist so real micro-batches form.
  std::vector<std::vector<real_t>> got(vertices.size());
  std::atomic<int> remaining{static_cast<int>(vertices.size())};
  for (std::size_t i = 0; i < vertices.size(); ++i)
    ASSERT_TRUE(batched.submit(vertices[i], [&, i](InferResult&& r) {
      got[i] = std::move(r.logits);
      remaining.fetch_sub(1);
    }));
  batched.start();
  while (remaining.load() > 0) std::this_thread::yield();
  batched.stop();

  EXPECT_GT(batched.stats().max_batch_seen, 1u);
  EXPECT_LT(batched.stats().batches, vertices.size());
  for (std::size_t i = 0; i < vertices.size(); ++i)
    EXPECT_EQ(got[i], expected[i]) << "vertex " << vertices[i];
}

TEST(InferenceServer, RepeatQueriesHitTheFeatureCache) {
  const Dataset dataset = make_serving_dataset();
  const auto snapshot = ModelSnapshot::random(sage_spec(dataset), /*seed=*/31, /*version=*/1);
  ServeConfig cfg;
  cfg.num_workers = 1;
  cfg.max_batch = 1;
  cfg.fanouts = {5, 5};
  InferenceServer server(dataset, cfg);
  server.publish(snapshot);
  server.start();

  server.infer_sync(123);
  const CacheStats first = server.stats().feature_cache;
  EXPECT_GT(first.accesses, 0u);
  EXPECT_EQ(first.accesses, first.misses);  // cold cache: all misses

  // Identical request -> identical (deterministic) neighbourhood -> all hits.
  server.infer_sync(123);
  const CacheStats second = server.stats().feature_cache;
  EXPECT_EQ(second.misses, first.misses);
  EXPECT_EQ(second.accesses, 2 * first.accesses);
  EXPECT_EQ(second.bytes_read, second.misses * sizeof(real_t) *
                                   static_cast<std::uint64_t>(dataset.feature_dim()));
  server.stop();
  EXPECT_EQ(server.stats().completed, 2u);
}

TEST(InferenceServer, HotSwapUnderConcurrentLoadNeverServesTornModel) {
  const Dataset dataset = make_serving_dataset();
  const ModelSpec spec = sage_spec(dataset);
  const auto model_a = ModelSnapshot::random(spec, /*seed=*/100, /*version=*/1);
  const auto model_b = ModelSnapshot::random(spec, /*seed=*/200, /*version=*/2);

  ServeConfig cfg;
  cfg.num_workers = 2;
  cfg.max_batch = 4;
  cfg.fanouts = {4, 4};
  InferenceServer server(dataset, cfg);
  server.publish(model_a);
  server.start();

  const std::vector<vid_t> pool = {1, 50, 99, 200, 310, 444};
  std::vector<std::vector<real_t>> expect_a, expect_b;
  for (const vid_t v : pool) {
    expect_a.push_back(reference_logits(dataset, *model_a, v, cfg.fanouts, cfg.sample_seed));
    expect_b.push_back(reference_logits(dataset, *model_b, v, cfg.fanouts, cfg.sample_seed));
  }

  std::atomic<bool> swapping{true};
  std::thread publisher([&] {
    for (int i = 0; i < 50; ++i) {
      server.publish(i % 2 == 0 ? model_b : model_a);
      std::this_thread::yield();
    }
    swapping.store(false);
  });

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(static_cast<std::uint64_t>(c) + 7);
      for (int i = 0; i < 60; ++i) {
        const std::size_t pick = rng.next_below(pool.size());
        const InferResult result = server.infer_sync(pool[pick]);
        // Every answer must be exactly model A's or exactly model B's output
        // for this vertex, and must agree with the reported version.
        const bool is_a = result.logits == expect_a[pick];
        const bool is_b = result.logits == expect_b[pick];
        if (!((is_a && result.snapshot_version == 1) || (is_b && result.snapshot_version == 2)))
          mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  publisher.join();
  server.stop();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GE(server.stats().completed, 180u);
}

TEST(InferenceServer, ServesGatSnapshots) {
  const Dataset dataset = make_serving_dataset();
  ModelSpec spec = sage_spec(dataset);
  spec.kind = ModelKind::kGat;
  const auto snapshot = ModelSnapshot::random(spec, /*seed=*/5, /*version=*/7);
  ServeConfig cfg;
  cfg.num_workers = 1;
  cfg.max_batch = 2;
  cfg.fanouts = {4, 4};
  InferenceServer server(dataset, cfg);
  server.publish(snapshot);
  server.start();
  const InferResult result = server.infer_sync(42);
  server.stop();
  EXPECT_EQ(result.snapshot_version, 7u);
  EXPECT_EQ(result.logits, reference_logits(dataset, *snapshot, 42, cfg.fanouts, 1));
}

TEST(InferenceServer, RestartsAfterStop) {
  const Dataset dataset = make_serving_dataset();
  const auto snapshot = ModelSnapshot::random(sage_spec(dataset), /*seed=*/31, /*version=*/1);
  ServeConfig cfg;
  cfg.num_workers = 1;
  cfg.max_batch = 2;
  cfg.fanouts = {4, 4};
  InferenceServer server(dataset, cfg);
  server.publish(snapshot);
  server.start();
  const InferResult before = server.infer_sync(7);
  server.stop();
  server.start();  // must reopen the queue, not serve from a dead pool
  const InferResult after = server.infer_sync(7);
  server.stop();
  EXPECT_EQ(before.logits, after.logits);
  EXPECT_EQ(server.stats().completed, 2u);
}

TEST(InferenceServer, ValidatesConfigurationAndInput) {
  const Dataset dataset = make_serving_dataset();
  ServeConfig cfg;
  cfg.fanouts = {4, 4, 4};  // 3 hops vs 2-layer model
  InferenceServer server(dataset, cfg);
  EXPECT_THROW(server.publish(ModelSnapshot::random(sage_spec(dataset), 1, 1)),
               std::invalid_argument);
  EXPECT_THROW(server.start(), std::logic_error);  // nothing published
  EXPECT_THROW(server.submit(dataset.num_vertices(), nullptr), std::out_of_range);
}

// ----------------------------------------------------------------- sharded

TEST(ShardedServing, TwoRanksMatchSingleProcessBitwise) {
  const Dataset dataset = make_serving_dataset();
  const auto snapshot = ModelSnapshot::random(sage_spec(dataset), /*seed=*/77, /*version=*/3);
  const std::vector<int> fanouts = {5, 5};

  std::vector<vid_t> requests;
  Rng rng(13);
  for (int i = 0; i < 40; ++i)
    requests.push_back(static_cast<vid_t>(rng.next_below(
        static_cast<std::uint64_t>(dataset.num_vertices()))));

  // Single-process expectation.
  ServeConfig cfg;
  cfg.num_workers = 1;
  cfg.max_batch = 4;
  cfg.fanouts = fanouts;
  InferenceServer server(dataset, cfg);
  server.publish(snapshot);
  server.start();
  std::vector<std::vector<real_t>> expected;
  for (const vid_t v : requests) expected.push_back(server.infer_sync(v).logits);
  server.stop();

  const EdgePartition partition = partition_libra(dataset.graph.coo(), /*num_parts=*/2);
  ShardedServeConfig sharded_cfg;
  sharded_cfg.max_batch = 4;
  sharded_cfg.fanouts = fanouts;
  ShardedServer sharded(dataset, partition, sharded_cfg);
  sharded.publish(snapshot);
  sharded.start();
  std::vector<InferResult> results(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i)
    ASSERT_TRUE(sharded.submit(requests[i],
                               [&results, i](InferResult&& r) { results[i] = std::move(r); }));
  sharded.drain();
  const BackendStats stats = sharded.stats();
  sharded.stop();

  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(results[i].vertex, requests[i]);
    EXPECT_EQ(results[i].logits, expected[i]) << "request " << i;
  }
  // The vertex-cut really split the workload and the halo path really ran.
  ASSERT_EQ(stats.children.size(), 2u);
  EXPECT_GT(stats.children[0].completed, 0u);
  EXPECT_GT(stats.children[1].completed, 0u);
  EXPECT_GT(stats.halo_rows_fetched, 0u);
}

TEST(ShardedServing, PrefetchMatchesSynchronousBitwiseAndWaits) {
  const Dataset dataset = make_serving_dataset();
  const auto snapshot = ModelSnapshot::random(sage_spec(dataset), /*seed=*/77, /*version=*/3);

  std::vector<vid_t> requests;
  Rng rng(29);
  for (int i = 0; i < 48; ++i)
    requests.push_back(static_cast<vid_t>(rng.next_below(
        static_cast<std::uint64_t>(dataset.num_vertices()))));

  const EdgePartition partition = partition_libra(dataset.graph.coo(), /*num_parts=*/2);
  ShardedServeConfig cfg;
  cfg.max_batch = 4;
  cfg.fanouts = {5, 5};

  // One long-lived server per depth (the deprecated serve_sharded wrapper is
  // gone from the test surface); results aligned by request index.
  const auto run_at_depth = [&](int depth) {
    ShardedServeConfig at = cfg;
    at.prefetch_depth = depth;
    ShardedServer server(dataset, partition, at);
    server.publish(snapshot);
    server.start();
    std::vector<InferResult> results(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      while (!server.submit(requests[i],
                            [&results, i](InferResult&& r) { results[i] = std::move(r); }))
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    server.drain();
    const BackendStats stats = server.stats();
    server.stop();
    return std::pair{std::move(results), stats};
  };
  const auto [sync_results, sync_stats] = run_at_depth(1);
  const auto [pre_results, pre_stats] = run_at_depth(2);  // classic double buffer

  ASSERT_EQ(pre_results.size(), sync_results.size());
  for (std::size_t i = 0; i < requests.size(); ++i)
    EXPECT_EQ(pre_results[i].logits, sync_results[i].logits) << "request " << i;

  // Both modes crossed rank boundaries and both report the wait metric the
  // overlap bench compares (wall-clock inequality itself is asserted in
  // bench_embed_cache, not here — unit tests stay timing-agnostic).
  EXPECT_GT(sync_stats.halo_rows_fetched, 0u);
  EXPECT_GT(pre_stats.halo_rows_fetched, 0u);
  EXPECT_GT(sync_stats.mean_halo_wait_per_batch(), 0.0);
  EXPECT_GE(pre_stats.mean_halo_wait_per_batch(), 0.0);
}

TEST(ShardedServing, OwnerMapCoversEveryVertexExactlyOnce) {
  const Dataset dataset = make_serving_dataset();
  const EdgePartition partition = partition_libra(dataset.graph.coo(), 2);
  const std::vector<part_t> owners =
      vertex_owners(dataset.graph.coo(), partition, dataset.num_vertices());
  ASSERT_EQ(owners.size(), static_cast<std::size_t>(dataset.num_vertices()));
  for (const part_t p : owners) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 2);
  }
}

// ------------------------------------------------------------- traffic gen

TEST(TrafficGen, PoissonArrivalsAreAscendingAndDeterministic) {
  ArrivalConfig cfg;
  cfg.process = ArrivalProcess::kPoisson;
  cfg.rate = 500;
  const auto a = generate_arrivals(cfg, 1000);
  const auto b = generate_arrivals(cfg, 1000);
  ASSERT_EQ(a.size(), 1000u);
  EXPECT_EQ(a, b);
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_GE(a[i], a[i - 1]);
  // 1000 arrivals at 500/s ~ 2s of traffic (loose 3x bounds).
  EXPECT_GT(a.back(), 2.0 / 3.0);
  EXPECT_LT(a.back(), 6.0);
}

TEST(TrafficGen, MmppIsOverdispersedRelativeToPoisson) {
  ArrivalConfig poisson;
  poisson.process = ArrivalProcess::kPoisson;
  poisson.rate = 1000;
  ArrivalConfig mmpp;
  mmpp.process = ArrivalProcess::kMmpp;  // defaults: 250/s vs 4000/s states
  const auto pa = generate_arrivals(poisson, 20000);
  const auto ma = generate_arrivals(mmpp, 20000);

  const double pd = index_of_dispersion(pa, 0.020);
  const double md = index_of_dispersion(ma, 0.020);
  EXPECT_GT(pd, 0.6);
  EXPECT_LT(pd, 1.5);   // Poisson: variance ~ mean
  EXPECT_GT(md, 1.5);   // MMPP: bursty by construction
  EXPECT_GT(md, pd);
}

TEST(TrafficGen, LatencyRecorderQuantilesAreOrdered) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.record(i * 1e-3);
  EXPECT_EQ(rec.count(), 100u);
  EXPECT_NEAR(rec.quantile(0.5), 0.050, 0.002);
  EXPECT_LE(rec.quantile(0.5), rec.quantile(0.95));
  EXPECT_LE(rec.quantile(0.95), rec.quantile(0.99));
  EXPECT_FALSE(rec.histogram().empty());
}

TEST(TrafficGen, ClosedAndOpenLoopDriveTheServer) {
  const Dataset dataset = make_serving_dataset();
  const auto snapshot = ModelSnapshot::random(sage_spec(dataset), /*seed=*/31, /*version=*/1);
  ServeConfig cfg;
  cfg.num_workers = 2;
  cfg.max_batch = 8;
  cfg.fanouts = {4, 4};
  InferenceServer server(dataset, cfg);
  server.publish(snapshot);
  server.start();

  TrafficGenerator traffic(server, /*seed=*/3);
  const LoadReport closed = traffic.run_closed_loop(/*num_clients=*/2, /*requests_each=*/20);
  EXPECT_EQ(closed.completed, 40u);
  EXPECT_GT(closed.qps, 0.0);
  EXPECT_LE(closed.p50_ms, closed.p99_ms);

  ArrivalConfig arrivals;
  arrivals.process = ArrivalProcess::kMmpp;
  const LoadReport open = traffic.run_open_loop(arrivals, 100);
  EXPECT_EQ(open.completed + open.rejected, 100u);
  EXPECT_GT(open.completed, 0u);
  EXPECT_GT(open.qps, 0.0);
  server.stop();

  const std::string table = render_load_reports(std::vector<LoadReport>{closed, open}, "loads");
  EXPECT_NE(table.find("QPS"), std::string::npos);
  EXPECT_NE(table.find("p99"), std::string::npos);
}

// -------------------------------------------------------------- publish hook

TEST(SnapshotHolder, PublishHookMayReenterTheHolderWithoutDeadlock) {
  // The hook runs OUTSIDE the holder lock (model_snapshot.cpp pins that by
  // construction); this test pins the consequence: a hook that triggers
  // invalidation and reads the holder back — get(), num_publishes(), even
  // re-registering itself, the pattern a cache wired to graph epochs uses —
  // must neither deadlock nor observe a pre-publish snapshot.
  const Dataset dataset = make_serving_dataset();
  const ModelSpec spec = sage_spec(dataset);
  SnapshotHolder holder;

  std::atomic<int> hook_runs{0};
  std::atomic<std::uint64_t> seen_version{0};
  std::atomic<bool> concurrent{false};
  std::function<void(std::uint64_t)> hook = [&](std::uint64_t version) {
    hook_runs.fetch_add(1);
    // Re-enter the holder from inside the hook: the new snapshot must
    // already be visible (publish-before-hook ordering). Version equality
    // only holds while publishes are sequential — under the concurrent
    // section below a racing publish may already have superseded ours.
    const auto current = holder.get();
    ASSERT_NE(current, nullptr);
    if (!concurrent.load()) EXPECT_EQ(current->version(), version);
    seen_version.store(version);
    EXPECT_GT(holder.num_publishes(), 0u);
    holder.set_on_publish(hook);  // re-registration from the hook itself
  };
  holder.set_on_publish(hook);

  holder.publish(ModelSnapshot::random(spec, /*seed=*/3, /*version=*/10));
  EXPECT_EQ(hook_runs.load(), 1);
  EXPECT_EQ(seen_version.load(), 10u);
  holder.publish(ModelSnapshot::random(spec, /*seed=*/4, /*version=*/11));
  EXPECT_EQ(hook_runs.load(), 2);  // the re-registered hook fired, once
  EXPECT_EQ(seen_version.load(), 11u);

  // Concurrent publishers with a re-entrant hook: no deadlock, every publish
  // counted, the final snapshot is one of the published versions.
  concurrent.store(true);
  std::vector<std::thread> publishers;
  for (int t = 0; t < 4; ++t)
    publishers.emplace_back([&, t] {
      for (int i = 0; i < 8; ++i)
        holder.publish(ModelSnapshot::random(spec, /*seed=*/10 + t,
                                             /*version=*/100 + static_cast<std::uint64_t>(t)));
    });
  for (std::thread& t : publishers) t.join();
  EXPECT_EQ(holder.num_publishes(), 2u + 32u);
  EXPECT_EQ(hook_runs.load(), 2 + 32);
  EXPECT_GE(holder.get()->version(), 100u);
}

}  // namespace
}  // namespace distgnn
