#include <gtest/gtest.h>

#include "cachesim/lru_cache.hpp"

namespace distgnn {
namespace {

constexpr int kSpace = 0;

TEST(LruCache, MissThenHit) {
  LruCache cache(4 * 64, 64);  // 4 objects
  EXPECT_FALSE(cache.access(kSpace, 1, false));
  EXPECT_TRUE(cache.access(kSpace, 1, false));
  EXPECT_EQ(cache.stats(kSpace).accesses, 2u);
  EXPECT_EQ(cache.stats(kSpace).misses, 1u);
  EXPECT_EQ(cache.stats(kSpace).bytes_read, 64u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache cache(2 * 64, 64);  // 2 objects
  cache.access(kSpace, 1, false);
  cache.access(kSpace, 2, false);
  cache.access(kSpace, 1, false);  // 1 is now MRU
  cache.access(kSpace, 3, false);  // evicts 2
  EXPECT_TRUE(cache.access(kSpace, 1, false));
  EXPECT_FALSE(cache.access(kSpace, 2, false));
}

TEST(LruCache, DirtyEvictionChargesWriteback) {
  LruCache cache(1 * 64, 64);
  cache.access(kSpace, 1, true);   // dirty
  cache.access(kSpace, 2, false);  // evicts 1 -> writeback
  EXPECT_EQ(cache.stats(kSpace).bytes_written, 64u);
}

TEST(LruCache, CleanEvictionWritesNothing) {
  LruCache cache(1 * 64, 64);
  cache.access(kSpace, 1, false);
  cache.access(kSpace, 2, false);
  EXPECT_EQ(cache.stats(kSpace).bytes_written, 0u);
}

TEST(LruCache, FlushWritesDirtyObjects) {
  LruCache cache(8 * 64, 64);
  cache.access(kSpace, 1, true);
  cache.access(kSpace, 2, true);
  cache.access(kSpace, 3, false);
  cache.flush();
  EXPECT_EQ(cache.stats(kSpace).bytes_written, 2 * 64u);
  // Everything gone after flush.
  EXPECT_FALSE(cache.access(kSpace, 1, false));
}

TEST(LruCache, WriteHitMarksDirty) {
  LruCache cache(8 * 64, 64);
  cache.access(kSpace, 1, false);  // clean fill
  cache.access(kSpace, 1, true);   // hit, becomes dirty
  cache.flush();
  EXPECT_EQ(cache.stats(kSpace).bytes_written, 64u);
}

TEST(LruCache, SpacesShareCapacityButNotStats) {
  LruCache cache(2 * 64, 64);
  cache.access(0, 1, false);
  cache.access(1, 1, false);  // distinct object (different space)
  cache.access(0, 2, false);  // evicts space-0 key 1 (LRU)
  EXPECT_FALSE(cache.access(0, 1, false));
  EXPECT_EQ(cache.stats(1).accesses, 1u);
  EXPECT_EQ(cache.stats(0).accesses, 3u);
}

TEST(LruCache, ReuseMetric) {
  LruCache cache(16 * 64, 64);
  for (int pass = 0; pass < 5; ++pass)
    for (std::uint64_t k = 0; k < 8; ++k) cache.access(kSpace, k, false);
  // 8 misses, 40 accesses -> reuse 5.
  EXPECT_DOUBLE_EQ(cache.stats(kSpace).reuse(), 5.0);
  EXPECT_DOUBLE_EQ(cache.stats(kSpace).hit_rate(), 32.0 / 40.0);
}

TEST(LruCache, ThrashingWorkingSetHasNoReuse) {
  LruCache cache(4 * 64, 64);
  for (int pass = 0; pass < 5; ++pass)
    for (std::uint64_t k = 0; k < 64; ++k) cache.access(kSpace, k, false);
  // Working set 16x capacity with sequential sweeps: every access misses.
  EXPECT_DOUBLE_EQ(cache.stats(kSpace).reuse(), 1.0);
}

TEST(LruCache, ResetClearsEverything) {
  LruCache cache(4 * 64, 64);
  cache.access(kSpace, 1, true);
  cache.reset();
  EXPECT_EQ(cache.stats(kSpace).accesses, 0u);
  EXPECT_EQ(cache.combined_stats().bytes_read, 0u);
}

TEST(LruCache, CombinedStatsSumSpaces) {
  LruCache cache(8 * 64, 64);
  cache.access(0, 1, false);
  cache.access(1, 2, false);
  cache.access(1, 2, false);
  const CacheStats all = cache.combined_stats();
  EXPECT_EQ(all.accesses, 3u);
  EXPECT_EQ(all.misses, 2u);
}

TEST(LruCache, CapacityAtLeastOneObject) {
  LruCache cache(10, 64);  // capacity smaller than one object
  EXPECT_EQ(cache.capacity_objects(), 1u);
  cache.access(kSpace, 1, false);
  cache.access(kSpace, 2, false);
  EXPECT_EQ(cache.stats(kSpace).misses, 2u);
}

}  // namespace
}  // namespace distgnn
