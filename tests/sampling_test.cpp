#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "sampling/distributed_sampled_trainer.hpp"
#include "sampling/minibatch.hpp"
#include "sampling/neighbor_sampler.hpp"
#include "sampling/sampled_trainer.hpp"

namespace distgnn {
namespace {

TEST(NeighborSampler, TakesAllWhenDegreeSmall) {
  EdgeList el;
  el.num_vertices = 5;
  el.add(1, 0);
  el.add(2, 0);
  const CsrMatrix csr = CsrMatrix::from_coo(el);
  Rng rng(1);
  std::vector<vid_t> out;
  sample_neighbors(csr, 0, 10, rng, out);
  EXPECT_EQ(std::multiset<vid_t>(out.begin(), out.end()), (std::multiset<vid_t>{1, 2}));
}

TEST(NeighborSampler, RespectsFanoutAndDistinct) {
  EdgeList el;
  el.num_vertices = 64;
  for (vid_t u = 1; u < 64; ++u) el.add(u, 0);
  const CsrMatrix csr = CsrMatrix::from_coo(el);
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<vid_t> out;
    sample_neighbors(csr, 0, 8, rng, out);
    EXPECT_EQ(out.size(), 8u);
    EXPECT_EQ(std::set<vid_t>(out.begin(), out.end()).size(), 8u);  // distinct
    for (const vid_t u : out) {
      EXPECT_GE(u, 1);
      EXPECT_LT(u, 64);
    }
  }
}

TEST(NeighborSampler, CoversAllNeighborsOverTrials) {
  EdgeList el;
  el.num_vertices = 16;
  for (vid_t u = 1; u < 16; ++u) el.add(u, 0);
  const CsrMatrix csr = CsrMatrix::from_coo(el);
  Rng rng(3);
  std::set<vid_t> seen;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<vid_t> out;
    sample_neighbors(csr, 0, 3, rng, out);
    seen.insert(out.begin(), out.end());
  }
  EXPECT_EQ(seen.size(), 15u);
}

TEST(MiniBatch, BlocksHaveDstPrefixInvariant) {
  const EdgeList el = generate_rmat({.num_vertices = 512, .num_edges = 4096, .seed = 5});
  const CsrMatrix csr = CsrMatrix::from_coo(el);
  Rng rng(7);
  const std::vector<vid_t> seeds{1, 5, 9, 100};
  const std::vector<int> fanouts{4, 3};  // two layers
  const MiniBatch mb = sample_minibatch(csr, seeds, fanouts, rng);

  ASSERT_EQ(mb.blocks.size(), 2u);
  // Output block's dst == seeds.
  EXPECT_EQ(mb.blocks.back().num_dst, static_cast<vid_t>(seeds.size()));
  // Each block: num_dst <= num_src, col indices in range.
  for (const SampledBlock& b : mb.blocks) {
    EXPECT_LE(b.num_dst, b.num_src);
    for (const vid_t c : b.col) {
      EXPECT_GE(c, 0);
      EXPECT_LT(c, b.num_src);
    }
    // Degrees bounded by fanout is checked per block below.
  }
  // Input-most block feeds from input_vertices.
  EXPECT_EQ(mb.blocks.front().num_src, static_cast<vid_t>(mb.input_vertices.size()));
  // Chaining: block l's num_src == block l-1... (dst of deeper equals src of shallower)
  EXPECT_EQ(mb.blocks[0].num_dst, mb.blocks[1].num_src);
}

TEST(MiniBatch, FanoutBoundsSampledDegrees) {
  const EdgeList el = generate_rmat({.num_vertices = 512, .num_edges = 16384, .seed = 6});
  const CsrMatrix csr = CsrMatrix::from_coo(el);
  Rng rng(8);
  const std::vector<vid_t> seeds{0, 1, 2};
  const std::vector<int> fanouts{5, 10, 15};
  const MiniBatch mb = sample_minibatch(csr, seeds, fanouts, rng);
  ASSERT_EQ(mb.blocks.size(), 3u);
  for (std::size_t l = 0; l < 3; ++l) {
    const SampledBlock& b = mb.blocks[l];
    for (vid_t v = 0; v < b.num_dst; ++v)
      EXPECT_LE(static_cast<int>(b.neighbors(v).size()), fanouts[l]) << "layer " << l;
  }
  EXPECT_GT(mb.total_sampled_edges(), 0);
}

TEST(MiniBatch, MakeBatchesCoversAllVertices) {
  std::vector<vid_t> vertices(103);
  for (std::size_t i = 0; i < vertices.size(); ++i) vertices[i] = static_cast<vid_t>(i);
  Rng rng(9);
  const auto batches = make_batches(vertices, 25, rng);
  EXPECT_EQ(batches.size(), 5u);  // 25*4 + 3
  std::set<vid_t> seen;
  for (const auto& b : batches) seen.insert(b.begin(), b.end());
  EXPECT_EQ(seen.size(), 103u);
  EXPECT_EQ(batches.back().size(), 3u);
}

TEST(SampledTrainer, LossDecreasesOnLearnableData) {
  LearnableSbmParams p;
  p.num_vertices = 1024;
  p.num_classes = 4;
  p.avg_degree = 12;
  p.feature_dim = 16;
  p.feature_noise = 0.8f;
  const Dataset ds = make_learnable_sbm(p);

  SampledTrainConfig cfg;
  cfg.fanouts = {5, 5};
  cfg.batch_size = 128;
  cfg.hidden_dim = 32;
  cfg.lr = 0.2;
  SampledSageTrainer trainer(ds, cfg);
  const double first = trainer.train_epoch().loss;
  double last = first;
  for (int e = 0; e < 8; ++e) last = trainer.train_epoch().loss;
  EXPECT_LT(last, 0.7 * first);
}

TEST(SampledTrainer, EvalAccuracyBeatsChance) {
  LearnableSbmParams p;
  p.num_vertices = 1024;
  p.num_classes = 4;
  p.avg_degree = 12;
  p.feature_dim = 16;
  p.feature_noise = 0.5f;
  const Dataset ds = make_learnable_sbm(p);

  SampledTrainConfig cfg;
  cfg.fanouts = {5, 5};
  cfg.batch_size = 128;
  cfg.hidden_dim = 32;
  cfg.lr = 0.2;
  SampledSageTrainer trainer(ds, cfg);
  for (int e = 0; e < 12; ++e) trainer.train_epoch();
  EXPECT_GT(trainer.evaluate(ds.test_mask), 0.6);  // chance = 0.25
}

TEST(SampledTrainer, RestrictedShardTrainsOnSubsetOnly) {
  LearnableSbmParams p;
  p.num_vertices = 512;
  p.num_classes = 2;
  p.feature_dim = 8;
  const Dataset ds = make_learnable_sbm(p);
  SampledTrainConfig cfg;
  cfg.fanouts = {3, 3};
  cfg.batch_size = 16;
  cfg.hidden_dim = 8;
  SampledSageTrainer trainer(ds, cfg);
  trainer.restrict_train_vertices({0, 1, 2, 3, 4, 5, 6, 7});
  const SampledEpochStats stats = trainer.train_epoch();
  EXPECT_EQ(stats.num_batches, 1);  // 8 vertices / batch 16 -> one batch
}

TEST(DistributedSampled, ConvergesAndBeatsChance) {
  LearnableSbmParams p;
  p.num_vertices = 1024;
  p.num_classes = 4;
  p.avg_degree = 12;
  p.feature_dim = 16;
  p.feature_noise = 0.5f;
  const Dataset ds = make_learnable_sbm(p);

  SampledTrainConfig cfg;
  cfg.fanouts = {5, 5};
  cfg.batch_size = 64;
  cfg.hidden_dim = 32;
  cfg.lr = 0.2;
  const DistSampledResult result =
      train_distributed_sampled(ds, cfg, /*num_ranks=*/4, /*epochs=*/10, /*threads_per_rank=*/1);
  EXPECT_GT(result.test_accuracy, 0.6);  // chance 0.25
  EXPECT_GT(result.sampled_edges_per_epoch, 0);
  EXPECT_GT(result.mean_epoch_seconds, 0.0);
}

TEST(DistributedSampled, SingleRankMatchesLocalTrainerShape) {
  LearnableSbmParams p;
  p.num_vertices = 512;
  p.num_classes = 2;
  p.feature_dim = 8;
  const Dataset ds = make_learnable_sbm(p);
  SampledTrainConfig cfg;
  cfg.fanouts = {3, 3};
  cfg.batch_size = 64;
  cfg.hidden_dim = 8;
  const DistSampledResult result = train_distributed_sampled(ds, cfg, 1, 3, 1);
  EXPECT_TRUE(std::isfinite(result.final_loss));
  EXPECT_GT(result.mean_epoch_seconds, 0.0);
}

TEST(SampledTrainer, ReportsWorkCounters) {
  LearnableSbmParams p;
  p.num_vertices = 256;
  p.num_classes = 2;
  p.feature_dim = 8;
  const Dataset ds = make_learnable_sbm(p);
  SampledTrainConfig cfg;
  cfg.fanouts = {3, 3};
  cfg.batch_size = 64;
  cfg.hidden_dim = 8;
  SampledSageTrainer trainer(ds, cfg);
  const SampledEpochStats stats = trainer.train_epoch();
  EXPECT_GT(stats.num_batches, 0);
  EXPECT_GT(stats.sampled_edges, 0);
  EXPECT_GT(stats.seconds, 0.0);
}

}  // namespace
}  // namespace distgnn
