#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "comm/world.hpp"

namespace distgnn {
namespace {

TEST(World, RunsAllRanks) {
  std::atomic<int> count{0};
  World::launch(4, [&](Communicator& comm) {
    EXPECT_EQ(comm.size(), 4);
    EXPECT_GE(comm.rank(), 0);
    EXPECT_LT(comm.rank(), 4);
    ++count;
  });
  EXPECT_EQ(count.load(), 4);
}

TEST(World, SingleRankWorks) {
  World::launch(1, [](Communicator& comm) {
    std::vector<real_t> v{1, 2, 3};
    comm.allreduce_sum(std::span<real_t>(v));
    EXPECT_EQ(v[0], 1);
    comm.barrier();
  });
}

TEST(World, RethrowsRankExceptions) {
  EXPECT_THROW(World::launch(3,
                             [](Communicator& comm) {
                               if (comm.rank() == 1) throw std::runtime_error("rank failure");
                             }),
               std::runtime_error);
}

TEST(World, RejectsZeroRanks) { EXPECT_THROW(World(0), std::invalid_argument); }

class AllreduceTest : public ::testing::TestWithParam<int> {};

TEST_P(AllreduceTest, SumAcrossRanks) {
  const int ranks = GetParam();
  World::launch(ranks, [&](Communicator& comm) {
    std::vector<real_t> data(257);
    for (std::size_t i = 0; i < data.size(); ++i)
      data[i] = static_cast<real_t>(comm.rank() + 1) * static_cast<real_t>(i);
    comm.allreduce_sum(std::span<real_t>(data));
    const real_t rank_sum = static_cast<real_t>(ranks * (ranks + 1)) / 2.0f;
    for (std::size_t i = 0; i < data.size(); ++i)
      ASSERT_FLOAT_EQ(data[i], rank_sum * static_cast<real_t>(i)) << "i=" << i;
  });
}

TEST_P(AllreduceTest, MaxAcrossRanks) {
  const int ranks = GetParam();
  World::launch(ranks, [&](Communicator& comm) {
    std::vector<real_t> data{static_cast<real_t>(comm.rank()), -static_cast<real_t>(comm.rank())};
    comm.allreduce_max(std::span<real_t>(data));
    EXPECT_FLOAT_EQ(data[0], static_cast<real_t>(ranks - 1));
    EXPECT_FLOAT_EQ(data[1], 0.0f);
  });
}

TEST_P(AllreduceTest, RepeatedCollectivesStayConsistent) {
  const int ranks = GetParam();
  World::launch(ranks, [&](Communicator& comm) {
    for (int iter = 0; iter < 20; ++iter) {
      std::vector<double> data{1.0};
      comm.allreduce_sum(std::span<double>(data));
      ASSERT_DOUBLE_EQ(data[0], static_cast<double>(ranks)) << "iteration " << iter;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, AllreduceTest, ::testing::Values(1, 2, 3, 5, 8));

TEST(Comm, BroadcastFromEveryRoot) {
  World::launch(4, [](Communicator& comm) {
    for (int root = 0; root < 4; ++root) {
      std::vector<real_t> data(16, comm.rank() == root ? 7.5f : 0.0f);
      comm.broadcast(std::span<real_t>(data), root);
      for (const real_t v : data) ASSERT_FLOAT_EQ(v, 7.5f);
    }
  });
}

TEST(Comm, AllgatherCollectsRankValues) {
  World::launch(5, [](Communicator& comm) {
    const auto got = comm.allgather(comm.rank() * 10);
    ASSERT_EQ(got.size(), 5u);
    for (int r = 0; r < 5; ++r) EXPECT_EQ(got[static_cast<std::size_t>(r)], r * 10);
  });
}

TEST(Comm, AlltoallvExchangesPayloads) {
  World::launch(4, [](Communicator& comm) {
    std::vector<std::vector<real_t>> send(4);
    for (int p = 0; p < 4; ++p)
      send[static_cast<std::size_t>(p)] = {static_cast<real_t>(comm.rank() * 100 + p)};
    const auto recv = comm.alltoallv(send);
    ASSERT_EQ(recv.size(), 4u);
    for (int p = 0; p < 4; ++p) {
      ASSERT_EQ(recv[static_cast<std::size_t>(p)].size(), 1u);
      EXPECT_FLOAT_EQ(recv[static_cast<std::size_t>(p)][0],
                      static_cast<real_t>(p * 100 + comm.rank()));
    }
  });
}

TEST(Comm, SendRecvPreservesChannelOrder) {
  World::launch(2, [](Communicator& comm) {
    constexpr int kTag = 3;
    if (comm.rank() == 0) {
      for (int i = 0; i < 50; ++i) comm.send(1, kTag, {static_cast<real_t>(i)});
    } else {
      for (int i = 0; i < 50; ++i) {
        const auto payload = comm.recv(0, kTag);
        ASSERT_EQ(payload.size(), 1u);
        ASSERT_FLOAT_EQ(payload[0], static_cast<real_t>(i));
      }
    }
  });
}

TEST(Comm, TagsAreIndependentChannels) {
  World::launch(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, /*tag=*/1, {1.0f});
      comm.send(1, /*tag=*/2, {2.0f});
    } else {
      // Receive in the opposite order of sending.
      EXPECT_FLOAT_EQ(comm.recv(0, 2)[0], 2.0f);
      EXPECT_FLOAT_EQ(comm.recv(0, 1)[0], 1.0f);
    }
  });
}

TEST(Comm, TryRecvDoesNotBlock) {
  World::launch(2, [](Communicator& comm) {
    if (comm.rank() == 1) {
      // Rank 0 cannot have sent yet: it is parked at the first barrier.
      EXPECT_FALSE(comm.try_recv(0, 9).has_value());
      comm.barrier();
      comm.barrier();  // send happens between the two barriers
      const auto payload = comm.try_recv(0, 9);
      ASSERT_TRUE(payload.has_value());
      EXPECT_FLOAT_EQ((*payload)[0], 4.0f);
    } else {
      comm.barrier();
      comm.send(1, 9, {4.0f});
      comm.barrier();
    }
  });
}

TEST(Comm, EmptyPayloadsAreDeliverable) {
  World::launch(2, [](Communicator& comm) {
    const int peer = 1 - comm.rank();
    comm.send(peer, 5, {});
    EXPECT_TRUE(comm.recv(peer, 5).empty());
  });
}

TEST(Comm, SelfSendIsDelivered) {
  World::launch(1, [](Communicator& comm) {
    comm.send(0, 8, {3.0f});
    EXPECT_FLOAT_EQ(comm.recv(0, 8)[0], 3.0f);
  });
}

TEST(Comm, StatsCountVolume) {
  World::launch(2, [](Communicator& comm) {
    if (comm.rank() == 0) comm.send(1, 1, std::vector<real_t>(10, 1.0f));
    comm.barrier();
    if (comm.rank() == 0) {
      EXPECT_EQ(comm.stats().messages_sent, 1u);
      EXPECT_EQ(comm.stats().bytes_sent, 10 * sizeof(real_t));
    } else {
      comm.recv(0, 1);
    }
  });
}

TEST(Comm, DelayedConsumptionMatchesFifo) {
  // The cd-r pattern: sender pushes one message per "epoch" on a channel;
  // receiver starts consuming r epochs later and must see them in order.
  constexpr int kDelay = 3, kEpochs = 12;
  World::launch(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int e = 0; e < kEpochs; ++e) comm.send(1, 7, {static_cast<real_t>(e)});
    } else {
      for (int e = kDelay; e < kEpochs; ++e) {
        const auto payload = comm.recv(0, 7);
        ASSERT_FLOAT_EQ(payload[0], static_cast<real_t>(e - kDelay));
      }
    }
  });
}

TEST(World, ReusableAcrossRuns) {
  World world(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 3; ++round)
    world.run([&](Communicator& comm) {
      comm.barrier();
      ++total;
    });
  EXPECT_EQ(total.load(), 9);
}

}  // namespace
}  // namespace distgnn
