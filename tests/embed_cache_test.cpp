// Embedding-cache subsystem: the generic ShardedLru, the versioned
// layer-output EmbedCache, the EmbedForward evaluator's bitwise-equality
// contract (cache on/off, hit/miss, across hot-swaps), and the
// InferenceServer embed-forward serving mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "graph/datasets.hpp"
#include "serve/embed_cache.hpp"
#include "serve/inference_server.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/sharded_lru.hpp"
#include "serve/traffic_gen.hpp"
#include "util/rng.hpp"

namespace distgnn {
namespace {

using namespace distgnn::serve;

Dataset make_embed_dataset() {
  LearnableSbmParams params;
  params.num_vertices = 512;
  params.num_classes = 4;
  params.avg_degree = 8;
  params.feature_dim = 16;
  params.seed = 5;
  return make_learnable_sbm(params);
}

ModelSpec embed_spec(const Dataset& dataset, ModelKind kind = ModelKind::kSage) {
  ModelSpec spec;
  spec.kind = kind;
  spec.feature_dim = dataset.feature_dim();
  spec.hidden_dim = 16;
  spec.num_classes = dataset.num_classes;
  spec.num_layers = 2;
  return spec;
}

// ---------------------------------------------------------------- ShardedLru

TEST(ShardedLru, GenericValuesEvictInLruOrder) {
  // Non-POD value type: the template must recycle slots without leaking
  // stale state.
  ShardedLru<int, std::string> lru(/*capacity_entries=*/2, /*num_shards=*/1,
                                   /*charge_bytes=*/8);
  std::string got;
  const auto fill = [](const char* text) {
    return [text](std::string& v) { v = text; };
  };
  const auto use = [&](const std::string& v) { got = v; };

  EXPECT_FALSE(lru.get_or_fill(0, 1, fill("one"), use));
  EXPECT_FALSE(lru.get_or_fill(0, 2, fill("two"), use));
  EXPECT_TRUE(lru.get_or_fill(0, 1, fill("XXX"), use));  // 1 becomes MRU
  EXPECT_EQ(got, "one");
  EXPECT_FALSE(lru.get_or_fill(0, 3, fill("three"), use));  // evicts 2
  EXPECT_TRUE(lru.get_or_fill(0, 1, fill("XXX"), use));
  EXPECT_FALSE(lru.get_or_fill(0, 2, fill("two2"), use));  // was evicted
  EXPECT_EQ(got, "two2");

  const CacheStats stats = lru.stats(0);
  EXPECT_EQ(stats.accesses, 6u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.bytes_read, 4u * 8u);
}

TEST(ShardedLru, SpacesShareCapacityButKeepSeparateKeysAndStats) {
  ShardedLru<int, int> lru(/*capacity_entries=*/4, /*num_shards=*/1, /*charge_bytes=*/4);
  int got = -1;
  lru.insert(0, 7, [](int& v) { v = 100; });
  lru.insert(1, 7, [](int& v) { v = 200; });  // same key, different space
  EXPECT_TRUE(lru.lookup(0, 7, [&](const int& v) { got = v; }));
  EXPECT_EQ(got, 100);
  EXPECT_TRUE(lru.lookup(1, 7, [&](const int& v) { got = v; }));
  EXPECT_EQ(got, 200);
  EXPECT_EQ(lru.stats(0).accesses, 1u);
  EXPECT_EQ(lru.stats(1).accesses, 1u);
  EXPECT_EQ(lru.combined_stats().accesses, 2u);

  lru.invalidate();
  EXPECT_FALSE(lru.lookup(0, 7, [&](const int&) {}));
  EXPECT_FALSE(lru.lookup(1, 7, [&](const int&) {}));
}

namespace stress {
// Epoch-tagged key modelling the EmbedCache scheme: id in the low 32 bits,
// epoch above. The hash deliberately ignores the epoch so retag promotions
// stay within their shard — the property the stress test exercises.
struct IdOnlyHash {
  std::uint64_t operator()(std::uint64_t key) const {
    return splitmix64(key & 0xffffffffULL);
  }
};
constexpr std::uint64_t key_of(std::uint64_t epoch, std::uint64_t id) {
  return (epoch << 32) | id;
}
}  // namespace stress

TEST(ShardedLru, ConcurrentInvalidationNeverServesTornOrMismatchedEntries) {
  // N invalidation writers (erase / retag-to-next-epoch / full invalidate)
  // against M readers (lookup / get_or_fill / insert) over one key space.
  // The contract under fire: a lookup that hits must yield the value that
  // was filled for exactly that key (value == key id), and no operation may
  // deadlock or corrupt the shard lists.
  using Lru = serve::ShardedLru<std::uint64_t, std::uint64_t, stress::IdOnlyHash>;
  Lru lru(/*capacity_entries=*/128, /*num_shards=*/4, /*charge_bytes=*/8);
  constexpr std::uint64_t kIds = 256;

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> epoch{0};
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> hits{0};

  std::vector<std::thread> threads;
  // Writer 1: epoch advance via retag — evict a sliding window of "dirty"
  // ids, promote the rest to the new epoch (the EmbedCache advance path).
  threads.emplace_back([&] {
    std::uint64_t rounds = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t next = epoch.load() + 1;
      const std::uint64_t dirty_lo = (rounds * 16) % kIds;
      lru.retag(/*space=*/0, [&](std::uint64_t& key) {
        const std::uint64_t id = key & 0xffffffffULL;
        if (id >= dirty_lo && id < dirty_lo + 16) return false;  // evict dirty
        key = stress::key_of(next, id);                          // promote
        return true;
      });
      epoch.store(next, std::memory_order_release);
      ++rounds;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });
  // Writer 2: targeted erases at both current and stale epochs, plus the
  // occasional blanket invalidate.
  threads.emplace_back([&] {
    Rng rng(0xe7a5e);
    std::uint64_t n = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t id = rng.next_below(kIds);
      const std::uint64_t e = epoch.load(std::memory_order_acquire);
      lru.erase(0, stress::key_of(e, id));
      if (e > 0) lru.erase(0, stress::key_of(e - 1, id));
      if (++n % 64 == 0) lru.invalidate();
    }
  });
  // Readers: mixed lookup / insert / get_or_fill at the current epoch; every
  // hit's value must equal the id it was keyed under.
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&, t] {
      Rng rng(0x5eed + static_cast<std::uint64_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        const std::uint64_t id = rng.next_below(kIds);
        const std::uint64_t key = stress::key_of(epoch.load(std::memory_order_acquire), id);
        const auto check = [&](const std::uint64_t& v) {
          hits.fetch_add(1, std::memory_order_relaxed);
          if (v != id) mismatches.fetch_add(1, std::memory_order_relaxed);
        };
        switch (rng.next_below(3)) {
          case 0: (void)lru.lookup(0, key, check); break;
          case 1: lru.insert(0, key, [&](std::uint64_t& v) { v = id; }); break;
          default: (void)lru.get_or_fill(0, key, [&](std::uint64_t& v) { v = id; }, check);
        }
      }
    });

  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(hits.load(), 0u);  // the race was real, not all misses
  // Post-quiesce structural sanity: the cache still works end to end and
  // holds at most its capacity.
  std::uint64_t resident = 0;
  lru.retag(0, [&](std::uint64_t&) {
    ++resident;
    return true;
  });
  EXPECT_LE(resident, lru.capacity_entries());
  std::uint64_t got = 0;
  lru.insert(0, stress::key_of(9999, 1), [](std::uint64_t& v) { v = 1; });
  EXPECT_TRUE(lru.lookup(0, stress::key_of(9999, 1), [&](const std::uint64_t& v) { got = v; }));
  EXPECT_EQ(got, 1u);
  const CacheStats stats = lru.stats(0);
  EXPECT_GE(stats.accesses, stats.misses);
}

// ---------------------------------------------------------------- EmbedCache

TEST(EmbedCache, PerLayerDimsAndRoundTrip) {
  const Dataset dataset = make_embed_dataset();
  const ModelSpec spec = embed_spec(dataset);
  EmbedCache cache(spec, /*capacity_bytes=*/1 << 20, /*num_shards=*/2);
  ASSERT_EQ(cache.num_layers(), 2);
  EXPECT_EQ(cache.dim(1), static_cast<std::size_t>(spec.hidden_dim));
  EXPECT_EQ(cache.dim(2), static_cast<std::size_t>(spec.num_classes));

  std::vector<real_t> h1(cache.dim(1));
  for (std::size_t j = 0; j < h1.size(); ++j) h1[j] = static_cast<real_t>(j);
  cache.insert(1, /*vertex=*/42, /*version=*/1, h1.data());
  std::vector<real_t> out(cache.dim(1), -1);
  ASSERT_TRUE(cache.lookup(1, 42, 1, out.data()));
  EXPECT_EQ(out, h1);
  // Other layer, other vertex: independent key spaces.
  EXPECT_FALSE(cache.lookup(2, 42, 1, out.data()));
  EXPECT_FALSE(cache.lookup(1, 43, 1, out.data()));
}

TEST(EmbedCache, StaleVersionNeverMatches) {
  const Dataset dataset = make_embed_dataset();
  EmbedCache cache(embed_spec(dataset), 1 << 20, 2);
  std::vector<real_t> v1(cache.dim(1), 1.0f), v2(cache.dim(1), 2.0f);
  std::vector<real_t> out(cache.dim(1));

  cache.insert(1, 7, /*version=*/1, v1.data());
  EXPECT_FALSE(cache.lookup(1, 7, /*version=*/2, out.data()));  // hot-swap: stale row invisible
  cache.insert(1, 7, /*version=*/2, v2.data());
  ASSERT_TRUE(cache.lookup(1, 7, 2, out.data()));
  EXPECT_EQ(out, v2);
  // The old version's row is still addressable until invalidated...
  ASSERT_TRUE(cache.lookup(1, 7, 1, out.data()));
  EXPECT_EQ(out, v1);
  // ...and invalidate() (the publish hook) reclaims everything.
  cache.invalidate();
  EXPECT_FALSE(cache.lookup(1, 7, 1, out.data()));
  EXPECT_FALSE(cache.lookup(1, 7, 2, out.data()));
}

// -------------------------------------------------------------- EmbedForward

TEST(EmbedForward, CachedEqualsUncachedBitwiseAcrossHitAndMissPaths) {
  const Dataset dataset = make_embed_dataset();
  for (const ModelKind kind : {ModelKind::kSage, ModelKind::kGat}) {
    const ModelSpec spec = embed_spec(dataset, kind);
    const auto snapshot = ModelSnapshot::random(spec, /*seed=*/21, /*version=*/1);
    const std::vector<int> fanouts = {5, 5};
    // Duplicates and overlapping neighbourhoods on purpose.
    const std::vector<vid_t> seeds = {3, 77, 180, 77, 409, 3, 500};

    EmbedForward uncached(dataset, fanouts, /*sample_seed=*/1, nullptr, nullptr);
    DenseMatrix expected;
    uncached.infer(*snapshot, seeds, expected);
    ASSERT_EQ(expected.rows(), seeds.size());

    EmbedCache cache(spec, 1 << 20, 2);
    ShardedFeatureCache features(1 << 20, static_cast<std::size_t>(dataset.feature_dim()), 2);
    EmbedForward cached(dataset, fanouts, 1, &cache, &features);
    DenseMatrix cold, warm;
    cached.infer(*snapshot, seeds, cold);  // miss path fills the cache
    cached.infer(*snapshot, seeds, warm);  // hit path serves from it

    for (std::size_t r = 0; r < seeds.size(); ++r)
      for (std::size_t j = 0; j < expected.cols(); ++j) {
        EXPECT_EQ(cold.at(r, j), expected.at(r, j))
            << (kind == ModelKind::kSage ? "sage" : "gat") << " cold row " << r;
        EXPECT_EQ(warm.at(r, j), expected.at(r, j))
            << (kind == ModelKind::kSage ? "sage" : "gat") << " warm row " << r;
      }
  }
}

TEST(EmbedForward, CacheHitShortCircuitsTheWholeSubtree) {
  const Dataset dataset = make_embed_dataset();
  const ModelSpec spec = embed_spec(dataset);
  const auto snapshot = ModelSnapshot::random(spec, /*seed=*/31, /*version=*/1);
  const std::vector<int> fanouts = {5, 5};
  const std::vector<vid_t> seeds = {10, 20, 30, 40};

  EmbedCache cache(spec, 1 << 20, 2);
  EmbedForward evaluator(dataset, fanouts, 1, &cache, nullptr);
  DenseMatrix logits;
  evaluator.infer(*snapshot, seeds, logits);
  const EmbedForwardStats after_cold = evaluator.stats();
  EXPECT_GT(after_cold.sampled_blocks, 0u);
  EXPECT_GT(after_cold.layer_rows_computed, 0u);

  // Identical repeat: every seed hits at the output layer, so no sampling
  // and no layer computation happen at all — the subtree is short-circuited.
  evaluator.infer(*snapshot, seeds, logits);
  const EmbedForwardStats after_warm = evaluator.stats();
  EXPECT_EQ(after_warm.sampled_blocks, after_cold.sampled_blocks);
  EXPECT_EQ(after_warm.layer_rows_computed, after_cold.layer_rows_computed);
  EXPECT_EQ(cache.stats(2).misses, seeds.size());
  EXPECT_EQ(cache.stats(2).hits(), seeds.size());
}

TEST(EmbedForward, HotSwapNeverServesStaleEmbeddings) {
  const Dataset dataset = make_embed_dataset();
  const ModelSpec spec = embed_spec(dataset);
  const auto model_a = ModelSnapshot::random(spec, /*seed=*/100, /*version=*/1);
  const auto model_b = ModelSnapshot::random(spec, /*seed=*/200, /*version=*/2);
  const std::vector<int> fanouts = {4, 4};
  const std::vector<vid_t> seeds = {1, 50, 99, 200};

  EmbedForward uncached(dataset, fanouts, 1, nullptr, nullptr);
  DenseMatrix expect_a, expect_b;
  uncached.infer(*model_a, seeds, expect_a);
  uncached.infer(*model_b, seeds, expect_b);
  // The swap is observable: the two models disagree somewhere.
  bool differ = false;
  for (std::size_t i = 0; i < expect_a.size(); ++i)
    differ |= expect_a.data()[i] != expect_b.data()[i];
  ASSERT_TRUE(differ);

  // Warm the cache under version 1, then serve version 2 with the same
  // cache: version-keyed entries make the stale rows invisible, so answers
  // must be exactly model B's.
  EmbedCache cache(spec, 1 << 20, 2);
  EmbedForward cached(dataset, fanouts, 1, &cache, nullptr);
  DenseMatrix warm_a, after_swap;
  cached.infer(*model_a, seeds, warm_a);
  cached.infer(*model_b, seeds, after_swap);
  for (std::size_t r = 0; r < seeds.size(); ++r)
    for (std::size_t j = 0; j < expect_b.cols(); ++j) {
      EXPECT_EQ(warm_a.at(r, j), expect_a.at(r, j)) << "row " << r;
      EXPECT_EQ(after_swap.at(r, j), expect_b.at(r, j)) << "row " << r;
    }
}

TEST(EmbedForward, DeterministicAcrossBatchCompositions) {
  // h_L(v) must not depend on which other seeds share the batch — the
  // property that makes cached rows reusable across requests at all.
  const Dataset dataset = make_embed_dataset();
  const auto snapshot = ModelSnapshot::random(embed_spec(dataset), /*seed=*/77, /*version=*/1);
  const std::vector<int> fanouts = {5, 5};

  EmbedForward solo(dataset, fanouts, 1, nullptr, nullptr);
  DenseMatrix alone;
  const std::vector<vid_t> just_180 = {180};
  solo.infer(*snapshot, just_180, alone);

  EmbedForward grouped(dataset, fanouts, 1, nullptr, nullptr);
  DenseMatrix batched;
  const std::vector<vid_t> group = {3, 180, 409};
  grouped.infer(*snapshot, group, batched);

  for (std::size_t j = 0; j < alone.cols(); ++j) EXPECT_EQ(batched.at(1, j), alone.at(0, j));
}

// -------------------------------------------------- InferenceServer embed mode

TEST(InferenceServerEmbed, ServesBitwiseEqualToEvaluatorAndHitsOnRepeats) {
  const Dataset dataset = make_embed_dataset();
  const ModelSpec spec = embed_spec(dataset);
  const auto snapshot = ModelSnapshot::random(spec, /*seed=*/31, /*version=*/1);

  ServeConfig cfg;
  cfg.num_workers = 1;
  cfg.max_batch = 4;
  cfg.fanouts = {5, 5};
  cfg.embed_forward = true;
  cfg.embed_cache_bytes = 4ull << 20;
  InferenceServer server(dataset, cfg);
  server.publish(snapshot);
  ASSERT_NE(server.embed_cache(), nullptr);
  server.start();

  EmbedForward reference(dataset, cfg.fanouts, cfg.sample_seed, nullptr, nullptr);
  DenseMatrix expected;
  const std::vector<vid_t> seeds = {123, 7, 123, 400};
  reference.infer(*snapshot, seeds, expected);

  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const InferResult result = server.infer_sync(seeds[i]);
    ASSERT_EQ(result.logits.size(), expected.cols());
    for (std::size_t j = 0; j < expected.cols(); ++j)
      EXPECT_EQ(result.logits[j], expected.at(i, j)) << "seed " << seeds[i];
  }

  const CacheStats cold = server.stats().embed_cache;
  EXPECT_GT(cold.accesses, 0u);
  // Repeat the whole set: output-layer lookups all hit, so misses freeze.
  for (const vid_t v : seeds) (void)server.infer_sync(v);
  const CacheStats warmed = server.stats().embed_cache;
  EXPECT_EQ(warmed.misses, cold.misses);
  EXPECT_GT(warmed.hits(), cold.hits());
  server.stop();
}

TEST(InferenceServerEmbed, PublishInvalidatesAndNeverServesStale) {
  const Dataset dataset = make_embed_dataset();
  const ModelSpec spec = embed_spec(dataset);
  const auto model_a = ModelSnapshot::random(spec, /*seed=*/100, /*version=*/1);
  const auto model_b = ModelSnapshot::random(spec, /*seed=*/200, /*version=*/2);

  ServeConfig cfg;
  cfg.num_workers = 1;
  cfg.max_batch = 2;
  cfg.fanouts = {4, 4};
  cfg.embed_forward = true;
  cfg.embed_cache_bytes = 4ull << 20;
  InferenceServer server(dataset, cfg);
  server.publish(model_a);
  server.start();

  EmbedForward reference(dataset, cfg.fanouts, cfg.sample_seed, nullptr, nullptr);
  DenseMatrix expect_a, expect_b;
  const std::vector<vid_t> seeds = {11, 42, 11};
  reference.infer(*model_a, seeds, expect_a);
  reference.infer(*model_b, seeds, expect_b);

  for (const vid_t v : seeds) (void)server.infer_sync(v);  // warm under v1
  server.publish(model_b);                                 // hot-swap + invalidate hook
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const InferResult result = server.infer_sync(seeds[i]);
    EXPECT_EQ(result.snapshot_version, 2u);
    for (std::size_t j = 0; j < expect_b.cols(); ++j)
      EXPECT_EQ(result.logits[j], expect_b.at(i, j)) << "seed " << seeds[i];
  }
  server.stop();
}

TEST(InferenceServerEmbed, UncachedEmbedModeServesAndReportsNoCache) {
  const Dataset dataset = make_embed_dataset();
  const auto snapshot = ModelSnapshot::random(embed_spec(dataset), /*seed=*/31, /*version=*/1);
  ServeConfig cfg;
  cfg.num_workers = 1;
  cfg.max_batch = 2;
  cfg.fanouts = {4, 4};
  cfg.embed_forward = true;
  cfg.embed_cache_bytes = 0;  // evaluator without a cache: the A/B baseline
  InferenceServer server(dataset, cfg);
  server.publish(snapshot);
  EXPECT_EQ(server.embed_cache(), nullptr);
  server.start();

  EmbedForward reference(dataset, cfg.fanouts, cfg.sample_seed, nullptr, nullptr);
  DenseMatrix expected;
  const std::vector<vid_t> seeds = {77};
  reference.infer(*snapshot, seeds, expected);
  const InferResult result = server.infer_sync(77);
  for (std::size_t j = 0; j < expected.cols(); ++j)
    EXPECT_EQ(result.logits[j], expected.at(0, j));
  EXPECT_EQ(server.stats().embed_cache.accesses, 0u);
  server.stop();
}

// ------------------------------------------------------------- Zipf sampling

TEST(ZipfSampler, SkewsMassTowardHotValuesDeterministically) {
  Rng perm_rng(9);
  const ZipfSampler zipf(/*n=*/1000, /*s=*/1.0, perm_rng);
  EXPECT_EQ(zipf.size(), 1000u);
  // Zipf(1.0) over 1000 values: rank 1 carries ~1/H_1000 ~ 13% of the mass.
  EXPECT_GT(zipf.top_probability(), 0.10);

  Rng draw_a(4), draw_b(4);
  std::vector<std::uint64_t> counts(1000, 0);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = zipf.draw(draw_a);
    ASSERT_EQ(v, zipf.draw(draw_b));  // deterministic per seed
    ++counts[static_cast<std::size_t>(v)];
  }
  const std::uint64_t hottest = *std::max_element(counts.begin(), counts.end());
  // Uniform would put ~20 draws on each value; Zipf(1) puts ~2600 on rank 1.
  EXPECT_GT(hottest, 1000u);
}

}  // namespace
}  // namespace distgnn
