// src/stream: versioned streaming graph updates. Pins the freshness
// contract end to end — delta semantics (canonical apply order), per-layer
// dirty-set computation, the epoch-keyed EmbedCache (a stale-epoch entry is
// never returned), the incremental libra extension, and the headline
// bitwise-equality property: a server that streamed K deltas under live
// read traffic answers identically to a cold server built over the final
// graph, at every tier (single server classic + embed, ShardedServer P=2,
// ComposedTier R=2 x P=2).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "graph/datasets.hpp"
#include "partition/libra.hpp"
#include "serve/backend.hpp"
#include "serve/composed_tier.hpp"
#include "serve/embed_cache.hpp"
#include "serve/inference_server.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/sharded_server.hpp"
#include "stream/delta_publisher.hpp"
#include "stream/graph_delta.hpp"
#include "stream/mixed_loop.hpp"

namespace distgnn {
namespace {

using namespace distgnn::serve;
using namespace distgnn::stream;

Dataset make_stream_dataset() {
  LearnableSbmParams params;
  params.num_vertices = 512;
  params.num_classes = 4;
  params.avg_degree = 8;
  params.feature_dim = 16;
  params.seed = 9;
  return make_learnable_sbm(params);
}

ModelSpec sage_spec(const Dataset& dataset) {
  ModelSpec spec;
  spec.kind = ModelKind::kSage;
  spec.feature_dim = dataset.feature_dim();
  spec.hidden_dim = 16;
  spec.num_classes = dataset.num_classes;
  spec.num_layers = 2;
  return spec;
}

std::vector<vid_t> probe_vertices(const Dataset& dataset, int count, vid_t stride) {
  std::vector<vid_t> vertices;
  for (vid_t v = 0; v < count; ++v)
    vertices.push_back((v * stride) % static_cast<vid_t>(dataset.num_vertices()));
  return vertices;
}

/// Cold rebuild: base dataset + every delta through the canonical apply.
Dataset rebuild_final(const Dataset& base, const std::vector<GraphDelta>& deltas) {
  Dataset cold = base;
  for (const GraphDelta& delta : deltas) apply_delta(cold, delta);
  return cold;
}

/// Background read traffic over [0, n) vertices until stopped — the "live
/// traffic" the delta stream races against.
class BackgroundReaders {
 public:
  BackgroundReaders(ServingBackend& backend, int num_threads) {
    // Snapshot the (construction-fixed) vertex count on this thread, before
    // any delta publish can be mid-swap: reading dataset().num_vertices()
    // from the reader threads would race the barrier's graph move-assign.
    const auto n = static_cast<std::uint64_t>(backend.dataset().num_vertices());
    for (int t = 0; t < num_threads; ++t)
      threads_.emplace_back([this, &backend, t, n] {
        Rng rng(0xbead + static_cast<std::uint64_t>(t));
        while (!stop_.load(std::memory_order_acquire)) {
          (void)backend.infer_sync(static_cast<vid_t>(rng.next_below(n)));
          served_.fetch_add(1, std::memory_order_relaxed);
        }
      });
  }
  std::uint64_t stop() {
    stop_.store(true, std::memory_order_release);
    for (std::thread& t : threads_) t.join();
    threads_.clear();
    return served_.load();
  }
  ~BackgroundReaders() {
    if (!threads_.empty()) stop();
  }

 private:
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> served_{0};
  std::vector<std::thread> threads_;
};

// --------------------------------------------------------------- GraphDelta

TEST(GraphDelta, ApplyDeletesFirstMatchingOccurrenceTheInsertsAppend) {
  EdgeList edges;
  edges.num_vertices = 4;
  edges.add(0, 1);
  edges.add(1, 2);
  edges.add(0, 1);  // duplicate of edge 0
  edges.add(2, 3);
  std::vector<int> types = {7, 8, 9, 10};

  GraphDelta delta;
  delta.edge_deletes.push_back({0, 1});  // claims index 0, not index 2
  delta.edge_deletes.push_back({3, 0});  // absent: no-op
  delta.edge_inserts.push_back({3, 1, 5});

  const DeltaApplyStats stats = apply_delta_edges(edges, types, delta);
  EXPECT_EQ(stats.edges_deleted, 1u);
  EXPECT_EQ(stats.edges_inserted, 1u);
  ASSERT_EQ(stats.removed_edge_indices, (std::vector<eid_t>{0}));

  // Survivors keep order, types stay aligned, insert appended last.
  const std::vector<Edge> expect = {{1, 2}, {0, 1}, {2, 3}, {3, 1}};
  EXPECT_EQ(edges.edges, expect);
  EXPECT_EQ(types, (std::vector<int>{8, 9, 10, 5}));
}

TEST(GraphDelta, InsertOutOfRangeThrows) {
  EdgeList edges;
  edges.num_vertices = 2;
  edges.add(0, 1);
  std::vector<int> types;
  GraphDelta delta;
  delta.edge_inserts.push_back({0, 2, 0});
  EXPECT_THROW(apply_delta_edges(edges, types, delta), std::invalid_argument);
}

TEST(GraphDelta, DeltaLogSealsEpochsAndResets) {
  DeltaLog log;
  log.insert_edge(1, 2);
  log.remove_edge(3, 4);
  log.update_feature(5, {1.0f, 2.0f});
  EXPECT_EQ(log.pending(), 3u);

  const GraphDelta first = log.seal();
  EXPECT_EQ(first.epoch, 1u);
  EXPECT_EQ(first.edge_inserts.size(), 1u);
  EXPECT_EQ(first.edge_deletes.size(), 1u);
  EXPECT_EQ(first.feature_updates.size(), 1u);
  EXPECT_EQ(log.pending(), 0u);
  EXPECT_EQ(log.sealed_epochs(), 1u);

  const GraphDelta second = log.seal();  // sealing empty still stamps
  EXPECT_EQ(second.epoch, 2u);
  EXPECT_TRUE(second.empty());
}

TEST(GraphDelta, DirtySetsSeedAtTouchedVerticesAndPropagateOutward) {
  // Post graph: 0->1, 1->2, 3->3 (self loop). Delta: inserted edge 0->1,
  // feature update at 0.
  EdgeList edges;
  edges.num_vertices = 4;
  edges.add(0, 1);
  edges.add(1, 2);
  edges.add(3, 3);
  const Graph post(edges);

  GraphDelta delta;
  delta.edge_inserts.push_back({0, 1, 0});
  FeatureUpdate fu;
  fu.vertex = 0;
  fu.row = {0.0f};
  delta.feature_updates.push_back(fu);

  const auto dirty = compute_dirty_sets(post, delta, /*num_layers=*/2);
  ASSERT_EQ(dirty.size(), 2u);
  // Layer 1: T = {1} (insert dst) ∪ Dirty_0 = {0} ∪ out({0}) = {1}.
  EXPECT_EQ(dirty[0], (std::vector<vid_t>{0, 1}));
  // Layer 2: T ∪ Dirty_1 ∪ out(Dirty_1) = {1} ∪ {0,1} ∪ {1,2} = {0,1,2}.
  EXPECT_EQ(dirty[1], (std::vector<vid_t>{0, 1, 2}));
}

TEST(GraphDelta, StreamGeneratorDeletesAlwaysExistAndReplayCleanly) {
  const Dataset base = make_stream_dataset();
  DeltaStreamConfig cfg;
  cfg.num_deltas = 6;
  cfg.seed = 31;
  const auto deltas = make_delta_stream(base, cfg);
  ASSERT_EQ(deltas.size(), 6u);

  Dataset evolved = base;
  eid_t expect_edges = base.num_edges();
  for (const GraphDelta& delta : deltas) {
    const DeltaApplyStats stats = apply_delta(evolved, delta);
    // Every generated delete names a live edge, so none is a no-op.
    EXPECT_EQ(stats.edges_deleted, delta.edge_deletes.size());
    expect_edges += static_cast<eid_t>(delta.edge_inserts.size()) -
                    static_cast<eid_t>(stats.edges_deleted);
  }
  EXPECT_EQ(evolved.num_edges(), expect_edges);
}

// ---------------------------------------------------- incremental partition

TEST(ExtendPartitionLibra, SurvivorsKeepOwnersAndNewEdgesAreAssigned) {
  const Dataset base = make_stream_dataset();
  const EdgeList& coo = base.graph.coo();
  EdgePartition partition = partition_libra(coo, /*num_parts=*/3);
  const EdgePartition before = partition;

  // Delete 5 known edges, insert 7 new ones — through the same delta path
  // the publisher uses.
  EdgeList post = coo;
  std::vector<int> no_types;
  GraphDelta delta;
  for (std::size_t e = 0; e < 5; ++e) delta.edge_deletes.push_back(coo.edges[11 * e]);
  for (vid_t v = 0; v < 7; ++v) delta.edge_inserts.push_back({v, v + 1, 0});
  const DeltaApplyStats stats = apply_delta_edges(post, no_types, delta);
  ASSERT_EQ(stats.edges_deleted, 5u);

  extend_partition_libra(partition, post, stats.removed_edge_indices, 7);

  ASSERT_EQ(partition.edge_owner.size(), post.edges.size());
  // Surviving edges keep their owners (in compacted order).
  std::vector<bool> removed(before.edge_owner.size(), false);
  for (const eid_t e : stats.removed_edge_indices) removed[static_cast<std::size_t>(e)] = true;
  std::size_t out = 0;
  for (std::size_t e = 0; e < before.edge_owner.size(); ++e) {
    if (removed[e]) continue;
    EXPECT_EQ(partition.edge_owner[out], before.edge_owner[e]) << "survivor " << out;
    ++out;
  }
  // Inserted edges all got a real owner; the histogram reconciles.
  std::vector<eid_t> histogram(static_cast<std::size_t>(partition.num_parts), 0);
  for (const part_t p : partition.edge_owner) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, partition.num_parts);
    ++histogram[static_cast<std::size_t>(p)];
  }
  EXPECT_EQ(histogram, partition.edges_per_part);
}

// ------------------------------------------------------- epoch-keyed cache

TEST(EmbedCacheEpoch, StaleEpochEntryIsNeverReturned) {
  const Dataset dataset = make_stream_dataset();
  EmbedCache cache(sage_spec(dataset), /*capacity_bytes=*/1 << 20, /*num_shards=*/2);
  const std::size_t d = cache.dim(1);
  std::vector<real_t> row(d, 1.5f), out(d, 0.0f);

  cache.insert(1, /*vertex=*/5, /*version=*/3, row.data(), /*epoch=*/0);
  EXPECT_TRUE(cache.lookup(1, 5, 3, out.data(), /*epoch=*/0));
  // Same (vertex, version) under any other epoch: miss, bitwise-never-mixed.
  EXPECT_FALSE(cache.lookup(1, 5, 3, out.data(), /*epoch=*/1));
  EXPECT_FALSE(cache.lookup(1, 5, 3, out.data(), /*epoch=*/7));
}

TEST(EmbedCacheEpoch, AdvanceEvictsDirtyAndPromotesClean) {
  const Dataset dataset = make_stream_dataset();
  EmbedCache cache(sage_spec(dataset), 1 << 20, 2);
  const std::size_t d1 = cache.dim(1);
  const std::size_t d2 = cache.dim(2);
  std::vector<real_t> row(std::max(d1, d2), 2.0f), out(std::max(d1, d2));

  cache.insert(1, 5, 3, row.data(), /*epoch=*/0);   // dirty at layer 1
  cache.insert(1, 6, 3, row.data(), /*epoch=*/0);   // clean
  cache.insert(2, 5, 3, row.data(), /*epoch=*/0);   // clean at layer 2
  const auto advance = cache.advance_epoch(/*new_epoch=*/1, {{5}, {}});
  EXPECT_EQ(advance.evicted, 1u);
  EXPECT_EQ(advance.retained, 2u);

  EXPECT_FALSE(cache.lookup(1, 5, 3, out.data(), 1));  // evicted
  EXPECT_TRUE(cache.lookup(1, 6, 3, out.data(), 1));   // promoted
  EXPECT_FALSE(cache.lookup(1, 6, 3, out.data(), 0));  // old epoch gone
  EXPECT_TRUE(cache.lookup(2, 5, 3, out.data(), 1));   // other layer clean

  // A racing batch inserting under the OLD epoch after the advance wastes a
  // slot but is invisible to post-delta readers.
  cache.insert(1, 7, 3, row.data(), /*epoch=*/0);
  EXPECT_FALSE(cache.lookup(1, 7, 3, out.data(), /*epoch=*/1));
}

// ---------------------------------------------- bitwise equality, per tier

/// Streams `deltas` through `publisher` while `readers` threads hammer the
/// backend, then compares probe answers against a fresh single server over
/// the final graph.
void expect_streamed_equals_cold(ServingBackend& live, DeltaPublisher& publisher,
                                 const Dataset& base, const std::vector<GraphDelta>& deltas,
                                 std::shared_ptr<const ModelSnapshot> snapshot,
                                 bool embed_forward) {
  {
    BackgroundReaders readers(live, /*num_threads=*/2);
    for (const GraphDelta& delta : deltas) {
      publisher.publish(delta);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_GT(readers.stop(), 0u);  // reads really ran during the stream
  }
  EXPECT_EQ(live.graph_epoch(), deltas.back().epoch);

  const Dataset cold_data = rebuild_final(base, deltas);
  ServeConfig cold_cfg;
  cold_cfg.num_workers = 1;
  cold_cfg.max_batch = 4;
  cold_cfg.fanouts = {5, 5};
  cold_cfg.embed_forward = embed_forward;
  InferenceServer cold(cold_data, cold_cfg);
  cold.publish(snapshot);
  cold.start();

  const std::vector<vid_t> probes = probe_vertices(base, 40, 37);
  for (const vid_t v : probes) {
    const InferResult a = live.infer_sync(v);
    const InferResult b = cold.infer_sync(v);
    EXPECT_EQ(a.logits, b.logits) << "vertex " << v;
  }
  cold.stop();
  live.stop();
}

TEST(StreamServing, SingleServerClassicBitwiseEqualAfterDeltas) {
  const Dataset base = make_stream_dataset();
  const auto snapshot = ModelSnapshot::random(sage_spec(base), /*seed=*/77, /*version=*/3);
  DeltaStreamConfig stream_cfg;
  stream_cfg.num_deltas = 5;
  stream_cfg.seed = 101;
  const auto deltas = make_delta_stream(base, stream_cfg);

  Dataset live_data = base;
  ServeConfig cfg;
  cfg.num_workers = 2;
  cfg.max_batch = 4;
  cfg.fanouts = {5, 5};
  InferenceServer live(live_data, cfg);
  live.publish(snapshot);
  live.start();
  DeltaPublisher publisher(live_data, live);
  expect_streamed_equals_cold(live, publisher, base, deltas, snapshot, /*embed_forward=*/false);
}

TEST(StreamServing, SingleServerEmbedCachedBitwiseEqualAfterDeltas) {
  const Dataset base = make_stream_dataset();
  const auto snapshot = ModelSnapshot::random(sage_spec(base), 77, 3);
  DeltaStreamConfig stream_cfg;
  stream_cfg.num_deltas = 5;
  stream_cfg.seed = 102;
  const auto deltas = make_delta_stream(base, stream_cfg);

  Dataset live_data = base;
  ServeConfig cfg;
  cfg.num_workers = 2;
  cfg.max_batch = 4;
  cfg.fanouts = {5, 5};
  cfg.embed_forward = true;
  cfg.embed_cache_bytes = 1 << 20;
  InferenceServer live(live_data, cfg);
  live.publish(snapshot);
  live.start();
  DeltaPublisher publisher(live_data, live);
  expect_streamed_equals_cold(live, publisher, base, deltas, snapshot, /*embed_forward=*/true);
  // The targeted invalidation retained entries across deltas (the cache was
  // not blanket-flushed): accesses kept landing and some hit post-delta.
  ASSERT_NE(live.embed_cache(), nullptr);
  EXPECT_GT(live.embed_cache()->combined_stats().accesses, 0u);
}

TEST(StreamServing, ShardedServerBitwiseEqualAfterDeltas) {
  const Dataset base = make_stream_dataset();
  const auto snapshot = ModelSnapshot::random(sage_spec(base), 77, 3);
  DeltaStreamConfig stream_cfg;
  stream_cfg.num_deltas = 4;
  stream_cfg.seed = 103;
  const auto deltas = make_delta_stream(base, stream_cfg);

  Dataset live_data = base;
  EdgePartition partition = partition_libra(live_data.graph.coo(), /*num_parts=*/2);
  ShardedServeConfig cfg;
  cfg.max_batch = 4;
  cfg.fanouts = {5, 5};
  cfg.prefetch_depth = 2;
  ShardedServer live(live_data, partition, cfg);
  live.publish(snapshot);
  live.start();
  DeltaPublisher publisher(live_data, live, {}, &partition);
  expect_streamed_equals_cold(live, publisher, base, deltas, snapshot, /*embed_forward=*/false);
  // The evolving partition stayed aligned with the evolving edge list.
  EXPECT_EQ(partition.edge_owner.size(), rebuild_final(base, deltas).graph.coo().edges.size());
}

TEST(StreamServing, ComposedTierBitwiseEqualAfterDeltas) {
  const Dataset base = make_stream_dataset();
  const auto snapshot = ModelSnapshot::random(sage_spec(base), 77, 3);
  DeltaStreamConfig stream_cfg;
  stream_cfg.num_deltas = 3;
  stream_cfg.seed = 104;
  const auto deltas = make_delta_stream(base, stream_cfg);

  Dataset live_data = base;
  EdgePartition partition = partition_libra(live_data.graph.coo(), /*num_parts=*/2);
  ComposedConfig cfg;
  cfg.replicas = 2;
  cfg.shard.max_batch = 4;
  cfg.shard.fanouts = {5, 5};
  ComposedTier live(live_data, partition, cfg);
  live.publish(snapshot);
  live.start();
  DeltaPublisher publisher(live_data, live, {}, &partition);
  expect_streamed_equals_cold(live, publisher, base, deltas, snapshot, /*embed_forward=*/false);
}

// ------------------------------------------------------------- mixed loop

TEST(MixedLoop, ReadsCompleteWhileWriteStreamPublishes) {
  const Dataset base = make_stream_dataset();
  const auto snapshot = ModelSnapshot::random(sage_spec(base), 77, 3);
  DeltaStreamConfig stream_cfg;
  stream_cfg.num_deltas = 4;
  stream_cfg.seed = 105;
  const auto deltas = make_delta_stream(base, stream_cfg);

  Dataset live_data = base;
  ServeConfig cfg;
  cfg.num_workers = 2;
  cfg.max_batch = 8;
  cfg.fanouts = {5, 5};
  InferenceServer server(live_data, cfg);
  server.publish(snapshot);
  server.start();
  DeltaPublisher publisher(live_data, server);

  MixedLoopConfig mixed;
  mixed.reads.process = ArrivalProcess::kPoisson;
  mixed.reads.rate = 2000;
  mixed.num_requests = 400;
  mixed.writes.process = ArrivalProcess::kPoisson;
  mixed.writes.rate = 50;  // ~80ms of write stream under a ~200ms read run
  const MixedLoopReport report =
      run_mixed_open_loop(server, publisher, deltas, mixed);
  server.stop();

  EXPECT_EQ(report.deltas_published, deltas.size());
  EXPECT_EQ(report.final_epoch, deltas.back().epoch);
  EXPECT_GT(report.reads.completed, 0u);
  EXPECT_GT(report.reads.qps, 0.0);
  EXPECT_GT(report.apply_p99_ms, 0.0);
  EXPECT_EQ(publisher.stats().deltas_published, deltas.size());
  // Targeted invalidation touches strictly fewer entries than a full flush.
  EXPECT_LT(publisher.stats().dirty_entries, publisher.stats().full_flush_equivalent);
}

}  // namespace
}  // namespace distgnn
