#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/aligned_buffer.hpp"
#include "util/matrix.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace distgnn {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NormalHasApproxUnitMoments) {
  Rng rng(5);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(AlignedBuffer, AlignmentAndValueInit) {
  AlignedBuffer<float> buf(1000, 1.5f);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kCacheLineBytes, 0u);
  for (const float v : buf) EXPECT_EQ(v, 1.5f);
}

TEST(AlignedBuffer, CopyAndMove) {
  AlignedBuffer<int> a(10, 3);
  AlignedBuffer<int> b = a;
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(b[9], 3);
  b[0] = 7;
  EXPECT_EQ(a[0], 3);  // deep copy
  AlignedBuffer<int> c = std::move(a);
  EXPECT_EQ(c.size(), 10u);
  EXPECT_EQ(c[5], 3);
}

TEST(AlignedBuffer, EmptyIsSafe) {
  AlignedBuffer<double> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.begin(), buf.end());
}

TEST(DenseMatrix, RowAccessAndViews) {
  DenseMatrix m(4, 3, 0.0f);
  m.at(2, 1) = 5.0f;
  EXPECT_EQ(m.view().at(2, 1), 5.0f);
  EXPECT_EQ(m.cview().at(2, 1), 5.0f);
  EXPECT_EQ(m.row(2)[1], 5.0f);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 3u);
}

TEST(DenseMatrix, ResizeDiscardZeroes) {
  DenseMatrix m(2, 2, 9.0f);
  m.resize_discard(3, 3);
  for (std::size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0f);
}

TEST(Stopwatch, AccumulatesAcrossLaps) {
  Stopwatch sw;
  sw.start();
  sw.stop();
  sw.start();
  sw.stop();
  EXPECT_EQ(sw.laps(), 2u);
  EXPECT_GE(sw.total_seconds(), 0.0);
}

TEST(Stopwatch, StopWithoutStartIsNoop) {
  Stopwatch sw;
  EXPECT_EQ(sw.stop(), 0.0);
  EXPECT_EQ(sw.laps(), 0u);
}

TEST(PhaseTimers, TracksNamedPhases) {
  PhaseTimers timers;
  {
    ScopedTimer t(timers["agg"]);
  }
  EXPECT_EQ(timers["agg"].laps(), 1u);
  EXPECT_EQ(timers.total_seconds("missing"), 0.0);
}

TEST(TextTable, RendersAlignedRows) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  const std::string out = t.render("Title");
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTable, FormatHelpers) {
  EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::fmt_int(-42), "-42");
}

TEST(Options, ParsesKeyValueForms) {
  // Note: a bare "--flag" must be last or followed by another --option,
  // otherwise the next token is consumed as its value.
  const char* argv[] = {"prog", "--alpha=3", "--beta", "7", "pos", "--flag"};
  Options opts(6, argv);
  EXPECT_EQ(opts.get_int("alpha", 0), 3);
  EXPECT_EQ(opts.get_int("beta", 0), 7);
  EXPECT_TRUE(opts.get_bool("flag", false));
  EXPECT_FALSE(opts.get_bool("missing", false));
  ASSERT_EQ(opts.positional().size(), 1u);
  EXPECT_EQ(opts.positional()[0], "pos");
}

TEST(Options, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Options opts(1, argv);
  EXPECT_EQ(opts.get("name", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(opts.get_double("x", 2.5), 2.5);
}

TEST(Options, RequireKnownAcceptsValidFlags) {
  const char* argv[] = {"prog", "--rate=100", "--workers=2"};
  Options opts(3, argv);
  EXPECT_NO_THROW(opts.require_known({"rate", "workers", "batch"}));
}

TEST(Options, RequireKnownRejectsUnknownFlags) {
  const char* argv[] = {"prog", "--rate=100", "--wrokers=2"};  // typo
  Options opts(3, argv);
  try {
    opts.require_known({"rate", "workers"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The message names the offending flag and lists the valid ones.
    EXPECT_NE(std::string(e.what()).find("--wrokers"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("--workers"), std::string::npos);
  }
}

}  // namespace
}  // namespace distgnn
