// Replicated serving tier: bitwise equivalence with single-server answers,
// version-barriered group publication, routing policy behaviour, deadline /
// priority admission control, and the MMPP shed-vs-no-shed tail comparison.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "comm/world.hpp"
#include "graph/datasets.hpp"
#include "serve/inference_server.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/replica_group.hpp"
#include "serve/router.hpp"
#include "serve/traffic_gen.hpp"

namespace distgnn {
namespace {

using namespace distgnn::serve;

Dataset make_replica_dataset() {
  LearnableSbmParams params;
  params.num_vertices = 512;
  params.num_classes = 4;
  params.avg_degree = 8;
  params.feature_dim = 16;
  params.seed = 5;
  return make_learnable_sbm(params);
}

ModelSpec sage_spec(const Dataset& dataset) {
  ModelSpec spec;
  spec.kind = ModelKind::kSage;
  spec.feature_dim = dataset.feature_dim();
  spec.hidden_dim = 16;
  spec.num_classes = dataset.num_classes;
  spec.num_layers = 2;
  return spec;
}

ServeConfig replica_config() {
  ServeConfig cfg;
  cfg.num_workers = 1;
  cfg.max_batch = 4;
  cfg.fanouts = {5, 5};
  return cfg;
}

// ---------------------------------------------------------------- equality

TEST(ReplicaGroup, RouterAnswersAreBitwiseEqualToSingleServer) {
  const Dataset dataset = make_replica_dataset();
  const auto snapshot = ModelSnapshot::random(sage_spec(dataset), /*seed=*/31, /*version=*/1);
  const ServeConfig cfg = replica_config();

  std::vector<vid_t> vertices;
  for (vid_t v = 0; v < 30; ++v)
    vertices.push_back((v * 37) % static_cast<vid_t>(dataset.num_vertices()));

  InferenceServer single(dataset, cfg);
  single.publish(snapshot);
  single.start();
  std::vector<std::vector<real_t>> expected;
  for (const vid_t v : vertices) expected.push_back(single.infer_sync(v).logits);
  single.stop();

  for (const RoutePolicy policy :
       {RoutePolicy::kRoundRobin, RoutePolicy::kLeastOutstanding, RoutePolicy::kPowerOfTwo}) {
    ReplicaGroup group(dataset, cfg, /*num_replicas=*/3);
    group.publish(snapshot);
    group.start();
    Router router(group, policy);
    const auto results = router.infer_batch(vertices);
    group.stop();

    ASSERT_EQ(results.size(), vertices.size());
    const RouterStats stats = router.stats();
    EXPECT_EQ(stats.admitted, vertices.size());  // no deadlines -> nothing shed
    EXPECT_EQ(stats.shed(), 0u);
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      ASSERT_TRUE(results[i].has_value()) << "request " << i;
      EXPECT_EQ(results[i]->logits, expected[i])
          << route_policy_name(policy) << " request " << i;
      EXPECT_EQ(results[i]->snapshot_version, 1u);
    }
  }
}

// ------------------------------------------------------------- group publish

TEST(ReplicaGroup, GroupPublishHotSwapsEveryReplica) {
  const Dataset dataset = make_replica_dataset();
  const ModelSpec spec = sage_spec(dataset);
  const auto v1 = ModelSnapshot::random(spec, /*seed=*/1, /*version=*/1);
  const auto v2 = ModelSnapshot::random(spec, /*seed=*/2, /*version=*/2);

  ReplicaGroup group(dataset, replica_config(), 3);
  group.publish(v1);
  EXPECT_EQ(group.version(), 1u);
  group.publish(v2);
  EXPECT_EQ(group.version(), 2u);
  EXPECT_EQ(group.publishes(), 2u);
  for (int r = 0; r < group.num_replicas(); ++r)
    EXPECT_EQ(group.replica(r).snapshot()->version(), 2u) << "replica " << r;
}

TEST(ReplicaGroup, VersionBarrierNeverMixesVersionsWithinABatch) {
  const Dataset dataset = make_replica_dataset();
  const ModelSpec spec = sage_spec(dataset);
  const auto snap_a = ModelSnapshot::random(spec, /*seed=*/100, /*version=*/1);
  const auto snap_b = ModelSnapshot::random(spec, /*seed=*/200, /*version=*/2);

  ServeConfig cfg = replica_config();
  cfg.num_workers = 2;
  ReplicaGroup group(dataset, cfg, 2);
  group.publish(snap_a);
  group.start();
  Router router(group, RoutePolicy::kRoundRobin);

  std::atomic<int> mixed_batches{0};
  std::atomic<bool> publishing{true};
  std::thread publisher([&] {
    for (int i = 0; i < 30; ++i) {
      group.publish(i % 2 == 0 ? snap_b : snap_a);
      std::this_thread::yield();
    }
    publishing.store(false);
  });

  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      std::vector<vid_t> batch;
      for (vid_t i = 0; i < 8; ++i)
        batch.push_back((static_cast<vid_t>(c) * 131 + i * 17) %
                        static_cast<vid_t>(dataset.num_vertices()));
      for (int iter = 0; iter < 20; ++iter) {
        const auto results = router.infer_batch(batch);
        std::uint64_t version = 0;
        bool mixed = false;
        for (const auto& r : results) {
          if (!r.has_value()) continue;
          if (version == 0) version = r->snapshot_version;
          mixed = mixed || r->snapshot_version != version;
        }
        if (mixed) mixed_batches.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  publisher.join();
  group.stop();
  EXPECT_EQ(mixed_batches.load(), 0);
  EXPECT_EQ(group.publishes(), 31u);
}

// ----------------------------------------------------------------- routing

TEST(Router, ParsePolicyNamesAndRejectTypos) {
  EXPECT_EQ(parse_route_policy("round-robin"), RoutePolicy::kRoundRobin);
  EXPECT_EQ(parse_route_policy("rr"), RoutePolicy::kRoundRobin);
  EXPECT_EQ(parse_route_policy("least-outstanding"), RoutePolicy::kLeastOutstanding);
  EXPECT_EQ(parse_route_policy("p2c"), RoutePolicy::kPowerOfTwo);
  EXPECT_EQ(route_policy_name(RoutePolicy::kPowerOfTwo), "p2c");
  EXPECT_THROW(parse_route_policy("p2"), std::invalid_argument);
  EXPECT_THROW(parse_route_policy(""), std::invalid_argument);
}

TEST(Router, RoundRobinSpreadsExactlyEvenly) {
  const Dataset dataset = make_replica_dataset();
  const auto snapshot = ModelSnapshot::random(sage_spec(dataset), /*seed=*/31, /*version=*/1);
  ReplicaGroup group(dataset, replica_config(), 3);
  group.publish(snapshot);
  group.start();
  Router router(group, RoutePolicy::kRoundRobin);

  std::vector<vid_t> vertices(30);
  for (std::size_t i = 0; i < vertices.size(); ++i) vertices[i] = static_cast<vid_t>(i);
  (void)router.infer_batch(vertices);
  group.stop();

  const RouterStats stats = router.stats();
  ASSERT_EQ(stats.admitted_per_replica.size(), 3u);
  for (const std::uint64_t n : stats.admitted_per_replica) EXPECT_EQ(n, 10u);
}

TEST(Router, DepthAwarePoliciesUseEveryReplica) {
  const Dataset dataset = make_replica_dataset();
  const auto snapshot = ModelSnapshot::random(sage_spec(dataset), /*seed=*/31, /*version=*/1);
  for (const RoutePolicy policy :
       {RoutePolicy::kLeastOutstanding, RoutePolicy::kPowerOfTwo}) {
    ReplicaGroup group(dataset, replica_config(), 3);
    group.publish(snapshot);
    group.start();
    Router router(group, policy);
    std::vector<vid_t> vertices(120);
    for (std::size_t i = 0; i < vertices.size(); ++i)
      vertices[i] = static_cast<vid_t>((i * 13) % dataset.num_vertices());
    (void)router.infer_batch(vertices);
    group.stop();

    const RouterStats stats = router.stats();
    std::uint64_t total = 0;
    for (const std::uint64_t n : stats.admitted_per_replica) {
      EXPECT_GT(n, 0u) << route_policy_name(policy);
      total += n;
    }
    EXPECT_EQ(total, vertices.size());
  }
}

TEST(Router, OutOfRangeVertexThrowsWithoutWedgingPublish) {
  const Dataset dataset = make_replica_dataset();
  const ModelSpec spec = sage_spec(dataset);
  const auto v1 = ModelSnapshot::random(spec, /*seed=*/1, /*version=*/1);
  const auto v2 = ModelSnapshot::random(spec, /*seed=*/2, /*version=*/2);
  ReplicaGroup group(dataset, replica_config(), 2);
  group.publish(v1);
  group.start();
  Router router(group, RoutePolicy::kLeastOutstanding);

  EXPECT_THROW(router.submit(dataset.num_vertices(), [](InferResult&&) {}), std::out_of_range);
  EXPECT_THROW(router.infer_batch(std::vector<vid_t>{0, -1}), std::out_of_range);

  // A leaked admission slot would deadlock this publish forever.
  group.publish(v2);
  EXPECT_EQ(group.version(), 2u);
  const auto results = router.infer_batch(std::vector<vid_t>{3, 4});
  group.stop();
  for (const auto& r : results) {
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->snapshot_version, 2u);
  }
}

TEST(Router, StatsSinceSubtractsWarmupBaseline) {
  const Dataset dataset = make_replica_dataset();
  const auto snapshot = ModelSnapshot::random(sage_spec(dataset), /*seed=*/31, /*version=*/1);
  ReplicaGroup group(dataset, replica_config(), 2);
  group.publish(snapshot);
  group.start();
  Router router(group, RoutePolicy::kRoundRobin);

  (void)router.infer_batch(std::vector<vid_t>{1, 2, 3});
  const RouterStats warmed = router.stats();
  (void)router.infer_batch(std::vector<vid_t>{4, 5, 6, 7});
  group.stop();

  const RouterStats delta = router.stats().since(warmed);
  EXPECT_EQ(delta.submitted, 4u);
  EXPECT_EQ(delta.admitted, 4u);
  EXPECT_EQ(delta.completed, 4u);
  EXPECT_EQ(delta.shed(), 0u);
  ASSERT_EQ(delta.admitted_per_replica.size(), 2u);
  EXPECT_EQ(delta.admitted_per_replica[0] + delta.admitted_per_replica[1], 4u);
}

// ---------------------------------------------------------------- admission

TEST(Admission, ExpiredDeadlineIsAlwaysShed) {
  const Dataset dataset = make_replica_dataset();
  const auto snapshot = ModelSnapshot::random(sage_spec(dataset), /*seed=*/31, /*version=*/1);
  ReplicaGroup group(dataset, replica_config(), 2);
  group.publish(snapshot);
  group.start();
  Router router(group, RoutePolicy::kRoundRobin);

  const auto expired = ServeClock::now() - std::chrono::milliseconds(1);
  EXPECT_FALSE(router.submit(0, expired, Priority::kHigh, [](InferResult&&) { FAIL(); }));
  group.stop();
  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.shed_deadline, 1u);
  EXPECT_EQ(stats.admitted, 0u);
}

TEST(Admission, IdleGroupAdmitsGenerousDeadlinesAndNoDeadlineIsNeverShed) {
  const Dataset dataset = make_replica_dataset();
  const auto snapshot = ModelSnapshot::random(sage_spec(dataset), /*seed=*/31, /*version=*/1);
  ReplicaGroup group(dataset, replica_config(), 2);
  group.publish(snapshot);
  group.start();
  Router router(group, RoutePolicy::kLeastOutstanding);

  // Warm the service-rate estimate so the deadline path actually evaluates.
  std::vector<vid_t> warmup(16);
  for (std::size_t i = 0; i < warmup.size(); ++i) warmup[i] = static_cast<vid_t>(i * 7);
  (void)router.infer_batch(warmup);

  const auto generous = ServeClock::now() + std::chrono::seconds(30);
  const auto results =
      router.infer_batch(std::vector<vid_t>{1, 2, 3, 4}, generous, Priority::kHigh);
  for (const auto& r : results) EXPECT_TRUE(r.has_value());
  (void)router.infer_batch(std::vector<vid_t>{5, 6});  // no deadline
  group.stop();
  EXPECT_EQ(router.stats().shed(), 0u);
}

TEST(Admission, BacklogShedsOnlyUnmeetableDeadlines) {
  const Dataset dataset = make_replica_dataset();
  const auto snapshot = ModelSnapshot::random(sage_spec(dataset), /*seed=*/31, /*version=*/1);
  ServeConfig cfg = replica_config();
  cfg.fanouts = {10, 10};  // heavier service so the backlog estimate is solid
  ReplicaGroup group(dataset, cfg, 1);
  group.publish(snapshot);
  group.start();
  Router router(group, RoutePolicy::kRoundRobin);

  std::vector<vid_t> warmup(32);
  for (std::size_t i = 0; i < warmup.size(); ++i)
    warmup[i] = static_cast<vid_t>((i * 13) % dataset.num_vertices());
  (void)router.infer_batch(warmup);
  const double svc = group.replica(0).mean_service_seconds();
  ASSERT_GT(svc, 0.0);

  // Build a deep no-deadline backlog, then probe with one deadline that the
  // backlog makes unmeetable and one far beyond any plausible drain time.
  std::atomic<int> drained{0};
  const int backlog = 400;
  for (int i = 0; i < backlog; ++i)
    ASSERT_TRUE(router.submit(static_cast<vid_t>(i % dataset.num_vertices()),
                              [&](InferResult&&) { drained.fetch_add(1); }));

  const auto tight = ServeClock::now() +
                     std::chrono::duration_cast<ServeClock::duration>(
                         std::chrono::duration<double>(svc * 4));  // << backlog drain time
  EXPECT_FALSE(router.submit(7, tight, Priority::kHigh, [](InferResult&&) { FAIL(); }));

  std::atomic<bool> generous_done{false};
  const auto generous = ServeClock::now() + std::chrono::seconds(60);
  EXPECT_TRUE(router.submit(7, generous, Priority::kHigh,
                            [&](InferResult&&) { generous_done.store(true); }));

  while (drained.load() < backlog || !generous_done.load()) std::this_thread::yield();
  group.stop();
  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.shed_deadline, 1u);
  EXPECT_EQ(stats.shed_queue_full, 0u);
}

TEST(Admission, LowPriorityShedsFirstUnderBacklog) {
  const Dataset dataset = make_replica_dataset();
  const auto snapshot = ModelSnapshot::random(sage_spec(dataset), /*seed=*/31, /*version=*/1);
  ServeConfig cfg = replica_config();
  cfg.fanouts = {10, 10};
  AdmissionConfig admission;
  admission.low_priority_depth = 32;
  ReplicaGroup group(dataset, cfg, 1);
  group.publish(snapshot);
  group.start();
  Router router(group, RoutePolicy::kRoundRobin, admission);

  std::atomic<int> drained{0};
  const int backlog = 300;  // far past the low-priority watermark
  for (int i = 0; i < backlog; ++i)
    ASSERT_TRUE(router.submit(static_cast<vid_t>(i % dataset.num_vertices()),
                              [&](InferResult&&) { drained.fetch_add(1); }));

  // Same instant, same vertex: the low lane sheds, the high lane does not.
  EXPECT_FALSE(router.submit(9, ServeClock::time_point::max(), Priority::kLow,
                             [](InferResult&&) { FAIL(); }));
  std::atomic<bool> high_done{false};
  EXPECT_TRUE(router.submit(9, ServeClock::time_point::max(), Priority::kHigh,
                            [&](InferResult&&) { high_done.store(true); }));

  while (drained.load() < backlog || !high_done.load()) std::this_thread::yield();
  group.stop();
  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.shed_priority, 1u);
  EXPECT_EQ(stats.shed_deadline, 0u);
}

// ------------------------------------------------- group snapshot broadcast

TEST(SnapshotBroadcast, EveryRankReconstructsBitwiseIdenticalModel) {
  const Dataset dataset = make_replica_dataset();
  const ModelSpec spec = sage_spec(dataset);
  const auto original = ModelSnapshot::random(spec, /*seed=*/77, /*version=*/42);
  constexpr int kRoot = 1;

  std::vector<std::vector<real_t>> flats(3);
  std::vector<std::uint64_t> versions(3, 0);
  World::launch(3, [&](Communicator& comm) {
    const auto mine = broadcast_snapshot(
        comm, spec, comm.rank() == kRoot ? original : nullptr, kRoot);
    flats[static_cast<std::size_t>(comm.rank())] = mine->flatten();
    versions[static_cast<std::size_t>(comm.rank())] = mine->version();
  });

  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(versions[static_cast<std::size_t>(r)], 42u) << "rank " << r;
    EXPECT_EQ(flats[static_cast<std::size_t>(r)], original->flatten()) << "rank " << r;
  }
}

TEST(SnapshotBroadcast, FlatRoundTripMatchesAndValidatesSize) {
  const Dataset dataset = make_replica_dataset();
  const ModelSpec spec = sage_spec(dataset);
  const auto original = ModelSnapshot::random(spec, /*seed=*/7, /*version=*/5);
  const std::vector<real_t> flat = original->flatten();
  EXPECT_EQ(flat.size(), original->num_parameters());

  const auto rebuilt = ModelSnapshot::from_flat(spec, flat, /*version=*/5);
  EXPECT_EQ(rebuilt->flatten(), flat);

  std::vector<real_t> truncated(flat.begin(), flat.end() - 1);
  EXPECT_THROW(ModelSnapshot::from_flat(spec, truncated, 5), std::runtime_error);
  std::vector<real_t> oversized = flat;
  oversized.push_back(0.0f);
  EXPECT_THROW(ModelSnapshot::from_flat(spec, oversized, 5), std::runtime_error);
}

// ------------------------------------------------------- shed-vs-noshed A/B

TEST(Admission, SheddingLowersAdmittedTailUnderMmppOverload) {
  const Dataset dataset = make_replica_dataset();
  const auto snapshot = ModelSnapshot::random(sage_spec(dataset), /*seed=*/31, /*version=*/1);
  ServeConfig cfg = replica_config();
  cfg.fanouts = {10, 10};
  cfg.queue_capacity = 2048;

  // Self-calibrating offered load: measure the group's service rate, then
  // offer a 2-state MMPP whose burst state is ~8x capacity — the same
  // arrival sequence (same seed/rates) drives both runs.
  const auto run = [&](bool shed) {
    ReplicaGroup group(dataset, cfg, /*num_replicas=*/2);
    group.publish(snapshot);
    group.start();
    AdmissionConfig admission;
    admission.shed_deadlines = shed;
    admission.low_priority_depth = 0;  // isolate the deadline dimension
    Router router(group, RoutePolicy::kPowerOfTwo, admission);

    std::vector<vid_t> warmup(64);
    for (std::size_t i = 0; i < warmup.size(); ++i)
      warmup[i] = static_cast<vid_t>((i * 13) % dataset.num_vertices());
    (void)router.infer_batch(warmup);
    double svc = 0;
    for (int r = 0; r < group.num_replicas(); ++r)
      svc = std::max(svc, group.replica(r).mean_service_seconds());
    if (svc <= 0) svc = 100e-6;
    const double capacity = static_cast<double>(group.num_replicas()) / svc;

    RouterLoadConfig load;
    load.arrivals.process = ArrivalProcess::kMmpp;
    load.arrivals.mmpp_rate0 = 0.5 * capacity;
    load.arrivals.mmpp_rate1 = 8.0 * capacity;
    load.arrivals.mmpp_hold0 = 0.005;
    load.arrivals.mmpp_hold1 = 0.004;
    load.arrivals.seed = 17;
    load.num_requests = 2000;
    load.deadline_seconds = 40 * svc;
    const LoadReport report = run_router_open_loop(router, load);
    const RouterStats stats = router.stats();
    group.stop();
    return std::pair<LoadReport, RouterStats>(report, stats);
  };

  const auto [with_shed, with_stats] = run(true);
  const auto [no_shed, no_stats] = run(false);

  // Equal offered load; shedding must trade completed volume for a strictly
  // lower admitted-request tail.
  EXPECT_EQ(with_shed.offered, no_shed.offered);
  EXPECT_GT(with_stats.shed_deadline, 0u);
  EXPECT_LT(with_stats.shed_rate(), 1.0);
  EXPECT_GT(with_shed.completed, 0u);
  EXPECT_LT(with_shed.p99_ms, no_shed.p99_ms);
  EXPECT_LE(with_shed.p999_ms, no_shed.p999_ms);
}

// -------------------------------------------------------------- server stats

TEST(ReplicaGroup, AggregatedStatsCountServiceTimeAndCompletions) {
  const Dataset dataset = make_replica_dataset();
  const auto snapshot = ModelSnapshot::random(sage_spec(dataset), /*seed=*/31, /*version=*/1);
  ReplicaGroup group(dataset, replica_config(), 2);
  group.publish(snapshot);
  group.start();
  Router router(group, RoutePolicy::kRoundRobin);
  std::vector<vid_t> vertices(20);
  for (std::size_t i = 0; i < vertices.size(); ++i) vertices[i] = static_cast<vid_t>(i * 11);
  (void)router.infer_batch(vertices);
  group.stop();

  const BackendStats stats = group.stats();
  EXPECT_EQ(stats.completed, vertices.size());
  EXPECT_EQ(stats.children.size(), 2u);
  for (const BackendStats& s : stats.children) {
    EXPECT_GT(s.service_seconds, 0.0);
    EXPECT_GT(s.mean_service_seconds(), 0.0);
    EXPECT_EQ(s.queue_depth, 0u);  // drained
  }
  EXPECT_EQ(router.stats().completed, vertices.size());
}

}  // namespace
}  // namespace distgnn
