#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/generators.hpp"
#include "partition/halo_plan.hpp"
#include "partition/libra.hpp"
#include "partition/partition_setup.hpp"
#include "partition/partition_stats.hpp"

namespace distgnn {
namespace {

EdgeList test_graph(vid_t n = 2048, eid_t m = 16384, std::uint64_t seed = 7) {
  return generate_rmat({.num_vertices = n, .num_edges = m, .seed = seed});
}

class StrategyTest : public ::testing::TestWithParam<std::tuple<PartitionStrategy, part_t>> {};

TEST_P(StrategyTest, EveryEdgeAssignedExactlyOnce) {
  const auto [strategy, parts] = GetParam();
  const EdgeList el = test_graph();
  const EdgePartition ep = partition_edges(el, parts, strategy, 1);
  ASSERT_EQ(ep.edge_owner.size(), el.edges.size());
  eid_t total = 0;
  for (const part_t p : ep.edge_owner) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, parts);
  }
  for (const eid_t c : ep.edges_per_part) total += c;
  EXPECT_EQ(total, el.num_edges());
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyTest,
    ::testing::Combine(::testing::Values(PartitionStrategy::kLibra, PartitionStrategy::kRandom,
                                         PartitionStrategy::kSourceHash, PartitionStrategy::kRange),
                       ::testing::Values(part_t{1}, part_t{2}, part_t{5}, part_t{16})));

TEST(Libra, SinglePartitionHasNoSplits) {
  const EdgeList el = test_graph(256, 1024);
  const EdgePartition ep = partition_libra(el, 1);
  const PartitionQuality q = evaluate_partition(el, ep);
  EXPECT_DOUBLE_EQ(q.replication_factor, 1.0);
  EXPECT_EQ(q.split_vertices, 0);
}

TEST(Libra, ProducesBalancedPartitions) {
  const EdgeList el = test_graph(4096, 65536);
  for (const part_t parts : {2, 4, 8, 16}) {
    const EdgePartition ep = partition_libra(el, parts);
    const PartitionQuality q = evaluate_partition(el, ep);
    EXPECT_LT(q.edge_balance, 1.05) << parts << " partitions";
  }
}

TEST(Libra, ReplicationGrowsWithPartitionCount) {
  // Table 4's structural property: more partitions -> more clones.
  const EdgeList el = test_graph(4096, 65536);
  double prev = 1.0;
  for (const part_t parts : {2, 4, 8, 16}) {
    const PartitionQuality q = evaluate_partition(el, partition_libra(el, parts));
    EXPECT_GT(q.replication_factor, prev);
    prev = q.replication_factor;
  }
}

TEST(Libra, BeatsRandomOnReplication) {
  const EdgeList el = test_graph(4096, 65536);
  const PartitionQuality libra = evaluate_partition(el, partition_libra(el, 8));
  const PartitionQuality random = evaluate_partition(el, partition_random(el, 8));
  EXPECT_LT(libra.replication_factor, random.replication_factor);
}

TEST(Libra, ClusteredGraphPartitionsBetterThanUnclusteredOne) {
  // Proteins-vs-Reddit contrast of Table 4: community structure gives a
  // smaller replication factor at the same size and degree, because the
  // intersection-first greedy keeps whole clusters co-located.
  SbmParams sp;
  sp.num_vertices = 4096;
  sp.num_blocks = 64;
  sp.avg_degree = 16;
  sp.in_out_ratio = 24.0;
  const EdgeList clustered = generate_sbm(sp).edges;
  const EdgeList uniform = generate_erdos_renyi(4096, 8 * 4096, 3);
  const double rep_clustered =
      evaluate_partition(clustered, partition_libra(clustered, 8)).replication_factor;
  const double rep_uniform =
      evaluate_partition(uniform, partition_libra(uniform, 8)).replication_factor;
  EXPECT_LT(rep_clustered, rep_uniform);
}

TEST(Libra, DeterministicForSeed) {
  const EdgeList el = test_graph(512, 4096);
  const EdgePartition a = partition_libra(el, 4, 9);
  const EdgePartition b = partition_libra(el, 4, 9);
  EXPECT_EQ(a.edge_owner, b.edge_owner);
}

TEST(Libra, RejectsBadPartitionCounts) {
  const EdgeList el = test_graph(64, 128);
  EXPECT_THROW(partition_libra(el, 0), std::invalid_argument);
  EXPECT_THROW(partition_libra(el, 300), std::invalid_argument);
}

// ---- partition setup ----

class SetupTest : public ::testing::TestWithParam<part_t> {
 protected:
  void SetUp() override {
    el_ = test_graph(1024, 8192, 11);
    ep_ = partition_libra(el_, GetParam());
    pg_ = build_partitions(el_, ep_, 5);
  }
  EdgeList el_;
  EdgePartition ep_;
  PartitionedGraph pg_;
};

TEST_P(SetupTest, LocalEdgeCountsMatchAssignment) {
  for (part_t p = 0; p < pg_.num_parts; ++p)
    EXPECT_EQ(pg_.parts[static_cast<std::size_t>(p)].edges.num_edges(),
              ep_.edges_per_part[static_cast<std::size_t>(p)]);
}

TEST_P(SetupTest, LocalEdgesMapBackToGlobalEdges) {
  std::multiset<std::pair<vid_t, vid_t>> global;
  for (const Edge& e : el_.edges) global.insert({e.src, e.dst});
  std::multiset<std::pair<vid_t, vid_t>> reconstructed;
  for (const LocalPartition& lp : pg_.parts)
    for (const Edge& e : lp.edges.edges)
      reconstructed.insert({lp.global_ids[static_cast<std::size_t>(e.src)],
                            lp.global_ids[static_cast<std::size_t>(e.dst)]});
  EXPECT_EQ(global, reconstructed);
}

TEST_P(SetupTest, ExactlyOneRootPerSplitTree) {
  std::map<std::int64_t, int> roots, clones;
  for (const LocalPartition& lp : pg_.parts) {
    for (vid_t v = 0; v < lp.num_vertices; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (lp.tree_id[vi] < 0) continue;
      ++clones[lp.tree_id[vi]];
      if (lp.is_root[vi]) ++roots[lp.tree_id[vi]];
    }
  }
  EXPECT_EQ(static_cast<std::int64_t>(clones.size()), pg_.num_split_trees);
  for (const auto& [tree, count] : clones) {
    EXPECT_GE(count, 2) << "tree " << tree;
    EXPECT_EQ(roots[tree], 1) << "tree " << tree;
  }
}

TEST_P(SetupTest, LabelOwnedExactlyOncePerVertex) {
  std::map<vid_t, int> owners;
  for (const LocalPartition& lp : pg_.parts)
    for (vid_t v = 0; v < lp.num_vertices; ++v)
      if (lp.owns_label[static_cast<std::size_t>(v)])
        ++owners[lp.global_ids[static_cast<std::size_t>(v)]];
  for (const auto& [gv, count] : owners) EXPECT_EQ(count, 1) << "vertex " << gv;
  // Every touched vertex has exactly one owner.
  const PartitionQuality q = evaluate_partition(el_, ep_);
  EXPECT_EQ(static_cast<vid_t>(owners.size()), q.touched_vertices);
}

TEST_P(SetupTest, VertexMapIsConsistent) {
  ASSERT_EQ(pg_.vertex_map.size(), static_cast<std::size_t>(pg_.num_parts) + 1);
  EXPECT_EQ(pg_.vertex_map[0], 0);
  for (part_t p = 0; p < pg_.num_parts; ++p) {
    EXPECT_EQ(pg_.vertex_map[static_cast<std::size_t>(p) + 1] - pg_.vertex_map[static_cast<std::size_t>(p)],
              pg_.parts[static_cast<std::size_t>(p)].num_vertices);
    if (pg_.parts[static_cast<std::size_t>(p)].num_vertices > 0) {
      const vid_t gl = pg_.global_local_id(p, 0);
      EXPECT_EQ(pg_.partition_of_local_id(gl), p);
    }
  }
}

TEST_P(SetupTest, GlobalInDegreePreserved) {
  std::vector<eid_t> global_deg(static_cast<std::size_t>(el_.num_vertices), 0);
  for (const Edge& e : el_.edges) ++global_deg[static_cast<std::size_t>(e.dst)];
  for (const LocalPartition& lp : pg_.parts)
    for (vid_t v = 0; v < lp.num_vertices; ++v)
      EXPECT_EQ(lp.global_in_degree[static_cast<std::size_t>(v)],
                global_deg[static_cast<std::size_t>(lp.global_ids[static_cast<std::size_t>(v)])]);
}

INSTANTIATE_TEST_SUITE_P(PartCounts, SetupTest, ::testing::Values(part_t{2}, part_t{4}, part_t{8}));

// ---- halo plans ----

class HaloTest : public ::testing::TestWithParam<std::tuple<part_t, int /*bins*/>> {};

TEST_P(HaloTest, ChannelsAreSymmetricAndComplete) {
  const auto [parts, bins] = GetParam();
  const EdgeList el = test_graph(1024, 8192, 13);
  const PartitionedGraph pg = build_partitions(el, partition_libra(el, parts), 3);
  const auto plans = build_halo_plans(pg, bins);
  ASSERT_EQ(plans.size(), static_cast<std::size_t>(parts));

  std::int64_t total_leaf_entries = 0;
  for (part_t p = 0; p < parts; ++p) {
    for (int b = 0; b < bins; ++b) {
      for (part_t q = 0; q < parts; ++q) {
        const auto& mine = plans[static_cast<std::size_t>(p)].peer(b, q);
        const auto& theirs = plans[static_cast<std::size_t>(q)].peer(b, p);
        // Matching list lengths across each channel.
        EXPECT_EQ(mine.send_leaf.size(), theirs.recv_root.size());
        EXPECT_EQ(mine.send_root.size(), theirs.recv_leaf.size());
        // Roots answer exactly the leaves that pushed to them.
        EXPECT_EQ(theirs.recv_root.size(), theirs.send_root.size());
        EXPECT_EQ(mine.send_leaf.size(), mine.recv_leaf.size());
        total_leaf_entries += static_cast<std::int64_t>(mine.send_leaf.size());
      }
    }
  }
  // Total leaf channel entries == total clones minus one root per tree.
  std::int64_t expected = 0;
  for (const LocalPartition& lp : pg.parts)
    for (vid_t v = 0; v < lp.num_vertices; ++v)
      if (lp.is_split[static_cast<std::size_t>(v)] && !lp.is_root[static_cast<std::size_t>(v)])
        ++expected;
  EXPECT_EQ(total_leaf_entries, expected);
}

TEST_P(HaloTest, EveryLeafAppearsInExactlyOneBin) {
  const auto [parts, bins] = GetParam();
  const EdgeList el = test_graph(1024, 8192, 17);
  const PartitionedGraph pg = build_partitions(el, partition_libra(el, parts), 3);
  const auto plans = build_halo_plans(pg, bins);
  for (part_t p = 0; p < parts; ++p) {
    std::set<vid_t> seen;
    for (int b = 0; b < bins; ++b) {
      for (part_t q = 0; q < parts; ++q) {
        for (const vid_t v : plans[static_cast<std::size_t>(p)].peer(b, q).send_leaf) {
          EXPECT_TRUE(seen.insert(v).second) << "leaf " << v << " appears twice";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, HaloTest,
                         ::testing::Combine(::testing::Values(part_t{2}, part_t{4}, part_t{8}),
                                            ::testing::Values(1, 3, 5)));

TEST(HaloPlan, LeafSendVolumeSumsBins) {
  const EdgeList el = test_graph(512, 4096, 19);
  const PartitionedGraph pg = build_partitions(el, partition_libra(el, 4), 3);
  const auto one_bin = build_halo_plans(pg, 1);
  const auto five_bins = build_halo_plans(pg, 5);
  for (part_t p = 0; p < 4; ++p) {
    std::size_t total = 0;
    for (int b = 0; b < 5; ++b) total += five_bins[static_cast<std::size_t>(p)].leaf_send_volume(b);
    EXPECT_EQ(total, one_bin[static_cast<std::size_t>(p)].leaf_send_volume(0));
  }
}

}  // namespace
}  // namespace distgnn
