// The unified ServingBackend contract and the replicated x sharded
// composition: ShardedServer as a long-lived backend (bitwise equality,
// prefetch ring depths, per-rank embedding caches), ComposedTier's R x P
// grid against a single server, Router policies over heterogeneous backend
// mixes, and the SnapshotHolder publish-hook re-registration semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <thread>
#include <vector>

#include "graph/datasets.hpp"
#include "partition/libra.hpp"
#include "serve/backend.hpp"
#include "serve/composed_tier.hpp"
#include "serve/embed_cache.hpp"
#include "serve/inference_server.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/replica_group.hpp"
#include "serve/router.hpp"
#include "serve/sharded_server.hpp"
#include "util/sync.hpp"

namespace distgnn {
namespace {

using namespace distgnn::serve;

Dataset make_composed_dataset() {
  LearnableSbmParams params;
  params.num_vertices = 512;
  params.num_classes = 4;
  params.avg_degree = 8;
  params.feature_dim = 16;
  params.seed = 5;
  return make_learnable_sbm(params);
}

ModelSpec sage_spec(const Dataset& dataset) {
  ModelSpec spec;
  spec.kind = ModelKind::kSage;
  spec.feature_dim = dataset.feature_dim();
  spec.hidden_dim = 16;
  spec.num_classes = dataset.num_classes;
  spec.num_layers = 2;
  return spec;
}

std::vector<vid_t> probe_vertices(const Dataset& dataset, int count, vid_t stride) {
  std::vector<vid_t> vertices;
  for (vid_t v = 0; v < count; ++v)
    vertices.push_back((v * stride) % static_cast<vid_t>(dataset.num_vertices()));
  return vertices;
}

/// Single-server reference answers with the canonical (seed=1, {5,5}) setup
/// every backend below shares.
std::vector<std::vector<real_t>> single_server_reference(const Dataset& dataset,
                                                         std::shared_ptr<const ModelSnapshot> snap,
                                                         std::span<const vid_t> vertices) {
  ServeConfig cfg;
  cfg.num_workers = 1;
  cfg.max_batch = 4;
  cfg.fanouts = {5, 5};
  InferenceServer single(dataset, cfg);
  single.publish(std::move(snap));
  single.start();
  std::vector<std::vector<real_t>> expected;
  for (const vid_t v : vertices) expected.push_back(single.infer_sync(v).logits);
  single.stop();
  return expected;
}

// ------------------------------------------------------------ ShardedServer

TEST(ShardedServer, BackendAnswersBitwiseEqualSingleServerAndDrains) {
  const Dataset dataset = make_composed_dataset();
  const auto snapshot = ModelSnapshot::random(sage_spec(dataset), /*seed=*/77, /*version=*/3);
  const std::vector<vid_t> vertices = probe_vertices(dataset, 40, 37);
  const auto expected = single_server_reference(dataset, snapshot, vertices);

  const EdgePartition partition = partition_libra(dataset.graph.coo(), /*num_parts=*/2);
  ShardedServeConfig cfg;
  cfg.max_batch = 4;
  cfg.fanouts = {5, 5};
  ShardedServer server(dataset, partition, cfg);
  server.publish(snapshot);
  server.start();

  // Through the generic backend surface: async submits, then drain().
  ServingBackend& backend = server;
  std::vector<std::vector<real_t>> got(vertices.size());
  std::atomic<std::size_t> done{0};
  for (std::size_t i = 0; i < vertices.size(); ++i)
    ASSERT_TRUE(backend.submit(vertices[i], [&, i](InferResult&& r) {
      got[i] = std::move(r.logits);
      done.fetch_add(1);
    }));
  backend.drain();
  EXPECT_EQ(done.load(), vertices.size());
  for (std::size_t i = 0; i < vertices.size(); ++i)
    EXPECT_EQ(got[i], expected[i]) << "request " << i;

  const BackendStats stats = backend.stats();
  EXPECT_EQ(stats.completed, vertices.size());
  ASSERT_EQ(stats.children.size(), 2u);  // per-rank detail
  EXPECT_GT(stats.children[0].completed, 0u);
  EXPECT_GT(stats.children[1].completed, 0u);
  EXPECT_GT(stats.halo_rows_fetched, 0u);  // the vertex-cut really ran
  EXPECT_GT(stats.mean_service_seconds(), 0.0);
  EXPECT_EQ(stats.queue_depth, 0u);
  server.stop();
}

TEST(ShardedServer, PrefetchRingDepthsAreBitwiseIdentical) {
  const Dataset dataset = make_composed_dataset();
  const auto snapshot = ModelSnapshot::random(sage_spec(dataset), /*seed=*/77, /*version=*/3);
  const EdgePartition partition = partition_libra(dataset.graph.coo(), /*num_parts=*/2);

  const std::vector<vid_t> requests = probe_vertices(dataset, 48, 29);
  ShardedServeConfig cfg;
  cfg.max_batch = 4;
  cfg.fanouts = {5, 5};

  // Direct long-lived servers (the serve_sharded wrapper is gone): one
  // per depth, same snapshot, results aligned by request index.
  const auto run_at_depth = [&](int depth) {
    ShardedServeConfig at = cfg;
    at.prefetch_depth = depth;
    ShardedServer server(dataset, partition, at);
    server.publish(snapshot);
    server.start();
    std::vector<InferResult> results(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      while (!server.submit(requests[i],
                            [&results, i](InferResult&& r) { results[i] = std::move(r); }))
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    server.drain();
    const std::uint64_t halo_rows = server.stats().halo_rows_fetched;
    server.stop();
    return std::pair{std::move(results), halo_rows};
  };
  const auto [depth2, halo2] = run_at_depth(2);
  const auto [depth3, halo3] = run_at_depth(3);

  ASSERT_EQ(depth2.size(), depth3.size());
  for (std::size_t i = 0; i < requests.size(); ++i)
    EXPECT_EQ(depth2[i].logits, depth3[i].logits) << "request " << i;
  EXPECT_GT(halo2, 0u);
  EXPECT_GT(halo3, 0u);
}

TEST(ShardedServer, RejectsInvalidConfigAndLifecycleMisuse) {
  const Dataset dataset = make_composed_dataset();
  const EdgePartition partition = partition_libra(dataset.graph.coo(), 2);
  ShardedServeConfig bad;
  bad.prefetch_depth = 0;
  EXPECT_THROW(ShardedServer(dataset, partition, bad), std::invalid_argument);

  ShardedServeConfig cfg;
  cfg.fanouts = {5, 5};
  ShardedServer server(dataset, partition, cfg);
  EXPECT_THROW(server.start(), std::logic_error);  // nothing published
  EXPECT_THROW(server.publish(nullptr), std::invalid_argument);
  server.publish(ModelSnapshot::random(sage_spec(dataset), 1, 1));
  server.start();
  EXPECT_THROW(server.submit(dataset.num_vertices(), nullptr), std::out_of_range);
  server.stop();
}

// ----------------------------------------------------- sharded embed caches

TEST(ShardedServer, EmbedModeMatchesEvaluatorBitwiseAndHitsPerRankCaches) {
  const Dataset dataset = make_composed_dataset();
  const auto snapshot = ModelSnapshot::random(sage_spec(dataset), /*seed=*/21, /*version=*/1);
  const std::vector<int> fanouts = {5, 5};
  const std::vector<vid_t> seeds = probe_vertices(dataset, 24, 41);

  // Uncached canonical-sampling evaluation is the bitwise reference for
  // every embed-mode tier.
  EmbedForward reference(dataset, fanouts, /*sample_seed=*/1, nullptr, nullptr);
  DenseMatrix expected;
  reference.infer(*snapshot, seeds, expected);

  const EdgePartition partition = partition_libra(dataset.graph.coo(), /*num_parts=*/2);
  ShardedServeConfig cfg;
  cfg.max_batch = 4;
  cfg.fanouts = fanouts;
  cfg.embed_forward = true;
  ShardedServer server(dataset, partition, cfg);
  server.publish(snapshot);
  server.start();

  const auto check_pass = [&] {
    const auto results = server.infer_batch(seeds);
    ASSERT_EQ(results.size(), seeds.size());
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      ASSERT_TRUE(results[i].has_value()) << "request " << i;
      const auto& logits = results[i]->logits;
      ASSERT_EQ(logits.size(), expected.cols());
      for (std::size_t j = 0; j < logits.size(); ++j)
        EXPECT_EQ(logits[j], expected.at(i, j)) << "request " << i << " class " << j;
    }
  };
  check_pass();  // cold: fills the per-rank caches
  server.drain();  // quiesce before reading stats (counters flush last)
  const BackendStats cold = server.stats();
  check_pass();  // warm: owner routing sends repeats to the same rank's cache
  server.drain();
  const BackendStats warm = server.stats();
  server.stop();

  EXPECT_GT(warm.embed_cache.accesses, cold.embed_cache.accesses);
  EXPECT_GT(warm.embed_cache.hits(), 0u);
  // The repeat pass computed nothing new: every miss happened in the cold
  // pass, so per-rank version-keyed caches really served the second one.
  EXPECT_EQ(warm.embed_cache.misses, cold.embed_cache.misses);
  ASSERT_EQ(warm.children.size(), 2u);
  EXPECT_GT(warm.children[0].embed_cache.accesses, 0u);
  EXPECT_GT(warm.children[1].embed_cache.accesses, 0u);
}

// ------------------------------------------------------------- ComposedTier

TEST(ComposedTier, R2P2AnswersBitwiseEqualSingleServer) {
  const Dataset dataset = make_composed_dataset();
  const auto snapshot = ModelSnapshot::random(sage_spec(dataset), /*seed=*/31, /*version=*/1);
  const std::vector<vid_t> vertices = probe_vertices(dataset, 40, 37);
  const auto expected = single_server_reference(dataset, snapshot, vertices);

  const EdgePartition partition = partition_libra(dataset.graph.coo(), /*num_parts=*/2);
  ComposedConfig cfg;
  cfg.replicas = 2;
  cfg.shard.max_batch = 4;
  cfg.shard.fanouts = {5, 5};
  cfg.shard.prefetch_depth = 2;
  ComposedTier tier(dataset, partition, cfg);
  tier.publish(snapshot);  // the broadcast_snapshot wire path
  tier.start();

  EXPECT_EQ(tier.num_replicas(), 2);
  EXPECT_EQ(tier.num_shards(), 2);
  EXPECT_EQ(tier.version(), 1u);
  const auto results = tier.infer_batch(vertices);
  tier.stop();

  ASSERT_EQ(results.size(), vertices.size());
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    ASSERT_TRUE(results[i].has_value()) << "request " << i;
    EXPECT_EQ(results[i]->logits, expected[i]) << "request " << i;
    EXPECT_EQ(results[i]->snapshot_version, 1u);
  }
}

TEST(ComposedTier, BroadcastPublishHotSwapsTheWholeGrid) {
  const Dataset dataset = make_composed_dataset();
  const ModelSpec spec = sage_spec(dataset);
  const auto v1 = ModelSnapshot::random(spec, /*seed=*/100, /*version=*/1);
  const auto v2 = ModelSnapshot::random(spec, /*seed=*/200, /*version=*/2);
  const std::vector<vid_t> vertices = probe_vertices(dataset, 12, 17);
  const auto expect_v2 = single_server_reference(dataset, v2, vertices);

  const EdgePartition partition = partition_libra(dataset.graph.coo(), 2);
  ComposedConfig cfg;
  cfg.replicas = 2;
  cfg.shard.max_batch = 4;
  cfg.shard.fanouts = {5, 5};
  ComposedTier tier(dataset, partition, cfg);
  tier.publish(v1);
  tier.start();
  (void)tier.infer_batch(vertices);  // traffic on v1, then swap under load
  tier.publish(v2);
  EXPECT_EQ(tier.version(), 2u);
  for (int r = 0; r < tier.num_replicas(); ++r)
    EXPECT_EQ(tier.group().replica(r).snapshot()->version(), 2u) << "replica " << r;

  const auto results = tier.infer_batch(vertices);
  tier.stop();
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    ASSERT_TRUE(results[i].has_value());
    EXPECT_EQ(results[i]->snapshot_version, 2u);
    // The broadcast rebuilt replica 1's model from the flat payload; answers
    // must still be bitwise those of the original v2 weights.
    EXPECT_EQ(results[i]->logits, expect_v2[i]) << "request " << i;
  }
  EXPECT_EQ(tier.group().publishes(), 2u);
}

TEST(ComposedTier, StatsAggregateAcrossTheGrid) {
  const Dataset dataset = make_composed_dataset();
  const auto snapshot = ModelSnapshot::random(sage_spec(dataset), /*seed=*/31, /*version=*/1);
  const EdgePartition partition = partition_libra(dataset.graph.coo(), 2);
  ComposedConfig cfg;
  cfg.replicas = 2;
  cfg.shard.max_batch = 4;
  cfg.shard.fanouts = {5, 5};
  ComposedTier tier(dataset, partition, cfg);
  tier.publish(snapshot);
  tier.start();
  const std::vector<vid_t> vertices = probe_vertices(dataset, 32, 13);
  (void)tier.infer_batch(vertices);
  tier.drain();  // quiesce: per-rank counters flush after the done callbacks
  const BackendStats stats = tier.stats();
  tier.stop();

  EXPECT_EQ(stats.completed, vertices.size());
  ASSERT_EQ(stats.children.size(), 2u);             // replicas
  ASSERT_EQ(stats.children[0].children.size(), 2u); // ranks within a replica
  EXPECT_EQ(stats.children[0].completed + stats.children[1].completed, vertices.size());
  EXPECT_EQ(tier.concurrency(), 4);  // R x P serving loops
}

// --------------------------------------------- heterogeneous backend mixes

/// Minimal out-of-library backend: one worker thread, configurable service
/// time, logits = {vertex}. Exists to prove the Router needs nothing beyond
/// the ServingBackend contract — and, via set_paused(), to act as a backend
/// whose queue verifiably never drains, so routing tests stay deterministic
/// under arbitrary scheduler behaviour.
class FakeBackend : public ServingBackend {
 public:
  FakeBackend(const Dataset& dataset, std::chrono::microseconds service_time)
      : dataset_(dataset), service_(service_time) {}
  ~FakeBackend() override { stop(); }

  void publish(std::shared_ptr<const ModelSnapshot> snapshot) override {
    snapshot_ = std::move(snapshot);
  }
  std::shared_ptr<const ModelSnapshot> snapshot() const override { return snapshot_; }

  void start() override {
    if (running_) return;
    stopped_ = false;
    running_ = true;
    worker_ = std::thread([this] { loop(); });
  }
  void stop() override {
    if (!running_) return;
    {
      util::MutexLock lock(mutex_);
      stopped_ = true;
      paused_ = false;  // stop drains whatever is queued
    }
    cv_.notify_all();
    worker_.join();
    running_ = false;
  }

  /// While paused the worker holds off, so queue_depth() only ever grows —
  /// the deterministic "overloaded member" for routing-policy tests.
  void set_paused(bool paused) {
    {
      util::MutexLock lock(mutex_);
      paused_ = paused;
    }
    cv_.notify_all();
  }

  using ServingBackend::submit;
  bool submit(vid_t vertex, const RequestMeta&,
              std::function<void(InferResult&&)> done) override {
    {
      util::MutexLock lock(mutex_);
      if (stopped_) return false;
      queue_.push_back({vertex, std::move(done)});
    }
    admitted_.fetch_add(1);
    cv_.notify_one();
    return true;
  }

  std::size_t queue_depth() const override {
    util::MutexLock lock(mutex_);
    return queue_.size();
  }
  void drain() override {
    while (completed_.load() < admitted_.load())
      std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  double mean_service_seconds() const override {
    return std::chrono::duration<double>(service_).count();
  }
  int concurrency() const override { return 1; }
  const Dataset& dataset() const override { return dataset_; }
  BackendStats stats() const override {
    BackendStats s;
    s.completed = completed_.load();
    s.queue_depth = queue_depth();
    return s;
  }

 private:
  struct Pending {
    vid_t vertex;
    std::function<void(InferResult&&)> done;
  };
  void loop() {
    while (true) {
      Pending next;
      {
        util::MutexLock lock(mutex_);
        while (!stopped_ && (paused_ || queue_.empty())) cv_.wait(lock);
        if (queue_.empty() && stopped_) return;  // stopped and drained
        if (queue_.empty()) continue;
        next = std::move(queue_.front());
        queue_.pop_front();
      }
      std::this_thread::sleep_for(service_);
      InferResult result;
      result.vertex = next.vertex;
      result.logits = {static_cast<real_t>(next.vertex)};
      if (next.done) next.done(std::move(result));
      completed_.fetch_add(1);
    }
  }

  const Dataset& dataset_;
  std::chrono::microseconds service_;
  std::shared_ptr<const ModelSnapshot> snapshot_;
  mutable util::Mutex mutex_;
  util::CondVar cv_;
  std::deque<Pending> queue_ GUARDED_BY(mutex_);
  bool stopped_ GUARDED_BY(mutex_) = false;
  bool paused_ GUARDED_BY(mutex_) = false;
  bool running_ = false;
  std::thread worker_;
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> completed_{0};
};

TEST(Router, PowerOfTwoAvoidsTheSlowBackendInAHeterogeneousMix) {
  const Dataset dataset = make_composed_dataset();
  // Replica 1 is paused — its queue only ever grows — while the submitter
  // waits for replica 0's queue to drain between requests. Every p2c
  // decision therefore compares depth 0 (fast) against the slow member's
  // accumulated backlog, deterministically under any scheduler: the only
  // requests the slow member receives are the draws-with-replacement where
  // *both* p2c samples land on it (~1/4) plus initial ties.
  FakeBackend* members[2] = {nullptr, nullptr};
  ReplicaGroup group(dataset, /*num_replicas=*/2, [&](int replica) {
    auto backend = std::make_unique<FakeBackend>(dataset, std::chrono::microseconds(100));
    members[replica] = backend.get();
    return backend;
  });
  group.publish(ModelSnapshot::random(sage_spec(dataset), 1, 1));
  group.start();
  members[1]->set_paused(true);
  Router router(group, RoutePolicy::kPowerOfTwo);

  std::atomic<int> done{0};
  const int total = 80;
  for (int i = 0; i < total; ++i) {
    ASSERT_TRUE(router.submit(static_cast<vid_t>(i % dataset.num_vertices()),
                              [&](InferResult&&) { done.fetch_add(1); }));
    while (members[0]->queue_depth() > 0) std::this_thread::yield();
  }
  members[1]->set_paused(false);  // release the backlog so everything answers
  while (done.load() < total) std::this_thread::yield();
  group.stop();

  const RouterStats stats = router.stats();
  ASSERT_EQ(stats.admitted_per_replica.size(), 2u);
  EXPECT_EQ(stats.admitted_per_replica[0] + stats.admitted_per_replica[1],
            static_cast<std::uint64_t>(total));
  // Not a 50/50 split: the fast backend must carry a clear majority.
  EXPECT_GT(stats.admitted_per_replica[0], 2 * stats.admitted_per_replica[1]);
}

TEST(ReplicaGroup, ActsAsAPlainServingBackendWithRoundRobinPlacement) {
  const Dataset dataset = make_composed_dataset();
  const auto snapshot = ModelSnapshot::random(sage_spec(dataset), /*seed=*/31, /*version=*/1);
  const std::vector<vid_t> vertices = probe_vertices(dataset, 20, 11);
  const auto expected = single_server_reference(dataset, snapshot, vertices);

  ServeConfig cfg;
  cfg.num_workers = 1;
  cfg.max_batch = 4;
  cfg.fanouts = {5, 5};
  ReplicaGroup group(dataset, cfg, /*num_replicas=*/3);
  group.publish(snapshot);
  group.start();

  ServingBackend& backend = group;  // no Router: the group's own placement
  EXPECT_EQ(backend.infer_sync(vertices[0]).logits, expected[0]);
  const auto results = backend.infer_batch(vertices);
  backend.drain();
  const BackendStats stats = backend.stats();
  group.stop();

  for (std::size_t i = 0; i < vertices.size(); ++i) {
    ASSERT_TRUE(results[i].has_value());
    EXPECT_EQ(results[i]->logits, expected[i]) << "request " << i;
  }
  EXPECT_EQ(stats.completed, vertices.size() + 1);  // + the infer_sync
  ASSERT_EQ(stats.children.size(), 3u);
  // Round-robin placement touched every member.
  for (const BackendStats& child : stats.children) EXPECT_GT(child.completed, 0u);
}

// -------------------------------------------------- SnapshotHolder hooks

TEST(SnapshotHolder, SetOnPublishReplacesAndClearsTheHook) {
  const Dataset dataset = make_composed_dataset();
  const ModelSpec spec = sage_spec(dataset);
  SnapshotHolder holder;

  int a_calls = 0, b_calls = 0;
  std::uint64_t last_version = 0;
  holder.set_on_publish([&](std::uint64_t v) {
    ++a_calls;
    last_version = v;
  });
  holder.publish(ModelSnapshot::random(spec, 1, /*version=*/7));
  EXPECT_EQ(a_calls, 1);
  EXPECT_EQ(last_version, 7u);

  // Re-registration replaces: only the new hook fires from now on.
  holder.set_on_publish([&](std::uint64_t v) {
    ++b_calls;
    last_version = v;
  });
  holder.publish(ModelSnapshot::random(spec, 2, /*version=*/8));
  EXPECT_EQ(a_calls, 1);
  EXPECT_EQ(b_calls, 1);
  EXPECT_EQ(last_version, 8u);

  // Clearing (null hook) disables notification without breaking publish.
  holder.set_on_publish(nullptr);
  holder.publish(ModelSnapshot::random(spec, 3, /*version=*/9));
  EXPECT_EQ(a_calls, 1);
  EXPECT_EQ(b_calls, 1);
  EXPECT_EQ(holder.get()->version(), 9u);
  EXPECT_EQ(holder.num_publishes(), 3u);
}

// ------------------------------------------------------ queue primitives

TEST(BoundedRequestQueue, TryPopBatchNeverBlocksAndTakesWhatIsThere) {
  BoundedRequestQueue queue(8);
  EXPECT_TRUE(queue.try_pop_batch(4).empty());  // empty queue: no block

  for (int i = 0; i < 3; ++i) {
    InferRequest request;
    request.vertex = i;
    ASSERT_TRUE(queue.try_push(std::move(request)));
  }
  EXPECT_EQ(queue.try_pop_batch(2).size(), 2u);  // capped by max_batch
  EXPECT_EQ(queue.try_pop_batch(4).size(), 1u);  // takes the remainder
  EXPECT_TRUE(queue.try_pop_batch(4).empty());
}

}  // namespace
}  // namespace distgnn
