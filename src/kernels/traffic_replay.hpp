// Replays the blocked aggregation's memory-access stream through the LRU
// cache model, producing the cache-reuse and byte-traffic numbers behind
// Table 3 and Figure 3 of the paper.
#pragma once

#include <cstdint>

#include "cachesim/lru_cache.hpp"
#include "graph/csr.hpp"

namespace distgnn {

struct TrafficReport {
  CacheStats fv;              // source feature-vector stream (random gathers)
  CacheStats fo;              // destination rows (one read+write per block pass)
  double fv_reuse = 0.0;        // fV accesses per fV miss
  /// The Table 3 metric: (fV + fO accesses) / (fV + fO misses). Declines
  /// past the sweet spot because every extra block adds a full pass of fO
  /// misses, exactly as the paper's measured curve does.
  double combined_reuse = 0.0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t total_bytes() const { return bytes_read + bytes_written; }
};

/// Simulates `aggregate` with `num_blocks` cache blocks on in-adjacency `A`
/// with feature width `d`, against a modelled last-level cache of
/// `cache_bytes`. Only the fV / fO vertex-feature streams are modelled; edge
/// features are a pure streaming access the paper likewise excludes from the
/// reuse analysis.
TrafficReport replay_aggregation_traffic(const CsrMatrix& A, std::size_t d, int num_blocks,
                                         std::uint64_t cache_bytes);

}  // namespace distgnn
