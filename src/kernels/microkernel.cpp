#include "kernels/microkernel.hpp"

#include <array>

namespace distgnn {

std::string to_string(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "add";
    case BinaryOp::kSub: return "sub";
    case BinaryOp::kMul: return "mul";
    case BinaryOp::kDiv: return "div";
    case BinaryOp::kCopyLhs: return "copylhs";
    case BinaryOp::kCopyRhs: return "copyrhs";
  }
  return "?";
}

std::string to_string(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return "sum";
    case ReduceOp::kMax: return "max";
    case ReduceOp::kMin: return "min";
  }
  return "?";
}

real_t reduce_identity(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return ReduceFn<ReduceOp::kSum>::identity();
    case ReduceOp::kMax: return ReduceFn<ReduceOp::kMax>::identity();
    case ReduceOp::kMin: return ReduceFn<ReduceOp::kMin>::identity();
  }
  return 0;
}

namespace {

// The generic instantiation: neighbours in the outer loop, SIMD over the
// feature dimension, accumulator kept hot. The destination row is read and
// written once per call — the Alg. 3 property that LIBXSMM's reordering buys.
template <BinaryOp B, ReduceOp R>
void row_kernel_impl(const vid_t* nbrs, const eid_t* eids, std::size_t degree, const real_t* fV,
                     const real_t* fE, std::size_t d, real_t* acc) {
  for (std::size_t i = 0; i < degree; ++i) {
    const real_t* lhs = uses_lhs(B) ? fV + static_cast<std::size_t>(nbrs[i]) * d : nullptr;
    const real_t* rhs = uses_rhs(B) ? fE + static_cast<std::size_t>(eids[i]) * d : nullptr;
    if constexpr (B == BinaryOp::kCopyLhs) {
#pragma omp simd
      for (std::size_t j = 0; j < d; ++j) acc[j] = ReduceFn<R>::apply(acc[j], lhs[j]);
    } else if constexpr (B == BinaryOp::kCopyRhs) {
#pragma omp simd
      for (std::size_t j = 0; j < d; ++j) acc[j] = ReduceFn<R>::apply(acc[j], rhs[j]);
    } else {
#pragma omp simd
      for (std::size_t j = 0; j < d; ++j)
        acc[j] = ReduceFn<R>::apply(acc[j], BinaryFn<B>::apply(lhs[j], rhs[j]));
    }
  }
}

template <BinaryOp B>
constexpr RowKernelFn select_reduce(ReduceOp reduce) {
  switch (reduce) {
    case ReduceOp::kSum: return &row_kernel_impl<B, ReduceOp::kSum>;
    case ReduceOp::kMax: return &row_kernel_impl<B, ReduceOp::kMax>;
    case ReduceOp::kMin: return &row_kernel_impl<B, ReduceOp::kMin>;
  }
  return nullptr;
}

}  // namespace

RowKernelFn lookup_row_kernel(BinaryOp binary, ReduceOp reduce) {
  switch (binary) {
    case BinaryOp::kAdd: return select_reduce<BinaryOp::kAdd>(reduce);
    case BinaryOp::kSub: return select_reduce<BinaryOp::kSub>(reduce);
    case BinaryOp::kMul: return select_reduce<BinaryOp::kMul>(reduce);
    case BinaryOp::kDiv: return select_reduce<BinaryOp::kDiv>(reduce);
    case BinaryOp::kCopyLhs: return select_reduce<BinaryOp::kCopyLhs>(reduce);
    case BinaryOp::kCopyRhs: return select_reduce<BinaryOp::kCopyRhs>(reduce);
  }
  return nullptr;
}

namespace {

real_t apply_binary(BinaryOp op, real_t x, real_t y) {
  switch (op) {
    case BinaryOp::kAdd: return x + y;
    case BinaryOp::kSub: return x - y;
    case BinaryOp::kMul: return x * y;
    case BinaryOp::kDiv: return x / y;
    case BinaryOp::kCopyLhs: return x;
    case BinaryOp::kCopyRhs: return y;
  }
  return 0;
}

real_t apply_reduce(ReduceOp op, real_t z, real_t v) {
  switch (op) {
    case ReduceOp::kSum: return z + v;
    case ReduceOp::kMax: return std::max(z, v);
    case ReduceOp::kMin: return std::min(z, v);
  }
  return 0;
}

}  // namespace

void row_kernel_reference(BinaryOp binary, ReduceOp reduce, const vid_t* nbrs, const eid_t* eids,
                          std::size_t degree, const real_t* fV, const real_t* fE, std::size_t d,
                          real_t* acc) {
  for (std::size_t i = 0; i < degree; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      const real_t lhs = uses_lhs(binary) ? fV[static_cast<std::size_t>(nbrs[i]) * d + j] : real_t{0};
      const real_t rhs = uses_rhs(binary) ? fE[static_cast<std::size_t>(eids[i]) * d + j] : real_t{0};
      acc[j] = apply_reduce(reduce, acc[j], apply_binary(binary, lhs, rhs));
    }
  }
}

}  // namespace distgnn
