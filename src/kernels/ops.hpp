// Operator taxonomy of the DGL Aggregation Primitive (Table 1 of the paper):
// an element-wise binary/unary operator ⊗ over (vertex, edge) feature pairs
// and an element-wise reduction ⊕ into the destination row.
#pragma once

#include <algorithm>
#include <limits>
#include <string>

#include "util/types.hpp"

namespace distgnn {

enum class BinaryOp { kAdd, kSub, kMul, kDiv, kCopyLhs, kCopyRhs };
enum class ReduceOp { kSum, kMax, kMin };

inline constexpr BinaryOp kAllBinaryOps[] = {BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul,
                                             BinaryOp::kDiv, BinaryOp::kCopyLhs, BinaryOp::kCopyRhs};
inline constexpr ReduceOp kAllReduceOps[] = {ReduceOp::kSum, ReduceOp::kMax, ReduceOp::kMin};

/// True when the operator reads the vertex-feature operand (lhs = fV[u]).
constexpr bool uses_lhs(BinaryOp op) { return op != BinaryOp::kCopyRhs; }
/// True when the operator reads the edge-feature operand (rhs = fE[e]).
constexpr bool uses_rhs(BinaryOp op) { return op != BinaryOp::kCopyLhs; }

std::string to_string(BinaryOp op);
std::string to_string(ReduceOp op);

/// Compile-time functors used to instantiate the micro-kernels.
template <BinaryOp Op>
struct BinaryFn;

template <>
struct BinaryFn<BinaryOp::kAdd> {
  static real_t apply(real_t x, real_t y) { return x + y; }
};
template <>
struct BinaryFn<BinaryOp::kSub> {
  static real_t apply(real_t x, real_t y) { return x - y; }
};
template <>
struct BinaryFn<BinaryOp::kMul> {
  static real_t apply(real_t x, real_t y) { return x * y; }
};
template <>
struct BinaryFn<BinaryOp::kDiv> {
  static real_t apply(real_t x, real_t y) { return x / y; }
};
template <>
struct BinaryFn<BinaryOp::kCopyLhs> {
  static real_t apply(real_t x, real_t) { return x; }
};
template <>
struct BinaryFn<BinaryOp::kCopyRhs> {
  static real_t apply(real_t, real_t y) { return y; }
};

template <ReduceOp Op>
struct ReduceFn;

template <>
struct ReduceFn<ReduceOp::kSum> {
  static real_t apply(real_t z, real_t v) { return z + v; }
  static constexpr real_t identity() { return real_t{0}; }
};
template <>
struct ReduceFn<ReduceOp::kMax> {
  static real_t apply(real_t z, real_t v) { return std::max(z, v); }
  static constexpr real_t identity() { return -std::numeric_limits<real_t>::infinity(); }
};
template <>
struct ReduceFn<ReduceOp::kMin> {
  static real_t apply(real_t z, real_t v) { return std::min(z, v); }
  static constexpr real_t identity() { return std::numeric_limits<real_t>::infinity(); }
};

real_t reduce_identity(ReduceOp op);

}  // namespace distgnn
