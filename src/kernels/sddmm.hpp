// Sampled dense-dense matrix multiplication: DGL's formulation of per-edge
// message computation (§2.2 of the paper). For every edge (u, v) it combines
// the endpoint feature vectors, producing an edge-feature matrix — the other
// half of the message-passing API next to the AP/SpMM.
#pragma once

#include "graph/coo.hpp"
#include "kernels/ops.hpp"
#include "util/matrix.hpp"

namespace distgnn {

/// Element-wise form: out[e][j] = binary(fV[src(e)][j], fV[dst(e)][j]).
/// out must be |E| x d. Copy ops select one endpoint's features.
void sddmm_elementwise(const EdgeList& edges, ConstMatrixView fV, BinaryOp binary, MatrixView out);

/// Dot-product form: out[e][0] = Σ_j fV[src(e)][j] * fV[dst(e)][j].
/// The attention-score pattern; out must be |E| x 1.
void sddmm_dot(const EdgeList& edges, ConstMatrixView fV, MatrixView out);

}  // namespace distgnn
