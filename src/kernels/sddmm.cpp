#include "kernels/sddmm.hpp"

#include <stdexcept>

namespace distgnn {

void sddmm_elementwise(const EdgeList& edges, ConstMatrixView fV, BinaryOp binary, MatrixView out) {
  if (out.rows != edges.edges.size())
    throw std::invalid_argument("sddmm_elementwise: out rows must equal edge count");
  if (out.cols != fV.cols)
    throw std::invalid_argument("sddmm_elementwise: out and fV widths differ");
  const std::size_t d = fV.cols;
  const eid_t m = edges.num_edges();
#pragma omp parallel for schedule(static)
  for (eid_t e = 0; e < m; ++e) {
    const Edge& edge = edges.edges[static_cast<std::size_t>(e)];
    const real_t* lhs = fV.row(static_cast<std::size_t>(edge.src));
    const real_t* rhs = fV.row(static_cast<std::size_t>(edge.dst));
    real_t* o = out.row(static_cast<std::size_t>(e));
    switch (binary) {
      case BinaryOp::kAdd:
#pragma omp simd
        for (std::size_t j = 0; j < d; ++j) o[j] = lhs[j] + rhs[j];
        break;
      case BinaryOp::kSub:
#pragma omp simd
        for (std::size_t j = 0; j < d; ++j) o[j] = lhs[j] - rhs[j];
        break;
      case BinaryOp::kMul:
#pragma omp simd
        for (std::size_t j = 0; j < d; ++j) o[j] = lhs[j] * rhs[j];
        break;
      case BinaryOp::kDiv:
#pragma omp simd
        for (std::size_t j = 0; j < d; ++j) o[j] = lhs[j] / rhs[j];
        break;
      case BinaryOp::kCopyLhs:
#pragma omp simd
        for (std::size_t j = 0; j < d; ++j) o[j] = lhs[j];
        break;
      case BinaryOp::kCopyRhs:
#pragma omp simd
        for (std::size_t j = 0; j < d; ++j) o[j] = rhs[j];
        break;
    }
  }
}

void sddmm_dot(const EdgeList& edges, ConstMatrixView fV, MatrixView out) {
  if (out.rows != edges.edges.size() || out.cols != 1)
    throw std::invalid_argument("sddmm_dot: out must be |E| x 1");
  const std::size_t d = fV.cols;
  const eid_t m = edges.num_edges();
#pragma omp parallel for schedule(static)
  for (eid_t e = 0; e < m; ++e) {
    const Edge& edge = edges.edges[static_cast<std::size_t>(e)];
    const real_t* lhs = fV.row(static_cast<std::size_t>(edge.src));
    const real_t* rhs = fV.row(static_cast<std::size_t>(edge.dst));
    real_t acc = 0;
#pragma omp simd reduction(+ : acc)
    for (std::size_t j = 0; j < d; ++j) acc += lhs[j] * rhs[j];
    out.row(static_cast<std::size_t>(e))[0] = acc;
  }
}

}  // namespace distgnn
