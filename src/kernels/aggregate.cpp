#include "kernels/aggregate.hpp"

#include "util/parallel.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "kernels/microkernel.hpp"

namespace distgnn {

namespace {

void check_shapes(const CsrMatrix& A, ConstMatrixView fV, ConstMatrixView fE, MatrixView fO,
                  BinaryOp binary) {
  if (fO.rows != static_cast<std::size_t>(A.num_rows()))
    throw std::invalid_argument("aggregate: fO row count must equal CSR row count");
  if (uses_lhs(binary) && fV.cols != fO.cols)
    throw std::invalid_argument("aggregate: fV and fO feature widths differ");
  if (uses_rhs(binary)) {
    if (fE.empty()) throw std::invalid_argument("aggregate: operator reads fE but fE is empty");
    if (fE.cols != fO.cols)
      throw std::invalid_argument("aggregate: fE and fO feature widths differ");
  }
}

// Shared element-wise scalar loop used by the baseline and by the optimized
// path when the micro-kernel is disabled (Fig. 4's "DS"/"Block" bars).
void row_scalar(BinaryOp binary, ReduceOp reduce, const CsrMatrix& A, vid_t v, ConstMatrixView fV,
                ConstMatrixView fE, MatrixView fO) {
  const auto nbrs = A.neighbors(v);
  // The reference kernel is the scalar per-edge loop of Alg. 1: fO[v] is
  // re-read and re-written for every incident edge, no SIMD.
  row_kernel_reference(binary, reduce, nbrs.data(), A.edge_ids(v).data(), nbrs.size(),
                       uses_lhs(binary) ? fV.data : nullptr,
                       uses_rhs(binary) ? fE.data : nullptr, fO.cols,
                       fO.row(static_cast<std::size_t>(v)));
}

void process_block(const CsrMatrix& block, ConstMatrixView fV, ConstMatrixView fE, MatrixView fO,
                   const ApConfig& cfg, RowKernelFn kernel) {
  const vid_t n = block.num_rows();
  const real_t* fv_data = uses_lhs(cfg.binary) ? fV.data : nullptr;
  const real_t* fe_data = uses_rhs(cfg.binary) ? fE.data : nullptr;
  const std::size_t d = fO.cols;

  if (cfg.dynamic_schedule) {
    const int chunk = std::max(1, cfg.chunk_size);
#pragma omp parallel for schedule(dynamic, chunk)
    for (vid_t v = 0; v < n; ++v) {
      const auto nbrs = block.neighbors(v);
      if (nbrs.empty()) continue;
      if (kernel != nullptr) {
        kernel(nbrs.data(), block.edge_ids(v).data(), nbrs.size(), fv_data, fe_data, d,
               fO.row(static_cast<std::size_t>(v)));
      } else {
        row_scalar(cfg.binary, cfg.reduce, block, v, fV, fE, fO);
      }
    }
  } else {
#pragma omp parallel for schedule(static)
    for (vid_t v = 0; v < n; ++v) {
      const auto nbrs = block.neighbors(v);
      if (nbrs.empty()) continue;
      if (kernel != nullptr) {
        kernel(nbrs.data(), block.edge_ids(v).data(), nbrs.size(), fv_data, fe_data, d,
               fO.row(static_cast<std::size_t>(v)));
      } else {
        row_scalar(cfg.binary, cfg.reduce, block, v, fV, fE, fO);
      }
    }
  }
}

}  // namespace

void aggregate_baseline(const CsrMatrix& A, ConstMatrixView fV, ConstMatrixView fE, MatrixView fO,
                        BinaryOp binary, ReduceOp reduce) {
  check_shapes(A, fV, fE, fO, binary);
  const vid_t n = A.num_rows();
// Alg. 1: static destination-parallel loop, no blocking, scalar inner loop
// that re-reads and re-writes fO[v] for every edge.
#pragma omp parallel for schedule(static)
  for (vid_t v = 0; v < n; ++v) row_scalar(binary, reduce, A, v, fV, fE, fO);
}

BlockedCsr::BlockedCsr(const CsrMatrix& A, int num_blocks) {
  if (num_blocks < 1) throw std::invalid_argument("BlockedCsr: num_blocks must be >= 1");
  blocks_ = A.column_blocks(num_blocks);
}

void aggregate_prepartitioned(const BlockedCsr& blocks, ConstMatrixView fV, ConstMatrixView fE,
                              MatrixView fO, const ApConfig& cfg) {
  if (blocks.num_blocks() == 0) return;
  check_shapes(blocks.block(0), fV, fE, fO, cfg.binary);
  const RowKernelFn kernel =
      cfg.use_microkernel ? lookup_row_kernel(cfg.binary, cfg.reduce) : nullptr;
  for (int b = 0; b < blocks.num_blocks(); ++b)
    process_block(blocks.block(b), fV, fE, fO, cfg, kernel);
}

void aggregate(const CsrMatrix& A, ConstMatrixView fV, ConstMatrixView fE, MatrixView fO,
               const ApConfig& cfg) {
  check_shapes(A, fV, fE, fO, cfg.binary);
  const RowKernelFn kernel =
      cfg.use_microkernel ? lookup_row_kernel(cfg.binary, cfg.reduce) : nullptr;
  if (cfg.num_blocks <= 1) {
    process_block(A, fV, fE, fO, cfg, kernel);
    return;
  }
  const BlockedCsr blocks(A, cfg.num_blocks);
  aggregate_prepartitioned(blocks, fV, fE, fO, cfg);
}

int auto_num_blocks(vid_t num_vertices, std::size_t feature_dim, std::size_t cache_bytes) {
  const std::size_t fv_bytes = static_cast<std::size_t>(num_vertices) * feature_dim * sizeof(real_t);
  // Target: one block of fV occupies about half the cache, leaving room for
  // the fO rows in flight.
  const std::size_t budget = std::max<std::size_t>(1, cache_bytes / 2);
  int nb = static_cast<int>((fv_bytes + budget - 1) / budget);
  return std::clamp(nb, 1, 64);
}

}  // namespace distgnn
