#include "kernels/traffic_replay.hpp"

#include "kernels/aggregate.hpp"
#include "util/types.hpp"

namespace distgnn {

namespace {
constexpr int kSpaceFv = 0;
constexpr int kSpaceFo = 1;
}  // namespace

TrafficReport replay_aggregation_traffic(const CsrMatrix& A, std::size_t d, int num_blocks,
                                         std::uint64_t cache_bytes) {
  const std::uint64_t vector_bytes = static_cast<std::uint64_t>(d) * sizeof(real_t);
  LruCache cache(cache_bytes, vector_bytes);

  const BlockedCsr blocks(A, num_blocks);
  for (int b = 0; b < blocks.num_blocks(); ++b) {
    const CsrMatrix& blk = blocks.block(b);
    const vid_t n = blk.num_rows();
    for (vid_t v = 0; v < n; ++v) {
      const auto nbrs = blk.neighbors(v);
      if (nbrs.empty()) continue;
      // Alg. 3 touches the destination row once per block: read-modify-write.
      cache.access(kSpaceFo, static_cast<std::uint64_t>(v), /*is_write=*/true);
      for (const vid_t u : nbrs)
        cache.access(kSpaceFv, static_cast<std::uint64_t>(u), /*is_write=*/false);
    }
  }
  cache.flush();

  TrafficReport report;
  report.fv = cache.stats(kSpaceFv);
  report.fo = cache.stats(kSpaceFo);
  report.fv_reuse = report.fv.reuse();
  const CacheStats combined = cache.combined_stats();
  report.combined_reuse = combined.reuse();
  report.bytes_read = combined.bytes_read;
  report.bytes_written = combined.bytes_written;
  return report;
}

}  // namespace distgnn
