// Loop-reordered, vectorized row micro-kernels (Alg. 3 of the paper).
//
// The paper delegates this to LIBXSMM, which JITs an optimal SIMD kernel per
// (operator, reduction, width) triple. We reproduce the algorithmic content
// without runtime code generation: each (⊗, ⊕) pair gets a compile-time
// instantiated kernel whose inner loop is `omp simd` over the feature
// dimension and which touches the destination row exactly once per call.
// A registry resolves the function pointer once per aggregate invocation —
// a "dispatch-once" analogue of LIBXSMM's JIT-handle lookup.
#pragma once

#include <cstddef>

#include "kernels/ops.hpp"
#include "util/types.hpp"

namespace distgnn {

/// Computes, for one destination row:
///   acc[j] = reduce(acc[j], binary(fV[nbrs[i]][j], fE[eids[i]][j]))  for all i, j.
/// `acc` must hold `d` values and already contain the running aggregate
/// (caller seeds it with fO[v] or the reduction identity).
/// `fE` may be null iff the binary op does not read the rhs.
using RowKernelFn = void (*)(const vid_t* nbrs, const eid_t* eids, std::size_t degree,
                             const real_t* fV, const real_t* fE, std::size_t d, real_t* acc);

/// Returns the kernel for the operator pair; never null.
RowKernelFn lookup_row_kernel(BinaryOp binary, ReduceOp reduce);

/// Scalar reference kernel used by tests to validate the vectorized ones.
void row_kernel_reference(BinaryOp binary, ReduceOp reduce, const vid_t* nbrs, const eid_t* eids,
                          std::size_t degree, const real_t* fV, const real_t* fE, std::size_t d,
                          real_t* acc);

}  // namespace distgnn
