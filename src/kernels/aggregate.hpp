// The Aggregation Primitive (AP): fO[v] ⊕= fV[u] ⊗ fE[e_uv] over all in-edges.
//
// Three implementations mirror the paper's progression:
//   * aggregate_baseline — Alg. 1, the unoptimized DGL loop (destination-
//     parallel, static schedule, destination row rewritten per edge).
//   * aggregate          — Alg. 2 + Alg. 3 with each optimization toggleable
//     (dynamic scheduling, cache blocking, loop-reordered micro-kernels), so
//     the Figure 4 ablation can switch them on one at a time.
//   * BlockedCsr + aggregate_prepartitioned — the production path: the
//     per-block CSRs are built once and reused every epoch.
//
// All variants reduce *into* fO; callers seed fO with zeros (sum) or the
// reduction identity (max/min) exactly as DGL does.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "kernels/ops.hpp"
#include "util/matrix.hpp"

namespace distgnn {

struct ApConfig {
  BinaryOp binary = BinaryOp::kCopyLhs;
  ReduceOp reduce = ReduceOp::kSum;
  /// Number of source-vertex cache blocks (Alg. 2); 1 disables blocking.
  int num_blocks = 1;
  /// Dynamic OpenMP scheduling over contiguous destination chunks.
  bool dynamic_schedule = true;
  /// Contiguous destination rows handed to a thread at a time.
  int chunk_size = 16;
  /// Loop-reordered vectorized micro-kernel (Alg. 3); false falls back to the
  /// baseline inner loop (still affected by blocking/scheduling).
  bool use_microkernel = true;
};

/// Alg. 1 — faithful baseline. fE may be empty iff the op ignores the rhs.
void aggregate_baseline(const CsrMatrix& A, ConstMatrixView fV, ConstMatrixView fE, MatrixView fO,
                        BinaryOp binary, ReduceOp reduce);

/// Optimized AP; builds block CSRs internally when cfg.num_blocks > 1.
void aggregate(const CsrMatrix& A, ConstMatrixView fV, ConstMatrixView fE, MatrixView fO,
               const ApConfig& cfg);

/// Pre-partitioned column blocks of a CSR, reusable across epochs.
class BlockedCsr {
 public:
  BlockedCsr() = default;
  BlockedCsr(const CsrMatrix& A, int num_blocks);

  int num_blocks() const { return static_cast<int>(blocks_.size()); }
  vid_t num_rows() const { return blocks_.empty() ? 0 : blocks_.front().num_rows(); }
  const CsrMatrix& block(int b) const { return blocks_[static_cast<std::size_t>(b)]; }
  std::span<const CsrMatrix> blocks() const { return blocks_; }

 private:
  std::vector<CsrMatrix> blocks_;
};

/// Optimized AP over pre-built blocks (the per-epoch hot path).
void aggregate_prepartitioned(const BlockedCsr& blocks, ConstMatrixView fV, ConstMatrixView fE,
                              MatrixView fO, const ApConfig& cfg);

/// Picks a block count so one block of fV approximately fits in
/// `cache_bytes` (default: a 28-core socket's ~39 MB LLC), clamped to
/// [1, 64]. The heuristic the paper tunes by hand in Table 3.
int auto_num_blocks(vid_t num_vertices, std::size_t feature_dim,
                    std::size_t cache_bytes = 39u << 20);

}  // namespace distgnn
