// Multi-hop sampled mini-batch construction (DGL "blocks").
//
// Starting from a batch of seed vertices, each hop samples a fixed fan-out of
// in-neighbours, producing one bipartite block per GNN layer. Blocks are
// stored input-most first so the trainer iterates them in forward order. By
// construction, each block's destination vertices are the first `num_dst`
// entries of its source vertex list, so layer outputs line up row-for-row
// with the next block's inputs.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "util/rng.hpp"

namespace distgnn {

struct SampledBlock {
  vid_t num_dst = 0;  // rows; also the first num_dst entries of src_vertices
  vid_t num_src = 0;
  std::vector<eid_t> row_ptr;  // num_dst + 1
  std::vector<vid_t> col;      // indices into this block's source vertex list
  /// Per-sampled-edge relation labels, aligned with `col`. Empty unless the
  /// sampler was given edge types (relational serving).
  std::vector<int> rel;

  std::span<const vid_t> neighbors(vid_t dst) const {
    return {col.data() + row_ptr[static_cast<std::size_t>(dst)],
            static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(dst) + 1] -
                                     row_ptr[static_cast<std::size_t>(dst)])};
  }
  /// Relation labels for `dst`'s sampled edges (aligned with neighbors(dst)).
  /// Only valid when `rel` is populated.
  std::span<const int> relations(vid_t dst) const {
    return {rel.data() + row_ptr[static_cast<std::size_t>(dst)],
            static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(dst) + 1] -
                                     row_ptr[static_cast<std::size_t>(dst)])};
  }
  eid_t num_sampled_edges() const { return static_cast<eid_t>(col.size()); }
};

struct MiniBatch {
  std::vector<SampledBlock> blocks;        // input-most first (forward order)
  std::vector<vid_t> input_vertices;       // global ids feeding blocks[0]
  std::vector<vid_t> seeds;                // global ids of the output layer
  /// Σ over blocks of sampled edges — the "aggregation work" unit of Table 7.
  eid_t total_sampled_edges() const;
};

/// fanouts are given input-most first (fanouts[0] = deepest hop), matching
/// the block order of the result. When `edge_types` is set (one label per
/// original graph edge, indexed by edge id), each block's `rel` is filled
/// with the sampled edges' relation labels; the RNG stream is identical
/// either way, so typed and untyped sampling stay bitwise-comparable.
MiniBatch sample_minibatch(const CsrMatrix& in_csr, std::span<const vid_t> seeds,
                           std::span<const int> fanouts, Rng& rng,
                           const std::vector<int>* edge_types = nullptr);

/// Splits `vertices` into shuffled batches of `batch_size` (last one ragged).
std::vector<std::vector<vid_t>> make_batches(std::span<const vid_t> vertices, vid_t batch_size,
                                             Rng& rng);

}  // namespace distgnn
