#include "sampling/minibatch.hpp"

#include <algorithm>
#include <unordered_map>

#include "sampling/neighbor_sampler.hpp"

namespace distgnn {

eid_t MiniBatch::total_sampled_edges() const {
  eid_t total = 0;
  for (const auto& b : blocks) total += b.num_sampled_edges();
  return total;
}

MiniBatch sample_minibatch(const CsrMatrix& in_csr, std::span<const vid_t> seeds,
                           std::span<const int> fanouts, Rng& rng,
                           const std::vector<int>* edge_types) {
  MiniBatch mb;
  mb.seeds.assign(seeds.begin(), seeds.end());

  // Build output-most hop first, then reverse into forward order.
  std::vector<SampledBlock> reversed;
  std::vector<vid_t> frontier = mb.seeds;
  std::vector<vid_t> sampled;
  std::vector<eid_t> sampled_eids;

  for (std::size_t hop = 0; hop < fanouts.size(); ++hop) {
    const int fanout = fanouts[fanouts.size() - 1 - hop];  // output-most first
    SampledBlock block;
    block.num_dst = static_cast<vid_t>(frontier.size());
    block.row_ptr.assign(frontier.size() + 1, 0);

    // Source vertex list starts with the destinations (self rows line up).
    std::vector<vid_t> src_vertices = frontier;
    std::unordered_map<vid_t, vid_t> src_index;
    src_index.reserve(2 * frontier.size());
    for (std::size_t i = 0; i < src_vertices.size(); ++i)
      src_index.emplace(src_vertices[i], static_cast<vid_t>(i));

    for (std::size_t i = 0; i < frontier.size(); ++i) {
      sampled.clear();
      if (edge_types) {
        sampled_eids.clear();
        sample_neighbors(in_csr, frontier[i], fanout, rng, sampled, sampled_eids);
        for (const eid_t e : sampled_eids)
          block.rel.push_back((*edge_types)[static_cast<std::size_t>(e)]);
      } else {
        sample_neighbors(in_csr, frontier[i], fanout, rng, sampled);
      }
      for (const vid_t u : sampled) {
        auto [it, inserted] = src_index.emplace(u, static_cast<vid_t>(src_vertices.size()));
        if (inserted) src_vertices.push_back(u);
        block.col.push_back(it->second);
      }
      block.row_ptr[i + 1] = static_cast<eid_t>(block.col.size());
    }
    block.num_src = static_cast<vid_t>(src_vertices.size());
    reversed.push_back(std::move(block));
    frontier = std::move(src_vertices);
  }

  mb.input_vertices = std::move(frontier);
  mb.blocks.assign(std::make_move_iterator(reversed.rbegin()),
                   std::make_move_iterator(reversed.rend()));
  return mb;
}

std::vector<std::vector<vid_t>> make_batches(std::span<const vid_t> vertices, vid_t batch_size,
                                             Rng& rng) {
  std::vector<vid_t> shuffled(vertices.begin(), vertices.end());
  for (std::size_t i = shuffled.size(); i > 1; --i)
    std::swap(shuffled[i - 1], shuffled[rng.next_below(i)]);
  std::vector<std::vector<vid_t>> batches;
  for (std::size_t begin = 0; begin < shuffled.size(); begin += static_cast<std::size_t>(batch_size)) {
    const std::size_t end = std::min(shuffled.size(), begin + static_cast<std::size_t>(batch_size));
    batches.emplace_back(shuffled.begin() + static_cast<std::ptrdiff_t>(begin),
                         shuffled.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return batches;
}

}  // namespace distgnn
