#include "sampling/neighbor_sampler.hpp"

#include <algorithm>

namespace distgnn {

void sample_neighbors(const CsrMatrix& in_csr, vid_t v, int fanout, Rng& rng,
                      std::vector<vid_t>& out) {
  const auto nbrs = in_csr.neighbors(v);
  const auto deg = static_cast<std::int64_t>(nbrs.size());
  if (deg <= fanout) {
    out.insert(out.end(), nbrs.begin(), nbrs.end());
    return;
  }
  // Floyd's algorithm: k distinct indices from [0, deg) in O(k) expected.
  std::vector<vid_t> picked;
  picked.reserve(static_cast<std::size_t>(fanout));
  std::vector<std::int64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(fanout));
  for (std::int64_t j = deg - fanout; j < deg; ++j) {
    std::int64_t t = static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(j + 1)));
    if (std::find(chosen.begin(), chosen.end(), t) != chosen.end()) t = j;
    chosen.push_back(t);
    out.push_back(nbrs[static_cast<std::size_t>(t)]);
  }
}

}  // namespace distgnn
