#include "sampling/neighbor_sampler.hpp"

#include <algorithm>

namespace distgnn {

namespace {

// Core of both overloads: draws the sampled slot indices into `chosen` so the
// callers map them to vertices (and optionally edge ids) identically. The
// RNG stream depends only on (deg, fanout) — never on whether edge ids were
// requested.
void sample_slots(std::int64_t deg, int fanout, Rng& rng, std::vector<std::int64_t>& chosen) {
  // Floyd's algorithm: k distinct indices from [0, deg) in O(k) expected.
  chosen.clear();
  chosen.reserve(static_cast<std::size_t>(fanout));
  for (std::int64_t j = deg - fanout; j < deg; ++j) {
    std::int64_t t = static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(j + 1)));
    if (std::find(chosen.begin(), chosen.end(), t) != chosen.end()) t = j;
    chosen.push_back(t);
  }
}

}  // namespace

void sample_neighbors(const CsrMatrix& in_csr, vid_t v, int fanout, Rng& rng,
                      std::vector<vid_t>& out) {
  const auto nbrs = in_csr.neighbors(v);
  const auto deg = static_cast<std::int64_t>(nbrs.size());
  if (deg <= fanout) {
    out.insert(out.end(), nbrs.begin(), nbrs.end());
    return;
  }
  std::vector<std::int64_t> chosen;
  sample_slots(deg, fanout, rng, chosen);
  for (const std::int64_t t : chosen) out.push_back(nbrs[static_cast<std::size_t>(t)]);
}

void sample_neighbors(const CsrMatrix& in_csr, vid_t v, int fanout, Rng& rng,
                      std::vector<vid_t>& out, std::vector<eid_t>& edge_ids) {
  const auto nbrs = in_csr.neighbors(v);
  const auto eids = in_csr.edge_ids(v);
  const auto deg = static_cast<std::int64_t>(nbrs.size());
  if (deg <= fanout) {
    out.insert(out.end(), nbrs.begin(), nbrs.end());
    edge_ids.insert(edge_ids.end(), eids.begin(), eids.end());
    return;
  }
  std::vector<std::int64_t> chosen;
  sample_slots(deg, fanout, rng, chosen);
  for (const std::int64_t t : chosen) {
    out.push_back(nbrs[static_cast<std::size_t>(t)]);
    edge_ids.push_back(eids[static_cast<std::size_t>(t)]);
  }
}

}  // namespace distgnn
