#include "sampling/distributed_sampled_trainer.hpp"

#include "util/parallel.hpp"

#include <array>
#include <chrono>
#include <cstring>
#include <thread>

#include "comm/world.hpp"

namespace distgnn {

DistSampledResult train_distributed_sampled(const Dataset& dataset, SampledTrainConfig config,
                                            int num_ranks, int epochs, int threads_per_rank) {
  DistSampledResult result;

  const int hw_threads = static_cast<int>(std::thread::hardware_concurrency());
  const int threads =
      threads_per_rank > 0 ? threads_per_rank : std::max(1, hw_threads / std::max(1, num_ranks));

  // Equal-size shards of the training vertices keep per-epoch batch counts
  // identical across ranks, so the per-batch AllReduce always lines up.
  // (The few remainder vertices are dropped, as documented.)
  std::vector<vid_t> train;
  for (vid_t v = 0; v < dataset.num_vertices(); ++v)
    if (dataset.train_mask[static_cast<std::size_t>(v)]) train.push_back(v);
  const std::size_t shard = train.size() / static_cast<std::size_t>(num_ranks);

  World world(num_ranks);
  world.run([&](Communicator& comm) {
    par::set_num_threads(threads);

    // Replicas share the seed; gradients are averaged per batch.
    SampledTrainConfig cfg = config;
    SampledSageTrainer trainer(dataset, cfg);
    const std::size_t begin = static_cast<std::size_t>(comm.rank()) * shard;
    trainer.restrict_train_vertices(
        {train.begin() + static_cast<std::ptrdiff_t>(begin),
         train.begin() + static_cast<std::ptrdiff_t>(begin + shard)});

    std::vector<real_t> flat;
    trainer.set_grad_hook([&](std::span<ParamRef> params) {
      std::size_t total = 0;
      for (const auto& p : params) total += p.size;
      flat.resize(total);
      std::size_t off = 0;
      for (const auto& p : params) {
        std::memcpy(flat.data() + off, p.grad, p.size * sizeof(real_t));
        off += p.size;
      }
      comm.allreduce_sum(std::span<real_t>(flat));
      const real_t inv = 1.0f / static_cast<real_t>(comm.size());
      off = 0;
      for (const auto& p : params) {
        for (std::size_t i = 0; i < p.size; ++i) p.grad[i] = flat[off + i] * inv;
        off += p.size;
      }
    });

    double epoch_sum = 0.0;
    double last_loss = 0.0;
    eid_t sampled = 0;
    for (int e = 0; e < epochs; ++e) {
      comm.barrier();
      const SampledEpochStats stats = trainer.train_epoch();
      std::array<real_t, 1> t{static_cast<real_t>(stats.seconds)};
      comm.allreduce_max(std::span<real_t>(t));
      epoch_sum += t[0];
      last_loss = stats.loss;
      sampled = stats.sampled_edges;
    }

    const auto total_sampled = comm.allgather(sampled);
    std::array<real_t, 1> loss{static_cast<real_t>(last_loss)};
    comm.allreduce_sum(std::span<real_t>(loss));
    if (comm.rank() == 0) {
      result.mean_epoch_seconds = epoch_sum / epochs;
      result.final_loss = loss[0] / static_cast<real_t>(comm.size());
      for (const auto s : total_sampled) result.sampled_edges_per_epoch += s;
      result.test_accuracy = trainer.evaluate(dataset.test_mask);
    }
  });
  return result;
}

}  // namespace distgnn
