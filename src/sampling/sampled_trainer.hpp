// Mini-batch GraphSAGE trainer over sampled blocks — the Dist-DGL-style
// comparator used in Table 9 of the paper. Reuses the same GraphSageLayer /
// loss / optimizer stack as the full-batch trainer so the epoch-time
// comparison isolates the aggregation strategy, not the MLP implementation.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "graph/datasets.hpp"
#include "nn/graphsage_layer.hpp"
#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "nn/optim.hpp"
#include "sampling/minibatch.hpp"

namespace distgnn {

struct SampledTrainConfig {
  std::vector<int> fanouts = {5, 10, 15};  // input-most first (paper Table 7)
  vid_t batch_size = 2000;
  int hidden_dim = 256;
  double lr = 0.01;
  double weight_decay = 5e-4;
  std::uint64_t seed = 1;
};

struct SampledEpochStats {
  double loss = 0.0;
  double seconds = 0.0;
  eid_t sampled_edges = 0;   // Σ sampled edges over all batches (work proxy)
  int num_batches = 0;
};

class SampledSageTrainer {
 public:
  SampledSageTrainer(const Dataset& dataset, SampledTrainConfig config);

  SampledEpochStats train_epoch();

  /// Restricts training to a subset of the train vertices (the Dist-DGL
  /// work division: each rank owns a shard of the training set).
  void restrict_train_vertices(std::vector<vid_t> vertices);

  /// Called with the parameter list after each batch's backward pass and
  /// before the optimizer step — the distributed trainer installs the
  /// gradient AllReduce here.
  void set_grad_hook(std::function<void(std::span<ParamRef>)> hook) { grad_hook_ = std::move(hook); }

  /// Full-graph (unsampled) evaluation accuracy on the given mask.
  double evaluate(const std::vector<std::uint8_t>& mask);

  int num_layers() const { return static_cast<int>(layers_.size()); }

 private:
  void forward_batch(const MiniBatch& mb, bool training);

  const Dataset& dataset_;
  SampledTrainConfig config_;
  Rng rng_;
  std::vector<GraphSageLayer> layers_;
  SoftmaxCrossEntropy loss_;
  Sgd optimizer_;
  std::vector<vid_t> train_vertices_;
  std::function<void(std::span<ParamRef>)> grad_hook_;

  // Per-layer activations of the current batch: acts_[0] is the gathered
  // input features; acts_[l+1] the output of layer l.
  std::vector<DenseMatrix> acts_;
  std::vector<DenseMatrix> aggs_;
  std::vector<DenseMatrix> inv_norms_;
};

}  // namespace distgnn
