#include "sampling/sampled_trainer.hpp"

#include <chrono>

#include "kernels/aggregate.hpp"

namespace distgnn {

SampledSageTrainer::SampledSageTrainer(const Dataset& dataset, SampledTrainConfig config)
    : dataset_(dataset),
      config_(std::move(config)),
      rng_(config_.seed),
      optimizer_(config_.lr, /*momentum=*/0.0, config_.weight_decay) {
  const int num_layers = static_cast<int>(config_.fanouts.size());
  const std::size_t f = static_cast<std::size_t>(dataset.feature_dim());
  const std::size_t h = static_cast<std::size_t>(config_.hidden_dim);
  const std::size_t c = static_cast<std::size_t>(dataset.num_classes);
  for (int l = 0; l < num_layers; ++l) {
    const std::size_t in = (l == 0) ? f : h;
    const std::size_t out = (l == num_layers - 1) ? c : h;
    layers_.emplace_back(in, out, /*apply_relu=*/l != num_layers - 1, rng_);
  }
  acts_.resize(static_cast<std::size_t>(num_layers) + 1);
  aggs_.resize(static_cast<std::size_t>(num_layers));
  inv_norms_.resize(static_cast<std::size_t>(num_layers));

  for (vid_t v = 0; v < dataset.num_vertices(); ++v)
    if (dataset.train_mask[static_cast<std::size_t>(v)]) train_vertices_.push_back(v);
}

void SampledSageTrainer::forward_batch(const MiniBatch& mb, bool training) {
  // Gather input features for the deepest layer's vertex set.
  const std::size_t f = static_cast<std::size_t>(dataset_.feature_dim());
  acts_[0].resize_discard(mb.input_vertices.size(), f);
  for (std::size_t i = 0; i < mb.input_vertices.size(); ++i) {
    const real_t* src = dataset_.features.row(static_cast<std::size_t>(mb.input_vertices[i]));
    std::copy(src, src + f, acts_[0].row(i));
  }

  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const SampledBlock& block = mb.blocks[l];
    const std::size_t d = acts_[l].cols();
    const auto n_dst = static_cast<std::size_t>(block.num_dst);

    DenseMatrix& agg = aggs_[l];
    agg.resize_discard(n_dst, d, 0);
    DenseMatrix& inv_norm = inv_norms_[l];
    inv_norm.resize_discard(n_dst, 1);
    for (vid_t v = 0; v < block.num_dst; ++v) {
      const auto nbrs = block.neighbors(v);
      real_t* a = agg.row(static_cast<std::size_t>(v));
      for (const vid_t u : nbrs) {
        const real_t* s = acts_[l].row(static_cast<std::size_t>(u));
#pragma omp simd
        for (std::size_t j = 0; j < d; ++j) a[j] += s[j];
      }
      inv_norm.at(static_cast<std::size_t>(v), 0) =
          1.0f / (static_cast<real_t>(nbrs.size()) + 1.0f);
    }

    // Destination rows are the leading rows of the source activations.
    const ConstMatrixView h_dst{acts_[l].data(), n_dst, d};
    acts_[l + 1].resize_discard(n_dst, layers_[l].out_dim());
    layers_[l].forward_from_aggregate(h_dst, agg.cview(), inv_norm.cview(), acts_[l + 1].view());
  }
  (void)training;
}

SampledEpochStats SampledSageTrainer::train_epoch() {
  SampledEpochStats stats;
  const auto begin = std::chrono::steady_clock::now();

  const auto batches = make_batches(train_vertices_, config_.batch_size, rng_);
  const CsrMatrix& in_csr = dataset_.graph.in_csr();

  DenseMatrix dY, dscaled, dH;
  std::vector<ParamRef> params;
  for (const auto& batch : batches) {
    const MiniBatch mb = sample_minibatch(in_csr, batch, config_.fanouts, rng_);
    stats.sampled_edges += mb.total_sampled_edges();
    forward_batch(mb, /*training=*/true);

    // Loss over the seeds (all masked: they are training vertices).
    std::vector<int> labels(mb.seeds.size());
    std::vector<std::uint8_t> mask(mb.seeds.size(), 1);
    for (std::size_t i = 0; i < mb.seeds.size(); ++i)
      labels[i] = dataset_.labels[static_cast<std::size_t>(mb.seeds[i])];
    const DenseMatrix& logits = acts_.back();
    stats.loss += loss_.forward(logits.cview(), labels, mask);

    for (auto& layer : layers_) layer.zero_grad();
    dY.resize_discard(logits.rows(), logits.cols());
    loss_.backward(dY.view());

    for (int l = static_cast<int>(layers_.size()) - 1; l >= 0; --l) {
      const SampledBlock& block = mb.blocks[static_cast<std::size_t>(l)];
      const std::size_t d = layers_[static_cast<std::size_t>(l)].in_dim();
      const auto n_dst = static_cast<std::size_t>(block.num_dst);
      dscaled.resize_discard(n_dst, d);
      layers_[static_cast<std::size_t>(l)].backward_to_scaled(dY.cview(), dscaled.view());

      // dH over the block's sources: self path plus sampled-neighbour path.
      dH.resize_discard(static_cast<std::size_t>(block.num_src), d, 0);
      for (std::size_t i = 0; i < n_dst; ++i) {
        const real_t* g = dscaled.row(i);
        real_t* self = dH.row(i);
#pragma omp simd
        for (std::size_t j = 0; j < d; ++j) self[j] += g[j];
        for (const vid_t u : block.neighbors(static_cast<vid_t>(i))) {
          real_t* t = dH.row(static_cast<std::size_t>(u));
#pragma omp simd
          for (std::size_t j = 0; j < d; ++j) t[j] += g[j];
        }
      }
      dY = dH;
    }

    params.clear();
    for (auto& layer : layers_) layer.collect_params(params);
    if (grad_hook_) grad_hook_(params);
    optimizer_.step(params);
    ++stats.num_batches;
  }

  stats.loss /= std::max(1, stats.num_batches);
  stats.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();
  return stats;
}

void SampledSageTrainer::restrict_train_vertices(std::vector<vid_t> vertices) {
  train_vertices_ = std::move(vertices);
}

double SampledSageTrainer::evaluate(const std::vector<std::uint8_t>& mask) {
  // Full-neighbourhood forward over the whole graph (standard GraphSAGE
  // evaluation): reuse the optimized AP.
  const CsrMatrix& in_csr = dataset_.graph.in_csr();
  const auto n = static_cast<std::size_t>(dataset_.num_vertices());

  DenseMatrix inv_norm(n, 1);
  for (std::size_t v = 0; v < n; ++v)
    inv_norm.at(v, 0) = 1.0f / (static_cast<real_t>(in_csr.degree(static_cast<vid_t>(v))) + 1.0f);

  ApConfig ap;
  ap.num_blocks = auto_num_blocks(dataset_.num_vertices(), static_cast<std::size_t>(dataset_.feature_dim()));
  DenseMatrix h = dataset_.features;
  DenseMatrix agg, next;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    agg.resize_discard(n, h.cols(), 0);
    aggregate(in_csr, h.cview(), {}, agg.view(), ap);
    next.resize_discard(n, layers_[l].out_dim());
    layers_[l].forward_from_aggregate(h.cview(), agg.cview(), inv_norm.cview(), next.view());
    h = next;
  }
  return masked_accuracy(h.cview(), dataset_.labels, mask).accuracy();
}

}  // namespace distgnn
