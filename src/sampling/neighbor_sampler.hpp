// Uniform neighbourhood sampling — the Dist-DGL-style mini-batch substrate
// the paper compares against in Tables 7-9. Samples up to `fanout` distinct
// in-neighbours per vertex.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "util/rng.hpp"

namespace distgnn {

/// Appends up to `fanout` distinct in-neighbours of `v` to `out`. When the
/// degree is <= fanout all neighbours are taken (DGL semantics).
void sample_neighbors(const CsrMatrix& in_csr, vid_t v, int fanout, Rng& rng,
                      std::vector<vid_t>& out);

/// Same draw, but also records each picked neighbour's original edge id in
/// `edge_ids` (aligned with the appended vertices). Consumes the exact RNG
/// stream of the 5-arg overload — callers that sometimes need edge labels
/// (relational models) and sometimes don't stay bitwise-comparable.
void sample_neighbors(const CsrMatrix& in_csr, vid_t v, int fanout, Rng& rng,
                      std::vector<vid_t>& out, std::vector<eid_t>& edge_ids);

}  // namespace distgnn
