// Distributed mini-batch training, Dist-DGL style: training vertices are
// split across ranks, each rank samples its own mini-batches against the
// (shared, read-only) graph and the replicas stay synchronized through a
// per-batch gradient AllReduce. This is the multi-socket comparator for
// Table 9's "Dist-DGL @16 sockets" row.
//
// Dist-DGL holds features in a distributed server and overlaps fetches with
// its (expensive) sampling; in-process, the shared dataset plays the feature
// server, which preserves the work division and synchronization pattern.
#pragma once

#include <cstdint>

#include "graph/datasets.hpp"
#include "sampling/sampled_trainer.hpp"

namespace distgnn {

struct DistSampledResult {
  double mean_epoch_seconds = 0.0;  // slowest rank per epoch, averaged
  double final_loss = 0.0;          // mean over ranks of last epoch's loss
  double test_accuracy = 0.0;       // full-graph evaluation on rank 0's model
  eid_t sampled_edges_per_epoch = 0;
};

/// Trains `epochs` epochs of mini-batch GraphSAGE over `num_ranks` simulated
/// sockets. `threads_per_rank` = 0 divides the machine evenly.
DistSampledResult train_distributed_sampled(const Dataset& dataset, SampledTrainConfig config,
                                            int num_ranks, int epochs, int threads_per_rank = 0);

}  // namespace distgnn
