#include "stream/graph_delta.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace distgnn::stream {

DeltaApplyStats apply_delta_edges(EdgeList& edges, std::vector<int>& edge_types,
                                  const GraphDelta& delta) {
  DeltaApplyStats stats;
  const bool typed = !edge_types.empty();
  if (typed && edge_types.size() != edges.edges.size())
    throw std::invalid_argument("apply_delta_edges: edge_types misaligned with edge list");

  // Deletes first, each claiming the first remaining matching occurrence.
  // O(D * E) per delta — deltas are small batches; the linear scan buys the
  // order-preserving semantics the bitwise-equality contract rests on.
  std::vector<bool> removed(edges.edges.size(), false);
  for (const Edge& victim : delta.edge_deletes) {
    for (std::size_t e = 0; e < edges.edges.size(); ++e) {
      if (removed[e] || !(edges.edges[e] == victim)) continue;
      removed[e] = true;
      stats.removed_edge_indices.push_back(static_cast<eid_t>(e));
      break;
    }
  }
  stats.edges_deleted = stats.removed_edge_indices.size();
  if (stats.edges_deleted > 0) {
    std::size_t out = 0;
    for (std::size_t e = 0; e < edges.edges.size(); ++e) {
      if (removed[e]) continue;
      edges.edges[out] = edges.edges[e];
      if (typed) edge_types[out] = edge_types[e];
      ++out;
    }
    edges.edges.resize(out);
    if (typed) edge_types.resize(out);
  }

  for (const EdgeInsert& ins : delta.edge_inserts) {
    if (ins.src < 0 || ins.src >= edges.num_vertices || ins.dst < 0 ||
        ins.dst >= edges.num_vertices)
      throw std::invalid_argument("apply_delta_edges: inserted edge endpoint out of range");
    edges.edges.push_back({ins.src, ins.dst});
    if (typed) edge_types.push_back(ins.rel);
  }
  stats.edges_inserted = delta.edge_inserts.size();
  return stats;
}

DeltaApplyStats apply_delta(Dataset& dataset, const GraphDelta& delta) {
  EdgeList coo = dataset.graph.coo();
  DeltaApplyStats stats = apply_delta_edges(coo, dataset.edge_types, delta);
  dataset.graph = Graph(std::move(coo));

  const std::size_t f = static_cast<std::size_t>(dataset.feature_dim());
  for (const FeatureUpdate& fu : delta.feature_updates) {
    if (fu.vertex < 0 || fu.vertex >= dataset.num_vertices())
      throw std::invalid_argument("apply_delta: feature update vertex out of range");
    if (fu.row.size() != f)
      throw std::invalid_argument("apply_delta: feature row width != feature_dim");
    std::copy(fu.row.begin(), fu.row.end(),
              dataset.features.row(static_cast<std::size_t>(fu.vertex)));
    ++stats.features_updated;
  }
  return stats;
}

std::vector<std::vector<vid_t>> compute_dirty_sets(const Graph& post_graph,
                                                   const GraphDelta& delta, int num_layers) {
  std::vector<std::vector<vid_t>> result(static_cast<std::size_t>(std::max(0, num_layers)));
  if (num_layers <= 0) return result;
  const vid_t n = post_graph.num_vertices();
  const CsrMatrix& out_csr = post_graph.out_csr();

  // T: vertices whose in-neighbourhood the delta restructured — dirty at
  // every layer. Deleted edges' destinations count too: the aggregation
  // over the post graph no longer includes the removed neighbour.
  std::vector<vid_t> touched;
  {
    std::vector<char> seen(static_cast<std::size_t>(n), 0);
    const auto touch = [&](vid_t v) {
      if (v < 0 || v >= n || seen[static_cast<std::size_t>(v)]) return;
      seen[static_cast<std::size_t>(v)] = 1;
      touched.push_back(v);
    };
    for (const EdgeInsert& e : delta.edge_inserts) touch(e.dst);
    for (const Edge& e : delta.edge_deletes) touch(e.dst);
  }

  // Dirty_0 = feature-updated vertices; Dirty_l = T ∪ Dirty_{l-1} ∪
  // out(Dirty_{l-1}): h_l(v) reads h_{l-1} of v and of v's in-neighbours,
  // so layer-(l-1) dirtiness propagates one out-hop per layer.
  std::vector<vid_t> prev;
  {
    std::vector<char> seen(static_cast<std::size_t>(n), 0);
    for (const FeatureUpdate& fu : delta.feature_updates) {
      if (fu.vertex < 0 || fu.vertex >= n || seen[static_cast<std::size_t>(fu.vertex)]) continue;
      seen[static_cast<std::size_t>(fu.vertex)] = 1;
      prev.push_back(fu.vertex);
    }
  }
  std::vector<char> mark(static_cast<std::size_t>(n), 0);
  for (int l = 1; l <= num_layers; ++l) {
    std::vector<vid_t> layer;
    const auto add = [&](vid_t v) {
      if (mark[static_cast<std::size_t>(v)]) return;
      mark[static_cast<std::size_t>(v)] = 1;
      layer.push_back(v);
    };
    for (const vid_t v : touched) add(v);
    for (const vid_t v : prev) {
      add(v);
      for (const vid_t w : out_csr.neighbors(v)) add(w);
    }
    for (const vid_t v : layer) mark[static_cast<std::size_t>(v)] = 0;  // reset for next layer
    std::sort(layer.begin(), layer.end());
    result[static_cast<std::size_t>(l - 1)] = layer;
    prev = std::move(layer);
  }
  return result;
}

void DeltaLog::insert_edge(vid_t src, vid_t dst, int rel) {
  util::MutexLock lock(mutex_);
  staging_.edge_inserts.push_back({src, dst, rel});
}

void DeltaLog::remove_edge(vid_t src, vid_t dst) {
  util::MutexLock lock(mutex_);
  staging_.edge_deletes.push_back({src, dst});
}

void DeltaLog::update_feature(vid_t vertex, std::vector<real_t> row) {
  util::MutexLock lock(mutex_);
  staging_.feature_updates.push_back({vertex, std::move(row)});
}

std::size_t DeltaLog::pending() const {
  util::MutexLock lock(mutex_);
  return staging_.size();
}

std::uint64_t DeltaLog::sealed_epochs() const {
  util::MutexLock lock(mutex_);
  return sealed_;
}

GraphDelta DeltaLog::seal() {
  util::MutexLock lock(mutex_);
  GraphDelta delta = std::move(staging_);
  staging_ = GraphDelta{};
  delta.epoch = ++sealed_;
  return delta;
}

std::vector<GraphDelta> make_delta_stream(const Dataset& base, const DeltaStreamConfig& config) {
  const vid_t n = base.num_vertices();
  if (n < 2) throw std::invalid_argument("make_delta_stream: need >= 2 vertices");
  const std::size_t f = static_cast<std::size_t>(base.feature_dim());
  Rng rng(config.seed ^ 0x5742ea11);

  // The generator applies each delta to its own working copy, so deletes in
  // delta k always name edges that exist after deltas 1..k-1 — the stream
  // replays cleanly against both a live server and a cold rebuild.
  EdgeList work = base.graph.coo();
  std::vector<int> work_types = base.edge_types;

  std::vector<GraphDelta> stream;
  stream.reserve(static_cast<std::size_t>(config.num_deltas));
  for (int d = 0; d < config.num_deltas; ++d) {
    GraphDelta delta;
    delta.epoch = static_cast<std::uint64_t>(d) + 1;
    for (int i = 0; i < config.deletes_per_delta && !work.edges.empty(); ++i) {
      const std::size_t pick = static_cast<std::size_t>(rng.next_below(work.edges.size()));
      delta.edge_deletes.push_back(work.edges[pick]);
    }
    for (int i = 0; i < config.inserts_per_delta; ++i) {
      EdgeInsert ins;
      ins.src = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n)));
      ins.dst = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n)));
      if (base.num_edge_types > 0)
        ins.rel = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(base.num_edge_types)));
      delta.edge_inserts.push_back(ins);
    }
    for (int i = 0; i < config.feature_updates_per_delta; ++i) {
      FeatureUpdate fu;
      fu.vertex = static_cast<vid_t>(rng.next_below(static_cast<std::uint64_t>(n)));
      fu.row.resize(f);
      for (real_t& x : fu.row) x = rng.uniform(-1.0f, 1.0f);
      delta.feature_updates.push_back(std::move(fu));
    }
    apply_delta_edges(work, work_types, delta);
    stream.push_back(std::move(delta));
  }
  return stream;
}

}  // namespace distgnn::stream
