// Mixed open-loop traffic: reads and graph writes against one backend.
//
// run_mixed_open_loop drives the read side exactly like the serving benches
// (TrafficGenerator::run_open_loop — requests land at scheduled instants
// whether or not the server keeps up) while a writer thread replays a
// pre-generated delta stream at its own arrival instants (Poisson or bursty
// MMPP — a write burst is the interesting case, since each delta costs a
// barrier). The report pairs the usual read-side LoadReport with the write
// side's apply-latency quantiles and the final served epoch, which is what
// bench_stream's freshness-vs-QPS sweeps and the CI streaming smoke plot
// and assert against.
#pragma once

#include <cstdint>
#include <span>

#include "serve/traffic_gen.hpp"
#include "stream/delta_publisher.hpp"
#include "stream/graph_delta.hpp"

namespace distgnn::stream {

struct MixedLoopConfig {
  serve::ArrivalConfig reads;
  std::size_t num_requests = 2000;
  double zipf_s = 0.0;  // 0 = uniform read popularity
  std::uint64_t read_seed = 1;
  /// Delta arrival process; one delta publishes per arrival until the
  /// stream is exhausted.
  serve::ArrivalConfig writes;
};

struct MixedLoopReport {
  serve::LoadReport reads;
  std::uint64_t deltas_published = 0;
  std::uint64_t final_epoch = 0;
  double apply_mean_ms = 0;
  double apply_p50_ms = 0;
  double apply_p99_ms = 0;
};

/// Publishes `deltas` through `publisher` at the write arrival instants
/// while the calling thread drives the open-loop read workload against
/// `backend`. Returns once both sides finish (all reads drained, every
/// delta published).
MixedLoopReport run_mixed_open_loop(serve::ServingBackend& backend, DeltaPublisher& publisher,
                                    std::span<const GraphDelta> deltas,
                                    const MixedLoopConfig& config);

}  // namespace distgnn::stream
