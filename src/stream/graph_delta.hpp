// Versioned streaming graph updates (src/stream): the delta layer.
//
// A GraphDelta is the unit of graph mutation the serving tower consumes:
// a batch of edge inserts/deletes plus feature-row overwrites, stamped with
// a monotone epoch. DeltaLog accumulates individual writes and seals them
// into numbered deltas; apply_delta_edges defines the ONE canonical apply
// semantics (deletes remove the first remaining matching occurrence in
// delta order, inserts append in delta order), shared by the live
// DeltaPublisher and by cold rebuilds — which is exactly why a server that
// streamed K deltas answers bitwise-identically to a fresh server built
// over the final graph: both sides hold the same edge list in the same
// order, so CSR rows (and therefore sampling RNG consumption) match.
//
// compute_dirty_sets turns a delta into the per-layer invalidation sets the
// epoch-keyed EmbedCache needs: a layer-l embedding h_l(v) depends on
// h_{l-1} of v and of v's in-neighbours, so dirtiness seeds at the delta's
// touched vertices and propagates one out-hop per layer over the POST-apply
// adjacency. Everything outside those sets survives the delta untouched —
// the targeted alternative to flushing |V| x L cached rows per update.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/coo.hpp"
#include "graph/datasets.hpp"
#include "graph/graph.hpp"
#include "util/sync.hpp"
#include "util/types.hpp"

namespace distgnn::stream {

struct EdgeInsert {
  vid_t src = kInvalidVertex;
  vid_t dst = kInvalidVertex;
  int rel = 0;  // relation label (ignored by homogeneous datasets)
};

struct FeatureUpdate {
  vid_t vertex = kInvalidVertex;
  std::vector<real_t> row;  // full replacement row, feature_dim wide
};

/// One sealed, epoch-stamped batch of graph mutations. The vertex set is
/// fixed (serving-side routing tables and feature shards are sized at
/// construction); edges and feature rows are the mutable surface.
struct GraphDelta {
  std::uint64_t epoch = 0;
  std::vector<EdgeInsert> edge_inserts;
  std::vector<Edge> edge_deletes;
  std::vector<FeatureUpdate> feature_updates;

  bool empty() const {
    return edge_inserts.empty() && edge_deletes.empty() && feature_updates.empty();
  }
  std::size_t size() const {
    return edge_inserts.size() + edge_deletes.size() + feature_updates.size();
  }
};

/// What an apply did, in terms the rest of the pipeline needs: counts for
/// telemetry and the PRE-delta indices of removed edges, which is how the
/// incremental partitioner (extend_partition_libra) realigns edge owners.
struct DeltaApplyStats {
  std::uint64_t edges_inserted = 0;
  std::uint64_t edges_deleted = 0;
  std::uint64_t features_updated = 0;
  std::vector<eid_t> removed_edge_indices;  // pre-delta positions, delta order
};

/// The canonical edge-apply: each delete removes the FIRST remaining edge
/// equal to it (processed in delta order; a delete with no match is a
/// no-op), survivors keep their relative order, inserts append in delta
/// order. `edge_types` is kept aligned when non-empty (typed datasets);
/// inserted edges take their EdgeInsert::rel label. Throws when an inserted
/// edge references a vertex outside [0, num_vertices).
DeltaApplyStats apply_delta_edges(EdgeList& edges, std::vector<int>& edge_types,
                                  const GraphDelta& delta);

/// Whole-dataset apply for cold rebuilds (tests, the bitwise-equality
/// probes): edges via apply_delta_edges, then feature rows overwritten.
/// The live path (DeltaPublisher) prepares off-barrier instead, but both
/// funnel through the same edge semantics above.
DeltaApplyStats apply_delta(Dataset& dataset, const GraphDelta& delta);

/// Per-layer dirty sets over the POST-apply graph: result[l-1] holds every
/// vertex whose layer-l cached embedding the delta could have changed,
/// sorted ascending. Seeds: feature-updated vertices at layer 0, plus the
/// destination of every edge insert/delete (its in-neighbourhood changed)
/// at every layer; propagation is one out-hop per layer.
std::vector<std::vector<vid_t>> compute_dirty_sets(const Graph& post_graph,
                                                   const GraphDelta& delta, int num_layers);

/// Thread-safe staging buffer: writers log individual mutations, seal()
/// snapshots them into a delta stamped with the next epoch and resets the
/// staging area. The publisher side consumes sealed deltas only.
class DeltaLog {
 public:
  void insert_edge(vid_t src, vid_t dst, int rel = 0);
  void remove_edge(vid_t src, vid_t dst);
  void update_feature(vid_t vertex, std::vector<real_t> row);

  /// Mutations staged since the last seal.
  std::size_t pending() const;
  /// Epochs sealed so far (the epoch the next seal() will NOT reuse).
  std::uint64_t sealed_epochs() const;

  /// Snapshots the staging buffer into a delta with epoch = sealed+1, then
  /// clears it. Sealing an empty log yields an empty delta (still stamped).
  GraphDelta seal();

 private:
  mutable util::Mutex mutex_;
  GraphDelta staging_ GUARDED_BY(mutex_);
  std::uint64_t sealed_ GUARDED_BY(mutex_) = 0;
};

/// Synthetic write workload for tests and bench_stream: `num_deltas` deltas
/// evolved against a working copy of `base`'s edge list (deletes always
/// target edges that exist at that point in the stream), deterministic for
/// a fixed seed.
struct DeltaStreamConfig {
  int num_deltas = 8;
  int inserts_per_delta = 8;
  int deletes_per_delta = 4;
  int feature_updates_per_delta = 4;
  std::uint64_t seed = 1234;
};

std::vector<GraphDelta> make_delta_stream(const Dataset& base, const DeltaStreamConfig& config);

}  // namespace distgnn::stream
