// DeltaPublisher: the write path of dynamic-graph serving.
//
// publish() turns a sealed GraphDelta into a version-barriered graph swap on
// any ServingBackend, with everything expensive done OUTSIDE the barrier:
// the post-delta edge list, both CSRs, the incrementally extended vertex-cut
// partition and the per-layer dirty sets are all prepared while readers keep
// serving the old graph. The barrier window (apply_graph_update) then only
// move-assigns the prepared Graph into the dataset, overwrites the updated
// feature rows, and lets the backend run its targeted invalidation — so
// read-side p99 during a sustained delta stream stays near the frozen
// baseline (the CI smoke pins < 1.5x).
//
// Freshness contract: a request admitted before the barrier sees epoch e in
// full; one admitted after sees e+1 in full; no request ever sees a mix —
// the backend's barrier (drained worker gate / pause rendezvous / group
// version barrier) is what makes the swap atomic from the reader's side,
// and the epoch folded into EmbedCache keys is what keeps pre-delta layer
// outputs from leaking into post-delta answers.
//
// Telemetry: per-delta kRepartition (prepare), kApply (barrier mutation)
// and kInvalidate (barrier remainder: rendezvous + cache walk) stage
// histograms under the "stream" layer, scrape-compatible with the shared
// bench/obs exposition (bench::attach_stage_counters).
#pragma once

#include <cstdint>
#include <functional>

#include "graph/datasets.hpp"
#include "obs/metrics.hpp"
#include "obs/scrape.hpp"
#include "obs/trace.hpp"
#include "partition/libra.hpp"
#include "serve/backend.hpp"
#include "stream/graph_delta.hpp"
#include "util/sync.hpp"

namespace distgnn::obs {
class HealthMonitor;
}  // namespace distgnn::obs

namespace distgnn::stream {

struct StreamConfig {
  /// A/B lever for bench_stream: blanket embed-cache invalidation per delta
  /// instead of the targeted dirty-set epoch advance.
  bool full_flush = false;
  /// Keep the vertex-cut aligned with the evolving edge list via
  /// extend_partition_libra (only meaningful when a partition is wired).
  bool update_partition = true;
};

struct StreamStats {
  std::uint64_t deltas_published = 0;
  std::uint64_t edges_inserted = 0;
  std::uint64_t edges_deleted = 0;
  std::uint64_t features_updated = 0;
  /// Upper bound on targeted embed-cache evictions: sum of per-layer dirty
  /// set sizes across published deltas. Compare against
  /// full_flush_equivalent to see what blanket invalidation would cost.
  std::uint64_t dirty_entries = 0;
  /// |V| x num_layers per delta — the (vertex, layer) population a full
  /// flush abandons each time.
  std::uint64_t full_flush_equivalent = 0;
};

class DeltaPublisher : public obs::ScrapeSource {
 public:
  /// The dataset must be the one `backend` serves (the apply mutates it in
  /// place under the backend's barrier). `partition`, when given, is the
  /// evolving vertex-cut — extended incrementally so cold rebuilds and
  /// sharded comparisons stay constructible against the live edge list.
  DeltaPublisher(Dataset& dataset, serve::ServingBackend& backend, StreamConfig config = {},
                 EdgePartition* partition = nullptr);

  /// Applies one delta through the backend's version barrier. Serialized
  /// (one publisher mutation at a time); returns the epoch now served.
  std::uint64_t publish(const GraphDelta& delta);

  std::uint64_t epoch() const;
  StreamStats stats() const;

  /// ScrapeSource: the stream-layer stage histograms + delta counters.
  void scrape(obs::MetricsSnapshot& out) const override;
  /// Per-delta publication traces: repartition/apply/invalidate spans on the
  /// kStreamTrack tenant (request_id = epoch), so render_chrome_trace lays
  /// delta publication out as its own track next to request spans.
  void collect_traces(std::vector<obs::Trace>& out) const override;

  /// Wires the publisher into a HealthMonitor: the publisher as a scrape
  /// source plus the graph-epoch freshness probe — served epoch (last
  /// publish) vs `log`'s sealed head. Both this publisher and `log` must
  /// outlive the monitor's last tick.
  void configure_health(obs::HealthMonitor& monitor, const DeltaLog& log,
                        const std::string& name = "stream") const;

 private:
  Dataset& dataset_;
  serve::ServingBackend& backend_;
  StreamConfig config_;
  EdgePartition* partition_;

  /// Serializes publish() calls end to end; held across the serving
  /// barrier, so readers must never take it. Always acquired before mutex_.
  util::Mutex publish_mutex_ ACQUIRED_BEFORE(mutex_);
  mutable util::Mutex mutex_;
  std::uint64_t epoch_ GUARDED_BY(mutex_) = 0;
  StreamStats stats_ GUARDED_BY(mutex_);

  obs::MetricsRegistry metrics_;
  obs::StageMetrics stage_metrics_{metrics_, "stream"};
  obs::TraceSink trace_sink_{/*ring_capacity=*/64, /*top_k=*/8};
};

}  // namespace distgnn::stream
