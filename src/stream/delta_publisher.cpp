#include "stream/delta_publisher.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/health.hpp"
#include "serve/model_snapshot.hpp"

namespace distgnn::stream {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

DeltaPublisher::DeltaPublisher(Dataset& dataset, serve::ServingBackend& backend,
                               StreamConfig config, EdgePartition* partition)
    : dataset_(dataset), backend_(backend), config_(config), partition_(partition) {
  if (&backend.dataset() != &dataset)
    throw std::invalid_argument("DeltaPublisher: backend serves a different dataset");
  if (partition_ && partition_->edge_owner.size() != dataset_.graph.coo().edges.size())
    throw std::invalid_argument("DeltaPublisher: partition misaligned with dataset edges");
}

std::uint64_t DeltaPublisher::publish(const GraphDelta& delta) {
  // Serializes concurrent publishers only. The state mutex_ is taken for
  // short field updates below, never across the barrier — a health scrape
  // or epoch() probe must not block behind a graph swap (lock order:
  // publish_mutex_ before mutex_, see ACQUIRED_BEFORE in the header).
  util::MutexLock publish_lock(publish_mutex_);
  const auto prepare_begin = Clock::now();

  // Prepare everything outside the barrier: readers serve epoch e from the
  // untouched dataset while we build e+1 on the side.
  const std::size_t f = static_cast<std::size_t>(dataset_.feature_dim());
  for (const FeatureUpdate& fu : delta.feature_updates) {
    if (fu.vertex < 0 || fu.vertex >= dataset_.num_vertices())
      throw std::invalid_argument("DeltaPublisher: feature update vertex out of range");
    if (fu.row.size() != f)
      throw std::invalid_argument("DeltaPublisher: feature row width != feature_dim");
  }
  EdgeList coo = dataset_.graph.coo();
  std::vector<int> edge_types = dataset_.edge_types;
  const DeltaApplyStats applied = apply_delta_edges(coo, edge_types, delta);
  if (partition_ && config_.update_partition)
    extend_partition_libra(*partition_, coo, applied.removed_edge_indices,
                           delta.edge_inserts.size());
  Graph prepared(std::move(coo));
  (void)prepared.in_csr();  // force both CSRs now, not under the barrier
  (void)prepared.out_csr();

  const std::shared_ptr<const serve::ModelSnapshot> snapshot = backend_.snapshot();
  const int num_layers = snapshot ? snapshot->spec().num_layers : 0;
  serve::GraphUpdateNotice notice;
  {
    util::MutexLock lock(mutex_);
    notice.epoch = delta.epoch != 0 ? std::max(delta.epoch, epoch_ + 1) : epoch_ + 1;
  }
  notice.full_flush = config_.full_flush;
  notice.dirty_layers = compute_dirty_sets(prepared, delta, num_layers);
  {
    std::vector<char> seen(static_cast<std::size_t>(dataset_.num_vertices()), 0);
    for (const FeatureUpdate& fu : delta.feature_updates) {
      if (seen[static_cast<std::size_t>(fu.vertex)]) continue;
      seen[static_cast<std::size_t>(fu.vertex)] = 1;
      notice.features.push_back(fu.vertex);
    }
  }
  const auto prepare_end = Clock::now();

  // Barrier window: graph move-assign (CSRs already built — a pointer swap),
  // feature-row overwrites, then the backend's own cache invalidation.
  double apply_seconds = 0;
  auto apply_begin = prepare_end;
  auto apply_end = prepare_end;
  backend_.apply_graph_update(
      [&] {
        apply_begin = Clock::now();
        dataset_.graph = std::move(prepared);
        dataset_.edge_types = std::move(edge_types);
        for (const FeatureUpdate& fu : delta.feature_updates)
          std::copy(fu.row.begin(), fu.row.end(),
                    dataset_.features.row(static_cast<std::size_t>(fu.vertex)));
        apply_end = Clock::now();
        apply_seconds = seconds_between(apply_begin, apply_end);
      },
      notice);
  const auto barrier_end = Clock::now();

  {
    util::MutexLock lock(mutex_);
    epoch_ = notice.epoch;
    stats_.deltas_published += 1;
    stats_.edges_inserted += applied.edges_inserted;
    stats_.edges_deleted += applied.edges_deleted;
    stats_.features_updated += delta.feature_updates.size();
    for (const auto& layer : notice.dirty_layers)
      stats_.dirty_entries += layer.size();
    stats_.full_flush_equivalent += static_cast<std::uint64_t>(dataset_.num_vertices()) *
                                    static_cast<std::uint64_t>(std::max(0, num_layers));
  }

  stage_metrics_.observe_stage(obs::Stage::kRepartition, /*tenant=*/0,
                               seconds_between(prepare_begin, prepare_end));
  stage_metrics_.observe_stage(obs::Stage::kApply, /*tenant=*/0, apply_seconds);
  stage_metrics_.observe_stage(
      obs::Stage::kInvalidate, /*tenant=*/0,
      std::max(0.0, seconds_between(prepare_end, barrier_end) - apply_seconds));

  // Every publication leaves a trace on the stream track (deltas are rare
  // relative to requests, so no sampling): prepare as kRepartition, the
  // in-barrier mutation as kApply, the rest of the barrier window —
  // rendezvous plus cache invalidation — as kInvalidate.
  obs::Trace trace;
  trace.request_id = notice.epoch;
  trace.tenant = obs::kStreamTrack;
  trace.begin_seconds = obs::TraceContext::seconds(prepare_begin);
  trace.end_seconds = obs::TraceContext::seconds(barrier_end);
  trace.spans[static_cast<std::size_t>(obs::Stage::kRepartition)] =
      obs::make_span(prepare_begin, prepare_end);
  trace.spans[static_cast<std::size_t>(obs::Stage::kApply)] =
      obs::make_span(apply_begin, apply_end);
  trace.spans[static_cast<std::size_t>(obs::Stage::kInvalidate)] =
      obs::make_span(apply_end, barrier_end);
  trace_sink_.publish(trace);
  return notice.epoch;
}

std::uint64_t DeltaPublisher::epoch() const {
  util::MutexLock lock(mutex_);
  return epoch_;
}

StreamStats DeltaPublisher::stats() const {
  util::MutexLock lock(mutex_);
  return stats_;
}

void DeltaPublisher::scrape(obs::MetricsSnapshot& out) const {
  metrics_.scrape(out);
  StreamStats s;
  {
    util::MutexLock lock(mutex_);
    s = stats_;
  }
  out.add_counter("distgnn_stream_deltas_total", {}, static_cast<double>(s.deltas_published));
  out.add_counter("distgnn_stream_edges_inserted_total", {},
                  static_cast<double>(s.edges_inserted));
  out.add_counter("distgnn_stream_edges_deleted_total", {}, static_cast<double>(s.edges_deleted));
  out.add_counter("distgnn_stream_features_updated_total", {},
                  static_cast<double>(s.features_updated));
  out.add_counter("distgnn_stream_dirty_entries_total", {}, static_cast<double>(s.dirty_entries));
  out.add_counter("distgnn_stream_full_flush_equivalent_total", {},
                  static_cast<double>(s.full_flush_equivalent));
}

void DeltaPublisher::collect_traces(std::vector<obs::Trace>& out) const {
  trace_sink_.collect(out);
}

void DeltaPublisher::configure_health(obs::HealthMonitor& monitor, const DeltaLog& log,
                                      const std::string& name) const {
  monitor.add_source(name, *this);
  monitor.add_epoch_probe(
      name, [this] { return epoch(); }, [&log] { return log.sealed_epochs(); });
}

}  // namespace distgnn::stream
