#include "stream/mixed_loop.hpp"

#include <chrono>
#include <thread>
#include <vector>

namespace distgnn::stream {

MixedLoopReport run_mixed_open_loop(serve::ServingBackend& backend, DeltaPublisher& publisher,
                                    std::span<const GraphDelta> deltas,
                                    const MixedLoopConfig& config) {
  using Clock = std::chrono::steady_clock;
  MixedLoopReport report;

  // Writer: replay the delta stream at its arrival instants. Pre-generated
  // offsets keep the write side deterministic in shape even though publish
  // durations vary run to run.
  const std::vector<double> write_arrivals =
      serve::generate_arrivals(config.writes, deltas.size());
  serve::LatencyRecorder apply_latency;
  std::thread writer([&] {
    const auto start = Clock::now();
    for (std::size_t d = 0; d < deltas.size(); ++d) {
      const auto due = start + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(write_arrivals[d]));
      std::this_thread::sleep_until(due);
      const auto t0 = Clock::now();
      report.final_epoch = publisher.publish(deltas[d]);
      apply_latency.record(std::chrono::duration<double>(Clock::now() - t0).count());
      ++report.deltas_published;
    }
  });

  serve::TrafficGenerator reads(backend, config.read_seed, config.zipf_s);
  report.reads = reads.run_open_loop(config.reads, config.num_requests);
  writer.join();

  report.apply_mean_ms = apply_latency.mean_seconds() * 1e3;
  report.apply_p50_ms = apply_latency.quantile(0.50) * 1e3;
  report.apply_p99_ms = apply_latency.quantile(0.99) * 1e3;
  return report;
}

}  // namespace distgnn::stream
