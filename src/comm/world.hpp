// In-process message-passing runtime — the cluster substitute.
//
// The paper runs one MPI rank per CPU socket with OneCCL collectives
// (AlltoAll for partial aggregates, AllReduce for parameter sync). No MPI is
// available offline, so World runs each rank on its own std::thread inside
// one process, with mailbox-based point-to-point messages and barrier-based
// collectives that mirror the MPI surface the paper's algorithms use:
//
//   * barrier / allreduce(sum|max) / broadcast / allgather
//   * alltoallv of float payloads (the partial-aggregate exchange)
//   * nonblocking tagged send + blocking/polling recv (the cd-r delayed path)
//
// Semantics match MPI where it matters: per (source, tag) channel ordering,
// no message loss, collectives synchronize all ranks. Wall-clock costs are
// obviously those of shared memory, so cross-rank *volumes* are also counted
// (CommStats) to let benches report communication the way the paper reasons
// about it.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "util/types.hpp"
#include "util/sync.hpp"

namespace distgnn {

/// Per-rank communication volume counters.
struct CommStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t allreduce_calls = 0;
  std::uint64_t allreduce_bytes = 0;
};

class Communicator;

/// Owns the shared state of a fixed-size rank group and runs rank bodies.
class World {
 public:
  explicit World(int num_ranks);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int num_ranks() const { return num_ranks_; }

  /// Runs `body(comm)` on `num_ranks` threads, one Communicator per rank,
  /// and joins them. Exceptions thrown by any rank are rethrown here (the
  /// first one wins). Reusable: run() can be called repeatedly.
  void run(const std::function<void(Communicator&)>& body);

  /// Convenience one-shot world.
  static void launch(int num_ranks, const std::function<void(Communicator&)>& body);

 private:
  friend class Communicator;

  struct Message {
    int source = 0;
    int tag = 0;
    std::vector<real_t> payload;
  };

  struct Mailbox {
    util::Mutex mutex;
    util::CondVar cv;
    std::map<std::pair<int, int>, std::deque<std::vector<real_t>>> queues
        GUARDED_BY(mutex);  // (src, tag)
  };

  // Generation-counting barrier (std::barrier needs a fixed completion fn;
  // we also reuse it as the rendezvous for reduction buffers).
  void barrier_wait();

  int num_ranks_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<CommStats> stats_;

  util::Mutex barrier_mutex_;
  util::CondVar barrier_cv_;
  int barrier_arrived_ GUARDED_BY(barrier_mutex_) = 0;
  std::uint64_t barrier_generation_ GUARDED_BY(barrier_mutex_) = 0;

  // Collective scratch: pointers registered per rank, valid between the two
  // barriers that bracket each collective.
  std::vector<void*> collective_slots_;
};

/// One rank's handle onto a World. Not thread-safe; each rank thread owns one.
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const { return world_.num_ranks_; }

  void barrier();

  /// In-place elementwise sum across ranks; every rank ends with the total.
  void allreduce_sum(std::span<real_t> data);
  void allreduce_sum(std::span<double> data);
  /// In-place elementwise max across ranks.
  void allreduce_max(std::span<real_t> data);

  /// Copies root's buffer into every rank's buffer.
  void broadcast(std::span<real_t> data, int root);

  /// Variable-length broadcast: root's size wins and the other ranks'
  /// vectors are resized to match before the copy. This is the group
  /// snapshot-publication primitive — replicas receive a payload whose size
  /// only the publisher knows (flattened model weights).
  void broadcast_v(std::vector<real_t>& data, int root);

  /// Gathers each rank's value; result indexed by rank. Available on all ranks.
  std::vector<std::int64_t> allgather(std::int64_t value);

  /// Exchange: sends send[p] to rank p, returns recv where recv[p] is the
  /// payload rank p sent here. The collective the partial-aggregate halo
  /// exchange uses (paper: OneCCL AlltoAll).
  std::vector<std::vector<real_t>> alltoallv(const std::vector<std::vector<real_t>>& send);

  /// Nonblocking tagged point-to-point: enqueues and returns immediately.
  void send(int dest, int tag, std::vector<real_t> payload);
  /// Blocks until a message with (source, tag) arrives.
  std::vector<real_t> recv(int source, int tag);
  /// Non-blocking probe-and-take.
  std::optional<std::vector<real_t>> try_recv(int source, int tag);

  const CommStats& stats() const { return world_.stats_[static_cast<std::size_t>(rank_)]; }

 private:
  friend class World;
  Communicator(World& world, int rank) : world_(world), rank_(rank) {}

  template <typename T>
  void allreduce_impl(std::span<T> data);

  World& world_;
  int rank_;
};

}  // namespace distgnn
