#include "comm/world.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <thread>

namespace distgnn {

World::World(int num_ranks) : num_ranks_(num_ranks) {
  if (num_ranks < 1) throw std::invalid_argument("World: num_ranks must be >= 1");
  mailboxes_.resize(static_cast<std::size_t>(num_ranks));
  for (auto& mb : mailboxes_) mb = std::make_unique<Mailbox>();
  stats_.resize(static_cast<std::size_t>(num_ranks));
  collective_slots_.assign(static_cast<std::size_t>(num_ranks), nullptr);
}

World::~World() = default;

void World::barrier_wait() {
  util::MutexLock lock(barrier_mutex_);
  const std::uint64_t my_generation = barrier_generation_;
  if (++barrier_arrived_ == num_ranks_) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
  } else {
    while (barrier_generation_ == my_generation) barrier_cv_.wait(lock);
  }
}

void World::run(const std::function<void(Communicator&)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks_));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(num_ranks_));

  for (int r = 0; r < num_ranks_; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(*this, r);
      try {
        body(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& err : errors)
    if (err) std::rethrow_exception(err);
}

void World::launch(int num_ranks, const std::function<void(Communicator&)>& body) {
  World world(num_ranks);
  world.run(body);
}

void Communicator::barrier() { world_.barrier_wait(); }

template <typename T>
void Communicator::allreduce_impl(std::span<T> data) {
  auto& slots = world_.collective_slots_;
  slots[static_cast<std::size_t>(rank_)] = data.data();
  world_.barrier_wait();
  // Every rank reduces a disjoint stripe of the vector across all ranks into
  // rank 0's buffer, then all copy the result out: a simple two-phase
  // reduce-broadcast with O(n/P) work per rank.
  const std::size_t n = data.size();
  const std::size_t stripe = (n + static_cast<std::size_t>(size()) - 1) / static_cast<std::size_t>(size());
  const std::size_t begin = std::min(n, static_cast<std::size_t>(rank_) * stripe);
  const std::size_t end = std::min(n, begin + stripe);
  T* root = static_cast<T*>(world_.collective_slots_[0]);
  for (int r = 1; r < size(); ++r) {
    const T* other = static_cast<T*>(world_.collective_slots_[static_cast<std::size_t>(r)]);
    for (std::size_t i = begin; i < end; ++i) root[i] += other[i];
  }
  world_.barrier_wait();
  if (rank_ != 0) std::copy(root, root + n, data.data());
  auto& st = world_.stats_[static_cast<std::size_t>(rank_)];
  ++st.allreduce_calls;
  st.allreduce_bytes += n * sizeof(T);
  world_.barrier_wait();
}

void Communicator::allreduce_sum(std::span<real_t> data) { allreduce_impl(data); }
void Communicator::allreduce_sum(std::span<double> data) { allreduce_impl(data); }

void Communicator::allreduce_max(std::span<real_t> data) {
  auto& slots = world_.collective_slots_;
  slots[static_cast<std::size_t>(rank_)] = data.data();
  world_.barrier_wait();
  const std::size_t n = data.size();
  const std::size_t stripe = (n + static_cast<std::size_t>(size()) - 1) / static_cast<std::size_t>(size());
  const std::size_t begin = std::min(n, static_cast<std::size_t>(rank_) * stripe);
  const std::size_t end = std::min(n, begin + stripe);
  real_t* root = static_cast<real_t*>(world_.collective_slots_[0]);
  for (int r = 1; r < size(); ++r) {
    const real_t* other = static_cast<real_t*>(world_.collective_slots_[static_cast<std::size_t>(r)]);
    for (std::size_t i = begin; i < end; ++i) root[i] = std::max(root[i], other[i]);
  }
  world_.barrier_wait();
  if (rank_ != 0) std::copy(root, root + n, data.data());
  world_.barrier_wait();
}

void Communicator::broadcast(std::span<real_t> data, int root) {
  auto& slots = world_.collective_slots_;
  slots[static_cast<std::size_t>(rank_)] = data.data();
  world_.barrier_wait();
  if (rank_ != root) {
    const real_t* src = static_cast<real_t*>(world_.collective_slots_[static_cast<std::size_t>(root)]);
    std::copy(src, src + data.size(), data.data());
  }
  world_.barrier_wait();
}

void Communicator::broadcast_v(std::vector<real_t>& data, int root) {
  const auto sizes = allgather(static_cast<std::int64_t>(data.size()));
  data.resize(static_cast<std::size_t>(sizes[static_cast<std::size_t>(root)]));
  broadcast(std::span<real_t>(data), root);
  if (rank_ == root) {
    // Count the fan-out the way send() would: one copy per receiving rank.
    auto& st = world_.stats_[static_cast<std::size_t>(rank_)];
    st.messages_sent += static_cast<std::uint64_t>(size() - 1);
    st.bytes_sent += static_cast<std::uint64_t>(size() - 1) * data.size() * sizeof(real_t);
  }
}

std::vector<std::int64_t> Communicator::allgather(std::int64_t value) {
  // Reuse the slot mechanism with a per-rank stack value.
  thread_local std::int64_t local;
  local = value;
  auto& slots = world_.collective_slots_;
  slots[static_cast<std::size_t>(rank_)] = &local;
  world_.barrier_wait();
  std::vector<std::int64_t> out(static_cast<std::size_t>(size()));
  for (int r = 0; r < size(); ++r)
    out[static_cast<std::size_t>(r)] = *static_cast<std::int64_t*>(world_.collective_slots_[static_cast<std::size_t>(r)]);
  world_.barrier_wait();
  return out;
}

std::vector<std::vector<real_t>> Communicator::alltoallv(
    const std::vector<std::vector<real_t>>& send) {
  if (send.size() != static_cast<std::size_t>(size()))
    throw std::invalid_argument("alltoallv: send must have one buffer per rank");
  constexpr int kAlltoallTag = -424242;  // reserved internal tag
  for (int p = 0; p < size(); ++p) this->send(p, kAlltoallTag, send[static_cast<std::size_t>(p)]);
  std::vector<std::vector<real_t>> recv(static_cast<std::size_t>(size()));
  for (int p = 0; p < size(); ++p) recv[static_cast<std::size_t>(p)] = this->recv(p, kAlltoallTag);
  return recv;
}

void Communicator::send(int dest, int tag, std::vector<real_t> payload) {
  if (dest < 0 || dest >= size()) throw std::out_of_range("send: bad destination rank");
  auto& st = world_.stats_[static_cast<std::size_t>(rank_)];
  ++st.messages_sent;
  if (dest != rank_) st.bytes_sent += payload.size() * sizeof(real_t);
  World::Mailbox& mb = *world_.mailboxes_[static_cast<std::size_t>(dest)];
  {
    util::MutexLock lock(mb.mutex);
    mb.queues[{rank_, tag}].push_back(std::move(payload));
  }
  mb.cv.notify_all();
}

std::vector<real_t> Communicator::recv(int source, int tag) {
  World::Mailbox& mb = *world_.mailboxes_[static_cast<std::size_t>(rank_)];
  util::MutexLock lock(mb.mutex);
  auto& queue = mb.queues[{source, tag}];
  while (queue.empty()) mb.cv.wait(lock);
  std::vector<real_t> payload = std::move(queue.front());
  queue.pop_front();
  return payload;
}

std::optional<std::vector<real_t>> Communicator::try_recv(int source, int tag) {
  World::Mailbox& mb = *world_.mailboxes_[static_cast<std::size_t>(rank_)];
  util::MutexLock lock(mb.mutex);
  const auto it = mb.queues.find({source, tag});
  if (it == mb.queues.end() || it->second.empty()) return std::nullopt;
  std::vector<real_t> payload = std::move(it->second.front());
  it->second.pop_front();
  return payload;
}

}  // namespace distgnn
