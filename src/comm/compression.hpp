// Low-precision halo-payload compression — the paper's §7 future work
// ("deploy low-precision data formats such FP16 and BFLOAT16" to further
// reduce communication volume). Partial aggregates are packed two 16-bit
// values per float slot before async_send and unpacked on receipt, halving
// the bytes on the wire; the ablation bench measures the accuracy cost.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace distgnn {

enum class HaloPrecision {
  kFp32,  // no compression
  kBf16,  // truncated-mantissa bfloat16 (round-to-nearest-even)
  kFp16,  // IEEE binary16
};

std::string to_string(HaloPrecision precision);

/// Scalar conversions (exposed for tests).
std::uint16_t float_to_bf16(float value);
float bf16_to_float(std::uint16_t bits);
std::uint16_t float_to_fp16(float value);
float fp16_to_float(std::uint16_t bits);

/// Packs `values` into ceil(n/2) float slots of 16-bit codes. kFp32 returns
/// the input unchanged.
std::vector<real_t> encode_halo(const std::vector<real_t>& values, HaloPrecision precision);

/// Inverse of encode_halo; `count` is the original element count (the halo
/// plans know it, so it never travels on the wire).
std::vector<real_t> decode_halo(const std::vector<real_t>& packed, std::size_t count,
                                HaloPrecision precision);

/// Bytes a payload of `count` floats occupies on the wire at this precision.
std::size_t wire_bytes(std::size_t count, HaloPrecision precision);

}  // namespace distgnn
