#include "comm/compression.hpp"

#include <cstring>
#include <stdexcept>

namespace distgnn {

std::string to_string(HaloPrecision precision) {
  switch (precision) {
    case HaloPrecision::kFp32: return "fp32";
    case HaloPrecision::kBf16: return "bf16";
    case HaloPrecision::kFp16: return "fp16";
  }
  return "?";
}

std::uint16_t float_to_bf16(float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  // Round to nearest even on the truncated 16 mantissa bits.
  const std::uint32_t rounding = 0x7fffu + ((bits >> 16) & 1u);
  return static_cast<std::uint16_t>((bits + rounding) >> 16);
}

float bf16_to_float(std::uint16_t bits) {
  const std::uint32_t expanded = static_cast<std::uint32_t>(bits) << 16;
  float value;
  std::memcpy(&value, &expanded, sizeof(value));
  return value;
}

std::uint16_t float_to_fp16(float value) {
  std::uint32_t f;
  std::memcpy(&f, &value, sizeof(f));
  const std::uint32_t sign = (f >> 16) & 0x8000u;
  std::int32_t exponent = static_cast<std::int32_t>((f >> 23) & 0xff) - 127 + 15;
  std::uint32_t mantissa = f & 0x7fffffu;

  if (exponent >= 31) return static_cast<std::uint16_t>(sign | 0x7c00u);  // inf/overflow
  if (exponent <= 0) {
    // Subnormal or underflow to zero.
    if (exponent < -10) return static_cast<std::uint16_t>(sign);
    mantissa |= 0x800000u;  // implicit leading 1
    const int shift = 14 - exponent;
    const std::uint32_t sub = mantissa >> shift;
    const std::uint32_t rem = mantissa & ((1u << shift) - 1);
    const std::uint32_t half = 1u << (shift - 1);
    std::uint32_t rounded = sub + ((rem > half || (rem == half && (sub & 1))) ? 1 : 0);
    return static_cast<std::uint16_t>(sign | rounded);
  }
  // Normal: round mantissa to 10 bits, nearest even.
  std::uint32_t rounded = mantissa + 0xfffu + ((mantissa >> 13) & 1u);
  if (rounded & 0x800000u) {  // mantissa overflow bumps the exponent
    rounded = 0;
    ++exponent;
    if (exponent >= 31) return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  return static_cast<std::uint16_t>(sign | (static_cast<std::uint32_t>(exponent) << 10) |
                                    (rounded >> 13));
}

float fp16_to_float(std::uint16_t bits) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(bits) & 0x8000u) << 16;
  const std::uint32_t exponent = (bits >> 10) & 0x1fu;
  const std::uint32_t mantissa = bits & 0x3ffu;
  std::uint32_t f;
  if (exponent == 0) {
    if (mantissa == 0) {
      f = sign;  // signed zero
    } else {
      // Subnormal: normalize.
      int e = -1;
      std::uint32_t m = mantissa;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      f = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) | ((m & 0x3ffu) << 13);
    }
  } else if (exponent == 31) {
    f = sign | 0x7f800000u | (mantissa << 13);  // inf / nan
  } else {
    f = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  float value;
  std::memcpy(&value, &f, sizeof(value));
  return value;
}

namespace {

std::uint16_t encode_one(float value, HaloPrecision precision) {
  return precision == HaloPrecision::kBf16 ? float_to_bf16(value) : float_to_fp16(value);
}

float decode_one(std::uint16_t bits, HaloPrecision precision) {
  return precision == HaloPrecision::kBf16 ? bf16_to_float(bits) : fp16_to_float(bits);
}

}  // namespace

std::vector<real_t> encode_halo(const std::vector<real_t>& values, HaloPrecision precision) {
  if (precision == HaloPrecision::kFp32) return values;
  std::vector<real_t> packed((values.size() + 1) / 2);
  for (std::size_t i = 0; i < values.size(); i += 2) {
    const std::uint32_t lo = encode_one(values[i], precision);
    const std::uint32_t hi =
        i + 1 < values.size() ? encode_one(values[i + 1], precision) : 0u;
    const std::uint32_t word = lo | (hi << 16);
    std::memcpy(&packed[i / 2], &word, sizeof(word));
  }
  return packed;
}

std::vector<real_t> decode_halo(const std::vector<real_t>& packed, std::size_t count,
                                HaloPrecision precision) {
  if (precision == HaloPrecision::kFp32) {
    if (packed.size() != count) throw std::invalid_argument("decode_halo: fp32 size mismatch");
    return packed;
  }
  if (packed.size() != (count + 1) / 2)
    throw std::invalid_argument("decode_halo: packed size mismatch");
  std::vector<real_t> values(count);
  for (std::size_t i = 0; i < count; i += 2) {
    std::uint32_t word;
    std::memcpy(&word, &packed[i / 2], sizeof(word));
    values[i] = decode_one(static_cast<std::uint16_t>(word & 0xffffu), precision);
    if (i + 1 < count)
      values[i + 1] = decode_one(static_cast<std::uint16_t>(word >> 16), precision);
  }
  return values;
}

std::size_t wire_bytes(std::size_t count, HaloPrecision precision) {
  return precision == HaloPrecision::kFp32 ? count * 4 : ((count + 1) / 2) * 4;
}

}  // namespace distgnn
