// Exposition: scrape snapshots to Prometheus text / JSON, traces to Chrome
// trace_event JSON, plus a minimal Prometheus parser for round-trip tests
// and CI assertions.
#pragma once

#include <span>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace distgnn::obs {

class HealthMonitor;

/// Prometheus text exposition format, version 0.0.4: counters as
/// `name{labels} value`, histograms as cumulative `_bucket{le=...}` series
/// plus `_sum`/`_count`. Series are grouped by metric name with one # TYPE
/// line each; label values are escaped per the spec.
std::string render_prometheus(const MetricsSnapshot& snapshot);

/// The same snapshot as a JSON array of {name, labels, type, ...} objects —
/// counters carry "value", histograms carry "count"/"sum"/"buckets"
/// ({le, count} cumulative, mirroring the Prometheus encoding).
std::string render_json(const MetricsSnapshot& snapshot);

/// Chrome trace_event JSON ("X" complete events, microsecond timestamps):
/// one event per recorded stage span, pid = tenant, tid = request id, so
/// chrome://tracing / Perfetto lays requests out as rows grouped by tenant.
/// Traces with tenant == kStreamTrack (delta publications) render as their
/// own "stream" process track with cat "stream".
std::string render_chrome_trace(std::span<const Trace> traces);

/// Minimal parser for the subset render_prometheus emits (enough for a
/// round-trip test and smoke assertions; not a general scraper). Histogram
/// series are folded back into HistogramData. Malformed input throws
/// std::runtime_error naming the offending line: bad or dangling label
/// escapes, non-numeric or trailing-junk values, and truncated/invalid
/// `# HELP` / `# TYPE` comments are all rejected rather than skipped.
MetricsSnapshot parse_prometheus(const std::string& text);

/// The HealthMonitor's state as JSON: tick/series/allocation counts plus the
/// active alerts and the transition history as structured event objects.
std::string render_health_json(const HealthMonitor& monitor);

}  // namespace distgnn::obs
