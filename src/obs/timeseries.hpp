// Fixed-capacity time series over scrape snapshots: the storage half of the
// health engine.
//
// A HealthMonitor scrapes the tower every few tens of milliseconds; under an
// MMPP regime a point-in-time scrape misleads (squared coefficient of
// variation > 1 — bursts hide between samples), so rules need *windows*:
// counter deltas/rates over a trailing window and histogram quantiles over
// the increments that landed inside it. This file provides exactly that,
// with the constraint that the per-tick sample path performs no heap
// allocation once a series exists: rings are preallocated at creation and
// overwrite their oldest slot, and ingest matches snapshot points to series
// through a positional hint (scrape order is stable) with a linear-search
// fallback. Series creation is the only allocating event and is counted, so
// tests can assert the steady state is allocation-free.
//
// Windowed reads subtract the newest retained sample at or before
// (now - window) from the newest sample. When every retained sample is
// newer than the cutoff — a young series, or a ring that already evicted
// the baseline — the oldest retained sample is the baseline, i.e. the
// window silently truncates to the observed span instead of inventing a
// zero baseline that would count pre-attach history as current traffic.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace distgnn::obs {

/// One (time, value) observation. Times are seconds on whatever clock the
/// owner stamps with (the HealthMonitor's injected clock).
struct TsSample {
  double t = 0;
  double value = 0;
};

/// Ring of scalar samples (cumulative counter readings or gauge levels).
/// push() overwrites the oldest slot once full and never allocates.
class ValueSeries {
 public:
  explicit ValueSeries(std::size_t capacity);

  void push(double t, double value);

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return ring_.size(); }
  const TsSample& newest() const;
  const TsSample& oldest() const;

  /// Newest sample with t <= cutoff, else nullptr (every retained sample is
  /// newer). nullptr when empty.
  const TsSample* at_or_before(double cutoff) const;

  /// Value increase over the trailing window (see file comment for baseline
  /// selection). Clamped at 0 so a counter reset reads as quiet, not as a
  /// huge negative burst. 0 with fewer than two samples.
  double delta(double now, double window) const;
  /// delta() divided by the *actual* baseline->newest span (not the nominal
  /// window), so truncated windows still report a correct per-second rate.
  double rate(double now, double window) const;

 private:
  const TsSample& at(std::size_t logical) const;  // 0 = oldest

  std::vector<TsSample> ring_;
  std::size_t head_ = 0;  // next write position
  std::size_t size_ = 0;
};

/// Ring of cumulative HistogramData snapshots. window_delta() recovers the
/// increments that landed inside the trailing window by bucket-wise
/// (saturating) subtraction of two snapshots.
class HistogramSeries {
 public:
  explicit HistogramSeries(std::size_t capacity);

  void push(double t, const HistogramData& cumulative);

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  const HistogramData* newest() const;

  HistogramData window_delta(double now, double window) const;
  double window_quantile(double now, double window, double q) const;

 private:
  struct Snap {
    double t = 0;
    HistogramData h;
  };
  const Snap& at(std::size_t logical) const;  // 0 = oldest

  std::vector<Snap> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// Named collection of series fed from MetricsSnapshots. One store per
/// scraped source keeps fold queries scoped to that source's tower.
class TimeSeriesStore {
 public:
  struct Config {
    std::size_t value_capacity = 256;
    std::size_t histogram_capacity = 128;
    /// Histogram points are ingested only when their name ends with this
    /// suffix (empty = ingest all). Histogram snapshots are ~0.4 KB each, so
    /// an unfiltered store over an R×P grid's per-stage per-tenant series
    /// costs tens of MB of rings; the health rules only read
    /// *_request_seconds.
    std::string histogram_filter = "_request_seconds";
  };

  TimeSeriesStore();
  explicit TimeSeriesStore(Config cfg);

  /// Pushes every point of `snapshot` into its series, creating series on
  /// first sight. Steady state (same layout as the previous scrape) performs
  /// no allocation.
  void ingest(double t, const MetricsSnapshot& snapshot);

  /// Pushes a single scalar observation (probe gauges: queue depth, epoch
  /// lag). Allocation-free once the series exists.
  void ingest_gauge(double t, const std::string& name, const Labels& labels, double value);

  /// Number of series creations so far. Flat across ticks == the sample
  /// path allocated nothing (the assertion health_test pins).
  std::uint64_t allocations() const { return allocations_; }
  std::size_t num_series() const { return entries_.size(); }

  const ValueSeries* find_values(std::string_view name, const Labels& labels = {}) const;
  const HistogramSeries* find_histograms(std::string_view name, const Labels& labels = {}) const;

  // -- Folds over every series whose name ends with `suffix` and (when
  // label_key is non-empty) carries label_key="label_value". None allocate.

  double fold_counter_delta(std::string_view suffix, std::string_view label_key,
                            std::string_view label_value, double now, double window) const;
  double fold_counter_rate(std::string_view suffix, std::string_view label_key,
                           std::string_view label_value, double now, double window) const;
  /// Sum of the newest readings (a point-in-time total, e.g. completed so
  /// far).
  double fold_counter_latest(std::string_view suffix, std::string_view label_key,
                             std::string_view label_value) const;
  HistogramData fold_histogram_delta(std::string_view suffix, std::string_view label_key,
                                     std::string_view label_value, double now,
                                     double window) const;

 private:
  struct Entry {
    std::string name;
    Labels labels;
    std::unique_ptr<ValueSeries> values;     // exactly one of values /
    std::unique_ptr<HistogramSeries> hist;   // hist is set
  };

  Entry* match(const std::string& name, const Labels& labels, std::size_t hint_slot);
  Entry& create(const std::string& name, const Labels& labels, bool is_histogram);
  bool entry_matches(const Entry& e, std::string_view suffix, std::string_view label_key,
                     std::string_view label_value) const;

  Config cfg_;
  std::vector<Entry> entries_;
  /// Positional hint: snapshot point index -> entry index from the previous
  /// ingest (scrape enumeration order is stable, so this almost always
  /// hits). npos marks filtered-out points.
  std::vector<std::size_t> hint_;
  std::uint64_t allocations_ = 0;
};

}  // namespace distgnn::obs
