#include "obs/expose.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "obs/health.hpp"

namespace distgnn::obs {

namespace {

std::string fmt_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.2e18) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_le(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string render_labels(const Labels& labels, const std::string& extra_key = "",
                          const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += k + "=\"" + escape_label(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out.push_back(',');
    out += extra_key + "=\"" + escape_label(extra_value) + "\"";
  }
  out.push_back('}');
  return out;
}

std::string json_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string render_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  // One # TYPE line per metric name, series grouped under it: walk names in
  // first-appearance order, then every point sharing the name.
  std::vector<const std::string*> names;
  for (const MetricPoint& p : snapshot.points) {
    const bool seen = std::any_of(names.begin(), names.end(),
                                  [&](const std::string* n) { return *n == p.name; });
    if (!seen) names.push_back(&p.name);
  }
  for (const std::string* name : names) {
    bool typed = false;
    for (const MetricPoint& p : snapshot.points) {
      if (p.name != *name) continue;
      if (!typed) {
        out << "# TYPE " << *name << (p.is_histogram ? " histogram" : " counter") << "\n";
        typed = true;
      }
      if (!p.is_histogram) {
        out << p.name << render_labels(p.labels) << " " << fmt_number(p.value) << "\n";
        continue;
      }
      // Cumulative buckets; empty buckets are elided (cumulative counts make
      // them recoverable) but +Inf is always present.
      std::uint64_t cumulative = 0;
      for (int k = 0; k < kNumBuckets - 1; ++k) {
        const std::uint64_t in_bucket = p.histogram.buckets[static_cast<std::size_t>(k)];
        if (in_bucket == 0) continue;
        cumulative += in_bucket;
        out << p.name << "_bucket"
            << render_labels(p.labels, "le", fmt_le(bucket_upper_seconds(k))) << " "
            << cumulative << "\n";
      }
      out << p.name << "_bucket" << render_labels(p.labels, "le", "+Inf") << " "
          << p.histogram.count << "\n";
      out << p.name << "_sum" << render_labels(p.labels) << " "
          << fmt_number(p.histogram.sum_seconds) << "\n";
      out << p.name << "_count" << render_labels(p.labels) << " " << p.histogram.count << "\n";
    }
  }
  return out.str();
}

std::string render_json(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "[";
  bool first_point = true;
  for (const MetricPoint& p : snapshot.points) {
    if (!first_point) out << ",";
    first_point = false;
    out << "\n  {\"name\":\"" << json_escape(p.name) << "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [k, v] : p.labels) {
      if (!first_label) out << ",";
      first_label = false;
      out << "\"" << json_escape(k) << "\":\"" << json_escape(v) << "\"";
    }
    out << "},";
    if (!p.is_histogram) {
      out << "\"type\":\"counter\",\"value\":" << fmt_number(p.value) << "}";
      continue;
    }
    out << "\"type\":\"histogram\",\"count\":" << p.histogram.count
        << ",\"sum\":" << fmt_number(p.histogram.sum_seconds) << ",\"buckets\":[";
    std::uint64_t cumulative = 0;
    bool first_bucket = true;
    for (int k = 0; k < kNumBuckets; ++k) {
      const std::uint64_t in_bucket = p.histogram.buckets[static_cast<std::size_t>(k)];
      if (in_bucket == 0) continue;
      cumulative += in_bucket;
      if (!first_bucket) out << ",";
      first_bucket = false;
      out << "{\"le\":" << fmt_le(bucket_upper_seconds(k)) << ",\"count\":" << cumulative << "}";
    }
    out << "]}";
  }
  out << "\n]\n";
  return out.str();
}

std::string render_chrome_trace(std::span<const Trace> traces) {
  // Timestamps are offset to the earliest trace so Perfetto's viewport
  // starts at ~0 rather than hours of steady-clock uptime.
  double t0 = 0;
  bool have_t0 = false;
  for (const Trace& trace : traces) {
    if (!have_t0 || trace.begin_seconds < t0) {
      t0 = trace.begin_seconds;
      have_t0 = true;
    }
  }

  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  std::vector<std::int32_t> tenants_seen;
  const auto emit = [&](const std::string& event) {
    if (!first) out << ",";
    first = false;
    out << "\n  " << event;
  };
  for (const Trace& trace : traces) {
    const bool stream_track = trace.tenant == kStreamTrack;
    if (std::find(tenants_seen.begin(), tenants_seen.end(), trace.tenant) ==
        tenants_seen.end()) {
      tenants_seen.push_back(trace.tenant);
      std::ostringstream meta;
      meta << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << trace.tenant
           << ",\"args\":{\"name\":\"";
      if (stream_track)
        meta << "stream";
      else
        meta << "tenant " << trace.tenant;
      meta << "\"}}";
      emit(meta.str());
    }
    for (int s = 0; s < kNumStages; ++s) {
      const Span& span = trace.spans[static_cast<std::size_t>(s)];
      if (!span.valid()) continue;
      std::ostringstream event;
      char ts[64], dur[64];
      std::snprintf(ts, sizeof(ts), "%.3f", (span.begin_seconds - t0) * 1e6);
      std::snprintf(dur, sizeof(dur), "%.3f", span.duration_seconds() * 1e6);
      event << "{\"name\":\"" << stage_name(static_cast<Stage>(s)) << "\",\"cat\":\""
            << (stream_track ? "stream" : "serve") << "\",\"ph\":\"X\",\"ts\":" << ts
            << ",\"dur\":" << dur << ",\"pid\":" << trace.tenant
            << ",\"tid\":" << trace.request_id << ",\"args\":{\""
            << (stream_track ? "epoch" : "vertex")
            << "\":" << (stream_track ? static_cast<std::int64_t>(trace.request_id)
                                      : trace.vertex)
            << "}}";
      emit(event.str());
    }
  }
  out << "\n]}\n";
  return out.str();
}

namespace {

/// Splits `body` ( k="v",k2="v2" ) into labels, unescaping values. Only the
/// escapes the exposition format defines (\\, \", \n) are accepted — an
/// unknown or dangling escape is a malformed line, not content.
Labels parse_labels(const std::string& body) {
  Labels labels;
  std::size_t i = 0;
  while (i < body.size()) {
    const std::size_t eq = body.find('=', i);
    if (eq == std::string::npos || eq + 1 >= body.size() || body[eq + 1] != '"')
      throw std::runtime_error("parse_prometheus: malformed labels: " + body);
    const std::string key = body.substr(i, eq - i);
    if (key.empty()) throw std::runtime_error("parse_prometheus: empty label name: " + body);
    std::string value;
    std::size_t j = eq + 2;
    while (j < body.size() && body[j] != '"') {
      if (body[j] == '\\') {
        if (j + 1 >= body.size())
          throw std::runtime_error("parse_prometheus: dangling label escape: " + body);
        ++j;
        const char c = body[j];
        if (c == 'n')
          value.push_back('\n');
        else if (c == '\\' || c == '"')
          value.push_back(c);
        else
          throw std::runtime_error(std::string("parse_prometheus: bad label escape \\") + c +
                                   ": " + body);
      } else {
        value.push_back(body[j]);
      }
      ++j;
    }
    if (j >= body.size()) throw std::runtime_error("parse_prometheus: unterminated label value");
    labels.emplace_back(key, value);
    i = j + 1;
    if (i < body.size() && body[i] == ',') ++i;
  }
  return labels;
}

/// Parses the sample value after `value_at`, rejecting non-numeric content
/// and trailing junk ("12abc") instead of truncating like std::stod would.
double parse_value(const std::string& line, std::size_t value_at) {
  std::size_t i = value_at;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i >= line.size()) throw std::runtime_error("parse_prometheus: missing value: " + line);
  const std::string token = line.substr(i);
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  std::size_t parsed = static_cast<std::size_t>(end - token.c_str());
  if (parsed == 0)
    throw std::runtime_error("parse_prometheus: non-numeric value '" + token + "': " + line);
  while (parsed < token.size() && (token[parsed] == ' ' || token[parsed] == '\t')) ++parsed;
  if (parsed != token.size())
    throw std::runtime_error("parse_prometheus: trailing junk after value '" + token +
                             "': " + line);
  return value;
}

/// `# TYPE <name> <type>` and `# HELP <name> ...` must be well-formed; any
/// other comment is skipped. A truncated TYPE/HELP line is a broken scrape
/// (the renderer always emits complete ones), so it throws.
void validate_comment(const std::string& line) {
  std::istringstream tokens(line);
  std::string hash, kind, name;
  tokens >> hash >> kind;
  if (kind != "TYPE" && kind != "HELP") return;  // plain comment
  if (!(tokens >> name) || name.empty())
    throw std::runtime_error("parse_prometheus: truncated # " + kind + " line: " + line);
  if (kind == "TYPE") {
    std::string type;
    if (!(tokens >> type) || (type != "counter" && type != "gauge" && type != "histogram" &&
                              type != "summary" && type != "untyped"))
      throw std::runtime_error("parse_prometheus: bad # TYPE line: " + line);
  }
}

}  // namespace

MetricsSnapshot parse_prometheus(const std::string& text) {
  // Accumulate histogram series first (buckets arrive cumulatively and
  // possibly sparsely), then materialize into the snapshot.
  struct HistAcc {
    std::string name;
    Labels labels;
    std::vector<std::pair<double, std::uint64_t>> finite;  // (le, cumulative)
    std::uint64_t count = 0;
    double sum = 0;
  };
  std::vector<HistAcc> hists;
  const auto hist_for = [&](const std::string& name, const Labels& labels) -> HistAcc& {
    for (HistAcc& h : hists)
      if (h.name == name && h.labels == labels) return h;
    HistAcc h;
    h.name = name;
    h.labels = labels;
    hists.push_back(std::move(h));
    return hists.back();
  };

  MetricsSnapshot snapshot;
  std::istringstream in(text);
  std::string line;
  const auto ends_with = [](const std::string& s, const std::string& suffix) {
    return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(),
                                                  suffix) == 0;
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      validate_comment(line);
      continue;
    }
    std::string name;
    Labels labels;
    std::size_t value_at;
    const std::size_t brace = line.find('{');
    if (brace != std::string::npos) {
      name = line.substr(0, brace);
      const std::size_t close = line.find('}', brace);
      if (close == std::string::npos)
        throw std::runtime_error("parse_prometheus: unterminated labels: " + line);
      labels = parse_labels(line.substr(brace + 1, close - brace - 1));
      value_at = close + 1;
    } else {
      const std::size_t space = line.find(' ');
      if (space == std::string::npos)
        throw std::runtime_error("parse_prometheus: no value: " + line);
      name = line.substr(0, space);
      value_at = space;
    }
    const double value = parse_value(line, value_at);

    if (ends_with(name, "_bucket")) {
      const std::string base = name.substr(0, name.size() - 7);
      Labels rest;
      std::string le;
      for (const auto& [k, v] : labels) {
        if (k == "le")
          le = v;
        else
          rest.emplace_back(k, v);
      }
      if (le.empty()) throw std::runtime_error("parse_prometheus: bucket without le: " + line);
      HistAcc& h = hist_for(base, rest);
      if (le != "+Inf") h.finite.emplace_back(std::stod(le), static_cast<std::uint64_t>(value));
      continue;  // +Inf cumulative == _count; taken from there
    }
    if (ends_with(name, "_sum")) {
      hist_for(name.substr(0, name.size() - 4), labels).sum = value;
      continue;
    }
    if (ends_with(name, "_count")) {
      hist_for(name.substr(0, name.size() - 6), labels).count =
          static_cast<std::uint64_t>(value);
      continue;
    }
    snapshot.add_counter(name, labels, value);
  }

  for (HistAcc& h : hists) {
    std::sort(h.finite.begin(), h.finite.end());
    HistogramData data;
    std::uint64_t prev = 0;
    for (const auto& [le, cumulative] : h.finite) {
      const int k = static_cast<int>(std::lround(std::log2(le * 1e6)));
      if (k < 0 || k >= kNumBuckets)
        throw std::runtime_error("parse_prometheus: le off the bucket grid: " + h.name);
      data.buckets[static_cast<std::size_t>(k)] = cumulative - prev;
      prev = cumulative;
    }
    data.count = h.count;
    data.sum_seconds = h.sum;
    if (h.count > prev)  // overflow tail beyond the last finite bucket
      data.buckets[kNumBuckets - 1] += h.count - prev;
    snapshot.add_histogram(h.name, h.labels, data);
  }
  return snapshot;
}

namespace {

void append_health_event(std::ostringstream& out, const HealthEvent& event) {
  out << "{\"rule\":\"" << health_rule_name(event.rule) << "\",\"severity\":\""
      << severity_name(event.severity) << "\",\"firing\":" << (event.firing ? "true" : "false")
      << ",\"subject\":\"" << json_escape(event.subject) << "\",\"tenant\":" << event.tenant
      << ",\"t\":" << fmt_number(event.t) << ",\"value\":" << fmt_number(event.value)
      << ",\"threshold\":" << fmt_number(event.threshold) << ",\"detail\":\""
      << json_escape(event.detail) << "\"}";
}

}  // namespace

std::string render_health_json(const HealthMonitor& monitor) {
  std::ostringstream out;
  out << "{\"ticks\":" << monitor.ticks() << ",\"series\":" << monitor.num_series()
      << ",\"series_allocations\":" << monitor.series_allocations() << ",\"active\":[";
  bool first = true;
  for (const HealthEvent& event : monitor.active()) {
    if (!first) out << ",";
    first = false;
    out << "\n  ";
    append_health_event(out, event);
  }
  out << "\n],\"history\":[";
  first = true;
  for (const HealthEvent& event : monitor.history()) {
    if (!first) out << ",";
    first = false;
    out << "\n  ";
    append_health_event(out, event);
  }
  out << "\n]}\n";
  return out.str();
}

}  // namespace distgnn::obs
