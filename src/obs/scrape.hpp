// ScrapeSource: the one-call observability walk over the serving tower.
//
// Every ServingBackend (and the ModelRegistry / Router front doors) exposes
// its telemetry through this interface: scrape() folds the component's own
// metrics into the caller's snapshot and recurses into children, so a single
// scrape of the tower root yields every stage histogram and counter of every
// tier, merged by (name, labels) — ready for render_prometheus /
// render_json. collect_traces() is the same walk for completed stage traces
// (leaf servers own the TraceSinks).
//
// Metric naming convention: distgnn_<layer>_<name>{tenant="..."} where
// <layer> identifies the tier that *emitted* the sample (server, sharded,
// router, group, registry) — siblings' series merge, layers' don't.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace distgnn::obs {

class ScrapeSource {
 public:
  virtual ~ScrapeSource() = default;

  /// Folds this component's metrics (and its children's) into `out`. Safe
  /// under live traffic — implementations read sharded metrics with acquire
  /// loads or snapshot their own atomics.
  virtual void scrape(MetricsSnapshot& out) const = 0;

  /// Appends completed sampled traces from this component's sinks (and its
  /// children's). Default: none.
  virtual void collect_traces(std::vector<Trace>& out) const { (void)out; }

  /// Convenience: scrape into a fresh snapshot. (Named distinctly so
  /// overriders of scrape(MetricsSnapshot&) don't hide it.)
  MetricsSnapshot scrape_snapshot() const {
    MetricsSnapshot snapshot;
    scrape(snapshot);
    return snapshot;
  }
};

/// The per-leaf instrumentation bundle: tenant-keyed submitted/completed/
/// shed counters, a per-tenant request-latency histogram, and one per-tenant
/// histogram per serving stage — all named distgnn_<layer>_* so two layers'
/// series never collide while two replicas' series merge on scrape.
class StageMetrics {
 public:
  StageMetrics(MetricsRegistry& registry, const std::string& layer)
      : submitted(registry, "distgnn_" + layer + "_submitted_total"),
        completed(registry, "distgnn_" + layer + "_completed_total"),
        shed(registry, "distgnn_" + layer + "_shed_total"),
        request_seconds(registry, "distgnn_" + layer + "_request_seconds", {}) {
    for (int s = 0; s < kNumStages; ++s)
      stages_[static_cast<std::size_t>(s)] = std::make_unique<HistogramFamily>(
          registry, "distgnn_" + layer + "_stage_seconds",
          Labels{{"stage", stage_name(static_cast<Stage>(s))}});
  }

  HistogramFamily& stage(Stage s) { return *stages_[static_cast<std::size_t>(s)]; }
  const HistogramFamily& stage(Stage s) const { return *stages_[static_cast<std::size_t>(s)]; }

  void observe_stage(Stage s, int tenant, double seconds) {
    stage(s).with(tenant).observe(seconds);
  }

  CounterFamily submitted, completed, shed;
  HistogramFamily request_seconds;

 private:
  std::array<std::unique_ptr<HistogramFamily>, kNumStages> stages_;
};

}  // namespace distgnn::obs
