// Health & SLO engine: the sensor half of the elastic-autoscaling loop.
//
// A HealthMonitor owns one TimeSeriesStore per registered ScrapeSource and a
// background thread that ticks every scrape period: scrape each source,
// ingest the snapshot into its rings, then evaluate rules over the windows:
//
//   burn-rate    per-tenant SLO burn à la SRE multiwindow alerting: the
//                fraction of requests over the tenant's deadline, divided by
//                the error budget (1 - slo_target), over a fast AND a slow
//                window — both must exceed the threshold, so a blip can't
//                fire and a real regression can't hide.
//   p99 drift    windowed p99 vs the trailing-baseline p99 (factor bound).
//   shed anomaly windowed shed fraction vs max(absolute floor, factor ×
//                trailing-baseline shed fraction).
//   saturation   a registered queue-depth probe at >= fraction of capacity.
//   epoch lag    sealed-epoch head (DeltaLog) minus served epoch above a
//                bound for longer than a grace period.
//   stall        completed counters stop advancing while work is in flight
//                (submitted - completed - shed > 0) past a timeout.
//   barrier      a publish barrier reported closed continuously past a bound.
//
// Rule transitions emit structured HealthEvents (firing=true on cross,
// firing=false on resolve) into a bounded history, to registered callbacks
// (the future autoscaler's hook), and into the monitor's own scrape() as
// distgnn_health_* series. Time comes from an injected HealthClock, so tests
// drive every rule deterministically through tick() + ManualClock — no
// sleeps, no background thread.
//
// The per-tick sample path does not allocate once series exist (asserted via
// TimeSeriesStore::allocations()); scraping a source into the reusable
// snapshot buffer is the one place strings are built, and event emission —
// rare by construction — is the one place the monitor itself allocates.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/scrape.hpp"
#include "obs/timeseries.hpp"
#include "util/sync.hpp"

namespace distgnn::obs {

/// Time source for the monitor. Virtualized so rule tests inject a
/// ManualClock and drive tick() by hand.
class HealthClock {
 public:
  virtual ~HealthClock() = default;
  virtual double now_seconds() const = 0;
};

/// std::chrono::steady_clock seconds — the production clock.
class SteadyHealthClock : public HealthClock {
 public:
  double now_seconds() const override;
};

/// Hand-advanced clock for deterministic tests.
class ManualClock : public HealthClock {
 public:
  explicit ManualClock(double t = 0) : t_(t) {}
  double now_seconds() const override { return t_; }
  void advance(double dt) { t_ += dt; }
  void set(double t) { t_ = t; }

 private:
  double t_;
};

enum class HealthRule : std::uint8_t {
  kBurnRate = 0,
  kP99Drift,
  kShedAnomaly,
  kQueueSaturation,
  kEpochLag,
  kStall,
  kBarrierStuck,
};
inline constexpr int kNumHealthRules = 7;

/// "burn_rate", "p99_drift", ... — the label value and JSON field.
const char* health_rule_name(HealthRule rule);

enum class Severity : std::uint8_t { kInfo = 0, kWarn, kCritical };
const char* severity_name(Severity severity);

/// One alert transition. firing=true when the rule condition became true,
/// firing=false when it resolved. `subject` is the source or probe name the
/// rule evaluated; tenant >= 0 only for tenant-scoped rules (burn rate).
struct HealthEvent {
  HealthRule rule = HealthRule::kBurnRate;
  Severity severity = Severity::kWarn;
  bool firing = true;
  std::string subject;
  int tenant = -1;
  double t = 0;
  double value = 0;      // the observed value at the transition
  double threshold = 0;  // the bound it crossed
  std::string detail;    // human-readable "value vs threshold" summary
};

struct HealthConfig {
  double scrape_period_seconds = 0.05;
  std::size_t ring_capacity = 256;
  std::size_t histogram_ring_capacity = 128;

  // Burn rate (per tenant with a registered SLO).
  double burn_fast_window_seconds = 1.0;
  double burn_slow_window_seconds = 6.0;
  double burn_threshold = 2.0;  // budget-consumption multiple
  std::uint64_t burn_min_requests = 16;

  // p99 drift.
  double drift_window_seconds = 1.0;
  double drift_baseline_seconds = 8.0;
  double drift_factor = 3.0;
  std::uint64_t drift_min_requests = 64;

  // Shed anomaly.
  double shed_window_seconds = 1.0;
  double shed_baseline_seconds = 8.0;
  double shed_fraction_floor = 0.05;
  double shed_factor = 3.0;
  std::uint64_t shed_min_requests = 16;

  // Queue saturation.
  double queue_saturation_fraction = 0.9;

  // Graph-epoch freshness.
  std::uint64_t max_epoch_lag = 2;
  double epoch_lag_grace_seconds = 0.5;

  // Stall watchdog.
  double stall_timeout_seconds = 1.0;
  double barrier_timeout_seconds = 0.5;

  std::size_t history_capacity = 256;
};

/// Per-tenant objective the burn-rate rule evaluates: requests slower than
/// `deadline_seconds` consume the (1 - target) error budget.
struct HealthSlo {
  int tenant = 0;
  double deadline_seconds = 0;
  double target = 0.999;
};

class HealthMonitor : public ScrapeSource {
 public:
  explicit HealthMonitor(HealthConfig config = {},
                         std::shared_ptr<HealthClock> clock = nullptr);
  ~HealthMonitor() override;

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Registers a scrape target. The source must outlive the monitor (or the
  /// caller must stop() before tearing it down). Not safe to call while the
  /// background thread runs.
  void add_source(std::string name, const ScrapeSource& source);

  /// Registers/overwrites the SLO for a tenant. deadline <= 0 disables.
  void set_slo(int tenant, double deadline_seconds, double target = 0.999);

  /// Queue-depth probe for the saturation rule (and for exposition as
  /// distgnn_health_queue_depth{queue=name}).
  void add_queue_probe(std::string name, std::function<std::size_t()> depth,
                       std::size_t capacity);
  /// Publish-barrier probe: `closed` returns true while the barrier is shut.
  void add_barrier_probe(std::string name, std::function<bool()> closed);
  /// Freshness probe: served graph epoch vs sealed delta-log head.
  void add_epoch_probe(std::string name, std::function<std::uint64_t()> served,
                       std::function<std::uint64_t()> sealed);

  /// Registers an alert-transition callback. Invoked outside the monitor
  /// lock (a callback may query the monitor), from whichever thread ticked.
  void on_event(std::function<void(const HealthEvent&)> callback);

  /// Starts/stops the background scrape thread (idempotent). Tests skip
  /// start() entirely and call tick() by hand.
  void start();
  void stop();

  /// One scrape + evaluate cycle at clock->now_seconds().
  void tick();

  std::uint64_t ticks() const;
  /// Currently-firing alerts (reconstructed from rule state, firing=true).
  std::vector<HealthEvent> active() const;
  /// The last history_capacity transitions, oldest first.
  std::vector<HealthEvent> history() const;
  /// Total series creations across all stores — flat once warmed up.
  std::uint64_t series_allocations() const;
  std::size_t num_series() const;
  /// One-line status for demo output: tick count, series count, firing
  /// alerts by rule/subject/tenant.
  std::string summary_line() const;

  /// Read access to a source's store (rule tests assert window math).
  const TimeSeriesStore* store(std::string_view source_name) const;

  /// ScrapeSource: distgnn_health_ticks_total, distgnn_health_active{rule=},
  /// distgnn_health_events_total{rule=}, distgnn_health_series, queue-depth
  /// gauges.
  void scrape(MetricsSnapshot& out) const override;

 private:
  struct SourceState {
    std::string name;
    const ScrapeSource* source = nullptr;
    TimeSeriesStore store;
    // Stall watchdog state.
    double last_completed = -1;
    double last_advance_t = 0;
    bool primed = false;
  };
  struct QueueProbe {
    std::string name;
    std::function<std::size_t()> depth;
    std::size_t capacity = 0;
    Labels labels;  // prebuilt {queue=name} so ticks don't allocate
    double last_depth = 0;
  };
  struct BarrierProbe {
    std::string name;
    std::function<bool()> closed;
    double closed_since = -1;  // < 0 = open
  };
  struct EpochProbe {
    std::string name;
    std::function<std::uint64_t()> served;
    std::function<std::uint64_t()> sealed;
    Labels labels;
    double lag_since = -1;  // < 0 = within bound
  };
  struct AlertState {
    HealthRule rule;
    std::string subject;
    int tenant = -1;
    bool active = false;
    HealthEvent last;  // the firing event, kept for active()
  };

  void evaluate_locked(double now, std::vector<HealthEvent>& emitted) REQUIRES(mutex_);
  void update_alert_locked(HealthRule rule, const std::string& subject, int tenant,
                           bool condition, Severity severity, double value, double threshold,
                           double now, std::vector<HealthEvent>& emitted) REQUIRES(mutex_);
  void run_loop();

  HealthConfig config_;
  std::shared_ptr<HealthClock> clock_;

  mutable util::Mutex mutex_;
  std::vector<std::unique_ptr<SourceState>> sources_ GUARDED_BY(mutex_);
  std::vector<HealthSlo> slos_ GUARDED_BY(mutex_);
  std::vector<std::string> slo_labels_ GUARDED_BY(mutex_);  // prebuilt tenant label values
  TimeSeriesStore probe_store_ GUARDED_BY(mutex_);
  std::vector<QueueProbe> queue_probes_ GUARDED_BY(mutex_);
  std::vector<BarrierProbe> barrier_probes_ GUARDED_BY(mutex_);
  std::vector<EpochProbe> epoch_probes_ GUARDED_BY(mutex_);
  std::vector<AlertState> alerts_ GUARDED_BY(mutex_);
  std::deque<HealthEvent> history_ GUARDED_BY(mutex_);
  std::vector<std::function<void(const HealthEvent&)>> callbacks_ GUARDED_BY(mutex_);
  MetricsSnapshot scratch_ GUARDED_BY(mutex_);  // reused scrape buffer
  std::uint64_t ticks_ GUARDED_BY(mutex_) = 0;
  std::array<std::uint64_t, kNumHealthRules> events_total_ GUARDED_BY(mutex_){};

  std::thread thread_;
  util::CondVar cv_;
  util::Mutex run_mutex_;
  bool running_ GUARDED_BY(run_mutex_) = false;
};

}  // namespace distgnn::obs
