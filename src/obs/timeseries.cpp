#include "obs/timeseries.hpp"

#include <algorithm>
#include <limits>

namespace distgnn::obs {

namespace {

constexpr std::size_t kNoHint = std::numeric_limits<std::size_t>::max();

bool ends_with(std::string_view name, std::string_view suffix) {
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool has_label(const Labels& labels, std::string_view key, std::string_view value) {
  for (const auto& [k, v] : labels)
    if (k == key && v == value) return true;
  return false;
}

}  // namespace

// ---------------------------------------------------------------- ValueSeries

ValueSeries::ValueSeries(std::size_t capacity) : ring_(std::max<std::size_t>(capacity, 2)) {}

void ValueSeries::push(double t, double value) {
  ring_[head_] = TsSample{t, value};
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
}

const TsSample& ValueSeries::at(std::size_t logical) const {
  // head_ points one past the newest; oldest lives size_ slots behind head_.
  return ring_[(head_ + ring_.size() - size_ + logical) % ring_.size()];
}

const TsSample& ValueSeries::newest() const { return at(size_ - 1); }
const TsSample& ValueSeries::oldest() const { return at(0); }

const TsSample* ValueSeries::at_or_before(double cutoff) const {
  if (size_ == 0) return nullptr;
  const TsSample* best = nullptr;
  for (std::size_t i = 0; i < size_; ++i) {
    const TsSample& s = at(i);
    if (s.t <= cutoff) best = &s;  // samples are time-ordered; keep the newest
  }
  return best;
}

double ValueSeries::delta(double now, double window) const {
  if (size_ < 2) return 0;
  const TsSample* base = at_or_before(now - window);
  if (base == nullptr) base = &oldest();
  if (base == &newest()) return 0;
  return std::max(0.0, newest().value - base->value);
}

double ValueSeries::rate(double now, double window) const {
  if (size_ < 2) return 0;
  const TsSample* base = at_or_before(now - window);
  if (base == nullptr) base = &oldest();
  if (base == &newest()) return 0;
  const double span = newest().t - base->t;
  if (span <= 0) return 0;
  return std::max(0.0, newest().value - base->value) / span;
}

// ------------------------------------------------------------ HistogramSeries

HistogramSeries::HistogramSeries(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 2)) {}

void HistogramSeries::push(double t, const HistogramData& cumulative) {
  ring_[head_].t = t;
  ring_[head_].h = cumulative;
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
}

const HistogramSeries::Snap& HistogramSeries::at(std::size_t logical) const {
  return ring_[(head_ + ring_.size() - size_ + logical) % ring_.size()];
}

const HistogramData* HistogramSeries::newest() const {
  return size_ == 0 ? nullptr : &at(size_ - 1).h;
}

HistogramData HistogramSeries::window_delta(double now, double window) const {
  HistogramData out;
  if (size_ < 2) return out;
  const Snap* base = nullptr;
  const double cutoff = now - window;
  for (std::size_t i = 0; i < size_; ++i) {
    const Snap& s = at(i);
    if (s.t <= cutoff) base = &s;
  }
  if (base == nullptr) base = &at(0);
  const Snap& top = at(size_ - 1);
  if (base == &top) return out;
  for (int k = 0; k < kNumBuckets; ++k) {
    const auto i = static_cast<std::size_t>(k);
    out.buckets[i] = top.h.buckets[i] >= base->h.buckets[i]
                         ? top.h.buckets[i] - base->h.buckets[i]
                         : 0;  // saturate across counter resets
    out.count += out.buckets[i];
  }
  out.sum_seconds = std::max(0.0, top.h.sum_seconds - base->h.sum_seconds);
  return out;
}

double HistogramSeries::window_quantile(double now, double window, double q) const {
  return window_delta(now, window).quantile(q);
}

// ------------------------------------------------------------ TimeSeriesStore

TimeSeriesStore::TimeSeriesStore() = default;
TimeSeriesStore::TimeSeriesStore(Config cfg) : cfg_(std::move(cfg)) {}

TimeSeriesStore::Entry* TimeSeriesStore::match(const std::string& name, const Labels& labels,
                                               std::size_t hint_slot) {
  if (hint_slot < hint_.size() && hint_[hint_slot] != kNoHint) {
    Entry& e = entries_[hint_[hint_slot]];
    if (e.name == name && e.labels == labels) return &e;
  }
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name && entries_[i].labels == labels) {
      if (hint_slot < hint_.size()) hint_[hint_slot] = i;
      return &entries_[i];
    }
  }
  return nullptr;
}

TimeSeriesStore::Entry& TimeSeriesStore::create(const std::string& name, const Labels& labels,
                                                bool is_histogram) {
  Entry e;
  e.name = name;
  e.labels = labels;
  if (is_histogram)
    e.hist = std::make_unique<HistogramSeries>(cfg_.histogram_capacity);
  else
    e.values = std::make_unique<ValueSeries>(cfg_.value_capacity);
  entries_.push_back(std::move(e));
  ++allocations_;
  return entries_.back();
}

void TimeSeriesStore::ingest(double t, const MetricsSnapshot& snapshot) {
  if (hint_.size() < snapshot.points.size()) hint_.resize(snapshot.points.size(), kNoHint);
  for (std::size_t i = 0; i < snapshot.points.size(); ++i) {
    const MetricPoint& p = snapshot.points[i];
    if (p.is_histogram && !cfg_.histogram_filter.empty() &&
        !ends_with(p.name, cfg_.histogram_filter)) {
      if (i < hint_.size()) hint_[i] = kNoHint;
      continue;
    }
    Entry* e = match(p.name, p.labels, i);
    if (e == nullptr) {
      e = &create(p.name, p.labels, p.is_histogram);
      if (i < hint_.size()) hint_[i] = entries_.size() - 1;
    }
    if (p.is_histogram) {
      if (e->hist) e->hist->push(t, p.histogram);
    } else {
      if (e->values) e->values->push(t, p.value);
    }
  }
}

void TimeSeriesStore::ingest_gauge(double t, const std::string& name, const Labels& labels,
                                   double value) {
  Entry* e = match(name, labels, kNoHint);
  if (e == nullptr) e = &create(name, labels, /*is_histogram=*/false);
  if (e->values) e->values->push(t, value);
}

const ValueSeries* TimeSeriesStore::find_values(std::string_view name,
                                                const Labels& labels) const {
  for (const Entry& e : entries_)
    if (e.name == name && e.labels == labels && e.values) return e.values.get();
  return nullptr;
}

const HistogramSeries* TimeSeriesStore::find_histograms(std::string_view name,
                                                        const Labels& labels) const {
  for (const Entry& e : entries_)
    if (e.name == name && e.labels == labels && e.hist) return e.hist.get();
  return nullptr;
}

bool TimeSeriesStore::entry_matches(const Entry& e, std::string_view suffix,
                                    std::string_view label_key,
                                    std::string_view label_value) const {
  if (!ends_with(e.name, suffix)) return false;
  if (!label_key.empty() && !has_label(e.labels, label_key, label_value)) return false;
  return true;
}

double TimeSeriesStore::fold_counter_delta(std::string_view suffix, std::string_view label_key,
                                           std::string_view label_value, double now,
                                           double window) const {
  double total = 0;
  for (const Entry& e : entries_)
    if (e.values && entry_matches(e, suffix, label_key, label_value))
      total += e.values->delta(now, window);
  return total;
}

double TimeSeriesStore::fold_counter_rate(std::string_view suffix, std::string_view label_key,
                                          std::string_view label_value, double now,
                                          double window) const {
  double total = 0;
  for (const Entry& e : entries_)
    if (e.values && entry_matches(e, suffix, label_key, label_value))
      total += e.values->rate(now, window);
  return total;
}

double TimeSeriesStore::fold_counter_latest(std::string_view suffix, std::string_view label_key,
                                            std::string_view label_value) const {
  double total = 0;
  for (const Entry& e : entries_)
    if (e.values && !e.values->empty() && entry_matches(e, suffix, label_key, label_value))
      total += e.values->newest().value;
  return total;
}

HistogramData TimeSeriesStore::fold_histogram_delta(std::string_view suffix,
                                                    std::string_view label_key,
                                                    std::string_view label_value, double now,
                                                    double window) const {
  HistogramData total;
  for (const Entry& e : entries_)
    if (e.hist && entry_matches(e, suffix, label_key, label_value))
      total += e.hist->window_delta(now, window);
  return total;
}

}  // namespace distgnn::obs
