#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

namespace distgnn::obs {

double bucket_upper_seconds(int k) { return 1e-6 * std::ldexp(1.0, k); }

int latency_bucket(double seconds) {
  if (!(seconds >= 1e-6)) return 0;  // also catches NaN
  int k = static_cast<int>(std::floor(std::log2(seconds / 1e-6))) + 1;
  // Guard log2 rounding in both directions so exact powers of two land in
  // the bucket whose *exclusive* upper bound they equal the lower edge of.
  while (k < kNumBuckets - 1 && seconds >= bucket_upper_seconds(k)) ++k;
  while (k > 1 && seconds < bucket_upper_seconds(k - 1)) --k;
  return std::min(k, kNumBuckets - 1);
}

namespace {

// Geometric midpoint of [upper/2, upper): upper / sqrt(2). Bucket 0 is
// "below 1µs" — report its upper edge.
double bucket_estimate(int k) {
  const double upper = bucket_upper_seconds(k);
  return k == 0 ? upper : upper / std::sqrt(2.0);
}

}  // namespace

double HistogramData::quantile(double q) const {
  if (count == 0) return 0.0;
  const double target = std::clamp(q, 0.0, 1.0) * static_cast<double>(count);
  std::uint64_t seen = 0;
  int last_nonzero = -1;
  for (int k = 0; k < kNumBuckets; ++k) {
    if (buckets[static_cast<std::size_t>(k)] == 0) continue;
    last_nonzero = k;
    seen += buckets[static_cast<std::size_t>(k)];
    if (static_cast<double>(seen) >= target) return bucket_estimate(k);
  }
  // count > 0 with every bucket zero (hand-built or parsed data): 0 is the
  // defined answer, not the ~6-day top bucket.
  if (last_nonzero < 0) return 0.0;
  // count exceeds the bucket sum (inconsistent input): clamp the estimate to
  // the last populated bucket.
  return bucket_estimate(last_nonzero);
}

HistogramData& HistogramData::operator+=(const HistogramData& other) {
  for (int k = 0; k < kNumBuckets; ++k)
    buckets[static_cast<std::size_t>(k)] += other.buckets[static_cast<std::size_t>(k)];
  count += other.count;
  sum_seconds += other.sum_seconds;
  return *this;
}

void MetricsSnapshot::add_counter(const std::string& name, const Labels& labels, double value) {
  for (MetricPoint& p : points) {
    if (!p.same_series(name, labels)) continue;
    p.value += value;
    return;
  }
  MetricPoint p;
  p.name = name;
  p.labels = labels;
  p.value = value;
  points.push_back(std::move(p));
}

void MetricsSnapshot::add_histogram(const std::string& name, const Labels& labels,
                                    const HistogramData& data) {
  for (MetricPoint& p : points) {
    if (!p.same_series(name, labels)) continue;
    p.histogram += data;
    return;
  }
  MetricPoint p;
  p.name = name;
  p.labels = labels;
  p.is_histogram = true;
  p.histogram = data;
  points.push_back(std::move(p));
}

double MetricsSnapshot::quantile(const std::string& name, double q, const Labels& labels) const {
  const MetricPoint* p = find(name, labels);
  if (p != nullptr && p->is_histogram) return p->histogram.quantile(q);
  if (labels.empty()) return histogram_total(name).quantile(q);
  return 0.0;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const MetricPoint& p : other.points) {
    if (p.is_histogram)
      add_histogram(p.name, p.labels, p.histogram);
    else
      add_counter(p.name, p.labels, p.value);
  }
}

const MetricPoint* MetricsSnapshot::find(const std::string& name, const Labels& labels) const {
  for (const MetricPoint& p : points)
    if (p.same_series(name, labels)) return &p;
  return nullptr;
}

double MetricsSnapshot::counter_total(const std::string& name) const {
  double total = 0;
  for (const MetricPoint& p : points)
    if (!p.is_histogram && p.name == name) total += p.value;
  return total;
}

HistogramData MetricsSnapshot::histogram_total(const std::string& name) const {
  HistogramData total;
  for (const MetricPoint& p : points)
    if (p.is_histogram && p.name == name) total += p.histogram;
  return total;
}

namespace detail {

int thread_index() {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace detail

Counter::Counter(int num_shards)
    : num_shards_(std::max(1, num_shards)),
      shards_(std::make_unique<Shard[]>(static_cast<std::size_t>(num_shards_))) {}

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (int s = 0; s < num_shards_; ++s)
    total += shards_[static_cast<std::size_t>(s)].v.load(std::memory_order_acquire);
  return total;
}

Histogram::Histogram(int num_shards)
    : num_shards_(std::max(1, num_shards)),
      shards_(std::make_unique<Shard[]>(static_cast<std::size_t>(num_shards_))) {}

HistogramData Histogram::snapshot() const {
  HistogramData data;
  for (int s = 0; s < num_shards_; ++s) {
    const Shard& shard = shards_[static_cast<std::size_t>(s)];
    for (int k = 0; k < kNumBuckets; ++k)
      data.buckets[static_cast<std::size_t>(k)] +=
          shard.buckets[static_cast<std::size_t>(k)].load(std::memory_order_acquire);
    data.count += shard.count.load(std::memory_order_acquire);
    data.sum_seconds +=
        static_cast<double>(shard.sum_ns.load(std::memory_order_acquire)) * 1e-9;
  }
  return data;
}

namespace {
int auto_shards(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 2u, 16u));
}
}  // namespace

MetricsRegistry::MetricsRegistry(int num_shards) : num_shards_(auto_shards(num_shards)) {}

Counter& MetricsRegistry::counter(const std::string& name, const Labels& labels) {
  util::MutexLock lock(mutex_);
  for (Entry& e : entries_)
    if (e.counter && e.name == name && e.labels == labels) return *e.counter;
  Entry e;
  e.name = name;
  e.labels = labels;
  e.counter = std::make_unique<Counter>(num_shards_);
  entries_.push_back(std::move(e));
  return *entries_.back().counter;
}

Histogram& MetricsRegistry::histogram(const std::string& name, const Labels& labels) {
  util::MutexLock lock(mutex_);
  for (Entry& e : entries_)
    if (e.histogram && e.name == name && e.labels == labels) return *e.histogram;
  Entry e;
  e.name = name;
  e.labels = labels;
  e.histogram = std::make_unique<Histogram>(num_shards_);
  entries_.push_back(std::move(e));
  return *entries_.back().histogram;
}

void MetricsRegistry::scrape(MetricsSnapshot& out) const {
  util::MutexLock lock(mutex_);
  for (const Entry& e : entries_) {
    if (e.counter)
      out.add_counter(e.name, e.labels, static_cast<double>(e.counter->value()));
    else
      out.add_histogram(e.name, e.labels, e.histogram->snapshot());
  }
}

CounterFamily::CounterFamily(MetricsRegistry& registry, std::string name, std::string label_key)
    : registry_(registry), name_(std::move(name)), label_key_(std::move(label_key)) {}

CounterFamily::~CounterFamily() {
  Node* node = head_.load(std::memory_order_acquire);
  while (node) {
    Node* next = node->next;
    delete node;
    node = next;
  }
}

Counter& CounterFamily::with(int id) {
  for (Node* node = head_.load(std::memory_order_acquire); node; node = node->next)
    if (node->id == id) return *node->counter;
  util::MutexLock lock(grow_mutex_);
  for (Node* node = head_.load(std::memory_order_relaxed); node; node = node->next)
    if (node->id == id) return *node->counter;
  Node* node = new Node{id, &registry_.counter(name_, {{label_key_, std::to_string(id)}}),
                        head_.load(std::memory_order_relaxed)};
  head_.store(node, std::memory_order_release);
  return *node->counter;
}

void CounterFamily::for_each(const std::function<void(int, const Counter&)>& fn) const {
  // The list is push-front, so walk it twice to visit in first-seen order.
  std::vector<const Node*> nodes;
  for (const Node* node = head_.load(std::memory_order_acquire); node; node = node->next)
    nodes.push_back(node);
  for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) fn((*it)->id, *(*it)->counter);
}

HistogramFamily::HistogramFamily(MetricsRegistry& registry, std::string name, Labels base_labels,
                                 std::string label_key)
    : registry_(registry),
      name_(std::move(name)),
      label_key_(std::move(label_key)),
      base_labels_(std::move(base_labels)) {}

HistogramFamily::~HistogramFamily() {
  Node* node = head_.load(std::memory_order_acquire);
  while (node) {
    Node* next = node->next;
    delete node;
    node = next;
  }
}

void HistogramFamily::for_each(const std::function<void(int, const Histogram&)>& fn) const {
  std::vector<const Node*> nodes;
  for (const Node* node = head_.load(std::memory_order_acquire); node; node = node->next)
    nodes.push_back(node);
  for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) fn((*it)->id, *(*it)->histogram);
}

Histogram& HistogramFamily::with(int id) {
  for (Node* node = head_.load(std::memory_order_acquire); node; node = node->next)
    if (node->id == id) return *node->histogram;
  util::MutexLock lock(grow_mutex_);
  for (Node* node = head_.load(std::memory_order_relaxed); node; node = node->next)
    if (node->id == id) return *node->histogram;
  Labels labels = base_labels_;
  labels.emplace_back(label_key_, std::to_string(id));
  Node* node =
      new Node{id, &registry_.histogram(name_, labels), head_.load(std::memory_order_relaxed)};
  head_.store(node, std::memory_order_release);
  return *node->histogram;
}

}  // namespace distgnn::obs
