#include "obs/trace.hpp"

#include <algorithm>

namespace distgnn::obs {

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kAdmit: return "admit";
    case Stage::kQueue: return "queue";
    case Stage::kSample: return "sample";
    case Stage::kHaloWait: return "halo_wait";
    case Stage::kEmbedLookup: return "embed_lookup";
    case Stage::kForward: return "forward";
    case Stage::kReply: return "reply";
    case Stage::kApply: return "apply";
    case Stage::kInvalidate: return "invalidate";
    case Stage::kRepartition: return "repartition";
  }
  return "?";
}

double Trace::coverage() const {
  const double total = total_seconds();
  if (total <= 0) return 0.0;
  double covered = 0;
  for (const Span& span : spans) {
    if (!span.valid()) continue;
    const double b = std::max(span.begin_seconds, begin_seconds);
    const double e = std::min(span.end_seconds, end_seconds);
    if (e > b) covered += e - b;
  }
  return std::min(1.0, covered / total);
}

bool trace_sampled(std::uint64_t request_id, std::int32_t tenant, double rate) {
  if (rate <= 0) return false;
  if (rate >= 1) return true;
  // splitmix64 finalizer over (id, tenant): a uniform u64, compared against
  // the rate as a fixed-point threshold.
  std::uint64_t x = request_id + 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(
                                    static_cast<std::uint32_t>(tenant)) + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<double>(x) < rate * 18446744073709551616.0;  // 2^64
}

TraceContext::TraceContext(std::uint64_t request_id, std::int32_t tenant, std::int64_t vertex,
                           TraceClock::time_point begin) {
  trace_.request_id = request_id;
  trace_.tenant = tenant;
  trace_.vertex = vertex;
  trace_.begin_seconds = seconds(begin);
}

TraceSink::TraceSink(std::size_t ring_capacity, int top_k)
    : slots_(std::max<std::size_t>(1, ring_capacity)), top_k_(std::max(1, top_k)) {
  top_.reserve(static_cast<std::size_t>(top_k_) + 1);
}

void TraceSink::publish(const Trace& trace) {
  const std::uint64_t ticket = next_ticket_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[static_cast<std::size_t>(ticket % slots_.size())];
  std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  // Claim the slot by flipping it odd; a concurrent claimant (only possible
  // after ring wrap-around under extreme pressure) drops this trace rather
  // than blocking — the ring is a sample, not a log.
  if (!(seq & 1) && slot.seq.compare_exchange_strong(seq, seq | 1, std::memory_order_acquire,
                                                     std::memory_order_relaxed)) {
    slot.trace = trace;
    slot.seq.store((ticket + 1) << 1, std::memory_order_release);
    published_.fetch_add(1, std::memory_order_release);
  }

  {
    util::MutexLock lock(top_mutex_);
    const auto pos = std::find_if(top_.begin(), top_.end(), [&](const Trace& t) {
      return t.total_seconds() < trace.total_seconds();
    });
    if (pos != top_.end() || static_cast<int>(top_.size()) < top_k_) {
      top_.insert(pos, trace);
      if (static_cast<int>(top_.size()) > top_k_) top_.pop_back();
    }
  }
}

std::vector<Trace> TraceSink::ring_snapshot() const {
  struct Read {
    std::uint64_t seq;
    Trace trace;
  };
  std::vector<Read> reads;
  reads.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 == 0 || (s1 & 1)) continue;  // never written, or mid-write
    Read read;
    read.seq = s1;
    read.trace = slot.trace;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != s1) continue;  // torn by a wrap
    reads.push_back(read);
  }
  std::sort(reads.begin(), reads.end(),
            [](const Read& a, const Read& b) { return a.seq < b.seq; });
  std::vector<Trace> out;
  out.reserve(reads.size());
  for (Read& read : reads) out.push_back(read.trace);
  return out;
}

std::vector<Trace> TraceSink::slowest() const {
  util::MutexLock lock(top_mutex_);
  return top_;
}

void TraceSink::collect(std::vector<Trace>& out) const {
  std::vector<Trace> ring = ring_snapshot();
  const std::vector<Trace> top = slowest();
  for (const Trace& exemplar : top) {
    const bool resident = std::any_of(ring.begin(), ring.end(), [&](const Trace& t) {
      return t.request_id == exemplar.request_id && t.tenant == exemplar.tenant &&
             t.begin_seconds == exemplar.begin_seconds;
    });
    if (!resident) ring.push_back(exemplar);
  }
  out.insert(out.end(), ring.begin(), ring.end());
}

}  // namespace distgnn::obs
