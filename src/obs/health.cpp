#include "obs/health.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

namespace distgnn::obs {

namespace {

/// Requests in `h` that finished after `deadline`: the histogram's count
/// minus every bucket whose upper bound sits at or below the deadline. The
/// bucket straddling the deadline counts as bad — conservative, and exact
/// whenever the deadline sits on the log2 grid (the tests arrange that).
std::uint64_t count_over_deadline(const HistogramData& h, double deadline) {
  std::uint64_t good = 0;
  for (int k = 0; k < kNumBuckets; ++k) {
    if (bucket_upper_seconds(k) > deadline * (1.0 + 1e-9)) break;
    good += h.buckets[static_cast<std::size_t>(k)];
  }
  return h.count >= good ? h.count - good : 0;
}

/// Budget-consumption multiple: (bad fraction) / (error budget). 0 when the
/// window saw no traffic.
double burn_rate(const HistogramData& h, const HealthSlo& slo) {
  if (h.count == 0) return 0;
  const double bad = static_cast<double>(count_over_deadline(h, slo.deadline_seconds));
  const double budget = std::max(1e-9, 1.0 - slo.target);
  return (bad / static_cast<double>(h.count)) / budget;
}

}  // namespace

double SteadyHealthClock::now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const char* health_rule_name(HealthRule rule) {
  switch (rule) {
    case HealthRule::kBurnRate: return "burn_rate";
    case HealthRule::kP99Drift: return "p99_drift";
    case HealthRule::kShedAnomaly: return "shed_anomaly";
    case HealthRule::kQueueSaturation: return "queue_saturation";
    case HealthRule::kEpochLag: return "epoch_lag";
    case HealthRule::kStall: return "stall";
    case HealthRule::kBarrierStuck: return "barrier_stuck";
  }
  return "unknown";
}

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kCritical: return "critical";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(HealthConfig config, std::shared_ptr<HealthClock> clock)
    : config_(config),
      clock_(clock ? std::move(clock) : std::make_shared<SteadyHealthClock>()),
      probe_store_(TimeSeriesStore::Config{config.ring_capacity, 2, ""}) {}

HealthMonitor::~HealthMonitor() { stop(); }

void HealthMonitor::add_source(std::string name, const ScrapeSource& source) {
  util::MutexLock lock(mutex_);
  auto state = std::make_unique<SourceState>();
  state->name = std::move(name);
  state->source = &source;
  TimeSeriesStore::Config cfg;
  cfg.value_capacity = config_.ring_capacity;
  cfg.histogram_capacity = config_.histogram_ring_capacity;
  state->store = TimeSeriesStore(std::move(cfg));
  sources_.push_back(std::move(state));
}

void HealthMonitor::set_slo(int tenant, double deadline_seconds, double target) {
  util::MutexLock lock(mutex_);
  for (std::size_t i = 0; i < slos_.size(); ++i) {
    if (slos_[i].tenant == tenant) {
      slos_[i].deadline_seconds = deadline_seconds;
      slos_[i].target = target;
      return;
    }
  }
  slos_.push_back(HealthSlo{tenant, deadline_seconds, target});
  slo_labels_.push_back(std::to_string(tenant));
}

void HealthMonitor::add_queue_probe(std::string name, std::function<std::size_t()> depth,
                                    std::size_t capacity) {
  util::MutexLock lock(mutex_);
  QueueProbe probe;
  probe.labels = Labels{{"queue", name}};
  probe.name = std::move(name);
  probe.depth = std::move(depth);
  probe.capacity = capacity;
  queue_probes_.push_back(std::move(probe));
}

void HealthMonitor::add_barrier_probe(std::string name, std::function<bool()> closed) {
  util::MutexLock lock(mutex_);
  BarrierProbe probe;
  probe.name = std::move(name);
  probe.closed = std::move(closed);
  barrier_probes_.push_back(std::move(probe));
}

void HealthMonitor::add_epoch_probe(std::string name, std::function<std::uint64_t()> served,
                                    std::function<std::uint64_t()> sealed) {
  util::MutexLock lock(mutex_);
  EpochProbe probe;
  probe.labels = Labels{{"probe", name}};
  probe.name = std::move(name);
  probe.served = std::move(served);
  probe.sealed = std::move(sealed);
  epoch_probes_.push_back(std::move(probe));
}

void HealthMonitor::on_event(std::function<void(const HealthEvent&)> callback) {
  util::MutexLock lock(mutex_);
  callbacks_.push_back(std::move(callback));
}

void HealthMonitor::tick() {
  std::vector<HealthEvent> emitted;
  std::vector<std::function<void(const HealthEvent&)>> callbacks;
  {
    util::MutexLock lock(mutex_);
    const double now = clock_->now_seconds();
    ++ticks_;
    for (auto& src : sources_) {
      scratch_.points.clear();  // keeps capacity — the buffer is reused
      src->source->scrape(scratch_);
      src->store.ingest(now, scratch_);
    }
    for (QueueProbe& probe : queue_probes_) {
      probe.last_depth = static_cast<double>(probe.depth());
      probe_store_.ingest_gauge(now, "distgnn_health_queue_depth", probe.labels,
                                probe.last_depth);
    }
    evaluate_locked(now, emitted);
    for (const HealthEvent& event : emitted) {
      ++events_total_[static_cast<std::size_t>(event.rule)];
      history_.push_back(event);
      while (history_.size() > config_.history_capacity) history_.pop_front();
    }
    if (!emitted.empty()) callbacks = callbacks_;
  }
  // Callbacks run outside the lock: a callback may query the monitor (or, in
  // the autoscaler's case, trigger work that ends up scraped by it).
  for (const auto& callback : callbacks)
    for (const HealthEvent& event : emitted) callback(event);
}

void HealthMonitor::evaluate_locked(double now, std::vector<HealthEvent>& emitted) {
  for (auto& src_ptr : sources_) {
    SourceState& src = *src_ptr;
    const TimeSeriesStore& store = src.store;

    // Burn rate, per registered SLO tenant: SRE multiwindow — both the fast
    // and the slow window must overspend the budget.
    for (std::size_t i = 0; i < slos_.size(); ++i) {
      const HealthSlo& slo = slos_[i];
      if (slo.deadline_seconds <= 0) continue;
      const HistogramData fast = store.fold_histogram_delta(
          "_request_seconds", "tenant", slo_labels_[i], now, config_.burn_fast_window_seconds);
      const HistogramData slow = store.fold_histogram_delta(
          "_request_seconds", "tenant", slo_labels_[i], now, config_.burn_slow_window_seconds);
      const double fast_burn = burn_rate(fast, slo);
      const double slow_burn = burn_rate(slow, slo);
      const bool condition = fast.count >= config_.burn_min_requests &&
                             fast_burn > config_.burn_threshold &&
                             slow_burn > config_.burn_threshold;
      update_alert_locked(HealthRule::kBurnRate, src.name, slo.tenant, condition,
                          Severity::kCritical, fast_burn, config_.burn_threshold, now,
                          emitted);
    }

    // p99 drift vs the trailing baseline (the baseline window contains the
    // recent one, which only dampens the ratio — a real regression still
    // clears the factor).
    {
      const HistogramData recent = store.fold_histogram_delta("_request_seconds", "", "", now,
                                                              config_.drift_window_seconds);
      const HistogramData baseline = store.fold_histogram_delta(
          "_request_seconds", "", "", now, config_.drift_baseline_seconds);
      const double recent_p99 = recent.quantile(0.99);
      const double baseline_p99 = baseline.quantile(0.99);
      const bool condition = recent.count >= config_.drift_min_requests &&
                             baseline.count > recent.count && baseline_p99 > 0 &&
                             recent_p99 > config_.drift_factor * baseline_p99;
      update_alert_locked(HealthRule::kP99Drift, src.name, -1, condition, Severity::kWarn,
                          baseline_p99 > 0 ? recent_p99 / baseline_p99 : 0,
                          config_.drift_factor, now, emitted);
    }

    // Shed anomaly: windowed shed fraction vs max(floor, factor × baseline).
    {
      const double recent_shed =
          store.fold_counter_delta("_shed_total", "", "", now, config_.shed_window_seconds);
      const double recent_sub = store.fold_counter_delta("_submitted_total", "", "", now,
                                                         config_.shed_window_seconds);
      const double base_shed =
          store.fold_counter_delta("_shed_total", "", "", now, config_.shed_baseline_seconds);
      const double base_sub = store.fold_counter_delta("_submitted_total", "", "", now,
                                                       config_.shed_baseline_seconds);
      const double recent_frac = recent_sub > 0 ? recent_shed / recent_sub : 0;
      const double base_frac = base_sub > 0 ? base_shed / base_sub : 0;
      const double threshold =
          std::max(config_.shed_fraction_floor, config_.shed_factor * base_frac);
      const bool condition =
          recent_sub >= static_cast<double>(config_.shed_min_requests) &&
          recent_frac > threshold;
      update_alert_locked(HealthRule::kShedAnomaly, src.name, -1, condition, Severity::kWarn,
                          recent_frac, threshold, now, emitted);
    }

    // Stall watchdog: completed counters stopped advancing while work is in
    // flight. Every layer's (submitted, completed, shed) triple balances to
    // its own in-flight count, so the fold across layers is >= 0 and hits 0
    // exactly when the tower is drained.
    {
      const double completed = store.fold_counter_latest("_completed_total", "", "");
      const double submitted = store.fold_counter_latest("_submitted_total", "", "");
      const double shed = store.fold_counter_latest("_shed_total", "", "");
      if (!src.primed || completed > src.last_completed + 0.5) {
        src.last_completed = completed;
        src.last_advance_t = now;
        src.primed = true;
      }
      const double inflight = submitted - completed - shed;
      const double stalled_for = now - src.last_advance_t;
      const bool condition =
          inflight > 0.5 && stalled_for >= config_.stall_timeout_seconds;
      update_alert_locked(HealthRule::kStall, src.name, -1, condition, Severity::kCritical,
                          stalled_for, config_.stall_timeout_seconds, now, emitted);
    }
  }

  for (QueueProbe& probe : queue_probes_) {
    const double fraction =
        probe.capacity > 0 ? probe.last_depth / static_cast<double>(probe.capacity) : 0;
    update_alert_locked(HealthRule::kQueueSaturation, probe.name, -1,
                        fraction >= config_.queue_saturation_fraction, Severity::kWarn,
                        fraction, config_.queue_saturation_fraction, now, emitted);
  }

  for (BarrierProbe& probe : barrier_probes_) {
    const bool closed = probe.closed();
    if (closed) {
      if (probe.closed_since < 0) probe.closed_since = now;
    } else {
      probe.closed_since = -1;
    }
    const double closed_for = probe.closed_since >= 0 ? now - probe.closed_since : 0;
    update_alert_locked(HealthRule::kBarrierStuck, probe.name, -1,
                        closed_for >= config_.barrier_timeout_seconds && closed,
                        Severity::kCritical, closed_for, config_.barrier_timeout_seconds, now,
                        emitted);
  }

  for (EpochProbe& probe : epoch_probes_) {
    const std::uint64_t served = probe.served();
    const std::uint64_t sealed = probe.sealed();
    const double lag =
        sealed > served ? static_cast<double>(sealed - served) : 0;
    probe_store_.ingest_gauge(now, "distgnn_health_epoch_lag", probe.labels, lag);
    if (lag > static_cast<double>(config_.max_epoch_lag)) {
      if (probe.lag_since < 0) probe.lag_since = now;
    } else {
      probe.lag_since = -1;
    }
    const bool condition =
        probe.lag_since >= 0 && now - probe.lag_since >= config_.epoch_lag_grace_seconds;
    update_alert_locked(HealthRule::kEpochLag, probe.name, -1, condition, Severity::kWarn, lag,
                        static_cast<double>(config_.max_epoch_lag), now, emitted);
  }
}

void HealthMonitor::update_alert_locked(HealthRule rule, const std::string& subject, int tenant,
                                        bool condition, Severity severity, double value,
                                        double threshold, double now,
                                        std::vector<HealthEvent>& emitted) {
  AlertState* state = nullptr;
  for (AlertState& s : alerts_) {
    if (s.rule == rule && s.tenant == tenant && s.subject == subject) {
      state = &s;
      break;
    }
  }
  if (state == nullptr) {
    AlertState s;
    s.rule = rule;
    s.subject = subject;
    s.tenant = tenant;
    alerts_.push_back(std::move(s));
    state = &alerts_.back();
  }

  if (condition && !state->active) {
    state->active = true;
    HealthEvent event;
    event.rule = rule;
    event.severity = severity;
    event.firing = true;
    event.subject = subject;
    event.tenant = tenant;
    event.t = now;
    event.value = value;
    event.threshold = threshold;
    char buf[160];
    if (tenant >= 0)
      std::snprintf(buf, sizeof(buf), "%s firing on %s tenant %d: %.4g vs threshold %.4g",
                    health_rule_name(rule), subject.c_str(), tenant, value, threshold);
    else
      std::snprintf(buf, sizeof(buf), "%s firing on %s: %.4g vs threshold %.4g",
                    health_rule_name(rule), subject.c_str(), value, threshold);
    event.detail = buf;
    state->last = event;
    emitted.push_back(event);
  } else if (condition) {
    state->last.value = value;  // keep active() reporting the latest reading
    state->last.t = now;
  } else if (!condition && state->active) {
    state->active = false;
    HealthEvent event = state->last;
    event.firing = false;
    event.t = now;
    event.value = value;
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s resolved on %s: %.4g vs threshold %.4g",
                  health_rule_name(rule), subject.c_str(), value, threshold);
    event.detail = buf;
    emitted.push_back(event);
  }
}

std::uint64_t HealthMonitor::ticks() const {
  util::MutexLock lock(mutex_);
  return ticks_;
}

std::vector<HealthEvent> HealthMonitor::active() const {
  util::MutexLock lock(mutex_);
  std::vector<HealthEvent> out;
  for (const AlertState& s : alerts_)
    if (s.active) out.push_back(s.last);
  return out;
}

std::vector<HealthEvent> HealthMonitor::history() const {
  util::MutexLock lock(mutex_);
  return std::vector<HealthEvent>(history_.begin(), history_.end());
}

std::uint64_t HealthMonitor::series_allocations() const {
  util::MutexLock lock(mutex_);
  std::uint64_t total = probe_store_.allocations();
  for (const auto& src : sources_) total += src->store.allocations();
  return total;
}

std::size_t HealthMonitor::num_series() const {
  util::MutexLock lock(mutex_);
  std::size_t total = probe_store_.num_series();
  for (const auto& src : sources_) total += src->store.num_series();
  return total;
}

const TimeSeriesStore* HealthMonitor::store(std::string_view source_name) const {
  util::MutexLock lock(mutex_);
  for (const auto& src : sources_)
    if (src->name == source_name) return &src->store;
  return nullptr;
}

std::string HealthMonitor::summary_line() const {
  util::MutexLock lock(mutex_);
  std::ostringstream out;
  std::size_t firing = 0;
  for (const AlertState& s : alerts_)
    if (s.active) ++firing;
  std::size_t series = probe_store_.num_series();
  for (const auto& src : sources_) series += src->store.num_series();
  out << "health: ticks=" << ticks_ << " series=" << series << " firing=" << firing;
  if (firing > 0) {
    out << " [";
    bool first = true;
    for (const AlertState& s : alerts_) {
      if (!s.active) continue;
      if (!first) out << " ";
      first = false;
      out << health_rule_name(s.rule) << ":" << s.subject;
      if (s.tenant >= 0) out << ":t" << s.tenant;
    }
    out << "]";
  }
  return out.str();
}

void HealthMonitor::scrape(MetricsSnapshot& out) const {
  util::MutexLock lock(mutex_);
  out.add_counter("distgnn_health_ticks_total", {}, static_cast<double>(ticks_));
  std::size_t series = probe_store_.num_series();
  std::uint64_t allocations = probe_store_.allocations();
  for (const auto& src : sources_) {
    series += src->store.num_series();
    allocations += src->store.allocations();
  }
  out.add_counter("distgnn_health_series", {}, static_cast<double>(series));
  out.add_counter("distgnn_health_series_allocations_total", {},
                  static_cast<double>(allocations));
  for (int r = 0; r < kNumHealthRules; ++r) {
    const auto rule = static_cast<HealthRule>(r);
    std::size_t active = 0;
    for (const AlertState& s : alerts_)
      if (s.active && s.rule == rule) ++active;
    const Labels labels{{"rule", health_rule_name(rule)}};
    out.add_counter("distgnn_health_active", labels, static_cast<double>(active));
    out.add_counter("distgnn_health_events_total", labels,
                    static_cast<double>(events_total_[static_cast<std::size_t>(r)]));
  }
  for (const QueueProbe& probe : queue_probes_)
    out.add_counter("distgnn_health_queue_depth", probe.labels, probe.last_depth);
}

void HealthMonitor::start() {
  util::MutexLock lock(run_mutex_);
  if (running_) return;
  running_ = true;
  thread_ = std::thread([this] { run_loop(); });
}

void HealthMonitor::stop() {
  {
    util::MutexLock lock(run_mutex_);
    if (!running_) {
      if (thread_.joinable()) thread_.join();
      return;
    }
    running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void HealthMonitor::run_loop() {
  util::MutexLock lock(run_mutex_);
  while (running_) {
    lock.unlock();
    tick();
    lock.lock();
    // Timed sleep with stop responsiveness: a stop() between ticks notifies
    // cv_ and flips running_, so re-check after every wakeup (spurious or
    // not) instead of trusting a single wait_for.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(config_.scrape_period_seconds));
    while (running_) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
    }
  }
}

}  // namespace distgnn::obs
