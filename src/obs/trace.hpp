// Per-request stage tracing for the serving tower.
//
// A sampled request carries a TraceContext from admission to reply; each
// serving stage records a monotonic [begin, end) span into it *where the
// work happens* (the leaf server's submit path and worker loop), not
// reconstructed at the edge. Stages mirror the request's life: admit (the
// submit call), queue (enqueue -> worker pop), sample (neighbourhood
// sampling), halo_wait (blocked on peer rows, sharded tier), embed_lookup
// (EmbedForward path), forward (GEMM stack), reply (result build +
// callback). Batch-level stages stamp the same span into every traced
// request of the batch — a request's trace shows the batch work it rode in.
//
// Sampling is per-tenant probabilistic (trace_sample_rate on TierConfig)
// and deterministic in (request id, tenant): splitmix64 of the pair against
// the rate, so tests can pin exact sampled sets and two layers never
// disagree about whether a request is traced.
//
// Completed traces land in a TraceSink: a bounded lock-free ring (per-slot
// seqlock — writers claim a ticket with fetch_add and never block each
// other; a reader that races a writer simply skips the torn slot) plus a
// top-K-by-latency exemplar log under a small mutex (publishes are rare at
// sampling rates worth running). Both are dumpable as Chrome trace_event
// JSON via obs::render_chrome_trace (opens in chrome://tracing / Perfetto).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/sync.hpp"

namespace distgnn::obs {

enum class Stage : std::uint8_t {
  kAdmit = 0,
  kQueue,
  kSample,
  kHaloWait,
  kEmbedLookup,
  kForward,
  kReply,
  // Streaming graph-update stages (src/stream): per-delta, not per-request.
  kApply,        // barrier window: graph swap + feature-row writes
  kInvalidate,   // cache epoch advance / targeted eviction
  kRepartition,  // off-barrier prepare: CSR rebuild + incremental libra
};
inline constexpr int kNumStages = 10;

/// "admit", "queue", ... — the metric label and trace_event name.
const char* stage_name(Stage stage);

/// Sentinel Trace::tenant for per-delta stream traces (DeltaPublisher's
/// repartition/apply/invalidate spans): render_chrome_trace lays them out as
/// their own "stream" process track next to the per-tenant request tracks.
inline constexpr std::int32_t kStreamTrack = -1;

using TraceClock = std::chrono::steady_clock;

/// One stage's [begin, end) in seconds on the TraceClock epoch. begin < 0
/// means the stage never ran for this request.
struct Span {
  double begin_seconds = -1.0;
  double end_seconds = -1.0;

  bool valid() const { return begin_seconds >= 0 && end_seconds >= begin_seconds; }
  double duration_seconds() const { return valid() ? end_seconds - begin_seconds : 0.0; }
};

/// A completed request trace. Trivially copyable by design: ring slots copy
/// it under a seqlock, where a std::string member would tear.
struct Trace {
  std::uint64_t request_id = 0;
  std::int32_t tenant = 0;
  std::int64_t vertex = -1;
  double begin_seconds = 0;  // admission instant (TraceClock)
  double end_seconds = 0;    // after the reply callback returned
  std::array<Span, kNumStages> spans{};

  double total_seconds() const { return end_seconds - begin_seconds; }
  const Span& span(Stage stage) const { return spans[static_cast<std::size_t>(stage)]; }
  /// Fraction of [begin, end] covered by the union of the spans (spans are
  /// non-overlapping by construction — stages are sequential per request).
  double coverage() const;
};

/// Deterministic per-request sampling decision: true for a `rate` fraction
/// of (id, tenant) pairs. Uses a splitmix64 hash, so every layer that asks
/// about the same request agrees without coordination.
bool trace_sampled(std::uint64_t request_id, std::int32_t tenant, double rate);

inline Span make_span(TraceClock::time_point begin, TraceClock::time_point end) {
  return Span{std::chrono::duration<double>(begin.time_since_epoch()).count(),
              std::chrono::duration<double>(end.time_since_epoch()).count()};
}

/// Batch-level stage windows a worker hands to its completion path, so every
/// request of the batch gets the same batch spans stamped into its trace and
/// observed into the stage histograms (a request's stage latency is the
/// latency of the batch it rode in). Invalid (default) spans mean the stage
/// did not run for this batch.
struct BatchStageTimes {
  Span sample, halo_wait, embed_lookup, forward;
};

/// Mutable trace being assembled while the request is in flight. Not
/// internally synchronized: it is written by one thread at a time (the
/// submit thread, then the worker that popped the request), with the queue's
/// mutex providing the hand-off ordering.
class TraceContext {
 public:
  TraceContext(std::uint64_t request_id, std::int32_t tenant, std::int64_t vertex,
               TraceClock::time_point begin);

  static double seconds(TraceClock::time_point t) {
    return std::chrono::duration<double>(t.time_since_epoch()).count();
  }

  void begin_stage(Stage stage, TraceClock::time_point t) {
    trace_.spans[static_cast<std::size_t>(stage)].begin_seconds = seconds(t);
  }
  void end_stage(Stage stage, TraceClock::time_point t) {
    trace_.spans[static_cast<std::size_t>(stage)].end_seconds = seconds(t);
  }
  void set_stage(Stage stage, TraceClock::time_point begin, TraceClock::time_point end) {
    Span& span = trace_.spans[static_cast<std::size_t>(stage)];
    span.begin_seconds = seconds(begin);
    span.end_seconds = seconds(end);
  }
  void set_stage(Stage stage, const Span& span) {
    trace_.spans[static_cast<std::size_t>(stage)] = span;
  }

  /// Stamps the end time and returns the finished trace.
  const Trace& finish(TraceClock::time_point end) {
    trace_.end_seconds = seconds(end);
    return trace_;
  }
  const Trace& trace() const { return trace_; }

 private:
  Trace trace_;
};

/// Bounded sink of completed traces: overwrite ring + top-K exemplars.
class TraceSink {
 public:
  explicit TraceSink(std::size_t ring_capacity = 256, int top_k = 8);

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Lock-free on the ring (see file comment); the exemplar update takes a
  /// small mutex. Safe from any number of threads.
  void publish(const Trace& trace);

  /// Every readable ring entry, oldest first (best effort: slots being
  /// written during the read are skipped).
  std::vector<Trace> ring_snapshot() const;
  /// The K slowest traces seen, slowest first.
  std::vector<Trace> slowest() const;
  /// Ring entries plus any exemplar no longer resident in the ring —
  /// deduplicated, the set a trace dump wants.
  void collect(std::vector<Trace>& out) const;

  std::uint64_t published() const { return published_.load(std::memory_order_acquire); }
  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    /// Seqlock word: 0 = never written, odd = write in progress, even > 0 =
    /// readable (value encodes the writer's ticket).
    std::atomic<std::uint64_t> seq{0};
    Trace trace;
  };

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> next_ticket_{0};
  std::atomic<std::uint64_t> published_{0};

  mutable util::Mutex top_mutex_;
  int top_k_;
  std::vector<Trace> top_ GUARDED_BY(top_mutex_);  // kept sorted, slowest first
};

}  // namespace distgnn::obs
