// Sharded metrics registry: named counters and log2-bucket histograms whose
// update path never takes a mutex.
//
// The serving hot path completes hundreds of thousands of requests per
// second across many worker threads; a shared mutex-guarded tally (the old
// tenant_lanes_ pattern) serializes exactly the threads that must not
// serialize. Following the local/remote-access split of the M&M-systems line
// of work (PAPERS.md, "On Atomic Registers and Randomized Consensus in M&M
// Systems"), every metric here is an array of cache-line-padded per-worker
// shards: a worker increments only its own shard (a relaxed fetch_add on an
// uncontended line — effectively a local register), and a scrape folds the
// shards with acquire loads. Updates are wait-free; scrapes pay the fold.
//
// Registration (name -> metric lookup) does take a small mutex, so call
// sites cache handles — `Counter&`/`Histogram&` references are stable for
// the registry's lifetime. CounterFamily/HistogramFamily cache per-tenant
// handles behind a lock-free read path for the label dimension the serving
// tier actually uses per request.
//
// Histograms use the same log2 bucket geometry as LatencyRecorder: bucket k
// covers [1µs·2^(k-1), 1µs·2^k), with sub-microsecond values in bucket 0 —
// one shared latency_bucket() so the two can never drift.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/sync.hpp"

namespace distgnn::obs {

/// Log2 latency buckets from 1µs; bucket 39 tops out near 6 days, far past
/// any latency worth distinguishing. Fixed width keeps HistogramData
/// trivially mergeable (element-wise add).
inline constexpr int kNumBuckets = 40;

/// Exclusive upper bound of bucket k in seconds: 1µs · 2^k.
double bucket_upper_seconds(int k);

/// Bucket index for a latency: 0 for values below 1µs (and non-finite
/// inputs), otherwise the k with value in [1µs·2^(k-1), 1µs·2^k), clamped to
/// the last bucket. Shared by Histogram and LatencyRecorder::histogram().
int latency_bucket(double seconds);

/// A folded histogram: non-cumulative bucket counts plus count/sum. This is
/// the mergeable value type scrapes and BackendStats carry around.
struct HistogramData {
  std::array<std::uint64_t, kNumBuckets> buckets{};
  std::uint64_t count = 0;
  double sum_seconds = 0;

  bool empty() const { return count == 0; }
  double mean_seconds() const {
    return count == 0 ? 0.0 : sum_seconds / static_cast<double>(count);
  }
  /// Quantile estimate from the buckets: the geometric midpoint of the
  /// bucket holding the q-th sample (log2 buckets, so the estimate is within
  /// a factor sqrt(2) of the true value). 0 when empty.
  double quantile(double q) const;

  HistogramData& operator+=(const HistogramData& other);
};

/// Label set rendered as {k="v",...}; kept sorted-by-insertion (callers pass
/// them in a fixed order, so equality is positional).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// One labelled sample in a scrape: either a counter value or a histogram.
struct MetricPoint {
  std::string name;
  Labels labels;
  bool is_histogram = false;
  double value = 0;  // counter reading
  HistogramData histogram;

  bool same_series(const std::string& n, const Labels& l) const {
    return name == n && labels == l;
  }
};

/// A scrape result. add_* folds by (name, labels) — two children of a
/// composite backend emitting the same series merge into one, which is what
/// keeps one exposition free of duplicate series.
struct MetricsSnapshot {
  std::vector<MetricPoint> points;

  void add_counter(const std::string& name, const Labels& labels, double value);
  void add_histogram(const std::string& name, const Labels& labels, const HistogramData& data);
  void merge(const MetricsSnapshot& other);

  const MetricPoint* find(const std::string& name, const Labels& labels = {}) const;
  /// Sum of a counter over every label set it appears with.
  double counter_total(const std::string& name) const;
  /// Fold of a histogram over every label set it appears with.
  HistogramData histogram_total(const std::string& name) const;
  /// Quantile of the named histogram: the exact (name, labels) series when
  /// present, else (with empty labels) the fold over every label set of the
  /// name. 0 for unknown names and for empty/all-zero histograms.
  double quantile(const std::string& name, double q, const Labels& labels = {}) const;
};

namespace detail {
/// Stable per-thread index used to pick a shard. Threads get dense ids in
/// creation order, so a pool of W workers lands on W distinct shards
/// whenever the metric has >= W of them.
int thread_index();
}  // namespace detail

/// Monotonic counter with per-worker shards. add() is a relaxed fetch_add on
/// the calling thread's own cache line; value() folds with acquire loads.
class Counter {
 public:
  explicit Counter(int num_shards);

  void add(std::uint64_t n = 1) {
    shards_[static_cast<std::size_t>(detail::thread_index() % num_shards_)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t value() const;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  int num_shards_;
  std::unique_ptr<Shard[]> shards_;
};

/// Log2-bucket histogram with per-worker shards; observe() is three relaxed
/// fetch_adds on the calling thread's shard. Sums are kept in nanoseconds so
/// the shard stays all-integer (no atomic<double> CAS loops).
class Histogram {
 public:
  explicit Histogram(int num_shards);

  void observe(double seconds) {
    Shard& shard = shards_[static_cast<std::size_t>(detail::thread_index() % num_shards_)];
    shard.buckets[static_cast<std::size_t>(latency_bucket(seconds))].fetch_add(
        1, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    shard.sum_ns.fetch_add(seconds > 0 ? static_cast<std::uint64_t>(seconds * 1e9) : 0,
                           std::memory_order_relaxed);
  }
  HistogramData snapshot() const;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_ns{0};
    std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets{};
  };
  int num_shards_;
  std::unique_ptr<Shard[]> shards_;
};

/// Owner of named metrics. Registration takes a mutex (rare — call sites
/// cache the returned references, which stay valid for the registry's
/// lifetime); the update path through the handles never does.
class MetricsRegistry {
 public:
  /// num_shards 0 = auto (hardware concurrency, clamped to [2, 16]).
  explicit MetricsRegistry(int num_shards = 0);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {});

  /// Folds every shard of every metric into `out` (acquire loads; see file
  /// comment). Safe to call concurrently with updates.
  void scrape(MetricsSnapshot& out) const;

  int num_shards() const { return num_shards_; }

 private:
  struct Entry {
    std::string name;
    Labels labels;
    std::unique_ptr<Counter> counter;      // exactly one of counter /
    std::unique_ptr<Histogram> histogram;  // histogram is set
  };

  int num_shards_;
  mutable util::Mutex mutex_;  // registration + scrape enumeration only
  std::deque<Entry> entries_ GUARDED_BY(mutex_);  // deque: stable addresses across growth
};

/// Per-tenant counter handles cached behind a lock-free read: with(id) walks
/// a small published list (acquire loads) and only takes a mutex to register
/// a tenant the first time it appears. The per-request path is a pointer
/// walk over however many tenants exist — no string building, no map.
class CounterFamily {
 public:
  CounterFamily(MetricsRegistry& registry, std::string name, std::string label_key = "tenant");
  ~CounterFamily();

  CounterFamily(const CounterFamily&) = delete;
  CounterFamily& operator=(const CounterFamily&) = delete;

  Counter& with(int id);
  /// Every (id, counter) registered so far, in first-seen order.
  void for_each(const std::function<void(int, const Counter&)>& fn) const;

 private:
  struct Node {
    int id;
    Counter* counter;
    Node* next;
  };
  MetricsRegistry& registry_;
  std::string name_, label_key_;
  std::atomic<Node*> head_{nullptr};
  util::Mutex grow_mutex_;  // serializes registrations; reads are lock-free
};

/// Histogram analogue of CounterFamily.
class HistogramFamily {
 public:
  HistogramFamily(MetricsRegistry& registry, std::string name, Labels base_labels,
                  std::string label_key = "tenant");
  ~HistogramFamily();

  HistogramFamily(const HistogramFamily&) = delete;
  HistogramFamily& operator=(const HistogramFamily&) = delete;

  Histogram& with(int id);
  /// Every (id, histogram) registered so far, in first-seen order.
  void for_each(const std::function<void(int, const Histogram&)>& fn) const;

 private:
  struct Node {
    int id;
    Histogram* histogram;
    Node* next;
  };
  MetricsRegistry& registry_;
  std::string name_, label_key_;
  Labels base_labels_;
  std::atomic<Node*> head_{nullptr};
  util::Mutex grow_mutex_;  // serializes registrations; reads are lock-free
};

}  // namespace distgnn::obs
