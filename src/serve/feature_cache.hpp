// Sharded LRU feature/embedding cache for the inference servers.
//
// Unlike cachesim/LruCache — a *model* that only counts — this cache really
// stores feature vectors: a hit copies the cached bytes out, a miss runs the
// caller's fill function (feature-matrix row copy, or a point-to-point fetch
// from the owning rank in sharded mode) and retains the result. Entries are
// fixed-width (`dim` floats), the slab is allocated up front, and the LRU
// discipline matches cachesim so the two report comparable CacheStats.
//
// Sharding: keys are hashed over `num_shards` independent LRUs, each behind
// its own mutex, so concurrent server workers rarely contend. Object spaces
// keep separate statistics (space 0 = local features, space 1 = halo/remote
// rows by convention) exactly as in cachesim.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "cachesim/lru_cache.hpp"
#include "util/types.hpp"

namespace distgnn::serve {

class ShardedFeatureCache {
 public:
  /// Fill callback: write exactly `dim` floats for the requested key.
  using FillFn = std::function<void(real_t*)>;

  /// capacity_bytes is split evenly over shards; each shard holds at least
  /// one entry of `dim` floats.
  ShardedFeatureCache(std::uint64_t capacity_bytes, std::size_t dim, int num_shards = 8);

  /// Copies the vector for (space, key) into `out` (dim floats). On a miss,
  /// `fill` produces the vector, which is cached and copied out. Returns true
  /// on hit. Thread-safe; the fill runs under the shard lock so concurrent
  /// requests for the same key fetch once.
  bool get_or_fill(int space, std::uint64_t key, real_t* out, const FillFn& fill);

  /// Split miss path for callers whose fill is a communication round-trip
  /// that must not run under the shard lock (the sharded server's halo
  /// fetch): lookup() counts the access and, on miss, the miss; the caller
  /// then fetches and insert()s, which charges the fill bytes. A lookup-miss
  /// + insert pair charges the same counters as one get_or_fill miss.
  bool lookup(int space, std::uint64_t key, real_t* out);
  void insert(int space, std::uint64_t key, const real_t* row);

  /// Drops every entry (hot-swap invalidation for embedding spaces) without
  /// resetting statistics.
  void invalidate();

  std::size_t dim() const { return dim_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  std::uint64_t capacity_entries() const;

  /// Statistics aggregated over shards, per space / combined (cachesim
  /// definitions: reuse = accesses per miss, bytes via dim * sizeof(real_t)).
  CacheStats stats(int space) const;
  CacheStats combined_stats() const;

 private:
  struct Entry {
    std::uint64_t tag = 0;  // (space << 56) | key, as in cachesim
    int prev = -1;
    int next = -1;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::vector<Entry> entries;
    std::vector<real_t> slab;  // entries.size() * dim floats
    std::vector<int> free_list;
    int head = -1;
    int tail = -1;
    std::unordered_map<std::uint64_t, int> index;
    std::vector<CacheStats> per_space;
  };

  static std::uint64_t make_tag(int space, std::uint64_t key) {
    return (static_cast<std::uint64_t>(space) << 56) | (key & 0x00ffffffffffffffULL);
  }

  Shard& shard_for(std::uint64_t key);
  void unlink(Shard& s, int idx) const;
  void push_front(Shard& s, int idx) const;

  std::size_t dim_;
  std::uint64_t entries_per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace distgnn::serve
