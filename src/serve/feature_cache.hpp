// Sharded LRU feature cache for the inference servers.
//
// Unlike cachesim/LruCache — a *model* that only counts — this cache really
// stores feature vectors: a hit copies the cached bytes out, a miss runs the
// caller's fill function (feature-matrix row copy, or a point-to-point fetch
// from the owning rank in sharded mode) and retains the result. Entries are
// fixed-width (`dim` floats) and the LRU discipline matches cachesim so the
// two report comparable CacheStats.
//
// Storage and sharding live in the generic ShardedLru (shared with the
// embedding cache): keys are hashed over `num_shards` independent LRUs, each
// behind its own mutex, so concurrent server workers rarely contend. Object
// spaces keep separate statistics (space 0 = local features, space 1 =
// halo/remote rows by convention) exactly as in cachesim.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "serve/sharded_lru.hpp"
#include "util/types.hpp"

namespace distgnn::serve {

class ShardedFeatureCache {
 public:
  /// Fill callback: write exactly `dim` floats for the requested key.
  using FillFn = std::function<void(real_t*)>;

  /// capacity_bytes is split evenly over shards; each shard holds at least
  /// one entry of `dim` floats.
  ShardedFeatureCache(std::uint64_t capacity_bytes, std::size_t dim, int num_shards = 8);

  /// Copies the vector for (space, key) into `out` (dim floats). On a miss,
  /// `fill` produces the vector, which is cached and copied out. Returns true
  /// on hit. Thread-safe; the fill runs under the shard lock so concurrent
  /// requests for the same key fetch once.
  bool get_or_fill(int space, std::uint64_t key, real_t* out, const FillFn& fill);

  /// Split miss path for callers whose fill is a communication round-trip
  /// that must not run under the shard lock (the sharded server's halo
  /// fetch): lookup() counts the access and, on miss, the miss; the caller
  /// then fetches and insert()s, which charges the fill bytes. A lookup-miss
  /// + insert pair charges the same counters as one get_or_fill miss.
  bool lookup(int space, std::uint64_t key, real_t* out);
  void insert(int space, std::uint64_t key, const real_t* row);

  /// Drops every entry (hot-swap invalidation) without resetting statistics.
  void invalidate();

  /// Drops one entry (a streamed feature-row update dirties exactly that
  /// key). Returns true when an entry was resident and evicted.
  bool erase(int space, std::uint64_t key);

  std::size_t dim() const { return dim_; }
  int num_shards() const { return lru_.num_shards(); }
  std::uint64_t capacity_entries() const { return lru_.capacity_entries(); }

  /// Statistics aggregated over shards, per space / combined (cachesim
  /// definitions: reuse = accesses per miss, bytes via dim * sizeof(real_t)).
  CacheStats stats(int space) const { return lru_.stats(space); }
  CacheStats combined_stats() const { return lru_.combined_stats(); }

 private:
  static std::uint64_t entries_for(std::uint64_t capacity_bytes, std::size_t dim,
                                   int num_shards);

  std::size_t dim_;
  ShardedLru<std::uint64_t, std::vector<real_t>> lru_;
};

}  // namespace distgnn::serve
