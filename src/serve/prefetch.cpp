#include "serve/prefetch.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace distgnn::serve {

namespace {

// Point-to-point protocol tags (World payloads are float vectors, so vertex
// ids travel as two bit-cast 32-bit halves per id). Shared with the round
// barrier tag range of sharded_server (910x).
constexpr int kTagFeatReq = 9101;
constexpr int kTagFeatResp = 9102;

std::vector<real_t> encode_ids(std::span<const vid_t> ids) {
  std::vector<real_t> out(2 * ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::uint64_t u = static_cast<std::uint64_t>(ids[i]);
    const std::uint32_t lo = static_cast<std::uint32_t>(u);
    const std::uint32_t hi = static_cast<std::uint32_t>(u >> 32);
    std::memcpy(&out[2 * i], &lo, sizeof(lo));
    std::memcpy(&out[2 * i + 1], &hi, sizeof(hi));
  }
  return out;
}

std::vector<vid_t> decode_ids(const std::vector<real_t>& payload) {
  std::vector<vid_t> ids(payload.size() / 2);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    std::uint32_t lo = 0, hi = 0;
    std::memcpy(&lo, &payload[2 * i], sizeof(lo));
    std::memcpy(&hi, &payload[2 * i + 1], sizeof(hi));
    ids[i] = static_cast<vid_t>((static_cast<std::uint64_t>(hi) << 32) | lo);
  }
  return ids;
}

}  // namespace

HaloFetcher::HaloFetcher(Communicator& comm, std::span<const part_t> owner,
                         const DenseMatrix& owned_rows,
                         const std::unordered_map<vid_t, std::size_t>& owned_index,
                         ShardedFeatureCache& cache)
    : comm_(comm),
      owner_(owner),
      owned_rows_(owned_rows),
      owned_index_(owned_index),
      cache_(cache),
      dim_(cache.dim()) {}

void HaloFetcher::service_peers() {
  const int num_ranks = comm_.size();
  for (int p = 0; p < num_ranks; ++p) {
    if (p == comm_.rank()) continue;
    while (auto msg = comm_.try_recv(p, kTagFeatReq)) {
      const std::vector<vid_t> ids = decode_ids(*msg);
      std::vector<real_t> payload(ids.size() * dim_);
      for (std::size_t i = 0; i < ids.size(); ++i) {
        const real_t* src = owned_rows_.row(owned_index_.at(ids[i]));
        std::copy(src, src + dim_, payload.data() + i * dim_);
      }
      comm_.send(p, kTagFeatResp, std::move(payload));
    }
  }
}

void HaloFetcher::begin_fetch(HaloBatch& batch) {
  if (batch.in_flight) throw std::logic_error("HaloFetcher: begin_fetch on an in-flight batch");
  const part_t me = static_cast<part_t>(comm_.rank());
  const std::size_t num_ranks = static_cast<std::size_t>(comm_.size());

  std::size_t input_rows = 0;
  for (const MiniBatch& mb : batch.minibatches) input_rows += mb.input_vertices.size();
  batch.inputs.resize_discard(input_rows, dim_);
  batch.need.resize(num_ranks);
  batch.need_rows.resize(num_ranks);
  batch.foreign_rows.resize(num_ranks);
  for (auto& n : batch.need) n.clear();
  for (auto& n : batch.need_rows) n.clear();
  for (auto& n : batch.foreign_rows) n.clear();
  batch.pending.clear();

  // Owned rows through the local cache space, resident halo rows through the
  // halo space; everything else goes on the per-owner wire lists (batches
  // routinely re-sample shared hub vertices, so the wire carries each row
  // once and fans it out to every input row that needs it).
  std::size_t row = 0;
  for (const MiniBatch& mb : batch.minibatches) {
    for (const vid_t v : mb.input_vertices) {
      const part_t owner = owner_[static_cast<std::size_t>(v)];
      if (owner == me) {
        cache_.get_or_fill(/*space=*/0, static_cast<std::uint64_t>(v), batch.inputs.row(row),
                           [&](real_t* dst) {
                             const real_t* src = owned_rows_.row(owned_index_.at(v));
                             std::copy(src, src + dim_, dst);
                           });
      } else if (!cache_.lookup(/*space=*/1, static_cast<std::uint64_t>(v),
                                batch.inputs.row(row))) {
        const auto inflight = in_flight_.find(v);
        if (inflight != in_flight_.end() && inflight->second.first != &batch) {
          // Another in-flight batch already has this row on the wire (with
          // prefetch, its insert() lands after our lookup): fan its response
          // out here too instead of paying a second round trip.
          auto* other = inflight->second.first;
          other->foreign_rows[static_cast<std::size_t>(owner)][inflight->second.second]
              .emplace_back(&batch, row);
        } else {
          auto& owner_need = batch.need[static_cast<std::size_t>(owner)];
          auto& owner_rows = batch.need_rows[static_cast<std::size_t>(owner)];
          const auto [it, inserted] = batch.pending.emplace(v, owner_need.size());
          if (inserted) {
            owner_need.push_back(v);
            owner_rows.push_back({row});
            batch.foreign_rows[static_cast<std::size_t>(owner)].push_back({});
            in_flight_.emplace(v, std::make_pair(&batch, it->second));
          } else {
            owner_rows[it->second].push_back(row);
          }
        }
      }
      ++row;
    }
  }

  batch.outstanding = 0;
  for (std::size_t p = 0; p < num_ranks; ++p) {
    if (batch.need[p].empty()) continue;
    comm_.send(static_cast<int>(p), kTagFeatReq, encode_ids(batch.need[p]));
    ++batch.outstanding;
  }
  batch.in_flight = true;
}

void HaloFetcher::finish_fetch(HaloBatch& batch) {
  if (!batch.in_flight) throw std::logic_error("HaloFetcher: finish_fetch without begin_fetch");
  const auto wait_begin = std::chrono::steady_clock::now();
  while (batch.outstanding > 0) {
    service_peers();
    for (std::size_t p = 0; p < batch.need.size(); ++p) {
      auto& ids = batch.need[p];
      if (ids.empty()) continue;
      auto resp = comm_.try_recv(static_cast<int>(p), kTagFeatResp);
      if (!resp) continue;
      const auto& rows_for = batch.need_rows[p];
      const auto& foreign_for = batch.foreign_rows[p];
      for (std::size_t i = 0; i < ids.size(); ++i) {
        const real_t* src = resp->data() + i * dim_;
        for (const std::size_t dst_row : rows_for[i])
          std::copy(src, src + dim_, batch.inputs.row(dst_row));
        for (const auto& [piggyback, dst_row] : foreign_for[i])
          std::copy(src, src + dim_, piggyback->inputs.row(dst_row));
        cache_.insert(/*space=*/1, static_cast<std::uint64_t>(ids[i]), src);
        in_flight_.erase(ids[i]);
      }
      stats_.halo_rows_fetched += ids.size();
      stats_.halo_bytes += ids.size() * dim_ * sizeof(real_t);
      ids.clear();
      --batch.outstanding;
    }
    std::this_thread::yield();
  }
  stats_.wait_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wait_begin).count();
  batch.in_flight = false;
}

}  // namespace distgnn::serve
