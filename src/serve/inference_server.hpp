// Single-process online inference server.
//
// A pool of worker threads pulls micro-batches off a bounded request queue,
// samples each request's k-hop neighbourhood (deterministically, seeded per
// vertex so a request's answer does not depend on which batch it landed in),
// gathers input features through the sharded LRU feature cache, and runs the
// stacked batch through the live ModelSnapshot in one pass. Snapshots are
// published through SnapshotHolder, so a new checkpoint can go live between
// batches while in-flight batches finish on the model they started with.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "graph/datasets.hpp"
#include "obs/metrics.hpp"
#include "obs/scrape.hpp"
#include "obs/trace.hpp"
#include "serve/backend.hpp"
#include "serve/embed_cache.hpp"
#include "serve/feature_cache.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/request_queue.hpp"
#include "serve/tier_config.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace distgnn::serve {

/// Single-process server config: the shared tier knobs (batching, fanouts,
/// caches, sampling seed, embed mode — see serve/tier_config.hpp) plus the
/// worker-pool width. Field names are unchanged from the pre-TierConfig
/// struct, so existing initialization code is untouched.
struct ServeConfig : TierConfig {
  int num_workers = 2;
};

/// Single-server stats are the leaf case of the unified BackendStats shape
/// (serve/backend.hpp); the alias records the subsumption.
using ServerStats = BackendStats;

/// Deterministic per-request sampling stream shared by every serving mode.
Rng request_rng(std::uint64_t sample_seed, vid_t vertex);

class InferenceServer : public ServingBackend {
 public:
  /// The dataset provides graph structure and the feature store; the model
  /// comes in via publish(). The server keeps references only — the dataset
  /// must outlive it.
  InferenceServer(const Dataset& dataset, ServeConfig config);
  ~InferenceServer() override;

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Atomically swaps the served model. Callable before start() and at any
  /// point under live traffic.
  void publish(std::shared_ptr<const ModelSnapshot> snapshot) override;
  std::shared_ptr<const ModelSnapshot> snapshot() const override { return holder_.get(); }

  /// Spawns the worker pool. Requires a published snapshot.
  void start() override;
  /// Closes the queue, drains pending requests, joins the workers. Idempotent.
  void stop() override;

  using ServingBackend::submit;
  /// Submission with admission-control metadata (router path). Returns false
  /// (and counts a rejection) when the bounded queue is full. The server
  /// itself never drops on deadline — that decision belongs to the router.
  /// The request's tenant id rides along into the InferResult and the
  /// per-tenant stats lanes.
  bool submit(vid_t vertex, const RequestMeta& meta,
              std::function<void(InferResult&&)> done) override;
  /// Blocking convenience wrapper for closed-loop clients and tests; blocks
  /// on the bounded queue (backpressure) and throws on a stopped server.
  InferResult infer_sync(vid_t vertex) override;

  /// Requests currently waiting in the bounded queue (excludes in-service
  /// batches); the signal power-of-two-choices routing compares.
  std::size_t queue_depth() const override { return queue_.size(); }
  /// Blocks until every admitted request has completed.
  void drain() override;
  bool accepting() const override { return running_.load(std::memory_order_acquire); }
  /// Amortized per-request service time observed so far (0 until the first
  /// batch completes).
  double mean_service_seconds() const override;
  int concurrency() const override { return config_.num_workers; }

  /// Version-barriered graph mutation: workers hold graph_gate_ shared per
  /// batch, so the exclusive acquisition here waits out in-service batches
  /// and blocks new ones for exactly the apply + invalidate window. The
  /// queue stays open — readers outside the window wait, they are never
  /// rejected — and targeted invalidation drops only the notice's dirty
  /// (vertex, layer) entries, promoting everything else to the new epoch.
  void apply_graph_update(const std::function<void()>& apply,
                          const GraphUpdateNotice& notice) override;
  std::uint64_t graph_epoch() const override {
    return graph_epoch_.load(std::memory_order_acquire);
  }

  BackendStats stats() const override;
  /// ScrapeSource: fold this server's stage histograms and tenant counters
  /// into `out` (acquire-load fold of the per-worker metric shards).
  void scrape(obs::MetricsSnapshot& out) const override;
  /// Completed sampled stage traces (ring + slow-request exemplars).
  void collect_traces(std::vector<obs::Trace>& out) const override;
  const obs::TraceSink& trace_sink() const { return trace_sink_; }

  const ServeConfig& config() const { return config_; }
  const Dataset& dataset() const override { return dataset_; }
  /// Layer-output cache (null unless embed_forward with embed_cache_bytes >
  /// 0 and a snapshot has been published).
  const EmbedCache* embed_cache() const { return embed_cache_ptr(); }

 private:
  void worker_loop();
  void process_batch(std::vector<InferRequest>&& batch, ForwardScratch& scratch,
                     std::vector<MiniBatch>& minibatches, DenseMatrix& inputs,
                     DenseMatrix& logits);
  void process_batch_embed(std::vector<InferRequest>&& batch, EmbedForward& evaluator,
                           std::vector<vid_t>& seeds, DenseMatrix& logits);
  void finish_batch(std::vector<InferRequest>& batch, const DenseMatrix& logits,
                    std::uint64_t snapshot_version, ServeClock::time_point service_begin,
                    const obs::BatchStageTimes& stages);
  EmbedCache* embed_cache_ptr() const;

  const Dataset& dataset_;
  /// Immutable mirror of dataset_.num_vertices(): the streamed-update
  /// contract fixes the vertex set at construction, and submit() must not
  /// read through dataset_.graph while a barrier is move-assigning it.
  const vid_t num_vertices_;
  ServeConfig config_;
  SnapshotHolder holder_;
  BoundedRequestQueue queue_;
  ShardedFeatureCache cache_;
  /// Created lazily at first publish (the spec fixes its geometry); guarded
  /// by embed_mutex_ so concurrent publishers / stats readers never race the
  /// unique_ptr. The EmbedCache itself is internally thread-safe.
  mutable util::Mutex embed_mutex_;
  std::unique_ptr<EmbedCache> embed_cache_ GUARDED_BY(embed_mutex_);
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};

  /// Graph-update barrier: workers shared per batch, delta apply exclusive.
  util::SharedMutex graph_gate_;
  std::atomic<std::uint64_t> graph_epoch_{0};

  /// Sharded wait-free telemetry: per-tenant submitted/completed/shed
  /// counters, per-stage and end-to-end latency histograms. Replaces the old
  /// mutex-guarded tenant_lanes_ — workers tally into their own cache lines,
  /// stats()/scrape() fold on read.
  obs::MetricsRegistry metrics_;
  obs::StageMetrics stage_metrics_{metrics_, "server"};
  obs::TraceSink trace_sink_;

  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> admitted_{0};  // successful queue pushes (drain target)
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_requests_{0};
  std::atomic<std::uint64_t> max_batch_seen_{0};
  std::atomic<std::uint64_t> service_ns_{0};
};

}  // namespace distgnn::serve
