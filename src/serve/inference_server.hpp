// Single-process online inference server.
//
// A pool of worker threads pulls micro-batches off a bounded request queue,
// samples each request's k-hop neighbourhood (deterministically, seeded per
// vertex so a request's answer does not depend on which batch it landed in),
// gathers input features through the sharded LRU feature cache, and runs the
// stacked batch through the live ModelSnapshot in one pass. Snapshots are
// published through SnapshotHolder, so a new checkpoint can go live between
// batches while in-flight batches finish on the model they started with.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "graph/datasets.hpp"
#include "serve/embed_cache.hpp"
#include "serve/feature_cache.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/request_queue.hpp"
#include "util/rng.hpp"

namespace distgnn::serve {

struct ServeConfig {
  int num_workers = 2;
  int max_batch = 8;
  std::chrono::microseconds max_batch_delay{200};
  std::size_t queue_capacity = 1024;
  std::vector<int> fanouts = {10, 10};  // input-most first; size == model layers
  std::uint64_t cache_bytes = 8ull << 20;
  int cache_shards = 8;
  /// Per-request sampling is seeded mix(sample_seed, vertex); the sharded
  /// server uses the same mix, which is what makes single-process and
  /// sharded answers comparable bit for bit.
  std::uint64_t sample_seed = 1;

  /// Embedding-cached serving: when true, requests run through EmbedForward
  /// (canonical per-(vertex, layer) sampling) and freshly computed layer
  /// outputs are memoized in an EmbedCache keyed by (vertex, layer, snapshot
  /// version), so hot vertices short-circuit their whole sampled subtree.
  /// Answers are bitwise-stable across cache state (on/off/hit/miss) but use
  /// a different sampling stream than the classic path, so the two modes are
  /// not bitwise-comparable to each other.
  bool embed_forward = false;
  /// Embedding-cache capacity, split over layers (0 = run EmbedForward with
  /// no cache — the A/B baseline the embed-cache bench compares against).
  std::uint64_t embed_cache_bytes = 32ull << 20;
  int embed_cache_shards = 8;
};

struct ServerStats {
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t batches = 0;
  std::uint64_t batched_requests = 0;  // Σ batch sizes (== completed)
  std::uint64_t max_batch_seen = 0;
  double service_seconds = 0;     // Σ worker time spent inside process_batch
  std::size_t queue_depth = 0;    // requests waiting at the time of the call
  CacheStats feature_cache;  // space 0: local feature rows
  CacheStats embed_cache;    // layer-output cache, all layers (embed mode only)

  double mean_batch() const {
    return batches == 0 ? 0.0 : static_cast<double>(batched_requests) / static_cast<double>(batches);
  }
  /// Amortized per-request service time — the rate the admission controller
  /// multiplies queue depth by to decide whether a deadline is meetable.
  double mean_service_seconds() const {
    return completed == 0 ? 0.0 : service_seconds / static_cast<double>(completed);
  }
};

/// Deterministic per-request sampling stream shared by every serving mode.
Rng request_rng(std::uint64_t sample_seed, vid_t vertex);

class InferenceServer {
 public:
  /// The dataset provides graph structure and the feature store; the model
  /// comes in via publish(). The server keeps references only — the dataset
  /// must outlive it.
  InferenceServer(const Dataset& dataset, ServeConfig config);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Atomically swaps the served model. Callable before start() and at any
  /// point under live traffic.
  void publish(std::shared_ptr<const ModelSnapshot> snapshot);
  std::shared_ptr<const ModelSnapshot> snapshot() const { return holder_.get(); }

  /// Spawns the worker pool. Requires a published snapshot.
  void start();
  /// Closes the queue, drains pending requests, joins the workers. Idempotent.
  void stop();

  /// Asynchronous submission; `done` runs on a worker thread. Returns false
  /// (and counts a rejection) when the bounded queue is full.
  bool submit(vid_t vertex, std::function<void(InferResult&&)> done);
  /// Submission with admission-control metadata (router path). The server
  /// itself never drops on deadline — that decision belongs to the router.
  bool submit(vid_t vertex, ServeClock::time_point deadline, Priority priority,
              std::function<void(InferResult&&)> done);
  /// Blocking convenience wrapper for closed-loop clients and tests.
  InferResult infer_sync(vid_t vertex);

  /// Requests currently waiting in the bounded queue (excludes in-service
  /// batches); the signal power-of-two-choices routing compares.
  std::size_t queue_depth() const { return queue_.size(); }
  /// Amortized per-request service time observed so far (0 until the first
  /// batch completes).
  double mean_service_seconds() const;

  ServerStats stats() const;
  const ServeConfig& config() const { return config_; }
  const Dataset& dataset() const { return dataset_; }
  /// Layer-output cache (null unless embed_forward with embed_cache_bytes >
  /// 0 and a snapshot has been published).
  const EmbedCache* embed_cache() const { return embed_cache_ptr(); }

 private:
  void worker_loop();
  void process_batch(std::vector<InferRequest>&& batch, ForwardScratch& scratch,
                     std::vector<MiniBatch>& minibatches, DenseMatrix& inputs,
                     DenseMatrix& logits);
  void process_batch_embed(std::vector<InferRequest>&& batch, EmbedForward& evaluator,
                           std::vector<vid_t>& seeds, DenseMatrix& logits);
  void finish_batch(std::vector<InferRequest>& batch, const DenseMatrix& logits,
                    std::uint64_t snapshot_version, ServeClock::time_point service_begin);
  EmbedCache* embed_cache_ptr() const;

  const Dataset& dataset_;
  ServeConfig config_;
  SnapshotHolder holder_;
  BoundedRequestQueue queue_;
  ShardedFeatureCache cache_;
  /// Created lazily at first publish (the spec fixes its geometry); guarded
  /// by embed_mutex_ so concurrent publishers / stats readers never race the
  /// unique_ptr. The EmbedCache itself is internally thread-safe.
  mutable std::mutex embed_mutex_;
  std::unique_ptr<EmbedCache> embed_cache_;
  std::vector<std::thread> workers_;
  bool running_ = false;

  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_requests_{0};
  std::atomic<std::uint64_t> max_batch_seen_{0};
  std::atomic<std::uint64_t> service_ns_{0};
};

}  // namespace distgnn::serve
