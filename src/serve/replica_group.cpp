#include "serve/replica_group.hpp"

#include <cstring>
#include <stdexcept>

namespace distgnn::serve {

ReplicaGroup::ReplicaGroup(const Dataset& dataset, ServeConfig config, int num_replicas)
    : dataset_(dataset) {
  if (num_replicas < 1) throw std::invalid_argument("ReplicaGroup: need >= 1 replica");
  replicas_.reserve(static_cast<std::size_t>(num_replicas));
  for (int r = 0; r < num_replicas; ++r)
    replicas_.push_back(std::make_unique<InferenceServer>(dataset, config));
}

ReplicaGroup::~ReplicaGroup() { stop(); }

void ReplicaGroup::publish(std::shared_ptr<const ModelSnapshot> snapshot) {
  if (!snapshot) throw std::invalid_argument("ReplicaGroup: null snapshot");
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return !publishing_; });  // one publisher at a time
  publishing_ = true;
  // Version barrier: drain every admitted request before the swap. Replica
  // queues are empty once outstanding_ hits zero, so after the loop every
  // replica serves the new version and nothing in flight straddles it.
  cv_.wait(lock, [&] { return outstanding_ == 0; });
  for (auto& replica : replicas_) replica->publish(snapshot);
  version_ = snapshot->version();
  ++publishes_;
  publishing_ = false;
  cv_.notify_all();
}

void ReplicaGroup::start() {
  for (auto& replica : replicas_) replica->start();
}

void ReplicaGroup::stop() {
  for (auto& replica : replicas_) replica->stop();
}

std::uint64_t ReplicaGroup::version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return version_;
}

std::uint64_t ReplicaGroup::publishes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return publishes_;
}

GroupStats ReplicaGroup::stats() const {
  GroupStats g;
  g.per_replica.reserve(replicas_.size());
  for (const auto& replica : replicas_) {
    g.per_replica.push_back(replica->stats());
    const ServerStats& s = g.per_replica.back();
    g.completed += s.completed;
    g.batches += s.batches;
    g.batched_requests += s.batched_requests;
  }
  g.publishes = publishes();
  return g;
}

void ReplicaGroup::begin_requests(std::size_t n) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return !publishing_; });
  outstanding_ += n;
}

void ReplicaGroup::end_request() {
  std::lock_guard<std::mutex> lock(mutex_);
  --outstanding_;
  if (outstanding_ == 0) cv_.notify_all();
}

std::shared_ptr<const ModelSnapshot> broadcast_snapshot(
    Communicator& comm, const ModelSpec& spec,
    std::shared_ptr<const ModelSnapshot> snapshot, int root) {
  // Payload = flattened weights + a 2-float version trailer (the 64-bit
  // version travels as two bit-cast 32-bit halves, as the sharded halo
  // protocol does for vertex ids).
  std::vector<real_t> payload;
  if (comm.rank() == root) {
    if (!snapshot) throw std::invalid_argument("broadcast_snapshot: root has no snapshot");
    payload = snapshot->flatten();
    const std::uint64_t v = snapshot->version();
    const std::uint32_t lo = static_cast<std::uint32_t>(v);
    const std::uint32_t hi = static_cast<std::uint32_t>(v >> 32);
    real_t flo, fhi;
    std::memcpy(&flo, &lo, sizeof(lo));
    std::memcpy(&fhi, &hi, sizeof(hi));
    payload.push_back(flo);
    payload.push_back(fhi);
  }
  comm.broadcast_v(payload, root);
  if (comm.rank() == root) return snapshot;

  if (payload.size() < 2)
    throw std::runtime_error("broadcast_snapshot: truncated payload");
  std::uint32_t lo = 0, hi = 0;
  std::memcpy(&lo, &payload[payload.size() - 2], sizeof(lo));
  std::memcpy(&hi, &payload[payload.size() - 1], sizeof(hi));
  const std::uint64_t version = (static_cast<std::uint64_t>(hi) << 32) | lo;
  return ModelSnapshot::from_flat(
      spec, std::span<const real_t>(payload.data(), payload.size() - 2), version);
}

}  // namespace distgnn::serve
