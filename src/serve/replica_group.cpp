#include "serve/replica_group.hpp"

#include <cstring>
#include <stdexcept>

namespace distgnn::serve {

ReplicaGroup::ReplicaGroup(const Dataset& dataset, ServeConfig config, int num_replicas)
    : ReplicaGroup(dataset, num_replicas, [&](int) {
        return std::make_unique<InferenceServer>(dataset, config);
      }) {}

ReplicaGroup::ReplicaGroup(const Dataset& dataset, int num_replicas,
                           const ReplicaFactory& factory)
    : dataset_(dataset) {
  if (num_replicas < 1) throw std::invalid_argument("ReplicaGroup: need >= 1 replica");
  if (!factory) throw std::invalid_argument("ReplicaGroup: null replica factory");
  replicas_.reserve(static_cast<std::size_t>(num_replicas));
  for (int r = 0; r < num_replicas; ++r) {
    replicas_.push_back(factory(r));
    if (!replicas_.back()) throw std::invalid_argument("ReplicaGroup: factory returned null");
  }
}

ReplicaGroup::~ReplicaGroup() { stop(); }

void ReplicaGroup::publish_under_barrier(std::uint64_t version,
                                         const std::function<void()>& swap) {
  util::MutexLock lock(mutex_);
  while (publishing_) cv_.wait(lock);  // one publisher at a time
  publishing_ = true;
  // Version barrier: drain every admitted request before the swap. Replica
  // queues are empty once outstanding_ hits zero, so after the swap every
  // replica serves the new version and nothing in flight straddles it.
  while (outstanding_ != 0) cv_.wait(lock);
  swap();
  version_ = version;
  ++publishes_;
  publishing_ = false;
  cv_.notify_all();
}

void ReplicaGroup::publish(std::shared_ptr<const ModelSnapshot> snapshot) {
  if (!snapshot) throw std::invalid_argument("ReplicaGroup: null snapshot");
  publish_under_barrier(snapshot->version(), [&] {
    for (auto& replica : replicas_) replica->publish(snapshot);
  });
}

void ReplicaGroup::publish_broadcast(std::shared_ptr<const ModelSnapshot> snapshot) {
  if (!snapshot) throw std::invalid_argument("ReplicaGroup: null snapshot");
  const ModelSpec spec = snapshot->spec();
  publish_under_barrier(snapshot->version(), [&] {
    // One broadcast rank per replica: rank 0 is the publisher, every other
    // rank reconstructs from the flattened wire payload — the same bytes a
    // cross-process deployment would put on the network.
    World world(num_replicas());
    world.run([&](Communicator& comm) {
      const auto mine = broadcast_snapshot(
          comm, spec, comm.rank() == 0 ? snapshot : nullptr, /*root=*/0);
      replicas_[static_cast<std::size_t>(comm.rank())]->publish(mine);
    });
  });
}

void ReplicaGroup::apply_graph_update(const std::function<void()>& apply,
                                      const GraphUpdateNotice& notice) {
  // Reuse the publish barrier (one mutator at a time, admitted traffic
  // drained), but keep version_ untouched — graph epochs are orthogonal to
  // snapshot versions. Sequential delivery, replica 0 with the real apply.
  util::MutexLock lock(mutex_);
  while (publishing_) cv_.wait(lock);
  publishing_ = true;
  while (outstanding_ != 0) cv_.wait(lock);
  for (std::size_t r = 0; r < replicas_.size(); ++r)
    replicas_[r]->apply_graph_update(r == 0 ? apply : std::function<void()>{}, notice);
  publishing_ = false;
  cv_.notify_all();
}

std::shared_ptr<const ModelSnapshot> ReplicaGroup::snapshot() const {
  return replicas_.front()->snapshot();
}

void ReplicaGroup::start() {
  for (auto& replica : replicas_) replica->start();
}

void ReplicaGroup::stop() {
  for (auto& replica : replicas_) replica->stop();
}

int ReplicaGroup::pick_round_robin() {
  return static_cast<int>(rr_next_.fetch_add(1, std::memory_order_relaxed) %
                          static_cast<std::uint64_t>(replicas_.size()));
}

bool ReplicaGroup::submit(vid_t vertex, const RequestMeta& meta,
                          std::function<void(InferResult&&)> done) {
  if (vertex < 0 || vertex >= dataset_.num_vertices())
    throw std::out_of_range("ReplicaGroup: vertex id out of range");
  begin_requests(1);
  ServingBackend& target = replica(pick_round_robin());
  bool ok = false;
  try {
    ok = target.submit(vertex, meta,
                       [this, user_done = std::move(done)](InferResult&& result) mutable {
                         if (user_done) user_done(std::move(result));
                         end_request();
                       });
  } catch (...) {
    end_request();
    throw;
  }
  if (!ok) end_request();
  return ok;
}

std::vector<std::optional<InferResult>> ReplicaGroup::infer_batch(
    std::span<const vid_t> vertices, const RequestMeta& meta) {
  const std::size_t n = vertices.size();
  std::vector<std::optional<InferResult>> results(n);
  if (n == 0) return results;
  for (const vid_t v : vertices)
    if (v < 0 || v >= dataset_.num_vertices())
      throw std::out_of_range("ReplicaGroup: vertex id out of range");

  // Reserve the whole batch's admission slots atomically: a group publish
  // has to wait until every request below completes, so all admitted
  // answers come from one snapshot version.
  begin_requests(n);

  util::Mutex mutex;
  util::CondVar cv;
  std::size_t pending = n;
  for (std::size_t i = 0; i < n; ++i) {
    ServingBackend& target = replica(pick_round_robin());
    const bool ok =
        target.submit(vertices[i], meta, [&, i](InferResult&& result) {
          {
            util::MutexLock lock(mutex);
            results[i] = std::move(result);
            if (--pending == 0) cv.notify_all();
          }
          end_request();
        });
    if (!ok) {
      end_request();
      util::MutexLock lock(mutex);
      if (--pending == 0) cv.notify_all();
    }
  }
  util::MutexLock lock(mutex);
  while (pending != 0) cv.wait(lock);
  return results;
}

std::size_t ReplicaGroup::queue_depth() const {
  std::size_t depth = 0;
  for (const auto& replica : replicas_) depth += replica->queue_depth();
  return depth;
}

void ReplicaGroup::drain() {
  for (auto& replica : replicas_) replica->drain();
}

bool ReplicaGroup::accepting() const {
  for (const auto& replica : replicas_)
    if (!replica->accepting()) return false;
  return true;
}

double ReplicaGroup::mean_service_seconds() const {
  // Unweighted mean of the members' own (cheap-by-contract) estimates: this
  // sits on the admission path when a group nests behind a Router, so it
  // must not materialize full stats() snapshots per request.
  double total = 0;
  int observed = 0;
  for (const auto& replica : replicas_) {
    const double mean = replica->mean_service_seconds();
    if (mean > 0) {
      total += mean;
      ++observed;
    }
  }
  return observed == 0 ? 0.0 : total / static_cast<double>(observed);
}

int ReplicaGroup::concurrency() const {
  int total = 0;
  for (const auto& replica : replicas_) total += replica->concurrency();
  return total;
}

std::uint64_t ReplicaGroup::version() const {
  util::MutexLock lock(mutex_);
  return version_;
}

std::uint64_t ReplicaGroup::publishes() const {
  util::MutexLock lock(mutex_);
  return publishes_;
}

BackendStats ReplicaGroup::stats() const {
  BackendStats g;
  for (const auto& replica : replicas_) g.absorb(replica->stats());
  g.publishes = publishes();
  return g;
}

void ReplicaGroup::scrape(obs::MetricsSnapshot& out) const {
  out.add_counter("distgnn_group_publishes_total", {}, static_cast<double>(publishes()));
  for (const auto& replica : replicas_) replica->scrape(out);
}

void ReplicaGroup::collect_traces(std::vector<obs::Trace>& out) const {
  for (const auto& replica : replicas_) replica->collect_traces(out);
}

void ReplicaGroup::begin_requests(std::size_t n) {
  util::MutexLock lock(mutex_);
  while (publishing_) cv_.wait(lock);
  outstanding_ += n;
}

void ReplicaGroup::end_request() {
  util::MutexLock lock(mutex_);
  --outstanding_;
  if (outstanding_ == 0) cv_.notify_all();
}

std::shared_ptr<const ModelSnapshot> broadcast_snapshot(
    Communicator& comm, const ModelSpec& spec,
    std::shared_ptr<const ModelSnapshot> snapshot, int root) {
  // Payload = flattened weights + a 2-float version trailer (the 64-bit
  // version travels as two bit-cast 32-bit halves, as the sharded halo
  // protocol does for vertex ids).
  std::vector<real_t> payload;
  if (comm.rank() == root) {
    if (!snapshot) throw std::invalid_argument("broadcast_snapshot: root has no snapshot");
    payload = snapshot->flatten();
    const std::uint64_t v = snapshot->version();
    const std::uint32_t lo = static_cast<std::uint32_t>(v);
    const std::uint32_t hi = static_cast<std::uint32_t>(v >> 32);
    real_t flo, fhi;
    std::memcpy(&flo, &lo, sizeof(lo));
    std::memcpy(&fhi, &hi, sizeof(hi));
    payload.push_back(flo);
    payload.push_back(fhi);
  }
  comm.broadcast_v(payload, root);
  if (comm.rank() == root) return snapshot;

  if (payload.size() < 2)
    throw std::runtime_error("broadcast_snapshot: truncated payload");
  std::uint32_t lo = 0, hi = 0;
  std::memcpy(&lo, &payload[payload.size() - 2], sizeof(lo));
  std::memcpy(&hi, &payload[payload.size() - 1], sizeof(hi));
  const std::uint64_t version = (static_cast<std::uint64_t>(hi) << 32) | lo;
  return ModelSnapshot::from_flat(
      spec, std::span<const real_t>(payload.data(), payload.size() - 2), version);
}

}  // namespace distgnn::serve
