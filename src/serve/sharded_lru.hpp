// Generic sharded LRU — the storage engine shared by ShardedFeatureCache
// (raw feature rows) and EmbedCache (per-layer embedding rows).
//
// Extracted from ShardedFeatureCache so the serving tier has exactly one
// implementation of the sharded-LRU discipline: keys are hashed over
// `num_shards` independent LRUs, each behind its own mutex, so concurrent
// server workers rarely contend. Slot values are recycled in place (a
// std::vector<real_t> slot keeps its capacity across reuse), so steady-state
// operation performs no allocation. Object spaces keep separate CacheStats
// with cachesim's definitions — accesses, misses, and `charge_bytes` of fill
// traffic per miss — so every cache in the tree reports comparable numbers.
//
// Thread-safety: all public methods are safe to call concurrently; fill/use
// callbacks run under the owning shard's lock, so they must not re-enter the
// cache or block on communication (callers with a round-trip fill use the
// lookup()/insert() split instead, exactly as ShardedFeatureCache documents).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "cachesim/lru_cache.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace distgnn::serve {

/// Default key spreader: splitmix64 over std::hash, so sequential vertex ids
/// land on distinct shards (std::hash is identity for integers on libstdc++).
template <typename K>
struct SplitmixHash {
  std::uint64_t operator()(const K& key) const {
    return splitmix64(static_cast<std::uint64_t>(std::hash<K>{}(key)));
  }
};

template <typename K, typename V, typename Hash = SplitmixHash<K>>
class ShardedLru {
 public:
  /// `capacity_entries` is split evenly over shards (each shard holds at
  /// least one slot). `charge_bytes` is the CacheStats fill-traffic charge
  /// per miss/insert — the logical size of one cached object.
  ShardedLru(std::uint64_t capacity_entries, int num_shards, std::uint64_t charge_bytes)
      : charge_bytes_(charge_bytes) {
    if (num_shards < 1) throw std::invalid_argument("ShardedLru: need >= 1 shard");
    entries_per_shard_ = std::max<std::uint64_t>(
        1, capacity_entries / static_cast<std::uint64_t>(num_shards));
    shards_.reserve(static_cast<std::size_t>(num_shards));
    for (int i = 0; i < num_shards; ++i) {
      auto shard = std::make_unique<Shard>();
      // Construction-time population still takes the shard lock: nothing can
      // contend yet, and it keeps the guarded-member accesses provable.
      {
        util::MutexLock lock(shard->mutex);
        shard->slots.resize(entries_per_shard_);
        shard->free_list.reserve(entries_per_shard_);
        for (std::uint64_t e = 0; e < entries_per_shard_; ++e)
          shard->free_list.push_back(static_cast<int>(entries_per_shard_ - 1 - e));
      }
      shards_.push_back(std::move(shard));
    }
  }

  /// On hit: use(const V&) under the shard lock, entry becomes MRU. On miss:
  /// the LRU slot is reclaimed, fill(V&) produces the value in place, then
  /// use(const V&). Returns true on hit. Concurrent requests for the same
  /// key fill once (the fill runs under the shard lock).
  template <typename Fill, typename Use>
  bool get_or_fill(int space, const K& key, Fill&& fill, Use&& use) {
    Shard& s = shard_for(key);
    util::MutexLock lock(s.mutex);
    CacheStats& stats = stats_mut(s, space);
    ++stats.accesses;
    if (const int idx = find_and_touch(s, space, key); idx >= 0) {
      use(static_cast<const V&>(s.slots[static_cast<std::size_t>(idx)].value));
      return true;
    }
    ++stats.misses;
    stats.bytes_read += charge_bytes_;  // miss fill traffic, as in cachesim
    const int idx = fill_slot(s, space, key, fill);
    use(static_cast<const V&>(s.slots[static_cast<std::size_t>(idx)].value));
    return false;
  }

  /// Split miss path for callers whose fill is a communication round-trip
  /// that must not run under the shard lock: lookup() counts the access and,
  /// on miss, the miss; the caller then fetches and insert()s, which charges
  /// the fill bytes. A lookup-miss + insert pair charges the same counters
  /// as one get_or_fill miss.
  template <typename Use>
  bool lookup(int space, const K& key, Use&& use) {
    Shard& s = shard_for(key);
    util::MutexLock lock(s.mutex);
    CacheStats& stats = stats_mut(s, space);
    ++stats.accesses;
    const int idx = find_and_touch(s, space, key);
    if (idx < 0) {
      ++stats.misses;
      return false;
    }
    use(static_cast<const V&>(s.slots[static_cast<std::size_t>(idx)].value));
    return true;
  }

  /// Retains fill()'s value for `key`; a no-op (beyond the byte charge) when
  /// the key is already resident (raced fill).
  template <typename Fill>
  void insert(int space, const K& key, Fill&& fill) {
    Shard& s = shard_for(key);
    util::MutexLock lock(s.mutex);
    stats_mut(s, space).bytes_read += charge_bytes_;
    if (index_for(s, space).count(key) > 0) return;  // raced fill: already resident
    fill_slot(s, space, key, fill);
  }

  /// Drops every entry (hot-swap invalidation) without resetting statistics.
  void invalidate() {
    for (auto& shard : shards_) {
      util::MutexLock lock(shard->mutex);
      while (shard->head >= 0) evict_slot(*shard, shard->head);
    }
  }

  /// Drops one entry (targeted invalidation — a feature-row update dirties
  /// exactly that key). Returns true when an entry was resident and evicted.
  bool erase(int space, const K& key) {
    Shard& s = shard_for(key);
    util::MutexLock lock(s.mutex);
    if (static_cast<std::size_t>(space) >= s.index.size()) return false;
    auto& index = s.index[static_cast<std::size_t>(space)];
    const auto it = index.find(key);
    if (it == index.end()) return false;
    evict_slot(s, it->second);
    return true;
  }

  /// Visits every resident entry of `space`, letting `fn(K&)` rewrite the
  /// key in place: return false to evict the entry, true to keep it under
  /// the (possibly rewritten) key. The epoch-advance path uses this to
  /// promote clean entries to a new graph epoch and drop dirty ones in one
  /// sweep. Rewritten keys MUST keep their hash (same shard) — the entry is
  /// re-indexed within its shard only. A rewrite that collides with a key
  /// already resident in the shard drops the visited entry instead.
  template <typename Fn>
  void retag(int space, const Fn& fn) {
    std::vector<int> resident;
    for (auto& shard : shards_) {
      Shard& s = *shard;
      util::MutexLock lock(s.mutex);
      if (static_cast<std::size_t>(space) >= s.index.size()) continue;
      auto& index = s.index[static_cast<std::size_t>(space)];
      // Collect first: fn rewrites keys, which would invalidate a live
      // iteration over the index.
      resident.clear();
      resident.reserve(index.size());
      for (const auto& [key, idx] : index) resident.push_back(idx);
      for (const int idx : resident) {
        Slot& slot = s.slots[static_cast<std::size_t>(idx)];
        const K old_key = slot.key;
        if (!fn(slot.key)) {
          // evict_slot erases the index through slot.key, so the old key
          // must be back in place before it runs.
          slot.key = old_key;
          evict_slot(s, idx);
          continue;
        }
        if (slot.key == old_key) continue;
        index.erase(old_key);
        if (!index.emplace(slot.key, idx).second) {
          // Collision with a resident key: the old key is already erased, so
          // retire the slot directly rather than via evict_slot.
          unlink(s, idx);
          s.free_list.push_back(idx);
        }
      }
    }
  }

  std::uint64_t capacity_entries() const { return entries_per_shard_ * shards_.size(); }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Statistics aggregated over shards, per space / combined.
  CacheStats stats(int space) const {
    CacheStats out;
    if (space < 0) return out;
    for (const auto& shard : shards_) {
      util::MutexLock lock(shard->mutex);
      if (static_cast<std::size_t>(space) < shard->per_space.size())
        out += shard->per_space[static_cast<std::size_t>(space)];
    }
    return out;
  }

  CacheStats combined_stats() const {
    CacheStats out;
    for (const auto& shard : shards_) {
      util::MutexLock lock(shard->mutex);
      for (const CacheStats& s : shard->per_space) out += s;
    }
    return out;
  }

 private:
  struct Slot {
    K key{};
    int space = 0;
    int prev = -1;
    int next = -1;
    V value{};
  };

  struct Shard {
    mutable util::Mutex mutex;
    std::vector<Slot> slots GUARDED_BY(mutex);
    std::vector<int> free_list GUARDED_BY(mutex);
    int head GUARDED_BY(mutex) = -1;
    int tail GUARDED_BY(mutex) = -1;
    // One index per object space (spaces are small ordinals by convention).
    std::vector<std::unordered_map<K, int, Hash>> index GUARDED_BY(mutex);
    std::vector<CacheStats> per_space GUARDED_BY(mutex);
  };

  Shard& shard_for(const K& key) {
    return *shards_[static_cast<std::size_t>(Hash{}(key) % shards_.size())];
  }

  static CacheStats& stats_mut(Shard& s, int space) REQUIRES(s.mutex) {
    if (space < 0) throw std::out_of_range("ShardedLru: negative space id");
    if (static_cast<std::size_t>(space) >= s.per_space.size()) s.per_space.resize(space + 1);
    return s.per_space[static_cast<std::size_t>(space)];
  }

  static std::unordered_map<K, int, Hash>& index_for(Shard& s, int space) REQUIRES(s.mutex) {
    if (space < 0) throw std::out_of_range("ShardedLru: negative space id");
    if (static_cast<std::size_t>(space) >= s.index.size()) s.index.resize(space + 1);
    return s.index[static_cast<std::size_t>(space)];
  }

  static void unlink(Shard& s, int idx) REQUIRES(s.mutex) {
    Slot& e = s.slots[static_cast<std::size_t>(idx)];
    if (e.prev >= 0) s.slots[static_cast<std::size_t>(e.prev)].next = e.next;
    else s.head = e.next;
    if (e.next >= 0) s.slots[static_cast<std::size_t>(e.next)].prev = e.prev;
    else s.tail = e.prev;
    e.prev = e.next = -1;
  }

  static void push_front(Shard& s, int idx) REQUIRES(s.mutex) {
    Slot& e = s.slots[static_cast<std::size_t>(idx)];
    e.prev = -1;
    e.next = s.head;
    if (s.head >= 0) s.slots[static_cast<std::size_t>(s.head)].prev = idx;
    s.head = idx;
    if (s.tail < 0) s.tail = idx;
  }

  static void evict_slot(Shard& s, int idx) REQUIRES(s.mutex) {
    Slot& e = s.slots[static_cast<std::size_t>(idx)];
    index_for(s, e.space).erase(e.key);
    unlink(s, idx);
    s.free_list.push_back(idx);
  }

  /// Finds `key` and makes it MRU; -1 on miss.
  static int find_and_touch(Shard& s, int space, const K& key) REQUIRES(s.mutex) {
    auto& index = index_for(s, space);
    const auto it = index.find(key);
    if (it == index.end()) return -1;
    const int idx = it->second;
    unlink(s, idx);
    push_front(s, idx);
    return idx;
  }

  /// Reclaims a slot (evicting the LRU entry when full), runs `fill` into
  /// it, then binds it to (space, key) as MRU. The index is published only
  /// after the fill succeeds: a throwing fill returns the slot to the free
  /// list, so no key can ever resolve to a recycled victim's stale bytes.
  template <typename Fill>
  static int fill_slot(Shard& s, int space, const K& key, const Fill& fill) REQUIRES(s.mutex) {
    if (s.free_list.empty()) evict_slot(s, s.tail);
    const int idx = s.free_list.back();
    s.free_list.pop_back();
    Slot& slot = s.slots[static_cast<std::size_t>(idx)];
    try {
      fill(slot.value);
    } catch (...) {
      s.free_list.push_back(idx);
      throw;
    }
    slot.key = key;
    slot.space = space;
    index_for(s, space).emplace(key, idx);
    push_front(s, idx);
    return idx;
  }

  std::uint64_t charge_bytes_;
  std::uint64_t entries_per_shard_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace distgnn::serve
