#include "serve/router.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "util/rng.hpp"
#include "util/sync.hpp"

namespace distgnn::serve {

RoutePolicy parse_route_policy(const std::string& name) {
  if (name == "round-robin" || name == "rr") return RoutePolicy::kRoundRobin;
  if (name == "least-outstanding" || name == "lo") return RoutePolicy::kLeastOutstanding;
  if (name == "p2c" || name == "power-of-two") return RoutePolicy::kPowerOfTwo;
  throw std::invalid_argument("unknown routing policy '" + name +
                              "' (round-robin | least-outstanding | p2c)");
}

std::string route_policy_name(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kRoundRobin: return "round-robin";
    case RoutePolicy::kLeastOutstanding: return "least-outstanding";
    case RoutePolicy::kPowerOfTwo: return "p2c";
  }
  return "?";
}

Router::Router(ReplicaGroup& group, RoutePolicy policy, AdmissionConfig admission)
    : group_(group),
      policy_(policy),
      admission_(std::move(admission)),
      outstanding_(new std::atomic<std::uint64_t>[static_cast<std::size_t>(group.num_replicas())]),
      admitted_per_replica_(
          new std::atomic<std::uint64_t>[static_cast<std::size_t>(group.num_replicas())]) {
  for (int r = 0; r < group_.num_replicas(); ++r) {
    outstanding_[static_cast<std::size_t>(r)].store(0, std::memory_order_relaxed);
    admitted_per_replica_[static_cast<std::size_t>(r)].store(0, std::memory_order_relaxed);
  }
  {
    // Construction-time population still takes the lane lock: nothing can
    // contend yet, and it keeps the guarded-member accesses provable.
    util::MutexLock lock(stage_mutex_);
    for (const TenantSlo& slo : admission_.tenants) {
      TenantLane lane;
      lane.slo = slo;
      lane.bucket = TokenBucket(slo.rate_limit, slo.burst);
      lanes_.push_back(std::move(lane));
    }
    num_lanes_ = lanes_.size();
  }
  window_ = admission_.dispatch_window != 0
                ? admission_.dispatch_window
                : 2 * static_cast<std::size_t>(std::max(1, group_.concurrency()));
}

int Router::pick_replica() {
  const int n = group_.num_replicas();
  if (n == 1) return 0;
  switch (policy_) {
    case RoutePolicy::kRoundRobin:
      return static_cast<int>(rr_next_.fetch_add(1, std::memory_order_relaxed) %
                              static_cast<std::uint64_t>(n));
    case RoutePolicy::kLeastOutstanding: {
      int best = 0;
      std::uint64_t best_out = outstanding_[0].load(std::memory_order_relaxed);
      for (int r = 1; r < n; ++r) {
        const std::uint64_t out = outstanding_[static_cast<std::size_t>(r)].load(
            std::memory_order_relaxed);
        if (out < best_out) {
          best = r;
          best_out = out;
        }
      }
      return best;
    }
    case RoutePolicy::kPowerOfTwo: {
      // Two independent draws from a lock-free splitmix stream, then the
      // replica with the shallower queue wins (first draw on ties).
      const std::uint64_t d = p2c_draws_.fetch_add(2, std::memory_order_relaxed);
      const int a = static_cast<int>(splitmix64(admission_.seed ^ d) %
                                     static_cast<std::uint64_t>(n));
      const int b = static_cast<int>(splitmix64(admission_.seed ^ (d + 1)) %
                                     static_cast<std::uint64_t>(n));
      return group_.replica(b).queue_depth() < group_.replica(a).queue_depth() ? b : a;
    }
  }
  return 0;
}

bool Router::submit(vid_t vertex, std::function<void(InferResult&&)> done) {
  return submit(vertex, RequestMeta{}, std::move(done));
}

bool Router::submit(vid_t vertex, ServeClock::time_point deadline, Priority priority,
                    std::function<void(InferResult&&)> done) {
  return submit(vertex, RequestMeta{deadline, priority, kDefaultTenant, nullptr}, std::move(done));
}

bool Router::submit(vid_t vertex, const RequestMeta& meta,
                    std::function<void(InferResult&&)> done) {
  // Validate before reserving an admission slot: a throw after
  // begin_requests would leak the slot and wedge every later publish().
  if (vertex < 0 || vertex >= group_.dataset().num_vertices())
    throw std::out_of_range("Router: vertex id out of range");
  if (num_lanes_ != 0 &&
      (meta.tenant < 0 || static_cast<std::size_t>(meta.tenant) >= num_lanes_))
    throw std::out_of_range("Router: unknown tenant id");
  group_.begin_requests(1);
  if (num_lanes_ == 0) return route_one(vertex, meta, std::move(done));
  return admit_one(vertex, meta, std::move(done));
}

bool Router::route_one(vid_t vertex, const RequestMeta& meta,
                       std::function<void(InferResult&&)> done) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const int r = pick_replica();
  ServingBackend& replica = group_.replica(r);

  // Deadline admission: shed when the estimated completion time — queued
  // work ahead of us spread over the worker pool, plus our own service —
  // lands past the deadline. Estimates come from the replica's own observed
  // service rate, so the controller self-calibrates to the model and host.
  if (admission_.shed_deadlines && meta.deadline != ServeClock::time_point::max()) {
    const auto now = ServeClock::now();
    if (meta.deadline <= now) {
      shed_deadline_.fetch_add(1, std::memory_order_relaxed);
      group_.end_request();
      return false;
    }
    const double mean_service = replica.mean_service_seconds();
    if (mean_service > 0) {
      const double depth = static_cast<double>(
          outstanding_[static_cast<std::size_t>(r)].load(std::memory_order_relaxed));
      const double workers = static_cast<double>(replica.concurrency());
      const double estimate =
          mean_service * (depth / workers + 1.0) * admission_.estimate_margin;
      if (now + std::chrono::duration_cast<ServeClock::duration>(
                    std::chrono::duration<double>(estimate)) >
          meta.deadline) {
        shed_deadline_.fetch_add(1, std::memory_order_relaxed);
        group_.end_request();
        return false;
      }
    }
  }

  // Priority lane: once the target replica's queue is past the watermark,
  // low-priority work sheds so the burst headroom goes to the high lane.
  if (meta.priority == Priority::kLow && admission_.low_priority_depth > 0 &&
      replica.queue_depth() >= admission_.low_priority_depth) {
    shed_priority_.fetch_add(1, std::memory_order_relaxed);
    group_.end_request();
    return false;
  }

  outstanding_[static_cast<std::size_t>(r)].fetch_add(1, std::memory_order_relaxed);
  bool ok = false;
  try {
    ok = replica.submit(
        vertex, meta,
        [this, r, user_done = std::move(done)](InferResult&& result) mutable {
          outstanding_[static_cast<std::size_t>(r)].fetch_sub(1, std::memory_order_relaxed);
          completed_.fetch_add(1, std::memory_order_relaxed);
          if (user_done) user_done(std::move(result));
          group_.end_request();
        });
  } catch (...) {
    // Defensive: release the admission slot and the outstanding count so an
    // exotic throw cannot leave publish() waiting on a slot nobody holds.
    outstanding_[static_cast<std::size_t>(r)].fetch_sub(1, std::memory_order_relaxed);
    group_.end_request();
    throw;
  }
  if (!ok) {
    outstanding_[static_cast<std::size_t>(r)].fetch_sub(1, std::memory_order_relaxed);
    shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
    group_.end_request();
    return false;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  admitted_per_replica_[static_cast<std::size_t>(r)].fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool Router::admit_one(vid_t vertex, RequestMeta meta, std::function<void(InferResult&&)> done) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  // The first shed reason that fires wins; the admission slot is released
  // after the lock is dropped (end_request may wake a publish barrier, and
  // the lock hierarchy forbids calling into the group while holding it).
  std::atomic<std::uint64_t>* shed_reason = nullptr;
  {
    util::MutexLock lock(stage_mutex_);
    TenantLane& lane = lanes_[static_cast<std::size_t>(meta.tenant)];
    ++lane.submitted;

    // Token-bucket budget first: an over-budget tenant sheds regardless of
    // system load — that is what keeps its overload out of everyone's queues.
    const auto now = ServeClock::now();
    if (!lane.bucket.try_take(now)) shed_reason = &shed_budget_;

    // The tenant's SLO deadline applies when the caller did not set one.
    if (!shed_reason && meta.deadline == ServeClock::time_point::max() &&
        lane.slo.deadline_seconds > 0)
      meta.deadline = now + std::chrono::duration_cast<ServeClock::duration>(
                                std::chrono::duration<double>(lane.slo.deadline_seconds));

    // Deadline admission against the whole tier: work ahead of us is
    // everything staged or in flight, spread over the group's workers.
    if (!shed_reason && admission_.shed_deadlines &&
        meta.deadline != ServeClock::time_point::max()) {
      if (meta.deadline <= now) {
        shed_reason = &shed_deadline_;
      } else {
        const double mean_service = group_.mean_service_seconds();
        if (mean_service > 0) {
          const double depth = static_cast<double>(inflight_ + total_staged_);
          const double workers = static_cast<double>(std::max(1, group_.concurrency()));
          const double estimate =
              mean_service * (depth / workers + 1.0) * admission_.estimate_margin;
          if (now + std::chrono::duration_cast<ServeClock::duration>(
                        std::chrono::duration<double>(estimate)) >
              meta.deadline)
            shed_reason = &shed_deadline_;
        }
      }
    }

    if (!shed_reason && meta.priority == Priority::kLow &&
        admission_.low_priority_depth > 0 &&
        inflight_ + total_staged_ >= admission_.low_priority_depth)
      shed_reason = &shed_priority_;

    if (!shed_reason && lane.staged.size() >= lane.slo.stage_capacity)
      shed_reason = &shed_queue_full_;

    if (shed_reason) {
      shed_reason->fetch_add(1, std::memory_order_relaxed);
      ++lane.shed;
    } else {
      lane.staged.push_back(Staged{vertex, meta, std::move(done)});
      ++total_staged_;
      pump_locked();
    }
  }
  if (shed_reason) {
    group_.end_request();
    return false;
  }
  return true;
}

void Router::pump_locked() {
  while (inflight_ < window_ && total_staged_ > 0) {
    // Smooth weighted round-robin over the non-empty lanes: every candidate
    // gains its weight, the highest accumulator dispatches and pays back the
    // round's total — served shares converge to the weight ratio without
    // bursts (nginx's smooth-WRR).
    TenantLane* best = nullptr;
    double total = 0;
    for (TenantLane& lane : lanes_) {
      if (lane.staged.empty()) continue;
      lane.wrr_current += lane.slo.weight;
      total += lane.slo.weight;
      if (!best || lane.wrr_current > best->wrr_current) best = &lane;
    }
    if (!best) return;
    best->wrr_current -= total;

    Staged st = std::move(best->staged.front());
    best->staged.pop_front();
    --total_staged_;
    const tenant_t tenant = st.meta.tenant;
    const int r = pick_replica();
    ServingBackend& replica = group_.replica(r);
    outstanding_[static_cast<std::size_t>(r)].fetch_add(1, std::memory_order_relaxed);
    ++inflight_;

    // The callback is recoverable on a failed push (shared_ptr), because
    // submit() consumes the std::function even when it returns false.
    auto done_ptr = std::make_shared<std::function<void(InferResult&&)>>(std::move(st.done));
    bool ok = false;
    try {
      ok = replica.submit(
          st.vertex, st.meta, [this, r, tenant, done_ptr](InferResult&& result) {
            outstanding_[static_cast<std::size_t>(r)].fetch_sub(1, std::memory_order_relaxed);
            completed_.fetch_add(1, std::memory_order_relaxed);
            if (*done_ptr) (*done_ptr)(std::move(result));
            group_.end_request();
            util::MutexLock relock(stage_mutex_);
            ++lanes_[static_cast<std::size_t>(tenant)].completed;
            --inflight_;
            pump_locked();
          });
    } catch (...) {
      ok = false;
    }
    if (!ok) {
      outstanding_[static_cast<std::size_t>(r)].fetch_sub(1, std::memory_order_relaxed);
      --inflight_;
      if (inflight_ > 0) {
        // A completion will re-pump; park the request back at the front so
        // its lane keeps its weighted-fair position.
        st.done = std::move(*done_ptr);
        best->staged.push_front(std::move(st));
        ++total_staged_;
      } else {
        // Progress guarantee: with nothing in flight nobody would re-pump,
        // so the request sheds. Only reachable when a replica queue is
        // smaller than the dispatch window.
        shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
        ++lanes_[static_cast<std::size_t>(tenant)].shed;
        group_.end_request();
      }
      return;
    }
    admitted_.fetch_add(1, std::memory_order_relaxed);
    admitted_per_replica_[static_cast<std::size_t>(r)].fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<std::optional<InferResult>> Router::infer_batch(std::span<const vid_t> vertices) {
  return infer_batch(vertices, RequestMeta{});
}

std::vector<std::optional<InferResult>> Router::infer_batch(std::span<const vid_t> vertices,
                                                            ServeClock::time_point deadline,
                                                            Priority priority) {
  return infer_batch(vertices, RequestMeta{deadline, priority, kDefaultTenant, nullptr});
}

std::vector<std::optional<InferResult>> Router::infer_batch(std::span<const vid_t> vertices,
                                                            const RequestMeta& meta) {
  const std::size_t n = vertices.size();
  std::vector<std::optional<InferResult>> results(n);
  if (n == 0) return results;
  for (const vid_t v : vertices)
    if (v < 0 || v >= group_.dataset().num_vertices())
      throw std::out_of_range("Router: vertex id out of range");
  if (num_lanes_ != 0 &&
      (meta.tenant < 0 || static_cast<std::size_t>(meta.tenant) >= num_lanes_))
    throw std::out_of_range("Router: unknown tenant id");

  // Reserve the whole batch's admission slots atomically: a group publish
  // now has to wait until every request below completes, so all admitted
  // answers come from one snapshot version.
  group_.begin_requests(n);

  util::Mutex mutex;
  util::CondVar cv;
  std::size_t pending = 0;
  for (std::size_t i = 0; i < n; ++i) {
    {
      util::MutexLock lock(mutex);
      ++pending;
    }
    const auto on_done = [&, i](InferResult&& result) {
      util::MutexLock lock(mutex);
      results[i] = std::move(result);
      if (--pending == 0) cv.notify_all();
    };
    const bool ok = num_lanes_ == 0 ? route_one(vertices[i], meta, on_done)
                                    : admit_one(vertices[i], meta, on_done);
    if (!ok) {
      util::MutexLock lock(mutex);
      if (--pending == 0) cv.notify_all();
    }
  }
  util::MutexLock lock(mutex);
  while (pending != 0) cv.wait(lock);
  return results;
}

RouterStats RouterStats::since(const RouterStats& base) const {
  RouterStats d;
  d.submitted = submitted - base.submitted;
  d.admitted = admitted - base.admitted;
  d.completed = completed - base.completed;
  d.shed_deadline = shed_deadline - base.shed_deadline;
  d.shed_priority = shed_priority - base.shed_priority;
  d.shed_queue_full = shed_queue_full - base.shed_queue_full;
  d.shed_budget = shed_budget - base.shed_budget;
  d.admitted_per_replica.resize(admitted_per_replica.size());
  for (std::size_t r = 0; r < admitted_per_replica.size(); ++r)
    d.admitted_per_replica[r] =
        admitted_per_replica[r] - (r < base.admitted_per_replica.size()
                                       ? base.admitted_per_replica[r]
                                       : 0);
  for (const TenantCounters& lane : tenants) {
    TenantCounters delta = lane;
    for (const TenantCounters& b : base.tenants) {
      if (b.tenant != lane.tenant) continue;
      delta.submitted -= b.submitted;
      delta.completed -= b.completed;
      delta.shed -= b.shed;
      break;
    }
    d.tenants.push_back(delta);
  }
  return d;
}

RouterStats Router::stats() const {
  RouterStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  s.shed_priority = shed_priority_.load(std::memory_order_relaxed);
  s.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  s.shed_budget = shed_budget_.load(std::memory_order_relaxed);
  s.admitted_per_replica.resize(static_cast<std::size_t>(group_.num_replicas()));
  for (int r = 0; r < group_.num_replicas(); ++r)
    s.admitted_per_replica[static_cast<std::size_t>(r)] =
        admitted_per_replica_[static_cast<std::size_t>(r)].load(std::memory_order_relaxed);
  {
    util::MutexLock lock(stage_mutex_);
    for (std::size_t t = 0; t < lanes_.size(); ++t) {
      TenantCounters lane;
      lane.tenant = static_cast<tenant_t>(t);
      lane.submitted = lanes_[t].submitted;
      lane.completed = lanes_[t].completed;
      lane.shed = lanes_[t].shed;
      s.tenants.push_back(lane);
    }
  }
  return s;
}

void Router::scrape(obs::MetricsSnapshot& out) const {
  const RouterStats s = stats();
  out.add_counter("distgnn_router_submitted_total", {}, static_cast<double>(s.submitted));
  out.add_counter("distgnn_router_admitted_total", {}, static_cast<double>(s.admitted));
  out.add_counter("distgnn_router_completed_total", {}, static_cast<double>(s.completed));
  out.add_counter("distgnn_router_shed_total", {{"reason", "deadline"}},
                  static_cast<double>(s.shed_deadline));
  out.add_counter("distgnn_router_shed_total", {{"reason", "priority"}},
                  static_cast<double>(s.shed_priority));
  out.add_counter("distgnn_router_shed_total", {{"reason", "queue_full"}},
                  static_cast<double>(s.shed_queue_full));
  out.add_counter("distgnn_router_shed_total", {{"reason", "budget"}},
                  static_cast<double>(s.shed_budget));
  for (const TenantCounters& lane : s.tenants) {
    const obs::Labels labels{{"tenant", std::to_string(lane.tenant)}};
    out.add_counter("distgnn_router_tenant_submitted_total", labels,
                    static_cast<double>(lane.submitted));
    out.add_counter("distgnn_router_tenant_completed_total", labels,
                    static_cast<double>(lane.completed));
    out.add_counter("distgnn_router_tenant_shed_total", labels,
                    static_cast<double>(lane.shed));
  }
  group_.scrape(out);
}

void Router::collect_traces(std::vector<obs::Trace>& out) const { group_.collect_traces(out); }

LoadReport run_router_open_loop(Router& router, const RouterLoadConfig& config) {
  const std::vector<double> offsets = generate_arrivals(config.arrivals, config.num_requests);
  ReplicaGroup& group = router.group();
  const auto num_vertices = static_cast<std::uint64_t>(group.dataset().num_vertices());

  Rng rng(config.seed);
  std::vector<vid_t> targets;
  std::vector<Priority> priorities;
  targets.reserve(config.num_requests);
  priorities.reserve(config.num_requests);
  for (std::size_t i = 0; i < config.num_requests; ++i) {
    targets.push_back(static_cast<vid_t>(rng.next_below(num_vertices)));
    priorities.push_back(rng.next_double() < config.low_priority_fraction ? Priority::kLow
                                                                          : Priority::kHigh);
  }

  const GroupStats before = group.stats();
  LatencyRecorder latencies;
  util::Mutex done_mutex;
  util::CondVar done_cv;
  std::size_t accounted = 0;
  std::uint64_t shed = 0;
  const auto account = [&](bool was_shed) {
    util::MutexLock lock(done_mutex);
    if (was_shed) ++shed;
    ++accounted;
    if (accounted == config.num_requests) done_cv.notify_all();
  };

  const auto deadline_delta =
      std::chrono::duration_cast<ServeClock::duration>(
          std::chrono::duration<double>(config.deadline_seconds));
  const auto begin = ServeClock::now();
  for (std::size_t i = 0; i < config.num_requests; ++i) {
    std::this_thread::sleep_until(begin + std::chrono::duration<double>(offsets[i]));
    const auto deadline = config.deadline_seconds > 0 ? ServeClock::now() + deadline_delta
                                                      : ServeClock::time_point::max();
    const RequestMeta meta{deadline, priorities[i], config.tenant, nullptr};
    const bool admitted = router.submit(targets[i], meta, [&](InferResult&& result) {
      latencies.record(result.latency_seconds);
      account(false);
    });
    if (!admitted) account(true);
  }
  {
    util::MutexLock lock(done_mutex);
    while (accounted != config.num_requests) done_cv.wait(lock);
  }
  const double duration = std::chrono::duration<double>(ServeClock::now() - begin).count();

  const GroupStats after = group.stats();
  LoadReport report;
  report.label = std::string(config.arrivals.process == ArrivalProcess::kPoisson ? "poisson"
                                                                                 : "mmpp") +
                 "/" + route_policy_name(router.policy()) + "x" +
                 std::to_string(group.num_replicas());
  report.duration_seconds = duration;
  report.offered = config.num_requests;
  report.completed = config.num_requests - shed;
  report.rejected = shed;
  report.qps = duration > 0 ? static_cast<double>(report.completed) / duration : 0.0;
  fill_latency_fields(report, latencies);
  const std::uint64_t batches_delta = after.batches - before.batches;
  report.mean_batch = batches_delta == 0
                          ? 0.0
                          : static_cast<double>(after.batched_requests - before.batched_requests) /
                                static_cast<double>(batches_delta);
  return report;
}

}  // namespace distgnn::serve
