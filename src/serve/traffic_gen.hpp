// Load generation for the inference server: closed-loop clients (a fixed
// fleet of blocking callers — classic replay) and open-loop arrival-driven
// drivers, where requests land at scheduled instants whether or not the
// server has kept up. Open-loop is the mode that actually stresses a serving
// stack, and real traffic is bursty: besides Poisson we generate a 2-state
// Markov-modulated Poisson process (MMPP), whose count variance exceeds its
// mean (index of dispersion > 1, Asanjarani & Nazarathy, arXiv:1802.08400),
// so queue-delay tails appear at mean rates a Poisson test would shrug off.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "serve/inference_server.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace distgnn::serve {

/// Thread-safe latency sink: exact quantiles from retained samples plus a
/// log2-bucketed histogram for printing (bucket geometry shared with the
/// obs metrics registry via obs::latency_bucket, so the two can never
/// drift).
class LatencyRecorder {
 public:
  void record(double seconds);
  std::size_t count() const;
  double quantile(double q) const;  // q in [0, 1]; 0 samples -> 0
  double mean_seconds() const;

  /// Folds another recorder's samples into this one. Per-worker recorders
  /// merge on scrape — each client thread records into its own recorder
  /// contention-free, then the driver folds them once at the end.
  LatencyRecorder& operator+=(const LatencyRecorder& other);

  struct Bucket {
    double upper_seconds = 0;  // exclusive upper bound
    std::size_t count = 0;
  };
  /// Non-empty log2 buckets from 1µs upward, in ascending order.
  std::vector<Bucket> histogram() const;

 private:
  mutable util::Mutex mutex_;
  std::vector<double> samples_ GUARDED_BY(mutex_);
};

/// Zipf(s) popularity over [0, n): rank-r probability ∝ 1/r^s, with ranks
/// mapped to values through a permutation drawn from the construction rng so
/// popularity is uncorrelated with vertex id (and hence graph structure).
/// s = 1.0 is the classic web/query-log skew; larger s is hotter.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double s, Rng& rng);
  std::uint64_t draw(Rng& rng) const;
  std::uint64_t size() const { return values_.size(); }
  /// Probability mass of the hottest value (rank 1) — handy for tests and
  /// for sizing caches against a workload.
  double top_probability() const { return cdf_.front() / cdf_.back(); }

 private:
  std::vector<double> cdf_;               // cumulative 1/r^s over ranks
  std::vector<std::uint64_t> values_;     // rank -> value
};

enum class ArrivalProcess { kPoisson, kMmpp };

struct ArrivalConfig {
  ArrivalProcess process = ArrivalProcess::kPoisson;
  double rate = 1000.0;  // Poisson: mean requests/second

  // 2-state MMPP: Poisson at rate{0,1} while in the state, exponential
  // sojourns with the given mean. Defaults give a quiet state and a burst
  // state with the same long-run mean rate as `rate` ~ 1000/s.
  double mmpp_rate0 = 250.0;
  double mmpp_rate1 = 4000.0;
  double mmpp_hold0 = 0.040;  // mean seconds in state 0
  double mmpp_hold1 = 0.010;  // mean seconds in state 1

  std::uint64_t seed = 7;
};

/// `count` arrival offsets in seconds from t=0, ascending. Deterministic for
/// a fixed config.
std::vector<double> generate_arrivals(const ArrivalConfig& config, std::size_t count);

/// Variance-to-mean ratio of arrival counts over fixed windows — ~1 for
/// Poisson, >1 for bursty MMPP. Needs at least two full windows.
double index_of_dispersion(std::span<const double> arrivals, double window_seconds);

struct LoadReport {
  std::string label;
  double duration_seconds = 0;
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  double qps = 0;  // completed / duration
  double mean_ms = 0, p50_ms = 0, p95_ms = 0, p99_ms = 0;
  double p999_ms = 0;  // shed-rate evaluation needs tail resolution past p99
  double mean_batch = 0;  // server-side micro-batch occupancy during the run
  /// Compact log2-bucketed latency histogram (the full tail shape, for the
  /// bench JSON artifact; quantiles alone hide multi-modal tails).
  std::vector<LatencyRecorder::Bucket> histogram;
};

/// Copies mean/p50/p95/p99/p99.9 and the histogram out of a recorder.
void fill_latency_fields(LoadReport& report, const LatencyRecorder& latencies);

/// One row per report, rendered through util/table.
std::string render_load_reports(std::span<const LoadReport> reports, const std::string& title);

/// One measured pass of the embedding-cache workload (shared by serve_demo's
/// "embed cache summary" stage and bench_embed_cache, so the demo line and
/// the CI-asserted bench numbers cannot diverge protocol-wise): serve
/// `snapshot` through the embed-forward server with `cache_bytes` of
/// EmbedCache (0 = the uncached A/B baseline) and greedy batching (a hit
/// costs ~a row copy, so any batch-formation delay would drown the effect),
/// warm with one closed-loop Zipf pass, then measure a second pass drawn
/// from a fresh stream (seed + 1) over the same hot set. hit_rate covers the
/// measured pass only.
struct EmbedWorkloadReport {
  LoadReport load;
  double hit_rate = 0;
};
EmbedWorkloadReport run_embed_cache_workload(const Dataset& dataset,
                                             std::shared_ptr<const ModelSnapshot> snapshot,
                                             const ServeConfig& base, std::uint64_t cache_bytes,
                                             double zipf_s, std::uint64_t seed, int clients,
                                             int requests_per_client);

class TrafficGenerator {
 public:
  /// Drives any ServingBackend — a single InferenceServer, a ShardedServer,
  /// or a whole composed tier — through the uniform contract. Queries target
  /// random vertices of the backend's dataset, deterministically from
  /// `seed`. `zipf_s` sets the popularity skew: 0 (default) is uniform;
  /// s > 0 draws vertices Zipf(s)-distributed — rank-r popularity ∝ 1/r^s
  /// over a shuffled vertex order — the repeat-query workload that exercises
  /// the serving embedding cache (real query traffic is heavy-tailed, like
  /// the MMPP arrival side).
  /// The rank -> vertex shuffle is seeded by `zipf_perm_seed`, separate from
  /// the draw stream: generators with different `seed`s but the same
  /// permutation seed issue *different request sequences over the same hot
  /// set*, which is what makes warm-cache measurements honest.
  TrafficGenerator(ServingBackend& server, std::uint64_t seed, double zipf_s = 0.0,
                   std::uint64_t zipf_perm_seed = 71);

  /// `num_clients` threads each issue `requests_each` blocking queries.
  LoadReport run_closed_loop(int num_clients, int requests_each);

  /// Submits `num_requests` at the configured arrival instants and waits for
  /// the queue to drain. Requests bouncing off the full queue are rejections.
  LoadReport run_open_loop(const ArrivalConfig& arrivals, std::size_t num_requests);

 private:
  vid_t random_vertex();
  LoadReport finish(const std::string& label, double duration, std::uint64_t offered,
                    std::uint64_t completed, std::uint64_t rejected,
                    const LatencyRecorder& latencies, std::uint64_t batches_delta,
                    std::uint64_t batched_requests_delta) const;

  ServingBackend& server_;
  Rng rng_;
  std::optional<ZipfSampler> zipf_;  // nullopt = uniform popularity
};

}  // namespace distgnn::serve
