// Load generation for the inference server: closed-loop clients (a fixed
// fleet of blocking callers — classic replay) and open-loop arrival-driven
// drivers, where requests land at scheduled instants whether or not the
// server has kept up. Open-loop is the mode that actually stresses a serving
// stack, and real traffic is bursty: besides Poisson we generate a 2-state
// Markov-modulated Poisson process (MMPP), whose count variance exceeds its
// mean (index of dispersion > 1, Asanjarani & Nazarathy, arXiv:1802.08400),
// so queue-delay tails appear at mean rates a Poisson test would shrug off.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "serve/inference_server.hpp"
#include "util/rng.hpp"

namespace distgnn::serve {

/// Thread-safe latency sink: exact quantiles from retained samples plus a
/// log2-bucketed histogram for printing.
class LatencyRecorder {
 public:
  void record(double seconds);
  std::size_t count() const;
  double quantile(double q) const;  // q in [0, 1]; 0 samples -> 0
  double mean_seconds() const;

  struct Bucket {
    double upper_seconds = 0;  // exclusive upper bound
    std::size_t count = 0;
  };
  /// Non-empty log2 buckets from 1µs upward, in ascending order.
  std::vector<Bucket> histogram() const;

 private:
  mutable std::mutex mutex_;
  std::vector<double> samples_;
};

enum class ArrivalProcess { kPoisson, kMmpp };

struct ArrivalConfig {
  ArrivalProcess process = ArrivalProcess::kPoisson;
  double rate = 1000.0;  // Poisson: mean requests/second

  // 2-state MMPP: Poisson at rate{0,1} while in the state, exponential
  // sojourns with the given mean. Defaults give a quiet state and a burst
  // state with the same long-run mean rate as `rate` ~ 1000/s.
  double mmpp_rate0 = 250.0;
  double mmpp_rate1 = 4000.0;
  double mmpp_hold0 = 0.040;  // mean seconds in state 0
  double mmpp_hold1 = 0.010;  // mean seconds in state 1

  std::uint64_t seed = 7;
};

/// `count` arrival offsets in seconds from t=0, ascending. Deterministic for
/// a fixed config.
std::vector<double> generate_arrivals(const ArrivalConfig& config, std::size_t count);

/// Variance-to-mean ratio of arrival counts over fixed windows — ~1 for
/// Poisson, >1 for bursty MMPP. Needs at least two full windows.
double index_of_dispersion(std::span<const double> arrivals, double window_seconds);

struct LoadReport {
  std::string label;
  double duration_seconds = 0;
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  double qps = 0;  // completed / duration
  double mean_ms = 0, p50_ms = 0, p95_ms = 0, p99_ms = 0;
  double p999_ms = 0;  // shed-rate evaluation needs tail resolution past p99
  double mean_batch = 0;  // server-side micro-batch occupancy during the run
  /// Compact log2-bucketed latency histogram (the full tail shape, for the
  /// bench JSON artifact; quantiles alone hide multi-modal tails).
  std::vector<LatencyRecorder::Bucket> histogram;
};

/// Copies mean/p50/p95/p99/p99.9 and the histogram out of a recorder.
void fill_latency_fields(LoadReport& report, const LatencyRecorder& latencies);

/// One row per report, rendered through util/table.
std::string render_load_reports(std::span<const LoadReport> reports, const std::string& title);

class TrafficGenerator {
 public:
  /// Queries target uniformly random vertices of the server's dataset,
  /// deterministically from `seed`.
  TrafficGenerator(InferenceServer& server, std::uint64_t seed);

  /// `num_clients` threads each issue `requests_each` blocking queries.
  LoadReport run_closed_loop(int num_clients, int requests_each);

  /// Submits `num_requests` at the configured arrival instants and waits for
  /// the queue to drain. Requests bouncing off the full queue are rejections.
  LoadReport run_open_loop(const ArrivalConfig& arrivals, std::size_t num_requests);

 private:
  vid_t random_vertex();
  LoadReport finish(const std::string& label, double duration, std::uint64_t offered,
                    std::uint64_t completed, std::uint64_t rejected,
                    const LatencyRecorder& latencies, std::uint64_t batches_delta,
                    std::uint64_t batched_requests_delta) const;

  InferenceServer& server_;
  Rng rng_;
};

}  // namespace distgnn::serve
