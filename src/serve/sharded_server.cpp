#include "serve/sharded_server.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "partition/partition_setup.hpp"
#include "serve/inference_server.hpp"
#include "serve/prefetch.hpp"

namespace distgnn::serve {

namespace {

/// Idle-poll interval: long enough not to burn a core per idle rank, short
/// enough that a peer's halo request never stalls meaningfully behind it.
constexpr auto kIdlePoll = std::chrono::microseconds(20);

}  // namespace

std::vector<part_t> vertex_owners(const EdgeList& edges, const EdgePartition& partition,
                                  vid_t num_vertices) {
  const PartitionedGraph pg = build_partitions(edges, partition);
  std::vector<part_t> owners(static_cast<std::size_t>(num_vertices), kInvalidPart);
  for (const LocalPartition& part : pg.parts)
    for (std::size_t li = 0; li < part.global_ids.size(); ++li)
      if (part.owns_label[li]) owners[static_cast<std::size_t>(part.global_ids[li])] = part.id;
  for (std::size_t v = 0; v < owners.size(); ++v)
    if (owners[v] == kInvalidPart)
      owners[v] = static_cast<part_t>(v % static_cast<std::size_t>(partition.num_parts));
  return owners;
}

ShardedServer::ShardedServer(const Dataset& dataset, const EdgePartition& partition,
                             ShardedServeConfig config)
    : dataset_(dataset),
      num_vertices_(dataset.num_vertices()),
      config_(std::move(config)),
      num_parts_(partition.num_parts),
      world_(partition.num_parts) {
  if (num_parts_ < 1) throw std::invalid_argument("ShardedServer: need >= 1 partition part");
  if (config_.max_batch < 1) throw std::invalid_argument("ShardedServer: max_batch must be >= 1");
  if (config_.fanouts.empty()) throw std::invalid_argument("ShardedServer: fanouts empty");
  if (config_.prefetch_depth < 1)
    throw std::invalid_argument("ShardedServer: prefetch_depth must be >= 1");

  owner_ = vertex_owners(dataset_.graph.coo(), partition, dataset_.num_vertices());

  // Materialize each rank's feature shard: only owned rows — the rest of the
  // feature store is reachable solely through the halo protocol.
  const std::size_t f = static_cast<std::size_t>(dataset_.feature_dim());
  local_index_.resize(static_cast<std::size_t>(num_parts_));
  local_feats_.resize(static_cast<std::size_t>(num_parts_));
  {
    std::vector<std::vector<vid_t>> owned(static_cast<std::size_t>(num_parts_));
    for (vid_t v = 0; v < dataset_.num_vertices(); ++v)
      owned[static_cast<std::size_t>(owner_[static_cast<std::size_t>(v)])].push_back(v);
    for (part_t p = 0; p < num_parts_; ++p) {
      auto& ids = owned[static_cast<std::size_t>(p)];
      DenseMatrix& rows = local_feats_[static_cast<std::size_t>(p)];
      rows.resize_discard(ids.size(), f);
      for (std::size_t li = 0; li < ids.size(); ++li) {
        const real_t* src = dataset_.features.row(static_cast<std::size_t>(ids[li]));
        std::copy(src, src + f, rows.row(li));
        local_index_[static_cast<std::size_t>(p)].emplace(ids[li], li);
      }
    }
  }

  queues_.reserve(static_cast<std::size_t>(num_parts_));
  caches_.reserve(static_cast<std::size_t>(num_parts_));
  rank_states_.reserve(static_cast<std::size_t>(num_parts_));
  for (part_t p = 0; p < num_parts_; ++p) {
    queues_.push_back(std::make_unique<BoundedRequestQueue>(config_.queue_capacity));
    caches_.push_back(std::make_unique<ShardedFeatureCache>(config_.cache_bytes, f,
                                                            config_.cache_shards));
    rank_states_.push_back(std::make_unique<RankState>());
  }
  {
    util::MutexLock lock(embed_mutex_);
    embed_caches_.resize(static_cast<std::size_t>(num_parts_));
  }

  // Hot-swap hygiene for the per-rank layer-output caches (entries are
  // version-keyed, so this frees capacity rather than preventing staleness).
  holder_.set_on_publish([this](std::uint64_t) {
    util::MutexLock lock(embed_mutex_);
    for (auto& cache : embed_caches_)
      if (cache) cache->invalidate();
  });

  (void)dataset_.graph.in_csr();  // build once before the rank threads start
}

ShardedServer::~ShardedServer() { stop(); }

void ShardedServer::publish(std::shared_ptr<const ModelSnapshot> snapshot) {
  if (!snapshot) throw std::invalid_argument("ShardedServer: null snapshot");
  const ModelSpec& spec = snapshot->spec();
  if (spec.num_layers != static_cast<int>(config_.fanouts.size()))
    throw std::invalid_argument("ShardedServer: fanouts depth != model layers");
  if (spec.feature_dim != dataset_.feature_dim())
    throw std::invalid_argument("ShardedServer: snapshot feature_dim != dataset");
  if (spec.kind == ModelKind::kRgcn) {
    // Same typed-edge contract as InferenceServer: relation labels must be
    // present and match, and RGCN has no layer-cached embed-forward path.
    if (dataset_.num_edge_types != spec.num_relations)
      throw std::invalid_argument("ShardedServer: snapshot num_relations != dataset edge types");
    if (config_.embed_forward)
      throw std::invalid_argument("ShardedServer: embed_forward does not support RGCN");
  }
  if (config_.embed_forward && config_.embed_cache_bytes > 0) {
    util::MutexLock lock(embed_mutex_);
    if (!embed_caches_.front()) {
      // First publish fixes the cached row widths (as in InferenceServer);
      // capacity is split across ranks so the sharded tier's total embed
      // budget matches a single server's embed_cache_bytes.
      const std::uint64_t per_rank =
          std::max<std::uint64_t>(1, config_.embed_cache_bytes /
                                         static_cast<std::uint64_t>(num_parts_));
      for (auto& cache : embed_caches_)
        cache = std::make_unique<EmbedCache>(spec, per_rank, config_.embed_cache_shards,
                                             static_cast<std::uint64_t>(dataset_.num_vertices()));
    } else {
      for (int l = 1; l <= spec.num_layers; ++l)
        if (embed_caches_.front()->dim(l) != spec.out_dim(l - 1))
          throw std::invalid_argument("ShardedServer: snapshot dims != embed cache dims");
    }
  }
  holder_.publish(std::move(snapshot));
}

void ShardedServer::start() {
  if (running_.load(std::memory_order_acquire)) return;
  if (!holder_.get()) throw std::logic_error("ShardedServer: start() before publish()");
  for (auto& queue : queues_) queue->reopen();
  done_ranks_.store(0, std::memory_order_release);
  driver_ = std::thread([this] { world_.run([this](Communicator& comm) { rank_loop(comm); }); });
  running_.store(true, std::memory_order_release);
}

void ShardedServer::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  for (auto& queue : queues_) queue->close();  // no new admissions; drain the rest
  driver_.join();
  running_.store(false, std::memory_order_release);
}

bool ShardedServer::submit(vid_t vertex, const RequestMeta& meta,
                           std::function<void(InferResult&&)> done) {
  if (vertex < 0 || vertex >= num_vertices_)
    throw std::out_of_range("ShardedServer: vertex id out of range");
  const auto enqueue = ServeClock::now();
  InferRequest request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.vertex = vertex;
  request.enqueue = enqueue;
  request.deadline = meta.deadline;
  request.priority = meta.priority;
  request.tenant = meta.tenant;
  request.done = std::move(done);
  // Trace stamping happens entirely before the push (the rank thread owns
  // the request after the pop; the queue mutex orders the hand-off).
  if (meta.trace) {
    request.trace = meta.trace;
  } else if (config_.trace_sample_rate > 0 &&
             obs::trace_sampled(request.id, meta.tenant, config_.trace_sample_rate)) {
    request.trace = std::make_shared<obs::TraceContext>(
        request.id, meta.tenant, static_cast<std::int64_t>(vertex), enqueue);
  }
  const auto pre_push = ServeClock::now();
  if (request.trace) {
    request.trace->set_stage(obs::Stage::kAdmit, enqueue, pre_push);
    request.trace->begin_stage(obs::Stage::kQueue, pre_push);
  }
  const part_t target = owner_[static_cast<std::size_t>(vertex)];
  // Admitted is counted before the push so a drain() that starts after this
  // submit returns can never miss the request (the rejection path undoes it).
  admitted_.fetch_add(1, std::memory_order_release);
  if (queues_[static_cast<std::size_t>(target)]->try_push(std::move(request))) {
    stage_metrics_.submitted.with(meta.tenant).add();
    stage_metrics_.observe_stage(obs::Stage::kAdmit, meta.tenant,
                                 std::chrono::duration<double>(pre_push - enqueue).count());
    return true;
  }
  admitted_.fetch_sub(1, std::memory_order_release);
  rejected_.fetch_add(1, std::memory_order_relaxed);
  stage_metrics_.submitted.with(meta.tenant).add();
  stage_metrics_.shed.with(meta.tenant).add();
  return false;
}

std::size_t ShardedServer::queue_depth() const {
  std::size_t depth = 0;
  for (const auto& queue : queues_) depth += queue->size();
  return depth;
}

void ShardedServer::drain() {
  while (completed_.load(std::memory_order_acquire) < admitted_.load(std::memory_order_acquire))
    std::this_thread::sleep_for(kIdlePoll);
}

double ShardedServer::mean_service_seconds() const {
  const std::uint64_t completed = completed_.load(std::memory_order_relaxed);
  if (completed == 0) return 0.0;
  return static_cast<double>(service_ns_.load(std::memory_order_relaxed)) * 1e-9 /
         static_cast<double>(completed);
}

EmbedCache* ShardedServer::embed_cache_ptr(part_t rank) const {
  util::MutexLock lock(embed_mutex_);
  return embed_caches_[static_cast<std::size_t>(rank)].get();
}

BackendStats ShardedServer::stats() const {
  BackendStats s;
  for (part_t p = 0; p < num_parts_; ++p) {
    BackendStats child;
    {
      const RankState& state = *rank_states_[static_cast<std::size_t>(p)];
      util::MutexLock lock(state.mutex);
      child = state.stats;
    }
    child.children.clear();
    child.queue_depth = queues_[static_cast<std::size_t>(p)]->size();
    child.feature_cache = caches_[static_cast<std::size_t>(p)]->stats(/*space=*/0);
    child.halo_cache = caches_[static_cast<std::size_t>(p)]->stats(/*space=*/1);
    if (const EmbedCache* cache = embed_cache_ptr(p)) child.embed_cache = cache->combined_stats();
    s.absorb(std::move(child));
  }
  s.rejected = rejected_.load(std::memory_order_relaxed);  // counted at submit, not per rank
  s.publishes = holder_.num_publishes();
  // Tenant lanes are accounted at the server edge, not per rank; they (and
  // the latency fold) come straight out of the sharded metrics.
  s.tenants.clear();
  stage_metrics_.submitted.for_each(
      [&](int id, const obs::Counter& c) { s.tenant_lane(id).submitted = c.value(); });
  stage_metrics_.completed.for_each(
      [&](int id, const obs::Counter& c) { s.tenant_lane(id).completed = c.value(); });
  stage_metrics_.shed.for_each(
      [&](int id, const obs::Counter& c) { s.tenant_lane(id).shed = c.value(); });
  s.latency = obs::HistogramData{};
  stage_metrics_.request_seconds.for_each(
      [&](int, const obs::Histogram& h) { s.latency += h.snapshot(); });
  return s;
}

void ShardedServer::scrape(obs::MetricsSnapshot& out) const { metrics_.scrape(out); }

void ShardedServer::collect_traces(std::vector<obs::Trace>& out) const {
  trace_sink_.collect(out);
}

void ShardedServer::finish_requests(std::vector<InferRequest>& batch, const DenseMatrix& logits,
                                    std::uint64_t snapshot_version,
                                    ServeClock::time_point service_begin, RankState& state,
                                    const obs::BatchStageTimes& stages) {
  const auto now = ServeClock::now();
  auto reply_begin = now;  // each request's reply window starts where the previous ended
  for (std::size_t r = 0; r < batch.size(); ++r) {
    InferRequest& request = batch[r];
    InferResult result;
    result.request_id = request.id;
    result.vertex = request.vertex;
    result.logits.assign(logits.row(r), logits.row(r) + logits.cols());
    result.latency_seconds = std::chrono::duration<double>(now - request.enqueue).count();
    result.snapshot_version = snapshot_version;
    result.tenant = request.tenant;

    // Batch-level stage windows stamped per request (see InferenceServer::
    // finish_batch): queue ended when the rank popped the batch.
    stage_metrics_.observe_stage(
        obs::Stage::kQueue, request.tenant,
        std::chrono::duration<double>(service_begin - request.enqueue).count());
    if (stages.sample.valid())
      stage_metrics_.observe_stage(obs::Stage::kSample, request.tenant,
                                   stages.sample.duration_seconds());
    if (stages.halo_wait.valid())
      stage_metrics_.observe_stage(obs::Stage::kHaloWait, request.tenant,
                                   stages.halo_wait.duration_seconds());
    if (stages.embed_lookup.valid())
      stage_metrics_.observe_stage(obs::Stage::kEmbedLookup, request.tenant,
                                   stages.embed_lookup.duration_seconds());
    if (stages.forward.valid())
      stage_metrics_.observe_stage(obs::Stage::kForward, request.tenant,
                                   stages.forward.duration_seconds());
    if (request.trace) {
      obs::TraceContext& trace = *request.trace;
      trace.end_stage(obs::Stage::kQueue, service_begin);
      if (stages.sample.valid()) trace.set_stage(obs::Stage::kSample, stages.sample);
      if (stages.halo_wait.valid()) trace.set_stage(obs::Stage::kHaloWait, stages.halo_wait);
      if (stages.embed_lookup.valid())
        trace.set_stage(obs::Stage::kEmbedLookup, stages.embed_lookup);
      if (stages.forward.valid()) trace.set_stage(obs::Stage::kForward, stages.forward);
      // Trace reply span starts at batch finish so a later rider's wait on
      // its predecessors' callbacks stays inside its spans (coverage); the
      // histogram keeps the chained marginal window below.
      trace.begin_stage(obs::Stage::kReply, now);
    }

    if (request.done) request.done(std::move(result));
    const auto reply_end = ServeClock::now();
    stage_metrics_.observe_stage(obs::Stage::kReply, request.tenant,
                                 std::chrono::duration<double>(reply_end - reply_begin).count());
    stage_metrics_.request_seconds.with(request.tenant)
        .observe(std::chrono::duration<double>(reply_end - request.enqueue).count());
    stage_metrics_.completed.with(request.tenant).add();
    if (request.trace) {
      request.trace->end_stage(obs::Stage::kReply, reply_end);
      trace_sink_.publish(request.trace->finish(reply_end));
    }
    reply_begin = reply_end;
  }

  const auto service_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(ServeClock::now() - service_begin)
          .count());
  {
    util::MutexLock lock(state.mutex);
    state.stats.completed += batch.size();
    state.stats.batches += 1;
    state.stats.batched_requests += batch.size();
    state.stats.max_batch_seen = std::max<std::uint64_t>(state.stats.max_batch_seen, batch.size());
    state.stats.service_seconds += static_cast<double>(service_ns) * 1e-9;
  }
  service_ns_.fetch_add(service_ns, std::memory_order_relaxed);
  // completed_ is the drain()/publish-barrier signal: it must go last, after
  // every callback has run.
  completed_.fetch_add(batch.size(), std::memory_order_release);
}

void ShardedServer::apply_graph_update(const std::function<void()>& apply,
                                       const GraphUpdateNotice& notice) {
  // Pause rendezvous (live server only): raise the flag, wait until every
  // rank has drained its ring and parked. Classic ranks keep answering halo
  // requests while parked, so slower ranks can always finish draining.
  const bool live = running_.load(std::memory_order_acquire);
  if (live) {
    pause_flag_.store(true, std::memory_order_release);
    util::MutexLock lock(pause_mutex_);
    while (paused_ranks_ != num_parts_) pause_cv_.wait(lock);
  }

  if (apply) apply();

  // Re-materialize updated feature rows into their owners' local shards.
  // Ownership is structural (vertex-cut of the edge set) and we do not
  // re-home vertices on delta, so every updated row already has a slot.
  const std::size_t f = static_cast<std::size_t>(dataset_.feature_dim());
  for (const vid_t v : notice.features) {
    const part_t p = owner_[static_cast<std::size_t>(v)];
    const auto& index = local_index_[static_cast<std::size_t>(p)];
    const auto it = index.find(v);
    if (it == index.end()) continue;  // vertex added after construction: served via halo/cache
    const real_t* src = dataset_.features.row(static_cast<std::size_t>(v));
    std::copy(src, src + f, local_feats_[static_cast<std::size_t>(p)].row(it->second));
  }

  // Invalidate per-rank caches: feature rows by id in both spaces (0 = local/
  // embed rows, 1 = halo rows — a stale halo copy is as wrong as a stale
  // local one), then the layer-output caches via targeted epoch advance.
  for (part_t p = 0; p < num_parts_; ++p) {
    ShardedFeatureCache& cache = *caches_[static_cast<std::size_t>(p)];
    for (const vid_t v : notice.features) {
      cache.erase(/*space=*/0, static_cast<std::uint64_t>(v));
      cache.erase(/*space=*/1, static_cast<std::uint64_t>(v));
    }
    if (EmbedCache* embed = embed_cache_ptr(p)) {
      if (notice.full_flush)
        embed->invalidate();
      else
        embed->advance_epoch(notice.epoch, notice.dirty_layers);
    }
  }
  graph_epoch_.store(notice.epoch, std::memory_order_release);

  if (live) {
    pause_flag_.store(false, std::memory_order_release);
    util::MutexLock lock(pause_mutex_);
    while (paused_ranks_ != 0) pause_cv_.wait(lock);
  }
}

void ShardedServer::rank_loop(Communicator& comm) {
  const part_t me = static_cast<part_t>(comm.rank());
  if (config_.embed_forward)
    run_embed_rank(comm, me);
  else
    run_classic_rank(comm, me);
}

void ShardedServer::run_classic_rank(Communicator& comm, part_t me) {
  BoundedRequestQueue& queue = *queues_[static_cast<std::size_t>(me)];
  ShardedFeatureCache& cache = *caches_[static_cast<std::size_t>(me)];
  RankState& state = *rank_states_[static_cast<std::size_t>(me)];
  HaloFetcher fetcher(comm, owner_, local_feats_[static_cast<std::size_t>(me)],
                      local_index_[static_cast<std::size_t>(me)], cache);
  ForwardScratch scratch;
  DenseMatrix logits;

  // Halo-counter baseline: the fetcher is fresh per start(), but rank stats
  // accumulate across restarts.
  std::uint64_t base_rows, base_bytes;
  double base_wait;
  {
    util::MutexLock lock(state.mutex);
    base_rows = state.stats.halo_rows_fetched;
    base_bytes = state.stats.halo_bytes;
    base_wait = state.stats.halo_wait_seconds;
  }
  const auto flush_halo = [&] {
    const HaloFetchStats& fs = fetcher.stats();
    util::MutexLock lock(state.mutex);
    state.stats.halo_rows_fetched = base_rows + fs.halo_rows_fetched;
    state.stats.halo_bytes = base_bytes + fs.halo_bytes;
    state.stats.halo_wait_seconds = base_wait + fs.wait_seconds;
  };

  // Ring of in-flight halo batches. A slot holds everything a batch needs
  // between begin_fetch and its forward; slots recycle so steady state never
  // allocates. The snapshot is pinned at admission, so a hot-swap never
  // tears a batch.
  struct Slot {
    HaloBatch halo;
    std::vector<InferRequest> requests;
    std::shared_ptr<const ModelSnapshot> snapshot;
    ServeClock::time_point service_begin;
    ServeClock::time_point sample_end;  // sampling done; halo_wait starts here
  };
  const int depth = config_.prefetch_depth;
  std::vector<Slot> slots(static_cast<std::size_t>(depth));
  std::vector<Slot*> free_slots;
  for (Slot& slot : slots) free_slots.push_back(&slot);
  std::deque<Slot*> in_flight;

  const auto admit_next = [&]() -> bool {
    if (free_slots.empty()) return false;
    std::vector<InferRequest> batch = queue.try_pop_batch(config_.max_batch);
    if (batch.empty()) return false;
    // Re-read the CSR per batch: a graph delta swaps dataset_.graph while
    // every rank is parked (ring drained), so a reference captured once at
    // loop entry would dangle after the first apply.
    const CsrMatrix& in_csr = dataset_.graph.in_csr();
    Slot* slot = free_slots.back();
    free_slots.pop_back();
    slot->requests = std::move(batch);
    slot->snapshot = holder_.get();
    slot->service_begin = ServeClock::now();
    slot->halo.minibatches.clear();
    // RGCN blocks need relation labels per sampled edge; the typed sampler
    // draws the identical RNG stream, so SAGE/GAT answers are unaffected.
    const std::vector<int>* edge_types =
        slot->snapshot->spec().kind == ModelKind::kRgcn ? &dataset_.edge_types : nullptr;
    for (const InferRequest& request : slot->requests) {
      Rng rng = request_rng(config_.sample_seed, request.vertex);
      const vid_t seed[1] = {request.vertex};
      slot->halo.minibatches.push_back(
          sample_minibatch(in_csr, seed, config_.fanouts, rng, edge_types));
    }
    slot->sample_end = ServeClock::now();
    fetcher.begin_fetch(slot->halo);
    in_flight.push_back(slot);
    return true;
  };

  // Graph-update rendezvous: once the ring is drained, count into the pause
  // and wait it out while still answering peers' halo requests — another
  // rank may be draining batches that need our rows. With every rank parked
  // no halo message is in flight, so the updater can mutate local_feats_.
  const auto park_for_update = [&] {
    util::MutexLock lock(pause_mutex_);
    ++paused_ranks_;
    pause_cv_.notify_all();
    while (pause_flag_.load(std::memory_order_acquire)) {
      lock.unlock();
      fetcher.service_peers();
      std::this_thread::sleep_for(kIdlePoll);
      lock.lock();
    }
    --paused_ranks_;
    pause_cv_.notify_all();
  };

  while (true) {
    fetcher.service_peers();
    const bool pausing = pause_flag_.load(std::memory_order_acquire);
    // Keep the ring full: batches N+1..N+depth-1 have their halo requests
    // riding the wire (and the peers' service loops) while batch N's
    // forward runs below. A pending pause stops admission so the ring
    // drains to the rendezvous at a batch boundary.
    while (!pausing && static_cast<int>(in_flight.size()) < depth && admit_next()) {
    }
    if (in_flight.empty()) {
      if (pausing) {
        park_for_update();
        continue;
      }
      // Exit only once the queue is closed AND drained: a stop flag alone
      // would race a producer whose try_push lands between our emptiness
      // check and stop()'s close(), stranding an admitted request forever.
      if (queue.closed() && queue.size() == 0) break;
      std::this_thread::sleep_for(kIdlePoll);
      continue;
    }
    Slot* slot = in_flight.front();
    in_flight.pop_front();
    fetcher.finish_fetch(slot->halo);  // FIFO channels: finish in begin order
    // halo_wait spans begin_fetch -> finish_fetch return: ring residency
    // while peers reply (the time prefetch overlaps away) plus any blocked
    // tail — exactly the window a request spends waiting on remote rows.
    const auto halo_end = ServeClock::now();
    slot->snapshot->forward_batch(slot->halo.minibatches, slot->halo.inputs.cview(), scratch,
                                  logits);
    const auto forward_end = ServeClock::now();
    obs::BatchStageTimes stages;
    stages.sample = obs::make_span(slot->service_begin, slot->sample_end);
    stages.halo_wait = obs::make_span(slot->sample_end, halo_end);
    stages.forward = obs::make_span(halo_end, forward_end);
    finish_requests(slot->requests, logits, slot->snapshot->version(), slot->service_begin,
                    state, stages);
    flush_halo();
    slot->snapshot.reset();
    free_slots.push_back(slot);
  }

  // A peer may still be waiting on our halo replies: keep servicing until
  // every rank has drained its own queue, then leave together.
  done_ranks_.fetch_add(1, std::memory_order_acq_rel);
  while (done_ranks_.load(std::memory_order_acquire) < num_parts_) {
    fetcher.service_peers();
    std::this_thread::sleep_for(kIdlePoll);
  }
  flush_halo();
}

void ShardedServer::run_embed_rank(Communicator& comm, part_t me) {
  (void)comm;  // embed mode exchanges no halo messages — layer-0 rows come
               // through the shared in-process feature store via the rank's
               // feature cache — so the loop is a plain poll over the queue.
  BoundedRequestQueue& queue = *queues_[static_cast<std::size_t>(me)];
  RankState& state = *rank_states_[static_cast<std::size_t>(me)];
  EmbedForward evaluator(dataset_, config_.fanouts, config_.sample_seed, embed_cache_ptr(me),
                         caches_[static_cast<std::size_t>(me)].get());
  std::vector<vid_t> seeds;
  DenseMatrix logits;

  // Embed ranks exchange no halo traffic, so the graph-update park is a
  // plain sleep (no peers to service while waiting).
  const auto park_for_update = [&] {
    util::MutexLock lock(pause_mutex_);
    ++paused_ranks_;
    pause_cv_.notify_all();
    while (pause_flag_.load(std::memory_order_acquire)) {
      lock.unlock();
      std::this_thread::sleep_for(kIdlePoll);
      lock.lock();
    }
    --paused_ranks_;
    pause_cv_.notify_all();
  };

  while (true) {
    if (pause_flag_.load(std::memory_order_acquire)) {
      park_for_update();
      continue;
    }
    std::vector<InferRequest> batch = queue.try_pop_batch(config_.max_batch);
    if (batch.empty()) {
      if (queue.closed() && queue.size() == 0) break;  // see run_classic_rank
      std::this_thread::sleep_for(kIdlePoll);
      continue;
    }
    const auto service_begin = ServeClock::now();
    const std::shared_ptr<const ModelSnapshot> snapshot = holder_.get();
    seeds.clear();
    for (const InferRequest& request : batch) seeds.push_back(request.vertex);
    evaluator.infer(*snapshot, seeds, logits, graph_epoch_.load(std::memory_order_acquire));
    obs::BatchStageTimes stages;
    stages.embed_lookup = obs::make_span(service_begin, ServeClock::now());
    finish_requests(batch, logits, snapshot->version(), service_begin, state, stages);
  }

  done_ranks_.fetch_add(1, std::memory_order_acq_rel);
  while (done_ranks_.load(std::memory_order_acquire) < num_parts_)
    std::this_thread::sleep_for(kIdlePoll);
}

}  // namespace distgnn::serve
