#include "serve/sharded_server.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "partition/partition_setup.hpp"
#include "serve/inference_server.hpp"
#include "serve/prefetch.hpp"

namespace distgnn::serve {

namespace {

// Round-barrier tag; the feature request/response tags (9101/9102) live in
// serve/prefetch.cpp with the halo protocol itself.
constexpr int kTagRoundDone = 9103;

}  // namespace

std::uint64_t ShardedServeReport::total_halo_rows() const {
  std::uint64_t total = 0;
  for (const ShardedRankStats& s : per_rank) total += s.halo_rows_fetched;
  return total;
}

double ShardedServeReport::mean_halo_wait_per_batch() const {
  double wait = 0;
  std::uint64_t batches = 0;
  for (const ShardedRankStats& s : per_rank) {
    wait += s.halo_wait_seconds;
    batches += s.batches;
  }
  return batches == 0 ? 0.0 : wait / static_cast<double>(batches);
}

std::vector<part_t> vertex_owners(const EdgeList& edges, const EdgePartition& partition,
                                  vid_t num_vertices) {
  const PartitionedGraph pg = build_partitions(edges, partition);
  std::vector<part_t> owners(static_cast<std::size_t>(num_vertices), kInvalidPart);
  for (const LocalPartition& part : pg.parts)
    for (std::size_t li = 0; li < part.global_ids.size(); ++li)
      if (part.owns_label[li]) owners[static_cast<std::size_t>(part.global_ids[li])] = part.id;
  for (std::size_t v = 0; v < owners.size(); ++v)
    if (owners[v] == kInvalidPart)
      owners[v] = static_cast<part_t>(v % static_cast<std::size_t>(partition.num_parts));
  return owners;
}

ShardedServeReport serve_sharded(World& world, const Dataset& dataset,
                                 const EdgePartition& partition,
                                 std::shared_ptr<const ModelSnapshot> snapshot,
                                 std::span<const vid_t> requests,
                                 const ShardedServeConfig& config) {
  const part_t num_parts = partition.num_parts;
  if (world.num_ranks() != num_parts)
    throw std::invalid_argument("serve_sharded: world ranks != partition parts");
  if (!snapshot) throw std::invalid_argument("serve_sharded: null snapshot");
  if (snapshot->spec().num_layers != static_cast<int>(config.fanouts.size()))
    throw std::invalid_argument("serve_sharded: fanouts depth != model layers");
  if (snapshot->spec().feature_dim != dataset.feature_dim())
    throw std::invalid_argument("serve_sharded: snapshot feature_dim != dataset");

  ShardedServeReport report;
  report.owner = vertex_owners(dataset.graph.coo(), partition, dataset.num_vertices());
  report.results.resize(requests.size());
  report.per_rank.resize(static_cast<std::size_t>(num_parts));

  // Route every request to the owner of its vertex, and materialize each
  // rank's feature shard: only owned rows — the rest of the feature store is
  // reachable solely through the halo protocol.
  std::vector<std::vector<std::size_t>> routed(static_cast<std::size_t>(num_parts));
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const vid_t v = requests[i];
    if (v < 0 || v >= dataset.num_vertices())
      throw std::out_of_range("serve_sharded: request vertex out of range");
    routed[static_cast<std::size_t>(report.owner[static_cast<std::size_t>(v)])].push_back(i);
  }
  const std::size_t f = static_cast<std::size_t>(dataset.feature_dim());
  std::vector<std::unordered_map<vid_t, std::size_t>> local_index(
      static_cast<std::size_t>(num_parts));
  std::vector<DenseMatrix> local_feats(static_cast<std::size_t>(num_parts));
  {
    std::vector<std::vector<vid_t>> owned(static_cast<std::size_t>(num_parts));
    for (vid_t v = 0; v < dataset.num_vertices(); ++v)
      owned[static_cast<std::size_t>(report.owner[static_cast<std::size_t>(v)])].push_back(v);
    for (part_t p = 0; p < num_parts; ++p) {
      auto& ids = owned[static_cast<std::size_t>(p)];
      DenseMatrix& rows = local_feats[static_cast<std::size_t>(p)];
      rows.resize_discard(ids.size(), f);
      for (std::size_t li = 0; li < ids.size(); ++li) {
        const real_t* src = dataset.features.row(static_cast<std::size_t>(ids[li]));
        std::copy(src, src + f, rows.row(li));
        local_index[static_cast<std::size_t>(p)].emplace(ids[li], li);
      }
    }
  }

  (void)dataset.graph.in_csr();  // build once before the rank threads start

  world.run([&](Communicator& comm) {
    const part_t me = static_cast<part_t>(comm.rank());
    const CsrMatrix& in_csr = dataset.graph.in_csr();
    const std::vector<std::size_t>& my_requests = routed[static_cast<std::size_t>(me)];
    ShardedRankStats& stats = report.per_rank[static_cast<std::size_t>(me)];

    ShardedFeatureCache cache(config.cache_bytes, f, config.cache_shards);
    HaloFetcher fetcher(comm, report.owner, local_feats[static_cast<std::size_t>(me)],
                        local_index[static_cast<std::size_t>(me)], cache);
    ForwardScratch scratch;
    DenseMatrix logits;

    const std::size_t batch_size = static_cast<std::size_t>(config.max_batch);
    const std::size_t my_batches = (my_requests.size() + batch_size - 1) / batch_size;
    const auto all_counts = comm.allgather(static_cast<std::int64_t>(my_batches));
    const std::size_t rounds = static_cast<std::size_t>(
        *std::max_element(all_counts.begin(), all_counts.end()));

    // Double buffer: with prefetch on, batch round+1's halo requests go out
    // before round's forward runs, so peer replies overlap compute. The sync
    // path uses buffer 0 only, begin/finish back to back.
    HaloBatch buffers[2];
    const auto sample_and_begin = [&](std::size_t round_index, HaloBatch& batch) {
      const std::size_t begin = round_index * batch_size;
      const std::size_t end = std::min(my_requests.size(), begin + batch_size);
      batch.minibatches.clear();
      for (std::size_t i = begin; i < end; ++i) {
        const vid_t v = requests[my_requests[i]];
        Rng rng = request_rng(config.sample_seed, v);
        const vid_t seed[1] = {v};
        batch.minibatches.push_back(sample_minibatch(in_csr, seed, config.fanouts, rng));
      }
      fetcher.begin_fetch(batch);
    };

    if (config.prefetch && my_batches > 0) sample_and_begin(0, buffers[0]);

    for (std::size_t round = 0; round < rounds; ++round) {
      if (round < my_batches) {
        HaloBatch& batch = buffers[config.prefetch ? round % 2 : 0];
        if (config.prefetch) {
          // Issue the next batch's requests first: they ride the wire (and
          // the peers' service loops) while this batch's forward runs below.
          if (round + 1 < my_batches) sample_and_begin(round + 1, buffers[(round + 1) % 2]);
        } else {
          sample_and_begin(round, batch);
        }
        fetcher.finish_fetch(batch);

        snapshot->forward_batch(batch.minibatches, batch.inputs.cview(), scratch, logits);
        const std::size_t begin = round * batch_size;
        const std::size_t end = std::min(my_requests.size(), begin + batch_size);
        for (std::size_t r = 0; r < end - begin; ++r) {
          const std::size_t global = my_requests[begin + r];
          InferResult& result = report.results[global];
          result.request_id = global;
          result.vertex = requests[global];
          result.logits.assign(logits.row(r), logits.row(r) + logits.cols());
          result.snapshot_version = snapshot->version();
        }
        stats.served += end - begin;
        ++stats.batches;
      }

      // Service-while-waiting round barrier: a plain barrier would deadlock
      // (a busy rank can be blocked on our halo reply while we sit in the
      // barrier), so idle ranks keep answering until every peer checks in.
      for (part_t p = 0; p < num_parts; ++p)
        if (p != me) comm.send(p, kTagRoundDone, std::vector<real_t>{1.0f});
      std::vector<std::uint8_t> seen(static_cast<std::size_t>(num_parts), 0);
      int tokens = 0;
      while (tokens < num_parts - 1) {
        fetcher.service_peers();
        for (part_t p = 0; p < num_parts; ++p) {
          if (p == me || seen[static_cast<std::size_t>(p)]) continue;
          if (comm.try_recv(p, kTagRoundDone)) {
            seen[static_cast<std::size_t>(p)] = 1;
            ++tokens;
          }
        }
        std::this_thread::yield();
      }
    }

    const HaloFetchStats& fetched = fetcher.stats();
    stats.halo_rows_fetched = fetched.halo_rows_fetched;
    stats.halo_bytes = fetched.halo_bytes;
    stats.halo_wait_seconds = fetched.wait_seconds;
    stats.local_cache = cache.stats(/*space=*/0);
    stats.halo_cache = cache.stats(/*space=*/1);
  });

  return report;
}

}  // namespace distgnn::serve
