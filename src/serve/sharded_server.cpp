#include "serve/sharded_server.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "partition/partition_setup.hpp"
#include "serve/inference_server.hpp"

namespace distgnn::serve {

namespace {

// Point-to-point protocol tags (World payloads are float vectors, so vertex
// ids travel as two bit-cast 32-bit halves per id).
constexpr int kTagFeatReq = 9101;
constexpr int kTagFeatResp = 9102;
constexpr int kTagRoundDone = 9103;

std::vector<real_t> encode_ids(std::span<const vid_t> ids) {
  std::vector<real_t> out(2 * ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::uint64_t u = static_cast<std::uint64_t>(ids[i]);
    const std::uint32_t lo = static_cast<std::uint32_t>(u);
    const std::uint32_t hi = static_cast<std::uint32_t>(u >> 32);
    std::memcpy(&out[2 * i], &lo, sizeof(lo));
    std::memcpy(&out[2 * i + 1], &hi, sizeof(hi));
  }
  return out;
}

std::vector<vid_t> decode_ids(const std::vector<real_t>& payload) {
  std::vector<vid_t> ids(payload.size() / 2);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    std::uint32_t lo = 0, hi = 0;
    std::memcpy(&lo, &payload[2 * i], sizeof(lo));
    std::memcpy(&hi, &payload[2 * i + 1], sizeof(hi));
    ids[i] = static_cast<vid_t>((static_cast<std::uint64_t>(hi) << 32) | lo);
  }
  return ids;
}

}  // namespace

std::uint64_t ShardedServeReport::total_halo_rows() const {
  std::uint64_t total = 0;
  for (const ShardedRankStats& s : per_rank) total += s.halo_rows_fetched;
  return total;
}

std::vector<part_t> vertex_owners(const EdgeList& edges, const EdgePartition& partition,
                                  vid_t num_vertices) {
  const PartitionedGraph pg = build_partitions(edges, partition);
  std::vector<part_t> owners(static_cast<std::size_t>(num_vertices), kInvalidPart);
  for (const LocalPartition& part : pg.parts)
    for (std::size_t li = 0; li < part.global_ids.size(); ++li)
      if (part.owns_label[li]) owners[static_cast<std::size_t>(part.global_ids[li])] = part.id;
  for (std::size_t v = 0; v < owners.size(); ++v)
    if (owners[v] == kInvalidPart)
      owners[v] = static_cast<part_t>(v % static_cast<std::size_t>(partition.num_parts));
  return owners;
}

ShardedServeReport serve_sharded(World& world, const Dataset& dataset,
                                 const EdgePartition& partition,
                                 std::shared_ptr<const ModelSnapshot> snapshot,
                                 std::span<const vid_t> requests,
                                 const ShardedServeConfig& config) {
  const part_t num_parts = partition.num_parts;
  if (world.num_ranks() != num_parts)
    throw std::invalid_argument("serve_sharded: world ranks != partition parts");
  if (!snapshot) throw std::invalid_argument("serve_sharded: null snapshot");
  if (snapshot->spec().num_layers != static_cast<int>(config.fanouts.size()))
    throw std::invalid_argument("serve_sharded: fanouts depth != model layers");
  if (snapshot->spec().feature_dim != dataset.feature_dim())
    throw std::invalid_argument("serve_sharded: snapshot feature_dim != dataset");

  ShardedServeReport report;
  report.owner = vertex_owners(dataset.graph.coo(), partition, dataset.num_vertices());
  report.results.resize(requests.size());
  report.per_rank.resize(static_cast<std::size_t>(num_parts));

  // Route every request to the owner of its vertex, and materialize each
  // rank's feature shard: only owned rows — the rest of the feature store is
  // reachable solely through the halo protocol.
  std::vector<std::vector<std::size_t>> routed(static_cast<std::size_t>(num_parts));
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const vid_t v = requests[i];
    if (v < 0 || v >= dataset.num_vertices())
      throw std::out_of_range("serve_sharded: request vertex out of range");
    routed[static_cast<std::size_t>(report.owner[static_cast<std::size_t>(v)])].push_back(i);
  }
  const std::size_t f = static_cast<std::size_t>(dataset.feature_dim());
  std::vector<std::unordered_map<vid_t, std::size_t>> local_index(
      static_cast<std::size_t>(num_parts));
  std::vector<DenseMatrix> local_feats(static_cast<std::size_t>(num_parts));
  {
    std::vector<std::vector<vid_t>> owned(static_cast<std::size_t>(num_parts));
    for (vid_t v = 0; v < dataset.num_vertices(); ++v)
      owned[static_cast<std::size_t>(report.owner[static_cast<std::size_t>(v)])].push_back(v);
    for (part_t p = 0; p < num_parts; ++p) {
      auto& ids = owned[static_cast<std::size_t>(p)];
      DenseMatrix& rows = local_feats[static_cast<std::size_t>(p)];
      rows.resize_discard(ids.size(), f);
      for (std::size_t li = 0; li < ids.size(); ++li) {
        const real_t* src = dataset.features.row(static_cast<std::size_t>(ids[li]));
        std::copy(src, src + f, rows.row(li));
        local_index[static_cast<std::size_t>(p)].emplace(ids[li], li);
      }
    }
  }

  (void)dataset.graph.in_csr();  // build once before the rank threads start

  world.run([&](Communicator& comm) {
    const part_t me = static_cast<part_t>(comm.rank());
    const CsrMatrix& in_csr = dataset.graph.in_csr();
    const DenseMatrix& my_feats = local_feats[static_cast<std::size_t>(me)];
    const auto& my_index = local_index[static_cast<std::size_t>(me)];
    const std::vector<std::size_t>& my_requests = routed[static_cast<std::size_t>(me)];
    ShardedRankStats& stats = report.per_rank[static_cast<std::size_t>(me)];

    ShardedFeatureCache cache(config.cache_bytes, f, config.cache_shards);
    ForwardScratch scratch;
    std::vector<MiniBatch> minibatches;
    DenseMatrix inputs, logits;

    // Answer any queued halo requests from peers (never blocks).
    const auto service_peers = [&] {
      for (part_t p = 0; p < num_parts; ++p) {
        if (p == me) continue;
        while (auto msg = comm.try_recv(p, kTagFeatReq)) {
          const std::vector<vid_t> ids = decode_ids(*msg);
          std::vector<real_t> payload(ids.size() * f);
          for (std::size_t i = 0; i < ids.size(); ++i) {
            const real_t* src = my_feats.row(my_index.at(ids[i]));
            std::copy(src, src + f, payload.data() + i * f);
          }
          comm.send(p, kTagFeatResp, std::move(payload));
        }
      }
    };

    const std::size_t batch_size = static_cast<std::size_t>(config.max_batch);
    const std::size_t my_batches = (my_requests.size() + batch_size - 1) / batch_size;
    const auto all_counts = comm.allgather(static_cast<std::int64_t>(my_batches));
    const std::size_t rounds = static_cast<std::size_t>(
        *std::max_element(all_counts.begin(), all_counts.end()));

    // Per owner: unique missing vertex ids, and for each the input rows it
    // must land in (batches routinely re-sample shared hub vertices, so the
    // wire carries each row once).
    std::vector<std::vector<vid_t>> need(static_cast<std::size_t>(num_parts));
    std::vector<std::vector<std::vector<std::size_t>>> need_rows(
        static_cast<std::size_t>(num_parts));
    std::unordered_map<vid_t, std::size_t> pending;  // vid -> index in need[owner]

    for (std::size_t round = 0; round < rounds; ++round) {
      if (round < my_batches) {
        const std::size_t begin = round * batch_size;
        const std::size_t end = std::min(my_requests.size(), begin + batch_size);

        minibatches.clear();
        std::size_t input_rows = 0;
        for (std::size_t i = begin; i < end; ++i) {
          const vid_t v = requests[my_requests[i]];
          Rng rng = request_rng(config.sample_seed, v);
          const vid_t seed[1] = {v};
          minibatches.push_back(sample_minibatch(in_csr, seed, config.fanouts, rng));
          input_rows += minibatches.back().input_vertices.size();
        }

        // Gather: owned rows through the local cache space, remote rows
        // through the halo space with a grouped point-to-point fetch per
        // owner for everything the cache does not already hold.
        inputs.resize_discard(input_rows, f);
        for (auto& n : need) n.clear();
        for (auto& n : need_rows) n.clear();
        pending.clear();
        std::size_t row = 0;
        for (const MiniBatch& mb : minibatches) {
          for (const vid_t v : mb.input_vertices) {
            const part_t owner = report.owner[static_cast<std::size_t>(v)];
            if (owner == me) {
              cache.get_or_fill(/*space=*/0, static_cast<std::uint64_t>(v), inputs.row(row),
                                [&](real_t* dst) {
                                  const real_t* src = my_feats.row(my_index.at(v));
                                  std::copy(src, src + f, dst);
                                });
            } else if (!cache.lookup(/*space=*/1, static_cast<std::uint64_t>(v),
                                     inputs.row(row))) {
              auto& owner_need = need[static_cast<std::size_t>(owner)];
              auto& owner_rows = need_rows[static_cast<std::size_t>(owner)];
              const auto [it, inserted] = pending.emplace(v, owner_need.size());
              if (inserted) {
                owner_need.push_back(v);
                owner_rows.push_back({row});
              } else {
                owner_rows[it->second].push_back(row);
              }
            }
            ++row;
          }
        }

        int outstanding = 0;
        for (part_t p = 0; p < num_parts; ++p) {
          auto& ids = need[static_cast<std::size_t>(p)];
          if (ids.empty()) continue;
          comm.send(p, kTagFeatReq, encode_ids(ids));
          ++outstanding;
        }
        while (outstanding > 0) {
          service_peers();
          for (part_t p = 0; p < num_parts; ++p) {
            auto& ids = need[static_cast<std::size_t>(p)];
            if (ids.empty()) continue;
            auto resp = comm.try_recv(p, kTagFeatResp);
            if (!resp) continue;
            const auto& rows_for = need_rows[static_cast<std::size_t>(p)];
            for (std::size_t i = 0; i < ids.size(); ++i) {
              const real_t* src = resp->data() + i * f;
              for (const std::size_t dst_row : rows_for[i])
                std::copy(src, src + f, inputs.row(dst_row));
              cache.insert(/*space=*/1, static_cast<std::uint64_t>(ids[i]), src);
            }
            stats.halo_rows_fetched += ids.size();
            stats.halo_bytes += ids.size() * f * sizeof(real_t);
            ids.clear();
            --outstanding;
          }
          std::this_thread::yield();
        }

        snapshot->forward_batch(minibatches, inputs.cview(), scratch, logits);
        for (std::size_t r = 0; r < end - begin; ++r) {
          const std::size_t global = my_requests[begin + r];
          InferResult& result = report.results[global];
          result.request_id = global;
          result.vertex = requests[global];
          result.logits.assign(logits.row(r), logits.row(r) + logits.cols());
          result.snapshot_version = snapshot->version();
        }
        stats.served += end - begin;
        ++stats.batches;
      }

      // Service-while-waiting round barrier: a plain barrier would deadlock
      // (a busy rank can be blocked on our halo reply while we sit in the
      // barrier), so idle ranks keep answering until every peer checks in.
      for (part_t p = 0; p < num_parts; ++p)
        if (p != me) comm.send(p, kTagRoundDone, std::vector<real_t>{1.0f});
      std::vector<std::uint8_t> seen(static_cast<std::size_t>(num_parts), 0);
      int tokens = 0;
      while (tokens < num_parts - 1) {
        service_peers();
        for (part_t p = 0; p < num_parts; ++p) {
          if (p == me || seen[static_cast<std::size_t>(p)]) continue;
          if (comm.try_recv(p, kTagRoundDone)) {
            seen[static_cast<std::size_t>(p)] = 1;
            ++tokens;
          }
        }
        std::this_thread::yield();
      }
    }

    stats.local_cache = cache.stats(/*space=*/0);
    stats.halo_cache = cache.stats(/*space=*/1);
  });

  return report;
}

}  // namespace distgnn::serve
