#include "serve/feature_cache.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace distgnn::serve {

std::uint64_t ShardedFeatureCache::entries_for(std::uint64_t capacity_bytes, std::size_t dim,
                                               int num_shards) {
  if (dim == 0) throw std::invalid_argument("ShardedFeatureCache: dim must be > 0");
  if (num_shards < 1) throw std::invalid_argument("ShardedFeatureCache: need >= 1 shard");
  const std::uint64_t entry_bytes = static_cast<std::uint64_t>(dim) * sizeof(real_t);
  return std::max<std::uint64_t>(static_cast<std::uint64_t>(num_shards),
                                 capacity_bytes / entry_bytes);
}

ShardedFeatureCache::ShardedFeatureCache(std::uint64_t capacity_bytes, std::size_t dim,
                                         int num_shards)
    : dim_(dim),
      lru_(entries_for(capacity_bytes, dim, num_shards), num_shards,
           static_cast<std::uint64_t>(dim) * sizeof(real_t)) {}

bool ShardedFeatureCache::get_or_fill(int space, std::uint64_t key, real_t* out,
                                      const FillFn& fill) {
  const std::size_t row_bytes = dim_ * sizeof(real_t);
  return lru_.get_or_fill(
      space, key,
      [&](std::vector<real_t>& row) {
        row.resize(dim_);  // recycled slots keep their capacity: no allocation
        fill(row.data());
      },
      [&](const std::vector<real_t>& row) { std::memcpy(out, row.data(), row_bytes); });
}

bool ShardedFeatureCache::lookup(int space, std::uint64_t key, real_t* out) {
  return lru_.lookup(space, key, [&](const std::vector<real_t>& row) {
    std::memcpy(out, row.data(), dim_ * sizeof(real_t));
  });
}

void ShardedFeatureCache::insert(int space, std::uint64_t key, const real_t* row) {
  lru_.insert(space, key, [&](std::vector<real_t>& slot) {
    slot.assign(row, row + dim_);
  });
}

void ShardedFeatureCache::invalidate() { lru_.invalidate(); }

bool ShardedFeatureCache::erase(int space, std::uint64_t key) { return lru_.erase(space, key); }

}  // namespace distgnn::serve
