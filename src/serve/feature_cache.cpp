#include "serve/feature_cache.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "util/rng.hpp"

namespace distgnn::serve {

ShardedFeatureCache::ShardedFeatureCache(std::uint64_t capacity_bytes, std::size_t dim,
                                         int num_shards)
    : dim_(dim) {
  if (dim == 0) throw std::invalid_argument("ShardedFeatureCache: dim must be > 0");
  if (num_shards < 1) throw std::invalid_argument("ShardedFeatureCache: need >= 1 shard");
  const std::uint64_t entry_bytes = static_cast<std::uint64_t>(dim) * sizeof(real_t);
  const std::uint64_t total_entries =
      std::max<std::uint64_t>(static_cast<std::uint64_t>(num_shards), capacity_bytes / entry_bytes);
  entries_per_shard_ = std::max<std::uint64_t>(1, total_entries / static_cast<std::uint64_t>(num_shards));
  shards_.reserve(static_cast<std::size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->entries.resize(entries_per_shard_);
    shard->slab.resize(entries_per_shard_ * dim_);
    shard->free_list.reserve(entries_per_shard_);
    for (std::uint64_t e = 0; e < entries_per_shard_; ++e)
      shard->free_list.push_back(static_cast<int>(entries_per_shard_ - 1 - e));
    shard->index.reserve(2 * entries_per_shard_);
    shards_.push_back(std::move(shard));
  }
}

std::uint64_t ShardedFeatureCache::capacity_entries() const {
  return entries_per_shard_ * shards_.size();
}

ShardedFeatureCache::Shard& ShardedFeatureCache::shard_for(std::uint64_t key) {
  // splitmix64 spreads sequential vertex ids over shards.
  return *shards_[static_cast<std::size_t>(splitmix64(key) % shards_.size())];
}

void ShardedFeatureCache::unlink(Shard& s, int idx) const {
  Entry& e = s.entries[static_cast<std::size_t>(idx)];
  if (e.prev >= 0) s.entries[static_cast<std::size_t>(e.prev)].next = e.next;
  else s.head = e.next;
  if (e.next >= 0) s.entries[static_cast<std::size_t>(e.next)].prev = e.prev;
  else s.tail = e.prev;
  e.prev = e.next = -1;
}

void ShardedFeatureCache::push_front(Shard& s, int idx) const {
  Entry& e = s.entries[static_cast<std::size_t>(idx)];
  e.prev = -1;
  e.next = s.head;
  if (s.head >= 0) s.entries[static_cast<std::size_t>(s.head)].prev = idx;
  s.head = idx;
  if (s.tail < 0) s.tail = idx;
}

bool ShardedFeatureCache::get_or_fill(int space, std::uint64_t key, real_t* out,
                                      const FillFn& fill) {
  if (space < 0) throw std::out_of_range("ShardedFeatureCache: negative space id");
  Shard& s = shard_for(key);
  const std::uint64_t tag = make_tag(space, key);
  const std::uint64_t row_bytes = dim_ * sizeof(real_t);

  std::lock_guard<std::mutex> lock(s.mutex);
  if (static_cast<std::size_t>(space) >= s.per_space.size()) s.per_space.resize(space + 1);
  CacheStats& stats = s.per_space[static_cast<std::size_t>(space)];
  ++stats.accesses;

  const auto it = s.index.find(tag);
  if (it != s.index.end()) {
    const int idx = it->second;
    unlink(s, idx);
    push_front(s, idx);
    std::memcpy(out, s.slab.data() + static_cast<std::size_t>(idx) * dim_, row_bytes);
    return true;
  }

  ++stats.misses;
  stats.bytes_read += row_bytes;  // miss fill traffic, as in cachesim
  if (s.free_list.empty()) {
    const int victim = s.tail;
    s.index.erase(s.entries[static_cast<std::size_t>(victim)].tag);
    unlink(s, victim);
    s.free_list.push_back(victim);
  }
  const int idx = s.free_list.back();
  s.free_list.pop_back();
  real_t* row = s.slab.data() + static_cast<std::size_t>(idx) * dim_;
  fill(row);
  std::memcpy(out, row, row_bytes);
  s.entries[static_cast<std::size_t>(idx)].tag = tag;
  s.index.emplace(tag, idx);
  push_front(s, idx);
  return false;
}

bool ShardedFeatureCache::lookup(int space, std::uint64_t key, real_t* out) {
  if (space < 0) throw std::out_of_range("ShardedFeatureCache: negative space id");
  Shard& s = shard_for(key);
  const std::uint64_t tag = make_tag(space, key);

  std::lock_guard<std::mutex> lock(s.mutex);
  if (static_cast<std::size_t>(space) >= s.per_space.size()) s.per_space.resize(space + 1);
  CacheStats& stats = s.per_space[static_cast<std::size_t>(space)];
  ++stats.accesses;

  const auto it = s.index.find(tag);
  if (it == s.index.end()) {
    ++stats.misses;
    return false;
  }
  const int idx = it->second;
  unlink(s, idx);
  push_front(s, idx);
  std::memcpy(out, s.slab.data() + static_cast<std::size_t>(idx) * dim_, dim_ * sizeof(real_t));
  return true;
}

void ShardedFeatureCache::insert(int space, std::uint64_t key, const real_t* row) {
  if (space < 0) throw std::out_of_range("ShardedFeatureCache: negative space id");
  Shard& s = shard_for(key);
  const std::uint64_t tag = make_tag(space, key);

  std::lock_guard<std::mutex> lock(s.mutex);
  if (static_cast<std::size_t>(space) >= s.per_space.size()) s.per_space.resize(space + 1);
  s.per_space[static_cast<std::size_t>(space)].bytes_read += dim_ * sizeof(real_t);
  if (s.index.count(tag) > 0) return;  // raced fill: already resident
  if (s.free_list.empty()) {
    const int victim = s.tail;
    s.index.erase(s.entries[static_cast<std::size_t>(victim)].tag);
    unlink(s, victim);
    s.free_list.push_back(victim);
  }
  const int idx = s.free_list.back();
  s.free_list.pop_back();
  std::memcpy(s.slab.data() + static_cast<std::size_t>(idx) * dim_, row, dim_ * sizeof(real_t));
  s.entries[static_cast<std::size_t>(idx)].tag = tag;
  s.index.emplace(tag, idx);
  push_front(s, idx);
}

void ShardedFeatureCache::invalidate() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    while (shard->head >= 0) {
      const int idx = shard->head;
      shard->index.erase(shard->entries[static_cast<std::size_t>(idx)].tag);
      unlink(*shard, idx);
      shard->free_list.push_back(idx);
    }
  }
}

CacheStats ShardedFeatureCache::stats(int space) const {
  CacheStats out;
  if (space < 0) return out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    if (static_cast<std::size_t>(space) < shard->per_space.size())
      out += shard->per_space[static_cast<std::size_t>(space)];
  }
  return out;
}

CacheStats ShardedFeatureCache::combined_stats() const {
  CacheStats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const CacheStats& s : shard->per_space) out += s;
  }
  return out;
}

}  // namespace distgnn::serve
