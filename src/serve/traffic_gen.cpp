#include "serve/traffic_gen.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <stdexcept>
#include <thread>

#include "obs/metrics.hpp"
#include "util/table.hpp"

namespace distgnn::serve {

void LatencyRecorder::record(double seconds) {
  util::MutexLock lock(mutex_);
  samples_.push_back(seconds);
}

std::size_t LatencyRecorder::count() const {
  util::MutexLock lock(mutex_);
  return samples_.size();
}

double LatencyRecorder::quantile(double q) const {
  util::MutexLock lock(mutex_);
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  const auto idx = static_cast<std::size_t>(
      std::clamp(q, 0.0, 1.0) * static_cast<double>(sorted.size() - 1) + 0.5);
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(idx), sorted.end());
  return sorted[idx];
}

double LatencyRecorder::mean_seconds() const {
  util::MutexLock lock(mutex_);
  if (samples_.empty()) return 0.0;
  double total = 0;
  for (const double s : samples_) total += s;
  return total / static_cast<double>(samples_.size());
}

LatencyRecorder& LatencyRecorder::operator+=(const LatencyRecorder& other) {
  if (this == &other) return *this;
  std::vector<double> theirs;
  {
    util::MutexLock lock(other.mutex_);
    theirs = other.samples_;
  }
  util::MutexLock lock(mutex_);
  samples_.insert(samples_.end(), theirs.begin(), theirs.end());
  return *this;
}

std::vector<LatencyRecorder::Bucket> LatencyRecorder::histogram() const {
  util::MutexLock lock(mutex_);
  // Shared log2 bucket geometry (obs::latency_bucket): bucket k covers
  // [1µs·2^(k-1), 1µs·2^k), so the pass is O(samples) regardless of how wide
  // the tail spreads — and the printed buckets can never drift from the
  // scrapeable obs histograms.
  std::map<int, std::size_t> counts;
  for (const double s : samples_) ++counts[obs::latency_bucket(s)];
  std::vector<Bucket> buckets;
  buckets.reserve(counts.size());
  for (const auto& [k, count] : counts) buckets.push_back({obs::bucket_upper_seconds(k), count});
  return buckets;
}

std::vector<double> generate_arrivals(const ArrivalConfig& config, std::size_t count) {
  std::vector<double> arrivals;
  arrivals.reserve(count);
  Rng rng(config.seed);
  const auto exponential = [&rng](double mean) {
    double u = rng.next_double();
    while (u <= 1e-300) u = rng.next_double();
    return -mean * std::log(u);
  };

  if (config.process == ArrivalProcess::kPoisson) {
    if (config.rate <= 0) throw std::invalid_argument("generate_arrivals: rate must be > 0");
    double t = 0;
    for (std::size_t i = 0; i < count; ++i) {
      t += exponential(1.0 / config.rate);
      arrivals.push_back(t);
    }
    return arrivals;
  }

  // 2-state MMPP: Poisson arrivals at the current state's rate; state
  // sojourns are exponential. A candidate arrival beyond the sojourn end is
  // discarded and redrawn in the next state (memorylessness makes this
  // exact).
  if (config.mmpp_rate0 <= 0 || config.mmpp_rate1 <= 0 || config.mmpp_hold0 <= 0 ||
      config.mmpp_hold1 <= 0)
    throw std::invalid_argument("generate_arrivals: MMPP rates/holds must be > 0");
  double t = 0;
  int state = 0;
  double state_end = exponential(config.mmpp_hold0);
  while (arrivals.size() < count) {
    const double rate = state == 0 ? config.mmpp_rate0 : config.mmpp_rate1;
    const double candidate = t + exponential(1.0 / rate);
    if (candidate < state_end) {
      t = candidate;
      arrivals.push_back(t);
    } else {
      t = state_end;
      state = 1 - state;
      state_end = t + exponential(state == 0 ? config.mmpp_hold0 : config.mmpp_hold1);
    }
  }
  return arrivals;
}

double index_of_dispersion(std::span<const double> arrivals, double window_seconds) {
  if (arrivals.empty() || window_seconds <= 0) return 0.0;
  const double span = arrivals.back();
  const auto num_windows = static_cast<std::size_t>(span / window_seconds);
  if (num_windows < 2) return 0.0;
  std::vector<std::size_t> counts(num_windows, 0);
  for (const double t : arrivals) {
    const auto w = static_cast<std::size_t>(t / window_seconds);
    if (w < num_windows) ++counts[w];
  }
  double mean = 0;
  for (const std::size_t c : counts) mean += static_cast<double>(c);
  mean /= static_cast<double>(num_windows);
  if (mean == 0) return 0.0;
  double var = 0;
  for (const std::size_t c : counts) {
    const double d = static_cast<double>(c) - mean;
    var += d * d;
  }
  var /= static_cast<double>(num_windows);
  return var / mean;
}

void fill_latency_fields(LoadReport& report, const LatencyRecorder& latencies) {
  report.mean_ms = latencies.mean_seconds() * 1e3;
  report.p50_ms = latencies.quantile(0.50) * 1e3;
  report.p95_ms = latencies.quantile(0.95) * 1e3;
  report.p99_ms = latencies.quantile(0.99) * 1e3;
  report.p999_ms = latencies.quantile(0.999) * 1e3;
  report.histogram = latencies.histogram();
}

std::string render_load_reports(std::span<const LoadReport> reports, const std::string& title) {
  TextTable table({"load", "offered", "done", "rejected", "QPS", "mean ms", "p50 ms", "p95 ms",
                   "p99 ms", "p99.9 ms", "batch"});
  for (const LoadReport& r : reports)
    table.add_row({r.label, TextTable::fmt_int(static_cast<long long>(r.offered)),
                   TextTable::fmt_int(static_cast<long long>(r.completed)),
                   TextTable::fmt_int(static_cast<long long>(r.rejected)), TextTable::fmt(r.qps, 0),
                   TextTable::fmt(r.mean_ms), TextTable::fmt(r.p50_ms), TextTable::fmt(r.p95_ms),
                   TextTable::fmt(r.p99_ms), TextTable::fmt(r.p999_ms),
                   TextTable::fmt(r.mean_batch, 2)});
  return table.render(title);
}

ZipfSampler::ZipfSampler(std::uint64_t n, double s, Rng& rng) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  if (s <= 0) throw std::invalid_argument("ZipfSampler: s must be > 0");
  cdf_.reserve(static_cast<std::size_t>(n));
  double total = 0;
  for (std::uint64_t r = 1; r <= n; ++r) {
    total += std::pow(static_cast<double>(r), -s);
    cdf_.push_back(total);
  }
  values_.resize(static_cast<std::size_t>(n));
  for (std::uint64_t v = 0; v < n; ++v) values_[static_cast<std::size_t>(v)] = v;
  for (std::size_t i = values_.size(); i > 1; --i)
    std::swap(values_[i - 1], values_[rng.next_below(i)]);
}

std::uint64_t ZipfSampler::draw(Rng& rng) const {
  const double u = rng.next_double() * cdf_.back();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  const auto rank = static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cdf_.begin(),
                               static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
  return values_[rank];
}

EmbedWorkloadReport run_embed_cache_workload(const Dataset& dataset,
                                             std::shared_ptr<const ModelSnapshot> snapshot,
                                             const ServeConfig& base, std::uint64_t cache_bytes,
                                             double zipf_s, std::uint64_t seed, int clients,
                                             int requests_per_client) {
  ServeConfig cfg = base;
  cfg.embed_forward = true;
  cfg.embed_cache_bytes = cache_bytes;
  cfg.max_batch_delay = std::chrono::microseconds(0);  // greedy batching (see header)
  InferenceServer server(dataset, cfg);
  server.publish(std::move(snapshot));
  server.start();

  {
    TrafficGenerator warmup(server, seed, zipf_s);
    (void)warmup.run_closed_loop(clients, requests_per_client);
  }
  const CacheStats warmed = server.stats().embed_cache;

  EmbedWorkloadReport report;
  TrafficGenerator traffic(server, seed + 1, zipf_s);
  report.load = traffic.run_closed_loop(clients, requests_per_client);
  const CacheStats total = server.stats().embed_cache;
  CacheStats measured;
  measured.accesses = total.accesses - warmed.accesses;
  measured.misses = total.misses - warmed.misses;
  report.hit_rate = measured.hit_rate();
  server.stop();
  return report;
}

TrafficGenerator::TrafficGenerator(ServingBackend& server, std::uint64_t seed, double zipf_s,
                                   std::uint64_t zipf_perm_seed)
    : server_(server), rng_(seed) {
  if (zipf_s < 0) throw std::invalid_argument("TrafficGenerator: zipf_s must be >= 0");
  if (zipf_s > 0) {
    Rng perm_rng(zipf_perm_seed);
    zipf_.emplace(static_cast<std::uint64_t>(server_.dataset().num_vertices()), zipf_s, perm_rng);
  }
}

vid_t TrafficGenerator::random_vertex() {
  if (zipf_) return static_cast<vid_t>(zipf_->draw(rng_));
  return static_cast<vid_t>(
      rng_.next_below(static_cast<std::uint64_t>(server_.dataset().num_vertices())));
}

LoadReport TrafficGenerator::finish(const std::string& label, double duration,
                                    std::uint64_t offered, std::uint64_t completed,
                                    std::uint64_t rejected, const LatencyRecorder& latencies,
                                    std::uint64_t batches_delta,
                                    std::uint64_t batched_requests_delta) const {
  LoadReport report;
  report.label = label;
  report.duration_seconds = duration;
  report.offered = offered;
  report.completed = completed;
  report.rejected = rejected;
  report.qps = duration > 0 ? static_cast<double>(completed) / duration : 0.0;
  fill_latency_fields(report, latencies);
  report.mean_batch = batches_delta == 0 ? 0.0
                                         : static_cast<double>(batched_requests_delta) /
                                               static_cast<double>(batches_delta);
  return report;
}

LoadReport TrafficGenerator::run_closed_loop(int num_clients, int requests_each) {
  if (num_clients < 1 || requests_each < 1)
    throw std::invalid_argument("run_closed_loop: clients and requests must be >= 1");
  const ServerStats before = server_.stats();

  // Hand each client its own pre-drawn vertex list so the workload is
  // deterministic regardless of thread interleaving.
  std::vector<std::vector<vid_t>> targets(static_cast<std::size_t>(num_clients));
  for (auto& list : targets) {
    list.reserve(static_cast<std::size_t>(requests_each));
    for (int i = 0; i < requests_each; ++i) list.push_back(random_vertex());
  }

  // Each client records into its own recorder; the fold at the end is the
  // only cross-thread touch, so the measurement adds no lock contention of
  // its own to the closed loop.
  std::vector<LatencyRecorder> per_client(static_cast<std::size_t>(num_clients));
  const auto begin = ServeClock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      LatencyRecorder& mine = per_client[static_cast<std::size_t>(c)];
      for (const vid_t v : targets[static_cast<std::size_t>(c)]) {
        const InferResult result = server_.infer_sync(v);
        mine.record(result.latency_seconds);
      }
    });
  }
  for (auto& t : clients) t.join();
  const double duration = std::chrono::duration<double>(ServeClock::now() - begin).count();
  LatencyRecorder latencies;
  for (const LatencyRecorder& r : per_client) latencies += r;

  const ServerStats after = server_.stats();
  const auto total = static_cast<std::uint64_t>(num_clients) *
                     static_cast<std::uint64_t>(requests_each);
  return finish("closed(" + std::to_string(num_clients) + ")", duration, total, total, 0,
                latencies, after.batches - before.batches,
                after.batched_requests - before.batched_requests);
}

LoadReport TrafficGenerator::run_open_loop(const ArrivalConfig& arrivals,
                                           std::size_t num_requests) {
  const std::vector<double> offsets = generate_arrivals(arrivals, num_requests);
  std::vector<vid_t> targets;
  targets.reserve(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i) targets.push_back(random_vertex());

  const ServerStats before = server_.stats();
  LatencyRecorder latencies;
  util::Mutex done_mutex;
  util::CondVar done_cv;
  std::size_t accounted = 0;
  std::uint64_t rejected = 0;
  const auto account = [&](bool was_rejected) {
    util::MutexLock lock(done_mutex);
    if (was_rejected) ++rejected;
    ++accounted;
    if (accounted == num_requests) done_cv.notify_all();
  };

  const auto begin = ServeClock::now();
  for (std::size_t i = 0; i < num_requests; ++i) {
    std::this_thread::sleep_until(begin + std::chrono::duration<double>(offsets[i]));
    const bool accepted = server_.submit(targets[i], [&](InferResult&& result) {
      latencies.record(result.latency_seconds);
      account(false);
    });
    if (!accepted) account(true);
  }
  {
    util::MutexLock lock(done_mutex);
    while (accounted != num_requests) done_cv.wait(lock);
  }
  const double duration = std::chrono::duration<double>(ServeClock::now() - begin).count();

  const ServerStats after = server_.stats();
  const std::string label =
      arrivals.process == ArrivalProcess::kPoisson ? "poisson" : "mmpp";
  return finish(label, duration, num_requests, num_requests - rejected, rejected, latencies,
                after.batches - before.batches, after.batched_requests - before.batched_requests);
}

}  // namespace distgnn::serve
