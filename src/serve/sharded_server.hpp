// Partition-aware sharded serving: one persistent server loop per rank.
//
// Production deployments shard the (huge) feature store, not the (compact)
// adjacency: every rank keeps the full graph structure for sampling, but
// holds feature rows only for the vertices it owns under a partition/libra
// vertex-cut (a vertex's owner is the rank of its root clone, i.e. the
// owns_label clone of partition_setup). ShardedServer routes each submitted
// request to the owner rank of its target vertex; when a sampled
// neighbourhood reaches into another rank's shard, the missing rows are
// fetched point-to-point over the World runtime (serve/prefetch's
// HaloFetcher) and retained in the halo space of the rank's feature cache.
//
// Each rank runs a poll loop — never a blocking wait — because a rank that
// blocked on local work would stop answering peers' halo requests
// (distributed deadlock). The loop keeps a ring of up to
// `prefetch_depth` in-flight HaloBatches: with depth 1 the fetch is
// synchronous (begin + finish back to back); with depth d >= 2, batches
// N+1..N+d-1 have their halo requests on the wire while batch N's forward
// runs, so peer replies overlap compute. Answers are bitwise-identical at
// every depth; only halo_wait_seconds moves.
//
// Sampling uses the same request_rng(seed, vertex) stream as the
// single-process InferenceServer, so a P-rank sharded deployment answers
// bitwise-identically to one server over the whole feature store — the
// equivalence tests pin exactly that. With embed_forward enabled, each rank
// instead serves through its own EmbedForward over a per-rank EmbedCache
// (entries keyed by snapshot version, invalidated on publish): owner
// routing concentrates a vertex's repeat queries on one rank, so per-rank
// caches see the full hit rate without any cross-rank coherence. Halo rows
// in embed mode are read from the shared in-process feature store (wire-
// accurate halo *embedding* fetch is a ROADMAP follow-on).
//
// ShardedServer implements ServingBackend, so a ReplicaGroup can replicate
// it (ComposedTier: R replicas x P shards) and the Router / traffic
// generators drive it exactly like a single InferenceServer.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "comm/world.hpp"
#include "graph/datasets.hpp"
#include "obs/metrics.hpp"
#include "obs/scrape.hpp"
#include "obs/trace.hpp"
#include "partition/libra.hpp"
#include "serve/backend.hpp"
#include "serve/embed_cache.hpp"
#include "serve/feature_cache.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/request_queue.hpp"
#include "serve/tier_config.hpp"
#include "util/sync.hpp"

namespace distgnn::serve {

class HaloFetcher;
struct HaloBatch;

/// Sharded-tier config: the shared TierConfig knobs (queue_capacity and the
/// caches apply per rank) plus the halo prefetch ring depth. Field names are
/// unchanged from the pre-TierConfig struct.
struct ShardedServeConfig : TierConfig {
  /// In-flight halo batches per rank: 1 = synchronous fetch, 2 = the classic
  /// double buffer, d = a ring pipelining d-1 batches of fetch latency
  /// behind compute (deeper rings suit slower interconnects). Answers are
  /// bitwise-identical at every depth.
  int prefetch_depth = 1;

  ShardedServeConfig() { cache_shards = 4; }
};

class ShardedServer : public ServingBackend {
 public:
  /// One serving rank per partition part, over `dataset`'s features split by
  /// the vertex-cut. The dataset and partition-derived state must outlive
  /// the server; the World of partition.num_parts ranks is owned internally.
  ShardedServer(const Dataset& dataset, const EdgePartition& partition,
                ShardedServeConfig config);
  ~ShardedServer() override;

  ShardedServer(const ShardedServer&) = delete;
  ShardedServer& operator=(const ShardedServer&) = delete;

  void publish(std::shared_ptr<const ModelSnapshot> snapshot) override;
  std::shared_ptr<const ModelSnapshot> snapshot() const override { return holder_.get(); }

  /// Spawns the rank loops (one thread per partition part). Requires a
  /// published snapshot.
  void start() override;
  /// Closes the per-rank queues, drains admitted requests, joins the rank
  /// threads. Idempotent.
  void stop() override;

  using ServingBackend::submit;
  /// Routes the request to the owner rank of `vertex`; false (a rejection)
  /// when that rank's bounded queue is full.
  bool submit(vid_t vertex, const RequestMeta& meta,
              std::function<void(InferResult&&)> done) override;

  std::size_t queue_depth() const override;
  void drain() override;
  bool accepting() const override { return running_.load(std::memory_order_acquire); }
  double mean_service_seconds() const override;
  /// One serving loop per rank.
  int concurrency() const override { return num_parts_; }
  const Dataset& dataset() const override { return dataset_; }
  /// Aggregate over ranks; children[r] is rank r's detail (halo counters,
  /// per-rank caches, queue depth).
  BackendStats stats() const override;
  /// ScrapeSource: fold the shard's stage histograms (including halo_wait)
  /// and tenant counters into `out`.
  void scrape(obs::MetricsSnapshot& out) const override;
  /// Completed sampled stage traces across all ranks (one shared sink).
  void collect_traces(std::vector<obs::Trace>& out) const override;
  const obs::TraceSink& trace_sink() const { return trace_sink_; }

  /// Version-barriered graph mutation across the P ranks: a pause rendezvous
  /// parks every rank at a batch boundary (prefetch ring drained, classic
  /// ranks still answering peers' halo requests while they wait), then the
  /// apply mutates the shared dataset, the updated feature rows are
  /// re-materialized into the owning ranks' local shards, and each rank's
  /// caches are invalidated per the notice (targeted epoch advance unless
  /// full_flush). Queues stay open throughout — requests admitted during the
  /// window are served after it, on the new graph.
  void apply_graph_update(const std::function<void()>& apply,
                          const GraphUpdateNotice& notice) override;
  std::uint64_t graph_epoch() const override {
    return graph_epoch_.load(std::memory_order_acquire);
  }

  int num_ranks() const { return num_parts_; }
  /// Vertex -> owning rank (the routing table).
  const std::vector<part_t>& owners() const { return owner_; }

 private:
  struct RankState {
    mutable util::Mutex mutex;
    BackendStats stats GUARDED_BY(mutex);  // batch/halo counters only; caches read live
  };

  void rank_loop(Communicator& comm);
  void run_classic_rank(Communicator& comm, part_t me);
  void run_embed_rank(Communicator& comm, part_t me);
  void finish_requests(std::vector<InferRequest>& batch, const DenseMatrix& logits,
                       std::uint64_t snapshot_version, ServeClock::time_point service_begin,
                       RankState& state, const obs::BatchStageTimes& stages);
  EmbedCache* embed_cache_ptr(part_t rank) const;

  const Dataset& dataset_;
  /// Immutable mirror of dataset_.num_vertices(): the streamed-update
  /// contract fixes the vertex set at construction, and submit() must not
  /// read through dataset_.graph while a barrier is move-assigning it.
  const vid_t num_vertices_;
  ShardedServeConfig config_;
  part_t num_parts_;
  std::vector<part_t> owner_;
  std::vector<std::unordered_map<vid_t, std::size_t>> local_index_;
  std::vector<DenseMatrix> local_feats_;

  World world_;
  std::thread driver_;  // runs world_.run(rank_loop) so start() returns
  std::vector<std::unique_ptr<BoundedRequestQueue>> queues_;
  std::vector<std::unique_ptr<ShardedFeatureCache>> caches_;
  mutable util::Mutex embed_mutex_;
  std::vector<std::unique_ptr<EmbedCache>> embed_caches_ GUARDED_BY(embed_mutex_);
  std::vector<std::unique_ptr<RankState>> rank_states_;
  SnapshotHolder holder_;

  // Server-level telemetry (ranks are an implementation detail of the shard,
  // so tenants are accounted where requests enter and leave): sharded
  // wait-free counters + stage/latency histograms, one trace sink shared by
  // every rank thread.
  obs::MetricsRegistry metrics_;
  obs::StageMetrics stage_metrics_{metrics_, "sharded"};
  obs::TraceSink trace_sink_;

  std::atomic<bool> running_{false};
  std::atomic<int> done_ranks_{0};

  /// Graph-update pause rendezvous (apply_graph_update): ranks park once
  /// their ring is drained; the updater waits for all P, mutates, reopens.
  std::atomic<bool> pause_flag_{false};
  util::Mutex pause_mutex_;
  util::CondVar pause_cv_;
  int paused_ranks_ GUARDED_BY(pause_mutex_) = 0;
  std::atomic<std::uint64_t> graph_epoch_{0};

  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> service_ns_{0};
};

/// Vertex -> owning rank from a vertex-cut partition: the rank whose clone
/// carries owns_label. Vertices absent from every partition (isolated) fall
/// back to round-robin so every vertex has a feature home.
std::vector<part_t> vertex_owners(const EdgeList& edges, const EdgePartition& partition,
                                  vid_t num_vertices);

}  // namespace distgnn::serve
