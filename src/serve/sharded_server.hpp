// Partition-aware sharded serving: one server loop per World rank.
//
// Production deployments shard the (huge) feature store, not the (compact)
// adjacency: every rank keeps the full graph structure for sampling, but
// holds feature rows only for the vertices it owns under a partition/libra
// vertex-cut (a vertex's owner is the rank of its root clone, i.e. the
// owns_label clone of partition_setup). Requests are routed to the owner
// rank of their target vertex; when a sampled neighbourhood reaches into
// another rank's shard, the missing rows are fetched point-to-point over the
// World runtime and retained in the halo space of the rank's feature cache.
//
// Sampling uses the same request_rng(seed, vertex) stream as the
// single-process InferenceServer, so a 2-rank sharded deployment answers
// bitwise-identically to one server over the whole feature store — the
// equivalence tests pin exactly that.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "comm/world.hpp"
#include "graph/datasets.hpp"
#include "partition/libra.hpp"
#include "serve/feature_cache.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/request_queue.hpp"

namespace distgnn::serve {

struct ShardedServeConfig {
  int max_batch = 8;
  std::vector<int> fanouts = {10, 10};
  std::uint64_t cache_bytes = 8ull << 20;
  int cache_shards = 4;
  std::uint64_t sample_seed = 1;
  /// Async halo prefetch: issue batch N+1's halo feature requests before
  /// running batch N's forward (double-buffered HaloFetcher), so the peer's
  /// reply overlaps compute instead of stalling the next batch. Answers are
  /// bitwise-identical either way; only halo_wait_seconds moves.
  bool prefetch = false;
};

struct ShardedRankStats {
  std::uint64_t served = 0;
  std::uint64_t batches = 0;
  std::uint64_t halo_rows_fetched = 0;  // rows that crossed a rank boundary
  std::uint64_t halo_bytes = 0;
  /// Time this rank spent blocked waiting for halo responses (the quantity
  /// prefetch overlaps away; compare per batch against a prefetch=false run
  /// via ShardedServeReport::mean_halo_wait_per_batch).
  double halo_wait_seconds = 0;
  CacheStats local_cache;  // space 0: owned rows
  CacheStats halo_cache;   // space 1: remote rows
};

struct ShardedServeReport {
  std::vector<InferResult> results;  // aligned with the request span
  std::vector<part_t> owner;         // vertex -> owning rank (the routing table)
  std::vector<ShardedRankStats> per_rank;

  std::uint64_t total_halo_rows() const;
  /// Mean halo wait per batch over the ranks that ran batches — the bench's
  /// fetch/compute-overlap headline (prefetch strictly below synchronous).
  double mean_halo_wait_per_batch() const;
};

/// Vertex -> owning rank from a vertex-cut partition: the rank whose clone
/// carries owns_label. Vertices absent from every partition (isolated) fall
/// back to round-robin so every vertex has a feature home.
std::vector<part_t> vertex_owners(const EdgeList& edges, const EdgePartition& partition,
                                  vid_t num_vertices);

/// Serves `requests` with one server per World rank (world.num_ranks() must
/// equal partition.num_parts). Each request is routed to the owner of its
/// vertex; results come back aligned with the input order.
ShardedServeReport serve_sharded(World& world, const Dataset& dataset,
                                 const EdgePartition& partition,
                                 std::shared_ptr<const ModelSnapshot> snapshot,
                                 std::span<const vid_t> requests,
                                 const ShardedServeConfig& config);

}  // namespace distgnn::serve
