// Serving-tier embedding cache: layer outputs keyed by (vertex, layer,
// snapshot version), plus the cached forward evaluator that consults it.
//
// The paper's core lever is avoiding redundant aggregation work (delayed
// remote aggregates); the serving analogue is avoiding redundant *forward*
// work across requests. Under skewed (Zipfian) query popularity the same hot
// vertices are asked about over and over, and every such request re-samples
// and re-aggregates a full k-hop subtree. EmbedCache memoizes hop-k
// embeddings so a hit at (v, layer=k) short-circuits v's entire k-hop
// subtree — for a hit at the output layer, the whole request collapses to
// one cache copy.
//
// Soundness requires that h_l(v) be a pure function of (snapshot, v, l),
// which the classic serving forward does not provide: sample_minibatch draws
// the whole recursive plan from one request-seeded stream, so the 1-hop
// sample of an *interior* vertex depends on which request pulled it in.
// EmbedForward therefore samples canonically — vertex u's 1-hop block for
// layer l is drawn from embed_rng(sample_seed, u, l), independent of request
// context — making every cached row bitwise-reproducible: cache-on,
// cache-off, hit, miss, and any batch composition all yield identical
// logits for the same snapshot.
//
// Staleness: keys carry the snapshot version, so an entry computed under
// version N can never satisfy a lookup under version N+1 — even if a racing
// in-flight batch inserts old-version rows after a hot-swap. The
// SnapshotHolder publish hook additionally invalidate()s the cache so stale
// entries release capacity immediately instead of aging out of the LRU.
//
// Graph epochs (src/stream): keys additionally carry the graph epoch, so a
// row computed over epoch e can never satisfy a lookup after a delta bumped
// the graph to e+1 — a racing in-flight batch that inserts old-epoch rows
// after the swap wastes a slot but can never be read back. advance_epoch()
// is the targeted alternative to invalidate(): entries whose vertex is in
// the delta's dirty set are evicted, everything else is promoted in place to
// the new epoch (hit rate survives the delta).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/datasets.hpp"
#include "serve/feature_cache.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/sharded_lru.hpp"
#include "util/rng.hpp"

namespace distgnn::serve {

/// Canonical sampling stream for vertex `vertex`'s one-hop block feeding
/// layer `layer` (0-based): depends only on (sample_seed, vertex, layer),
/// never on request context — the purity EmbedCache keys rely on.
Rng embed_rng(std::uint64_t sample_seed, vid_t vertex, int layer);

/// Sharded LRU of layer outputs. Layer l (1-based: h_1 .. h_L) rows are
/// out_dim(l-1) floats wide, so each layer gets its own ShardedLru instance;
/// capacity_bytes is split evenly across layers.
class EmbedCache {
 public:
  struct Key {
    std::uint64_t version = 0;
    std::uint64_t epoch = 0;  // graph epoch (delta stream); 0 = frozen graph
    std::uint64_t vertex = 0;
    bool operator==(const Key&) const = default;
  };
  /// Deliberately excludes the epoch: advance_epoch() rewrites keys in place
  /// (epoch e -> e+1) and the promoted key must stay in the same LRU shard.
  /// Equality still includes the epoch, so a stale-epoch entry never matches.
  struct KeyHash {
    std::uint64_t operator()(const Key& k) const {
      return splitmix64(k.version ^ splitmix64(k.vertex));
    }
  };

  /// `max_entries_per_layer` bounds slot metadata for narrow layers (a
  /// byte budget alone would buy e.g. half a million 8-float logit slots):
  /// invalidate-on-publish keeps one version resident, so the true key
  /// population is the vertex count — pass it when known; 0 = uncapped.
  EmbedCache(const ModelSpec& spec, std::uint64_t capacity_bytes, int num_shards = 8,
             std::uint64_t max_entries_per_layer = 0);

  /// Copies h_layer(vertex) under (version, graph epoch) into `out`
  /// (dim(layer) floats) on hit. A row cached under any other version or
  /// epoch never matches.
  bool lookup(int layer, vid_t vertex, std::uint64_t version, real_t* out,
              std::uint64_t epoch = 0);
  void insert(int layer, vid_t vertex, std::uint64_t version, const real_t* row,
              std::uint64_t epoch = 0);

  /// Drops every entry (publish-hook invalidation) without resetting stats.
  void invalidate();

  /// Counters from one advance_epoch sweep (summed over layers).
  struct EpochAdvance {
    std::uint64_t evicted = 0;   // dirty entries dropped
    std::uint64_t retained = 0;  // clean entries promoted to the new epoch
  };

  /// Targeted invalidation for a graph delta: for each layer l, entries
  /// whose vertex appears in dirty_layers[l-1] are evicted; every other
  /// resident entry is promoted in place to `new_epoch` (its hash excludes
  /// the epoch, so promotion stays within the shard). Entries a racing batch
  /// inserts under the old epoch afterwards waste a slot but never match.
  /// Layers beyond dirty_layers.size() promote everything.
  EpochAdvance advance_epoch(std::uint64_t new_epoch,
                             const std::vector<std::vector<vid_t>>& dirty_layers);

  int num_layers() const { return static_cast<int>(layers_.size()); }
  /// Row width of layer l in floats (l in [1, num_layers]).
  std::size_t dim(int layer) const;
  std::uint64_t capacity_entries(int layer) const;

  CacheStats stats(int layer) const;
  CacheStats combined_stats() const;

 private:
  using LayerLru = ShardedLru<Key, std::vector<real_t>, KeyHash>;

  LayerLru& layer_lru(int layer);
  const LayerLru& layer_lru(int layer) const;

  std::vector<std::size_t> dims_;               // dims_[l-1] = width of h_l
  std::vector<std::unique_ptr<LayerLru>> layers_;  // layers_[l-1] caches h_l
};

/// Per-call counters for one EmbedForward::infer (monotone across calls).
struct EmbedForwardStats {
  std::uint64_t requests = 0;
  std::uint64_t layer_rows_computed = 0;  // (vertex, layer) pairs evaluated
  std::uint64_t sampled_blocks = 0;       // one-hop blocks actually sampled
};

/// The embedding-cached serving forward: memoized, level-by-level evaluation
/// of h_L(seed) with canonical per-(vertex, layer) sampling.
///
/// Downward pass: resolve each needed (vertex, layer) — feature rows come
/// through the feature cache, cached embeddings are copied out (pruning that
/// vertex's subtree), and only true misses expand their one-hop block.
/// Upward pass: each level's pending vertices are stacked into one
/// forward_layer call (the GEMM amortization of micro-batching, kept), and
/// freshly computed rows are inserted into the cache.
///
/// One instance per worker thread (scratch is not shareable); the caches are
/// thread-safe and shared.
class EmbedForward {
 public:
  /// `cache` and `feature_cache` may be null (uncached evaluation — the
  /// bitwise-equality baseline). The dataset must outlive the evaluator.
  EmbedForward(const Dataset& dataset, std::vector<int> fanouts, std::uint64_t sample_seed,
               EmbedCache* cache, ShardedFeatureCache* feature_cache);

  /// Computes logits (one row per seed, duplicates allowed) under
  /// `snapshot`. Bitwise-equal to any other evaluation of the same seeds
  /// under the same (snapshot, sample_seed, fanouts), cached or not.
  /// `graph_epoch` keys cache traffic to the serving graph's delta epoch —
  /// rows computed before a delta can never answer a lookup after it.
  void infer(const ModelSnapshot& snapshot, std::span<const vid_t> seeds, DenseMatrix& logits,
             std::uint64_t graph_epoch = 0);

  const EmbedForwardStats& stats() const { return stats_; }

 private:
  struct Level {
    std::unordered_map<vid_t, std::uint32_t> index;  // vertex -> row in values
    std::vector<real_t> values;                      // index.size() * dim rows
    std::vector<vid_t> pending;                      // rows still to compute
    std::vector<std::uint32_t> pending_row;
    std::vector<MiniBatch> blocks;                   // one-hop plan per pending

    void clear() {
      index.clear();
      values.clear();
      pending.clear();
      pending_row.clear();
      blocks.clear();
    }
  };

  /// Row of h_l(v) in levels_[l], discovering (and cache-probing) it on
  /// first touch.
  std::uint32_t resolve(int level, vid_t v, std::uint64_t version, std::size_t dim);

  const Dataset& dataset_;
  std::vector<int> fanouts_;
  std::uint64_t sample_seed_;
  EmbedCache* cache_;
  ShardedFeatureCache* feature_cache_;
  std::uint64_t graph_epoch_ = 0;  // set per infer(); keys cache traffic

  std::vector<Level> levels_;
  ForwardScratch fwd_scratch_;
  DenseMatrix inputs_, layer_out_;
  EmbedForwardStats stats_;
};

}  // namespace distgnn::serve
