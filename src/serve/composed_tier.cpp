#include "serve/composed_tier.hpp"

#include <stdexcept>

namespace distgnn::serve {

ComposedTier::ComposedTier(const Dataset& dataset, const EdgePartition& partition,
                           ComposedConfig config)
    : num_shards_(partition.num_parts),
      group_(dataset, config.replicas,
             [&](int) { return std::make_unique<ShardedServer>(dataset, partition, config.shard); }),
      router_(group_, config.policy, config.admission) {}

void ComposedTier::publish(std::shared_ptr<const ModelSnapshot> snapshot) {
  group_.publish_broadcast(std::move(snapshot));
}

bool ComposedTier::submit(vid_t vertex, ServeClock::time_point deadline, Priority priority,
                          std::function<void(InferResult&&)> done) {
  return router_.submit(vertex, deadline, priority, std::move(done));
}

std::vector<std::optional<InferResult>> ComposedTier::infer_batch(
    std::span<const vid_t> vertices, ServeClock::time_point deadline, Priority priority) {
  return router_.infer_batch(vertices, deadline, priority);
}

BackendStats ComposedTier::stats() const {
  BackendStats s = group_.stats();
  // The Router sheds before any replica queue sees the request; fold those
  // into the unified rejected counter so the composed tier reports one
  // admission picture.
  const RouterStats routed = router_.stats();
  s.rejected += routed.shed_deadline + routed.shed_priority;
  return s;
}

}  // namespace distgnn::serve
