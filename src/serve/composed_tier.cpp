#include "serve/composed_tier.hpp"

#include <stdexcept>

#include "obs/health.hpp"

namespace distgnn::serve {

ComposedTier::ComposedTier(const Dataset& dataset, const EdgePartition& partition,
                           ComposedConfig config)
    : num_shards_(partition.num_parts),
      total_queue_capacity_(static_cast<std::size_t>(config.replicas) *
                            static_cast<std::size_t>(partition.num_parts) *
                            config.shard.queue_capacity),
      tenant_slos_(config.admission.tenants),
      group_(dataset, config.replicas,
             [&](int) { return std::make_unique<ShardedServer>(dataset, partition, config.shard); }),
      router_(group_, config.policy, config.admission) {}

void ComposedTier::publish(std::shared_ptr<const ModelSnapshot> snapshot) {
  group_.publish_broadcast(std::move(snapshot));
}

bool ComposedTier::submit(vid_t vertex, const RequestMeta& meta,
                          std::function<void(InferResult&&)> done) {
  return router_.submit(vertex, meta, std::move(done));
}

std::vector<std::optional<InferResult>> ComposedTier::infer_batch(
    std::span<const vid_t> vertices, const RequestMeta& meta) {
  return router_.infer_batch(vertices, meta);
}

BackendStats ComposedTier::stats() const {
  BackendStats s = group_.stats();
  // The Router sheds before any replica queue sees the request; fold those
  // into the unified rejected counter so the composed tier reports one
  // admission picture. In tenant mode the Router's per-tenant lanes are the
  // authoritative accounting (the backends only ever see admitted traffic),
  // so they replace the leaves' view rather than merging with it.
  const RouterStats routed = router_.stats();
  s.rejected += routed.shed_deadline + routed.shed_priority + routed.shed_budget;
  if (!routed.tenants.empty()) s.tenants = routed.tenants;
  return s;
}

void ComposedTier::configure_health(obs::HealthMonitor& monitor,
                                    const std::string& name) const {
  monitor.add_source(name, *this);
  monitor.add_queue_probe(name, [this] { return queue_depth(); }, total_queue_capacity_);
  monitor.add_barrier_probe(name, [this] { return group_.publishing(); });
  for (std::size_t t = 0; t < tenant_slos_.size(); ++t) {
    const TenantSlo& slo = tenant_slos_[t];
    if (slo.deadline_seconds > 0)
      monitor.set_slo(static_cast<int>(t), slo.deadline_seconds, slo.slo_target);
  }
}

}  // namespace distgnn::serve
