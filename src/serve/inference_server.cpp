#include "serve/inference_server.hpp"

#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>

namespace distgnn::serve {

Rng request_rng(std::uint64_t sample_seed, vid_t vertex) {
  // splitmix64 over the vertex id, xored into the base seed: adjacent vertex
  // ids get uncorrelated streams, and the stream depends only on (seed,
  // vertex) — never on batch composition, worker id, or serving mode.
  return Rng(sample_seed ^ splitmix64(static_cast<std::uint64_t>(vertex)));
}

InferenceServer::InferenceServer(const Dataset& dataset, ServeConfig config)
    : dataset_(dataset),
      num_vertices_(dataset.num_vertices()),
      config_(std::move(config)),
      queue_(config_.queue_capacity),
      cache_(config_.cache_bytes, static_cast<std::size_t>(dataset.feature_dim()),
             config_.cache_shards) {
  if (config_.num_workers < 1) throw std::invalid_argument("InferenceServer: need >= 1 worker");
  if (config_.max_batch < 1) throw std::invalid_argument("InferenceServer: max_batch must be >= 1");
  if (config_.fanouts.empty()) throw std::invalid_argument("InferenceServer: fanouts empty");
  // Hot-swap invalidation for the layer-output cache: entries are
  // version-keyed (stale rows can never match), so the hook is capacity
  // hygiene — a publish frees the dead version's slots immediately.
  holder_.set_on_publish([this](std::uint64_t) {
    if (EmbedCache* cache = embed_cache_ptr()) cache->invalidate();
  });
  // Force CSR construction now so worker threads share the built structure.
  (void)dataset_.graph.in_csr();
}

InferenceServer::~InferenceServer() { stop(); }

void InferenceServer::publish(std::shared_ptr<const ModelSnapshot> snapshot) {
  if (!snapshot) throw std::invalid_argument("InferenceServer: null snapshot");
  const ModelSpec& spec = snapshot->spec();
  if (spec.num_layers != static_cast<int>(config_.fanouts.size()))
    throw std::invalid_argument("InferenceServer: fanouts depth != model layers");
  if (spec.feature_dim != dataset_.feature_dim())
    throw std::invalid_argument("InferenceServer: snapshot feature_dim != dataset");
  if (spec.kind == ModelKind::kRgcn) {
    // Relational models need typed edges: the dataset must carry a per-edge
    // relation label matching the snapshot's relation count.
    if (dataset_.num_edge_types != spec.num_relations)
      throw std::invalid_argument("InferenceServer: snapshot num_relations != dataset edge types");
    if (config_.embed_forward)
      throw std::invalid_argument("InferenceServer: embed_forward does not support RGCN");
  }
  if (config_.embed_forward && config_.embed_cache_bytes > 0) {
    util::MutexLock lock(embed_mutex_);
    if (!embed_cache_) {
      // First publish fixes the cached row widths; later snapshots must keep
      // them (per-layer dims are part of the cache geometry). Entries per
      // layer are capped at the vertex count — the whole key population,
      // since publish invalidation keeps a single version resident.
      embed_cache_ = std::make_unique<EmbedCache>(
          spec, config_.embed_cache_bytes, config_.embed_cache_shards,
          static_cast<std::uint64_t>(dataset_.num_vertices()));
    } else {
      for (int l = 1; l <= spec.num_layers; ++l)
        if (embed_cache_->dim(l) != spec.out_dim(l - 1))
          throw std::invalid_argument("InferenceServer: snapshot dims != embed cache dims");
    }
  }
  holder_.publish(std::move(snapshot));
}

void InferenceServer::start() {
  if (running_.load(std::memory_order_acquire)) return;
  if (!holder_.get()) throw std::logic_error("InferenceServer: start() before publish()");
  queue_.reopen();  // stop() closed it; a restarted server must admit again
  running_.store(true, std::memory_order_release);
  workers_.reserve(static_cast<std::size_t>(config_.num_workers));
  for (int w = 0; w < config_.num_workers; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

void InferenceServer::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  queue_.close();
  for (auto& t : workers_) t.join();
  workers_.clear();
  running_.store(false, std::memory_order_release);
}

bool InferenceServer::submit(vid_t vertex, const RequestMeta& meta,
                             std::function<void(InferResult&&)> done) {
  if (vertex < 0 || vertex >= num_vertices_)
    throw std::out_of_range("InferenceServer: vertex id out of range");
  const auto enqueue = ServeClock::now();
  InferRequest request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.vertex = vertex;
  request.enqueue = enqueue;
  request.deadline = meta.deadline;
  request.priority = meta.priority;
  request.tenant = meta.tenant;
  request.done = std::move(done);
  // Trace stamping happens entirely before the push — the request is moved
  // into the queue, and a post-push write would race the popping worker.
  if (meta.trace) {
    request.trace = meta.trace;
  } else if (config_.trace_sample_rate > 0 &&
             obs::trace_sampled(request.id, meta.tenant, config_.trace_sample_rate)) {
    request.trace = std::make_shared<obs::TraceContext>(
        request.id, meta.tenant, static_cast<std::int64_t>(vertex), enqueue);
  }
  const auto pre_push = ServeClock::now();
  if (request.trace) {
    request.trace->set_stage(obs::Stage::kAdmit, enqueue, pre_push);
    request.trace->begin_stage(obs::Stage::kQueue, pre_push);
  }
  // Admitted is counted before the push so a drain() that starts after this
  // submit returns can never miss the request (the rejection path undoes it).
  admitted_.fetch_add(1, std::memory_order_release);
  if (queue_.try_push(std::move(request))) {
    stage_metrics_.submitted.with(meta.tenant).add();
    stage_metrics_.observe_stage(obs::Stage::kAdmit, meta.tenant,
                                 std::chrono::duration<double>(pre_push - enqueue).count());
    return true;
  }
  admitted_.fetch_sub(1, std::memory_order_release);
  rejected_.fetch_add(1, std::memory_order_relaxed);
  stage_metrics_.submitted.with(meta.tenant).add();
  stage_metrics_.shed.with(meta.tenant).add();
  return false;
}

InferResult InferenceServer::infer_sync(vid_t vertex) {
  std::promise<InferResult> promise;
  auto future = promise.get_future();
  const auto enqueue = ServeClock::now();
  InferRequest request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.vertex = vertex;
  request.enqueue = enqueue;
  request.done = [&promise](InferResult&& r) { promise.set_value(std::move(r)); };
  // Closed-loop requests trace like submitted ones (stamped pre-push; the
  // blocking push orders the hand-off the same way try_push does).
  if (config_.trace_sample_rate > 0 &&
      obs::trace_sampled(request.id, kDefaultTenant, config_.trace_sample_rate)) {
    request.trace = std::make_shared<obs::TraceContext>(
        request.id, kDefaultTenant, static_cast<std::int64_t>(vertex), enqueue);
  }
  const auto pre_push = ServeClock::now();
  if (request.trace) {
    request.trace->set_stage(obs::Stage::kAdmit, enqueue, pre_push);
    request.trace->begin_stage(obs::Stage::kQueue, pre_push);
  }
  admitted_.fetch_add(1, std::memory_order_release);
  if (!queue_.push(std::move(request))) {
    admitted_.fetch_sub(1, std::memory_order_release);
    throw std::runtime_error("InferenceServer: infer_sync on a stopped server");
  }
  stage_metrics_.submitted.with(kDefaultTenant).add();
  stage_metrics_.observe_stage(obs::Stage::kAdmit, kDefaultTenant,
                               std::chrono::duration<double>(pre_push - enqueue).count());
  return future.get();
}

void InferenceServer::drain() {
  // Quiesce: everything admitted so far has completed. Polling keeps the
  // completion path free of extra synchronization; drains are rare (publish
  // barriers, shutdown) while completions are the hot path.
  while (completed_.load(std::memory_order_acquire) < admitted_.load(std::memory_order_acquire))
    std::this_thread::sleep_for(std::chrono::microseconds(50));
}

EmbedCache* InferenceServer::embed_cache_ptr() const {
  util::MutexLock lock(embed_mutex_);
  return embed_cache_.get();
}

void InferenceServer::apply_graph_update(const std::function<void()>& apply,
                                         const GraphUpdateNotice& notice) {
  // Exclusive acquisition = the barrier: every in-service batch holds the
  // gate shared, so this waits them out, then mutates while later batches
  // park on the shared acquisition. Queued requests are not drained — the
  // window is the apply + invalidate below, nothing more.
  util::WriterLock gate(graph_gate_);
  if (apply) apply();
  // Feature rows rewritten by the delta: evict their layer-0 cache entries
  // so the next gather refills from the updated store.
  for (const vid_t v : notice.features)
    cache_.erase(/*space=*/0, static_cast<std::uint64_t>(v));
  if (EmbedCache* cache = embed_cache_ptr()) {
    if (notice.full_flush)
      cache->invalidate();
    else
      cache->advance_epoch(notice.epoch, notice.dirty_layers);
  }
  graph_epoch_.store(notice.epoch, std::memory_order_release);
}

void InferenceServer::worker_loop() {
  if (config_.embed_forward) {
    // start() requires a prior publish, so the cache pointer is stable for
    // the whole worker lifetime.
    EmbedForward evaluator(dataset_, config_.fanouts, config_.sample_seed, embed_cache_ptr(),
                           &cache_);
    std::vector<vid_t> seeds;
    DenseMatrix logits;
    while (true) {
      std::vector<InferRequest> batch =
          queue_.pop_batch(config_.max_batch, config_.max_batch_delay);
      if (batch.empty()) return;  // closed and drained
      // The gate is shared per batch: a delta apply's exclusive acquisition
      // waits out in-service batches and parks new ones for the barrier
      // window; a batch popped just before the apply completes on the new
      // graph at the new epoch (reads see epoch e or e+1, never a mix).
      util::ReaderLock gate(graph_gate_);
      process_batch_embed(std::move(batch), evaluator, seeds, logits);
    }
  }
  ForwardScratch scratch;
  std::vector<MiniBatch> minibatches;
  DenseMatrix inputs, logits;
  while (true) {
    std::vector<InferRequest> batch = queue_.pop_batch(config_.max_batch, config_.max_batch_delay);
    if (batch.empty()) return;  // closed and drained
    util::ReaderLock gate(graph_gate_);  // see embed loop
    process_batch(std::move(batch), scratch, minibatches, inputs, logits);
  }
}

void InferenceServer::process_batch(std::vector<InferRequest>&& batch, ForwardScratch& scratch,
                                    std::vector<MiniBatch>& minibatches, DenseMatrix& inputs,
                                    DenseMatrix& logits) {
  const auto service_begin = ServeClock::now();
  const std::shared_ptr<const ModelSnapshot> snapshot = holder_.get();
  const CsrMatrix& in_csr = dataset_.graph.in_csr();
  const std::size_t f = static_cast<std::size_t>(dataset_.feature_dim());

  // Independent per-request neighbourhood sampling: the batch is a stacking
  // of single-request plans, so its outputs are bitwise those of per-request
  // serving, while the GEMMs and the feature gather run once per batch.
  minibatches.clear();
  std::size_t input_rows = 0;
  // Relational snapshots need each sampled edge's relation label; the typed
  // sampler draws the identical RNG stream, so SAGE/GAT answers are
  // unaffected by the dataset carrying edge types.
  const std::vector<int>* edge_types =
      snapshot->spec().kind == ModelKind::kRgcn ? &dataset_.edge_types : nullptr;
  for (const InferRequest& request : batch) {
    Rng rng = request_rng(config_.sample_seed, request.vertex);
    const vid_t seed[1] = {request.vertex};
    minibatches.push_back(sample_minibatch(in_csr, seed, config_.fanouts, rng, edge_types));
    input_rows += minibatches.back().input_vertices.size();
  }

  inputs.resize_discard(input_rows, f);
  std::size_t row = 0;
  for (const MiniBatch& mb : minibatches) {
    for (const vid_t v : mb.input_vertices) {
      cache_.get_or_fill(/*space=*/0, static_cast<std::uint64_t>(v), inputs.row(row),
                         [&](real_t* dst) {
                           const real_t* src = dataset_.features.row(static_cast<std::size_t>(v));
                           std::copy(src, src + f, dst);
                         });
      ++row;
    }
  }

  // Stage windows: `sample` covers plan + input-feature gather (minibatch
  // preparation on the single-process path), `forward` the GEMM stack.
  const auto forward_begin = ServeClock::now();
  snapshot->forward_batch(minibatches, inputs.cview(), scratch, logits);
  const auto forward_end = ServeClock::now();

  obs::BatchStageTimes stages;
  stages.sample = obs::make_span(service_begin, forward_begin);
  stages.forward = obs::make_span(forward_begin, forward_end);
  finish_batch(batch, logits, snapshot->version(), service_begin, stages);
}

void InferenceServer::process_batch_embed(std::vector<InferRequest>&& batch,
                                          EmbedForward& evaluator, std::vector<vid_t>& seeds,
                                          DenseMatrix& logits) {
  const auto service_begin = ServeClock::now();
  const std::shared_ptr<const ModelSnapshot> snapshot = holder_.get();
  seeds.clear();
  for (const InferRequest& request : batch) seeds.push_back(request.vertex);
  const auto embed_begin = ServeClock::now();
  evaluator.infer(*snapshot, seeds, logits, graph_epoch_.load(std::memory_order_acquire));
  const auto embed_end = ServeClock::now();

  // EmbedForward samples and computes per (vertex, layer) internally, so the
  // whole evaluation is one embed_lookup window.
  obs::BatchStageTimes stages;
  stages.embed_lookup = obs::make_span(embed_begin, embed_end);
  finish_batch(batch, logits, snapshot->version(), service_begin, stages);
}

void InferenceServer::finish_batch(std::vector<InferRequest>& batch, const DenseMatrix& logits,
                                   std::uint64_t snapshot_version,
                                   ServeClock::time_point service_begin,
                                   const obs::BatchStageTimes& stages) {
  const auto now = ServeClock::now();
  auto reply_begin = now;  // each request's reply window starts where the previous ended
  for (std::size_t r = 0; r < batch.size(); ++r) {
    InferRequest& request = batch[r];
    InferResult result;
    result.request_id = request.id;
    result.vertex = request.vertex;
    result.logits.assign(logits.row(r), logits.row(r) + logits.cols());
    result.latency_seconds = std::chrono::duration<double>(now - request.enqueue).count();
    result.snapshot_version = snapshot_version;
    result.tenant = request.tenant;

    // Batch-level stage windows, stamped per request: queue ended when the
    // worker popped the batch; sample/forward (or embed_lookup) are the batch
    // windows every rider shares.
    stage_metrics_.observe_stage(
        obs::Stage::kQueue, request.tenant,
        std::chrono::duration<double>(service_begin - request.enqueue).count());
    if (stages.sample.valid())
      stage_metrics_.observe_stage(obs::Stage::kSample, request.tenant,
                                   stages.sample.duration_seconds());
    if (stages.halo_wait.valid())
      stage_metrics_.observe_stage(obs::Stage::kHaloWait, request.tenant,
                                   stages.halo_wait.duration_seconds());
    if (stages.embed_lookup.valid())
      stage_metrics_.observe_stage(obs::Stage::kEmbedLookup, request.tenant,
                                   stages.embed_lookup.duration_seconds());
    if (stages.forward.valid())
      stage_metrics_.observe_stage(obs::Stage::kForward, request.tenant,
                                   stages.forward.duration_seconds());
    if (request.trace) {
      obs::TraceContext& trace = *request.trace;
      trace.end_stage(obs::Stage::kQueue, service_begin);
      if (stages.sample.valid()) trace.set_stage(obs::Stage::kSample, stages.sample);
      if (stages.halo_wait.valid()) trace.set_stage(obs::Stage::kHaloWait, stages.halo_wait);
      if (stages.embed_lookup.valid())
        trace.set_stage(obs::Stage::kEmbedLookup, stages.embed_lookup);
      if (stages.forward.valid()) trace.set_stage(obs::Stage::kForward, stages.forward);
      // The trace's reply span starts at batch finish, not at the chained
      // window: for a later rider the wait on its predecessors' callbacks is
      // part of its end-to-end reply latency, and the spans must cover the
      // measured total. The histogram below keeps the chained (marginal)
      // window so per-request reply costs still sum to the batch's.
      trace.begin_stage(obs::Stage::kReply, now);
    }

    if (request.done) request.done(std::move(result));
    const auto reply_end = ServeClock::now();
    stage_metrics_.observe_stage(obs::Stage::kReply, request.tenant,
                                 std::chrono::duration<double>(reply_end - reply_begin).count());
    stage_metrics_.request_seconds.with(request.tenant)
        .observe(std::chrono::duration<double>(reply_end - request.enqueue).count());
    stage_metrics_.completed.with(request.tenant).add();
    if (request.trace) {
      request.trace->end_stage(obs::Stage::kReply, reply_end);
      trace_sink_.publish(request.trace->finish(reply_end));
    }
    reply_begin = reply_end;
  }

  service_ns_.fetch_add(
      static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                     ServeClock::now() - service_begin)
                                     .count()),
      std::memory_order_relaxed);
  completed_.fetch_add(batch.size(), std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(batch.size(), std::memory_order_relaxed);
  std::uint64_t seen = max_batch_seen_.load(std::memory_order_relaxed);
  while (batch.size() > seen &&
         !max_batch_seen_.compare_exchange_weak(seen, batch.size(), std::memory_order_relaxed)) {
  }
}

double InferenceServer::mean_service_seconds() const {
  // Two atomic loads only — this sits on the per-request admission path, so
  // it must not take the cache-stats locks a full stats() call would.
  BackendStats s;
  s.completed = completed_.load(std::memory_order_relaxed);
  s.service_seconds = static_cast<double>(service_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return s.mean_service_seconds();
}

BackendStats InferenceServer::stats() const {
  BackendStats s;
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  s.max_batch_seen = max_batch_seen_.load(std::memory_order_relaxed);
  s.service_seconds = static_cast<double>(service_ns_.load(std::memory_order_relaxed)) * 1e-9;
  s.queue_depth = queue_.size();
  s.publishes = holder_.num_publishes();
  // Tenant lanes and the latency histogram fold out of the sharded metrics
  // (acquire loads) — the server keeps no second set of books.
  stage_metrics_.submitted.for_each(
      [&](int id, const obs::Counter& c) { s.tenant_lane(id).submitted = c.value(); });
  stage_metrics_.completed.for_each(
      [&](int id, const obs::Counter& c) { s.tenant_lane(id).completed = c.value(); });
  stage_metrics_.shed.for_each(
      [&](int id, const obs::Counter& c) { s.tenant_lane(id).shed = c.value(); });
  stage_metrics_.request_seconds.for_each(
      [&](int, const obs::Histogram& h) { s.latency += h.snapshot(); });
  s.feature_cache = cache_.stats(/*space=*/0);
  if (const EmbedCache* cache = embed_cache_ptr()) s.embed_cache = cache->combined_stats();
  return s;
}

void InferenceServer::scrape(obs::MetricsSnapshot& out) const { metrics_.scrape(out); }

void InferenceServer::collect_traces(std::vector<obs::Trace>& out) const {
  trace_sink_.collect(out);
}

}  // namespace distgnn::serve
