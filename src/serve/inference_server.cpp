#include "serve/inference_server.hpp"

#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>

namespace distgnn::serve {

Rng request_rng(std::uint64_t sample_seed, vid_t vertex) {
  // splitmix64 over the vertex id, xored into the base seed: adjacent vertex
  // ids get uncorrelated streams, and the stream depends only on (seed,
  // vertex) — never on batch composition, worker id, or serving mode.
  return Rng(sample_seed ^ splitmix64(static_cast<std::uint64_t>(vertex)));
}

InferenceServer::InferenceServer(const Dataset& dataset, ServeConfig config)
    : dataset_(dataset),
      config_(std::move(config)),
      queue_(config_.queue_capacity),
      cache_(config_.cache_bytes, static_cast<std::size_t>(dataset.feature_dim()),
             config_.cache_shards) {
  if (config_.num_workers < 1) throw std::invalid_argument("InferenceServer: need >= 1 worker");
  if (config_.max_batch < 1) throw std::invalid_argument("InferenceServer: max_batch must be >= 1");
  if (config_.fanouts.empty()) throw std::invalid_argument("InferenceServer: fanouts empty");
  // Hot-swap invalidation for the layer-output cache: entries are
  // version-keyed (stale rows can never match), so the hook is capacity
  // hygiene — a publish frees the dead version's slots immediately.
  holder_.set_on_publish([this](std::uint64_t) {
    if (EmbedCache* cache = embed_cache_ptr()) cache->invalidate();
  });
  // Force CSR construction now so worker threads share the built structure.
  (void)dataset_.graph.in_csr();
}

InferenceServer::~InferenceServer() { stop(); }

void InferenceServer::publish(std::shared_ptr<const ModelSnapshot> snapshot) {
  if (!snapshot) throw std::invalid_argument("InferenceServer: null snapshot");
  const ModelSpec& spec = snapshot->spec();
  if (spec.num_layers != static_cast<int>(config_.fanouts.size()))
    throw std::invalid_argument("InferenceServer: fanouts depth != model layers");
  if (spec.feature_dim != dataset_.feature_dim())
    throw std::invalid_argument("InferenceServer: snapshot feature_dim != dataset");
  if (spec.kind == ModelKind::kRgcn) {
    // Relational models need typed edges: the dataset must carry a per-edge
    // relation label matching the snapshot's relation count.
    if (dataset_.num_edge_types != spec.num_relations)
      throw std::invalid_argument("InferenceServer: snapshot num_relations != dataset edge types");
    if (config_.embed_forward)
      throw std::invalid_argument("InferenceServer: embed_forward does not support RGCN");
  }
  if (config_.embed_forward && config_.embed_cache_bytes > 0) {
    std::lock_guard<std::mutex> lock(embed_mutex_);
    if (!embed_cache_) {
      // First publish fixes the cached row widths; later snapshots must keep
      // them (per-layer dims are part of the cache geometry). Entries per
      // layer are capped at the vertex count — the whole key population,
      // since publish invalidation keeps a single version resident.
      embed_cache_ = std::make_unique<EmbedCache>(
          spec, config_.embed_cache_bytes, config_.embed_cache_shards,
          static_cast<std::uint64_t>(dataset_.num_vertices()));
    } else {
      for (int l = 1; l <= spec.num_layers; ++l)
        if (embed_cache_->dim(l) != spec.out_dim(l - 1))
          throw std::invalid_argument("InferenceServer: snapshot dims != embed cache dims");
    }
  }
  holder_.publish(std::move(snapshot));
}

void InferenceServer::start() {
  if (running_.load(std::memory_order_acquire)) return;
  if (!holder_.get()) throw std::logic_error("InferenceServer: start() before publish()");
  queue_.reopen();  // stop() closed it; a restarted server must admit again
  running_.store(true, std::memory_order_release);
  workers_.reserve(static_cast<std::size_t>(config_.num_workers));
  for (int w = 0; w < config_.num_workers; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

void InferenceServer::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  queue_.close();
  for (auto& t : workers_) t.join();
  workers_.clear();
  running_.store(false, std::memory_order_release);
}

bool InferenceServer::submit(vid_t vertex, const RequestMeta& meta,
                             std::function<void(InferResult&&)> done) {
  if (vertex < 0 || vertex >= dataset_.num_vertices())
    throw std::out_of_range("InferenceServer: vertex id out of range");
  InferRequest request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.vertex = vertex;
  request.enqueue = ServeClock::now();
  request.deadline = meta.deadline;
  request.priority = meta.priority;
  request.tenant = meta.tenant;
  request.done = std::move(done);
  // Admitted is counted before the push so a drain() that starts after this
  // submit returns can never miss the request (the rejection path undoes it).
  admitted_.fetch_add(1, std::memory_order_release);
  if (queue_.try_push(std::move(request))) {
    tenant_submitted(meta.tenant, /*admitted=*/true);
    return true;
  }
  admitted_.fetch_sub(1, std::memory_order_release);
  rejected_.fetch_add(1, std::memory_order_relaxed);
  tenant_submitted(meta.tenant, /*admitted=*/false);
  return false;
}

InferResult InferenceServer::infer_sync(vid_t vertex) {
  std::promise<InferResult> promise;
  auto future = promise.get_future();
  InferRequest request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.vertex = vertex;
  request.enqueue = ServeClock::now();
  request.done = [&promise](InferResult&& r) { promise.set_value(std::move(r)); };
  admitted_.fetch_add(1, std::memory_order_release);
  if (!queue_.push(std::move(request))) {
    admitted_.fetch_sub(1, std::memory_order_release);
    throw std::runtime_error("InferenceServer: infer_sync on a stopped server");
  }
  tenant_submitted(kDefaultTenant, /*admitted=*/true);
  return future.get();
}

void InferenceServer::tenant_submitted(tenant_t tenant, bool admitted) {
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  for (TenantCounters& lane : tenant_lanes_) {
    if (lane.tenant != tenant) continue;
    ++lane.submitted;
    if (!admitted) ++lane.shed;
    return;
  }
  tenant_lanes_.push_back(TenantCounters{tenant, 1, 0, admitted ? 0ull : 1ull});
}

void InferenceServer::tenant_completed(tenant_t tenant) {
  std::lock_guard<std::mutex> lock(tenants_mutex_);
  for (TenantCounters& lane : tenant_lanes_) {
    if (lane.tenant != tenant) continue;
    ++lane.completed;
    return;
  }
  tenant_lanes_.push_back(TenantCounters{tenant, 0, 1, 0});
}

void InferenceServer::drain() {
  // Quiesce: everything admitted so far has completed. Polling keeps the
  // completion path free of extra synchronization; drains are rare (publish
  // barriers, shutdown) while completions are the hot path.
  while (completed_.load(std::memory_order_acquire) < admitted_.load(std::memory_order_acquire))
    std::this_thread::sleep_for(std::chrono::microseconds(50));
}

EmbedCache* InferenceServer::embed_cache_ptr() const {
  std::lock_guard<std::mutex> lock(embed_mutex_);
  return embed_cache_.get();
}

void InferenceServer::worker_loop() {
  if (config_.embed_forward) {
    // start() requires a prior publish, so the cache pointer is stable for
    // the whole worker lifetime.
    EmbedForward evaluator(dataset_, config_.fanouts, config_.sample_seed, embed_cache_ptr(),
                           &cache_);
    std::vector<vid_t> seeds;
    DenseMatrix logits;
    while (true) {
      std::vector<InferRequest> batch =
          queue_.pop_batch(config_.max_batch, config_.max_batch_delay);
      if (batch.empty()) return;  // closed and drained
      process_batch_embed(std::move(batch), evaluator, seeds, logits);
    }
  }
  ForwardScratch scratch;
  std::vector<MiniBatch> minibatches;
  DenseMatrix inputs, logits;
  while (true) {
    std::vector<InferRequest> batch = queue_.pop_batch(config_.max_batch, config_.max_batch_delay);
    if (batch.empty()) return;  // closed and drained
    process_batch(std::move(batch), scratch, minibatches, inputs, logits);
  }
}

void InferenceServer::process_batch(std::vector<InferRequest>&& batch, ForwardScratch& scratch,
                                    std::vector<MiniBatch>& minibatches, DenseMatrix& inputs,
                                    DenseMatrix& logits) {
  const auto service_begin = ServeClock::now();
  const std::shared_ptr<const ModelSnapshot> snapshot = holder_.get();
  const CsrMatrix& in_csr = dataset_.graph.in_csr();
  const std::size_t f = static_cast<std::size_t>(dataset_.feature_dim());

  // Independent per-request neighbourhood sampling: the batch is a stacking
  // of single-request plans, so its outputs are bitwise those of per-request
  // serving, while the GEMMs and the feature gather run once per batch.
  minibatches.clear();
  std::size_t input_rows = 0;
  // Relational snapshots need each sampled edge's relation label; the typed
  // sampler draws the identical RNG stream, so SAGE/GAT answers are
  // unaffected by the dataset carrying edge types.
  const std::vector<int>* edge_types =
      snapshot->spec().kind == ModelKind::kRgcn ? &dataset_.edge_types : nullptr;
  for (const InferRequest& request : batch) {
    Rng rng = request_rng(config_.sample_seed, request.vertex);
    const vid_t seed[1] = {request.vertex};
    minibatches.push_back(sample_minibatch(in_csr, seed, config_.fanouts, rng, edge_types));
    input_rows += minibatches.back().input_vertices.size();
  }

  inputs.resize_discard(input_rows, f);
  std::size_t row = 0;
  for (const MiniBatch& mb : minibatches) {
    for (const vid_t v : mb.input_vertices) {
      cache_.get_or_fill(/*space=*/0, static_cast<std::uint64_t>(v), inputs.row(row),
                         [&](real_t* dst) {
                           const real_t* src = dataset_.features.row(static_cast<std::size_t>(v));
                           std::copy(src, src + f, dst);
                         });
      ++row;
    }
  }

  snapshot->forward_batch(minibatches, inputs.cview(), scratch, logits);
  finish_batch(batch, logits, snapshot->version(), service_begin);
}

void InferenceServer::process_batch_embed(std::vector<InferRequest>&& batch,
                                          EmbedForward& evaluator, std::vector<vid_t>& seeds,
                                          DenseMatrix& logits) {
  const auto service_begin = ServeClock::now();
  const std::shared_ptr<const ModelSnapshot> snapshot = holder_.get();
  seeds.clear();
  for (const InferRequest& request : batch) seeds.push_back(request.vertex);
  evaluator.infer(*snapshot, seeds, logits);
  finish_batch(batch, logits, snapshot->version(), service_begin);
}

void InferenceServer::finish_batch(std::vector<InferRequest>& batch, const DenseMatrix& logits,
                                   std::uint64_t snapshot_version,
                                   ServeClock::time_point service_begin) {
  const auto now = ServeClock::now();
  for (std::size_t r = 0; r < batch.size(); ++r) {
    InferResult result;
    result.request_id = batch[r].id;
    result.vertex = batch[r].vertex;
    result.logits.assign(logits.row(r), logits.row(r) + logits.cols());
    result.latency_seconds = std::chrono::duration<double>(now - batch[r].enqueue).count();
    result.snapshot_version = snapshot_version;
    result.tenant = batch[r].tenant;
    if (batch[r].done) batch[r].done(std::move(result));
    tenant_completed(batch[r].tenant);
  }

  service_ns_.fetch_add(
      static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                     ServeClock::now() - service_begin)
                                     .count()),
      std::memory_order_relaxed);
  completed_.fetch_add(batch.size(), std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(batch.size(), std::memory_order_relaxed);
  std::uint64_t seen = max_batch_seen_.load(std::memory_order_relaxed);
  while (batch.size() > seen &&
         !max_batch_seen_.compare_exchange_weak(seen, batch.size(), std::memory_order_relaxed)) {
  }
}

double InferenceServer::mean_service_seconds() const {
  // Two atomic loads only — this sits on the per-request admission path, so
  // it must not take the cache-stats locks a full stats() call would.
  BackendStats s;
  s.completed = completed_.load(std::memory_order_relaxed);
  s.service_seconds = static_cast<double>(service_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return s.mean_service_seconds();
}

BackendStats InferenceServer::stats() const {
  BackendStats s;
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  s.max_batch_seen = max_batch_seen_.load(std::memory_order_relaxed);
  s.service_seconds = static_cast<double>(service_ns_.load(std::memory_order_relaxed)) * 1e-9;
  s.queue_depth = queue_.size();
  s.publishes = holder_.num_publishes();
  {
    std::lock_guard<std::mutex> lock(tenants_mutex_);
    s.tenants = tenant_lanes_;
  }
  s.feature_cache = cache_.stats(/*space=*/0);
  if (const EmbedCache* cache = embed_cache_ptr()) s.embed_cache = cache->combined_stats();
  return s;
}

}  // namespace distgnn::serve
