// Asynchronous halo feature fetching for the sharded serving tier.
//
// serve_sharded's gather has two sides: owned rows come straight out of the
// rank's feature shard (through the local cache space), while halo rows —
// sampled neighbours owned by another rank — need a point-to-point
// request/response round trip. Synchronously, that round trip stalls the
// batch until the owning rank reaches a service point (often the *end of its
// own forward*), which is exactly the stall the paper's delayed remote
// aggregates eliminate on the training side.
//
// HaloFetcher splits the gather into begin_fetch (assemble local + cached
// rows, issue the requests, return immediately) and finish_fetch (absorb the
// responses, servicing peers while waiting). With two HaloBatch buffers the
// server issues batch N+1's requests before running batch N's forward, so
// the peer's reply and the wire transfer overlap compute and finish_fetch's
// measured wait collapses — wait_seconds per batch is the overlap metric the
// bench reports. Responses per (peer, tag) channel are FIFO, so in-order
// begin/finish pairs always match their own replies even with two batches in
// flight.
//
// Answers are unaffected: the fetch returns owner-authoritative rows either
// way, so prefetched batches stay bitwise-equal to the synchronous path.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "comm/world.hpp"
#include "sampling/minibatch.hpp"
#include "serve/feature_cache.hpp"
#include "util/matrix.hpp"

namespace distgnn::serve {

/// Fetch-side counters for one rank's HaloFetcher.
struct HaloFetchStats {
  std::uint64_t halo_rows_fetched = 0;  // rows that crossed a rank boundary
  std::uint64_t halo_bytes = 0;
  double wait_seconds = 0;          // time blocked inside finish_fetch
};

/// One in-flight gather: the caller samples `minibatches`, begin_fetch fills
/// `inputs` (local + cached rows immediately, halo rows on finish_fetch).
struct HaloBatch {
  std::vector<MiniBatch> minibatches;
  DenseMatrix inputs;

 private:
  friend class HaloFetcher;
  std::vector<std::vector<vid_t>> need;                     // per owner: unique missing ids
  std::vector<std::vector<std::vector<std::size_t>>> need_rows;  // input rows per missing id
  /// Rows of *other* in-flight batches piggybacked onto this batch's
  /// requests (a vertex two overlapping batches both miss travels once).
  std::vector<std::vector<std::vector<std::pair<HaloBatch*, std::size_t>>>> foreign_rows;
  std::unordered_map<vid_t, std::size_t> pending;           // vid -> index in need[owner]
  int outstanding = 0;                                      // owners still to respond
  bool in_flight = false;
};

class HaloFetcher {
 public:
  /// `owner` maps every vertex to its owning rank; `owned_rows`/`owned_index`
  /// are this rank's feature shard. All referenced state must outlive the
  /// fetcher. `cache` spaces follow the sharded-server convention (0 = owned
  /// rows, 1 = halo rows).
  HaloFetcher(Communicator& comm, std::span<const part_t> owner, const DenseMatrix& owned_rows,
              const std::unordered_map<vid_t, std::size_t>& owned_index,
              ShardedFeatureCache& cache);

  /// Answers any queued halo requests from peers; never blocks. Must keep
  /// being called from every wait loop on the rank (a plain blocking wait
  /// deadlocks: a peer may be blocked on our reply).
  void service_peers();

  /// Gathers what is resident (owned + cached halo rows) into batch.inputs
  /// and issues one grouped request per owner for the rest. A row already
  /// requested by another in-flight batch is not re-requested: the earlier
  /// batch's response fans out into this batch's inputs too. Returns
  /// immediately; the batch is in flight until finish_fetch.
  void begin_fetch(HaloBatch& batch);

  /// Blocks (servicing peers) until every outstanding halo row of `batch`
  /// has landed in batch.inputs and the halo cache. Batches must finish in
  /// begin order — the FIFO channel contract above.
  void finish_fetch(HaloBatch& batch);

  const HaloFetchStats& stats() const { return stats_; }

 private:
  Communicator& comm_;
  std::span<const part_t> owner_;
  const DenseMatrix& owned_rows_;
  const std::unordered_map<vid_t, std::size_t>& owned_index_;
  ShardedFeatureCache& cache_;
  std::size_t dim_;
  HaloFetchStats stats_;
  /// Vertex -> (requesting batch, index in its need[owner]) for every halo
  /// row currently on the wire; later begin_fetch calls piggyback on it.
  /// Valid while the referenced batch stays in flight (double-buffer usage:
  /// a batch's inputs are sized at begin and stable until its finish).
  std::unordered_map<vid_t, std::pair<HaloBatch*, std::size_t>> in_flight_;
};

}  // namespace distgnn::serve
