// Multi-tenant model registry: N named models served from one process.
//
// A production serving fleet rarely hosts one model. The registry owns N
// (name, SLO, ServingBackend) entries — each entry is a *tenant* — and is
// the front door for tenant-aware traffic: submit(tenant, vertex, done)
// stamps the entry's SLO into the RequestMeta (deadline, priority, tenant
// id), enforces the entry's token-bucket admission budget at the edge, and
// forwards to the entry's backend. Any ServingBackend can sit behind an
// entry: a plain InferenceServer, a ReplicaGroup with a weighted-fair
// Router, a ShardedServer, or a whole ComposedTier — so one tenant can be
// replicated x sharded while its neighbour is a single cheap server.
//
// Isolation properties the registry provides (and the multitenant bench
// measures):
//   - *Budget isolation*: each entry's TokenBucket sheds that tenant's
//     excess before it touches any queue, so tenant B's MMPP burst cannot
//     grow tenant A's backlog through the registry path.
//   - *Model isolation*: entries own disjoint backends (separate queues,
//     workers, caches), so service-time interference is bounded to the
//     machine's shared cores.
//   - *Independent hot-swap*: publish(tenant, snapshot) swaps exactly one
//     entry through its backend's own publish (version-barriered for
//     composite backends); other tenants' in-flight answers are untouched —
//     the registry test pins bitwise stability of B's answers across a swap
//     of A.
//
// The tenant id is the entry index (dense, stable for the registry's
// lifetime), which is also how per-tenant stats lanes and the Router's
// AdmissionConfig::tenants index their tenants.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/datasets.hpp"
#include "serve/backend.hpp"
#include "serve/inference_server.hpp"
#include "serve/tenant.hpp"
#include "serve/traffic_gen.hpp"
#include "util/sync.hpp"

namespace distgnn::obs {
class HealthMonitor;
}  // namespace distgnn::obs

namespace distgnn::serve {

class ModelRegistry : public obs::ScrapeSource {
 public:
  ModelRegistry() = default;
  ~ModelRegistry() override { stop(); }

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Registers a tenant: `slo.name` is the model's registry name, the rest
  /// of the SLO governs admission. Returns the tenant id (= entry index).
  /// If the registry is already started, the backend is started immediately
  /// (it must have a published snapshot by then).
  tenant_t add(TenantSlo slo, std::unique_ptr<ServingBackend> backend);
  /// Convenience: a fresh single-process InferenceServer over `dataset`.
  tenant_t add_server(TenantSlo slo, const Dataset& dataset, const ServeConfig& config);

  int num_models() const { return static_cast<int>(entries_.size()); }
  const TenantSlo& slo(tenant_t tenant) const { return entry(tenant).slo; }
  ServingBackend& backend(tenant_t tenant) { return *entry(tenant).backend; }
  const ServingBackend& backend(tenant_t tenant) const { return *entry(tenant).backend; }
  /// Registry name -> tenant id (nullopt when absent).
  std::optional<tenant_t> find(const std::string& name) const;

  /// Hot-swaps one tenant's model only. Composite backends run their own
  /// version barrier; every other tenant keeps serving throughout.
  void publish(tenant_t tenant, std::shared_ptr<const ModelSnapshot> snapshot);

  void start();
  void stop();

  /// Tenant-aware submission: stamps the entry's SLO into the RequestMeta
  /// (deadline from slo.deadline_seconds, priority, tenant id), charges the
  /// entry's token bucket, and forwards. Returns false when shed at the
  /// budget or rejected by the backend; `done` is then never invoked.
  bool submit(tenant_t tenant, vid_t vertex, std::function<void(InferResult&&)> done);

  /// Blocking single request with closed-loop backpressure: retries while
  /// the backend accepts (budget sheds wait for the bucket to refill) and
  /// throws once it stops.
  InferResult infer_sync(tenant_t tenant, vid_t vertex);

  /// Blocking batch under the tenant's SLO; nullopt where shed. The whole
  /// batch is charged to the budget up front (partial admission keeps the
  /// admitted prefix).
  std::vector<std::optional<InferResult>> infer_batch(tenant_t tenant,
                                                      std::span<const vid_t> vertices);

  /// children[t] is tenant t's backend snapshot labelled with its registry
  /// name; tenants[t] is the registry-edge lane (submitted / completed /
  /// shed, where shed counts budget sheds and backend rejections — the
  /// backends themselves only ever see admitted traffic).
  BackendStats stats() const;

  /// ScrapeSource over the whole registry: per-tenant registry-edge
  /// counters (distgnn_registry_*) plus every entry backend's scrape — one
  /// scrape of the registry walks every tenant's tower down to its leaves.
  void scrape(obs::MetricsSnapshot& out) const override;
  void collect_traces(std::vector<obs::Trace>& out) const override;

  /// Wires the registry into a HealthMonitor: the registry as a scrape
  /// source plus one burn-rate SLO per entry with a deadline (the entry's
  /// TenantSlo carries deadline_seconds and slo_target). Call after the
  /// tenants are added; the registry must outlive the monitor's last tick.
  void configure_health(obs::HealthMonitor& monitor,
                        const std::string& name = "registry") const;

 private:
  struct Entry {
    TenantSlo slo;
    std::unique_ptr<ServingBackend> backend;
    util::Mutex admission_mutex;  // serializes the (unsynchronized) bucket
    TokenBucket bucket GUARDED_BY(admission_mutex);
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> admitted{0};
    std::atomic<std::uint64_t> completed{0};
  };

  Entry& entry(tenant_t tenant);
  const Entry& entry(tenant_t tenant) const;
  RequestMeta make_meta(const Entry& e, tenant_t tenant) const;

  std::vector<std::unique_ptr<Entry>> entries_;
  bool started_ = false;
};

/// One tenant's open-loop arrival stream (the multi-tenant analogue of
/// TrafficGenerator::run_open_loop): `num_requests` requests at the
/// configured arrival instants, targeting uniform-random vertices of the
/// tenant's dataset.
struct TenantStream {
  tenant_t tenant = kDefaultTenant;
  ArrivalConfig arrivals;
  std::size_t num_requests = 400;
  /// Vertex-choice stream (independent of the arrival seed).
  std::uint64_t seed = 11;
};

/// Drives all streams concurrently — one thread per stream, one shared
/// t=0 — so K independent MMPP processes hit the registry the way K real
/// tenants would. reports[i] covers streams[i] (label = tenant name);
/// rejected counts budget sheds and backend rejections.
std::vector<LoadReport> run_registry_open_loop(ModelRegistry& registry,
                                               std::span<const TenantStream> streams);

}  // namespace distgnn::serve
