// Replicated x sharded serving: R ShardedServer replicas over P shards.
//
// The two scaling axes finally stack. Sharding (ShardedServer) is memory
// scaling — each of P ranks holds 1/P of the feature store and serves its
// owned vertices, reaching the rest through the halo protocol. Replication
// (ReplicaGroup) is read scaling — R identical backends answer any request
// interchangeably. ComposedTier replicates whole sharded deployments: R
// ShardedServers of P ranks each (R·P serving ranks total), fronted by the
// same Router policies (round-robin / least-outstanding / p2c) and
// deadline-aware admission control the flat replicated tier uses — the
// ServingBackend contract is what lets the Router treat a 2-rank sharded
// deployment exactly like a single server.
//
// Publication is one group operation over the whole R×P grid: the version
// barrier (ReplicaGroup::publish_broadcast) drains every admitted request,
// then the snapshot travels the broadcast_snapshot wire path — replica 0
// publishes, every other replica reconstructs a bitwise-identical model
// from the flattened payload — and only then does admission re-open. A
// client batch is admitted under one epoch, so no batch ever mixes snapshot
// versions across the grid.
//
// Every replica samples with the same request_rng(sample_seed, vertex)
// stream, so ComposedTier answers are bitwise-equal to a single
// InferenceServer over the same snapshot — the property the composed bench
// and CI smoke pin at (R, P) = (2, 2).
#pragma once

#include <cstdint>
#include <memory>

#include "partition/libra.hpp"
#include "serve/backend.hpp"
#include "serve/replica_group.hpp"
#include "serve/router.hpp"
#include "serve/sharded_server.hpp"

namespace distgnn::obs {
class HealthMonitor;
}  // namespace distgnn::obs

namespace distgnn::serve {

struct ComposedConfig {
  int replicas = 2;             // R: identical sharded deployments
  ShardedServeConfig shard;     // per-replica sharded config (P = partition parts)
  RoutePolicy policy = RoutePolicy::kPowerOfTwo;
  AdmissionConfig admission;
};

class ComposedTier : public ServingBackend {
 public:
  /// R replicas, each a ShardedServer over `partition` (P = num_parts). The
  /// dataset and the tier share lifetimes; the partition is only read at
  /// construction.
  ComposedTier(const Dataset& dataset, const EdgePartition& partition, ComposedConfig config);
  /// Stops the group first: router_ is declared after group_ (destroyed
  /// first), and in-flight completion callbacks write through the Router.
  ~ComposedTier() override { group_.stop(); }

  ComposedTier(const ComposedTier&) = delete;
  ComposedTier& operator=(const ComposedTier&) = delete;

  /// Version-barriered grid publish via the broadcast wire path (see file
  /// comment). After it returns every rank of every replica serves
  /// `snapshot`'s version.
  void publish(std::shared_ptr<const ModelSnapshot> snapshot) override;
  std::shared_ptr<const ModelSnapshot> snapshot() const override { return group_.snapshot(); }

  void start() override { group_.start(); }
  void stop() override { group_.stop(); }

  using ServingBackend::submit;
  /// Routed + admission-controlled submission: false means the request was
  /// shed (budget empty, deadline unmeetable, priority lane, or queue full)
  /// — exactly the Router contract the flat replicated tier exposes.
  bool submit(vid_t vertex, const RequestMeta& meta,
              std::function<void(InferResult&&)> done) override;
  using ServingBackend::infer_batch;
  /// Whole batch under one admission epoch (single snapshot version).
  std::vector<std::optional<InferResult>> infer_batch(std::span<const vid_t> vertices,
                                                      const RequestMeta& meta) override;

  /// Graph mutation over the whole R×P grid, under the group's version
  /// barrier: replica 0's ShardedServer runs the real apply (the dataset is
  /// shared), every replica parks its ranks and invalidates per the notice.
  void apply_graph_update(const std::function<void()>& apply,
                          const GraphUpdateNotice& notice) override {
    group_.apply_graph_update(apply, notice);
  }
  std::uint64_t graph_epoch() const override { return group_.graph_epoch(); }

  std::size_t queue_depth() const override { return group_.queue_depth(); }
  void drain() override { group_.drain(); }
  bool accepting() const override { return group_.accepting(); }
  double mean_service_seconds() const override { return group_.mean_service_seconds(); }
  int concurrency() const override { return group_.concurrency(); }
  const Dataset& dataset() const override { return group_.dataset(); }
  /// Aggregate over the grid: children[r] is replica r (whose own children
  /// are its P ranks); rejected folds in the Router's shed counts.
  BackendStats stats() const override;
  /// ScrapeSource: one walk of the whole tier — router counters, group
  /// publishes, and every replica's (sharded) stage histograms. The Router
  /// already recurses into the group, so this delegates to it.
  void scrape(obs::MetricsSnapshot& out) const override { router_.scrape(out); }
  void collect_traces(std::vector<obs::Trace>& out) const override {
    group_.collect_traces(out);
  }

  int num_replicas() const { return group_.num_replicas(); }
  int num_shards() const { return num_shards_; }
  std::uint64_t version() const { return group_.version(); }

  /// The admission/routing front — open-loop drivers and the composed bench
  /// reuse run_router_open_loop unchanged through this.
  Router& router() { return router_; }
  ReplicaGroup& group() { return group_; }

  /// Wires the tier into a HealthMonitor: the tier as a scrape source, a
  /// queue-saturation probe over the grid's aggregate queue capacity, a
  /// barrier-stuck probe over the group's publish barrier, and one SLO per
  /// admission tenant with a deadline (burn-rate rule). The tier must
  /// outlive the monitor's last tick.
  void configure_health(obs::HealthMonitor& monitor, const std::string& name = "tier") const;

 private:
  int num_shards_;
  std::size_t total_queue_capacity_;
  std::vector<TenantSlo> tenant_slos_;  // admission tenants, kept for health wiring
  ReplicaGroup group_;
  Router router_;
};

}  // namespace distgnn::serve
