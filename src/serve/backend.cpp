#include "serve/backend.hpp"

#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace distgnn::serve {

std::vector<std::optional<InferResult>> ServingBackend::infer_batch(
    std::span<const vid_t> vertices, const RequestMeta& meta) {
  const std::size_t n = vertices.size();
  std::vector<std::optional<InferResult>> results(n);
  if (n == 0) return results;

  std::mutex mutex;
  std::condition_variable cv;
  std::size_t pending = 0;
  for (std::size_t i = 0; i < n; ++i) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      ++pending;
    }
    const bool ok = submit(vertices[i], meta, [&, i](InferResult&& result) {
      std::lock_guard<std::mutex> lock(mutex);
      results[i] = std::move(result);
      if (--pending == 0) cv.notify_all();
    });
    if (!ok) {
      std::lock_guard<std::mutex> lock(mutex);
      if (--pending == 0) cv.notify_all();
    }
  }
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return pending == 0; });
  return results;
}

InferResult ServingBackend::infer_sync(vid_t vertex) {
  // Closed-loop callers want backpressure: a full bounded queue means "wait
  // your turn", not "drop". Retry with a short sleep so a burst of blocking
  // clients does not spin the admission path — but a backend that stopped
  // accepting will reject forever, so that case must throw, not wait.
  std::promise<InferResult> promise;
  auto future = promise.get_future();
  while (!submit(vertex, [&promise](InferResult&& r) { promise.set_value(std::move(r)); })) {
    if (!accepting()) throw std::runtime_error("ServingBackend: infer_sync on a stopped backend");
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  return future.get();
}

}  // namespace distgnn::serve
