#include "serve/backend.hpp"

#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>

namespace distgnn::serve {

TenantFoldReport check_tenant_fold(const BackendStats& stats, bool edge_authoritative) {
  TenantFoldReport report;
  if (stats.children.empty()) return report;

  // Does any child carry tenant lanes at all? A ShardedServer's ranks don't
  // (lanes live at the server edge) — nothing to check against.
  bool children_have_lanes = false;
  for (const BackendStats& child : stats.children)
    if (!child.tenants.empty()) children_have_lanes = true;
  if (!children_have_lanes) return report;

  const auto fail = [&](tenant_t tenant, const char* field, std::uint64_t parent,
                        std::uint64_t fold) {
    report.consistent = false;
    report.detail = "tenant " + std::to_string(tenant) + ": parent " + field + "=" +
                    std::to_string(parent) + " vs children fold=" + std::to_string(fold);
  };

  // Union of tenant ids across parent and children (a lane present below but
  // missing above is exactly the silent under-count this helper exists for).
  std::vector<tenant_t> ids;
  const auto note = [&](tenant_t t) {
    for (const tenant_t id : ids)
      if (id == t) return;
    ids.push_back(t);
  };
  for (const TenantCounters& lane : stats.tenants) note(lane.tenant);
  for (const BackendStats& child : stats.children)
    for (const TenantCounters& lane : child.tenants) note(lane.tenant);

  for (const tenant_t id : ids) {
    TenantCounters fold{id, 0, 0, 0};
    for (const BackendStats& child : stats.children) {
      if (const TenantCounters* lane = child.find_tenant(id)) {
        fold.submitted += lane->submitted;
        fold.completed += lane->completed;
        fold.shed += lane->shed;
      }
    }
    const TenantCounters* parent = stats.find_tenant(id);
    const TenantCounters zero{id, 0, 0, 0};
    if (!parent) parent = &zero;
    if (parent->completed != fold.completed) {
      fail(id, "completed", parent->completed, fold.completed);
      return report;
    }
    if (edge_authoritative) {
      // The edge admits before children see anything, so its submitted/shed
      // dominate the fold.
      if (parent->submitted < fold.submitted) {
        fail(id, "submitted(edge >=)", parent->submitted, fold.submitted);
        return report;
      }
      if (parent->shed < fold.shed) {
        fail(id, "shed(edge >=)", parent->shed, fold.shed);
        return report;
      }
    } else {
      if (parent->submitted != fold.submitted) {
        fail(id, "submitted", parent->submitted, fold.submitted);
        return report;
      }
      if (parent->shed != fold.shed) {
        fail(id, "shed", parent->shed, fold.shed);
        return report;
      }
    }
  }
  return report;
}

std::vector<std::optional<InferResult>> ServingBackend::infer_batch(
    std::span<const vid_t> vertices, const RequestMeta& meta) {
  const std::size_t n = vertices.size();
  std::vector<std::optional<InferResult>> results(n);
  if (n == 0) return results;

  util::Mutex mutex;
  util::CondVar cv;
  std::size_t pending = 0;
  for (std::size_t i = 0; i < n; ++i) {
    {
      util::MutexLock lock(mutex);
      ++pending;
    }
    const bool ok = submit(vertices[i], meta, [&, i](InferResult&& result) {
      util::MutexLock lock(mutex);
      results[i] = std::move(result);
      if (--pending == 0) cv.notify_all();
    });
    if (!ok) {
      util::MutexLock lock(mutex);
      if (--pending == 0) cv.notify_all();
    }
  }
  util::MutexLock lock(mutex);
  while (pending != 0) cv.wait(lock);
  return results;
}

void ServingBackend::apply_graph_update(const std::function<void()>& apply,
                                        const GraphUpdateNotice& notice) {
  // Default: quiesce, then mutate. Backends with worker loops override with
  // a real barrier (readers parked, caches invalidated per the notice).
  (void)notice;
  drain();
  if (apply) apply();
}

InferResult ServingBackend::infer_sync(vid_t vertex) {
  // Closed-loop callers want backpressure: a full bounded queue means "wait
  // your turn", not "drop". Retry with a short sleep so a burst of blocking
  // clients does not spin the admission path — but a backend that stopped
  // accepting will reject forever, so that case must throw, not wait.
  std::promise<InferResult> promise;
  auto future = promise.get_future();
  while (!submit(vertex, [&promise](InferResult&& r) { promise.set_value(std::move(r)); })) {
    if (!accepting()) throw std::runtime_error("ServingBackend: infer_sync on a stopped backend");
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  return future.get();
}

}  // namespace distgnn::serve
