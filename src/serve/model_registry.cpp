#include "serve/model_registry.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "obs/health.hpp"
#include "util/rng.hpp"

namespace distgnn::serve {

ModelRegistry::Entry& ModelRegistry::entry(tenant_t tenant) {
  if (tenant < 0 || static_cast<std::size_t>(tenant) >= entries_.size())
    throw std::out_of_range("ModelRegistry: unknown tenant id");
  return *entries_[static_cast<std::size_t>(tenant)];
}

const ModelRegistry::Entry& ModelRegistry::entry(tenant_t tenant) const {
  if (tenant < 0 || static_cast<std::size_t>(tenant) >= entries_.size())
    throw std::out_of_range("ModelRegistry: unknown tenant id");
  return *entries_[static_cast<std::size_t>(tenant)];
}

tenant_t ModelRegistry::add(TenantSlo slo, std::unique_ptr<ServingBackend> backend) {
  if (!backend) throw std::invalid_argument("ModelRegistry: null backend");
  if (slo.name.empty()) throw std::invalid_argument("ModelRegistry: tenant needs a name");
  if (find(slo.name)) throw std::invalid_argument("ModelRegistry: duplicate name " + slo.name);
  auto e = std::make_unique<Entry>();
  e->bucket = TokenBucket(slo.rate_limit, slo.burst);
  e->slo = std::move(slo);
  e->backend = std::move(backend);
  if (started_) e->backend->start();
  entries_.push_back(std::move(e));
  return static_cast<tenant_t>(entries_.size() - 1);
}

tenant_t ModelRegistry::add_server(TenantSlo slo, const Dataset& dataset,
                                   const ServeConfig& config) {
  return add(std::move(slo), std::make_unique<InferenceServer>(dataset, config));
}

std::optional<tenant_t> ModelRegistry::find(const std::string& name) const {
  for (std::size_t i = 0; i < entries_.size(); ++i)
    if (entries_[i]->slo.name == name) return static_cast<tenant_t>(i);
  return std::nullopt;
}

void ModelRegistry::publish(tenant_t tenant, std::shared_ptr<const ModelSnapshot> snapshot) {
  entry(tenant).backend->publish(std::move(snapshot));
}

void ModelRegistry::start() {
  if (started_) return;
  for (auto& e : entries_) e->backend->start();
  started_ = true;
}

void ModelRegistry::stop() {
  if (!started_) return;
  for (auto& e : entries_) e->backend->stop();
  started_ = false;
}

RequestMeta ModelRegistry::make_meta(const Entry& e, tenant_t tenant) const {
  RequestMeta meta;
  if (e.slo.deadline_seconds > 0)
    meta.deadline = ServeClock::now() + std::chrono::duration_cast<ServeClock::duration>(
                                            std::chrono::duration<double>(e.slo.deadline_seconds));
  meta.priority = e.slo.priority;
  meta.tenant = tenant;
  return meta;
}

bool ModelRegistry::submit(tenant_t tenant, vid_t vertex,
                           std::function<void(InferResult&&)> done) {
  Entry& e = entry(tenant);
  e.submitted.fetch_add(1, std::memory_order_relaxed);
  {
    util::MutexLock lock(e.admission_mutex);
    if (!e.bucket.try_take(ServeClock::now())) return false;  // budget shed
  }
  const bool ok = e.backend->submit(
      vertex, make_meta(e, tenant),
      [&e, user_done = std::move(done)](InferResult&& result) mutable {
        // Count before the user callback so a blocking caller that wakes
        // inside it observes its own completion in stats().
        e.completed.fetch_add(1, std::memory_order_relaxed);
        if (user_done) user_done(std::move(result));
      });
  if (ok) e.admitted.fetch_add(1, std::memory_order_relaxed);
  return ok;
}

InferResult ModelRegistry::infer_sync(tenant_t tenant, vid_t vertex) {
  util::Mutex mutex;
  util::CondVar cv;
  bool ready = false;
  InferResult out;
  for (;;) {
    const bool ok = submit(tenant, vertex, [&](InferResult&& result) {
      util::MutexLock lock(mutex);
      out = std::move(result);
      ready = true;
      cv.notify_all();
    });
    if (ok) break;
    if (!entry(tenant).backend->accepting())
      throw std::runtime_error("ModelRegistry: backend stopped while inferring");
    // Closed-loop backpressure: a budget shed or full queue means wait, not
    // fail (the bucket refills continuously).
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  util::MutexLock lock(mutex);
  while (!ready) cv.wait(lock);
  return out;
}

std::vector<std::optional<InferResult>> ModelRegistry::infer_batch(
    tenant_t tenant, std::span<const vid_t> vertices) {
  Entry& e = entry(tenant);
  const std::size_t n = vertices.size();
  e.submitted.fetch_add(n, std::memory_order_relaxed);
  // Charge the budget up front; the admitted prefix proceeds as one batch
  // under the backend's admission epoch.
  std::size_t affordable = 0;
  {
    util::MutexLock lock(e.admission_mutex);
    const auto now = ServeClock::now();
    while (affordable < n && e.bucket.try_take(now)) ++affordable;
  }
  std::vector<std::optional<InferResult>> results(n);
  if (affordable == 0) return results;
  auto answered = e.backend->infer_batch(vertices.first(affordable), make_meta(e, tenant));
  std::uint64_t got = 0;
  for (std::size_t i = 0; i < answered.size(); ++i) {
    if (!answered[i]) continue;
    results[i] = std::move(answered[i]);
    ++got;
  }
  e.admitted.fetch_add(got, std::memory_order_relaxed);
  e.completed.fetch_add(got, std::memory_order_relaxed);
  return results;
}

BackendStats ModelRegistry::stats() const {
  BackendStats s;
  s.label = "registry";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    BackendStats child = entries_[i]->backend->stats();
    child.label = entries_[i]->slo.name;
    s.absorb(std::move(child));
  }
  // The registry edge is the authoritative per-tenant accounting: backends
  // only ever see admitted traffic, so their lanes undercount sheds.
  s.tenants.clear();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = *entries_[i];
    TenantCounters lane;
    lane.tenant = static_cast<tenant_t>(i);
    lane.submitted = e.submitted.load(std::memory_order_relaxed);
    lane.completed = e.completed.load(std::memory_order_relaxed);
    const std::uint64_t admitted = e.admitted.load(std::memory_order_relaxed);
    lane.shed = lane.submitted - admitted;
    s.tenants.push_back(lane);
  }
  return s;
}

void ModelRegistry::scrape(obs::MetricsSnapshot& out) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = *entries_[i];
    const obs::Labels labels{{"tenant", std::to_string(i)}};
    const std::uint64_t submitted = e.submitted.load(std::memory_order_relaxed);
    const std::uint64_t admitted = e.admitted.load(std::memory_order_relaxed);
    out.add_counter("distgnn_registry_submitted_total", labels, static_cast<double>(submitted));
    out.add_counter("distgnn_registry_admitted_total", labels, static_cast<double>(admitted));
    out.add_counter("distgnn_registry_completed_total", labels,
                    static_cast<double>(e.completed.load(std::memory_order_relaxed)));
    out.add_counter("distgnn_registry_shed_total", labels,
                    static_cast<double>(submitted - admitted));
    e.backend->scrape(out);
  }
}

void ModelRegistry::collect_traces(std::vector<obs::Trace>& out) const {
  for (const auto& e : entries_) e->backend->collect_traces(out);
}

void ModelRegistry::configure_health(obs::HealthMonitor& monitor,
                                     const std::string& name) const {
  monitor.add_source(name, *this);
  for (std::size_t t = 0; t < entries_.size(); ++t) {
    const TenantSlo& slo = entries_[t]->slo;
    if (slo.deadline_seconds > 0)
      monitor.set_slo(static_cast<int>(t), slo.deadline_seconds, slo.slo_target);
  }
}

obs::HealthConfig make_health_config(const TierConfig& config) {
  obs::HealthConfig health;
  health.scrape_period_seconds = config.health_scrape_period_seconds;
  health.burn_fast_window_seconds = config.health_fast_window_seconds;
  health.burn_slow_window_seconds = config.health_slow_window_seconds;
  return health;
}

std::vector<LoadReport> run_registry_open_loop(ModelRegistry& registry,
                                               std::span<const TenantStream> streams) {
  struct StreamRun {
    std::vector<double> offsets;
    std::vector<vid_t> targets;
    LatencyRecorder latencies;
    util::Mutex mutex;
    util::CondVar cv;
    std::size_t accounted = 0;
    std::uint64_t rejected = 0;
    double duration = 0;
    BackendStats before;
  };

  std::vector<std::unique_ptr<StreamRun>> runs;
  for (const TenantStream& stream : streams) {
    auto run = std::make_unique<StreamRun>();
    run->offsets = generate_arrivals(stream.arrivals, stream.num_requests);
    const auto num_vertices = static_cast<std::uint64_t>(
        registry.backend(stream.tenant).dataset().num_vertices());
    Rng rng(stream.seed);
    run->targets.reserve(stream.num_requests);
    for (std::size_t i = 0; i < stream.num_requests; ++i)
      run->targets.push_back(static_cast<vid_t>(rng.next_below(num_vertices)));
    run->before = registry.backend(stream.tenant).stats();
    runs.push_back(std::move(run));
  }

  // One shared t=0 so the K arrival processes genuinely overlap.
  const auto begin = ServeClock::now();
  std::vector<std::thread> threads;
  for (std::size_t si = 0; si < streams.size(); ++si) {
    threads.emplace_back([&, si] {
      const TenantStream& stream = streams[si];
      StreamRun& run = *runs[si];
      const auto account = [&](bool was_rejected) {
        util::MutexLock lock(run.mutex);
        if (was_rejected) ++run.rejected;
        ++run.accounted;
        if (run.accounted == stream.num_requests) run.cv.notify_all();
      };
      for (std::size_t i = 0; i < stream.num_requests; ++i) {
        std::this_thread::sleep_until(begin + std::chrono::duration<double>(run.offsets[i]));
        const bool accepted =
            registry.submit(stream.tenant, run.targets[i], [&](InferResult&& result) {
              run.latencies.record(result.latency_seconds);
              account(false);
            });
        if (!accepted) account(true);
      }
      {
        util::MutexLock lock(run.mutex);
        while (run.accounted != stream.num_requests) run.cv.wait(lock);
      }
      run.duration = std::chrono::duration<double>(ServeClock::now() - begin).count();
    });
  }
  for (std::thread& t : threads) t.join();

  std::vector<LoadReport> reports;
  for (std::size_t si = 0; si < streams.size(); ++si) {
    const TenantStream& stream = streams[si];
    StreamRun& run = *runs[si];
    LoadReport report;
    report.label = registry.slo(stream.tenant).name;
    report.duration_seconds = run.duration;
    report.offered = stream.num_requests;
    report.rejected = run.rejected;
    report.completed = stream.num_requests - run.rejected;
    report.qps = run.duration > 0 ? static_cast<double>(report.completed) / run.duration : 0.0;
    fill_latency_fields(report, run.latencies);
    const BackendStats after = registry.backend(stream.tenant).stats();
    const std::uint64_t batches = after.batches - run.before.batches;
    if (batches > 0)
      report.mean_batch = static_cast<double>(after.batched_requests - run.before.batched_requests) /
                          static_cast<double>(batches);
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace distgnn::serve
