// Request/response types and the bounded micro-batching queue shared by the
// single-process and sharded inference servers.
//
// The queue is the admission point of the serving pipeline: producers
// (traffic generators, RPC shims) push single-vertex inference requests;
// worker threads pop *batches* under a dynamic micro-batching policy — a
// batch closes when it reaches `max_batch` requests or when `max_delay` has
// elapsed since its first request was popped, whichever comes first. Bounded
// capacity gives open-loop load a real rejection path instead of unbounded
// queue growth.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "serve/tenant.hpp"
#include "util/sync.hpp"
#include "util/types.hpp"

namespace distgnn::serve {

struct InferResult {
  std::uint64_t request_id = 0;
  vid_t vertex = kInvalidVertex;
  std::vector<real_t> logits;          // num_classes entries
  double latency_seconds = 0.0;        // submit -> completion
  std::uint64_t snapshot_version = 0;  // which model produced this answer
  tenant_t tenant = kDefaultTenant;    // echo of the request's tenant lane
};

struct InferRequest {
  std::uint64_t id = 0;
  vid_t vertex = kInvalidVertex;
  ServeClock::time_point enqueue{};
  /// Admission-control metadata. The router decides at submit time whether
  /// the deadline is meetable; once admitted a request is always answered,
  /// even if its deadline has since slipped — late answers keep the
  /// bitwise-equality contract with single-server serving.
  ServeClock::time_point deadline = ServeClock::time_point::max();
  Priority priority = Priority::kHigh;
  tenant_t tenant = kDefaultTenant;
  /// Stage trace for sampled requests (null = untraced). Written by the
  /// submit thread before the push and by the owning worker after the pop;
  /// the queue mutex orders the hand-off.
  std::shared_ptr<obs::TraceContext> trace;
  std::function<void(InferResult&&)> done;  // invoked exactly once per request
};

class BoundedRequestQueue {
 public:
  explicit BoundedRequestQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Non-blocking admission; false when the queue is full or closed (the
  /// caller counts a rejection).
  bool try_push(InferRequest request) {
    {
      util::MutexLock lock(mutex_);
      if (closed_ || queue_.size() >= capacity_) return false;
      queue_.push_back(std::move(request));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking admission; false only when the queue is closed.
  bool push(InferRequest request) {
    {
      util::MutexLock lock(mutex_);
      while (!closed_ && queue_.size() >= capacity_) not_full_.wait(lock);
      if (closed_) return false;
      queue_.push_back(std::move(request));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Pops the next micro-batch: blocks for the first request, then keeps
  /// accepting until the batch is full or `max_delay` has passed since the
  /// first pop. An empty result means the queue is closed and drained.
  std::vector<InferRequest> pop_batch(int max_batch, std::chrono::microseconds max_delay) {
    std::vector<InferRequest> batch;
    util::MutexLock lock(mutex_);
    while (!closed_ && queue_.empty()) not_empty_.wait(lock);
    if (queue_.empty()) return batch;  // closed and drained

    const auto deadline = ServeClock::now() + max_delay;
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
    while (static_cast<int>(batch.size()) < max_batch) {
      if (queue_.empty()) {
        if (closed_) break;
        while (!closed_ && queue_.empty()) {
          if (not_empty_.wait_until(lock, deadline) == std::cv_status::timeout)
            break;  // delay budget exhausted
        }
        if (queue_.empty()) break;
      }
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    lock.unlock();
    not_full_.notify_all();
    return batch;
  }

  /// Non-blocking batch pop: takes up to `max_batch` immediately-available
  /// requests, empty when none are waiting. The sharded rank loops use this
  /// instead of pop_batch because a rank that blocked waiting for local work
  /// would stop answering peers' halo requests (distributed deadlock).
  std::vector<InferRequest> try_pop_batch(int max_batch) {
    std::vector<InferRequest> batch;
    {
      util::MutexLock lock(mutex_);
      while (static_cast<int>(batch.size()) < max_batch && !queue_.empty()) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    if (!batch.empty()) not_full_.notify_all();
    return batch;
  }

  /// Reopens a closed queue for admission (server restart). Only valid once
  /// the previous consumers have drained and exited.
  void reopen() {
    util::MutexLock lock(mutex_);
    closed_ = false;
  }

  /// Wakes every waiter; pending requests are still drained by pop_batch.
  void close() {
    {
      util::MutexLock lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    util::MutexLock lock(mutex_);
    return queue_.size();
  }

  /// True between close() and reopen(). "closed and empty" is the only safe
  /// consumer exit condition: a producer may still be mid-try_push while a
  /// stop flag is already visible, but never after close() returns.
  bool closed() const {
    util::MutexLock lock(mutex_);
    return closed_;
  }

  std::size_t capacity() const { return capacity_; }

 private:
  mutable util::Mutex mutex_;
  util::CondVar not_empty_, not_full_;
  std::deque<InferRequest> queue_ GUARDED_BY(mutex_);
  std::size_t capacity_;  // immutable after construction
  bool closed_ GUARDED_BY(mutex_) = false;
};

}  // namespace distgnn::serve
