// Tenancy primitives for the multi-model serving tier.
//
// A tenant is one named traffic stream with its own SLO: per-request
// deadline, priority lane, weighted-fair share, and an admission budget.
// Tenants exist because real serving traffic is K independent MMPP streams,
// not one merged Poisson process — the overdispersion result (squared
// coefficient of variation > 1 for MMPP, Asanjarani & Nazarathy,
// arXiv:1802.08400) means one tenant's burst cannot be averaged away by
// aggregate load, so isolation has to be enforced where requests enter:
// token-bucket budgets shed a bursting tenant's excess from its *own* lane,
// and deficit-weighted round-robin keeps the dispatch share proportional to
// configured weights under saturation.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

namespace distgnn::obs {
class TraceContext;
}  // namespace distgnn::obs

namespace distgnn::serve {

using ServeClock = std::chrono::steady_clock;

/// Two-lane request priority for the admission controller: under pressure
/// the router sheds kLow work first, so paying (kHigh) traffic keeps its
/// tail latency through an MMPP burst.
enum class Priority : std::uint8_t { kHigh = 0, kLow = 1 };

/// Tenant identifier carried end-to-end through the request API. In a
/// ModelRegistry it is the entry index; in a tenant-aware Router it indexes
/// AdmissionConfig::tenants. Requests default to tenant 0.
using tenant_t = std::int32_t;
inline constexpr tenant_t kDefaultTenant = 0;

/// Per-request admission metadata — the one bundle every
/// ServingBackend::submit/infer_batch carries end-to-end.
struct RequestMeta {
  ServeClock::time_point deadline = ServeClock::time_point::max();
  Priority priority = Priority::kHigh;
  tenant_t tenant = kDefaultTenant;
  /// Stage trace being assembled for this request, set by whichever layer
  /// made the sampling decision first (null = untraced). Leaves honor a
  /// pre-attached context instead of re-deciding.
  std::shared_ptr<obs::TraceContext> trace;
};

/// Per-tenant service-level objective and fairness knobs.
struct TenantSlo {
  std::string name;
  /// Default deadline applied at submit time when the request carries none
  /// (0 = no deadline).
  double deadline_seconds = 0;
  Priority priority = Priority::kHigh;
  /// Weighted-fair dispatch share relative to the other tenants.
  double weight = 1.0;
  /// Token-bucket admission budget in requests/second (0 = unlimited). A
  /// tenant over budget sheds its own traffic before touching another
  /// tenant's lane.
  double rate_limit = 0;
  /// Token-bucket capacity: the burst the budget forgives.
  double burst = 16;
  /// Per-tenant staging-queue bound in the weighted-fair router.
  std::size_t stage_capacity = 1024;
  /// Success-rate objective for the health engine's burn-rate rule: the
  /// fraction of requests expected to finish within deadline_seconds, so the
  /// error budget is (1 - slo_target). Admission ignores it; configure_health
  /// registers it with the HealthMonitor.
  double slo_target = 0.999;
};

/// Leaky token bucket over ServeClock. NOT internally synchronized: callers
/// (the Router's stage lock, a registry entry's admission lock) already
/// serialize the admission path, and keeping the bucket a plain value type
/// keeps tenant state movable.
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double rate, double burst) : rate_(rate), burst_(burst) {}

  /// Takes one token if available; always succeeds when rate <= 0
  /// (unlimited). Refill accrues continuously at `rate` tokens/second up to
  /// `burst`.
  bool try_take(ServeClock::time_point now) {
    if (rate_ <= 0) return true;
    if (!primed_) {
      tokens_ = burst_;
      last_ = now;
      primed_ = true;
    }
    const double dt = std::chrono::duration<double>(now - last_).count();
    last_ = now;
    tokens_ = std::min(burst_, tokens_ + dt * rate_);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  double rate() const { return rate_; }

 private:
  double rate_ = 0;
  double burst_ = 16;
  double tokens_ = 0;
  bool primed_ = false;
  ServeClock::time_point last_{};
};

}  // namespace distgnn::serve
