// Replicated serving tier: one logical shard served by N replica backends.
//
// A ReplicaGroup owns N ServingBackends over the same dataset. The default
// constructor builds N InferenceServers from one ServeConfig (critically:
// the same sample_seed), so every replica answers every request
// bitwise-identically to a single server — routing is free to place a
// request anywhere. The factory constructor generalizes the members: a
// ComposedTier replicates ShardedServers through it, and tests can mix
// heterogeneous backends behind one Router.
//
// The group owns snapshot publication as a group operation with a *version
// barrier*: publish() waits for every admitted request to complete, swaps
// all replicas to the new snapshot, and only then re-opens admission.
// Because a client batch is admitted atomically (the Router — or the
// group's own infer_batch — holds all of its admission slots before the
// first submit), no batch can ever contain answers from two snapshot
// versions.
//
// For multi-process deployments, broadcast_snapshot() is the publication
// primitive: the publisher rank flattens the weights and version into one
// payload, broadcasts it over the World runtime, and every replica rank
// reconstructs a bitwise-identical ModelSnapshot. publish_broadcast() runs
// exactly that wire path under the version barrier — one rank per replica —
// which is how a composed tier publishes across its R×P grid.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "comm/world.hpp"
#include "graph/datasets.hpp"
#include "serve/backend.hpp"
#include "serve/inference_server.hpp"
#include "util/sync.hpp"

namespace distgnn::serve {

/// Aggregated replica view (children = per replica); see BackendStats.
using GroupStats = BackendStats;

class ReplicaGroup : public ServingBackend {
 public:
  /// Builds any backend; called once per replica index at construction.
  using ReplicaFactory = std::function<std::unique_ptr<ServingBackend>(int replica)>;

  /// Homogeneous group: every replica is an InferenceServer sharing
  /// `dataset` (features are not copied) with an identical ServeConfig —
  /// the source of the bitwise-equality guarantee.
  ReplicaGroup(const Dataset& dataset, ServeConfig config, int num_replicas);
  /// Generic group: replicas come from `factory`. All members must serve
  /// `dataset` (answers are expected interchangeable; the factory owns that
  /// contract).
  ReplicaGroup(const Dataset& dataset, int num_replicas, const ReplicaFactory& factory);
  ~ReplicaGroup() override;

  ReplicaGroup(const ReplicaGroup&) = delete;
  ReplicaGroup& operator=(const ReplicaGroup&) = delete;

  /// Version-barriered group publish: blocks new admissions, drains every
  /// admitted request, hot-swaps all replicas, re-opens admission. After it
  /// returns, every replica serves `snapshot` and no in-flight answer mixes
  /// versions with anything admitted afterwards.
  void publish(std::shared_ptr<const ModelSnapshot> snapshot) override;
  /// Same barrier, but the snapshot travels the group-broadcast wire path:
  /// replica 0's rank flattens, broadcast_v distributes, every other rank
  /// reconstructs via ModelSnapshot::from_flat (bitwise-identical) and
  /// publishes to its own replica. The publication path a real multi-process
  /// deployment exercises, compressed into one call.
  void publish_broadcast(std::shared_ptr<const ModelSnapshot> snapshot);
  std::shared_ptr<const ModelSnapshot> snapshot() const override;

  void start() override;
  void stop() override;

  using ServingBackend::submit;
  /// Policy-free round-robin placement (the Router layers real policies and
  /// admission control on top; this is the plain ServingBackend view of the
  /// group). Holds one admission slot for the request's lifetime, so the
  /// publish barrier still covers it.
  bool submit(vid_t vertex, const RequestMeta& meta,
              std::function<void(InferResult&&)> done) override;
  using ServingBackend::infer_batch;
  /// Whole batch under ONE admission epoch: every answer carries the same
  /// snapshot version.
  std::vector<std::optional<InferResult>> infer_batch(std::span<const vid_t> vertices,
                                                      const RequestMeta& meta) override;

  /// Graph mutation under the group's version barrier: drains every admitted
  /// request, runs the real apply on replica 0 only (all replicas share the
  /// dataset, so it must be mutated exactly once), then delivers an
  /// apply-less notice to the siblings so each invalidates its own caches.
  /// Replica 0 goes first — the mutation happens-before every invalidation.
  void apply_graph_update(const std::function<void()>& apply,
                          const GraphUpdateNotice& notice) override;
  std::uint64_t graph_epoch() const override { return replicas_.front()->graph_epoch(); }

  std::size_t queue_depth() const override;
  void drain() override;
  bool accepting() const override;
  double mean_service_seconds() const override;
  int concurrency() const override;
  const Dataset& dataset() const override { return dataset_; }
  BackendStats stats() const override;
  /// ScrapeSource: the group's own publish counter plus every replica's
  /// scrape — sibling replicas emit the same series, which merge by
  /// (name, labels) into group-wide totals.
  void scrape(obs::MetricsSnapshot& out) const override;
  void collect_traces(std::vector<obs::Trace>& out) const override;

  int num_replicas() const { return static_cast<int>(replicas_.size()); }
  ServingBackend& replica(int i) { return *replicas_[static_cast<std::size_t>(i)]; }
  const ServingBackend& replica(int i) const { return *replicas_[static_cast<std::size_t>(i)]; }

  /// Version currently served by every replica (0 before the first publish).
  std::uint64_t version() const;
  std::uint64_t publishes() const;

  /// True while a publish / graph-update barrier is closed. The health
  /// monitor's barrier-stuck watchdog polls this: a wedged barrier parks
  /// inside the cv wait (mutex released), so the read never blocks on it.
  bool publishing() const {
    util::MutexLock lock(mutex_);
    return publishing_;
  }

  /// Admission epoch gate (Router protocol). begin_requests(n) reserves n
  /// admission slots atomically, blocking while a publish barrier is in
  /// progress — which is what pins a whole client batch to one version.
  /// Every reserved slot must be released by exactly one end_request(),
  /// whether the request was admitted (on completion) or shed (immediately).
  void begin_requests(std::size_t n);
  void end_request();

 private:
  /// Runs `swap` (which must publish to every replica) under the version
  /// barrier: one publisher at a time, all admitted traffic drained first.
  void publish_under_barrier(std::uint64_t version,
                             const std::function<void()>& swap);
  int pick_round_robin();

  const Dataset& dataset_;
  std::vector<std::unique_ptr<ServingBackend>> replicas_;

  mutable util::Mutex mutex_;
  util::CondVar cv_;
  std::size_t outstanding_ GUARDED_BY(mutex_) = 0;  // admission slots handed out, not yet released
  bool publishing_ GUARDED_BY(mutex_) = false;
  std::uint64_t version_ GUARDED_BY(mutex_) = 0;
  std::uint64_t publishes_ GUARDED_BY(mutex_) = 0;
  std::atomic<std::uint64_t> rr_next_{0};
};

/// Group snapshot publication over a World: `root` flattens its snapshot
/// (weights + version) and broadcasts; every other rank reconstructs and
/// returns a bitwise-identical snapshot. The root passes its snapshot in,
/// the other ranks pass nullptr.
std::shared_ptr<const ModelSnapshot> broadcast_snapshot(
    Communicator& comm, const ModelSpec& spec,
    std::shared_ptr<const ModelSnapshot> snapshot, int root);

}  // namespace distgnn::serve
