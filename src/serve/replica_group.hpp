// Replicated serving tier: one logical shard served by N replica ranks.
//
// A ReplicaGroup owns N InferenceServers over the same dataset with the same
// ServeConfig (critically: the same sample_seed), so every replica answers
// every request bitwise-identically to a single server — routing is free to
// place a request anywhere. The group owns snapshot publication as a group
// operation with a *version barrier*: publish() waits for every admitted
// request to complete, swaps all replicas to the new snapshot, and only then
// re-opens admission. Because a client batch is admitted atomically (the
// Router holds all of its admission slots before the first submit), no batch
// can ever contain answers from two snapshot versions.
//
// For multi-process deployments, broadcast_snapshot() is the publication
// primitive: the publisher rank flattens the weights and version into one
// payload, broadcasts it over the World runtime, and every replica rank
// reconstructs a bitwise-identical ModelSnapshot.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "comm/world.hpp"
#include "graph/datasets.hpp"
#include "serve/inference_server.hpp"

namespace distgnn::serve {

/// Aggregated view over the group's replicas.
struct GroupStats {
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;
  std::uint64_t batched_requests = 0;
  std::uint64_t publishes = 0;
  std::vector<ServerStats> per_replica;
};

class ReplicaGroup {
 public:
  /// Every replica shares `dataset` (features are not copied) and gets an
  /// identical ServeConfig — the source of the bitwise-equality guarantee.
  ReplicaGroup(const Dataset& dataset, ServeConfig config, int num_replicas);
  ~ReplicaGroup();

  ReplicaGroup(const ReplicaGroup&) = delete;
  ReplicaGroup& operator=(const ReplicaGroup&) = delete;

  /// Version-barriered group publish: blocks new admissions, drains every
  /// admitted request, hot-swaps all replicas, re-opens admission. After it
  /// returns, every replica serves `snapshot` and no in-flight answer mixes
  /// versions with anything admitted afterwards.
  void publish(std::shared_ptr<const ModelSnapshot> snapshot);

  void start();
  void stop();

  int num_replicas() const { return static_cast<int>(replicas_.size()); }
  InferenceServer& replica(int i) { return *replicas_[static_cast<std::size_t>(i)]; }
  const InferenceServer& replica(int i) const { return *replicas_[static_cast<std::size_t>(i)]; }
  const Dataset& dataset() const { return dataset_; }

  /// Version currently served by every replica (0 before the first publish).
  std::uint64_t version() const;
  std::uint64_t publishes() const;
  GroupStats stats() const;

  /// Admission epoch gate (Router protocol). begin_requests(n) reserves n
  /// admission slots atomically, blocking while a publish barrier is in
  /// progress — which is what pins a whole client batch to one version.
  /// Every reserved slot must be released by exactly one end_request(),
  /// whether the request was admitted (on completion) or shed (immediately).
  void begin_requests(std::size_t n);
  void end_request();

 private:
  const Dataset& dataset_;
  std::vector<std::unique_ptr<InferenceServer>> replicas_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t outstanding_ = 0;  // admission slots handed out, not yet released
  bool publishing_ = false;
  std::uint64_t version_ = 0;
  std::uint64_t publishes_ = 0;
};

/// Group snapshot publication over a World: `root` flattens its snapshot
/// (weights + version) and broadcasts; every other rank reconstructs and
/// returns a bitwise-identical snapshot. The root passes its snapshot in,
/// the other ranks pass nullptr.
std::shared_ptr<const ModelSnapshot> broadcast_snapshot(
    Communicator& comm, const ModelSpec& spec,
    std::shared_ptr<const ModelSnapshot> snapshot, int root);

}  // namespace distgnn::serve
