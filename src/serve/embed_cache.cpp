#include "serve/embed_cache.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace distgnn::serve {

Rng embed_rng(std::uint64_t sample_seed, vid_t vertex, int layer) {
  // Independent streams per (seed, vertex, layer): the vertex id is spread
  // by splitmix64 exactly as in request_rng, then the layer index is folded
  // through a second finalize so adjacent layers decorrelate.
  const std::uint64_t mixed = sample_seed ^ splitmix64(static_cast<std::uint64_t>(vertex));
  return Rng(splitmix64(mixed + static_cast<std::uint64_t>(layer)));
}

EmbedCache::EmbedCache(const ModelSpec& spec, std::uint64_t capacity_bytes, int num_shards,
                       std::uint64_t max_entries_per_layer) {
  if (spec.num_layers < 1) throw std::invalid_argument("EmbedCache: num_layers must be >= 1");
  if (num_shards < 1) throw std::invalid_argument("EmbedCache: need >= 1 shard");
  const std::uint64_t per_layer_bytes =
      capacity_bytes / static_cast<std::uint64_t>(spec.num_layers);
  dims_.reserve(static_cast<std::size_t>(spec.num_layers));
  layers_.reserve(static_cast<std::size_t>(spec.num_layers));
  for (int l = 1; l <= spec.num_layers; ++l) {
    const std::size_t dim = spec.out_dim(l - 1);
    if (dim == 0) throw std::invalid_argument("EmbedCache: layer dims must be > 0");
    const std::uint64_t row_bytes = static_cast<std::uint64_t>(dim) * sizeof(real_t);
    std::uint64_t entries = per_layer_bytes / row_bytes;
    if (max_entries_per_layer > 0) entries = std::min(entries, max_entries_per_layer);
    entries = std::max<std::uint64_t>(static_cast<std::uint64_t>(num_shards), entries);
    dims_.push_back(dim);
    layers_.push_back(std::make_unique<LayerLru>(entries, num_shards, row_bytes));
  }
}

EmbedCache::LayerLru& EmbedCache::layer_lru(int layer) {
  if (layer < 1 || layer > num_layers())
    throw std::out_of_range("EmbedCache: layer out of range");
  return *layers_[static_cast<std::size_t>(layer - 1)];
}

const EmbedCache::LayerLru& EmbedCache::layer_lru(int layer) const {
  if (layer < 1 || layer > num_layers())
    throw std::out_of_range("EmbedCache: layer out of range");
  return *layers_[static_cast<std::size_t>(layer - 1)];
}

std::size_t EmbedCache::dim(int layer) const {
  if (layer < 1 || layer > num_layers())
    throw std::out_of_range("EmbedCache: layer out of range");
  return dims_[static_cast<std::size_t>(layer - 1)];
}

std::uint64_t EmbedCache::capacity_entries(int layer) const {
  return layer_lru(layer).capacity_entries();
}

bool EmbedCache::lookup(int layer, vid_t vertex, std::uint64_t version, real_t* out,
                        std::uint64_t epoch) {
  const std::size_t d = dim(layer);
  const Key key{version, epoch, static_cast<std::uint64_t>(vertex)};
  return layer_lru(layer).lookup(/*space=*/0, key, [&](const std::vector<real_t>& row) {
    std::copy(row.begin(), row.begin() + static_cast<std::ptrdiff_t>(d), out);
  });
}

void EmbedCache::insert(int layer, vid_t vertex, std::uint64_t version, const real_t* row,
                        std::uint64_t epoch) {
  const std::size_t d = dim(layer);
  const Key key{version, epoch, static_cast<std::uint64_t>(vertex)};
  layer_lru(layer).insert(/*space=*/0, key,
                          [&](std::vector<real_t>& slot) { slot.assign(row, row + d); });
}

void EmbedCache::invalidate() {
  for (auto& layer : layers_) layer->invalidate();
}

EmbedCache::EpochAdvance EmbedCache::advance_epoch(
    std::uint64_t new_epoch, const std::vector<std::vector<vid_t>>& dirty_layers) {
  EpochAdvance out;
  std::unordered_set<std::uint64_t> dirty;
  for (int l = 1; l <= num_layers(); ++l) {
    dirty.clear();
    if (static_cast<std::size_t>(l) <= dirty_layers.size())
      for (const vid_t v : dirty_layers[static_cast<std::size_t>(l - 1)])
        dirty.insert(static_cast<std::uint64_t>(v));
    layer_lru(l).retag(/*space=*/0, [&](Key& key) {
      if (dirty.count(key.vertex) > 0) {
        ++out.evicted;
        return false;
      }
      if (key.epoch != new_epoch) key.epoch = new_epoch;
      ++out.retained;
      return true;
    });
  }
  return out;
}

CacheStats EmbedCache::stats(int layer) const { return layer_lru(layer).stats(0); }

CacheStats EmbedCache::combined_stats() const {
  CacheStats out;
  for (const auto& layer : layers_) out += layer->combined_stats();
  return out;
}

// ----------------------------------------------------------------- evaluator

EmbedForward::EmbedForward(const Dataset& dataset, std::vector<int> fanouts,
                           std::uint64_t sample_seed, EmbedCache* cache,
                           ShardedFeatureCache* feature_cache)
    : dataset_(dataset),
      fanouts_(std::move(fanouts)),
      sample_seed_(sample_seed),
      cache_(cache),
      feature_cache_(feature_cache) {
  if (fanouts_.empty()) throw std::invalid_argument("EmbedForward: fanouts empty");
  if (cache_ && cache_->num_layers() != static_cast<int>(fanouts_.size()))
    throw std::invalid_argument("EmbedForward: cache depth != fanouts depth");
  if (feature_cache_ &&
      feature_cache_->dim() != static_cast<std::size_t>(dataset_.feature_dim()))
    throw std::invalid_argument("EmbedForward: feature cache dim != dataset feature_dim");
}

std::uint32_t EmbedForward::resolve(int level, vid_t v, std::uint64_t version, std::size_t dim) {
  Level& lv = levels_[static_cast<std::size_t>(level)];
  const auto [it, inserted] = lv.index.emplace(v, static_cast<std::uint32_t>(lv.index.size()));
  if (!inserted) return it->second;
  const std::uint32_t row = it->second;
  lv.values.resize(lv.values.size() + dim);
  real_t* dst = lv.values.data() + static_cast<std::size_t>(row) * dim;
  if (level == 0) {
    // h_0 is the raw feature row, through the feature cache when attached.
    const auto copy_row = [&](real_t* out) {
      const real_t* src = dataset_.features.row(static_cast<std::size_t>(v));
      std::copy(src, src + dim, out);
    };
    if (feature_cache_)
      feature_cache_->get_or_fill(/*space=*/0, static_cast<std::uint64_t>(v), dst, copy_row);
    else
      copy_row(dst);
  } else if (cache_ && cache_->lookup(level, v, version, dst, graph_epoch_)) {
    // Hit: v's entire hop-`level` subtree is pruned — nothing goes pending.
  } else {
    lv.pending.push_back(v);
    lv.pending_row.push_back(row);
  }
  return row;
}

void EmbedForward::infer(const ModelSnapshot& snapshot, std::span<const vid_t> seeds,
                         DenseMatrix& logits, std::uint64_t graph_epoch) {
  graph_epoch_ = graph_epoch;
  const ModelSpec& spec = snapshot.spec();
  const int num_layers = spec.num_layers;
  if (num_layers != static_cast<int>(fanouts_.size()))
    throw std::invalid_argument("EmbedForward: fanouts depth != model layers");
  if (spec.feature_dim != dataset_.feature_dim())
    throw std::invalid_argument("EmbedForward: snapshot feature_dim != dataset");
  const auto dim_of = [&](int level) {
    return level == 0 ? static_cast<std::size_t>(spec.feature_dim) : spec.out_dim(level - 1);
  };
  if (cache_)
    for (int l = 1; l <= num_layers; ++l)
      if (cache_->dim(l) != dim_of(l))
        throw std::invalid_argument("EmbedForward: cache dims != snapshot dims");
  const std::uint64_t version = snapshot.version();

  levels_.resize(static_cast<std::size_t>(num_layers) + 1);
  for (Level& lv : levels_) lv.clear();
  stats_.requests += seeds.size();

  // Downward pass: discover the memoized DAG. Seeds sit at the output level;
  // expanding a level's pending vertices only ever touches the level below,
  // so one sweep from L to 1 completes the work lists.
  for (const vid_t s : seeds) {
    if (s < 0 || s >= dataset_.num_vertices())
      throw std::out_of_range("EmbedForward: vertex id out of range");
    resolve(num_layers, s, version, dim_of(num_layers));
  }
  const CsrMatrix& in_csr = dataset_.graph.in_csr();
  for (int l = num_layers; l >= 1; --l) {
    Level& lv = levels_[static_cast<std::size_t>(l)];
    lv.blocks.reserve(lv.pending.size());
    const int fanout[1] = {fanouts_[static_cast<std::size_t>(l - 1)]};
    const std::size_t child_dim = dim_of(l - 1);
    for (std::size_t i = 0; i < lv.pending.size(); ++i) {
      const vid_t u = lv.pending[i];
      Rng rng = embed_rng(sample_seed_, u, l - 1);
      const vid_t seed1[1] = {u};
      lv.blocks.push_back(sample_minibatch(in_csr, seed1, fanout, rng));
      ++stats_.sampled_blocks;
      for (const vid_t child : lv.blocks.back().input_vertices)
        resolve(l - 1, child, version, child_dim);
    }
  }

  // Upward pass: one stacked forward_layer call per level, so fresh rows
  // keep micro-batching's GEMM amortization even mid-cache-miss.
  for (int l = 1; l <= num_layers; ++l) {
    Level& lv = levels_[static_cast<std::size_t>(l)];
    if (lv.pending.empty()) continue;
    const Level& below = levels_[static_cast<std::size_t>(l - 1)];
    const std::size_t in_dim = dim_of(l - 1);
    std::size_t rows = 0;
    for (const MiniBatch& mb : lv.blocks) rows += mb.input_vertices.size();
    inputs_.resize_discard(rows, in_dim);
    std::size_t row = 0;
    for (const MiniBatch& mb : lv.blocks)
      for (const vid_t child : mb.input_vertices) {
        const real_t* src =
            below.values.data() + static_cast<std::size_t>(below.index.at(child)) * in_dim;
        std::copy(src, src + in_dim, inputs_.row(row++));
      }
    snapshot.forward_layer(l - 1, lv.blocks, inputs_.cview(), fwd_scratch_, layer_out_);

    const std::size_t out_dim = dim_of(l);
    for (std::size_t i = 0; i < lv.pending.size(); ++i) {
      real_t* dst = lv.values.data() + static_cast<std::size_t>(lv.pending_row[i]) * out_dim;
      std::copy(layer_out_.row(i), layer_out_.row(i) + out_dim, dst);
      if (cache_) cache_->insert(l, lv.pending[i], version, dst, graph_epoch_);
      ++stats_.layer_rows_computed;
    }
  }

  // Emit one row per seed (duplicates share the memoized row).
  const Level& top = levels_[static_cast<std::size_t>(num_layers)];
  const std::size_t out_dim = dim_of(num_layers);
  logits.resize_discard(seeds.size(), out_dim);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const real_t* src =
        top.values.data() + static_cast<std::size_t>(top.index.at(seeds[i])) * out_dim;
    std::copy(src, src + out_dim, logits.row(i));
  }
}

}  // namespace distgnn::serve
