// The unified serving contract every tier implements.
//
// The serving stack grew three entry points with three incompatible APIs:
// InferenceServer::submit, ReplicaGroup + Router::infer_batch, and the
// serve_sharded free-function driver. ServingBackend is the one polymorphic
// contract behind all of them — submit with deadline/priority metadata,
// batch inference, snapshot publication, queue-depth introspection, drain —
// so read scaling (replication) and memory scaling (sharding) compose: a
// Router can front any mix of backends, a ReplicaGroup can replicate
// ShardedServers, and admission control / traffic generation / the embedding
// cache apply uniformly to every tier.
//
// The concrete implementations form a tower:
//
//   InferenceServer            one process, worker pool, micro-batching
//   ShardedServer              P ranks over a vertex-cut feature shard
//   ReplicaGroup               N identical backends + version-barriered publish
//   ComposedTier               R ShardedServer replicas x P shards + Router
//
// Every implementation keeps the bitwise-equality contract: with the same
// (snapshot, sample_seed, fanouts), an admitted request's logits are
// bit-for-bit those of a single InferenceServer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "graph/datasets.hpp"
#include "obs/scrape.hpp"
#include "serve/feature_cache.hpp"
#include "serve/model_snapshot.hpp"
#include "serve/request_queue.hpp"

namespace distgnn::serve {

/// One stats snapshot shape for every tier (subsumes the former ServerStats /
/// GroupStats / ShardedRankStats). Leaf backends fill the scalar counters;
/// composite backends aggregate their members' snapshots into the parent
/// counters and keep the per-member detail in `children` (per replica for a
/// group, per rank for a sharded server).
/// Per-tenant slice of a stats snapshot. Leaf backends tally their own
/// lanes; absorb() merges children's lanes by tenant id, so the per-tenant
/// dimension is scraped through the same stats tree as everything else.
struct TenantCounters {
  tenant_t tenant = kDefaultTenant;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;  // budget sheds + queue bounces, tenant-attributed

  double shed_rate() const {
    return submitted == 0 ? 0.0 : static_cast<double>(shed) / static_cast<double>(submitted);
  }
};

struct BackendStats {
  /// Human-readable identity of the backend this snapshot describes (a
  /// registry entry's tenant name, empty for anonymous members).
  std::string label;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;          // bounced off a bounded queue / shed
  std::uint64_t batches = 0;
  std::uint64_t batched_requests = 0;  // Σ batch sizes (== completed at drain)
  std::uint64_t max_batch_seen = 0;
  double service_seconds = 0;   // Σ worker time spent inside batch processing
  std::size_t queue_depth = 0;  // requests waiting at the time of the call
  std::uint64_t publishes = 0;  // snapshot publications observed

  // Sharded-tier counters (zero for single-process backends).
  std::uint64_t halo_rows_fetched = 0;  // rows that crossed a rank boundary
  std::uint64_t halo_bytes = 0;
  /// Time blocked waiting for halo responses — the quantity the prefetch
  /// ring overlaps away; compare per batch across prefetch_depth settings.
  double halo_wait_seconds = 0;

  CacheStats feature_cache;  // space 0: local/owned feature rows
  CacheStats halo_cache;     // space 1: remote rows (sharded tier only)
  CacheStats embed_cache;    // layer-output cache (embed-forward mode only)

  /// End-to-end request latency histogram (submit -> reply callback), filled
  /// by leaf backends from their metrics registry and folded bucket-wise in
  /// absorb() — so a ReplicaGroup/ComposedTier snapshot carries a real
  /// latency distribution instead of re-measuring at every layer.
  obs::HistogramData latency;

  /// Per-tenant lanes (merged by tenant id in absorb()).
  std::vector<TenantCounters> tenants;

  /// Per-member detail: replicas of a group, ranks of a sharded server.
  std::vector<BackendStats> children;

  double mean_batch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(batched_requests) / static_cast<double>(batches);
  }
  /// Amortized per-request service time — the rate the admission controller
  /// multiplies queue depth by to decide whether a deadline is meetable.
  double mean_service_seconds() const {
    return completed == 0 ? 0.0 : service_seconds / static_cast<double>(completed);
  }
  double mean_halo_wait_per_batch() const {
    return batches == 0 ? 0.0 : halo_wait_seconds / static_cast<double>(batches);
  }

  /// Find-or-insert the lane for `tenant` (lanes stay sorted by insertion —
  /// registries insert in id order, so index == id in practice).
  TenantCounters& tenant_lane(tenant_t tenant) {
    for (TenantCounters& lane : tenants)
      if (lane.tenant == tenant) return lane;
    tenants.push_back(TenantCounters{tenant, 0, 0, 0});
    return tenants.back();
  }
  const TenantCounters* find_tenant(tenant_t tenant) const {
    for (const TenantCounters& lane : tenants)
      if (lane.tenant == tenant) return &lane;
    return nullptr;
  }

  /// Folds a member's counters into this snapshot and records it as a child.
  /// `publishes` is deliberately not summed — composite backends publish as
  /// one group operation and report their own count.
  void absorb(BackendStats child) {
    completed += child.completed;
    rejected += child.rejected;
    batches += child.batches;
    batched_requests += child.batched_requests;
    max_batch_seen = std::max(max_batch_seen, child.max_batch_seen);
    service_seconds += child.service_seconds;
    queue_depth += child.queue_depth;
    halo_rows_fetched += child.halo_rows_fetched;
    halo_bytes += child.halo_bytes;
    halo_wait_seconds += child.halo_wait_seconds;
    feature_cache += child.feature_cache;
    halo_cache += child.halo_cache;
    embed_cache += child.embed_cache;
    latency += child.latency;
    for (const TenantCounters& lane : child.tenants) {
      TenantCounters& mine = tenant_lane(lane.tenant);
      mine.submitted += lane.submitted;
      mine.completed += lane.completed;
      mine.shed += lane.shed;
    }
    children.push_back(std::move(child));
  }
};

/// Result of check_tenant_fold: `consistent` is the verdict, `detail` names
/// the first lane that broke the invariant (empty when consistent).
struct TenantFoldReport {
  bool consistent = true;
  std::string detail;
};

/// The one place the parent-vs-children tenant-lane invariant is encoded
/// (each layer used to hand-merge lanes, and a missed lane silently
/// under-counted). For every tenant lane of `stats`:
///   - strict mode (edge_authoritative = false; parents whose lanes exist
///     only via absorb(), e.g. ReplicaGroup): submitted/completed/shed must
///     each equal the fold of the children's lanes.
///   - edge mode (edge_authoritative = true; parents that replace lanes with
///     their own edge accounting, e.g. ComposedTier in tenant mode or
///     ModelRegistry): completed must equal the children's fold (every
///     admitted request is answered exactly once below the edge — exact only
///     after drain), and submitted/shed must be >= the children's fold (the
///     edge sees traffic it sheds before any child does).
/// Backends with no per-tenant children lanes (a ShardedServer's ranks) are
/// reported consistent trivially — the invariant needs two tiers of lanes.
TenantFoldReport check_tenant_fold(const BackendStats& stats, bool edge_authoritative);

/// Sideband a DeltaPublisher hands to apply_graph_update so each tier can
/// invalidate precisely. `epoch` is the graph epoch after the apply (folded
/// into EmbedCache keys); `features` lists the vertices whose feature rows
/// the apply rewrites (their layer-0 cache entries are dropped, and sharded
/// tiers refresh their local feature shards); `dirty_layers[l-1]` is the set
/// of vertices whose h_l changed (the delta's l-hop out-frontier) — the
/// eviction set for embed-cache layer l. `full_flush` forces whole-cache
/// invalidation instead (the baseline the targeted path is measured
/// against).
struct GraphUpdateNotice {
  std::uint64_t epoch = 0;
  std::vector<vid_t> features;
  std::vector<std::vector<vid_t>> dirty_layers;
  bool full_flush = false;
};

class ServingBackend : public obs::ScrapeSource {
 public:
  ~ServingBackend() override = default;

  /// ScrapeSource: fold this backend's metrics (and children's) into `out`.
  /// Default is empty so test fakes and thin adapters stay source-
  /// compatible; real tiers override (leaves scrape their registry,
  /// composites recurse).
  void scrape(obs::MetricsSnapshot& out) const override { (void)out; }

  /// Atomically swaps the served model; callable before start() and at any
  /// point under live traffic. Composite backends make this a version-
  /// barriered group operation (see ReplicaGroup / ComposedTier).
  virtual void publish(std::shared_ptr<const ModelSnapshot> snapshot) = 0;
  virtual std::shared_ptr<const ModelSnapshot> snapshot() const = 0;

  /// Spawns the serving loop(s). Requires a published snapshot.
  virtual void start() = 0;
  /// Closes admission, drains pending requests, joins workers. Idempotent.
  virtual void stop() = 0;

  /// Asynchronous submission; `done` runs on a worker thread. `meta`
  /// carries the request's admission metadata (deadline, priority, tenant)
  /// end-to-end — the tenant id survives into the InferResult and the
  /// per-tenant stats lanes. Returns false (and counts a rejection) when
  /// the request could not be admitted — bounded queue full, or shed by an
  /// admission policy layered into the backend. Backends themselves never
  /// drop an admitted request on deadline; late answers keep the bitwise
  /// contract.
  virtual bool submit(vid_t vertex, const RequestMeta& meta,
                      std::function<void(InferResult&&)> done) = 0;
  bool submit(vid_t vertex, std::function<void(InferResult&&)> done) {
    return submit(vertex, RequestMeta{}, std::move(done));
  }
  /// Pre-tenancy spelling, kept as a non-virtual alias for one release.
  bool submit(vid_t vertex, ServeClock::time_point deadline, Priority priority,
              std::function<void(InferResult&&)> done) {
    return submit(vertex, RequestMeta{deadline, priority, kDefaultTenant, nullptr},
                  std::move(done));
  }

  /// Blocking batch: one entry per vertex, nullopt where the request was not
  /// admitted. The default implementation submits through the virtual
  /// submit() and waits; composite backends override to pin the whole batch
  /// to one admission epoch (no answer mixes snapshot versions).
  virtual std::vector<std::optional<InferResult>> infer_batch(std::span<const vid_t> vertices,
                                                              const RequestMeta& meta);
  std::vector<std::optional<InferResult>> infer_batch(std::span<const vid_t> vertices) {
    return infer_batch(vertices, RequestMeta{});
  }
  /// Pre-tenancy spelling, kept as a non-virtual alias for one release.
  std::vector<std::optional<InferResult>> infer_batch(std::span<const vid_t> vertices,
                                                      ServeClock::time_point deadline,
                                                      Priority priority) {
    return infer_batch(vertices, RequestMeta{deadline, priority, kDefaultTenant, nullptr});
  }

  /// Blocking convenience wrapper for closed-loop clients and tests. The
  /// default retries while the backend is accepting() (closed-loop callers
  /// want backpressure, not an error) and throws std::runtime_error once it
  /// stops — a rejection from a stopped backend would otherwise retry
  /// forever.
  virtual InferResult infer_sync(vid_t vertex);

  /// Whether submissions can currently be admitted (start()ed and not
  /// stop()ped). The default is true; backends with a real stopped state
  /// override so blocking callers fail instead of spinning.
  virtual bool accepting() const { return true; }

  /// Requests currently waiting (excludes in-service batches) — the signal
  /// power-of-two-choices routing compares across backends.
  virtual std::size_t queue_depth() const = 0;

  /// Blocks until every admitted request has completed (a quiesce point for
  /// publication barriers and orderly shutdown). Requests submitted while
  /// draining extend the wait.
  virtual void drain() = 0;

  /// Amortized per-request service time observed so far (0 until the first
  /// batch completes). Must be cheap — it sits on the admission path.
  virtual double mean_service_seconds() const = 0;

  /// Parallel service width (worker threads / ranks) the admission
  /// controller divides queue depth by when estimating completion time.
  virtual int concurrency() const = 0;

  virtual const Dataset& dataset() const = 0;
  virtual BackendStats stats() const = 0;

  /// Version-barriered graph mutation (the delta analogue of publish()).
  /// `apply` mutates the shared Dataset — graph swap + feature-row writes —
  /// and runs exactly once, while no reader is mid-batch; `notice` tells the
  /// backend what changed so it can invalidate its caches precisely (and, on
  /// sharded tiers, refresh its local feature shards). Composite backends
  /// barrier the whole tree and pass `apply` to exactly one member (the
  /// Dataset is shared). The default drains and applies — correct for any
  /// stopped backend and for test fakes without caches.
  virtual void apply_graph_update(const std::function<void()>& apply,
                                  const GraphUpdateNotice& notice);

  /// Graph epoch currently served (0 = frozen graph / no deltas yet).
  /// Folded into embed-cache keys so racing in-flight batches can never
  /// read a mixed-epoch embedding.
  virtual std::uint64_t graph_epoch() const { return 0; }
};

}  // namespace distgnn::serve
