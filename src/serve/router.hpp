// Request routing and admission control in front of a ReplicaGroup.
//
// The Router decides two things per request: *where* it runs (round-robin,
// least-outstanding, or power-of-two-choices over per-replica queue depth)
// and *whether* it runs at all. Replicas are ServingBackends — single
// InferenceServers, ShardedServers (the composed tier), or any mix — and
// the Router only consults the uniform contract (queue_depth,
// mean_service_seconds, concurrency), so every policy works unchanged over
// heterogeneous members. Admission control sheds a request when its
// deadline cannot be met — estimated as the target replica's outstanding
// count divided by its concurrency, times the observed per-request service
// rate — and drops low-priority work first once a replica's queue depth
// crosses the low-priority watermark. Shedding happens before the queue, so
// an admitted request is always answered (bitwise-identically to a single
// server), while a shed one costs nothing downstream; under bursty MMPP
// arrivals that is what keeps the admitted-traffic p99 flat.
// Multi-tenant mode: when AdmissionConfig::tenants is non-empty the Router
// runs one staged queue per tenant and dispatches to replicas through a
// smooth weighted-round-robin scheduler — under saturation each tenant's
// served throughput converges to its SLO weight share, so one tenant's MMPP
// burst cannot starve another's lane. Per-tenant token buckets bound each
// tenant's admitted rate (budget shedding), and per-tenant deadlines default
// from the tenant's SLO.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "obs/scrape.hpp"
#include "serve/replica_group.hpp"
#include "serve/tenant.hpp"
#include "serve/traffic_gen.hpp"
#include "util/sync.hpp"

namespace distgnn::serve {

enum class RoutePolicy { kRoundRobin, kLeastOutstanding, kPowerOfTwo };

/// "round-robin" | "least-outstanding" | "p2c" (anything else throws — the
/// bench/demo flag parsers rely on loud failure).
RoutePolicy parse_route_policy(const std::string& name);
std::string route_policy_name(RoutePolicy policy);

struct AdmissionConfig {
  /// Master switch for deadline shedding (the bench's on/off comparison).
  bool shed_deadlines = true;
  /// Per-replica queue depth beyond which low-priority requests shed.
  /// 0 disables the priority lane.
  std::size_t low_priority_depth = 64;
  /// Pessimism multiplier on the estimated wait (> 1 sheds earlier).
  double estimate_margin = 1.0;
  /// Seed of the power-of-two-choices sampling stream.
  std::uint64_t seed = 99;

  /// Multi-tenant lanes: tenant id i gets tenants[i]'s SLO (weight, budget,
  /// deadline, stage capacity). Empty = single-tenant legacy path (requests
  /// go straight to the picked replica, no staging).
  std::vector<TenantSlo> tenants;
  /// Max requests dispatched to replicas but not yet completed in tenant
  /// mode; staged requests beyond it wait their weighted-fair turn.
  /// 0 = 2 x the group's total concurrency.
  std::size_t dispatch_window = 0;
};

struct RouterStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed_deadline = 0;    // deadline unmeetable at admission time
  std::uint64_t shed_priority = 0;    // low-priority lane over the watermark
  std::uint64_t shed_queue_full = 0;  // bounced off a bounded queue / stage cap
  std::uint64_t shed_budget = 0;      // tenant token bucket empty
  std::vector<std::uint64_t> admitted_per_replica;
  /// Per-tenant submitted/completed/shed (tenant mode only).
  std::vector<TenantCounters> tenants;

  std::uint64_t shed() const {
    return shed_deadline + shed_priority + shed_queue_full + shed_budget;
  }
  double shed_rate() const {
    return submitted == 0 ? 0.0 : static_cast<double>(shed()) / static_cast<double>(submitted);
  }
  /// Counters accrued since `base` (an earlier stats() snapshot) — keeps
  /// warmup traffic out of measured-run shed rates.
  RouterStats since(const RouterStats& base) const;
};

class Router : public obs::ScrapeSource {
 public:
  Router(ReplicaGroup& group, RoutePolicy policy, AdmissionConfig admission = {});

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Routes one request. Returns false when the request was shed (budget
  /// empty, deadline unmeetable, priority lane over watermark, or queue
  /// full) — `done` is then never invoked. In tenant mode a true return
  /// means the request entered its tenant's staged lane; it dispatches in
  /// weighted-fair order and `done` runs on completion.
  bool submit(vid_t vertex, const RequestMeta& meta, std::function<void(InferResult&&)> done);
  bool submit(vid_t vertex, ServeClock::time_point deadline, Priority priority,
              std::function<void(InferResult&&)> done);
  bool submit(vid_t vertex, std::function<void(InferResult&&)> done);

  /// Blocking batch under ONE admission epoch: all slots are reserved before
  /// the first submit, so the group's publish barrier cannot land inside the
  /// batch — every admitted answer carries the same snapshot_version.
  /// Entries of shed requests come back as nullopt.
  std::vector<std::optional<InferResult>> infer_batch(std::span<const vid_t> vertices,
                                                      const RequestMeta& meta);
  std::vector<std::optional<InferResult>> infer_batch(std::span<const vid_t> vertices,
                                                      ServeClock::time_point deadline,
                                                      Priority priority);
  std::vector<std::optional<InferResult>> infer_batch(std::span<const vid_t> vertices);

  RouterStats stats() const;
  /// ScrapeSource: synthesizes distgnn_router_* counters from the admission
  /// atomics (submitted/admitted/completed, sheds by reason, tenant lanes)
  /// and recurses into the fronted group — one scrape of the Router walks
  /// the whole tier below it.
  void scrape(obs::MetricsSnapshot& out) const override;
  void collect_traces(std::vector<obs::Trace>& out) const override;
  RoutePolicy policy() const { return policy_; }
  ReplicaGroup& group() { return group_; }
  bool tenant_mode() const { return num_lanes_ != 0; }

 private:
  /// A staged request waiting for its weighted-fair dispatch turn.
  struct Staged {
    vid_t vertex = kInvalidVertex;
    RequestMeta meta;
    std::function<void(InferResult&&)> done;
  };
  /// One tenant's lane: SLO, rate budget, staged queue, and the smooth-WRR
  /// accumulator. All fields are guarded by stage_mutex_.
  struct TenantLane {
    TenantSlo slo;
    TokenBucket bucket{0, 0};
    std::deque<Staged> staged;
    double wrr_current = 0;
    std::uint64_t submitted = 0, completed = 0, shed = 0;
  };

  /// Assumes one admission slot is already held; releases it on shed, or
  /// hands it to the completion callback on admit.
  bool route_one(vid_t vertex, const RequestMeta& meta, std::function<void(InferResult&&)> done);
  /// Tenant-mode admission: budget, deadline, priority and stage-capacity
  /// checks under stage_mutex_, then stage + pump. Slot handling as above.
  bool admit_one(vid_t vertex, RequestMeta meta, std::function<void(InferResult&&)> done);
  /// Dispatches staged requests while the window has room, picking the next
  /// tenant by smooth weighted round-robin. Caller holds stage_mutex_.
  void pump_locked() REQUIRES(stage_mutex_);
  int pick_replica();

  ReplicaGroup& group_;
  RoutePolicy policy_;
  AdmissionConfig admission_;

  std::atomic<std::uint64_t> rr_next_{0};
  std::atomic<std::uint64_t> p2c_draws_{0};

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> shed_deadline_{0};
  std::atomic<std::uint64_t> shed_priority_{0};
  std::atomic<std::uint64_t> shed_queue_full_{0};
  std::atomic<std::uint64_t> shed_budget_{0};
  // Per-replica: requests admitted but not yet completed (queued + in
  // service), and lifetime admitted counts. Raw arrays because atomics are
  // not movable.
  std::unique_ptr<std::atomic<std::uint64_t>[]> outstanding_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> admitted_per_replica_;

  // Tenant mode (num_lanes_ == 0 = legacy single-tenant path; num_lanes_ is
  // the immutable mirror of lanes_.size() for lock-free mode checks).
  mutable util::Mutex stage_mutex_;
  std::vector<TenantLane> lanes_ GUARDED_BY(stage_mutex_);
  std::size_t num_lanes_ = 0;  // immutable after construction
  std::size_t inflight_ GUARDED_BY(stage_mutex_) = 0;   // dispatched, not yet completed
  std::size_t total_staged_ GUARDED_BY(stage_mutex_) = 0;  // waiting in some lane
  std::size_t window_ = 0;  // immutable after construction
};

/// Open-loop arrival-driven load through a Router (the replicated analogue
/// of TrafficGenerator::run_open_loop). Latencies cover admitted requests
/// only; shed requests count into LoadReport::rejected.
struct RouterLoadConfig {
  ArrivalConfig arrivals;
  std::size_t num_requests = 400;
  /// Per-request deadline, assigned at submit time (0 = no deadline).
  double deadline_seconds = 0;
  /// Fraction of requests marked Priority::kLow (deterministic per seed).
  double low_priority_fraction = 0;
  /// Vertex-choice and priority-marking stream.
  std::uint64_t seed = 5;
  /// Tenant lane every request of this stream submits under (tenant mode).
  tenant_t tenant = kDefaultTenant;
};

LoadReport run_router_open_loop(Router& router, const RouterLoadConfig& config);

}  // namespace distgnn::serve
