// Request routing and admission control in front of a ReplicaGroup.
//
// The Router decides two things per request: *where* it runs (round-robin,
// least-outstanding, or power-of-two-choices over per-replica queue depth)
// and *whether* it runs at all. Replicas are ServingBackends — single
// InferenceServers, ShardedServers (the composed tier), or any mix — and
// the Router only consults the uniform contract (queue_depth,
// mean_service_seconds, concurrency), so every policy works unchanged over
// heterogeneous members. Admission control sheds a request when its
// deadline cannot be met — estimated as the target replica's outstanding
// count divided by its concurrency, times the observed per-request service
// rate — and drops low-priority work first once a replica's queue depth
// crosses the low-priority watermark. Shedding happens before the queue, so
// an admitted request is always answered (bitwise-identically to a single
// server), while a shed one costs nothing downstream; under bursty MMPP
// arrivals that is what keeps the admitted-traffic p99 flat.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "serve/replica_group.hpp"
#include "serve/traffic_gen.hpp"

namespace distgnn::serve {

enum class RoutePolicy { kRoundRobin, kLeastOutstanding, kPowerOfTwo };

/// "round-robin" | "least-outstanding" | "p2c" (anything else throws — the
/// bench/demo flag parsers rely on loud failure).
RoutePolicy parse_route_policy(const std::string& name);
std::string route_policy_name(RoutePolicy policy);

struct AdmissionConfig {
  /// Master switch for deadline shedding (the bench's on/off comparison).
  bool shed_deadlines = true;
  /// Per-replica queue depth beyond which low-priority requests shed.
  /// 0 disables the priority lane.
  std::size_t low_priority_depth = 64;
  /// Pessimism multiplier on the estimated wait (> 1 sheds earlier).
  double estimate_margin = 1.0;
  /// Seed of the power-of-two-choices sampling stream.
  std::uint64_t seed = 99;
};

struct RouterStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed_deadline = 0;    // deadline unmeetable at admission time
  std::uint64_t shed_priority = 0;    // low-priority lane over the watermark
  std::uint64_t shed_queue_full = 0;  // bounced off the replica's bounded queue
  std::vector<std::uint64_t> admitted_per_replica;

  std::uint64_t shed() const { return shed_deadline + shed_priority + shed_queue_full; }
  double shed_rate() const {
    return submitted == 0 ? 0.0 : static_cast<double>(shed()) / static_cast<double>(submitted);
  }
  /// Counters accrued since `base` (an earlier stats() snapshot) — keeps
  /// warmup traffic out of measured-run shed rates.
  RouterStats since(const RouterStats& base) const;
};

class Router {
 public:
  Router(ReplicaGroup& group, RoutePolicy policy, AdmissionConfig admission = {});

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Routes one request. Returns false when the request was shed (deadline
  /// unmeetable, priority lane over watermark, or queue full) — `done` is
  /// then never invoked.
  bool submit(vid_t vertex, ServeClock::time_point deadline, Priority priority,
              std::function<void(InferResult&&)> done);
  bool submit(vid_t vertex, std::function<void(InferResult&&)> done);

  /// Blocking batch under ONE admission epoch: all slots are reserved before
  /// the first submit, so the group's publish barrier cannot land inside the
  /// batch — every admitted answer carries the same snapshot_version.
  /// Entries of shed requests come back as nullopt.
  std::vector<std::optional<InferResult>> infer_batch(std::span<const vid_t> vertices,
                                                      ServeClock::time_point deadline,
                                                      Priority priority);
  std::vector<std::optional<InferResult>> infer_batch(std::span<const vid_t> vertices);

  RouterStats stats() const;
  RoutePolicy policy() const { return policy_; }
  ReplicaGroup& group() { return group_; }

 private:
  /// Assumes one admission slot is already held; releases it on shed, or
  /// hands it to the completion callback on admit.
  bool route_one(vid_t vertex, ServeClock::time_point deadline, Priority priority,
                 std::function<void(InferResult&&)> done);
  int pick_replica();

  ReplicaGroup& group_;
  RoutePolicy policy_;
  AdmissionConfig admission_;

  std::atomic<std::uint64_t> rr_next_{0};
  std::atomic<std::uint64_t> p2c_draws_{0};

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> shed_deadline_{0};
  std::atomic<std::uint64_t> shed_priority_{0};
  std::atomic<std::uint64_t> shed_queue_full_{0};
  // Per-replica: requests admitted but not yet completed (queued + in
  // service), and lifetime admitted counts. Raw arrays because atomics are
  // not movable.
  std::unique_ptr<std::atomic<std::uint64_t>[]> outstanding_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> admitted_per_replica_;
};

/// Open-loop arrival-driven load through a Router (the replicated analogue
/// of TrafficGenerator::run_open_loop). Latencies cover admitted requests
/// only; shed requests count into LoadReport::rejected.
struct RouterLoadConfig {
  ArrivalConfig arrivals;
  std::size_t num_requests = 400;
  /// Per-request deadline, assigned at submit time (0 = no deadline).
  double deadline_seconds = 0;
  /// Fraction of requests marked Priority::kLow (deterministic per seed).
  double low_priority_fraction = 0;
  /// Vertex-choice and priority-marking stream.
  std::uint64_t seed = 5;
};

LoadReport run_router_open_loop(Router& router, const RouterLoadConfig& config);

}  // namespace distgnn::serve
