// Immutable served models for the online inference subsystem.
//
// A ModelSnapshot freezes the weights of a trained GraphSAGE (or GAT) model
// loaded from an nn/serialize checkpoint. Unlike the training-side layers,
// whose forward passes cache activations in member scratch (and are therefore
// not usable from concurrent worker threads), a snapshot's forward is
// stateless: all scratch lives in a caller-owned ForwardScratch, so any
// number of servers/workers can run inference against one shared snapshot.
//
// SnapshotHolder is the publication point: publish() atomically swaps the
// live snapshot under traffic, and get() hands each in-flight batch a
// shared_ptr that keeps *its* model alive until the batch completes — a new
// checkpoint can land mid-stream without ever serving a torn model.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sampling/minibatch.hpp"
#include "util/matrix.hpp"
#include "util/sync.hpp"

namespace distgnn::serve {

enum class ModelKind { kSage, kGat, kRgcn };

struct ModelSpec {
  ModelKind kind = ModelKind::kSage;
  int feature_dim = 0;
  int hidden_dim = 0;
  int num_classes = 0;
  int num_layers = 2;
  float leaky_slope = 0.2f;  // GAT attention LeakyReLU slope
  int num_relations = 0;     // RGCN: edge-type count (must match the dataset)

  std::size_t in_dim(int layer) const;
  std::size_t out_dim(int layer) const;
};

/// Reusable per-worker scratch for forward_batch; grows to the largest batch
/// seen and is never shared between threads.
struct ForwardScratch {
  std::vector<DenseMatrix> acts;  // acts[l] feeds layer l (stacked over batch)
  DenseMatrix agg;                // stacked neighbourhood aggregate / weighted sum
  DenseMatrix inv_norm;           // per-dst 1/(deg+1) column (SAGE)
  DenseMatrix z;                  // projected features (GAT)
  std::vector<real_t> scores;     // per-edge attention scratch (GAT)
};

class ModelSnapshot {
 public:
  /// Loads a checkpoint written by save_checkpoint over the corresponding
  /// model's params() (SAGE: per layer weight then bias; GAT: per layer
  /// weight, attn_src, attn_dst). Shape mismatches throw std::runtime_error.
  static std::shared_ptr<const ModelSnapshot> from_checkpoint(const ModelSpec& spec,
                                                              const std::string& path,
                                                              std::uint64_t version);

  /// Freshly initialized weights (tests and cold-start serving).
  static std::shared_ptr<const ModelSnapshot> random(const ModelSpec& spec, std::uint64_t seed,
                                                     std::uint64_t version);

  /// Rebuilds a snapshot from flatten()'s layout — the receive side of the
  /// group-broadcast publication path. A size mismatch throws.
  static std::shared_ptr<const ModelSnapshot> from_flat(const ModelSpec& spec,
                                                        std::span<const real_t> flat,
                                                        std::uint64_t version);

  const ModelSpec& spec() const { return spec_; }
  std::uint64_t version() const { return version_; }
  std::size_t num_parameters() const;

  /// Writes this snapshot's weights as a checkpoint (snapshot round-trips and
  /// the demo's hot-swap publisher use this).
  void save(const std::string& path) const;

  /// All weights in checkpoint order as one contiguous buffer — the wire
  /// format broadcast to replica ranks (see serve::broadcast_snapshot).
  std::vector<real_t> flatten() const;

  /// Runs the whole micro-batch through the frozen model in one pass.
  ///
  /// `batch` holds one independently sampled MiniBatch per request; `inputs`
  /// is the stacked feature gather for batch[0].input_vertices ++
  /// batch[1].input_vertices ++ ... ; `logits` receives one row per seed, in
  /// the same request-major order. Every per-row operation (aggregation sum
  /// in block neighbour order, i-k-j GEMM, bias, activation) touches only
  /// that request's rows in the same order as a single-request call, so a
  /// batched forward is bitwise-equal to per-request forwards.
  void forward_batch(std::span<const MiniBatch> batch, ConstMatrixView inputs,
                     ForwardScratch& scratch, DenseMatrix& logits) const;

  /// Applies exactly one layer to stacked one-hop blocks: each MiniBatch in
  /// `batch` must hold a single block, `inputs` is the stacked layer-`layer`
  /// input gather (one row per block source vertex, request-major), and
  /// `out` receives one row per destination vertex. Runs through the same
  /// per-layer core as forward_batch, so a layer applied here is
  /// bitwise-equal to the corresponding step of a full forward — the
  /// embedding cache (EmbedForward) relies on that to mix cached and freshly
  /// computed hop-k embeddings.
  void forward_layer(int layer, std::span<const MiniBatch> batch, ConstMatrixView inputs,
                     ForwardScratch& scratch, DenseMatrix& out) const;

 private:
  struct LayerWeights {
    DenseMatrix weight;     // in x out (RGCN: the self-loop transform)
    DenseMatrix bias;       // 1 x out (SAGE, RGCN)
    DenseMatrix attn_src;   // 1 x out (GAT)
    DenseMatrix attn_dst;   // 1 x out (GAT)
    std::vector<DenseMatrix> rel_weight;  // in x out per relation (RGCN)
    bool relu = false;      // SAGE/RGCN hidden layers
  };

  ModelSnapshot(ModelSpec spec, std::uint64_t version) : spec_(spec), version_(version) {}

  /// Shapes every layer (zero weights, relu flags set) without drawing any
  /// random numbers — the base for every loader that overwrites the values.
  static std::shared_ptr<ModelSnapshot> allocate(const ModelSpec& spec, std::uint64_t version);

  void forward_sage(std::span<const MiniBatch> batch, ForwardScratch& scratch) const;
  void forward_gat(std::span<const MiniBatch> batch, ForwardScratch& scratch) const;
  void forward_rgcn(std::span<const MiniBatch> batch, ForwardScratch& scratch) const;

  /// Shared per-layer cores: `block_at(i)` yields the i-th request's block
  /// for the layer being applied (blocks[l] in a full forward, blocks[0] in
  /// forward_layer), `cur` the stacked input rows, `next` the stacked output
  /// rows. Both full-forward and single-layer paths run through these, which
  /// is what makes them bitwise-interchangeable.
  template <typename BlockAt>
  void sage_layer(const LayerWeights& lw, std::size_t num_requests, const BlockAt& block_at,
                  ConstMatrixView cur, ForwardScratch& scratch, DenseMatrix& next) const;
  template <typename BlockAt>
  void gat_layer(const LayerWeights& lw, std::size_t num_requests, const BlockAt& block_at,
                 ConstMatrixView cur, ForwardScratch& scratch, DenseMatrix& next) const;
  /// RGCN layer over relation-labelled blocks (block.rel must be filled by
  /// typed sampling). Matches RgcnLayer op for op: per destination — self
  /// transform (k-ascending GEMM then bias), then relations in ascending
  /// order (mean of that relation's sampled neighbours, never skipping empty
  /// relations), then ReLU on hidden layers. At full fanout the sampled
  /// per-relation counts equal the graph's per-relation in-degrees, so
  /// served logits are bitwise those of RgcnTrainer's baseline forward.
  template <typename BlockAt>
  void rgcn_layer(const LayerWeights& lw, std::size_t num_requests, const BlockAt& block_at,
                  ConstMatrixView cur, ForwardScratch& scratch, DenseMatrix& next) const;

  ModelSpec spec_;
  std::uint64_t version_ = 0;
  std::vector<LayerWeights> layers_;
};

/// Atomic publication point for the live snapshot: readers get a shared_ptr
/// (their model survives a concurrent publish), writers swap indivisibly.
class SnapshotHolder {
 public:
  void publish(std::shared_ptr<const ModelSnapshot> snapshot);
  std::shared_ptr<const ModelSnapshot> get() const;
  std::uint64_t num_publishes() const;

  /// Hook invoked after every publish, outside the holder lock, with the new
  /// snapshot's version — the invalidation point version-keyed caches (the
  /// serving embedding cache) wire into so a hot-swap drops stale entries.
  void set_on_publish(std::function<void(std::uint64_t version)> hook);

 private:
  mutable util::Mutex mutex_;
  std::shared_ptr<const ModelSnapshot> current_ GUARDED_BY(mutex_);
  std::uint64_t publishes_ GUARDED_BY(mutex_) = 0;
  std::function<void(std::uint64_t)> on_publish_ GUARDED_BY(mutex_);
};

}  // namespace distgnn::serve
