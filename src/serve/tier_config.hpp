// Shared serving-tier configuration base.
//
// ServeConfig (single-process), ShardedServeConfig (P-rank sharded) and
// ComposedTier's per-replica shard config used to triplicate the same
// deadline/cache/batching knobs with drifting field names. TierConfig is the
// consolidation: every tier-shaped config derives from it, so a ModelRegistry
// entry configures one knob set regardless of which backend serves it, and a
// composed tier can slice a ServeConfig down to its shard knobs by copying
// the base. Field names are unchanged from the pre-consolidation structs —
// the old spellings ARE the aliases, kept for one release (existing
// field-by-field initialization code compiles untouched).
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "serve/tenant.hpp"

namespace distgnn::obs {
struct HealthConfig;
}  // namespace distgnn::obs

namespace distgnn::serve {

struct TierConfig {
  int max_batch = 8;
  std::chrono::microseconds max_batch_delay{200};
  std::size_t queue_capacity = 1024;  // per admission queue (per rank when sharded)
  std::vector<int> fanouts = {10, 10};  // input-most first; size == model layers
  std::uint64_t cache_bytes = 8ull << 20;
  int cache_shards = 8;
  /// Per-request sampling is seeded mix(sample_seed, vertex); every tier
  /// uses the same mix, which is what makes single-process, sharded and
  /// composed answers comparable bit for bit.
  std::uint64_t sample_seed = 1;

  /// Fraction of requests that carry a stage trace (0 = tracing off). The
  /// decision is deterministic in (request id, tenant) — obs::trace_sampled —
  /// so layers agree without coordination and tests can pin the sampled set.
  double trace_sample_rate = 0;

  /// Embedding-cached serving: when true, requests run through EmbedForward
  /// (canonical per-(vertex, layer) sampling) and freshly computed layer
  /// outputs are memoized in an EmbedCache keyed by (vertex, layer, snapshot
  /// version). Answers are bitwise-stable across cache state but use a
  /// different sampling stream than the classic path.
  bool embed_forward = false;
  std::uint64_t embed_cache_bytes = 32ull << 20;
  int embed_cache_shards = 8;

  /// Per-tenant SLO override for registry entries built from this config:
  /// ModelRegistry::add_server reads the deadline/weight/budget for the
  /// entry's lane from here, so a tenant's knobs travel with its tier config
  /// instead of a parallel structure.
  TenantSlo slo;

  /// Health-monitor knobs (make_health_config reads these): the background
  /// scrape cadence and the SRE dual burn-rate windows evaluated against
  /// slo.deadline_seconds / slo.slo_target.
  double health_scrape_period_seconds = 0.05;
  double health_fast_window_seconds = 1.0;
  double health_slow_window_seconds = 6.0;
};

/// Translates a tier's health knobs into a HealthMonitor config (everything
/// else stays at HealthConfig defaults). Defined in model_registry.cpp.
obs::HealthConfig make_health_config(const TierConfig& config);

}  // namespace distgnn::serve
