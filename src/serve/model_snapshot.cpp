#include "serve/model_snapshot.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "nn/init.hpp"
#include "nn/serialize.hpp"
#include "util/rng.hpp"

namespace distgnn::serve {

namespace {

/// Serial i-k-j GEMM + row bias. Workers run concurrently, so the snapshot
/// must not spawn nested OpenMP teams; per-request row blocks are small
/// enough that the serial loop is the right tool. The k-ascending
/// accumulation order matches nn/gemm so served logits are bitwise-identical
/// to the training-side forward.
void dense_affine(ConstMatrixView X, const DenseMatrix& W, const DenseMatrix& bias, MatrixView Y) {
  const std::size_t k_dim = W.rows(), n_dim = W.cols();
  for (std::size_t i = 0; i < X.rows; ++i) {
    real_t* y = Y.row(i);
    for (std::size_t j = 0; j < n_dim; ++j) y[j] = 0;
    const real_t* x = X.row(i);
    for (std::size_t k = 0; k < k_dim; ++k) {
      const real_t a = x[k];
      const real_t* w = W.row(k);
      for (std::size_t j = 0; j < n_dim; ++j) y[j] += a * w[j];
    }
    // Bias last, as nn/Linear does (gemm then add_row_bias): float addition
    // is non-associative, so the order is part of the bitwise contract.
    for (std::size_t j = 0; j < n_dim; ++j) y[j] += bias.at(0, j);
  }
}

std::size_t batch_rows(std::span<const MiniBatch> batch, std::size_t layer, bool src_side) {
  std::size_t rows = 0;
  for (const MiniBatch& mb : batch) {
    const SampledBlock& b = mb.blocks[layer];
    rows += static_cast<std::size_t>(src_side ? b.num_src : b.num_dst);
  }
  return rows;
}

}  // namespace

std::size_t ModelSpec::in_dim(int layer) const {
  return static_cast<std::size_t>(layer == 0 ? feature_dim : hidden_dim);
}

std::size_t ModelSpec::out_dim(int layer) const {
  return static_cast<std::size_t>(layer == num_layers - 1 ? num_classes : hidden_dim);
}

std::shared_ptr<ModelSnapshot> ModelSnapshot::allocate(const ModelSpec& spec,
                                                       std::uint64_t version) {
  if (spec.num_layers < 1) throw std::invalid_argument("ModelSnapshot: num_layers must be >= 1");
  if (spec.kind == ModelKind::kRgcn && spec.num_relations < 1)
    throw std::invalid_argument("ModelSnapshot: RGCN spec needs num_relations >= 1");
  auto snap = std::shared_ptr<ModelSnapshot>(new ModelSnapshot(spec, version));
  for (int l = 0; l < spec.num_layers; ++l) {
    LayerWeights lw;
    const std::size_t in = spec.in_dim(l), out = spec.out_dim(l);
    lw.weight = DenseMatrix(in, out);
    if (spec.kind == ModelKind::kSage) {
      lw.bias = DenseMatrix(1, out);
      lw.relu = l != spec.num_layers - 1;
    } else if (spec.kind == ModelKind::kRgcn) {
      lw.bias = DenseMatrix(1, out);
      lw.relu = l != spec.num_layers - 1;
      lw.rel_weight.reserve(static_cast<std::size_t>(spec.num_relations));
      for (int r = 0; r < spec.num_relations; ++r) lw.rel_weight.emplace_back(in, out);
    } else {
      lw.attn_src = DenseMatrix(1, out);
      lw.attn_dst = DenseMatrix(1, out);
    }
    snap->layers_.push_back(std::move(lw));
  }
  return snap;
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::random(const ModelSpec& spec,
                                                           std::uint64_t seed,
                                                           std::uint64_t version) {
  auto snap = allocate(spec, version);
  Rng rng(seed);
  for (LayerWeights& lw : snap->layers_) {
    xavier_uniform(lw.weight.view(), lw.weight.rows(), lw.weight.cols(), rng);
    if (spec.kind == ModelKind::kGat) {
      xavier_uniform(lw.attn_src.view(), lw.weight.cols(), 1, rng);
      xavier_uniform(lw.attn_dst.view(), lw.weight.cols(), 1, rng);
    }
    for (DenseMatrix& wr : lw.rel_weight)
      xavier_uniform(wr.view(), wr.rows(), wr.cols(), rng);
  }
  return snap;
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::from_checkpoint(const ModelSpec& spec,
                                                                    const std::string& path,
                                                                    std::uint64_t version) {
  // Allocate the right shapes, then let load_checkpoint fill (and validate
  // against) them. The ParamRef order must match the corresponding trained
  // model's params(): SAGE = per layer weight, bias; GAT = per layer weight,
  // attn_src, attn_dst.
  auto snap = allocate(spec, version);
  std::vector<ParamRef> refs;
  for (LayerWeights& lw : snap->layers_) {
    refs.push_back({lw.weight.data(), nullptr, lw.weight.size()});
    if (spec.kind == ModelKind::kSage) {
      refs.push_back({lw.bias.data(), nullptr, lw.bias.size()});
    } else if (spec.kind == ModelKind::kRgcn) {
      // RgcnLayer::collect_params order: self weight, self bias, then one
      // weight per relation in ascending relation order.
      refs.push_back({lw.bias.data(), nullptr, lw.bias.size()});
      for (DenseMatrix& wr : lw.rel_weight) refs.push_back({wr.data(), nullptr, wr.size()});
    } else {
      refs.push_back({lw.attn_src.data(), nullptr, lw.attn_src.size()});
      refs.push_back({lw.attn_dst.data(), nullptr, lw.attn_dst.size()});
    }
  }
  load_checkpoint(refs, path);
  return snap;
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::from_flat(const ModelSpec& spec,
                                                              std::span<const real_t> flat,
                                                              std::uint64_t version) {
  auto snap = allocate(spec, version);
  std::size_t off = 0;
  const auto take = [&](DenseMatrix& dst) {
    if (off + dst.size() > flat.size())
      throw std::runtime_error("ModelSnapshot::from_flat: payload too small for spec");
    std::copy(flat.data() + off, flat.data() + off + dst.size(), dst.data());
    off += dst.size();
  };
  for (LayerWeights& lw : snap->layers_) {
    take(lw.weight);
    if (spec.kind == ModelKind::kSage) {
      take(lw.bias);
    } else if (spec.kind == ModelKind::kRgcn) {
      take(lw.bias);
      for (DenseMatrix& wr : lw.rel_weight) take(wr);
    } else {
      take(lw.attn_src);
      take(lw.attn_dst);
    }
  }
  if (off != flat.size())
    throw std::runtime_error("ModelSnapshot::from_flat: payload larger than spec");
  return snap;
}

std::vector<real_t> ModelSnapshot::flatten() const {
  std::vector<real_t> flat;
  flat.reserve(num_parameters());
  const auto put = [&](const DenseMatrix& src) {
    flat.insert(flat.end(), src.data(), src.data() + src.size());
  };
  for (const LayerWeights& lw : layers_) {
    put(lw.weight);
    if (spec_.kind == ModelKind::kSage) {
      put(lw.bias);
    } else if (spec_.kind == ModelKind::kRgcn) {
      put(lw.bias);
      for (const DenseMatrix& wr : lw.rel_weight) put(wr);
    } else {
      put(lw.attn_src);
      put(lw.attn_dst);
    }
  }
  return flat;
}

std::size_t ModelSnapshot::num_parameters() const {
  std::size_t n = 0;
  for (const LayerWeights& lw : layers_) {
    n += lw.weight.size() + lw.bias.size() + lw.attn_src.size() + lw.attn_dst.size();
    for (const DenseMatrix& wr : lw.rel_weight) n += wr.size();
  }
  return n;
}

void ModelSnapshot::save(const std::string& path) const {
  std::vector<ParamRef> refs;
  for (const LayerWeights& lw : layers_) {
    // save_checkpoint only reads through value; the const_cast is safe.
    refs.push_back({const_cast<real_t*>(lw.weight.data()), nullptr, lw.weight.size()});
    if (spec_.kind == ModelKind::kSage) {
      refs.push_back({const_cast<real_t*>(lw.bias.data()), nullptr, lw.bias.size()});
    } else if (spec_.kind == ModelKind::kRgcn) {
      refs.push_back({const_cast<real_t*>(lw.bias.data()), nullptr, lw.bias.size()});
      for (const DenseMatrix& wr : lw.rel_weight)
        refs.push_back({const_cast<real_t*>(wr.data()), nullptr, wr.size()});
    } else {
      refs.push_back({const_cast<real_t*>(lw.attn_src.data()), nullptr, lw.attn_src.size()});
      refs.push_back({const_cast<real_t*>(lw.attn_dst.data()), nullptr, lw.attn_dst.size()});
    }
  }
  save_checkpoint(refs, path);
}

void ModelSnapshot::forward_batch(std::span<const MiniBatch> batch, ConstMatrixView inputs,
                                  ForwardScratch& scratch, DenseMatrix& logits) const {
  const auto num_layers = layers_.size();
  for (const MiniBatch& mb : batch)
    if (mb.blocks.size() != num_layers)
      throw std::invalid_argument("ModelSnapshot: minibatch depth != model layers");
  if (inputs.rows != batch_rows(batch, 0, /*src_side=*/true) ||
      inputs.cols != static_cast<std::size_t>(spec_.feature_dim))
    throw std::invalid_argument("ModelSnapshot: stacked input shape mismatch");

  scratch.acts.resize(num_layers + 1);
  scratch.acts[0].resize_discard(inputs.rows, inputs.cols);
  std::copy(inputs.data, inputs.data + inputs.rows * inputs.cols, scratch.acts[0].data());

  if (spec_.kind == ModelKind::kSage)
    forward_sage(batch, scratch);
  else if (spec_.kind == ModelKind::kRgcn)
    forward_rgcn(batch, scratch);
  else
    forward_gat(batch, scratch);

  const DenseMatrix& out = scratch.acts[num_layers];
  logits.resize_discard(out.rows(), out.cols());
  std::copy(out.data(), out.data() + out.size(), logits.data());
}

template <typename BlockAt>
void ModelSnapshot::sage_layer(const LayerWeights& lw, std::size_t num_requests,
                               const BlockAt& block_at, ConstMatrixView cur,
                               ForwardScratch& scratch, DenseMatrix& next) const {
  const std::size_t d = cur.cols;
  std::size_t out_rows = 0;
  for (std::size_t i = 0; i < num_requests; ++i)
    out_rows += static_cast<std::size_t>(block_at(i).num_dst);

  // combined = (agg + h_dst) * 1/(deg+1), computed in place over the
  // stacked destination rows; each request's rows reference only its own
  // source-row slice, so the result is independent of batch composition.
  DenseMatrix& combined = scratch.agg;
  combined.resize_discard(out_rows, d, 0);
  std::size_t in_off = 0, out_off = 0;
  for (std::size_t i = 0; i < num_requests; ++i) {
    const SampledBlock& block = block_at(i);
    for (vid_t v = 0; v < block.num_dst; ++v) {
      const auto nbrs = block.neighbors(v);
      real_t* c = combined.row(out_off + static_cast<std::size_t>(v));
      for (const vid_t u : nbrs) {
        const real_t* s = cur.row(in_off + static_cast<std::size_t>(u));
        for (std::size_t j = 0; j < d; ++j) c[j] += s[j];
      }
      const real_t inv = 1.0f / (static_cast<real_t>(nbrs.size()) + 1.0f);
      const real_t* h = cur.row(in_off + static_cast<std::size_t>(v));
      for (std::size_t j = 0; j < d; ++j) c[j] = (c[j] + h[j]) * inv;
    }
    in_off += static_cast<std::size_t>(block.num_src);
    out_off += static_cast<std::size_t>(block.num_dst);
  }

  next.resize_discard(out_rows, lw.weight.cols());
  dense_affine(combined.cview(), lw.weight, lw.bias, next.view());
  if (lw.relu) {
    real_t* y = next.data();
    for (std::size_t i = 0; i < next.size(); ++i) y[i] = y[i] > 0 ? y[i] : 0;
  }
}

template <typename BlockAt>
void ModelSnapshot::gat_layer(const LayerWeights& lw, std::size_t num_requests,
                              const BlockAt& block_at, ConstMatrixView cur,
                              ForwardScratch& scratch, DenseMatrix& next) const {
  const std::size_t d = lw.weight.cols();
  const std::size_t in_rows = cur.rows;
  std::size_t out_rows = 0;
  for (std::size_t i = 0; i < num_requests; ++i)
    out_rows += static_cast<std::size_t>(block_at(i).num_dst);

  // Projection of every source row, then per-destination attention over the
  // sampled in-neighbours (GatInference semantics: no self edge, degree-0
  // destinations output zeros).
  DenseMatrix& z = scratch.z;
  z.resize_discard(in_rows, d);
  const DenseMatrix zero_bias(1, d);  // the GAT projection is bias-free
  dense_affine(cur, lw.weight, zero_bias, z.view());

  next.resize_discard(out_rows, d, 0);

  std::size_t in_off = 0, out_off = 0;
  for (std::size_t i = 0; i < num_requests; ++i) {
    const SampledBlock& block = block_at(i);
    for (vid_t v = 0; v < block.num_dst; ++v) {
      const auto nbrs = block.neighbors(v);
      real_t* out = next.row(out_off + static_cast<std::size_t>(v));
      if (nbrs.empty()) continue;

      const real_t* zv = z.row(in_off + static_cast<std::size_t>(v));
      real_t dst_term = 0;
      for (std::size_t j = 0; j < d; ++j) dst_term += zv[j] * lw.attn_dst.at(0, j);

      scratch.scores.resize(nbrs.size());
      real_t max_score = -std::numeric_limits<real_t>::infinity();
      for (std::size_t n = 0; n < nbrs.size(); ++n) {
        const real_t* zu = z.row(in_off + static_cast<std::size_t>(nbrs[n]));
        real_t src_term = 0;
        for (std::size_t j = 0; j < d; ++j) src_term += zu[j] * lw.attn_src.at(0, j);
        const real_t raw = src_term + dst_term;
        const real_t score = raw > 0 ? raw : spec_.leaky_slope * raw;
        scratch.scores[n] = score;
        max_score = std::max(max_score, score);
      }
      real_t denom = 0;
      for (real_t& s : scratch.scores) {
        s = std::exp(s - max_score);
        denom += s;
      }
      const real_t inv = 1.0f / denom;
      for (std::size_t n = 0; n < nbrs.size(); ++n) {
        const real_t alpha = scratch.scores[n] * inv;
        const real_t* zu = z.row(in_off + static_cast<std::size_t>(nbrs[n]));
        for (std::size_t j = 0; j < d; ++j) out[j] += alpha * zu[j];
      }
    }
    in_off += static_cast<std::size_t>(block.num_src);
    out_off += static_cast<std::size_t>(block.num_dst);
  }
}

template <typename BlockAt>
void ModelSnapshot::rgcn_layer(const LayerWeights& lw, std::size_t num_requests,
                               const BlockAt& block_at, ConstMatrixView cur,
                               ForwardScratch& scratch, DenseMatrix& next) const {
  const std::size_t d_in = cur.cols;
  const std::size_t d_out = lw.weight.cols();
  std::size_t out_rows = 0;
  for (std::size_t i = 0; i < num_requests; ++i)
    out_rows += static_cast<std::size_t>(block_at(i).num_dst);

  next.resize_discard(out_rows, d_out);
  scratch.scores.resize(d_in);  // per-relation aggregate row
  std::size_t in_off = 0, out_off = 0;
  for (std::size_t i = 0; i < num_requests; ++i) {
    const SampledBlock& block = block_at(i);
    if (block.rel.size() != block.col.size())
      throw std::invalid_argument("ModelSnapshot: RGCN forward needs relation-labelled blocks");
    for (vid_t v = 0; v < block.num_dst; ++v) {
      real_t* y = next.row(out_off + static_cast<std::size_t>(v));
      // Self transform first — k-ascending GEMM then bias, exactly the
      // training-side Linear (gemm + add_row_bias) order.
      const real_t* h = cur.row(in_off + static_cast<std::size_t>(v));
      for (std::size_t j = 0; j < d_out; ++j) y[j] = 0;
      for (std::size_t k = 0; k < d_in; ++k) {
        const real_t a = h[k];
        const real_t* w = lw.weight.row(k);
        for (std::size_t j = 0; j < d_out; ++j) y[j] += a * w[j];
      }
      for (std::size_t j = 0; j < d_out; ++j) y[j] += lw.bias.at(0, j);

      const auto nbrs = block.neighbors(v);
      const auto rels = block.relations(v);
      for (std::size_t r = 0; r < lw.rel_weight.size(); ++r) {
        // Mean aggregate of this relation's sampled neighbours, in block
        // (== per-relation CSR) order; at full fanout the count is the
        // graph's per-relation in-degree, matching the trainer's inv_norm.
        real_t* s = scratch.scores.data();
        for (std::size_t j = 0; j < d_in; ++j) s[j] = 0;
        std::size_t count = 0;
        for (std::size_t n = 0; n < nbrs.size(); ++n) {
          if (rels[n] != static_cast<int>(r)) continue;
          const real_t* su = cur.row(in_off + static_cast<std::size_t>(nbrs[n]));
          for (std::size_t j = 0; j < d_in; ++j) s[j] += su[j];
          ++count;
        }
        const real_t inv = count > 0 ? 1.0f / static_cast<real_t>(count) : 0.0f;
        // Accumulate even when the relation is empty: the trainer's
        // per-relation GEMM runs unconditionally and float += is
        // sign-sensitive, so skipping would break bitwise equality.
        const DenseMatrix& wr = lw.rel_weight[r];
        for (std::size_t k = 0; k < d_in; ++k) {
          const real_t a = s[k] * inv;
          const real_t* w = wr.row(k);
          for (std::size_t j = 0; j < d_out; ++j) y[j] += a * w[j];
        }
      }
      if (lw.relu)
        for (std::size_t j = 0; j < d_out; ++j) y[j] = y[j] > 0 ? y[j] : 0;
    }
    in_off += static_cast<std::size_t>(block.num_src);
    out_off += static_cast<std::size_t>(block.num_dst);
  }
}

void ModelSnapshot::forward_sage(std::span<const MiniBatch> batch, ForwardScratch& scratch) const {
  for (std::size_t l = 0; l < layers_.size(); ++l)
    sage_layer(
        layers_[l], batch.size(),
        [&](std::size_t i) -> const SampledBlock& { return batch[i].blocks[l]; },
        scratch.acts[l].cview(), scratch, scratch.acts[l + 1]);
}

void ModelSnapshot::forward_gat(std::span<const MiniBatch> batch, ForwardScratch& scratch) const {
  for (std::size_t l = 0; l < layers_.size(); ++l)
    gat_layer(
        layers_[l], batch.size(),
        [&](std::size_t i) -> const SampledBlock& { return batch[i].blocks[l]; },
        scratch.acts[l].cview(), scratch, scratch.acts[l + 1]);
}

void ModelSnapshot::forward_rgcn(std::span<const MiniBatch> batch, ForwardScratch& scratch) const {
  for (std::size_t l = 0; l < layers_.size(); ++l)
    rgcn_layer(
        layers_[l], batch.size(),
        [&](std::size_t i) -> const SampledBlock& { return batch[i].blocks[l]; },
        scratch.acts[l].cview(), scratch, scratch.acts[l + 1]);
}

void ModelSnapshot::forward_layer(int layer, std::span<const MiniBatch> batch,
                                  ConstMatrixView inputs, ForwardScratch& scratch,
                                  DenseMatrix& out) const {
  if (layer < 0 || layer >= static_cast<int>(layers_.size()))
    throw std::invalid_argument("ModelSnapshot::forward_layer: layer out of range");
  for (const MiniBatch& mb : batch)
    if (mb.blocks.size() != 1)
      throw std::invalid_argument("ModelSnapshot::forward_layer: expects one-hop minibatches");
  if (inputs.rows != batch_rows(batch, 0, /*src_side=*/true) ||
      inputs.cols != spec_.in_dim(layer))
    throw std::invalid_argument("ModelSnapshot::forward_layer: stacked input shape mismatch");

  // RGCN is excluded from the single-layer (embed-cache) path: relation
  // labels do not survive the per-(vertex, layer) canonical re-sampling.
  if (spec_.kind == ModelKind::kRgcn)
    throw std::invalid_argument("ModelSnapshot::forward_layer: RGCN has no embed-forward path");
  const auto block_at = [&](std::size_t i) -> const SampledBlock& { return batch[i].blocks[0]; };
  if (spec_.kind == ModelKind::kSage)
    sage_layer(layers_[static_cast<std::size_t>(layer)], batch.size(), block_at, inputs, scratch,
               out);
  else
    gat_layer(layers_[static_cast<std::size_t>(layer)], batch.size(), block_at, inputs, scratch,
              out);
}

void SnapshotHolder::publish(std::shared_ptr<const ModelSnapshot> snapshot) {
  std::uint64_t version = 0;
  std::function<void(std::uint64_t)> hook;
  {
    util::MutexLock lock(mutex_);
    if (snapshot) version = snapshot->version();
    current_ = std::move(snapshot);
    ++publishes_;
    hook = on_publish_;
  }
  // Outside the lock: the hook may take cache shard locks, and readers must
  // not block behind it.
  if (hook) hook(version);
}

std::shared_ptr<const ModelSnapshot> SnapshotHolder::get() const {
  util::MutexLock lock(mutex_);
  return current_;
}

std::uint64_t SnapshotHolder::num_publishes() const {
  util::MutexLock lock(mutex_);
  return publishes_;
}

void SnapshotHolder::set_on_publish(std::function<void(std::uint64_t)> hook) {
  util::MutexLock lock(mutex_);
  on_publish_ = std::move(hook);
}

}  // namespace distgnn::serve
