#include "util/options.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace distgnn {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Options::has(const std::string& key) const { return values_.count(key) > 0; }

void Options::require_known(std::initializer_list<const char*> known) const {
  std::string unknown;
  for (const auto& [key, _] : values_) {
    if (std::find_if(known.begin(), known.end(),
                     [&](const char* k) { return key == k; }) != known.end())
      continue;
    if (!unknown.empty()) unknown += ", ";
    unknown += "--" + key;
  }
  if (unknown.empty()) return;
  std::string help = "unknown flag(s): " + unknown + "; known flags:";
  for (const char* k : known) help += std::string(" --") + k;
  throw std::invalid_argument(help);
}

std::string Options::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

long long Options::get_int(const std::string& key, long long fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace distgnn
