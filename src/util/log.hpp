// Minimal leveled logging. The distributed runtime prefixes messages with the
// rank so interleaved output from simulated sockets stays attributable.
#pragma once

#include <sstream>
#include <string>

namespace distgnn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Defaults to kInfo and can
/// be overridden with the DISTGNN_LOG environment variable (debug/info/warn/error).
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

/// Thread-safe write of one formatted line to stderr.
void log_line(LogLevel level, const std::string& message);

namespace detail {
inline void log_append(std::ostringstream&) {}
template <typename T, typename... Rest>
void log_append(std::ostringstream& out, const T& v, const Rest&... rest) {
  out << v;
  log_append(out, rest...);
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level < log_threshold()) return;
  std::ostringstream out;
  detail::log_append(out, args...);
  log_line(level, out.str());
}

template <typename... Args>
void log_info(const Args&... args) { log(LogLevel::kInfo, args...); }
template <typename... Args>
void log_debug(const Args&... args) { log(LogLevel::kDebug, args...); }
template <typename... Args>
void log_warn(const Args&... args) { log(LogLevel::kWarn, args...); }
template <typename... Args>
void log_error(const Args&... args) { log(LogLevel::kError, args...); }

}  // namespace distgnn
