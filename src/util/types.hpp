// Fundamental index and scalar types shared by every DistGNN module.
#pragma once

#include <cstdint>
#include <cstddef>

namespace distgnn {

/// Vertex identifier. Signed 64-bit so that graphs with >2^31 vertices
/// (OGBN-Papers scale) are representable and so that -1 can mark "absent".
using vid_t = std::int64_t;

/// Edge identifier, indexes into edge-feature storage.
using eid_t = std::int64_t;

/// Partition / rank identifier.
using part_t = std::int32_t;

/// Scalar type of all feature matrices. The paper trains in FP32 and lists
/// FP16/BF16 as future work; see core/precision.hpp for the emulated
/// low-precision extension.
using real_t = float;

inline constexpr vid_t kInvalidVertex = -1;
inline constexpr eid_t kInvalidEdge = -1;
inline constexpr part_t kInvalidPart = -1;

/// Bytes in one hardware cache line; used by the cache simulator and the
/// aligned allocator.
inline constexpr std::size_t kCacheLineBytes = 64;

}  // namespace distgnn
