// Clang thread-safety-analysis attribute macros (abseil-style names).
//
// These annotate the locking contract of a class so that clang's
// -Wthread-safety analysis can prove, at compile time, that every access to
// a GUARDED_BY member happens with its capability held and that REQUIRES
// contracts hold at every call site. Under any other compiler (gcc builds,
// MSVC) every macro expands to nothing — the annotations are free.
//
// The repo-wide conventions (enforced by tools/lint_concurrency.py and the
// thread-safety CI job; see README "Concurrency correctness"):
//   * no raw std::mutex / std::shared_mutex outside src/util/sync.hpp —
//     shared state uses util::Mutex / util::SharedMutex so it can carry
//     these annotations;
//   * every mutex-guarded member is annotated GUARDED_BY(mutex_);
//   * private helpers that assume a held lock are annotated
//     REQUIRES(mutex_) instead of re-locking;
//   * condition-variable predicates are written as explicit while-loops in
//     the locking scope (clang analyzes lambda bodies as separate
//     functions, so a predicate lambda reading guarded fields would warn).
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define DISTGNN_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define DISTGNN_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off clang
#endif

#define CAPABILITY(x) DISTGNN_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define SCOPED_CAPABILITY DISTGNN_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define GUARDED_BY(x) DISTGNN_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define PT_GUARDED_BY(x) DISTGNN_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  DISTGNN_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  DISTGNN_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  DISTGNN_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  DISTGNN_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  DISTGNN_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  DISTGNN_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  DISTGNN_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  DISTGNN_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) \
  DISTGNN_THREAD_ANNOTATION_ATTRIBUTE(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  DISTGNN_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  DISTGNN_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) DISTGNN_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) DISTGNN_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) \
  DISTGNN_THREAD_ANNOTATION_ATTRIBUTE(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) DISTGNN_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  DISTGNN_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
