// Tiny command-line option parser shared by the examples and bench binaries.
// Supports --key=value and --key value forms plus boolean --flag.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace distgnn {

class Options {
 public:
  Options(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  long long get_int(const std::string& key, long long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Positional (non --key) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Strict mode: throws std::invalid_argument naming every parsed --key not
  /// in `known`, so binaries can reject typos like --bacth=8 instead of
  /// silently falling back to defaults.
  void require_known(std::initializer_list<const char*> known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace distgnn
