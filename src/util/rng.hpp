// Deterministic, seedable PRNG (xoshiro256**). Used everywhere instead of
// std::mt19937 so that graph generation and training are reproducible across
// standard-library implementations and fast enough for billion-edge streams.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace distgnn {

/// splitmix64 finalizer: a cheap, high-quality 64-bit mix. Shared by Rng
/// seeding, per-request sampling streams, and cache shard selection so all
/// id-spreading in the tree uses one function.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      s = splitmix64(z);
      z += 0x9e3779b97f4a7c15ULL;
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection-free-enough bounded generator.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform float in [0, 1).
  float next_float() { return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f; }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) { return lo + (hi - lo) * next_float(); }

  /// Standard normal via Box-Muller (one value per call; simple and adequate).
  float normal() {
    float u1 = next_float();
    while (u1 <= 1e-12f) u1 = next_float();
    const float u2 = next_float();
    return std::sqrt(-2.0f * std::log(u1)) * std::cos(6.28318530717958647692f * u2);
  }

  bool bernoulli(double p) { return next_double() < p; }

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }
  result_type operator()() { return next_u64(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t state_[4] = {};
};

}  // namespace distgnn
