#include "util/stopwatch.hpp"

// Header-only in practice; this TU anchors the library and keeps the door
// open for out-of-line additions without touching every dependent target.
namespace distgnn {}
