#include "util/stopwatch.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <time.h>
#endif

namespace distgnn {

double thread_cpu_seconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
#endif
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

}  // namespace distgnn
