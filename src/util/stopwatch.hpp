// Wall-clock timing helpers. Stopwatch accumulates across start/stop pairs so
// the trainer can separate phases (local aggregation, remote aggregation,
// MLP, backprop) the way Figure 6 of the paper does.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace distgnn {

/// CPU seconds consumed by the calling thread. The in-process cluster
/// simulation (comm/World) oversubscribes the host when ranks outnumber
/// cores, so wall-clock per-rank phase times would include scheduler waits;
/// thread CPU time measures the rank's actual work, which is what the paper's
/// per-socket LAT/RAT numbers mean. Falls back to wall clock on platforms
/// without a per-thread CPU clock.
double thread_cpu_seconds();

class Stopwatch {
 public:
  void start() { begin_ = clock::now(); running_ = true; }

  /// Stops and returns the elapsed seconds of this start/stop interval.
  double stop() {
    if (!running_) return 0.0;
    const double s = std::chrono::duration<double>(clock::now() - begin_).count();
    total_ += s;
    ++laps_;
    running_ = false;
    return s;
  }

  void reset() { total_ = 0.0; laps_ = 0; running_ = false; }

  double total_seconds() const { return total_; }
  std::uint64_t laps() const { return laps_; }
  double mean_seconds() const { return laps_ == 0 ? 0.0 : total_ / static_cast<double>(laps_); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point begin_{};
  double total_ = 0.0;
  std::uint64_t laps_ = 0;
  bool running_ = false;
};

/// Named collection of stopwatches, e.g. one per training phase.
class PhaseTimers {
 public:
  Stopwatch& operator[](const std::string& name) { return timers_[name]; }

  double total_seconds(const std::string& name) const {
    const auto it = timers_.find(name);
    return it == timers_.end() ? 0.0 : it->second.total_seconds();
  }

  const std::map<std::string, Stopwatch>& all() const { return timers_; }

  void reset() {
    for (auto& [_, t] : timers_) t.reset();
  }

 private:
  std::map<std::string, Stopwatch> timers_;
};

/// RAII lap: starts on construction, stops on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Stopwatch& sw) : sw_(sw) { sw_.start(); }
  ~ScopedTimer() { sw_.stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Stopwatch& sw_;
};

}  // namespace distgnn
