// Cache-line aligned, value-initialized flat buffer used for feature
// matrices. Avoids false sharing between OpenMP threads that own adjacent
// destination rows and keeps SIMD loads aligned.
#pragma once

#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <stdexcept>
#include <utility>

#include "util/types.hpp"

namespace distgnn {

template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t n, T fill = T{}) { assign(n, fill); }

  AlignedBuffer(const AlignedBuffer& other) { *this = other; }
  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) {
      allocate(other.size_);
      if (other.size_ > 0) std::memcpy(data_.get(), other.data_.get(), other.size_ * sizeof(T));
    }
    return *this;
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::move(other.data_)),
        size_(std::exchange(other.size_, 0)),
        capacity_(std::exchange(other.capacity_, 0)) {}
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      data_ = std::move(other.data_);
      size_ = std::exchange(other.size_, 0);
      capacity_ = std::exchange(other.capacity_, 0);
    }
    return *this;
  }

  void assign(std::size_t n, T fill = T{}) {
    allocate(n);
    for (std::size_t i = 0; i < n; ++i) data_[i] = fill;
  }

  /// Resize without preserving contents (feature matrices are always fully
  /// rewritten by the kernels that use them).
  void resize_discard(std::size_t n, T fill = T{}) { assign(n, fill); }

  void fill(T value) {
    for (std::size_t i = 0; i < size_; ++i) data_[i] = value;
  }

  T* data() noexcept { return data_.get(); }
  const T* data() const noexcept { return data_.get(); }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  T* begin() noexcept { return data_.get(); }
  T* end() noexcept { return data_.get() + size_; }
  const T* begin() const noexcept { return data_.get(); }
  const T* end() const noexcept { return data_.get() + size_; }

 private:
  struct FreeDeleter {
    void operator()(T* p) const noexcept { std::free(p); }
  };

  void allocate(std::size_t n) {
    // Shrinking (or equal-size) reuse keeps the existing allocation: the
    // serving and training hot paths resize_discard their scratch matrices
    // every batch, and the steady state must be allocation-free.
    if (n <= capacity_) {
      size_ = n;
      return;
    }
    const std::size_t bytes = ((n * sizeof(T) + kCacheLineBytes - 1) / kCacheLineBytes) * kCacheLineBytes;
    void* p = std::aligned_alloc(kCacheLineBytes, bytes);
    if (p == nullptr) throw std::bad_alloc{};
    data_.reset(static_cast<T*>(p));
    size_ = n;
    capacity_ = bytes / sizeof(T);
  }

  std::unique_ptr<T[], FreeDeleter> data_;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace distgnn
