// Annotated synchronization primitives — the only mutexes in the tree.
//
// util::Mutex / util::SharedMutex wrap the std primitives with clang
// thread-safety capability annotations so that GUARDED_BY / REQUIRES
// contracts on the classes using them are compiler-checked (see
// thread_annotations.hpp for the conventions, and tools/lint_concurrency.py
// for the lint that keeps raw std::mutex from reappearing outside this
// file). The wrappers are zero-cost: every method is a forwarding inline,
// and off-clang the annotations vanish entirely.
//
// Locking idiom:
//   util::MutexLock lock(mutex_);          // scoped, relockable
//   while (!ready_) cv_.wait(lock);        // predicate in the annotated scope
//
// MutexLock is deliberately relockable (unlock()/lock() members with
// RELEASE/ACQUIRE annotations) because the rank-park loops drop the lock to
// service peers mid-wait; the analysis tracks the capability through those
// transitions.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.hpp"

namespace distgnn::util {

/// std::mutex with a thread-safety capability. Prefer MutexLock over calling
/// lock()/unlock() directly.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// The underlying std::mutex, for std::condition_variable interop only
  /// (CondVar goes through this; nothing else should).
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// std::shared_mutex with a thread-safety capability: exclusive for writers,
/// shared for readers.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  void lock_shared() ACQUIRE_SHARED() { m_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { m_.unlock_shared(); }

 private:
  std::shared_mutex m_;
};

/// Scoped exclusive lock on a util::Mutex. Relockable: unlock()/lock() let a
/// holder drop the capability mid-scope (park loops); the destructor
/// releases only if currently held (std::unique_lock semantics).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() RELEASE() { lock_.unlock(); }
  void lock() ACQUIRE() { lock_.lock(); }

  /// For CondVar interop only.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// Scoped exclusive (writer) lock on a util::SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~WriterLock() RELEASE() { mu_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared (reader) lock on a util::SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) { mu_.lock_shared(); }
  ~ReaderLock() RELEASE_GENERIC() { mu_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with util::Mutex via MutexLock. No predicate
/// overloads on purpose: callers write explicit while-loops so guarded-field
/// reads stay in the annotated scope (a predicate lambda would be analyzed
/// as a separate, lock-free function and warn).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  /// Atomically releases `lock`, waits, reacquires. The capability is held
  /// again when this returns, which is all the analysis needs to know.
  void wait(MutexLock& lock) { cv_.wait(lock.native()); }

  template <class Rep, class Period>
  std::cv_status wait_for(MutexLock& lock, const std::chrono::duration<Rep, Period>& d) {
    return cv_.wait_for(lock.native(), d);
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(MutexLock& lock,
                            const std::chrono::time_point<Clock, Duration>& t) {
    return cv_.wait_until(lock.native(), t);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace distgnn::util
