// Row-major dense matrix over an aligned buffer, plus lightweight views.
// This is the feature-matrix currency between the graph kernels and the
// neural-network stack: fV, fE and fO in the paper's Aggregation Primitive
// are all DenseMatrix / MatrixView instances.
#pragma once

#include <cassert>
#include <cstddef>

#include "util/aligned_buffer.hpp"
#include "util/types.hpp"

namespace distgnn {

/// Mutable non-owning view of a row-major matrix.
struct MatrixView {
  real_t* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;

  real_t* row(std::size_t r) noexcept {
    assert(r < rows);
    return data + r * cols;
  }
  const real_t* row(std::size_t r) const noexcept {
    assert(r < rows);
    return data + r * cols;
  }
  real_t& at(std::size_t r, std::size_t c) noexcept { return row(r)[c]; }
  real_t at(std::size_t r, std::size_t c) const noexcept { return row(r)[c]; }
  std::size_t size() const noexcept { return rows * cols; }
  bool empty() const noexcept { return data == nullptr || size() == 0; }
};

/// Read-only non-owning view.
struct ConstMatrixView {
  const real_t* data = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;

  ConstMatrixView() = default;
  ConstMatrixView(const real_t* d, std::size_t r, std::size_t c) : data(d), rows(r), cols(c) {}
  ConstMatrixView(const MatrixView& v) : data(v.data), rows(v.rows), cols(v.cols) {}  // NOLINT

  const real_t* row(std::size_t r) const noexcept {
    assert(r < rows);
    return data + r * cols;
  }
  real_t at(std::size_t r, std::size_t c) const noexcept { return row(r)[c]; }
  std::size_t size() const noexcept { return rows * cols; }
  bool empty() const noexcept { return data == nullptr || size() == 0; }
};

/// Owning row-major matrix with cache-line aligned storage.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, real_t fill = 0)
      : rows_(rows), cols_(cols), buf_(rows * cols, fill) {}

  void resize_discard(std::size_t rows, std::size_t cols, real_t fill = 0) {
    rows_ = rows;
    cols_ = cols;
    buf_.resize_discard(rows * cols, fill);
  }

  void fill(real_t value) { buf_.fill(value); }
  void zero() { buf_.fill(0); }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return rows_ * cols_; }
  bool empty() const noexcept { return size() == 0; }

  real_t* data() noexcept { return buf_.data(); }
  const real_t* data() const noexcept { return buf_.data(); }
  real_t* row(std::size_t r) noexcept { return buf_.data() + r * cols_; }
  const real_t* row(std::size_t r) const noexcept { return buf_.data() + r * cols_; }
  real_t& at(std::size_t r, std::size_t c) noexcept { return row(r)[c]; }
  real_t at(std::size_t r, std::size_t c) const noexcept { return row(r)[c]; }

  MatrixView view() noexcept { return {buf_.data(), rows_, cols_}; }
  ConstMatrixView view() const noexcept { return {buf_.data(), rows_, cols_}; }
  ConstMatrixView cview() const noexcept { return {buf_.data(), rows_, cols_}; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  AlignedBuffer<real_t> buf_;
};

}  // namespace distgnn
