#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>  // std::once_flag only; locking goes through util::Mutex

#include "util/sync.hpp"

namespace distgnn {

namespace {

std::atomic<LogLevel> g_threshold{LogLevel::kInfo};
std::once_flag g_env_once;
util::Mutex g_write_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

void init_from_env() {
  const char* env = std::getenv("DISTGNN_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "debug") == 0) g_threshold = LogLevel::kDebug;
  else if (std::strcmp(env, "info") == 0) g_threshold = LogLevel::kInfo;
  else if (std::strcmp(env, "warn") == 0) g_threshold = LogLevel::kWarn;
  else if (std::strcmp(env, "error") == 0) g_threshold = LogLevel::kError;
}

}  // namespace

LogLevel log_threshold() {
  std::call_once(g_env_once, init_from_env);
  return g_threshold.load(std::memory_order_relaxed);
}

void set_log_threshold(LogLevel level) { g_threshold.store(level, std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& message) {
  util::MutexLock lock(g_write_mutex);
  std::fprintf(stderr, "[distgnn %-5s] %s\n", level_name(level), message.c_str());
}

}  // namespace distgnn
