#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace distgnn {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render(const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  if (!title.empty()) out << title << '\n';
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << "| " << cells[c];
      out << std::string(width[c] - cells[c].size() + 1, ' ');
    }
    out << "|\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c)
    out << '|' << std::string(width[c] + 2, '-');
  out << "|\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TextTable::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TextTable::fmt_int(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  return buf;
}

}  // namespace distgnn
