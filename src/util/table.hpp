// Plain-text table rendering for the benchmark harness. Every bench binary
// prints the same rows/columns as the corresponding table or figure of the
// paper; this class handles alignment so the output is diffable.
#pragma once

#include <string>
#include <vector>

namespace distgnn {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment, a header underline and optional title.
  std::string render(const std::string& title = "") const;

  std::size_t num_rows() const { return rows_.size(); }

  /// Formats a double with the given precision, trimming trailing zeros is
  /// deliberately *not* done so columns line up.
  static std::string fmt(double value, int precision = 3);
  static std::string fmt_int(long long value);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace distgnn
