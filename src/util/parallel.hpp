// OpenMP shim: wraps <omp.h> when OpenMP is available and provides serial
// fallbacks otherwise, so every translation unit can include this header
// unconditionally. `#pragma omp` directives are ignored by non-OpenMP
// compilers, so only the runtime-library calls need wrapping.
#pragma once

#if defined(_OPENMP)
#include <omp.h>

namespace distgnn::par {
inline constexpr bool kHaveOpenMP = true;
}  // namespace distgnn::par

#else  // serial fallbacks

inline int omp_get_num_threads() { return 1; }
inline int omp_get_max_threads() { return 1; }
inline int omp_get_thread_num() { return 0; }
inline int omp_get_num_procs() { return 1; }
inline void omp_set_num_threads(int) {}
inline int omp_in_parallel() { return 0; }

namespace distgnn::par {
inline constexpr bool kHaveOpenMP = false;
}  // namespace distgnn::par

#endif  // _OPENMP

namespace distgnn::par {

/// Number of worker threads a parallel region would use.
inline int max_threads() { return omp_get_max_threads(); }

/// Calling thread's id inside a parallel region (0 when serial).
inline int thread_id() { return omp_get_thread_num(); }

/// Threads active in the current parallel region (1 when serial).
inline int num_threads() { return omp_get_num_threads(); }

/// Hint for the global thread count; no-op in serial builds.
inline void set_num_threads(int n) { omp_set_num_threads(n); }

/// Hardware concurrency as OpenMP sees it (1 in serial builds).
inline int num_procs() { return omp_get_num_procs(); }

}  // namespace distgnn::par
