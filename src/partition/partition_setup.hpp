// Partition setup (§5.2 of the paper): materializes per-partition local
// graphs from an edge partition, assigns consecutive local vertex IDs
// partition-by-partition, records the global `vertex_map` of ID ranges, and
// discovers split vertices with their 1-level clone trees (one clone is the
// root, the rest are leaves).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/coo.hpp"
#include "partition/libra.hpp"
#include "util/matrix.hpp"

namespace distgnn {

struct LocalPartition {
  part_t id = 0;
  vid_t num_vertices = 0;  // local vertex count (split + non-split)
  /// Local subgraph; endpoints are partition-local indices in [0, num_vertices).
  EdgeList edges;
  /// local index -> original (global) vertex id, ascending.
  std::vector<vid_t> global_ids;
  /// Global in-degree of each local vertex — the cd-0/cd-r GCN normalizer,
  /// so a fully synchronized aggregate matches the single-socket result.
  std::vector<eid_t> global_in_degree;
  std::vector<std::uint8_t> is_split;  // vertex has clones elsewhere
  std::vector<std::uint8_t> is_root;   // this clone is its tree's root
  /// Global split-tree index (dense, shared across partitions); -1 if not split.
  std::vector<std::int64_t> tree_id;
  /// Exactly one clone per global vertex carries the label (the root), so
  /// distributed loss terms are not double counted.
  std::vector<std::uint8_t> owns_label;
};

struct PartitionedGraph {
  part_t num_parts = 0;
  vid_t num_global_vertices = 0;
  std::vector<LocalPartition> parts;
  /// vertex_map[p] .. vertex_map[p+1] is partition p's global local-ID range.
  std::vector<vid_t> vertex_map;
  std::int64_t num_split_trees = 0;

  vid_t global_local_id(part_t p, vid_t local) const { return vertex_map[static_cast<std::size_t>(p)] + local; }
  /// Which partition owns a global local-ID (binary search over vertex_map).
  part_t partition_of_local_id(vid_t global_local) const;
  vid_t total_local_vertices() const { return vertex_map.back(); }
};

/// Builds all partitions. `seed` controls the random root-clone choice.
PartitionedGraph build_partitions(const EdgeList& edges, const EdgePartition& ep,
                                  std::uint64_t seed = 0);

/// Slices global per-vertex data down to one partition's local vertices.
DenseMatrix gather_local_features(const LocalPartition& part, ConstMatrixView global_features);
std::vector<int> gather_local_labels(const LocalPartition& part, const std::vector<int>& labels);
/// Masks are additionally AND-ed with owns_label so each global vertex
/// contributes its loss exactly once across the cluster.
std::vector<std::uint8_t> gather_local_mask(const LocalPartition& part,
                                            const std::vector<std::uint8_t>& mask);

}  // namespace distgnn
